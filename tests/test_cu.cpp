// Unit tests for CU formation (Fig. 1 semantics) and CU-graph construction.
#include <gtest/gtest.h>

#include "cu/builder.hpp"
#include "pet/pet.hpp"
#include "prof/profiler.hpp"
#include "trace/context.hpp"

namespace ppd::cu {
namespace {

using trace::FunctionScope;
using trace::LoopScope;
using trace::StatementScope;
using trace::TraceContext;

struct Fixture {
  TraceContext ctx;
  prof::DependenceProfiler profiler;
  pet::PetBuilder pet_builder;
  CuFacts facts{ctx};
  Fixture() {
    ctx.add_sink(&profiler);
    ctx.add_sink(&pet_builder);
    ctx.add_sink(&facts);
  }
};

const Cu* find_cu(const std::vector<Cu>& cus, const std::string& name) {
  for (const Cu& cu : cus) {
    if (cu.name == name) return &cu;
  }
  return nullptr;
}

// Figure 1 of the paper: two CUs form around the state variables x and y;
// locals a and b glue lines 3-5 into CU_x and lines 6-8 into CU_y.
TEST(CuFormation, Figure1Example) {
  Fixture f;
  const VarId x = f.ctx.var("x");
  const VarId y = f.ctx.var("y");
  const VarId a = f.ctx.local_var("a");
  const VarId b = f.ctx.local_var("b");
  {
    FunctionScope fn(f.ctx, "example", 0);
    f.ctx.write(x, 0, 1);  // line 1: x = read_value()
    f.ctx.write(y, 0, 2);  // line 2: y = read_value()
    f.ctx.read(x, 0, 3);   // line 3: a = x * x
    f.ctx.write(a, 0, 3);
    f.ctx.read(x, 0, 4);  // line 4: b = 2 * x
    f.ctx.write(b, 0, 4);
    f.ctx.read(a, 0, 5);  // line 5: x = a + b
    f.ctx.read(b, 0, 5);
    f.ctx.write(x, 0, 5);
    f.ctx.read(y, 0, 6);  // line 6: a' = y + 1 (reusing local names)
    f.ctx.write(a, 1, 6);
    f.ctx.read(y, 0, 7);  // line 7: b' = y / 2
    f.ctx.write(b, 1, 7);
    f.ctx.read(a, 1, 8);  // line 8: y = a' - b'
    f.ctx.read(b, 1, 8);
    f.ctx.write(y, 0, 8);
  }
  const auto cus = form_cus(f.facts, f.ctx);
  ASSERT_EQ(cus.size(), 2u);
  const Cu* cu_x = find_cu(cus, "CU_x");
  const Cu* cu_y = find_cu(cus, "CU_y");
  ASSERT_NE(cu_x, nullptr);
  ASSERT_NE(cu_y, nullptr);
  EXPECT_EQ(cu_x->lines, (std::set<SourceLine>{1, 3, 4, 5}));
  EXPECT_EQ(cu_y->lines, (std::set<SourceLine>{2, 6, 7, 8}));
}

TEST(CuFormation, ExplicitStatementsStayApart) {
  Fixture f;
  const VarId arr = f.ctx.var("arr");
  {
    FunctionScope fn(f.ctx, "k", 0);
    {
      StatementScope s1(f.ctx, "first_call", 1);
      f.ctx.write(arr, 0, 1);
    }
    {
      StatementScope s2(f.ctx, "second_call", 2);
      f.ctx.write(arr, 1, 2);  // writes the same global array
    }
  }
  const auto cus = form_cus(f.facts, f.ctx);
  // Same written variable, but the explicit call-site statements do not
  // merge (the two recursive calls of fib stay distinct CUs).
  EXPECT_EQ(cus.size(), 2u);
  EXPECT_NE(find_cu(cus, "first_call"), nullptr);
  EXPECT_NE(find_cu(cus, "second_call"), nullptr);
}

TEST(CuFormation, SerialOrderFollowsFirstOccurrence) {
  Fixture f;
  const VarId p = f.ctx.var("p");
  const VarId q = f.ctx.var("q");
  {
    FunctionScope fn(f.ctx, "k", 0);
    f.ctx.write(q, 0, 2);
    f.ctx.write(p, 0, 5);
  }
  const auto cus = form_cus(f.facts, f.ctx);
  ASSERT_EQ(cus.size(), 2u);
  EXPECT_EQ(cus[0].name, "CU_q");
  EXPECT_EQ(cus[1].name, "CU_p");
  EXPECT_LT(cus[0].serial_order, cus[1].serial_order);
}

// The fib diamond (Listing 4 / §III-B): check forks x and y; the return
// depends on both.
TEST(CuGraph, FibDiamond) {
  Fixture f;
  const VarId ok = f.ctx.var("ok");
  const VarId x = f.ctx.var("x");
  const VarId y = f.ctx.var("y");
  const VarId ret = f.ctx.var("ret");
  {
    FunctionScope fn(f.ctx, "fib", 1);
    {
      StatementScope s(f.ctx, "check", 2);
      f.ctx.write(ok, 0, 2);
    }
    {
      StatementScope s(f.ctx, "x_call", 4);
      f.ctx.read(ok, 0, 4);
      f.ctx.write(x, 0, 4);
    }
    {
      StatementScope s(f.ctx, "y_call", 5);
      f.ctx.read(ok, 0, 5);
      f.ctx.write(y, 0, 5);
    }
    {
      StatementScope s(f.ctx, "ret", 6);
      f.ctx.read(x, 0, 6);
      f.ctx.read(y, 0, 6);
      f.ctx.write(ret, 0, 6);
    }
  }
  const auto profile = f.profiler.take();
  const auto pet = f.pet_builder.take();
  const auto cus = form_cus(f.facts, f.ctx);
  const pet::NodeIndex fib_node = pet.find(f.ctx.find_region("fib"));
  const CuGraph graph = build_cu_graph(cus, profile, pet, fib_node, f.ctx);

  ASSERT_EQ(graph.size(), 4u);
  EXPECT_EQ(graph.cu(0).name, "check");
  EXPECT_EQ(graph.cu(1).name, "x_call");
  EXPECT_EQ(graph.cu(2).name, "y_call");
  EXPECT_EQ(graph.cu(3).name, "ret");
  EXPECT_TRUE(graph.graph.has_edge(0, 1));
  EXPECT_TRUE(graph.graph.has_edge(0, 2));
  EXPECT_TRUE(graph.graph.has_edge(1, 3));
  EXPECT_TRUE(graph.graph.has_edge(2, 3));
  EXPECT_FALSE(graph.graph.has_edge(1, 2));
  EXPECT_FALSE(graph.has_cross_iteration_deps);
}

TEST(CuGraph, ChildLoopsCollapse) {
  Fixture f;
  const VarId a = f.ctx.var("a");
  const VarId b = f.ctx.var("b");
  {
    FunctionScope fn(f.ctx, "k", 1);
    {
      LoopScope l1(f.ctx, "produce", 2);
      for (int i = 0; i < 3; ++i) {
        l1.begin_iteration();
        f.ctx.write(a, static_cast<std::uint64_t>(i), 3, 10);
      }
    }
    {
      LoopScope l2(f.ctx, "consume", 5);
      for (int i = 0; i < 3; ++i) {
        l2.begin_iteration();
        f.ctx.read(a, static_cast<std::uint64_t>(i), 6);
        f.ctx.write(b, static_cast<std::uint64_t>(i), 6, 10);
      }
    }
  }
  const auto profile = f.profiler.take();
  const auto pet = f.pet_builder.take();
  const auto cus = form_cus(f.facts, f.ctx);
  const pet::NodeIndex k = pet.find(f.ctx.find_region("k"));
  const CuGraph graph = build_cu_graph(cus, profile, pet, k, f.ctx);

  ASSERT_EQ(graph.size(), 2u);
  EXPECT_TRUE(graph.cu(0).collapsed);
  EXPECT_TRUE(graph.cu(1).collapsed);
  EXPECT_EQ(graph.cu(0).name, "produce");
  EXPECT_EQ(graph.cu(1).name, "consume");
  EXPECT_TRUE(graph.graph.has_edge(0, 1));
  EXPECT_EQ(graph.graph.weight(0), 30u);  // 3 traced writes of cost 10
}

TEST(CuGraph, CrossIterationDepsFlaggedOnLoopScope) {
  Fixture f;
  const VarId v = f.ctx.var("v");
  RegionId loop_region;
  {
    LoopScope l(f.ctx, "loop", 1);
    loop_region = l.id();
    for (int i = 0; i < 3; ++i) {
      l.begin_iteration();
      f.ctx.read(v, 0, 2);
      f.ctx.write(v, 0, 3);
    }
  }
  const auto profile = f.profiler.take();
  const auto pet = f.pet_builder.take();
  const auto cus = form_cus(f.facts, f.ctx);
  const CuGraph graph = build_cu_graph(cus, profile, pet, pet.find(loop_region), f.ctx);
  EXPECT_TRUE(graph.has_cross_iteration_deps);
}

TEST(CuGraph, RenderListsCus) {
  Fixture f;
  const VarId v = f.ctx.var("v");
  {
    FunctionScope fn(f.ctx, "k", 1);
    f.ctx.write(v, 0, 2);
  }
  const auto profile = f.profiler.take();
  const auto pet = f.pet_builder.take();
  const auto cus = form_cus(f.facts, f.ctx);
  const CuGraph graph = build_cu_graph(cus, profile, pet, pet.find(f.ctx.find_region("k")), f.ctx);
  EXPECT_NE(graph.render().find("CU_v"), std::string::npos);
}

}  // namespace
}  // namespace ppd::cu
