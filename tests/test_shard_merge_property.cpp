// Bit-identity oracle for sharded dependence profiling (ctest label
// `bitidentity`): every bundled benchmark, replayed through the production
// binary-container path, must produce *byte-identical* results from the
// serial reference profiler and from the sharded profiler at every
// combination of jobs ∈ {1,2,4,8} and shard counts ∈ {1,4,64}.
//
// Identity is asserted on two artifacts:
//  * the canonical full-field profile dump (prof::to_debug_string) — every
//    dependence with sites/kind/distances/counts, loop stats, reduction
//    summaries, pipeline iteration pairs, *and* container iteration order,
//    which downstream detectors observe;
//  * the rendered markdown report — the end-to-end detector output a user
//    sees, so a regression anywhere between profile and report is caught
//    even if the profile dump were to miss a field.
//
// jobs > 1 runs use one shared ThreadPool for chunk decode and profiling
// blocks, exactly like `ppd-analyze --trace --jobs N`, so worker scheduling
// (and thus chunk completion order) varies run to run — the merge must not
// care. The TSan CI leg runs this suite to certify the claim under a race
// detector.
#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <sstream>
#include <string>

#include "bs/benchmark.hpp"
#include "core/analyzer.hpp"
#include "prof/sharded_shadow.hpp"
#include "report/markdown.hpp"
#include "rt/thread_pool.hpp"
#include "store/reader.hpp"
#include "store/writer.hpp"
#include "trace/context.hpp"
#include "trace/serialize.hpp"

namespace ppd {
namespace {

std::string record_text_trace(const bs::Benchmark& benchmark) {
  std::ostringstream out;
  trace::TraceContext ctx;
  trace::TraceWriter writer(ctx, out);
  ctx.add_sink(&writer);
  benchmark.run_traced(ctx);
  ctx.finish();
  return out.str();
}

std::string convert_to_binary(const std::string& text) {
  std::ostringstream out;
  trace::TraceContext ctx;
  store::BinaryTraceWriter::Options options;
  options.target_chunk_bytes = 1024;  // force multi-chunk containers
  store::BinaryTraceWriter writer(ctx, out, options);
  ctx.add_sink(&writer);
  std::istringstream in(text);
  const trace::ReplayResult replay = trace::replay_trace(in, ctx, trace::ReplayOptions{});
  EXPECT_TRUE(replay.status.is_ok()) << replay.status.to_string();
  return out.str();
}

struct AnalysisCapture {
  std::string profile_dump;
  std::string markdown;
};

/// Replays `binary` and analyzes with the given profiler configuration.
/// jobs > 1 shares one pool between the reader's chunk decode and the
/// sharded profiler, mirroring the CLI wiring.
AnalysisCapture run_analysis(const std::string& binary, core::ProfilerMode mode,
                             std::size_t jobs, std::size_t shards) {
  std::unique_ptr<rt::ThreadPool> pool;
  if (jobs > 1) pool = std::make_unique<rt::ThreadPool>(jobs);

  core::AnalyzerConfig config;
  config.profiler_mode = mode;
  config.profile_jobs = jobs;
  config.profile_shards = shards;
  config.pool = pool.get();

  trace::TraceContext ctx;
  core::PatternAnalyzer analyzer(ctx, config);
  store::ReadOptions options;
  options.jobs = jobs;
  options.pool = pool.get();
  const store::ReadResult read = store::read_trace(binary, ctx, options);
  EXPECT_TRUE(read.status.is_ok()) << read.status.to_string();
  EXPECT_TRUE(read.finished);

  const core::AnalysisResult result = analyzer.analyze();
  AnalysisCapture capture;
  capture.profile_dump = prof::to_debug_string(result.profile);
  capture.markdown = report::markdown_report(result, ctx, "bitidentity");
  return capture;
}

class ShardMergeProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(ShardMergeProperty, ShardedProfileIsBitIdenticalToSerial) {
  const bs::Benchmark* benchmark = bs::find_benchmark(GetParam());
  ASSERT_NE(benchmark, nullptr);

  const std::string text = record_text_trace(*benchmark);
  ASSERT_FALSE(text.empty());
  const std::string binary = convert_to_binary(text);

  const AnalysisCapture serial =
      run_analysis(binary, core::ProfilerMode::Serial, /*jobs=*/1, /*shards=*/1);
  ASSERT_FALSE(serial.profile_dump.empty());

  for (const std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                 std::size_t{8}}) {
    for (const std::size_t shards :
         {std::size_t{1}, std::size_t{4}, std::size_t{64}}) {
      const AnalysisCapture sharded =
          run_analysis(binary, core::ProfilerMode::Sharded, jobs, shards);
      EXPECT_EQ(sharded.profile_dump, serial.profile_dump)
          << "profile diverged at jobs=" << jobs << " shards=" << shards;
      EXPECT_EQ(sharded.markdown, serial.markdown)
          << "report diverged at jobs=" << jobs << " shards=" << shards;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, ShardMergeProperty,
                         ::testing::Values("ludcmp", "reg_detect", "fluidanimate",
                                           "rot-cc", "Correlation", "2mm", "fib", "sort",
                                           "strassen", "3mm", "mvt", "fdtd-2d", "kmeans",
                                           "streamcluster", "nqueens", "bicg", "gesummv",
                                           "sum_local", "sum_module"),
                         [](const ::testing::TestParamInfo<const char*>& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace ppd
