// Unit tests for the instrumentation runtime: region scopes, iteration
// numbering, statement attribution, recursion merging, activation tracking.
#include <gtest/gtest.h>

#include "trace/buffer.hpp"
#include "trace/context.hpp"

namespace ppd::trace {
namespace {

TEST(Trace, VarInterningIsStable) {
  TraceContext ctx;
  const VarId a1 = ctx.var("a");
  const VarId a2 = ctx.var("a");
  const VarId b = ctx.var("b");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(ctx.var_info(a1).name, "a");
}

TEST(Trace, LocalVarFlag) {
  TraceContext ctx;
  const VarId t = ctx.local_var("t");
  EXPECT_TRUE(ctx.var_info(t).local);
  EXPECT_FALSE(ctx.var_info(ctx.var("g")).local);
}

TEST(Trace, AddressEncodingRoundTrips) {
  const VarId v(3);
  const Address addr = TraceContext::addr(v, 12345);
  EXPECT_EQ(TraceContext::addr_var(addr), v);
  EXPECT_EQ(TraceContext::addr_index(addr), 12345u);
}

TEST(Trace, AddressesOfDistinctVarsNeverCollide) {
  EXPECT_NE(TraceContext::addr(VarId(0), 7), TraceContext::addr(VarId(1), 7));
  EXPECT_NE(TraceContext::addr(VarId(0), 0), TraceContext::addr(VarId(1), 0));
}

TEST(Trace, RegionEnterExitEventsBalance) {
  TraceContext ctx;
  TraceBuffer buffer;
  ctx.add_sink(&buffer);
  {
    FunctionScope f(ctx, "f", 1);
    LoopScope l(ctx, "l", 2);
    l.begin_iteration();
  }
  ctx.finish();
  EXPECT_EQ(buffer.enters().size(), 2u);
  EXPECT_EQ(buffer.exits().size(), 2u);
  EXPECT_TRUE(buffer.ended());
}

TEST(Trace, SameNamedRegionSharesId) {
  TraceContext ctx;
  RegionId first;
  RegionId second;
  {
    FunctionScope f(ctx, "f", 1);
    first = f.id();
  }
  {
    FunctionScope f(ctx, "f", 1);
    second = f.id();
  }
  EXPECT_EQ(first, second);
}

TEST(Trace, IterationNumbersRestartPerInstance) {
  TraceContext ctx;
  TraceBuffer buffer;
  ctx.add_sink(&buffer);
  for (int instance = 0; instance < 2; ++instance) {
    LoopScope l(ctx, "loop", 1);
    l.begin_iteration();
    l.begin_iteration();
  }
  ASSERT_EQ(buffer.iterations().size(), 4u);
  EXPECT_EQ(buffer.iterations()[0].second, 0u);
  EXPECT_EQ(buffer.iterations()[1].second, 1u);
  EXPECT_EQ(buffer.iterations()[2].second, 0u);  // restarted
  EXPECT_EQ(buffer.iterations()[3].second, 1u);
}

TEST(Trace, AccessCarriesLoopStack) {
  TraceContext ctx;
  TraceBuffer buffer;
  ctx.add_sink(&buffer);
  const VarId v = ctx.var("v");
  {
    LoopScope outer(ctx, "outer", 1);
    outer.begin_iteration();
    outer.begin_iteration();
    {
      LoopScope inner(ctx, "inner", 2);
      inner.begin_iteration();
      ctx.write(v, 0, 3);
    }
  }
  ASSERT_EQ(buffer.accesses().size(), 1u);
  const RecordedAccess& acc = buffer.accesses()[0];
  ASSERT_EQ(acc.loop_stack.size(), 2u);
  EXPECT_EQ(acc.loop_stack[0].iteration, 1u);  // outer is on its 2nd iteration
  EXPECT_EQ(acc.loop_stack[1].iteration, 0u);
}

TEST(Trace, RecursionMarksRegionRecursive) {
  TraceContext ctx;
  {
    FunctionScope outer(ctx, "rec", 1);
    EXPECT_FALSE(ctx.region(outer.id()).recursive);
    {
      FunctionScope inner(ctx, "rec", 1);
      EXPECT_TRUE(ctx.region(inner.id()).recursive);
      EXPECT_EQ(inner.id(), outer.id());
    }
  }
}

TEST(Trace, StatementAttributionStopsAtCallBoundary) {
  TraceContext ctx;
  TraceBuffer buffer;
  ctx.add_sink(&buffer);
  const VarId v = ctx.var("v");
  {
    FunctionScope caller(ctx, "caller", 1);
    StatementScope stmt(ctx, "call_site", 2);
    ctx.write(v, 0, 2);  // caller access: attributed to the statement
    {
      FunctionScope callee(ctx, "callee", 5);
      ctx.write(v, 1, 6);  // callee access: NOT attributed to caller's stmt
    }
  }
  ASSERT_EQ(buffer.accesses().size(), 2u);
  EXPECT_TRUE(buffer.accesses()[0].stmt.valid());
  EXPECT_FALSE(buffer.accesses()[1].stmt.valid());
}

TEST(Trace, CostAccumulates) {
  TraceContext ctx;
  const VarId v = ctx.var("v");
  {
    FunctionScope f(ctx, "f", 1);
    ctx.write(v, 0, 2, 3);
    ctx.read(v, 0, 3, 2);
    ctx.compute(4, 10);
  }
  EXPECT_EQ(ctx.total_cost(), 15u);
}

TEST(Trace, FinishIsIdempotent) {
  TraceContext ctx;
  TraceBuffer buffer;
  ctx.add_sink(&buffer);
  ctx.finish();
  ctx.finish();
  EXPECT_TRUE(buffer.ended());
}

TEST(Trace, FindRegionAndVar) {
  TraceContext ctx;
  const VarId v = ctx.var("data");
  RegionId region;
  {
    FunctionScope f(ctx, "kernel", 1);
    region = f.id();
  }
  EXPECT_EQ(ctx.find_var("data"), v);
  EXPECT_EQ(ctx.find_region("kernel"), region);
  EXPECT_FALSE(ctx.find_var("nope").valid());
  EXPECT_FALSE(ctx.find_region("nope").valid());
}

}  // namespace
}  // namespace ppd::trace
