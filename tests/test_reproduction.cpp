// Reproduction guards: the paper's quantitative results, asserted from the
// real end-to-end pipeline so regressions in any substrate surface here.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "bs/benchmark.hpp"
#include "core/analyzer.hpp"
#include "core/task_parallelism.hpp"
#include "cu/builder.hpp"
#include "sim/task_dag.hpp"

namespace ppd::bs {
namespace {

// ---- Table IV -----------------------------------------------------------------

struct PipelineExpectation {
  const char* app;
  double a;
  double b;
  double e;
  double tol_a;
  double tol_b;
  double tol_e;
};

class Table4 : public ::testing::TestWithParam<PipelineExpectation> {};

TEST_P(Table4, CoefficientsMatchPaper) {
  const PipelineExpectation expected = GetParam();
  const Benchmark* benchmark = find_benchmark(expected.app);
  ASSERT_NE(benchmark, nullptr);
  const TracedAnalysis traced = analyze_benchmark(*benchmark);
  const auto reported = traced.analysis.reported_pipelines();
  ASSERT_FALSE(reported.empty());
  const core::MultiLoopPipeline& p = *reported.front();
  EXPECT_NEAR(p.fit.a, expected.a, expected.tol_a);
  EXPECT_NEAR(p.fit.b, expected.b, expected.tol_b);
  EXPECT_NEAR(p.e, expected.e, expected.tol_e);
}

INSTANTIATE_TEST_SUITE_P(
    Paper, Table4,
    ::testing::Values(PipelineExpectation{"ludcmp", 1.0, 0.0, 1.0, 1e-9, 1e-9, 1e-9},
                      PipelineExpectation{"reg_detect", 1.0, -1.0, 0.99, 1e-9, 1e-9, 0.005},
                      // The intercept depends on the reproduced neighbour
                      // span (ours: -4; the paper's 3D grid: -3.5).
                      PipelineExpectation{"fluidanimate", 0.05, -3.5, 0.97, 0.005, 1.0, 0.01}),
    [](const ::testing::TestParamInfo<PipelineExpectation>& param_info) {
      std::string name = param_info.param.app;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// ---- fusion triage (§IV-A) -----------------------------------------------------

class FusionTriage : public ::testing::TestWithParam<const char*> {};

TEST_P(FusionTriage, ReportedAsFusionWithExactCoefficients) {
  const Benchmark* benchmark = find_benchmark(GetParam());
  ASSERT_NE(benchmark, nullptr);
  const TracedAnalysis traced = analyze_benchmark(*benchmark);
  const auto reported = traced.analysis.reported_pipelines();
  ASSERT_FALSE(reported.empty());
  for (const core::MultiLoopPipeline* p : reported) {
    EXPECT_TRUE(p->fusion);
    EXPECT_NEAR(p->fit.a, 1.0, 1e-9);
    EXPECT_NEAR(p->fit.b, 0.0, 1e-9);
    EXPECT_EQ(p->x_class, core::LoopClass::DoAll);
    EXPECT_EQ(p->y_class, core::LoopClass::DoAll);
  }
}

INSTANTIATE_TEST_SUITE_P(Paper, FusionTriage,
                         ::testing::Values("rot-cc", "Correlation", "2mm"),
                         [](const ::testing::TestParamInfo<const char*>& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

// ---- Table V -------------------------------------------------------------------

struct TaskExpectation {
  const char* app;
  double est_speedup;
  double tolerance;
};

class Table5 : public ::testing::TestWithParam<TaskExpectation> {};

TEST_P(Table5, EstimatedSpeedupInRange) {
  const TaskExpectation expected = GetParam();
  const Benchmark* benchmark = find_benchmark(expected.app);
  ASSERT_NE(benchmark, nullptr);
  const TracedAnalysis traced = analyze_benchmark(*benchmark);
  const core::ScopeTaskParallelism* best = traced.analysis.primary_tasks();
  if (best == nullptr) {
    for (const core::ScopeTaskParallelism& t : traced.analysis.tasks) {
      if (best == nullptr || t.tp.estimated_speedup > best->tp.estimated_speedup) best = &t;
    }
  }
  ASSERT_NE(best, nullptr);
  EXPECT_NEAR(best->tp.estimated_speedup, expected.est_speedup, expected.tolerance);
  EXPECT_GE(best->tp.total_cost, best->tp.critical_path_cost);
}

INSTANTIATE_TEST_SUITE_P(
    Paper, Table5,
    ::testing::Values(TaskExpectation{"3mm", 1.5, 0.05},    // paper 1.5
                      TaskExpectation{"mvt", 1.96, 0.1},    // paper 1.96
                      TaskExpectation{"sort", 2.11, 0.25},  // paper 2.11
                      TaskExpectation{"strassen", 3.5, 0.5},  // paper 3.5
                      TaskExpectation{"fib", 1.9, 0.25},      // bounded by 2 (see EXPERIMENTS.md)
                      TaskExpectation{"fdtd-2d", 1.9, 0.35}),
    [](const ::testing::TestParamInfo<TaskExpectation>& param_info) {
      std::string name = param_info.param.app;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ---- Figure 3 structure ----------------------------------------------------------

TEST(Figure3, CilksortClassification) {
  const Benchmark* sort_benchmark = find_benchmark("sort");
  ASSERT_NE(sort_benchmark, nullptr);
  const TracedAnalysis traced = analyze_benchmark(*sort_benchmark);
  const pet::NodeIndex cilksort =
      traced.analysis.pet.find(traced.ctx->find_region("cilksort"));
  ASSERT_NE(cilksort, pet::kInvalidPetNode);
  const cu::CuGraph graph = cu::build_cu_graph(
      traced.analysis.cus, traced.analysis.profile, traced.analysis.pet, cilksort, *traced.ctx);
  const core::TaskParallelism tp = core::detect_task_parallelism(graph);

  // Fig. 3: four workers (the recursive sorts), three barriers (the merges),
  // and exactly one pair of barriers able to run in parallel (the two pair
  // merges); the final merge is ordered after both.
  EXPECT_EQ(tp.worker_count(), 4u);
  EXPECT_EQ(tp.barrier_count(), 3u);
  ASSERT_EQ(tp.parallel_barriers.size(), 1u);
  const auto [m12, m34] = tp.parallel_barriers[0];
  EXPECT_EQ(graph.cu(m12).name, "merge_q1q2");
  EXPECT_EQ(graph.cu(m34).name, "merge_q3q4");

  graph::NodeIndex final_merge = graph::kInvalidNode;
  for (std::size_t i = 0; i < graph.size(); ++i) {
    if (graph.cu(static_cast<graph::NodeIndex>(i)).name == "merge_final") {
      final_merge = static_cast<graph::NodeIndex>(i);
    }
  }
  ASSERT_NE(final_merge, graph::kInvalidNode);
  EXPECT_TRUE(graph.graph.reachable(m12, final_merge));
  EXPECT_TRUE(graph.graph.reachable(m34, final_merge));
}

TEST(Figure3, FibListingClassification) {
  // Listing 4: base check (sync) forks the two recursive calls (workers);
  // the summing return is their barrier (sync).
  const Benchmark* fib_benchmark = find_benchmark("fib");
  const TracedAnalysis traced = analyze_benchmark(*fib_benchmark);
  const core::ScopeTaskParallelism* tasks = traced.analysis.primary_tasks();
  ASSERT_NE(tasks, nullptr);
  // The two recursive calls are workers; the base-case return also depends
  // on the check and is classified worker too (the paper folds it into the
  // "sync" lines of Listing 4).
  EXPECT_GE(tasks->tp.worker_count(), 2u);
  EXPECT_LE(tasks->tp.worker_count(), 3u);
  EXPECT_GE(tasks->tp.barrier_count(), 1u);
  bool x_is_worker = false;
  bool y_is_worker = false;
  for (std::size_t i = 0; i < tasks->graph.size(); ++i) {
    const auto& cu = tasks->graph.cu(static_cast<graph::NodeIndex>(i));
    if (cu.name == "x=fib(n-1)") x_is_worker = tasks->tp.roles[i] == core::CuRole::Worker;
    if (cu.name == "y=fib(n-2)") y_is_worker = tasks->tp.roles[i] == core::CuRole::Worker;
  }
  EXPECT_TRUE(x_is_worker);
  EXPECT_TRUE(y_is_worker);
}

// ---- speedup shape (Table III) ----------------------------------------------------

struct SpeedupExpectation {
  const char* app;
  double paper_speedup;
  double rel_tolerance;  // fraction of the paper value
};

class Table3Speedup : public ::testing::TestWithParam<SpeedupExpectation> {};

TEST_P(Table3Speedup, SimulatedSpeedupNearPaper) {
  const SpeedupExpectation expected = GetParam();
  const Benchmark* benchmark = find_benchmark(expected.app);
  ASSERT_NE(benchmark, nullptr);
  const TracedAnalysis traced = analyze_benchmark(*benchmark);
  const sim::TaskDag dag = benchmark->build_sim_dag(traced.analysis);
  const sim::SweepResult sweep =
      sim::sweep_threads(dag, benchmark->sim_params(traced.analysis));
  EXPECT_NEAR(sweep.best.speedup, expected.paper_speedup,
              expected.paper_speedup * expected.rel_tolerance)
      << expected.app;
}

INSTANTIATE_TEST_SUITE_P(
    Paper, Table3Speedup,
    ::testing::Values(SpeedupExpectation{"ludcmp", 14.06, 0.15},
                      SpeedupExpectation{"fluidanimate", 1.5, 0.15},
                      SpeedupExpectation{"rot-cc", 16.18, 0.15},
                      SpeedupExpectation{"fib", 13.25, 0.15},
                      SpeedupExpectation{"3mm", 12.93, 0.15},
                      SpeedupExpectation{"fdtd-2d", 5.19, 0.15},
                      SpeedupExpectation{"kmeans", 3.97, 0.15},
                      SpeedupExpectation{"bicg", 5.64, 0.15},
                      SpeedupExpectation{"gesummv", 5.06, 0.15},
                      SpeedupExpectation{"nqueens", 8.38, 0.15}),
    [](const ::testing::TestParamInfo<SpeedupExpectation>& param_info) {
      std::string name = param_info.param.app;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ---- gesummv detail (§IV-D) --------------------------------------------------------

TEST(Gesummv, TwoReductionVariablesReported) {
  const Benchmark* gesummv = find_benchmark("gesummv");
  const TracedAnalysis traced = analyze_benchmark(*gesummv);
  // "The reduction loop of gesummv had two reduction variables and our tool
  // reported both of them."
  const RegionId inner = traced.ctx->find_region("accumulate_loop");
  ASSERT_TRUE(inner.valid());
  const auto candidates = core::detect_reductions(traced.analysis.profile, inner);
  EXPECT_EQ(candidates.size(), 2u);
}

TEST(Streamcluster, NoPatternInOuterStreamLoop) {
  // §IV-C: "we detected no parallel pattern in streamCluster()" — the outer
  // while loop carries the clusters between rounds.
  const Benchmark* sc = find_benchmark("streamcluster");
  const TracedAnalysis traced = analyze_benchmark(*sc);
  const RegionId stream_loop = traced.ctx->find_region("stream_loop");
  ASSERT_TRUE(stream_loop.valid());
  EXPECT_EQ(core::classify_loop(traced.analysis.profile, stream_loop),
            core::LoopClass::Sequential);
}

}  // namespace
}  // namespace ppd::bs
