// Unit tests for ppd::pat: chunk planning, the determinism contracts of
// parallel_for_reduce, pipeline ordering/back-pressure/fallback, and
// TaskPool stealing + exception propagation. The cross-benchmark
// execution-verification suite lives in test_pat_exec.cpp (-L execverify).
#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "pat/pat.hpp"
#include "rt/thread_pool.hpp"

namespace pat = ppd::pat;
namespace rt = ppd::rt;

namespace {

// --- plan_chunks ----------------------------------------------------------

void expect_covers(const std::vector<pat::ChunkRange>& plan, std::uint64_t begin,
                   std::uint64_t end) {
  std::uint64_t cursor = begin;
  for (const pat::ChunkRange& c : plan) {
    EXPECT_EQ(c.lo, cursor);
    EXPECT_LT(c.lo, c.hi);
    cursor = c.hi;
  }
  EXPECT_EQ(cursor, end);
}

TEST(PlanChunks, StaticCoversRangeInOrder) {
  for (std::size_t workers : {1u, 2u, 3u, 8u}) {
    const auto plan = pat::plan_chunks(5, 105, workers);
    EXPECT_EQ(plan.size(), workers);
    expect_covers(plan, 5, 105);
  }
}

TEST(PlanChunks, StaticNeverEmitsEmptyChunks) {
  const auto plan = pat::plan_chunks(0, 3, 8);
  EXPECT_EQ(plan.size(), 3u);  // capped at the iteration count
  expect_covers(plan, 0, 3);
}

TEST(PlanChunks, GuidedShrinksAndRespectsFloor) {
  pat::ForOptions options;
  options.chunking = pat::Chunking::Guided;
  options.min_chunk = 4;
  const auto plan = pat::plan_chunks(0, 1000, 4, options);
  expect_covers(plan, 0, 1000);
  for (std::size_t i = 1; i < plan.size(); ++i) {
    const std::uint64_t prev = plan[i - 1].hi - plan[i - 1].lo;
    const std::uint64_t cur = plan[i].hi - plan[i].lo;
    EXPECT_LE(cur, prev);  // non-increasing
  }
  for (std::size_t i = 0; i + 1 < plan.size(); ++i) {
    EXPECT_GE(plan[i].hi - plan[i].lo, 4u);  // floor (last chunk may be short)
  }
}

TEST(PlanChunks, EmptyRangeIsEmptyPlan) {
  EXPECT_TRUE(pat::plan_chunks(7, 7, 4).empty());
  EXPECT_TRUE(pat::plan_chunks(9, 3, 4).empty());
}

TEST(PlanChunks, PlanDependsOnlyOnInputs) {
  const auto a = pat::plan_chunks(0, 12345, 4);
  const auto b = pat::plan_chunks(0, 12345, 4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].lo, b[i].lo);
    EXPECT_EQ(a[i].hi, b[i].hi);
  }
}

// --- parallel_for ---------------------------------------------------------

TEST(ParallelFor, TouchesEveryIterationExactlyOnce) {
  rt::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(512);
  pat::parallel_for(pool, 0, hits.size(),
                    [&](std::uint64_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, PropagatesBodyException) {
  rt::ThreadPool pool(2);
  EXPECT_THROW(pat::parallel_for(pool, 0, 100,
                                 [](std::uint64_t i) {
                                   if (i == 37) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

// --- parallel_for_reduce --------------------------------------------------

double fp_sum_at(std::size_t threads, pat::Chunking chunking) {
  rt::ThreadPool pool(threads);
  pat::ForOptions options;
  options.chunking = chunking;
  return pat::parallel_for_reduce(
      pool, 1, 20001, 0.0,
      [](double acc, std::uint64_t i) {
        return acc + 1.0 / static_cast<double>(i);
      },
      [](double acc, double partial) { return acc + partial; }, options);
}

TEST(ParallelForReduce, MatchesSequentialSum) {
  rt::ThreadPool pool(4);
  const std::uint64_t n = 1000;
  const auto total = pat::parallel_for_reduce(
      pool, 0, n, std::uint64_t{0},
      [](std::uint64_t acc, std::uint64_t i) { return acc + i; },
      [](std::uint64_t acc, std::uint64_t p) { return acc + p; });
  EXPECT_EQ(total, n * (n - 1) / 2);
}

TEST(ParallelForReduce, FloatingPointIsBitIdenticalAcrossJobCounts) {
  // Same chunking => same chunk boundaries => same combine order: the FP
  // sum must be *bit* identical no matter how many workers executed it.
  for (pat::Chunking chunking : {pat::Chunking::Static, pat::Chunking::Guided}) {
    // With Static chunking the plan depends on the worker count, so pin the
    // plan by comparing each run against a fresh run at the same width.
    const double once = fp_sum_at(4, chunking);
    const double again = fp_sum_at(4, chunking);
    EXPECT_EQ(once, again);
  }
  // Guided plans depend on the worker count too; the cross-job-count
  // bit-identity the execverify suite checks comes from the *generated
  // code* pinning the plan width, mirrored here:
  rt::ThreadPool wide(8);
  rt::ThreadPool narrow(1);
  const auto plan = pat::plan_chunks(1, 20001, 4);
  auto run = [&](rt::ThreadPool& pool) {
    std::vector<double> partial(plan.size(), 0.0);
    pat::detail::execute_plan(pool, plan.size(), pool.thread_count(),
                              [&](std::size_t c) {
                                double acc = 0.0;
                                for (std::uint64_t i = plan[c].lo; i < plan[c].hi; ++i) {
                                  acc += 1.0 / static_cast<double>(i);
                                }
                                partial[c] = acc;
                              });
    double acc = 0.0;
    for (double p : partial) acc += p;
    return acc;
  };
  EXPECT_EQ(run(wide), run(narrow));
}

TEST(ParallelForReduce, GuidedHandlesTinyRanges) {
  rt::ThreadPool pool(8);
  pat::ForOptions options;
  options.chunking = pat::Chunking::Guided;
  const auto total = pat::parallel_for_reduce(
      pool, 0, 3, std::uint64_t{0},
      [](std::uint64_t acc, std::uint64_t i) { return acc + i + 1; },
      [](std::uint64_t acc, std::uint64_t p) { return acc + p; }, options);
  EXPECT_EQ(total, 6u);
}

// --- Pipeline -------------------------------------------------------------

std::vector<int> run_pipeline(std::size_t threads, std::size_t farm_width,
                              int items, std::size_t capacity = 8) {
  rt::ThreadPool pool(threads);
  pat::Pipeline<int>::Options options;
  options.queue_capacity = capacity;
  pat::Pipeline<int> pipe(pool, options);
  pipe.stage([](int x) { return x + 1; })
      .farm([](int x) { return x * 3; }, farm_width)
      .stage([](int x) { return x - 2; });
  std::vector<int> out;
  int next = 0;
  pipe.run(
      [&]() -> std::optional<int> {
        if (next >= items) return std::nullopt;
        return next++;
      },
      [&](int v) { out.push_back(v); });
  return out;
}

TEST(Pipeline, PreservesSourceOrderThroughFarm) {
  const std::vector<int> reference = run_pipeline(1, 1, 200);  // sequential path
  ASSERT_EQ(reference.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(reference[static_cast<std::size_t>(i)], (i + 1) * 3 - 2);
  for (std::size_t farm_width : {1u, 2u, 4u}) {
    EXPECT_EQ(run_pipeline(8, farm_width, 200), reference)
        << "farm width " << farm_width;
  }
}

TEST(Pipeline, TinyQueuesExerciseBackPressure) {
  EXPECT_EQ(run_pipeline(8, 2, 300, /*capacity=*/1), run_pipeline(1, 2, 300));
}

TEST(Pipeline, FallsBackToSequentialOnSmallPools) {
  // 3 stages (one a farm of 4) need 1 + 1 + 4 + 1 = 7 actors; a 2-thread
  // pool cannot host them, so run() must degrade instead of deadlocking.
  const auto out = run_pipeline(2, 4, 64);
  ASSERT_EQ(out.size(), 64u);
  EXPECT_EQ(out, run_pipeline(1, 4, 64));
}

TEST(Pipeline, PoolActorsCountsSourceAndReplicas) {
  rt::ThreadPool pool(1);
  pat::Pipeline<int> pipe(pool);
  pipe.stage([](int x) { return x; }).farm([](int x) { return x; }, 3);
  EXPECT_EQ(pipe.pool_actors(), 1u + 1u + 3u);
}

TEST(Pipeline, StageExceptionPropagatesAndUnwinds) {
  rt::ThreadPool pool(8);
  pat::Pipeline<int> pipe(pool);
  pipe.stage([](int x) {
    if (x == 13) throw std::runtime_error("stage failure");
    return x;
  });
  int next = 0;
  EXPECT_THROW(pipe.run(
                   [&]() -> std::optional<int> {
                     if (next >= 100000) return std::nullopt;
                     return next++;
                   },
                   [](int) {}),
               std::runtime_error);
}

TEST(BoundedQueue, CloseDrainsThenEnds) {
  pat::BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(q.pop(), std::optional<int>(1));
  EXPECT_EQ(q.pop(), std::optional<int>(2));
  EXPECT_EQ(q.pop(), std::nullopt);
}

// --- TaskPool -------------------------------------------------------------

TEST(TaskPool, RunsEveryTaskOnce) {
  rt::ThreadPool pool(4);
  std::atomic<int> ran{0};
  {
    pat::TaskPool tasks(pool);
    for (int i = 0; i < 200; ++i) {
      tasks.submit([&ran] { ran.fetch_add(1); });
    }
    tasks.wait();
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(TaskPool, NestedSubmissionFromWorkers) {
  rt::ThreadPool pool(4);
  std::atomic<int> leaves{0};
  pat::TaskPool tasks(pool);
  // A small spawn tree: children submitted before the parent returns, so
  // the pending count never transits zero early.
  std::function<void(int)> spawn = [&](int depth) {
    if (depth == 0) {
      leaves.fetch_add(1);
      return;
    }
    tasks.submit([&spawn, depth] { spawn(depth - 1); });
    tasks.submit([&spawn, depth] { spawn(depth - 1); });
  };
  tasks.submit([&spawn] { spawn(6); });
  tasks.wait();
  EXPECT_EQ(leaves.load(), 64);
}

TEST(TaskPool, SingleThreadPoolStillCompletes) {
  rt::ThreadPool pool(1);
  std::atomic<int> ran{0};
  pat::TaskPool tasks(pool);
  std::function<void(int)> spawn = [&](int depth) {
    ran.fetch_add(1);
    if (depth == 0) return;
    tasks.submit([&spawn, depth] { spawn(depth - 1); });
  };
  tasks.submit([&spawn] { spawn(20); });
  tasks.wait();
  EXPECT_EQ(ran.load(), 21);
}

TEST(TaskPool, FirstExceptionRethrownFromWait) {
  rt::ThreadPool pool(4);
  pat::TaskPool tasks(pool);
  std::atomic<int> survivors{0};
  for (int i = 0; i < 50; ++i) {
    tasks.submit([&survivors, i] {
      if (i % 10 == 3) throw std::runtime_error("task failure");
      survivors.fetch_add(1);
    });
  }
  EXPECT_THROW(tasks.wait(), std::runtime_error);
  EXPECT_EQ(survivors.load(), 45);  // siblings still ran
}

TEST(TaskPool, DestructorDrainsWithoutWait) {
  rt::ThreadPool pool(2);
  std::atomic<int> ran{0};
  {
    pat::TaskPool tasks(pool);
    for (int i = 0; i < 32; ++i) tasks.submit([&ran] { ran.fetch_add(1); });
    // no wait(): the destructor must still drain and release the runners
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(TaskPool, RunnerCountIsCappedByPoolWidth) {
  rt::ThreadPool pool(2);
  pat::TaskPool tasks(pool, 8);
  EXPECT_EQ(tasks.runner_count(), 2u);
  tasks.wait();
}

// --- rt work-stealing hooks ----------------------------------------------

TEST(ThreadPoolHooks, WorkerIndexIsDenseAndScoped) {
  EXPECT_EQ(rt::ThreadPool::current_worker_index(), rt::ThreadPool::kNotAWorker);
  rt::ThreadPool pool(3);
  EXPECT_FALSE(pool.owns_current_thread());
  std::mutex mutex;
  std::vector<std::size_t> seen;
  rt::TaskGroup group(pool);
  for (int i = 0; i < 64; ++i) {
    group.run([&] {
      EXPECT_TRUE(pool.owns_current_thread());
      std::lock_guard lock(mutex);
      seen.push_back(rt::ThreadPool::current_worker_index());
    });
  }
  group.wait();
  for (std::size_t index : seen) EXPECT_LT(index, 3u);
}

}  // namespace
