// Wire-framing suite: the codec underneath the resident analysis service.
//
// The framing layer is the daemon's outermost trust boundary, so the
// properties proven here are adversarial, not just happy-path: every
// prefix of a valid frame decodes as NeedMore (never an error, never a
// short read misparse), every single-byte payload corruption is caught by
// the CRC, every malformed header field maps onto its precise ErrorCode,
// and an oversized length prefix is rejected from the 16 header bytes
// alone. The payload grammars and the Status wire codec get the same
// treatment: roundtrip for every value, rejection for every truncation.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.hpp"
#include "svc/frame.hpp"

namespace ppd::svc {
namespace {

using support::ErrorCode;
using support::Status;

const std::vector<FrameType> kAllTypes = {
    FrameType::Hello,   FrameType::HelloAck, FrameType::AnalyzeRequest,
    FrameType::Progress, FrameType::Report,  FrameType::Error,
    FrameType::Ping,    FrameType::Pong,     FrameType::Shutdown,
};

TEST(SvcFrame, RoundTripsEveryTypeAndPayloadSize) {
  for (const FrameType type : kAllTypes) {
    for (const std::size_t size : {std::size_t{0}, std::size_t{1},
                                   std::size_t{7}, std::size_t{4096}}) {
      const std::string payload(size, static_cast<char>('a' + size % 26));
      const std::string bytes = encode_frame(type, payload);
      ASSERT_EQ(bytes.size(), kFrameHeaderSize + size);

      Frame frame;
      std::size_t consumed = 0;
      Status status;
      ASSERT_EQ(decode_frame(bytes, kMaxFramePayload, frame, consumed, status),
                DecodeResult::Ok);
      EXPECT_TRUE(status.is_ok());
      EXPECT_EQ(frame.type, type);
      EXPECT_EQ(frame.payload, payload);
      EXPECT_EQ(consumed, bytes.size());
    }
  }
}

TEST(SvcFrame, DecodeLeavesTrailingBytesForTheNextFrame) {
  const std::string first = encode_frame(FrameType::Ping, {});
  const std::string second = encode_frame(FrameType::Progress, "tail");
  const std::string stream = first + second;

  Frame frame;
  std::size_t consumed = 0;
  Status status;
  ASSERT_EQ(decode_frame(stream, kMaxFramePayload, frame, consumed, status),
            DecodeResult::Ok);
  EXPECT_EQ(frame.type, FrameType::Ping);
  EXPECT_EQ(consumed, first.size());

  const std::string_view rest = std::string_view(stream).substr(consumed);
  ASSERT_EQ(decode_frame(rest, kMaxFramePayload, frame, consumed, status),
            DecodeResult::Ok);
  EXPECT_EQ(frame.type, FrameType::Progress);
  EXPECT_EQ(frame.payload, "tail");
}

TEST(SvcFrame, EveryPrefixOfAValidFrameIsNeedMore) {
  const std::string bytes = encode_frame(FrameType::Report, "payload bytes");
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    Frame frame;
    std::size_t consumed = 0;
    Status status;
    EXPECT_EQ(decode_frame(std::string_view(bytes).substr(0, cut),
                           kMaxFramePayload, frame, consumed, status),
              DecodeResult::NeedMore)
        << "prefix of " << cut << " bytes";
  }
}

TEST(SvcFrame, BadMagicIsRejectedFromFourBytes) {
  std::string bytes = encode_frame(FrameType::Ping, {});
  bytes[0] = 'X';
  for (const std::size_t cut : {std::size_t{4}, bytes.size()}) {
    Frame frame;
    std::size_t consumed = 0;
    Status status;
    EXPECT_EQ(decode_frame(std::string_view(bytes).substr(0, cut),
                           kMaxFramePayload, frame, consumed, status),
              DecodeResult::Error);
    EXPECT_EQ(status.code(), ErrorCode::BadFrame);
  }
}

TEST(SvcFrame, WrongVersionIsRejectedFromFiveBytes) {
  std::string bytes = encode_frame(FrameType::Ping, {});
  bytes[4] = static_cast<char>(kProtocolVersion + 1);
  for (const std::size_t cut : {std::size_t{5}, bytes.size()}) {
    Frame frame;
    std::size_t consumed = 0;
    Status status;
    EXPECT_EQ(decode_frame(std::string_view(bytes).substr(0, cut),
                           kMaxFramePayload, frame, consumed, status),
              DecodeResult::Error);
    EXPECT_EQ(status.code(), ErrorCode::UnsupportedVersion);
  }
}

TEST(SvcFrame, UnknownTypeAndReservedBytesAreBadFrames) {
  for (const std::uint8_t bad_type : {std::uint8_t{0}, std::uint8_t{10},
                                      std::uint8_t{255}}) {
    std::string bytes = encode_frame(FrameType::Ping, {});
    bytes[5] = static_cast<char>(bad_type);
    Frame frame;
    std::size_t consumed = 0;
    Status status;
    EXPECT_EQ(decode_frame(bytes, kMaxFramePayload, frame, consumed, status),
              DecodeResult::Error);
    EXPECT_EQ(status.code(), ErrorCode::BadFrame);
  }
  for (const std::size_t reserved_byte : {std::size_t{6}, std::size_t{7}}) {
    std::string bytes = encode_frame(FrameType::Ping, {});
    bytes[reserved_byte] = 1;
    Frame frame;
    std::size_t consumed = 0;
    Status status;
    EXPECT_EQ(decode_frame(bytes, kMaxFramePayload, frame, consumed, status),
              DecodeResult::Error);
    EXPECT_EQ(status.code(), ErrorCode::BadFrame);
  }
}

TEST(SvcFrame, OversizedLengthPrefixIsRejectedFromTheHeaderAlone) {
  // A hostile length prefix with no payload behind it: the 16 header bytes
  // must be enough to reject, otherwise the decoder would report NeedMore
  // and string the receiver along buffering garbage.
  std::string header = encode_frame(FrameType::AnalyzeRequest, {});
  const std::uint32_t huge = 0xFFFFFFFFu;
  header[8] = static_cast<char>(huge & 0xFF);
  header[9] = static_cast<char>((huge >> 8) & 0xFF);
  header[10] = static_cast<char>((huge >> 16) & 0xFF);
  header[11] = static_cast<char>((huge >> 24) & 0xFF);

  Frame frame;
  std::size_t consumed = 0;
  Status status;
  EXPECT_EQ(decode_frame(header, kMaxFramePayload, frame, consumed, status),
            DecodeResult::Error);
  EXPECT_EQ(status.code(), ErrorCode::OversizedFrame);
}

TEST(SvcFrame, ReceiverBudgetTightensTheOversizeBound) {
  // A frame over the receiver's budget but far under the absolute protocol
  // cap is still rejected — the budget is per receiver, not global.
  const std::string payload(1024, 'x');
  const std::string bytes = encode_frame(FrameType::AnalyzeRequest, payload);
  Frame frame;
  std::size_t consumed = 0;
  Status status;
  EXPECT_EQ(decode_frame(bytes, 512, frame, consumed, status),
            DecodeResult::Error);
  EXPECT_EQ(status.code(), ErrorCode::OversizedFrame);
  EXPECT_EQ(decode_frame(bytes, 1024, frame, consumed, status),
            DecodeResult::Ok);
}

TEST(SvcFrame, EverySingleByteCorruptionOfThePayloadFailsTheCrc) {
  const std::string bytes = encode_frame(FrameType::Report, "corruptible");
  for (std::size_t i = kFrameHeaderSize; i < bytes.size(); ++i) {
    for (const std::uint8_t mask : {std::uint8_t{0x01}, std::uint8_t{0x80}}) {
      std::string mutant = bytes;
      mutant[i] = static_cast<char>(mutant[i] ^ mask);
      Frame frame;
      std::size_t consumed = 0;
      Status status;
      EXPECT_EQ(decode_frame(mutant, kMaxFramePayload, frame, consumed, status),
                DecodeResult::Error)
          << "payload byte " << i << " mask " << int(mask);
      EXPECT_EQ(status.code(), ErrorCode::CrcMismatch);
    }
  }
}

TEST(SvcFrame, CrcFieldCorruptionIsCaught) {
  std::string bytes = encode_frame(FrameType::Report, "guarded");
  bytes[12] = static_cast<char>(bytes[12] ^ 0x40);
  Frame frame;
  std::size_t consumed = 0;
  Status status;
  EXPECT_EQ(decode_frame(bytes, kMaxFramePayload, frame, consumed, status),
            DecodeResult::Error);
  EXPECT_EQ(status.code(), ErrorCode::CrcMismatch);
}

// ---- payload grammars -------------------------------------------------------

TEST(SvcPayloads, HelloRoundTrip) {
  std::string payload;
  encode_hello(payload, HelloPayload{1, 3, "test-client"});
  HelloPayload out;
  ASSERT_TRUE(decode_hello(payload, out));
  EXPECT_EQ(out.min_version, 1);
  EXPECT_EQ(out.max_version, 3);
  EXPECT_EQ(out.client, "test-client");

  // Truncations and trailing junk are rejected.
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    HelloPayload ignored;
    EXPECT_FALSE(decode_hello(payload.substr(0, cut), ignored)) << cut;
  }
  HelloPayload ignored;
  EXPECT_FALSE(decode_hello(payload + "x", ignored));
  // min > max and min == 0 are grammar violations.
  std::string inverted;
  encode_hello(inverted, HelloPayload{3, 1, "c"});
  EXPECT_FALSE(decode_hello(inverted, ignored));
  std::string zero;
  encode_hello(zero, HelloPayload{0, 1, "c"});
  EXPECT_FALSE(decode_hello(zero, ignored));
}

TEST(SvcPayloads, HelloAckRoundTrip) {
  std::string payload;
  encode_hello_ack(payload, HelloAckPayload{1, "ppd-analyzed"});
  HelloAckPayload out;
  ASSERT_TRUE(decode_hello_ack(payload, out));
  EXPECT_EQ(out.version, 1);
  EXPECT_EQ(out.server, "ppd-analyzed");
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    HelloAckPayload ignored;
    EXPECT_FALSE(decode_hello_ack(payload.substr(0, cut), ignored)) << cut;
  }
}

TEST(SvcPayloads, RequestRoundTripAllFlagCombinations) {
  const std::string trace = "ppd-trace 1\nsome bytes";
  for (int lenient = 0; lenient <= 1; ++lenient) {
    for (int no_cache = 0; no_cache <= 1; ++no_cache) {
      for (int refresh = 0; refresh <= 1; ++refresh) {
        RequestPayload request;
        request.mode = lenient != 0 ? trace::ReplayMode::Lenient
                                    : trace::ReplayMode::Strict;
        request.no_cache = no_cache != 0;
        request.refresh = refresh != 0;
        request.max_records = 12345;
        request.trace = trace;
        std::string payload;
        encode_request(payload, request);
        RequestPayload out;
        ASSERT_TRUE(decode_request(payload, out));
        EXPECT_EQ(out.mode, request.mode);
        EXPECT_EQ(out.no_cache, request.no_cache);
        EXPECT_EQ(out.refresh, request.refresh);
        EXPECT_EQ(out.max_records, 12345u);
        EXPECT_EQ(out.trace, trace);
      }
    }
  }
}

TEST(SvcPayloads, RequestRejectsUnknownFlagsAndLyingLengths) {
  RequestPayload request;
  request.trace = "bytes";
  std::string payload;
  encode_request(payload, request);

  // Undefined flag bits must be rejected, not ignored — they are the
  // protocol's forward-compatibility escape hatch.
  std::string bad_flags = payload;
  bad_flags[0] = static_cast<char>(0x08);
  RequestPayload out;
  EXPECT_FALSE(decode_request(bad_flags, out));

  // A trace length prefix beyond the payload is a lie, not a NeedMore.
  std::string bad_length = payload;
  bad_length.pop_back();
  EXPECT_FALSE(decode_request(bad_length, out));
  EXPECT_FALSE(decode_request(payload + "junk", out));
  EXPECT_FALSE(decode_request(std::string_view{}, out));
}

TEST(SvcPayloads, ProgressAndReportRoundTrip) {
  std::string payload;
  encode_progress(payload, ProgressPayload{"running", 2, 3});
  ProgressPayload progress;
  ASSERT_TRUE(decode_progress(payload, progress));
  EXPECT_EQ(progress.stage, "running");
  EXPECT_EQ(progress.done, 2u);
  EXPECT_EQ(progress.total, 3u);

  ReportPayload report_in;
  report_in.cached = true;
  report_in.report = std::string(100000, 'r');
  report_in.log = "replayed 10 records\n";
  payload.clear();
  encode_report(payload, report_in);
  ReportPayload report_out;
  ASSERT_TRUE(decode_report(payload, report_out));
  EXPECT_TRUE(report_out.cached);
  EXPECT_EQ(report_out.report, report_in.report);
  EXPECT_EQ(report_out.log, report_in.log);

  // cached is a strict boolean on the wire.
  payload[0] = 2;
  EXPECT_FALSE(decode_report(payload, report_out));
}

TEST(SvcPayloads, StatusCodecCoversTheWholeRegistry) {
  for (std::uint8_t code = 0;
       code <= static_cast<std::uint8_t>(ErrorCode::ConnectionLost); ++code) {
    const Status in =
        code == 0 ? Status::ok()
                  : Status::error(static_cast<ErrorCode>(code), "why", 42);
    std::string payload;
    encode_status(payload, in);
    Status out;
    ASSERT_TRUE(decode_status(payload, out)) << int(code);
    EXPECT_EQ(out.code(), in.code());
    if (code != 0) {
      EXPECT_EQ(out.message(), "why");
      EXPECT_EQ(out.line(), 42u);
    }
  }
  // A code beyond the registry is a framing violation: a newer peer must
  // fail loudly, not alias onto a random known code.
  std::string payload;
  encode_status(payload, Status::error(ErrorCode::ConnectionLost, "m", 1));
  payload[0] = static_cast<char>(
      static_cast<std::uint8_t>(ErrorCode::ConnectionLost) + 1);
  Status out;
  EXPECT_FALSE(decode_status(payload, out));
}

TEST(SvcPayloads, MetricsRequestRoundTrip) {
  for (const std::uint8_t format :
       {kMetricsFormatKeyValue, kMetricsFormatPrometheus}) {
    std::string payload;
    encode_metrics_request(payload, MetricsRequestPayload{format});
    MetricsRequestPayload out;
    ASSERT_TRUE(decode_metrics_request(payload, out));
    EXPECT_EQ(out.format, format);
  }
  // Empty payload, unknown format, and trailing junk are grammar violations.
  MetricsRequestPayload ignored;
  EXPECT_FALSE(decode_metrics_request(std::string_view{}, ignored));
  std::string bad(1, static_cast<char>(kMetricsFormatPrometheus + 1));
  EXPECT_FALSE(decode_metrics_request(bad, ignored));
  std::string trailing(2, '\0');
  EXPECT_FALSE(decode_metrics_request(trailing, ignored));
}

TEST(SvcPayloads, MetricsReplyRoundTrip) {
  MetricsReplyPayload in;
  in.format = kMetricsFormatPrometheus;
  in.text = "# TYPE ppd_x_total counter\nppd_x_total 7\n";
  std::string payload;
  encode_metrics_reply(payload, in);
  MetricsReplyPayload out;
  ASSERT_TRUE(decode_metrics_reply(payload, out));
  EXPECT_EQ(out.format, kMetricsFormatPrometheus);
  EXPECT_EQ(out.text, in.text);
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    MetricsReplyPayload ignored;
    EXPECT_FALSE(decode_metrics_reply(payload.substr(0, cut), ignored)) << cut;
  }
  MetricsReplyPayload ignored;
  EXPECT_FALSE(decode_metrics_reply(payload + "x", ignored));
}

TEST(SvcNegotiation, PicksTheHighestCommonVersion) {
  EXPECT_EQ(negotiate_version(1, 1, 1, 1), 1);
  EXPECT_EQ(negotiate_version(1, 3, 2, 5), 3);
  EXPECT_EQ(negotiate_version(2, 5, 1, 3), 3);
  EXPECT_EQ(negotiate_version(1, 2, 3, 4), 0);  // disjoint
  EXPECT_EQ(negotiate_version(3, 4, 1, 2), 0);  // disjoint, other side
}

// ---- protocol version 2 -----------------------------------------------------

TEST(SvcFrameV2, TraceExtensionRoundTrips) {
  const obs::TraceContext trace{0xAABBCCDD11223344ull, 0x55667788ull};
  const std::string payload = "traced payload";
  const std::string bytes =
      encode_frame(FrameType::AnalyzeRequest, payload, 2, &trace);
  ASSERT_EQ(bytes.size(), kFrameHeaderSize + kTraceContextSize + payload.size());

  Frame frame;
  std::size_t consumed = 0;
  Status status;
  ASSERT_EQ(decode_frame(bytes, kMaxFramePayload, frame, consumed, status),
            DecodeResult::Ok);
  EXPECT_EQ(frame.version, 2);
  EXPECT_EQ(frame.type, FrameType::AnalyzeRequest);
  EXPECT_EQ(frame.payload, payload);
  EXPECT_TRUE(frame.has_trace);
  EXPECT_EQ(frame.trace.trace_id, trace.trace_id);
  EXPECT_EQ(frame.trace.span_id, trace.span_id);
  EXPECT_EQ(consumed, bytes.size());
}

TEST(SvcFrameV2, InactiveOrAbsentTraceOmitsTheExtension) {
  // A null or inactive trace context must produce a plain v2 frame: the
  // extension is opt-in per frame, not per connection.
  const obs::TraceContext inactive{};
  for (const obs::TraceContext* trace : {&inactive, (const obs::TraceContext*)nullptr}) {
    const std::string bytes = encode_frame(FrameType::Ping, {}, 2, trace);
    ASSERT_EQ(bytes.size(), kFrameHeaderSize);
    Frame frame;
    std::size_t consumed = 0;
    Status status;
    ASSERT_EQ(decode_frame(bytes, kMaxFramePayload, frame, consumed, status),
              DecodeResult::Ok);
    EXPECT_EQ(frame.version, 2);
    EXPECT_FALSE(frame.has_trace);
  }
}

TEST(SvcFrameV2, EveryPrefixOfATracedFrameIsNeedMore) {
  const obs::TraceContext trace{9, 4};
  const std::string bytes = encode_frame(FrameType::Report, "body", 2, &trace);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    Frame frame;
    std::size_t consumed = 0;
    Status status;
    EXPECT_EQ(decode_frame(std::string_view(bytes).substr(0, cut),
                           kMaxFramePayload, frame, consumed, status),
              DecodeResult::NeedMore)
        << "prefix of " << cut << " bytes";
  }
}

TEST(SvcFrameV2, UnknownFlagBitsAreRejected) {
  const obs::TraceContext trace{1, 1};
  for (const std::uint16_t bad : {std::uint16_t{0x0002}, std::uint16_t{0x8000}}) {
    std::string bytes = encode_frame(FrameType::Ping, {}, 2, &trace);
    const std::uint16_t flags = static_cast<std::uint16_t>(kFrameFlagTrace | bad);
    bytes[6] = static_cast<char>(flags & 0xFF);
    bytes[7] = static_cast<char>(flags >> 8);
    Frame frame;
    std::size_t consumed = 0;
    Status status;
    EXPECT_EQ(decode_frame(bytes, kMaxFramePayload, frame, consumed, status),
              DecodeResult::Error);
    EXPECT_EQ(status.code(), ErrorCode::BadFrame);
  }
}

TEST(SvcFrameV2, TraceExtensionIsOutsideTheCrc) {
  // The extension is diagnostic metadata: flipping its bytes changes the
  // decoded trace ids but must never fail the frame.
  const obs::TraceContext trace{0x0101010101010101ull, 0x0202020202020202ull};
  const std::string bytes = encode_frame(FrameType::Report, "guarded", 2, &trace);
  for (std::size_t i = kFrameHeaderSize; i < kFrameHeaderSize + kTraceContextSize;
       ++i) {
    std::string mutant = bytes;
    mutant[i] = static_cast<char>(mutant[i] ^ 0x80);
    Frame frame;
    std::size_t consumed = 0;
    Status status;
    ASSERT_EQ(decode_frame(mutant, kMaxFramePayload, frame, consumed, status),
              DecodeResult::Ok)
        << "extension byte " << i;
    EXPECT_TRUE(frame.has_trace);
    EXPECT_EQ(frame.payload, "guarded");
    EXPECT_NE(frame.trace.trace_id ^ frame.trace.span_id,
              trace.trace_id ^ trace.span_id);
  }
}

TEST(SvcFrameV2, MetricsTypesRequireAV2Header) {
  // The metrics pair decodes fine in v2 frames...
  for (const FrameType type : {FrameType::MetricsRequest, FrameType::MetricsReply}) {
    const std::string bytes = encode_frame(type, "p", 2, nullptr);
    Frame frame;
    std::size_t consumed = 0;
    Status status;
    ASSERT_EQ(decode_frame(bytes, kMaxFramePayload, frame, consumed, status),
              DecodeResult::Ok);
    EXPECT_EQ(frame.type, type);
  }
  // ...but a v1 header carrying either type is a bad frame, exactly as any
  // type > Shutdown was before v2 existed.
  for (const FrameType type : {FrameType::MetricsRequest, FrameType::MetricsReply}) {
    const std::string bytes = encode_frame(type, "p");
    Frame frame;
    std::size_t consumed = 0;
    Status status;
    EXPECT_EQ(decode_frame(bytes, kMaxFramePayload, frame, consumed, status),
              DecodeResult::Error);
    EXPECT_EQ(status.code(), ErrorCode::BadFrame);
  }
}

TEST(SvcFrameV2, TracedPayloadCorruptionStillFailsTheCrc) {
  // The CRC guards the payload even when it sits after an extension.
  const obs::TraceContext trace{3, 7};
  const std::string bytes = encode_frame(FrameType::Report, "corruptible", 2, &trace);
  for (std::size_t i = kFrameHeaderSize + kTraceContextSize; i < bytes.size(); ++i) {
    std::string mutant = bytes;
    mutant[i] = static_cast<char>(mutant[i] ^ 0x01);
    Frame frame;
    std::size_t consumed = 0;
    Status status;
    EXPECT_EQ(decode_frame(mutant, kMaxFramePayload, frame, consumed, status),
              DecodeResult::Error)
        << "payload byte " << i;
    EXPECT_EQ(status.code(), ErrorCode::CrcMismatch);
  }
}

}  // namespace
}  // namespace ppd::svc
