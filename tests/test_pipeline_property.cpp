// End-to-end property test: synthesize two-loop programs with a *known*
// iteration relationship i_y = round((i_x - b) / ... ) — i.e. the producer
// index read by consumer iteration j is f(j) = a_inv * j + c — and check
// that the full pipeline (instrumentation -> shadow profiler -> pair filter
// -> regression) recovers the ground-truth line.
#include <gtest/gtest.h>

#include <cmath>

#include "core/advisor.hpp"
#include "core/analyzer.hpp"
#include "trace/context.hpp"

namespace ppd::core {
namespace {

using trace::FunctionScope;
using trace::LoopScope;
using trace::TraceContext;

struct GroundTruth {
  // Consumer iteration j first reads the element written at producer
  // iteration stride * j + offset (clamped to the producer range).
  std::uint64_t stride;
  std::uint64_t offset;
  std::uint64_t n_consumer;
};

AnalysisResult run_synthetic(const GroundTruth& g, TraceContext& ctx) {
  PatternAnalyzer analyzer(ctx);
  const std::uint64_t n_producer = g.stride * g.n_consumer + g.offset + 1;
  const VarId buf = ctx.var("buf");
  const VarId out = ctx.var("out");
  {
    FunctionScope fn(ctx, "k", 1);
    {
      LoopScope x(ctx, "x", 2);
      for (std::uint64_t i = 0; i < n_producer; ++i) {
        x.begin_iteration();
        ctx.write(buf, i, 3, 4);
      }
    }
    {
      LoopScope y(ctx, "y", 5);
      for (std::uint64_t j = 0; j < g.n_consumer; ++j) {
        y.begin_iteration();
        ctx.read(buf, g.stride * j + g.offset, 6);
        ctx.write(out, j, 7, 4);
      }
    }
  }
  return analyzer.analyze();
}

class PipelineRecovery : public ::testing::TestWithParam<GroundTruth> {};

TEST_P(PipelineRecovery, RegressionRecoversGroundTruth) {
  const GroundTruth g = GetParam();
  TraceContext ctx;
  const AnalysisResult res = run_synthetic(g, ctx);
  ASSERT_EQ(res.pipelines.size(), 1u);
  const MultiLoopPipeline& p = res.pipelines[0];

  // Pairs are (i_x, i_y) with i_x = stride*j + offset, i_y = j; the fitted
  // line Y = aX + b must therefore have a = 1/stride, b = -offset/stride.
  const double expected_a = 1.0 / static_cast<double>(g.stride);
  const double expected_b =
      -static_cast<double>(g.offset) / static_cast<double>(g.stride);
  EXPECT_NEAR(p.fit.a, expected_a, 1e-9);
  EXPECT_NEAR(p.fit.b, expected_b, 1e-9);
  EXPECT_EQ(p.samples(), g.n_consumer);
  EXPECT_GE(p.fit.r2, 0.999);

  // The efficiency factor follows the closed form over the recovered line.
  const double nx = static_cast<double>(p.nx);
  const double ny = static_cast<double>(p.ny);
  double current = 0.5 * expected_a * nx * nx + expected_b * nx;
  if (expected_b < 0.0) {
    current += expected_b * expected_b / (2.0 * expected_a);
  }
  EXPECT_NEAR(p.e, current / (0.5 * ny * nx), 1e-9);
  EXPECT_FALSE(p.blocked);
}

INSTANTIATE_TEST_SUITE_P(
    GroundTruths, PipelineRecovery,
    ::testing::Values(GroundTruth{1, 0, 48},   // perfect pipeline
                      GroundTruth{1, 1, 48},   // reg_detect shape (b = -1)
                      GroundTruth{1, 5, 48},   // deeper peel (b = -5)
                      GroundTruth{2, 0, 48},   // a = 0.5
                      GroundTruth{4, 2, 32},   // a = 0.25, b = -0.5
                      GroundTruth{20, 60, 24}  // fluidanimate-like a = 0.05
                      ),
    [](const ::testing::TestParamInfo<GroundTruth>& param_info) {
      return "stride" + std::to_string(param_info.param.stride) + "_offset" +
             std::to_string(param_info.param.offset);
    });

// The peel hint must match the ground-truth offset.
TEST(PipelineRecovery, PeelHintMatchesOffset) {
  for (std::uint64_t offset : {1ull, 3ull, 7ull}) {
    TraceContext ctx;
    const AnalysisResult res = run_synthetic(GroundTruth{1, offset, 40}, ctx);
    const auto hints = derive_hints(res, ctx);
    bool found = false;
    for (const auto& h : hints) {
      if (h.kind == HintKind::PeelFirstIterations) {
        EXPECT_EQ(h.iterations, offset);
        found = true;
      }
    }
    EXPECT_TRUE(found) << "offset " << offset;
  }
}

}  // namespace
}  // namespace ppd::core
