// Unit tests for the evaluation-table renderers and instrumentation misuse
// (death tests: the runtime must refuse corrupted region nesting rather
// than silently corrupt every downstream analysis).
#include <gtest/gtest.h>

#include "prof/profiler.hpp"
#include "report/tables.hpp"
#include "trace/context.hpp"

namespace ppd {
namespace {

TEST(Report, Table3RowFormatting) {
  report::Table3Row row;
  row.application = "ludcmp";
  row.suite = "Polybench";
  row.loc = 135;
  row.hotspot_pct = 88.64;
  row.speedup = 14.06;
  row.threads = 32;
  row.pattern = "Multi-loop pipeline";
  const auto table = report::make_table3({row});
  const std::string out = table.render();
  EXPECT_NE(out.find("ludcmp"), std::string::npos);
  EXPECT_NE(out.find("88.64%"), std::string::npos);
  EXPECT_NE(out.find("14.06"), std::string::npos);
  EXPECT_NE(out.find("Multi-loop pipeline"), std::string::npos);
}

TEST(Report, Table4TwoDecimalPlaces) {
  report::Table4Row row{"fluidanimate", 0.05, -3.5, 0.97};
  const std::string out = report::make_table4({row}).render();
  EXPECT_NE(out.find("0.05"), std::string::npos);
  EXPECT_NE(out.find("-3.50"), std::string::npos);
  EXPECT_NE(out.find("0.97"), std::string::npos);
}

TEST(Report, Table5Integers) {
  report::Table5Row row{"fib", 52, 16, 3.25};
  const std::string out = report::make_table5({row}).render();
  EXPECT_NE(out.find("52"), std::string::npos);
  EXPECT_NE(out.find("16"), std::string::npos);
  EXPECT_NE(out.find("3.25"), std::string::npos);
}

TEST(Report, Table6ToolRows) {
  report::Table6Column col{"sum_module", "no", "no", "yes"};
  const std::string out = report::make_table6({col}).render();
  EXPECT_NE(out.find("Sambamba"), std::string::npos);
  EXPECT_NE(out.find("icc"), std::string::npos);
  EXPECT_NE(out.find("DiscoPoP"), std::string::npos);
  EXPECT_NE(out.find("sum_module"), std::string::npos);
}

TEST(Report, EmptyTablesRenderHeaders) {
  EXPECT_NE(report::make_table3({}).render().find("Application"), std::string::npos);
  EXPECT_NE(report::make_table4({}).render().find("e"), std::string::npos);
  EXPECT_NE(report::make_table5({}).render().find("Critical Path"), std::string::npos);
}

using InstrumentationDeath = ::testing::Test;

TEST(InstrumentationDeath, FinishWithOpenRegionAborts) {
  EXPECT_DEATH(
      {
        trace::TraceContext ctx;
        auto* leak = new trace::FunctionScope(ctx, "f", 1);  // never closed
        (void)leak;
        ctx.finish();
      },
      "regions still active");
}

TEST(InstrumentationDeath, IterationOutsideInnermostLoopAborts) {
  EXPECT_DEATH(
      {
        trace::TraceContext ctx;
        trace::LoopScope outer(ctx, "outer", 1);
        trace::LoopScope inner(ctx, "inner", 2);
        outer.begin_iteration();  // outer is not the innermost loop
      },
      "innermost loop");
}

// Untrusted (replayed) traces may nest loops deeper than the profiler's
// inline records support; such accesses are ignored and counted rather than
// killing the process.
TEST(Instrumentation, TooDeepLoopNestIsIgnoredAndCounted) {
  trace::TraceContext ctx;
  prof::DependenceProfiler profiler;
  ctx.add_sink(&profiler);
  {
    // Deeper than InlineLoopStack::kMaxDepth (8).
    trace::LoopScope l0(ctx, "l0", 1);
    l0.begin_iteration();
    trace::LoopScope l1(ctx, "l1", 1);
    l1.begin_iteration();
    trace::LoopScope l2(ctx, "l2", 1);
    l2.begin_iteration();
    trace::LoopScope l3(ctx, "l3", 1);
    l3.begin_iteration();
    trace::LoopScope l4(ctx, "l4", 1);
    l4.begin_iteration();
    trace::LoopScope l5(ctx, "l5", 1);
    l5.begin_iteration();
    trace::LoopScope l6(ctx, "l6", 1);
    l6.begin_iteration();
    trace::LoopScope l7(ctx, "l7", 1);
    l7.begin_iteration();
    trace::LoopScope l8(ctx, "l8", 1);
    l8.begin_iteration();
    ctx.write(ctx.var("v"), 0, 2);
    EXPECT_EQ(profiler.ignored_events(), 1u);
    EXPECT_EQ(profiler.dependence_count(), 0u);
    // Within the supported depth the profiler keeps working.
  }
  ctx.read(ctx.var("v"), 0, 3);
  EXPECT_EQ(profiler.ignored_events(), 1u);
}

}  // namespace
}  // namespace ppd
