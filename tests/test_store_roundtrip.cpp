// Round-trip property suite: for every bundled benchmark, converting the
// text trace to the binary container and replaying it must reproduce the
// *exact* event stream of a direct text replay — every AccessEvent field
// (ids, costs, loop iteration vectors, activation numbers, sequence
// numbers), every scope transition, and, as the end-to-end check, the
// byte-identical markdown report of the full downstream analysis. This is
// the acceptance bar for the binary format: detectors cannot tell which
// container the stream came from.
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "bs/benchmark.hpp"
#include "core/analyzer.hpp"
#include "report/markdown.hpp"
#include "store/reader.hpp"
#include "store/writer.hpp"
#include "trace/context.hpp"
#include "trace/serialize.hpp"
#include "trace/validator.hpp"

namespace ppd::store {
namespace {

using trace::ReplayMode;

/// Flattens every event into a comparable text form, capturing all fields a
/// detector can observe (the loop stack included).
class EventRecorder final : public trace::EventSink {
 public:
  void on_region_enter(const trace::RegionInfo& region) override {
    add("E", region.id.value(), region.kind == trace::RegionKind::Loop, region.name,
        region.line);
  }
  void on_region_exit(const trace::RegionInfo& region) override {
    add("X", region.id.value(), region.kind == trace::RegionKind::Loop, region.name,
        region.line);
  }
  void on_iteration(const trace::RegionInfo& loop, std::uint64_t iteration) override {
    out_ += "I " + std::to_string(loop.id.value()) + " " + std::to_string(iteration) +
            "\n";
  }
  void on_access(const trace::AccessEvent& a) override {
    out_ += a.kind == trace::AccessKind::Read ? "R" : "W";
    out_ += ' ';
    out_ += std::to_string(a.var.value()) + " " + std::to_string(a.addr) + " " +
            std::to_string(a.line) + " " + std::to_string(a.cost) + " " +
            std::to_string(static_cast<int>(a.op)) + " " +
            std::to_string(a.stmt.valid() ? a.stmt.value() : ~0u) + " " +
            std::to_string(a.region.valid() ? a.region.value() : ~0u) + " " +
            std::to_string(a.func.valid() ? a.func.value() : ~0u) + " " +
            std::to_string(a.func_activation) + " " + std::to_string(a.seq) + " [";
    for (const trace::LoopPosition& pos : a.loop_stack) {
      out_ += std::to_string(pos.loop.value()) + ":" + std::to_string(pos.iteration) +
              " ";
    }
    out_ += "]\n";
  }
  void on_compute(const trace::ComputeEvent& c) override {
    out_ += "C " + std::to_string(c.line) + " " + std::to_string(c.cost) + " " +
            std::to_string(c.stmt.valid() ? c.stmt.value() : ~0u) + " " +
            std::to_string(c.region.valid() ? c.region.value() : ~0u) + "\n";
  }
  void on_statement_enter(const trace::StatementInfo& stmt) override {
    add("S", stmt.id.value(), false, stmt.name, stmt.line);
  }
  void on_statement_exit(const trace::StatementInfo& stmt) override {
    add("P", stmt.id.value(), false, stmt.name, stmt.line);
  }
  void on_trace_end() override { out_ += "END\n"; }

  [[nodiscard]] const std::string& recorded() const { return out_; }

 private:
  void add(const char* tag, std::uint32_t id, bool is_loop, const std::string& name,
           std::uint32_t line) {
    out_ += tag;
    out_ += ' ';
    out_ += std::to_string(id) + " " + std::to_string(is_loop) + " " + name + " " +
            std::to_string(line) + "\n";
  }

  std::string out_;
};

std::string record_text_trace(const bs::Benchmark& benchmark) {
  std::ostringstream out;
  trace::TraceContext ctx;
  trace::TraceWriter writer(ctx, out);
  ctx.add_sink(&writer);
  benchmark.run_traced(ctx);
  ctx.finish();
  return out.str();
}

/// text -> binary conversion through the replay pipeline (what the CLI's
/// `convert` does). Small chunks force multi-chunk containers everywhere.
std::string convert_to_binary(const std::string& text) {
  std::ostringstream out;
  trace::TraceContext ctx;
  BinaryTraceWriter::Options options;
  options.target_chunk_bytes = 512;
  BinaryTraceWriter writer(ctx, out, options);
  ctx.add_sink(&writer);
  std::istringstream in(text);
  const trace::ReplayResult replay = trace::replay_trace(in, ctx, trace::ReplayOptions{});
  EXPECT_TRUE(replay.status.is_ok()) << replay.status.to_string();
  return out.str();
}

struct ReplayCapture {
  std::string events;
  std::string markdown;
  bool validator_clean = false;
};

ReplayCapture replay_text(const std::string& text) {
  trace::TraceContext ctx;
  core::PatternAnalyzer analyzer(ctx);
  EventRecorder recorder;
  trace::Validator validator;
  ctx.add_sink(&recorder);
  ctx.add_sink(&validator);
  std::istringstream in(text);
  const trace::ReplayResult replay = trace::replay_trace(in, ctx, trace::ReplayOptions{});
  EXPECT_TRUE(replay.status.is_ok()) << replay.status.to_string();
  ReplayCapture capture;
  capture.events = recorder.recorded();
  capture.markdown = report::markdown_report(analyzer.analyze(), ctx, "roundtrip");
  capture.validator_clean = validator.ok();
  return capture;
}

ReplayCapture replay_binary(const std::string& binary, ReplayMode mode,
                            std::size_t jobs) {
  trace::TraceContext ctx;
  core::PatternAnalyzer analyzer(ctx);
  EventRecorder recorder;
  trace::Validator validator;
  ctx.add_sink(&recorder);
  ctx.add_sink(&validator);
  ReadOptions options;
  options.mode = mode;
  options.jobs = jobs;
  const ReadResult result = read_trace(binary, ctx, options);
  EXPECT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_TRUE(result.finished);
  ReplayCapture capture;
  capture.events = recorder.recorded();
  capture.markdown = report::markdown_report(analyzer.analyze(), ctx, "roundtrip");
  capture.validator_clean = validator.ok();
  return capture;
}

class StoreRoundtripProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(StoreRoundtripProperty, BinaryReplayIsBitIdenticalToTextReplay) {
  const bs::Benchmark* benchmark = bs::find_benchmark(GetParam());
  ASSERT_NE(benchmark, nullptr);

  const std::string text = record_text_trace(*benchmark);
  ASSERT_FALSE(text.empty());
  const std::string binary = convert_to_binary(text);
  ASSERT_TRUE(is_binary_trace(binary));

  const ReplayCapture from_text = replay_text(text);
  ASSERT_TRUE(from_text.validator_clean);

  // Strict serial, strict parallel, and lenient replay of a pristine
  // container must all reproduce the identical event stream — and hence the
  // identical downstream report.
  const ReplayCapture strict_serial = replay_binary(binary, ReplayMode::Strict, 1);
  EXPECT_EQ(strict_serial.events, from_text.events);
  EXPECT_EQ(strict_serial.markdown, from_text.markdown);
  EXPECT_TRUE(strict_serial.validator_clean);

  const ReplayCapture strict_parallel = replay_binary(binary, ReplayMode::Strict, 4);
  EXPECT_EQ(strict_parallel.events, from_text.events);

  const ReplayCapture lenient = replay_binary(binary, ReplayMode::Lenient, 2);
  EXPECT_EQ(lenient.events, from_text.events);
  EXPECT_EQ(lenient.markdown, from_text.markdown);
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, StoreRoundtripProperty,
                         ::testing::Values("ludcmp", "reg_detect", "fluidanimate",
                                           "rot-cc", "Correlation", "2mm", "fib", "sort",
                                           "strassen", "3mm", "mvt", "fdtd-2d", "kmeans",
                                           "streamcluster", "nqueens", "bicg", "gesummv",
                                           "sum_local", "sum_module"),
                         [](const ::testing::TestParamInfo<const char*>& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace ppd::store
