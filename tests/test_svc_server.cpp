// Resident-service suite: scheduler admission control and the daemon
// end to end over a real Unix socket.
//
// The acceptance bar of the service PR is proven here: a remote analysis
// returns a report byte-identical to the one svc::analyze_trace_bytes
// produces offline for the same bytes and options; a repeat request is
// served from the report cache byte-identically, with the obs hit/miss
// counters moving exactly as the cache story claims; admission control
// rejects with an immediate Overloaded instead of queueing without bound;
// and N concurrent clients (the soak — run it under TSan) each get their
// own isolated, correct answers.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bs/benchmark.hpp"
#include "obs/obs.hpp"
#include "rt/thread_pool.hpp"
#include "store/writer.hpp"
#include "svc/analysis.hpp"
#include "svc/client.hpp"
#include "svc/scheduler.hpp"
#include "svc/server.hpp"
#include "trace/context.hpp"
#include "trace/serialize.hpp"

namespace ppd::svc {
namespace {

using support::ErrorCode;
using support::Status;

struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/ppd_svc_srv_XXXXXX";
    path = mkdtemp(tmpl);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

/// Serializes one bundled benchmark into .ppdt bytes (the daemon accepts
/// either container; binary exercises the chunked path).
std::string make_trace(const char* benchmark_name) {
  std::ostringstream out;
  trace::TraceContext ctx;
  store::BinaryTraceWriter writer(ctx, out);
  ctx.add_sink(&writer);
  const bs::Benchmark* benchmark = bs::find_benchmark(benchmark_name);
  EXPECT_NE(benchmark, nullptr) << benchmark_name;
  benchmark->run_traced(ctx);
  ctx.finish();
  return out.str();
}

/// The offline ground truth the daemon must reproduce byte for byte.
std::string offline_report(const std::string& trace_bytes) {
  AnalysisOptions options;
  options.jobs = 1;
  const AnalysisOutput output =
      analyze_trace_bytes("request", trace_bytes, options);
  EXPECT_TRUE(output.status.is_ok());
  return output.report;
}

// ---- scheduler --------------------------------------------------------------

TEST(SvcScheduler, RejectsBeyondTheAdmissionBound) {
  rt::ThreadPool pool(2);
  Scheduler scheduler(pool, {2});

  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> finished{0};
  const auto blocking_job = [&] {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return release; });
    finished.fetch_add(1);
  };

  ASSERT_TRUE(scheduler.submit(blocking_job).is_ok());
  ASSERT_TRUE(scheduler.submit(blocking_job).is_ok());
  // Both slots admitted: the third submission is shed immediately.
  const Status rejected = scheduler.submit([] {});
  ASSERT_FALSE(rejected.is_ok());
  EXPECT_EQ(rejected.code(), ErrorCode::Overloaded);
  EXPECT_EQ(scheduler.in_flight(), 2u);

  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  scheduler.drain();
  EXPECT_EQ(finished.load(), 2);
  EXPECT_EQ(scheduler.in_flight(), 0u);

  // Capacity is reusable after completion.
  EXPECT_TRUE(scheduler.submit([] {}).is_ok());
  scheduler.drain();
}

TEST(SvcScheduler, DrainWaitsForQueuedWork) {
  rt::ThreadPool pool(1);
  Scheduler scheduler(pool, {8});
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(scheduler.submit([&done] { done.fetch_add(1); }).is_ok());
  }
  scheduler.drain();
  EXPECT_EQ(done.load(), 8);
}

// ---- server end to end ------------------------------------------------------

TEST(SvcServer, StartsStopsAndAnswersPing) {
  TempDir dir;
  Server::Options options;
  options.socket_path = dir.path + "/d.sock";
  options.cache.dir.clear();
  Server server(options);
  ASSERT_TRUE(server.start().is_ok());
  EXPECT_TRUE(server.running());

  Client client;
  ASSERT_TRUE(client.connect(options.socket_path, "test").is_ok());
  EXPECT_EQ(client.version(), kProtocolVersion);
  EXPECT_EQ(client.server_name(), "ppd-analyzed");
  EXPECT_TRUE(client.ping().is_ok());

  server.stop();
  EXPECT_FALSE(server.running());
  // The socket file is gone; reconnecting fails cleanly.
  Client late;
  EXPECT_FALSE(late.connect(options.socket_path, "late").is_ok());
}

TEST(SvcServer, RemoteReportIsByteIdenticalToOffline) {
  TempDir dir;
  const std::string trace = make_trace("gesummv");
  const std::string expected = offline_report(trace);

  Server::Options options;
  options.socket_path = dir.path + "/d.sock";
  options.cache.dir = dir.path + "/cache";
  Server server(options);
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect(options.socket_path, "test").is_ok());
  std::vector<std::string> stages;
  const Client::Result result = client.analyze(
      trace, {}, [&stages](const ProgressPayload& p) { stages.push_back(p.stage); });
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_EQ(result.report, expected);
  EXPECT_FALSE(result.cached);
  EXPECT_FALSE(result.log.empty());
  ASSERT_EQ(stages.size(), 3u);
  EXPECT_EQ(stages[0], "queued");
  EXPECT_EQ(stages[1], "running");
  EXPECT_EQ(stages[2], "analyzed");
  server.stop();
}

TEST(SvcServer, SecondRequestHitsTheCacheByteIdentically) {
  TempDir dir;
  const std::string trace = make_trace("bicg");
  const std::string expected = offline_report(trace);

  Server::Options options;
  options.socket_path = dir.path + "/d.sock";
  options.cache.dir = dir.path + "/cache";
  Server server(options);
  ASSERT_TRUE(server.start().is_ok());

  const std::uint64_t hits_before =
      obs::Registry::instance().counter("svc.cache.hit").value();
  const std::uint64_t misses_before =
      obs::Registry::instance().counter("svc.cache.miss").value();

  Client client;
  ASSERT_TRUE(client.connect(options.socket_path, "test").is_ok());
  const Client::Result first = client.analyze(trace, {});
  ASSERT_TRUE(first.status.is_ok());
  EXPECT_FALSE(first.cached);

  const Client::Result second = client.analyze(trace, {});
  ASSERT_TRUE(second.status.is_ok());
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(second.report, first.report);
  EXPECT_EQ(second.report, expected);

#if !defined(PPD_OBS_DISABLED)
  EXPECT_EQ(obs::Registry::instance().counter("svc.cache.hit").value() -
                hits_before,
            1u);
  EXPECT_EQ(obs::Registry::instance().counter("svc.cache.miss").value() -
                misses_before,
            1u);
#endif

  // --refresh ignores the stored report but re-stores the fresh one.
  Client::RequestOptions refresh;
  refresh.refresh = true;
  const Client::Result third = client.analyze(trace, refresh);
  ASSERT_TRUE(third.status.is_ok());
  EXPECT_FALSE(third.cached);
  EXPECT_EQ(third.report, expected);

  // --no-cache bypasses the cache in both directions.
  Client::RequestOptions no_cache;
  no_cache.no_cache = true;
  const Client::Result fourth = client.analyze(trace, no_cache);
  ASSERT_TRUE(fourth.status.is_ok());
  EXPECT_FALSE(fourth.cached);
  EXPECT_EQ(fourth.report, expected);
  server.stop();
}

TEST(SvcServer, CacheSurvivesARestart) {
  TempDir dir;
  const std::string trace = make_trace("mvt");
  Server::Options options;
  options.socket_path = dir.path + "/d.sock";
  options.cache.dir = dir.path + "/cache";

  std::string first_report;
  {
    Server server(options);
    ASSERT_TRUE(server.start().is_ok());
    Client client;
    ASSERT_TRUE(client.connect(options.socket_path, "test").is_ok());
    const Client::Result result = client.analyze(trace, {});
    ASSERT_TRUE(result.status.is_ok());
    first_report = result.report;
    server.stop();
  }
  {
    Server server(options);
    ASSERT_TRUE(server.start().is_ok());
    Client client;
    ASSERT_TRUE(client.connect(options.socket_path, "test").is_ok());
    const Client::Result result = client.analyze(trace, {});
    ASSERT_TRUE(result.status.is_ok());
    EXPECT_TRUE(result.cached);  // served from the adopted directory
    EXPECT_EQ(result.report, first_report);
    server.stop();
  }
}

TEST(SvcServer, DifferentOptionsMissTheCache) {
  TempDir dir;
  const std::string trace = make_trace("gesummv");
  Server::Options options;
  options.socket_path = dir.path + "/d.sock";
  options.cache.dir = dir.path + "/cache";
  Server server(options);
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect(options.socket_path, "test").is_ok());
  ASSERT_TRUE(client.analyze(trace, {}).status.is_ok());

  // Same bytes, different replay options: a different cache key.
  Client::RequestOptions lenient;
  lenient.mode = trace::ReplayMode::Lenient;
  const Client::Result result = client.analyze(trace, lenient);
  ASSERT_TRUE(result.status.is_ok());
  EXPECT_FALSE(result.cached);
  server.stop();
}

TEST(SvcServer, ConnectionLimitGreetsWithOverloaded) {
  TempDir dir;
  Server::Options options;
  options.socket_path = dir.path + "/d.sock";
  options.cache.dir.clear();
  options.max_connections = 1;
  Server server(options);
  ASSERT_TRUE(server.start().is_ok());

  Client first;
  ASSERT_TRUE(first.connect(options.socket_path, "one").is_ok());
  Client second;
  const Status refused = second.connect(options.socket_path, "two");
  ASSERT_FALSE(refused.is_ok());
  EXPECT_EQ(refused.code(), ErrorCode::Overloaded);

  // The slot frees when the first client leaves.
  first.close();
  for (int attempt = 0; attempt < 100; ++attempt) {
    if (second.connect(options.socket_path, "two").is_ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(second.connected());
  server.stop();
}

TEST(SvcServer, MalformedRequestGetsAnErrorNotACrash) {
  TempDir dir;
  Server::Options options;
  options.socket_path = dir.path + "/d.sock";
  options.cache.dir.clear();
  Server server(options);
  ASSERT_TRUE(server.start().is_ok());

  // A structurally valid trace container is not required — garbage trace
  // bytes must come back as a precise ingestion Status, not a hangup.
  Client client;
  ASSERT_TRUE(client.connect(options.socket_path, "test").is_ok());
  const Client::Result result = client.analyze("this is not a trace", {});
  ASSERT_FALSE(result.status.is_ok());
  EXPECT_EQ(result.status.code(), ErrorCode::BadHeader);

  // The connection survived the failed request.
  EXPECT_TRUE(client.connected());
  EXPECT_TRUE(client.ping().is_ok());
  server.stop();
}

TEST(SvcServer, ShutdownFrameStopsTheDaemon) {
  TempDir dir;
  Server::Options options;
  options.socket_path = dir.path + "/d.sock";
  options.cache.dir.clear();
  Server server(options);
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect(options.socket_path, "test").is_ok());
  ASSERT_TRUE(client.shutdown_server().is_ok());
  EXPECT_TRUE(server.wait_for_shutdown(1000));
  server.stop();
}

// ---- live metrics scrape ----------------------------------------------------

/// Just enough Prometheus text-exposition parsing to prove a scrape is
/// well-formed: every line is a comment or `name[{labels}] value` with a
/// parseable value, and every metric name is preceded by a TYPE comment.
void check_prometheus(const std::string& text) {
  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text.back(), '\n');
  std::istringstream lines(text);
  std::string line;
  std::size_t samples = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      ASSERT_EQ(line.rfind("# TYPE ppd_", 0), 0u) << line;
      continue;
    }
    ASSERT_EQ(line.rfind("ppd_", 0), 0u) << line;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    char* end = nullptr;
    const std::string value = line.substr(space + 1);
    std::strtod(value.c_str(), &end);
    ASSERT_TRUE(end != nullptr && *end == '\0') << line;
    ++samples;
  }
  EXPECT_GT(samples, 0u);
}

TEST(SvcServer, MetricsScrapeIsLiveWhileARequestIsInFlight) {
  TempDir dir;
  const std::string trace = make_trace("gesummv");
  const std::string expected = offline_report(trace);

  Server::Options options;
  options.socket_path = dir.path + "/d.sock";
  options.cache.dir.clear();
  Server server(options);
  ASSERT_TRUE(server.start().is_ok());

  Client worker;
  ASSERT_TRUE(worker.connect(options.socket_path, "worker").is_ok());
  Client scraper;
  ASSERT_TRUE(scraper.connect(options.socket_path, "scraper").is_ok());

  // The scrape runs from inside the worker's progress callback: at that
  // point the analyze request is admitted but its report not yet received,
  // so the scrape is proven concurrent with a request in flight — and the
  // daemon must serve it without waiting for the analysis to finish.
  std::string mid_flight_prom;
  std::string mid_flight_kv;
  Status scrape_status = Status::ok();
  const Client::Result result = worker.analyze(
      trace, {}, [&](const ProgressPayload& progress) {
        if (progress.stage != "running" || !scrape_status.is_ok() ||
            !mid_flight_prom.empty()) {
          return;
        }
        scrape_status =
            scraper.metrics(kMetricsFormatPrometheus, mid_flight_prom);
        if (scrape_status.is_ok()) {
          scrape_status = scraper.metrics(kMetricsFormatKeyValue, mid_flight_kv);
        }
      });
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_EQ(result.report, expected);
  ASSERT_TRUE(scrape_status.is_ok()) << scrape_status.to_string();

#if defined(PPD_OBS_DISABLED)
  // With obs compiled out the scrape succeeds but carries an empty registry.
  (void)mid_flight_prom;
  (void)mid_flight_kv;
#else
  ASSERT_NO_FATAL_FAILURE(check_prometheus(mid_flight_prom));
  // The in-flight request is visible in the scrape itself.
  EXPECT_NE(mid_flight_prom.find("ppd_svc_requests_received_total"), std::string::npos)
      << mid_flight_prom;
  EXPECT_NE(mid_flight_kv.find("svc.requests.received="), std::string::npos);
#endif
  server.stop();
}

// The TSan soak: concurrent clients with distinct and shared traces, cache
// hits and misses interleaving, every client validating its own answers.
TEST(SvcServer, ConcurrentClientSoakKeepsPerClientIsolation) {
  TempDir dir;
  const std::vector<const char*> benchmarks = {"gesummv", "bicg", "mvt"};
  std::vector<std::string> traces;
  std::vector<std::string> expected;
  for (const char* name : benchmarks) {
    traces.push_back(make_trace(name));
    expected.push_back(offline_report(traces.back()));
  }

  Server::Options options;
  options.socket_path = dir.path + "/d.sock";
  options.cache.dir = dir.path + "/cache";
  options.jobs = 4;
  options.max_pending = 64;
  Server server(options);
  ASSERT_TRUE(server.start().is_ok());

  const std::uint64_t hits_before =
      obs::Registry::instance().counter("svc.cache.hit").value();
  const std::uint64_t misses_before =
      obs::Registry::instance().counter("svc.cache.miss").value();

  constexpr int kClients = 6;
  constexpr int kIterations = 4;
  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> cache_requests{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client;
      if (!client.connect(options.socket_path, "soak").is_ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kIterations; ++i) {
        const std::size_t which =
            static_cast<std::size_t>(c + i) % traces.size();
        const Client::Result result = client.analyze(traces[which], {});
        cache_requests.fetch_add(1);
        if (!result.status.is_ok() || result.report != expected[which]) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

#if !defined(PPD_OBS_DISABLED)
  // Counter correctness under concurrency: every cache-consulting request
  // is exactly one hit or one miss, nothing lost, nothing double-counted.
  const std::uint64_t hits =
      obs::Registry::instance().counter("svc.cache.hit").value() - hits_before;
  const std::uint64_t misses =
      obs::Registry::instance().counter("svc.cache.miss").value() -
      misses_before;
  EXPECT_EQ(hits + misses, cache_requests.load());
  // Each distinct trace misses at least once; everything else must hit.
  EXPECT_GE(misses, traces.size());
  EXPECT_GE(hits, cache_requests.load() - misses);
#endif
  server.stop();
}

}  // namespace
}  // namespace ppd::svc
