// Unit tests for the analyzer facade: configuration knobs, primary-pattern
// precedence, and the AnalysisResult accessors.
#include <gtest/gtest.h>

#include "bs/benchmark.hpp"
#include "core/analyzer.hpp"
#include "trace/context.hpp"

namespace ppd::core {
namespace {

using trace::FunctionScope;
using trace::LoopScope;
using trace::StatementScope;
using trace::TraceContext;

TEST(Analyzer, EmptyTraceYieldsNone) {
  TraceContext ctx;
  PatternAnalyzer analyzer(ctx);
  const AnalysisResult res = analyzer.analyze();
  EXPECT_EQ(res.primary, PatternKind::None);
  EXPECT_EQ(res.hotspot_node, pet::kInvalidPetNode);
  EXPECT_TRUE(res.pipelines.empty());
  EXPECT_TRUE(res.reductions.empty());
}

TEST(Analyzer, PlainDoAllFallsThroughToDoAll) {
  TraceContext ctx;
  PatternAnalyzer analyzer(ctx);
  const VarId out = ctx.var("out");
  {
    FunctionScope f(ctx, "k", 1);
    LoopScope l(ctx, "loop", 2);
    for (std::uint64_t i = 0; i < 16; ++i) {
      l.begin_iteration();
      ctx.compute(3, 4);
      ctx.write(out, i, 3);
    }
  }
  const AnalysisResult res = analyzer.analyze();
  EXPECT_EQ(res.primary, PatternKind::DoAll);
  EXPECT_EQ(res.primary_description, "Do-all");
}

TEST(Analyzer, PipelineOutranksTaskParallelism) {
  // ludcmp has both a worthwhile task scope and a perfect pipeline; the
  // pipeline wins (the paper's Table III row).
  const bs::Benchmark* ludcmp = bs::find_benchmark("ludcmp");
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*ludcmp);
  EXPECT_EQ(traced.analysis.primary, PatternKind::MultiLoopPipeline);
}

TEST(Analyzer, MinWorkersGate) {
  // With an absurd worker minimum, task parallelism cannot be primary.
  AnalyzerConfig config;
  config.min_workers = 100;
  const bs::Benchmark* mvt = bs::find_benchmark("mvt");
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*mvt, config);
  EXPECT_NE(traced.analysis.primary, PatternKind::TaskParallelism);
}

TEST(Analyzer, MinTaskSpeedupGate) {
  AnalyzerConfig config;
  config.min_task_speedup = 100.0;
  const bs::Benchmark* three_mm = bs::find_benchmark("3mm");
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*three_mm, config);
  EXPECT_NE(traced.analysis.primary, PatternKind::TaskParallelism);
}

TEST(Analyzer, HotspotFractionGatesPipelines) {
  AnalyzerConfig config;
  config.pipeline.hotspot_fraction = 0.99;  // nothing qualifies
  const bs::Benchmark* ludcmp = bs::find_benchmark("ludcmp");
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*ludcmp, config);
  EXPECT_TRUE(traced.analysis.pipelines.empty());
  EXPECT_NE(traced.analysis.primary, PatternKind::MultiLoopPipeline);
}

TEST(Analyzer, MinSamplesGatesRegression) {
  AnalyzerConfig config;
  config.pipeline.min_samples = 1000000;
  const bs::Benchmark* ludcmp = bs::find_benchmark("ludcmp");
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*ludcmp, config);
  EXPECT_TRUE(traced.analysis.pipelines.empty());
}

TEST(Analyzer, PrimaryTasksReturnsTheHotspotScope) {
  const bs::Benchmark* mvt = bs::find_benchmark("mvt");
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*mvt);
  ASSERT_EQ(traced.analysis.primary, PatternKind::TaskParallelism);
  const ScopeTaskParallelism* tasks = traced.analysis.primary_tasks();
  ASSERT_NE(tasks, nullptr);
  EXPECT_EQ(tasks->scope_node, traced.analysis.hotspot_node);
}

TEST(Analyzer, PrimaryTasksNullForNonTaskPrimary) {
  const bs::Benchmark* rotcc = bs::find_benchmark("rot-cc");
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*rotcc);
  EXPECT_EQ(traced.analysis.primary, PatternKind::Fusion);
  EXPECT_EQ(traced.analysis.primary_tasks(), nullptr);
}

TEST(Analyzer, HotspotFractionMatchesPetForAnchor) {
  const bs::Benchmark* bicg = bs::find_benchmark("bicg");
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*bicg);
  ASSERT_NE(traced.analysis.hotspot_node, pet::kInvalidPetNode);
  EXPECT_DOUBLE_EQ(traced.analysis.hotspot_cost_fraction,
                   traced.analysis.pet.cost_fraction(traced.analysis.hotspot_node));
}

TEST(Analyzer, ReductionPrecedesDoAll) {
  // A hotspot reduction loop and a hotspot do-all loop: Reduction wins the
  // primary slot (the paper reports gesummv as Reduction although its outer
  // row loop is a do-all).
  const bs::Benchmark* gesummv = bs::find_benchmark("gesummv");
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*gesummv);
  EXPECT_EQ(traced.analysis.primary, PatternKind::Reduction);
}

TEST(Analyzer, GeometricNeedsSequentialCaller) {
  // A function whose loops are all do-all/reduction but whose callers are
  // not sequential loops must not become a GD primary (the bicg/gesummv
  // kernels pass Algorithm 2 but the paper reports them as Reduction).
  const bs::Benchmark* bicg = bs::find_benchmark("bicg");
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*bicg);
  EXPECT_NE(traced.analysis.primary, PatternKind::GeometricDecomposition);
}

TEST(Analyzer, TaskScopesSortedAndConsistent) {
  const bs::Benchmark* three_mm = bs::find_benchmark("3mm");
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*three_mm);
  for (const ScopeTaskParallelism& t : traced.analysis.tasks) {
    EXPECT_EQ(t.tp.roles.size(), t.graph.size());
    EXPECT_GE(t.tp.total_cost, t.tp.critical_path_cost);
    EXPECT_GE(t.tp.estimated_speedup, 1.0);
  }
}

}  // namespace
}  // namespace ppd::core
