// Unit tests for the Program Execution Tree: structure, iteration/recursion
// merging, cost attribution, hotspot identification.
#include <gtest/gtest.h>

#include "pet/pet.hpp"
#include "trace/context.hpp"

namespace ppd::pet {
namespace {

using trace::FunctionScope;
using trace::LoopScope;
using trace::TraceContext;

struct Fixture {
  TraceContext ctx;
  PetBuilder builder;
  Fixture() { ctx.add_sink(&builder); }
};

TEST(Pet, RootIsSynthetic) {
  Fixture f;
  const Pet pet = f.builder.take();
  EXPECT_EQ(pet.root().name, "<program>");
  EXPECT_EQ(pet.nodes().size(), 1u);
}

TEST(Pet, ChildrenKeepSequentialOrder) {
  Fixture f;
  {
    FunctionScope a(f.ctx, "a", 1);
  }
  {
    FunctionScope b(f.ctx, "b", 2);
  }
  const Pet pet = f.builder.take();
  ASSERT_EQ(pet.root().children.size(), 2u);
  EXPECT_EQ(pet.node(pet.root().children[0]).name, "a");
  EXPECT_EQ(pet.node(pet.root().children[1]).name, "b");
}

TEST(Pet, LoopIterationsMergeIntoOneNode) {
  Fixture f;
  {
    LoopScope l(f.ctx, "loop", 1);
    for (int i = 0; i < 7; ++i) l.begin_iteration();
  }
  const Pet pet = f.builder.take();
  ASSERT_EQ(pet.root().children.size(), 1u);
  const PetNode& loop = pet.node(pet.root().children[0]);
  EXPECT_TRUE(loop.is_loop());
  EXPECT_EQ(loop.iterations, 7u);
  EXPECT_EQ(loop.instances, 1u);
}

TEST(Pet, RepeatedLoopInstancesAccumulate) {
  Fixture f;
  for (int instance = 0; instance < 3; ++instance) {
    LoopScope l(f.ctx, "loop", 1);
    l.begin_iteration();
    l.begin_iteration();
  }
  const Pet pet = f.builder.take();
  const PetNode& loop = pet.node(pet.root().children[0]);
  EXPECT_EQ(loop.instances, 3u);
  EXPECT_EQ(loop.iterations, 6u);
}

TEST(Pet, RecursionMergesAndMarks) {
  Fixture f;
  const VarId v = f.ctx.var("v");
  {
    FunctionScope outer(f.ctx, "rec", 1);
    f.ctx.compute(2, 10);
    {
      FunctionScope inner(f.ctx, "rec", 1);
      f.ctx.compute(2, 10);
      {
        FunctionScope innermost(f.ctx, "rec", 1);
        f.ctx.write(v, 0, 3, 5);
      }
    }
  }
  const Pet pet = f.builder.take();
  ASSERT_EQ(pet.root().children.size(), 1u);
  const PetNode& rec = pet.node(pet.root().children[0]);
  EXPECT_TRUE(rec.recursive);
  EXPECT_EQ(rec.instances, 3u);
  EXPECT_EQ(rec.inclusive_cost, 25u);
  EXPECT_TRUE(rec.children.empty());  // merged, no self-child
}

TEST(Pet, InclusiveCostSumsSubtree) {
  Fixture f;
  {
    FunctionScope fn(f.ctx, "f", 1);
    f.ctx.compute(1, 5);
    {
      LoopScope l(f.ctx, "l", 2);
      l.begin_iteration();
      f.ctx.compute(3, 20);
    }
  }
  const Pet pet = f.builder.take();
  const PetNode& fn = pet.node(pet.root().children[0]);
  EXPECT_EQ(fn.exclusive_cost, 5u);
  EXPECT_EQ(fn.inclusive_cost, 25u);
  EXPECT_EQ(pet.total_cost(), 25u);
}

TEST(Pet, HotspotsSortedByCost) {
  Fixture f;
  {
    FunctionScope cold(f.ctx, "cold", 1);
    f.ctx.compute(1, 5);
  }
  {
    FunctionScope hot(f.ctx, "hot", 2);
    f.ctx.compute(2, 95);
  }
  const Pet pet = f.builder.take();
  const auto hotspots = pet.hotspots(0.5);
  ASSERT_EQ(hotspots.size(), 1u);
  EXPECT_EQ(pet.node(hotspots[0]).name, "hot");
  const auto all = pet.hotspots(0.01);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(pet.node(all[0]).name, "hot");
}

TEST(Pet, CostFraction) {
  Fixture f;
  {
    FunctionScope a(f.ctx, "a", 1);
    f.ctx.compute(1, 25);
  }
  {
    FunctionScope b(f.ctx, "b", 2);
    f.ctx.compute(2, 75);
  }
  const Pet pet = f.builder.take();
  EXPECT_DOUBLE_EQ(pet.cost_fraction(pet.find(f.ctx.find_region("a"))), 0.25);
}

TEST(Pet, SubtreeAndNca) {
  Fixture f;
  RegionId l1_region;
  RegionId l2_region;
  {
    FunctionScope fn(f.ctx, "k", 1);
    {
      LoopScope l1(f.ctx, "l1", 2);
      l1_region = l1.id();
      l1.begin_iteration();
    }
    {
      LoopScope l2(f.ctx, "l2", 3);
      l2_region = l2.id();
      l2.begin_iteration();
    }
  }
  const Pet pet = f.builder.take();
  const NodeIndex k = pet.find(f.ctx.find_region("k"));
  const NodeIndex l1 = pet.find(l1_region);
  const NodeIndex l2 = pet.find(l2_region);
  EXPECT_TRUE(pet.in_subtree(k, l1));
  EXPECT_TRUE(pet.in_subtree(0, l2));
  EXPECT_FALSE(pet.in_subtree(l1, k));
  EXPECT_EQ(pet.nearest_common_ancestor(l1, l2), k);
  EXPECT_EQ(pet.nearest_common_ancestor(l1, l1), l1);
  EXPECT_EQ(pet.nearest_common_ancestor(k, l2), k);
}

TEST(Pet, RenderMentionsStructure) {
  Fixture f;
  {
    FunctionScope fn(f.ctx, "kernel", 1);
    LoopScope l(f.ctx, "inner", 2);
    l.begin_iteration();
    f.ctx.compute(2, 3);
  }
  const Pet pet = f.builder.take();
  const std::string out = pet.render();
  EXPECT_NE(out.find("func kernel"), std::string::npos);
  EXPECT_NE(out.find("loop inner"), std::string::npos);
  EXPECT_NE(out.find("iterations=1"), std::string::npos);
}

}  // namespace
}  // namespace ppd::pet
