// Unit tests for the dynamic dependence profiler: RAW/WAR/WAW detection,
// loop-carried classification, pipeline pair recording, reduction
// summaries, cross-activation flags, and shadow memory.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "mem/shadow.hpp"
#include "prof/profiler.hpp"
#include "prof/sharded_profiler.hpp"
#include "prof/sharded_shadow.hpp"
#include "rt/thread_pool.hpp"
#include "trace/context.hpp"

namespace ppd::prof {
namespace {

using trace::FunctionScope;
using trace::LoopScope;
using trace::TraceContext;

struct Fixture {
  TraceContext ctx;
  DependenceProfiler profiler;
  Fixture() { ctx.add_sink(&profiler); }
};

const Dependence* find_dep(const Profile& p, DepKind kind, SourceLine src, SourceLine dst) {
  for (const Dependence& d : p.dependences) {
    if (d.kind == kind && d.source.line == src && d.sink.line == dst) return &d;
  }
  return nullptr;
}

TEST(Profiler, DetectsRaw) {
  Fixture f;
  const VarId v = f.ctx.var("v");
  {
    FunctionScope fs(f.ctx, "f", 1);
    f.ctx.write(v, 0, 10);
    f.ctx.read(v, 0, 20);
  }
  const Profile p = f.profiler.take();
  const Dependence* dep = find_dep(p, DepKind::Raw, 10, 20);
  ASSERT_NE(dep, nullptr);
  EXPECT_FALSE(dep->loop_carried());
  EXPECT_EQ(dep->count, 1u);
}

TEST(Profiler, DetectsWawAndWar) {
  Fixture f;
  const VarId v = f.ctx.var("v");
  {
    FunctionScope fs(f.ctx, "f", 1);
    f.ctx.write(v, 0, 10);
    f.ctx.read(v, 0, 20);
    f.ctx.write(v, 0, 30);
  }
  const Profile p = f.profiler.take();
  EXPECT_NE(find_dep(p, DepKind::Waw, 10, 30), nullptr);
  EXPECT_NE(find_dep(p, DepKind::War, 20, 30), nullptr);
}

TEST(Profiler, NoDependenceOnDistinctAddresses) {
  Fixture f;
  const VarId v = f.ctx.var("v");
  {
    FunctionScope fs(f.ctx, "f", 1);
    f.ctx.write(v, 0, 10);
    f.ctx.read(v, 1, 20);
  }
  EXPECT_EQ(f.profiler.take().dependences.size(), 0u);
}

TEST(Profiler, LoopCarriedDetection) {
  Fixture f;
  const VarId v = f.ctx.var("acc");
  {
    LoopScope l(f.ctx, "loop", 1);
    for (int i = 0; i < 4; ++i) {
      l.begin_iteration();
      f.ctx.read(v, 0, 5);
      f.ctx.write(v, 0, 5);
    }
  }
  const Profile p = f.profiler.take();
  const Dependence* raw = find_dep(p, DepKind::Raw, 5, 5);
  ASSERT_NE(raw, nullptr);
  EXPECT_TRUE(raw->loop_carried());
  EXPECT_EQ(raw->min_distance, 1u);
  EXPECT_EQ(raw->max_distance, 1u);
}

TEST(Profiler, LoopIndependentWithinIteration) {
  Fixture f;
  const VarId v = f.ctx.var("v");
  {
    LoopScope l(f.ctx, "loop", 1);
    for (int i = 0; i < 3; ++i) {
      l.begin_iteration();
      f.ctx.write(v, static_cast<std::uint64_t>(i), 5);
      f.ctx.read(v, static_cast<std::uint64_t>(i), 6);
    }
  }
  const Profile p = f.profiler.take();
  const Dependence* raw = find_dep(p, DepKind::Raw, 5, 6);
  ASSERT_NE(raw, nullptr);
  EXPECT_FALSE(raw->loop_carried());
}

TEST(Profiler, OuterLoopCarriesWhenInnerIterationMatches) {
  // a[j] written in outer iteration t, read in outer iteration t+1, same
  // inner iteration j: carried by the *outer* loop.
  Fixture f;
  const VarId v = f.ctx.var("a");
  RegionId outer_id;
  {
    LoopScope outer(f.ctx, "outer", 1);
    outer_id = outer.id();
    for (int t = 0; t < 2; ++t) {
      outer.begin_iteration();
      LoopScope inner(f.ctx, "inner", 2);
      for (int j = 0; j < 3; ++j) {
        inner.begin_iteration();
        f.ctx.read(v, static_cast<std::uint64_t>(j), 5);
        f.ctx.write(v, static_cast<std::uint64_t>(j), 6);
      }
    }
  }
  const Profile p = f.profiler.take();
  const Dependence* raw = find_dep(p, DepKind::Raw, 6, 5);
  ASSERT_NE(raw, nullptr);
  EXPECT_EQ(raw->carrier_loop, outer_id);
}

TEST(Profiler, PipelinePairsOneToOne) {
  Fixture f;
  const VarId v = f.ctx.var("buf");
  RegionId x_id;
  RegionId y_id;
  {
    FunctionScope fs(f.ctx, "k", 1);
    {
      LoopScope x(f.ctx, "x", 2);
      x_id = x.id();
      for (int i = 0; i < 5; ++i) {
        x.begin_iteration();
        f.ctx.write(v, static_cast<std::uint64_t>(i), 3);
      }
    }
    {
      LoopScope y(f.ctx, "y", 5);
      y_id = y.id();
      for (int i = 0; i < 5; ++i) {
        y.begin_iteration();
        f.ctx.read(v, static_cast<std::uint64_t>(i), 6);
      }
    }
  }
  const Profile p = f.profiler.take();
  const LoopPairKey key{x_id, y_id};
  auto it = p.loop_pairs.find(key);
  ASSERT_NE(it, p.loop_pairs.end());
  ASSERT_EQ(it->second.size(), 5u);
  for (const IterPair& pair : it->second) EXPECT_EQ(pair.ix, pair.iy);
}

TEST(Profiler, PipelinePairKeepsLastWriterFirstReader) {
  Fixture f;
  const VarId v = f.ctx.var("buf");
  RegionId x_id;
  RegionId y_id;
  {
    FunctionScope fs(f.ctx, "k", 1);
    {
      LoopScope x(f.ctx, "x", 2);
      x_id = x.id();
      for (int i = 0; i < 4; ++i) {
        x.begin_iteration();
        f.ctx.write(v, 0, 3);  // every iteration overwrites the same address
      }
    }
    {
      LoopScope y(f.ctx, "y", 5);
      y_id = y.id();
      for (int i = 0; i < 4; ++i) {
        y.begin_iteration();
        f.ctx.read(v, 0, 6);  // every iteration reads it
      }
    }
  }
  const Profile p = f.profiler.take();
  auto it = p.loop_pairs.find(LoopPairKey{x_id, y_id});
  ASSERT_NE(it, p.loop_pairs.end());
  // One address -> exactly one pair: last writer (3), first reader (0).
  ASSERT_EQ(it->second.size(), 1u);
  EXPECT_EQ(it->second[0].ix, 3u);
  EXPECT_EQ(it->second[0].iy, 0u);
}

TEST(Profiler, NoPipelinePairWithinOneLoop) {
  Fixture f;
  const VarId v = f.ctx.var("v");
  {
    LoopScope l(f.ctx, "only", 1);
    for (int i = 0; i < 3; ++i) {
      l.begin_iteration();
      f.ctx.write(v, static_cast<std::uint64_t>(i), 2);
      if (i > 0) f.ctx.read(v, static_cast<std::uint64_t>(i - 1), 3);
    }
  }
  EXPECT_TRUE(f.profiler.take().loop_pairs.empty());
}

TEST(Profiler, ReductionSummaryRecordsSingleLine) {
  Fixture f;
  const VarId sum = f.ctx.var("sum");
  RegionId loop_id;
  {
    LoopScope l(f.ctx, "loop", 1);
    loop_id = l.id();
    for (int i = 0; i < 6; ++i) {
      l.begin_iteration();
      f.ctx.read(sum, 0, 4);
      f.ctx.write(sum, 0, 4);
    }
  }
  const Profile p = f.profiler.take();
  const auto& vars = p.carried_vars.at(loop_id);
  const CarriedVarAccess& acc = vars.at(sum);
  EXPECT_EQ(acc.write_lines.size(), 1u);
  EXPECT_EQ(acc.read_lines, acc.write_lines);
  EXPECT_EQ(acc.addresses.size(), 1u);
  EXPECT_GE(acc.occurrences, 5u);
}

TEST(Profiler, CrossActivationFlagOnRecursion) {
  Fixture f;
  const VarId ret = f.ctx.var("ret");
  {
    FunctionScope outer(f.ctx, "rec", 1);
    {
      FunctionScope inner(f.ctx, "rec", 1);
      f.ctx.write(ret, 1, 5);
    }
    f.ctx.read(ret, 1, 6);  // parent consumes the child's value
  }
  const Profile p = f.profiler.take();
  const Dependence* raw = find_dep(p, DepKind::Raw, 5, 6);
  ASSERT_NE(raw, nullptr);
  EXPECT_TRUE(raw->cross_activation);
}

TEST(Profiler, SameActivationNotFlagged) {
  Fixture f;
  const VarId v = f.ctx.var("v");
  {
    FunctionScope fs(f.ctx, "f", 1);
    f.ctx.write(v, 0, 5);
    f.ctx.read(v, 0, 6);
  }
  const Profile p = f.profiler.take();
  const Dependence* raw = find_dep(p, DepKind::Raw, 5, 6);
  ASSERT_NE(raw, nullptr);
  EXPECT_FALSE(raw->cross_activation);
}

TEST(Profiler, MergesRepeatedDynamicOccurrences) {
  Fixture f;
  const VarId v = f.ctx.var("v");
  {
    LoopScope l(f.ctx, "loop", 1);
    for (int i = 0; i < 10; ++i) {
      l.begin_iteration();
      f.ctx.read(v, 0, 4);
      f.ctx.write(v, 0, 4);
    }
  }
  const Profile p = f.profiler.take();
  const Dependence* raw = find_dep(p, DepKind::Raw, 4, 4);
  ASSERT_NE(raw, nullptr);
  EXPECT_EQ(raw->count, 9u);  // 9 cross-iteration occurrences merged
}

TEST(ShadowMemory, PagesAllocateOnFirstTouch) {
  mem::ShadowMemory<int> shadow;
  EXPECT_EQ(shadow.page_count(), 0u);
  shadow.cell(0) = 1;
  shadow.cell(1) = 2;  // same page
  EXPECT_EQ(shadow.page_count(), 1u);
  shadow.cell(1 << 20) = 3;  // a far page
  EXPECT_EQ(shadow.page_count(), 2u);
}

TEST(ShadowMemory, FindWithoutTouchReturnsNull) {
  mem::ShadowMemory<int> shadow;
  EXPECT_EQ(shadow.find(42), nullptr);
  shadow.cell(42) = 7;
  ASSERT_NE(shadow.find(42), nullptr);
  EXPECT_EQ(*shadow.find(42), 7);
}

TEST(ShadowMemory, ForEachVisitsAllCells) {
  mem::ShadowMemory<int, 4> shadow;  // 16 cells per page
  shadow.cell(3) = 5;
  int visited = 0;
  int nonzero = 0;
  shadow.for_each([&](Address, const int& cell) {
    ++visited;
    if (cell != 0) ++nonzero;
  });
  EXPECT_EQ(visited, 16);
  EXPECT_EQ(nonzero, 1);
}

// ---------------------------------------------------------------------------
// Deterministic-merge unit tests: hand-built adversarial event streams,
// processed through explicitly controlled stripe interleavings, must merge
// to the exact serial profile. These pin the merge_stripes() determinism
// argument (DESIGN.md §10) at the unit level; the bitidentity suite pins it
// end to end.

/// Records the profiler-relevant event stream so it can be replayed into
/// stripe states in arbitrary adversarial orders.
class CaptureSink : public trace::EventSink {
 public:
  LoopTally tally;
  std::vector<CapturedAccess> accesses;  ///< profilable accesses, program order

  void on_region_enter(const trace::RegionInfo& region) override {
    tally.on_enter(region);
  }
  void on_iteration(const trace::RegionInfo& loop, std::uint64_t iteration) override {
    tally.on_iteration(loop, iteration);
  }
  void on_access(const trace::AccessEvent& access) override {
    if (profilable(access)) accesses.push_back(capture(access));
  }
};

std::string serial_dump(const CaptureSink& stream) {
  StripeState state;
  for (const CapturedAccess& access : stream.accesses) state.process(access);
  return to_debug_string(merge_stripes({&state, 1}, stream.tally.loops));
}

/// Replays the stream through `stripes` stripe states using a seeded random
/// interleaving: repeatedly pick a stripe with work left and process its
/// next block of `block` accesses. Per-stripe program order (the FIFO
/// invariant the sharded front-end guarantees) is preserved; which stripe
/// advances when — the analogue of worker/chunk completion order — is
/// adversarial. Returns the canonical merged dump.
std::string shuffled_dump(const CaptureSink& stream, std::size_t stripes,
                          std::uint32_t seed, std::size_t block) {
  ShardedShadow shadow(stripes);
  std::vector<std::vector<CapturedAccess>> per_stripe(shadow.stripe_count());
  for (const CapturedAccess& access : stream.accesses) {
    per_stripe[shadow.stripe_of(access.addr)].push_back(access);
  }

  std::vector<std::size_t> cursor(per_stripe.size(), 0);
  std::vector<std::size_t> live;
  for (std::size_t i = 0; i < per_stripe.size(); ++i) {
    if (!per_stripe[i].empty()) live.push_back(i);
  }
  std::mt19937 rng(seed);
  while (!live.empty()) {
    std::uniform_int_distribution<std::size_t> pick(0, live.size() - 1);
    const std::size_t slot = pick(rng);
    const std::size_t s = live[slot];
    StripeState& state = shadow.stripe(s);
    std::size_t& at = cursor[s];
    const std::size_t end = std::min(at + block, per_stripe[s].size());
    for (; at < end; ++at) state.process(per_stripe[s][at]);
    if (at == per_stripe[s].size()) {
      live[slot] = live.back();
      live.pop_back();
    }
  }
  return to_debug_string(merge_stripes(shadow.stripes(), stream.tally.loops));
}

/// Adversarial fixture program: a hot accumulator address touched in every
/// iteration, an array whose elements scatter across stripes with RAW, WAW,
/// and WAR at every element, a reduction, a two-loop producer/consumer
/// (pipeline pairs), and wrap-around indices that alias through the 2^40
/// index mask.
void run_adversarial_program(TraceContext& ctx) {
  constexpr std::uint64_t kIndexWrap = std::uint64_t{1} << 40;
  const VarId hot = ctx.var("hot");
  const VarId arr = ctx.var("arr");
  const VarId acc = ctx.var("acc");
  const VarId ring = ctx.var("ring");

  FunctionScope fs(ctx, "main", 1);
  {
    LoopScope l(ctx, "mix", 10);
    for (std::uint64_t i = 0; i < 48; ++i) {
      l.begin_iteration();
      // Hot address: the same cell through every iteration (and, in the
      // sharded front-end, across many blocks).
      ctx.read(hot, 0, 11);
      ctx.write(hot, 0, 12);
      // Scattered elements: WAW + RAW + WAR per element, elements spread
      // over stripes.
      ctx.write(arr, i % 7, 13);
      ctx.read(arr, i % 7, 14);
      ctx.write(arr, i % 7, 15);
      // Reduction candidate.
      ctx.update(acc, 0, 16, trace::UpdateOp::Sum);
      // Wrap-around aliases: index 2^40 + k masks down to k, so these hit
      // the same cells as the plain writes above and as each other.
      ctx.write(ring, kIndexWrap - 1, 17);
      ctx.read(ring, (kIndexWrap - 1) + kIndexWrap, 18);  // aliases 2^40 - 1
      ctx.write(arr, kIndexWrap + (i % 7), 19);           // aliases arr[i % 7]
    }
  }
  // Producer/consumer loop pair: writes in `produce` are read by `consume`
  // one iteration later — pipeline iteration pairs across stripes.
  {
    LoopScope produce(ctx, "produce", 20);
    for (std::uint64_t i = 0; i < 16; ++i) {
      produce.begin_iteration();
      ctx.write(arr, 100 + i, 21);
    }
  }
  {
    LoopScope consume(ctx, "consume", 30);
    for (std::uint64_t i = 0; i < 16; ++i) {
      consume.begin_iteration();
      ctx.read(arr, 100 + i, 31);
    }
  }
}

TEST(ShardMerge, WrapAroundIndicesAliasTheSameCell) {
  constexpr std::uint64_t kIndexWrap = std::uint64_t{1} << 40;
  Fixture f;
  const VarId v = f.ctx.var("v");
  {
    FunctionScope fs(f.ctx, "f", 1);
    f.ctx.write(v, 0, 10);
    f.ctx.read(v, kIndexWrap, 20);  // masks down to index 0
    f.ctx.write(v, kIndexWrap - 1, 30);
    f.ctx.read(v, (kIndexWrap - 1) + kIndexWrap, 40);  // masks to 2^40 - 1
  }
  const Profile p = f.profiler.take();
  EXPECT_NE(find_dep(p, DepKind::Raw, 10, 20), nullptr);
  EXPECT_NE(find_dep(p, DepKind::Raw, 30, 40), nullptr);
}

TEST(ShardMerge, ShuffledStripeOrderMatchesSerial) {
  CaptureSink stream;
  TraceContext ctx;
  ctx.add_sink(&stream);
  run_adversarial_program(ctx);
  ctx.finish();
  ASSERT_FALSE(stream.accesses.empty());

  const std::string reference = serial_dump(stream);
  ASSERT_FALSE(reference.empty());

  // The adversarial program must actually exercise cross-stripe merging.
  {
    ShardedShadow shadow(64);
    std::vector<bool> hit(shadow.stripe_count(), false);
    std::size_t distinct = 0;
    for (const CapturedAccess& access : stream.accesses) {
      const std::size_t s = shadow.stripe_of(access.addr);
      if (!hit[s]) {
        hit[s] = true;
        ++distinct;
      }
    }
    EXPECT_GE(distinct, 8u) << "fixture too small to stress striping";
  }

  for (const std::size_t stripes : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}, std::size_t{64}}) {
    for (const std::uint32_t seed : {1u, 7u, 99u, 12345u}) {
      // block = 1 maximizes interleaving; 16 mimics real block dispatch.
      for (const std::size_t block : {std::size_t{1}, std::size_t{16}}) {
        EXPECT_EQ(shuffled_dump(stream, stripes, seed, block), reference)
            << "diverged at stripes=" << stripes << " seed=" << seed
            << " block=" << block;
      }
    }
  }
}

TEST(ShardMerge, SingleStripeReducesToSerialProfiler) {
  // The whole stream through one stripe must equal the serial profiler's
  // take() — the base case of the determinism argument.
  CaptureSink stream;
  DependenceProfiler profiler;
  TraceContext ctx;
  ctx.add_sink(&stream);
  ctx.add_sink(&profiler);
  run_adversarial_program(ctx);
  ctx.finish();

  EXPECT_EQ(serial_dump(stream), to_debug_string(profiler.take()));
}

TEST(ShardMerge, ShardedProfilerSmallBlocksMatchesSerial) {
  // End-to-end concurrent stress: tiny blocks force one queue push per
  // access, maximizing worker interleaving. The TSan CI leg runs this test
  // to certify the stripe-actor scheme race-free.
  DependenceProfiler serial;
  rt::ThreadPool pool(4);
  ShardedProfiler::Options options;
  options.shards = 8;
  options.block_records = 1;
  options.pool = &pool;
  ShardedProfiler sharded(options);

  TraceContext ctx;
  ctx.add_sink(&serial);
  ctx.add_sink(&sharded);
  run_adversarial_program(ctx);
  ctx.finish();

  const std::string reference = to_debug_string(serial.take());
  EXPECT_EQ(to_debug_string(sharded.take()), reference);
  // take() is non-destructive, so taking again reproduces the profile.
  EXPECT_EQ(to_debug_string(sharded.take()), reference);
  EXPECT_EQ(sharded.ignored_events(), serial.ignored_events());
}

TEST(ShardMerge, ShardedProfilerInlineModeMatchesSerial) {
  // No pool: every access processed inline on the dispatch thread, still
  // through the striped state — isolates striping from concurrency.
  DependenceProfiler serial;
  ShardedProfiler::Options options;
  options.shards = 64;
  ShardedProfiler sharded(options);

  TraceContext ctx;
  ctx.add_sink(&serial);
  ctx.add_sink(&sharded);
  run_adversarial_program(ctx);
  ctx.finish();

  EXPECT_EQ(to_debug_string(sharded.take()), to_debug_string(serial.take()));
}

}  // namespace
}  // namespace ppd::prof
