// Unit tests for the dynamic dependence profiler: RAW/WAR/WAW detection,
// loop-carried classification, pipeline pair recording, reduction
// summaries, cross-activation flags, and shadow memory.
#include <gtest/gtest.h>

#include "mem/shadow.hpp"
#include "prof/profiler.hpp"
#include "trace/context.hpp"

namespace ppd::prof {
namespace {

using trace::FunctionScope;
using trace::LoopScope;
using trace::TraceContext;

struct Fixture {
  TraceContext ctx;
  DependenceProfiler profiler;
  Fixture() { ctx.add_sink(&profiler); }
};

const Dependence* find_dep(const Profile& p, DepKind kind, SourceLine src, SourceLine dst) {
  for (const Dependence& d : p.dependences) {
    if (d.kind == kind && d.source.line == src && d.sink.line == dst) return &d;
  }
  return nullptr;
}

TEST(Profiler, DetectsRaw) {
  Fixture f;
  const VarId v = f.ctx.var("v");
  {
    FunctionScope fs(f.ctx, "f", 1);
    f.ctx.write(v, 0, 10);
    f.ctx.read(v, 0, 20);
  }
  const Profile p = f.profiler.take();
  const Dependence* dep = find_dep(p, DepKind::Raw, 10, 20);
  ASSERT_NE(dep, nullptr);
  EXPECT_FALSE(dep->loop_carried());
  EXPECT_EQ(dep->count, 1u);
}

TEST(Profiler, DetectsWawAndWar) {
  Fixture f;
  const VarId v = f.ctx.var("v");
  {
    FunctionScope fs(f.ctx, "f", 1);
    f.ctx.write(v, 0, 10);
    f.ctx.read(v, 0, 20);
    f.ctx.write(v, 0, 30);
  }
  const Profile p = f.profiler.take();
  EXPECT_NE(find_dep(p, DepKind::Waw, 10, 30), nullptr);
  EXPECT_NE(find_dep(p, DepKind::War, 20, 30), nullptr);
}

TEST(Profiler, NoDependenceOnDistinctAddresses) {
  Fixture f;
  const VarId v = f.ctx.var("v");
  {
    FunctionScope fs(f.ctx, "f", 1);
    f.ctx.write(v, 0, 10);
    f.ctx.read(v, 1, 20);
  }
  EXPECT_EQ(f.profiler.take().dependences.size(), 0u);
}

TEST(Profiler, LoopCarriedDetection) {
  Fixture f;
  const VarId v = f.ctx.var("acc");
  {
    LoopScope l(f.ctx, "loop", 1);
    for (int i = 0; i < 4; ++i) {
      l.begin_iteration();
      f.ctx.read(v, 0, 5);
      f.ctx.write(v, 0, 5);
    }
  }
  const Profile p = f.profiler.take();
  const Dependence* raw = find_dep(p, DepKind::Raw, 5, 5);
  ASSERT_NE(raw, nullptr);
  EXPECT_TRUE(raw->loop_carried());
  EXPECT_EQ(raw->min_distance, 1u);
  EXPECT_EQ(raw->max_distance, 1u);
}

TEST(Profiler, LoopIndependentWithinIteration) {
  Fixture f;
  const VarId v = f.ctx.var("v");
  {
    LoopScope l(f.ctx, "loop", 1);
    for (int i = 0; i < 3; ++i) {
      l.begin_iteration();
      f.ctx.write(v, static_cast<std::uint64_t>(i), 5);
      f.ctx.read(v, static_cast<std::uint64_t>(i), 6);
    }
  }
  const Profile p = f.profiler.take();
  const Dependence* raw = find_dep(p, DepKind::Raw, 5, 6);
  ASSERT_NE(raw, nullptr);
  EXPECT_FALSE(raw->loop_carried());
}

TEST(Profiler, OuterLoopCarriesWhenInnerIterationMatches) {
  // a[j] written in outer iteration t, read in outer iteration t+1, same
  // inner iteration j: carried by the *outer* loop.
  Fixture f;
  const VarId v = f.ctx.var("a");
  RegionId outer_id;
  {
    LoopScope outer(f.ctx, "outer", 1);
    outer_id = outer.id();
    for (int t = 0; t < 2; ++t) {
      outer.begin_iteration();
      LoopScope inner(f.ctx, "inner", 2);
      for (int j = 0; j < 3; ++j) {
        inner.begin_iteration();
        f.ctx.read(v, static_cast<std::uint64_t>(j), 5);
        f.ctx.write(v, static_cast<std::uint64_t>(j), 6);
      }
    }
  }
  const Profile p = f.profiler.take();
  const Dependence* raw = find_dep(p, DepKind::Raw, 6, 5);
  ASSERT_NE(raw, nullptr);
  EXPECT_EQ(raw->carrier_loop, outer_id);
}

TEST(Profiler, PipelinePairsOneToOne) {
  Fixture f;
  const VarId v = f.ctx.var("buf");
  RegionId x_id;
  RegionId y_id;
  {
    FunctionScope fs(f.ctx, "k", 1);
    {
      LoopScope x(f.ctx, "x", 2);
      x_id = x.id();
      for (int i = 0; i < 5; ++i) {
        x.begin_iteration();
        f.ctx.write(v, static_cast<std::uint64_t>(i), 3);
      }
    }
    {
      LoopScope y(f.ctx, "y", 5);
      y_id = y.id();
      for (int i = 0; i < 5; ++i) {
        y.begin_iteration();
        f.ctx.read(v, static_cast<std::uint64_t>(i), 6);
      }
    }
  }
  const Profile p = f.profiler.take();
  const LoopPairKey key{x_id, y_id};
  auto it = p.loop_pairs.find(key);
  ASSERT_NE(it, p.loop_pairs.end());
  ASSERT_EQ(it->second.size(), 5u);
  for (const IterPair& pair : it->second) EXPECT_EQ(pair.ix, pair.iy);
}

TEST(Profiler, PipelinePairKeepsLastWriterFirstReader) {
  Fixture f;
  const VarId v = f.ctx.var("buf");
  RegionId x_id;
  RegionId y_id;
  {
    FunctionScope fs(f.ctx, "k", 1);
    {
      LoopScope x(f.ctx, "x", 2);
      x_id = x.id();
      for (int i = 0; i < 4; ++i) {
        x.begin_iteration();
        f.ctx.write(v, 0, 3);  // every iteration overwrites the same address
      }
    }
    {
      LoopScope y(f.ctx, "y", 5);
      y_id = y.id();
      for (int i = 0; i < 4; ++i) {
        y.begin_iteration();
        f.ctx.read(v, 0, 6);  // every iteration reads it
      }
    }
  }
  const Profile p = f.profiler.take();
  auto it = p.loop_pairs.find(LoopPairKey{x_id, y_id});
  ASSERT_NE(it, p.loop_pairs.end());
  // One address -> exactly one pair: last writer (3), first reader (0).
  ASSERT_EQ(it->second.size(), 1u);
  EXPECT_EQ(it->second[0].ix, 3u);
  EXPECT_EQ(it->second[0].iy, 0u);
}

TEST(Profiler, NoPipelinePairWithinOneLoop) {
  Fixture f;
  const VarId v = f.ctx.var("v");
  {
    LoopScope l(f.ctx, "only", 1);
    for (int i = 0; i < 3; ++i) {
      l.begin_iteration();
      f.ctx.write(v, static_cast<std::uint64_t>(i), 2);
      if (i > 0) f.ctx.read(v, static_cast<std::uint64_t>(i - 1), 3);
    }
  }
  EXPECT_TRUE(f.profiler.take().loop_pairs.empty());
}

TEST(Profiler, ReductionSummaryRecordsSingleLine) {
  Fixture f;
  const VarId sum = f.ctx.var("sum");
  RegionId loop_id;
  {
    LoopScope l(f.ctx, "loop", 1);
    loop_id = l.id();
    for (int i = 0; i < 6; ++i) {
      l.begin_iteration();
      f.ctx.read(sum, 0, 4);
      f.ctx.write(sum, 0, 4);
    }
  }
  const Profile p = f.profiler.take();
  const auto& vars = p.carried_vars.at(loop_id);
  const CarriedVarAccess& acc = vars.at(sum);
  EXPECT_EQ(acc.write_lines.size(), 1u);
  EXPECT_EQ(acc.read_lines, acc.write_lines);
  EXPECT_EQ(acc.addresses.size(), 1u);
  EXPECT_GE(acc.occurrences, 5u);
}

TEST(Profiler, CrossActivationFlagOnRecursion) {
  Fixture f;
  const VarId ret = f.ctx.var("ret");
  {
    FunctionScope outer(f.ctx, "rec", 1);
    {
      FunctionScope inner(f.ctx, "rec", 1);
      f.ctx.write(ret, 1, 5);
    }
    f.ctx.read(ret, 1, 6);  // parent consumes the child's value
  }
  const Profile p = f.profiler.take();
  const Dependence* raw = find_dep(p, DepKind::Raw, 5, 6);
  ASSERT_NE(raw, nullptr);
  EXPECT_TRUE(raw->cross_activation);
}

TEST(Profiler, SameActivationNotFlagged) {
  Fixture f;
  const VarId v = f.ctx.var("v");
  {
    FunctionScope fs(f.ctx, "f", 1);
    f.ctx.write(v, 0, 5);
    f.ctx.read(v, 0, 6);
  }
  const Profile p = f.profiler.take();
  const Dependence* raw = find_dep(p, DepKind::Raw, 5, 6);
  ASSERT_NE(raw, nullptr);
  EXPECT_FALSE(raw->cross_activation);
}

TEST(Profiler, MergesRepeatedDynamicOccurrences) {
  Fixture f;
  const VarId v = f.ctx.var("v");
  {
    LoopScope l(f.ctx, "loop", 1);
    for (int i = 0; i < 10; ++i) {
      l.begin_iteration();
      f.ctx.read(v, 0, 4);
      f.ctx.write(v, 0, 4);
    }
  }
  const Profile p = f.profiler.take();
  const Dependence* raw = find_dep(p, DepKind::Raw, 4, 4);
  ASSERT_NE(raw, nullptr);
  EXPECT_EQ(raw->count, 9u);  // 9 cross-iteration occurrences merged
}

TEST(ShadowMemory, PagesAllocateOnFirstTouch) {
  mem::ShadowMemory<int> shadow;
  EXPECT_EQ(shadow.page_count(), 0u);
  shadow.cell(0) = 1;
  shadow.cell(1) = 2;  // same page
  EXPECT_EQ(shadow.page_count(), 1u);
  shadow.cell(1 << 20) = 3;  // a far page
  EXPECT_EQ(shadow.page_count(), 2u);
}

TEST(ShadowMemory, FindWithoutTouchReturnsNull) {
  mem::ShadowMemory<int> shadow;
  EXPECT_EQ(shadow.find(42), nullptr);
  shadow.cell(42) = 7;
  ASSERT_NE(shadow.find(42), nullptr);
  EXPECT_EQ(*shadow.find(42), 7);
}

TEST(ShadowMemory, ForEachVisitsAllCells) {
  mem::ShadowMemory<int, 4> shadow;  // 16 cells per page
  shadow.cell(3) = 5;
  int visited = 0;
  int nonzero = 0;
  shadow.for_each([&](Address, const int& cell) {
    ++visited;
    if (cell != 0) ++nonzero;
  });
  EXPECT_EQ(visited, 16);
  EXPECT_EQ(nonzero, 1);
}

}  // namespace
}  // namespace ppd::prof
