// Unit tests for the communication-pattern characterization (§II, ref [16])
// and the extended loop analysis (privatization / do-across).
#include <gtest/gtest.h>

#include "bs/benchmark.hpp"
#include "comm/comm.hpp"
#include "core/advisor.hpp"
#include "core/analyzer.hpp"
#include "prof/profiler.hpp"
#include "trace/context.hpp"

namespace ppd {
namespace {

using trace::FunctionScope;
using trace::LoopScope;
using trace::TraceContext;

struct CommFixture {
  TraceContext ctx;
  prof::DependenceProfiler profiler;
  comm::CommProfiler comm_profiler;
  CommFixture() {
    ctx.add_sink(&profiler);
    ctx.add_sink(&comm_profiler);
  }
  comm::CommunicationMatrix build() { return comm_profiler.build(profiler.take()); }
};

const comm::VarUsage* usage_of(const comm::CommunicationMatrix& m, VarId var) {
  for (const comm::VarUsage& u : m.variables) {
    if (u.var == var) return &u;
  }
  return nullptr;
}

TEST(Comm, PrivateVariable) {
  CommFixture f;
  const VarId v = f.ctx.var("v");
  {
    FunctionScope fn(f.ctx, "only", 1);
    f.ctx.write(v, 0, 2);
    f.ctx.read(v, 0, 3);
  }
  const auto m = f.build();
  const comm::VarUsage* u = usage_of(m, v);
  ASSERT_NE(u, nullptr);
  EXPECT_EQ(u->sharing, comm::Sharing::Private);
  EXPECT_TRUE(m.edges.empty());
}

TEST(Comm, ReadOnlySharing) {
  CommFixture f;
  const VarId v = f.ctx.var("table");
  {
    FunctionScope a(f.ctx, "reader_a", 1);
    f.ctx.read(v, 0, 2);
  }
  {
    FunctionScope b(f.ctx, "reader_b", 4);
    f.ctx.read(v, 0, 5);
  }
  const auto m = f.build();
  EXPECT_EQ(usage_of(m, v)->sharing, comm::Sharing::ReadOnly);
}

TEST(Comm, ProducerConsumerEdge) {
  CommFixture f;
  const VarId v = f.ctx.var("buf");
  RegionId producer;
  RegionId consumer;
  {
    FunctionScope p(f.ctx, "producer", 1);
    producer = p.id();
    for (std::uint64_t i = 0; i < 8; ++i) f.ctx.write(v, i, 2);
  }
  {
    FunctionScope c(f.ctx, "consumer", 4);
    consumer = c.id();
    for (std::uint64_t i = 0; i < 8; ++i) f.ctx.read(v, i, 5);
  }
  const auto m = f.build();
  EXPECT_EQ(usage_of(m, v)->sharing, comm::Sharing::ProducerConsumer);
  ASSERT_EQ(m.edges.size(), 1u);
  EXPECT_EQ(m.edges[0].producer, producer);
  EXPECT_EQ(m.edges[0].consumer, consumer);
  EXPECT_EQ(m.edges[0].occurrences, 8u);
  EXPECT_EQ(m.edges[0].variables, 1u);
}

TEST(Comm, MigratoryOwnership) {
  CommFixture f;
  const VarId v = f.ctx.var("token");
  {
    FunctionScope a(f.ctx, "stage_a", 1);
    f.ctx.read(v, 0, 2);
    f.ctx.write(v, 0, 2);
  }
  {
    FunctionScope b(f.ctx, "stage_b", 4);
    f.ctx.read(v, 0, 5);
    f.ctx.write(v, 0, 5);
  }
  const auto m = f.build();
  EXPECT_EQ(usage_of(m, v)->sharing, comm::Sharing::Migratory);
}

TEST(Comm, EdgesSortedByTraffic) {
  CommFixture f;
  const VarId hot = f.ctx.var("hot");
  const VarId cold = f.ctx.var("cold");
  {
    FunctionScope p(f.ctx, "p", 1);
    for (std::uint64_t i = 0; i < 16; ++i) f.ctx.write(hot, i, 2);
    f.ctx.write(cold, 0, 3);
  }
  {
    FunctionScope c1(f.ctx, "c_hot", 5);
    for (std::uint64_t i = 0; i < 16; ++i) f.ctx.read(hot, i, 6);
  }
  {
    FunctionScope c2(f.ctx, "c_cold", 8);
    f.ctx.read(cold, 0, 9);
  }
  const auto m = f.build();
  ASSERT_EQ(m.edges.size(), 2u);
  EXPECT_GT(m.edges[0].occurrences, m.edges[1].occurrences);
}

TEST(Comm, RenderNamesRegionsAndVars) {
  CommFixture f;
  const VarId v = f.ctx.var("payload");
  {
    FunctionScope p(f.ctx, "writer", 1);
    f.ctx.write(v, 0, 2);
  }
  {
    FunctionScope c(f.ctx, "reader", 4);
    f.ctx.read(v, 0, 5);
  }
  const auto m = f.build();
  const std::string out = m.render(f.ctx);
  EXPECT_NE(out.find("writer -> reader"), std::string::npos);
  EXPECT_NE(out.find("payload: producer/consumer"), std::string::npos);
}

// ---- extended loop analysis ------------------------------------------------------

TEST(LoopAnalysis, PrivatizableTemporary) {
  // t is written then read within each iteration; across iterations only
  // WAR/WAW cross — privatization turns the loop into a do-all.
  TraceContext ctx;
  core::PatternAnalyzer analyzer(ctx);
  const VarId t = ctx.var("t");
  const VarId out = ctx.var("out");
  RegionId loop_id;
  {
    LoopScope l(ctx, "loop", 1);
    loop_id = l.id();
    for (std::uint64_t i = 0; i < 8; ++i) {
      l.begin_iteration();
      ctx.write(t, 0, 2);
      ctx.read(t, 0, 3);
      ctx.write(out, i, 3);
    }
  }
  const core::AnalysisResult res = analyzer.analyze();
  const core::LoopAnalysis la = core::analyze_loop(res.profile, loop_id);
  EXPECT_EQ(la.cls, core::LoopClass::Sequential);
  ASSERT_EQ(la.privatizable.size(), 1u);
  EXPECT_EQ(la.privatizable[0], t);
  EXPECT_TRUE(la.doall_after_transform);
  EXPECT_EQ(la.doacross_distance, 0u);

  const auto hints = core::derive_hints(res, ctx);
  bool found = false;
  for (const auto& h : hints) {
    if (h.kind == core::HintKind::PrivatizeVariables) {
      found = true;
      EXPECT_NE(h.text.find("'t'"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

TEST(LoopAnalysis, DoacrossConstantDistance) {
  TraceContext ctx;
  core::PatternAnalyzer analyzer(ctx);
  const VarId a = ctx.var("a");
  RegionId loop_id;
  {
    LoopScope l(ctx, "loop", 1);
    loop_id = l.id();
    for (std::uint64_t i = 3; i < 32; ++i) {
      l.begin_iteration();
      ctx.read(a, i - 3, 2);  // distance-3 recurrence
      ctx.write(a, i, 3);
    }
  }
  const core::AnalysisResult res = analyzer.analyze();
  const core::LoopAnalysis la = core::analyze_loop(res.profile, loop_id);
  EXPECT_EQ(la.cls, core::LoopClass::Sequential);
  EXPECT_EQ(la.doacross_distance, 3u);
  EXPECT_TRUE(la.doacross_regular);
  EXPECT_FALSE(la.doall_after_transform);
}

TEST(LoopAnalysis, IrregularDistanceNotDoacross) {
  TraceContext ctx;
  core::PatternAnalyzer analyzer(ctx);
  const VarId a = ctx.var("a");
  RegionId loop_id;
  {
    LoopScope l(ctx, "loop", 1);
    loop_id = l.id();
    for (std::uint64_t i = 1; i < 32; ++i) {
      l.begin_iteration();
      ctx.read(a, i / 2, 2);  // varying distance
      ctx.write(a, i, 3);
    }
  }
  const core::AnalysisResult res = analyzer.analyze();
  const core::LoopAnalysis la = core::analyze_loop(res.profile, loop_id);
  EXPECT_FALSE(la.doacross_regular);
}

TEST(LoopAnalysis, RegDetectPathLoopIsDoacross) {
  const bs::Benchmark* reg_detect = bs::find_benchmark("reg_detect");
  ASSERT_NE(reg_detect, nullptr);
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*reg_detect);
  const core::LoopAnalysis la = core::analyze_loop(
      traced.analysis.profile, traced.ctx->find_region("reg_detect_L2"));
  EXPECT_EQ(la.cls, core::LoopClass::Sequential);
  EXPECT_EQ(la.doacross_distance, 1u);
  EXPECT_TRUE(la.doacross_regular);
}

TEST(LoopAnalysis, DoAllLoopHasNothingToTransform) {
  TraceContext ctx;
  core::PatternAnalyzer analyzer(ctx);
  const VarId out = ctx.var("out");
  RegionId loop_id;
  {
    LoopScope l(ctx, "loop", 1);
    loop_id = l.id();
    for (std::uint64_t i = 0; i < 8; ++i) {
      l.begin_iteration();
      ctx.write(out, i, 2);
    }
  }
  const core::AnalysisResult res = analyzer.analyze();
  const core::LoopAnalysis la = core::analyze_loop(res.profile, loop_id);
  EXPECT_EQ(la.cls, core::LoopClass::DoAll);
  EXPECT_TRUE(la.privatizable.empty());
  EXPECT_FALSE(la.doall_after_transform);
}

}  // namespace
}  // namespace ppd
