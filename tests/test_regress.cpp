// Unit and property tests for linear regression and the efficiency factor
// (Eq. 1 and Eq. 2).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "regress/linreg.hpp"

namespace ppd::regress {
namespace {

TEST(LinReg, PerfectLineRecovered) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(2.0 * i + 3.0);
  }
  const LinearFit fit_result = fit(xs, ys);
  EXPECT_NEAR(fit_result.a, 2.0, 1e-12);
  EXPECT_NEAR(fit_result.b, 3.0, 1e-12);
  EXPECT_NEAR(fit_result.r2, 1.0, 1e-12);
}

TEST(LinReg, IterPairOverload) {
  std::vector<prof::IterPair> pairs;
  for (std::uint64_t i = 1; i < 10; ++i) pairs.push_back({i, i - 1});
  const LinearFit fit_result = fit(pairs);
  EXPECT_NEAR(fit_result.a, 1.0, 1e-12);
  EXPECT_NEAR(fit_result.b, -1.0, 1e-12);
}

TEST(LinReg, EmptyInput) {
  const LinearFit fit_result = fit(std::span<const double>{}, std::span<const double>{});
  EXPECT_FALSE(fit_result.usable());
  EXPECT_EQ(fit_result.samples, 0u);
}

TEST(LinReg, DegenerateConstantX) {
  const std::vector<double> xs{2.0, 2.0, 2.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  const LinearFit fit_result = fit(xs, ys);
  EXPECT_DOUBLE_EQ(fit_result.a, 0.0);
  EXPECT_DOUBLE_EQ(fit_result.b, 2.0);
}

TEST(Efficiency, PerfectPipelineIsOne) {
  LinearFit f;
  f.a = 1.0;
  f.b = 0.0;
  f.samples = 10;
  EXPECT_NEAR(efficiency_factor(f, 100.0, 100.0), 1.0, 1e-12);
}

TEST(Efficiency, RegDetectShape) {
  // a = 1, b = -1 over N iterations: e = (N-2)/N (paper: 0.99 for large N).
  LinearFit f;
  f.a = 1.0;
  f.b = -1.0;
  f.samples = 10;
  const double e = efficiency_factor(f, 200.0, 200.0);
  EXPECT_NEAR(e, 0.99, 0.005);
}

TEST(Efficiency, FluidanimateShape) {
  // a = 0.05 with nx = 20*ny, b = -4: e ~ 1 - 8/ny.
  LinearFit f;
  f.a = 0.05;
  f.b = -4.0;
  f.samples = 100;
  const double ny = 256.0;
  const double nx = 20.0 * ny;
  const double e = efficiency_factor(f, nx, ny);
  // Closed form with the clamped negative stretch: the line is positive only
  // above its root -b/a, so the area gains b^2/(2a) over the naive integral.
  const double expected =
      (0.5 * f.a * nx * nx + f.b * nx + f.b * f.b / (2.0 * f.a)) / (0.5 * ny * nx);
  EXPECT_NEAR(e, expected, 1e-12);
  EXPECT_NEAR(e, 0.97, 0.005);  // the paper's Table IV value
}

TEST(Efficiency, BlockingProducerIsZero) {
  // a = 0, b = 0: every y iteration waits for all of x.
  LinearFit f;
  f.a = 0.0;
  f.b = 0.0;
  f.samples = 5;
  EXPECT_DOUBLE_EQ(efficiency_factor(f, 50.0, 50.0), 0.0);
}

TEST(Efficiency, EarlyStartExceedsOne) {
  // b > 0: y can start before x produces anything -> e > 1 (§III-A: the
  // loops can run almost in parallel).
  LinearFit f;
  f.a = 1.0;
  f.b = 20.0;
  f.samples = 5;
  EXPECT_GT(efficiency_factor(f, 100.0, 100.0), 1.0);
}

TEST(Efficiency, NegativeStretchClamped) {
  // A line deep below zero contributes no negative area.
  LinearFit f;
  f.a = 0.5;
  f.b = -1000.0;
  f.samples = 5;
  EXPECT_DOUBLE_EQ(efficiency_factor(f, 10.0, 10.0), 0.0);
}

// Property sweep: regression recovers arbitrary lines exactly from exact
// samples, and the efficiency factor of the recovered line matches the
// closed-form area ratio.
class LineRecovery : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(LineRecovery, RecoversCoefficients) {
  const auto [a, b] = GetParam();
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(a * i + b);
  }
  const LinearFit fit_result = fit(xs, ys);
  EXPECT_NEAR(fit_result.a, a, 1e-9);
  EXPECT_NEAR(fit_result.b, b, 1e-9);
  EXPECT_GE(fit_result.r2, a == 0.0 ? 0.0 : 0.999);

  const double nx = 50.0;
  const double ny = 50.0;
  const double e = efficiency_factor(fit_result, nx, ny);
  EXPECT_GE(e, 0.0);
  if (a > 0.0 && b >= 0.0) {
    const double expected = (0.5 * a * nx * nx + b * nx) / (0.5 * ny * nx);
    EXPECT_NEAR(e, expected, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Lines, LineRecovery,
    ::testing::Values(std::tuple{1.0, 0.0}, std::tuple{1.0, -1.0}, std::tuple{0.05, -3.5},
                      std::tuple{2.0, 5.0}, std::tuple{0.5, 10.0}, std::tuple{0.0, 7.0},
                      std::tuple{3.0, -20.0}));

}  // namespace
}  // namespace ppd::regress
