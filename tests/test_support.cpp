// Unit tests for the support substrate: strong ids, table rendering, stats.
#include <gtest/gtest.h>

#include "support/ids.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace ppd {
namespace {

TEST(Ids, DefaultIsInvalid) {
  RegionId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, RegionId::invalid());
}

TEST(Ids, ValueRoundTrip) {
  RegionId id(7);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 7u);
}

TEST(Ids, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<RegionId, CuId>);
  static_assert(!std::is_same_v<VarId, StatementId>);
}

TEST(Ids, Ordering) {
  EXPECT_LT(RegionId(1), RegionId(2));
  EXPECT_EQ(RegionId(3), RegionId(3));
}

TEST(Ids, Hashable) {
  std::hash<RegionId> h;
  EXPECT_EQ(h(RegionId(5)), h(RegionId(5)));
}

TEST(TextTable, RendersAlignedColumns) {
  support::TextTable t;
  t.set_header({"name", "value"});
  t.set_alignment({support::Align::Left, support::Align::Right});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "23"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  // Right-aligned: "23" ends at the same column as header "value".
  EXPECT_NE(out.find("   23"), std::string::npos);
}

TEST(TextTable, CsvOutput) {
  support::TextTable t;
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.render_csv(), "a,b\n1,2\n");
}

TEST(TextTable, SeparatorDoesNotAffectCsv) {
  support::TextTable t;
  t.set_header({"a"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  EXPECT_EQ(t.render_csv(), "a\n1\n2\n");
  EXPECT_EQ(t.row_count(), 3u);  // separator counts as a row slot
}

TEST(FormatFixed, Rounds) {
  EXPECT_EQ(support::format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(support::format_fixed(0.975, 2), "0.97");  // printf rounding of the double
  EXPECT_EQ(support::format_fixed(14.058, 2), "14.06");
}

TEST(Stats, MeanAndVariance) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(support::mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(support::variance(xs), 1.25);
}

TEST(Stats, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(support::mean({}), 0.0);
  EXPECT_DOUBLE_EQ(support::variance({}), 0.0);
}

TEST(Stats, PerfectCorrelation) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{2.0, 4.0, 6.0};
  EXPECT_NEAR(support::correlation(xs, ys), 1.0, 1e-12);
}

TEST(Stats, AntiCorrelation) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{3.0, 2.0, 1.0};
  EXPECT_NEAR(support::correlation(xs, ys), -1.0, 1e-12);
}

TEST(Stats, ZeroVarianceIsZeroCorrelation) {
  const std::vector<double> xs{1.0, 1.0, 1.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(support::correlation(xs, ys), 0.0);
}

}  // namespace
}  // namespace ppd
