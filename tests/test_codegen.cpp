// Unit tests for pipeline-chain assembly (§III-A n-stage chains), the
// n-stage chain executor, and the OpenMP skeleton generator.
#include <gtest/gtest.h>

#include <numeric>

#include "bs/benchmark.hpp"
#include "core/analyzer.hpp"
#include "core/multiloop_pipeline.hpp"
#include "core/omp_codegen.hpp"
#include "rt/parallel.hpp"
#include "trace/context.hpp"

namespace ppd::core {
namespace {

using trace::FunctionScope;
using trace::LoopScope;
using trace::TraceContext;

// ---- chain assembly -----------------------------------------------------------

AnalysisResult run_three_loop_chain(TraceContext& ctx) {
  PatternAnalyzer analyzer(ctx);
  const VarId a = ctx.var("a");
  const VarId b = ctx.var("b");
  const VarId c = ctx.var("c");
  constexpr std::uint64_t n = 24;
  {
    FunctionScope fn(ctx, "k", 1);
    {
      LoopScope x(ctx, "x", 2);
      for (std::uint64_t i = 0; i < n; ++i) {
        x.begin_iteration();
        ctx.write(a, i, 3, 4);
      }
    }
    {
      LoopScope y(ctx, "y", 5);
      for (std::uint64_t i = 0; i < n; ++i) {
        y.begin_iteration();
        ctx.read(a, i, 6);
        if (i > 0) ctx.read(b, i - 1, 6);
        ctx.write(b, i, 6, 4);
      }
    }
    {
      LoopScope z(ctx, "z", 8);
      for (std::uint64_t i = 0; i < n; ++i) {
        z.begin_iteration();
        ctx.read(b, i, 9);
        ctx.write(c, i, 9, 4);
      }
    }
  }
  return analyzer.analyze();
}

TEST(PipelineChains, ThreeLoopChainAssembles) {
  TraceContext ctx;
  const AnalysisResult res = run_three_loop_chain(ctx);
  // §III-A: a chain of 3 dependent loops yields 2 pairwise relationships.
  ASSERT_EQ(res.reported_pipelines().size(), 2u);
  const auto chains = build_pipeline_chains(res.pipelines);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].stage_count(), 3u);
  EXPECT_EQ(ctx.region(chains[0].stages[0]).name, "x");
  EXPECT_EQ(ctx.region(chains[0].stages[1]).name, "y");
  EXPECT_EQ(ctx.region(chains[0].stages[2]).name, "z");
  ASSERT_EQ(chains[0].links.size(), 2u);
  EXPECT_NEAR(chains[0].links[0]->fit.a, 1.0, 1e-9);
}

TEST(PipelineChains, TwoLoopPairIsAChainOfTwo) {
  const bs::Benchmark* ludcmp = bs::find_benchmark("ludcmp");
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*ludcmp);
  const auto chains = build_pipeline_chains(traced.analysis.pipelines);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].stage_count(), 2u);
}

TEST(PipelineChains, BlockedLinksExcluded) {
  const bs::Benchmark* three_mm = bs::find_benchmark("3mm");
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*three_mm);
  EXPECT_TRUE(build_pipeline_chains(traced.analysis.pipelines).empty());
}

// ---- n-stage chain executor ------------------------------------------------------

class ChainExecutor : public ::testing::TestWithParam<int> {};

TEST_P(ChainExecutor, ThreeStageChainMatchesSequential) {
  const std::size_t threads = static_cast<std::size_t>(GetParam());
  constexpr std::uint64_t n = 120;
  std::vector<std::int64_t> a(n, 0), b(n, 0), c(n, 0);

  rt::ThreadPool pool(threads);
  std::vector<rt::PipelineStage> stages(3);
  stages[0].iterations = n;
  stages[0].run = [&](std::uint64_t i) { a[i] = static_cast<std::int64_t>(i) + 1; };
  stages[1].iterations = n;
  stages[1].run = [&](std::uint64_t i) { b[i] = a[i] + (i > 0 ? b[i - 1] : 0); };
  stages[1].need = [](std::uint64_t j) { return j + 1; };
  stages[2].iterations = n;
  stages[2].run = [&](std::uint64_t i) { c[i] = 2 * b[i]; };
  stages[2].need = [](std::uint64_t j) { return j + 1; };
  rt::pipelined_loop_chain(pool, std::move(stages));

  std::int64_t prefix = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    prefix += static_cast<std::int64_t>(i) + 1;
    EXPECT_EQ(b[i], prefix);
    EXPECT_EQ(c[i], 2 * prefix);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ChainExecutor, ::testing::Values(1, 2, 3, 4, 8));

TEST(ChainExecutorEdge, EmptyChainIsNoop) {
  rt::ThreadPool pool(2);
  rt::pipelined_loop_chain(pool, {});
}

TEST(ChainExecutorEdge, SingleStageRunsAll) {
  rt::ThreadPool pool(2);
  std::vector<int> hits(16, 0);
  std::vector<rt::PipelineStage> stages(1);
  stages[0].iterations = hits.size();
  stages[0].run = [&](std::uint64_t i) { hits[i] = 1; };
  rt::pipelined_loop_chain(pool, std::move(stages));
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 16);
}

// ---- OpenMP generation -------------------------------------------------------------

std::string all_constructs(const std::vector<OmpSuggestion>& suggestions) {
  std::string joined;
  for (const OmpSuggestion& s : suggestions) joined += s.construct + "\n---\n";
  return joined;
}

TEST(OmpCodegen, ReductionClauseWithInferredOperator) {
  const bs::Benchmark* bicg = bs::find_benchmark("bicg");
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*bicg);
  const auto suggestions = generate_openmp(traced.analysis, *traced.ctx);
  const std::string joined = all_constructs(suggestions);
  EXPECT_NE(joined.find("reduction(+:"), std::string::npos);
  EXPECT_NE(joined.find("s"), std::string::npos);
}

TEST(OmpCodegen, TwoAccumulatorsShareOneClause) {
  const bs::Benchmark* gesummv = bs::find_benchmark("gesummv");
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*gesummv);
  const auto suggestions = generate_openmp(traced.analysis, *traced.ctx);
  bool found = false;
  for (const OmpSuggestion& s : suggestions) {
    if (s.construct.find("reduction(+:tmp,y)") != std::string::npos ||
        s.construct.find("reduction(+:y,tmp)") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << all_constructs(suggestions);
}

TEST(OmpCodegen, FusionBecomesParallelFor) {
  const bs::Benchmark* two_mm = bs::find_benchmark("2mm");
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*two_mm);
  const auto suggestions = generate_openmp(traced.analysis, *traced.ctx);
  ASSERT_FALSE(suggestions.empty());
  EXPECT_NE(suggestions[0].construct.find("#pragma omp parallel for"), std::string::npos);
  EXPECT_NE(suggestions[0].note.find("after fusing"), std::string::npos);
}

TEST(OmpCodegen, TaskSkeletonFollowsClassification) {
  const bs::Benchmark* mvt = bs::find_benchmark("mvt");
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*mvt);
  const auto suggestions = generate_openmp(traced.analysis, *traced.ctx);
  const std::string joined = all_constructs(suggestions);
  EXPECT_NE(joined.find("#pragma omp task"), std::string::npos);
  EXPECT_NE(joined.find("#pragma omp single"), std::string::npos);
}

TEST(OmpCodegen, GeometricDecompositionChunks) {
  const bs::Benchmark* streamcluster = bs::find_benchmark("streamcluster");
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*streamcluster);
  const auto suggestions = generate_openmp(traced.analysis, *traced.ctx);
  const std::string joined = all_constructs(suggestions);
  EXPECT_NE(joined.find("omp_get_thread_num"), std::string::npos);
  EXPECT_NE(joined.find("localSearch"), std::string::npos);
}

TEST(OmpCodegen, DoacrossOrderedDepend) {
  const bs::Benchmark* reg_detect = bs::find_benchmark("reg_detect");
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*reg_detect);
  const auto suggestions = generate_openmp(traced.analysis, *traced.ctx);
  const std::string joined = all_constructs(suggestions);
  EXPECT_NE(joined.find("ordered depend(sink: i-1)"), std::string::npos);
}

}  // namespace
}  // namespace ppd::core
