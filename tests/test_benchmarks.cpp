// Integration tests: the full detection pipeline over every reproduced
// benchmark must find the pattern the paper reports (Table III's "Detected
// Pattern" column), and the parallel implementation of each detected
// pattern must compute the same result as the sequential kernel.
#include <gtest/gtest.h>

#include "bs/benchmark.hpp"
#include "core/analyzer.hpp"

namespace ppd::bs {
namespace {

class DetectionMatchesPaper : public ::testing::TestWithParam<const Benchmark*> {};

TEST_P(DetectionMatchesPaper, PrimaryPattern) {
  const Benchmark& benchmark = *GetParam();
  const TracedAnalysis traced = analyze_benchmark(benchmark);
  EXPECT_EQ(traced.analysis.primary_description, benchmark.paper().pattern)
      << "for " << benchmark.paper().name;
}

TEST_P(DetectionMatchesPaper, HotspotIdentified) {
  const Benchmark& benchmark = *GetParam();
  const TracedAnalysis traced = analyze_benchmark(benchmark);
  ASSERT_NE(traced.analysis.hotspot_node, pet::kInvalidPetNode);
  EXPECT_GT(traced.analysis.hotspot_cost_fraction, 0.0);
}

TEST_P(DetectionMatchesPaper, SimDagIsConsistent) {
  const Benchmark& benchmark = *GetParam();
  const TracedAnalysis traced = analyze_benchmark(benchmark);
  const sim::TaskDag dag = benchmark.build_sim_dag(traced.analysis);
  ASSERT_GT(dag.size(), 0u);
  EXPECT_GT(dag.total_work(), 0u);
  EXPECT_LE(dag.critical_path(), dag.total_work());
}

class ParallelMatchesSequential
    : public ::testing::TestWithParam<std::tuple<const Benchmark*, std::size_t>> {};

TEST_P(ParallelMatchesSequential, SameOutput) {
  const auto [benchmark, threads] = GetParam();
  const VerifyOutcome outcome = benchmark->verify_parallel(threads);
  EXPECT_TRUE(outcome.ok) << benchmark->paper().name << " with " << threads
                          << " threads: " << outcome.detail;
}

std::vector<const Benchmark*> benchmarks() { return all_benchmarks(); }

std::string benchmark_name(const ::testing::TestParamInfo<const Benchmark*>& info) {
  std::string name = info.param->paper().name;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, DetectionMatchesPaper,
                         ::testing::ValuesIn(benchmarks()), benchmark_name);

std::string parallel_name(
    const ::testing::TestParamInfo<std::tuple<const Benchmark*, std::size_t>>& info) {
  std::string name = std::get<0>(info.param)->paper().name;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name + "_t" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ParallelMatchesSequential,
                         ::testing::Combine(::testing::ValuesIn(benchmarks()),
                                            ::testing::Values(std::size_t{2}, std::size_t{4},
                                                              std::size_t{8})),
                         parallel_name);

TEST(Registry, HasAllNineteenBenchmarks) {
  EXPECT_EQ(all_benchmarks().size(), 19u);
  EXPECT_NE(find_benchmark("ludcmp"), nullptr);
  EXPECT_NE(find_benchmark("fluidanimate"), nullptr);
  EXPECT_EQ(find_benchmark("not-a-benchmark"), nullptr);
}

TEST(Registry, PaperRowsAreComplete) {
  for (const Benchmark* b : all_benchmarks()) {
    const PaperRow& row = b->paper();
    EXPECT_NE(row.name, nullptr);
    EXPECT_GT(row.loc, 0);
    EXPECT_FALSE(std::string(row.pattern).empty());
  }
}

}  // namespace
}  // namespace ppd::bs
