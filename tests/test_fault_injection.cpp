// Fuzz-style robustness suite for the trace ingestion boundary.
//
// For every bundled benchmark, the pristine trace is recorded once and then
// mutated >= 50 times by the deterministic FaultInjector (every fault kind,
// several seeds each). The contract under test: replaying any mutant never
// crashes or aborts the process. Strict mode either ingests the mutant or
// stops with a Status naming the offending line; lenient mode always
// completes a degraded analysis and accounts for what it dropped or
// repaired. Each case reproduces from its (benchmark, fault, seed) triple.
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>

#include "bs/benchmark.hpp"
#include "core/analyzer.hpp"
#include "store/reader.hpp"
#include "store/writer.hpp"
#include "support/assert.hpp"
#include "support/status.hpp"
#include "trace/context.hpp"
#include "trace/fault_injector.hpp"
#include "trace/serialize.hpp"
#include "trace/validator.hpp"

namespace ppd::trace {
namespace {

using support::DiagSink;
using support::ErrorCode;

constexpr int kMutationsPerBenchmark = 50;

std::string record_pristine_trace(const bs::Benchmark& benchmark) {
  std::ostringstream out;
  TraceContext ctx;
  TraceWriter writer(ctx, out);
  ctx.add_sink(&writer);
  benchmark.run_traced(ctx);
  ctx.finish();
  return out.str();
}

class FaultInjection : public ::testing::TestWithParam<const char*> {};

TEST_P(FaultInjection, MutatedTracesNeverCrashEitherReplayMode) {
  const bs::Benchmark* benchmark = bs::find_benchmark(GetParam());
  ASSERT_NE(benchmark, nullptr);
  const std::string pristine = record_pristine_trace(*benchmark);
  ASSERT_FALSE(pristine.empty());

  // Any residual internal-invariant violation surfaces as a thrown
  // AssertionError (and thus a test failure) instead of killing the runner.
  support::ScopedFailureHandler guard(&support::throwing_failure_handler);

  const int fault_count = static_cast<int>(FaultInjector::Fault::kCount_);
  for (int m = 0; m < kMutationsPerBenchmark; ++m) {
    const auto fault = static_cast<FaultInjector::Fault>(m % fault_count);
    FaultInjector injector(static_cast<std::uint64_t>(m) * 7919 + 17);
    const std::string mutated = injector.apply(pristine, fault);
    SCOPED_TRACE(std::string(GetParam()) + " / " + FaultInjector::to_string(fault) +
                 " / mutation " + std::to_string(m));

    ReplayResult strict_result;
    {  // Strict: ok, or a Status naming the offending line. Never a throw.
      std::istringstream in(mutated);
      TraceContext ctx;
      strict_result = replay_trace(in, ctx, ReplayOptions{});
      if (!strict_result.status.is_ok()) {
        EXPECT_GT(strict_result.status.line(), 0u) << strict_result.status.to_string();
        EXPECT_FALSE(strict_result.finished);
      } else {
        EXPECT_TRUE(strict_result.finished);
      }
    }

    {  // Lenient: always finishes, and a full (degraded) analysis runs on
       // top of the repaired stream without tripping any downstream check.
      std::istringstream in(mutated);
      TraceContext ctx;
      core::PatternAnalyzer analyzer(ctx);
      DiagSink diags;
      Validator validator(&diags);
      ctx.add_sink(&validator);
      ReplayOptions options;
      options.mode = ReplayMode::Lenient;
      options.diags = &diags;
      const ReplayResult result = replay_trace(in, ctx, options);
      ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
      EXPECT_TRUE(result.finished);
      // What lenient mode forwarded obeys the stream invariants: the repair
      // is real, not just an absence of crashes.
      EXPECT_TRUE(validator.ok()) << validator.status().to_string();
      const core::AnalysisResult analysis = analyzer.analyze();
      (void)analysis;

      // Cross-check the accounting: if strict found the mutant defective,
      // lenient must have recorded what it dropped or repaired.
      if (!strict_result.status.is_ok()) {
        EXPECT_GT(result.dropped + result.repaired_scopes + diags.total(), 0u)
            << strict_result.status.to_string();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, FaultInjection,
                         ::testing::Values("ludcmp", "reg_detect", "fluidanimate",
                                           "rot-cc", "Correlation", "2mm", "fib", "sort",
                                           "strassen", "3mm", "mvt", "fdtd-2d", "kmeans",
                                           "streamcluster", "nqueens", "bicg", "gesummv",
                                           "sum_local", "sum_module"),
                         [](const ::testing::TestParamInfo<const char*>& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

// ---- binary container (.ppdt) enrollment ------------------------------------

std::string record_pristine_binary(const bs::Benchmark& benchmark) {
  std::ostringstream out;
  TraceContext ctx;
  store::BinaryTraceWriter::Options options;
  // Tiny chunks so every trace spans many sections and the mutations hit
  // chunk payloads, headers, the string table, and the footer alike.
  options.target_chunk_bytes = 512;
  store::BinaryTraceWriter writer(ctx, out, options);
  ctx.add_sink(&writer);
  benchmark.run_traced(ctx);
  ctx.finish();
  return out.str();
}

class BinaryFaultInjection : public ::testing::TestWithParam<const char*> {};

TEST_P(BinaryFaultInjection, MutatedContainersNeverCrashEitherReadMode) {
  const bs::Benchmark* benchmark = bs::find_benchmark(GetParam());
  ASSERT_NE(benchmark, nullptr);
  const std::string pristine = record_pristine_binary(*benchmark);
  ASSERT_FALSE(pristine.empty());

  support::ScopedFailureHandler guard(&support::throwing_failure_handler);

  const int fault_count = static_cast<int>(FaultInjector::Fault::kCount_);
  for (int m = 0; m < kMutationsPerBenchmark; ++m) {
    const auto fault = static_cast<FaultInjector::Fault>(m % fault_count);
    FaultInjector injector(static_cast<std::uint64_t>(m) * 6271 + 29);
    const std::string mutated = injector.apply(pristine, fault);
    SCOPED_TRACE(std::string(GetParam()) + " / " + FaultInjector::to_string(fault) +
                 " / binary mutation " + std::to_string(m));

    store::ReadResult strict_result;
    {  // Strict: ok, or a Status locating the fault (record ordinal, chunk
       // ordinal, or 1 for header/footer damage). Never a throw.
      TraceContext ctx;
      strict_result = store::read_trace(mutated, ctx, store::ReadOptions{});
      if (!strict_result.status.is_ok()) {
        EXPECT_GT(strict_result.status.line(), 0u) << strict_result.status.to_string();
        EXPECT_FALSE(strict_result.finished);
      } else {
        EXPECT_TRUE(strict_result.finished);
      }
    }

    {  // Lenient: always finishes a validator-clean degraded stream, and the
       // full analysis runs on top; parallel decode must behave identically.
      TraceContext ctx;
      core::PatternAnalyzer analyzer(ctx);
      DiagSink diags;
      Validator validator(&diags);
      ctx.add_sink(&validator);
      store::ReadOptions options;
      options.mode = ReplayMode::Lenient;
      options.diags = &diags;
      options.jobs = (m % 2 == 0) ? 1 : 4;  // alternate serial/parallel decode
      const store::ReadResult result = store::read_trace(mutated, ctx, options);
      ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
      EXPECT_TRUE(result.finished);
      EXPECT_TRUE(validator.ok()) << validator.status().to_string();
      const core::AnalysisResult analysis = analyzer.analyze();
      (void)analysis;

      if (!strict_result.status.is_ok()) {
        EXPECT_GT(result.dropped + result.skipped_chunks + result.repaired_scopes +
                      diags.total(),
                  0u)
            << strict_result.status.to_string();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, BinaryFaultInjection,
                         ::testing::Values("ludcmp", "reg_detect", "fluidanimate",
                                           "rot-cc", "Correlation", "2mm", "fib", "sort",
                                           "strassen", "3mm", "mvt", "fdtd-2d", "kmeans",
                                           "streamcluster", "nqueens", "bicg", "gesummv",
                                           "sum_local", "sum_module"),
                         [](const ::testing::TestParamInfo<const char*>& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

// Determinism contract: the same (seed, fault) pair produces the same
// mutant, so every suite failure reproduces from its parameters alone.
TEST(FaultInjectorTest, SameSeedSameFaultSameMutant) {
  const std::string trace = "ppd-trace 1\nfn 0 1 f\nE 0\nX 0\n";
  for (int f = 0; f < static_cast<int>(FaultInjector::Fault::kCount_); ++f) {
    const auto fault = static_cast<FaultInjector::Fault>(f);
    FaultInjector a(42);
    FaultInjector b(42);
    EXPECT_EQ(a.apply(trace, fault), b.apply(trace, fault))
        << FaultInjector::to_string(fault);
    FaultInjector c(43);
    (void)c.apply_random(trace);  // must not crash on tiny inputs
  }
}

TEST(FaultInjectorTest, EveryFaultHasAName) {
  for (int f = 0; f < static_cast<int>(FaultInjector::Fault::kCount_); ++f) {
    const std::string name =
        FaultInjector::to_string(static_cast<FaultInjector::Fault>(f));
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "unknown-fault");
  }
}

}  // namespace
}  // namespace ppd::trace
