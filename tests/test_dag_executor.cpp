// Unit and property tests for the runtime DAG executor: ordering
// invariants, completion, exception propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "rt/dag_executor.hpp"

namespace ppd::rt {
namespace {

TEST(DagExecutor, EmptyDagReturnsImmediately) {
  ThreadPool pool(2);
  execute_dag(pool, {});
}

TEST(DagExecutor, RunsEveryTaskOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(20);
  std::vector<DagTask> tasks;
  for (std::size_t i = 0; i < hits.size(); ++i) {
    DagTask t;
    t.work = [&hits, i] { hits[i].fetch_add(1); };
    if (i > 0) t.deps.push_back(i - 1);
    tasks.push_back(std::move(t));
  }
  execute_dag(pool, std::move(tasks));
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(DagExecutor, PropagatesException) {
  ThreadPool pool(2);
  std::vector<DagTask> tasks(2);
  tasks[0].work = [] { throw std::runtime_error("task failed"); };
  tasks[1].work = [] {};
  tasks[1].deps = {0};
  EXPECT_THROW(execute_dag(pool, std::move(tasks)), std::runtime_error);
}

TEST(DagExecutor, DiamondOrdering) {
  ThreadPool pool(4);
  std::mutex mutex;
  std::vector<int> order;
  auto record = [&](int id) {
    return [&, id] {
      std::lock_guard lock(mutex);
      order.push_back(id);
    };
  };
  std::vector<DagTask> tasks(4);
  tasks[0].work = record(0);
  tasks[1].work = record(1);
  tasks[1].deps = {0};
  tasks[2].work = record(2);
  tasks[2].deps = {0};
  tasks[3].work = record(3);
  tasks[3].deps = {1, 2};
  execute_dag(pool, std::move(tasks));

  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 0);
  EXPECT_EQ(order.back(), 3);
}

// Property sweep: on random layered DAGs with random pool sizes, every
// dependence finishes before its dependent starts.
class DagExecutorProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DagExecutorProperty, DependenciesAlwaysFinishFirst) {
  const auto [seed, threads] = GetParam();
  std::uint64_t state = static_cast<std::uint64_t>(seed) * std::uint64_t{2862933555777941757} + 1;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };

  const std::size_t n = 8 + next() % 24;
  std::vector<std::vector<std::size_t>> deps(n);
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t count = next() % 3;
    for (std::size_t d = 0; d < count; ++d) deps[i].push_back(next() % i);
  }

  std::atomic<std::uint64_t> clock{0};
  std::vector<std::atomic<std::uint64_t>> start(n);
  std::vector<std::atomic<std::uint64_t>> finish(n);

  ThreadPool pool(static_cast<std::size_t>(threads));
  std::vector<DagTask> tasks(n);
  for (std::size_t i = 0; i < n; ++i) {
    tasks[i].deps = deps[i];
    tasks[i].work = [&, i] {
      start[i].store(clock.fetch_add(1) + 1);
      finish[i].store(clock.fetch_add(1) + 1);
    };
  }
  execute_dag(pool, std::move(tasks));

  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_GT(start[i].load(), 0u) << "task " << i << " never ran";
    for (std::size_t dep : deps[i]) {
      EXPECT_LT(finish[dep].load(), start[i].load())
          << "dep " << dep << " must finish before task " << i << " starts";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDags, DagExecutorProperty,
                         ::testing::Combine(::testing::Range(0, 10),
                                            ::testing::Values(1, 2, 4)));

// ---- hardening: invalid graphs and failing tasks ----

TEST(DagExecutor, RejectsOutOfRangeDependency) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  std::vector<DagTask> tasks(2);
  tasks[0].work = [&ran] { ran = true; };
  tasks[1].work = [&ran] { ran = true; };
  tasks[1].deps = {5};  // no such task
  const DagReport report = execute_dag_checked(pool, std::move(tasks));
  EXPECT_EQ(report.status.code(), support::ErrorCode::InvalidDag);
  EXPECT_FALSE(ran.load()) << "nothing may run on an invalid graph";
}

TEST(DagExecutor, RejectsSelfAndForwardDependencies) {
  ThreadPool pool(2);
  {
    std::vector<DagTask> tasks(1);
    tasks[0].work = [] {};
    tasks[0].deps = {0};  // self edge: a 1-cycle
    const DagReport report = execute_dag_checked(pool, std::move(tasks));
    EXPECT_EQ(report.status.code(), support::ErrorCode::InvalidDag);
  }
  {
    std::vector<DagTask> tasks(2);
    tasks[0].work = [] {};
    tasks[0].deps = {1};  // forward edge: would admit a cycle
    tasks[1].work = [] {};
    const DagReport report = execute_dag_checked(pool, std::move(tasks));
    EXPECT_EQ(report.status.code(), support::ErrorCode::InvalidDag);
  }
}

TEST(DagExecutor, ThrowingWrapperSignalsInvalidGraphs) {
  ThreadPool pool(2);
  std::vector<DagTask> tasks(1);
  tasks[0].work = [] {};
  tasks[0].deps = {3};
  EXPECT_THROW(execute_dag(pool, std::move(tasks)), std::invalid_argument);
}

// A failure mid-graph cancels everything downstream of it — transitively —
// while every task independent of the failure still runs exactly once.
TEST(DagExecutor, FailureSkipsDependentsButRunsIndependents) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(6);
  auto work = [&hits](std::size_t i) {
    return [&hits, i] { hits[i].fetch_add(1); };
  };
  std::vector<DagTask> tasks(6);
  tasks[0].work = work(0);
  tasks[1].work = [&hits] {
    hits[1].fetch_add(1);
    throw std::runtime_error("mid-graph failure");
  };
  tasks[1].deps = {0};
  tasks[2].work = work(2);  // direct dependent of the failure: skipped
  tasks[2].deps = {1};
  tasks[3].work = work(3);  // transitive dependent: skipped
  tasks[3].deps = {2};
  tasks[4].work = work(4);  // depends on a healthy task only: runs
  tasks[4].deps = {0};
  tasks[5].work = work(5);  // fully independent: runs
  const DagReport report = execute_dag_checked(pool, std::move(tasks));

  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status.code(), support::ErrorCode::TaskFailed);
  EXPECT_EQ(report.failed, (std::vector<std::size_t>{1}));
  EXPECT_EQ(report.skipped, (std::vector<std::size_t>{2, 3}));
  ASSERT_TRUE(report.first_error);
  EXPECT_THROW(std::rethrow_exception(report.first_error), std::runtime_error);
  EXPECT_EQ(hits[0].load(), 1);
  EXPECT_EQ(hits[2].load(), 0);
  EXPECT_EQ(hits[3].load(), 0);
  EXPECT_EQ(hits[4].load(), 1);
  EXPECT_EQ(hits[5].load(), 1);
}

// A diamond whose two middle branches both fail: the join is skipped once,
// both failures are reported, and the report stays deterministic.
TEST(DagExecutor, MultipleFailuresAreAllReported) {
  ThreadPool pool(4);
  std::vector<DagTask> tasks(4);
  tasks[0].work = [] {};
  tasks[1].work = [] { throw std::runtime_error("left"); };
  tasks[1].deps = {0};
  tasks[2].work = [] { throw std::runtime_error("right"); };
  tasks[2].deps = {0};
  tasks[3].work = [] { FAIL() << "join of two failed branches must not run"; };
  tasks[3].deps = {1, 2};
  const DagReport report = execute_dag_checked(pool, std::move(tasks));

  EXPECT_EQ(report.status.code(), support::ErrorCode::TaskFailed);
  EXPECT_EQ(report.failed, (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(report.skipped, (std::vector<std::size_t>{3}));
}

}  // namespace
}  // namespace ppd::rt
