// Unit tests for the modeled static baselines (Table VI): the verdicts must
// derive from statement structure, not from benchmark names.
#include <gtest/gtest.h>

#include "bs/benchmark.hpp"
#include "staticdet/source_model.hpp"

namespace ppd::staticdet {
namespace {

LoopModel lexical_scalar_reduction() {
  LoopModel loop;
  loop.name = "sum_local";
  Stmt acc;
  acc.line = 4;
  acc.op = Op::AddAssign;
  acc.target = TargetKind::ScalarLocal;
  acc.target_name = "sum";
  loop.body.push_back(acc);
  return loop;
}

TEST(Icc, DetectsLexicalScalarReduction) {
  EXPECT_EQ(IccStyleDetector{}.detect(lexical_scalar_reduction()), Verdict::Detected);
}

TEST(Icc, ArrayElementTargetDefeatsAliasAnalysis) {
  LoopModel loop = lexical_scalar_reduction();
  loop.body[0].target = TargetKind::ArrayElement;
  EXPECT_EQ(IccStyleDetector{}.detect(loop), Verdict::NotDetected);
}

TEST(Icc, CallInBodyBlocksDetection) {
  LoopModel loop = lexical_scalar_reduction();
  Stmt call;
  call.op = Op::Call;
  call.callee = "helper";
  loop.body.push_back(call);
  EXPECT_EQ(IccStyleDetector{}.detect(loop), Verdict::NotDetected);
}

TEST(Icc, PlainAssignIsNotAReduction) {
  LoopModel loop = lexical_scalar_reduction();
  loop.body[0].op = Op::Assign;
  EXPECT_EQ(IccStyleDetector{}.detect(loop), Verdict::NotDetected);
}

TEST(Sambamba, DetectsArrayElementReduction) {
  LoopModel loop = lexical_scalar_reduction();
  loop.body[0].target = TargetKind::ArrayElement;
  EXPECT_EQ(SambambaStyleDetector{}.detect(loop), Verdict::Detected);
}

TEST(Sambamba, MissesInterProceduralReduction) {
  LoopModel loop;
  loop.name = "sum_module";
  Stmt call;
  call.op = Op::Call;
  call.callee = "impl";
  loop.body.push_back(call);
  CalleeModel impl;
  impl.name = "impl";
  Stmt acc;
  acc.op = Op::AddAssign;
  acc.target = TargetKind::ScalarThrough;
  impl.body.push_back(acc);
  loop.callees.push_back(impl);
  EXPECT_EQ(SambambaStyleDetector{}.detect(loop), Verdict::NotDetected);
}

TEST(Sambamba, UnsupportedProgramIsNa) {
  LoopModel loop = lexical_scalar_reduction();
  loop.unsupported_by_sambamba = true;
  EXPECT_EQ(SambambaStyleDetector{}.detect(loop), Verdict::NotApplicable);
}

TEST(Verdict, Strings) {
  EXPECT_STREQ(to_string(Verdict::Detected), "yes");
  EXPECT_STREQ(to_string(Verdict::NotDetected), "no");
  EXPECT_STREQ(to_string(Verdict::NotApplicable), "NA");
}

// Table VI end-to-end: run the modeled baselines over the benchmarks' own
// source models and check the paper's matrix.
struct Expected {
  const char* benchmark;
  Verdict sambamba;
  Verdict icc;
};

class Table6Matrix : public ::testing::TestWithParam<Expected> {};

TEST_P(Table6Matrix, MatchesPaper) {
  const Expected expected = GetParam();
  const bs::Benchmark* benchmark = bs::find_benchmark(expected.benchmark);
  ASSERT_NE(benchmark, nullptr);
  const auto model = benchmark->reduction_source_model();
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ(SambambaStyleDetector{}.detect(*model), expected.sambamba);
  EXPECT_EQ(IccStyleDetector{}.detect(*model), expected.icc);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table6Matrix,
    ::testing::Values(
        Expected{"nqueens", Verdict::NotApplicable, Verdict::NotDetected},
        Expected{"kmeans", Verdict::NotApplicable, Verdict::NotDetected},
        Expected{"bicg", Verdict::Detected, Verdict::NotDetected},
        Expected{"gesummv", Verdict::Detected, Verdict::NotDetected},
        Expected{"sum_local", Verdict::Detected, Verdict::Detected},
        Expected{"sum_module", Verdict::NotDetected, Verdict::NotDetected}),
    [](const ::testing::TestParamInfo<Expected>& param_info) {
      return std::string(param_info.param.benchmark);
    });

}  // namespace
}  // namespace ppd::staticdet
