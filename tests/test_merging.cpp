// Multi-input profile merging: the paper runs the profiled application
// "with different representative inputs whenever possible and merges the
// outputs of the profiled runs" (§II). The profiler and the other sinks
// accumulate across runs on the same TraceContext; these tests assert the
// merge semantics.
#include <gtest/gtest.h>

#include "core/analyzer.hpp"
#include "trace/context.hpp"

namespace ppd::core {
namespace {

using trace::FunctionScope;
using trace::LoopScope;
using trace::TraceContext;

/// A kernel whose dependence structure varies with the input: with
/// `stride == 0`, every iteration hits the same address (carried); with a
/// nonzero stride, iterations are independent.
void run_kernel(TraceContext& ctx, std::uint64_t stride, std::uint64_t n) {
  const VarId v = ctx.var("data");
  FunctionScope f(ctx, "kernel", 1);
  LoopScope l(ctx, "loop", 2);
  for (std::uint64_t i = 0; i < n; ++i) {
    l.begin_iteration();
    ctx.read(v, i * stride, 3);
    ctx.write(v, i * stride, 4);
  }
}

TEST(Merging, SingleIndependentInputIsDoAll) {
  TraceContext ctx;
  PatternAnalyzer analyzer(ctx);
  run_kernel(ctx, 1, 16);
  const AnalysisResult res = analyzer.analyze();
  EXPECT_EQ(classify_loop(res.profile, ctx.find_region("loop")), LoopClass::DoAll);
}

TEST(Merging, ConflictingInputPoisonsDoAll) {
  // Input A looks do-all; input B exposes a carried dependence. The merged
  // profile must be conservative: not do-all.
  TraceContext ctx;
  PatternAnalyzer analyzer(ctx);
  run_kernel(ctx, 1, 16);  // representative input A
  run_kernel(ctx, 0, 16);  // representative input B
  const AnalysisResult res = analyzer.analyze();
  EXPECT_NE(classify_loop(res.profile, ctx.find_region("loop")), LoopClass::DoAll);
}

TEST(Merging, LoopStatsAccumulateAcrossRuns) {
  TraceContext ctx;
  PatternAnalyzer analyzer(ctx);
  run_kernel(ctx, 1, 10);
  run_kernel(ctx, 1, 30);
  const AnalysisResult res = analyzer.analyze();
  const prof::LoopInfo* info = res.profile.loop_info(ctx.find_region("loop"));
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->instances, 2u);
  EXPECT_EQ(info->total_iterations, 40u);
  EXPECT_EQ(info->max_iterations, 30u);  // the larger representative input
}

TEST(Merging, PetMergesInstancesOfTheSameRegion) {
  TraceContext ctx;
  PatternAnalyzer analyzer(ctx);
  run_kernel(ctx, 1, 8);
  run_kernel(ctx, 1, 8);
  const AnalysisResult res = analyzer.analyze();
  // One PET node for "kernel" despite two dynamic runs.
  const auto nodes = res.pet.find_all(ctx.find_region("kernel"));
  EXPECT_EQ(nodes.size(), 1u);
  EXPECT_EQ(res.pet.node(nodes[0]).instances, 2u);
}

TEST(Merging, PipelinePairsAccumulate) {
  TraceContext ctx;
  PatternAnalyzer analyzer(ctx);
  const VarId buf = ctx.var("buf");
  for (int run = 0; run < 2; ++run) {
    FunctionScope f(ctx, "k", 1);
    {
      LoopScope x(ctx, "x", 2);
      for (std::uint64_t i = 0; i < 8; ++i) {
        x.begin_iteration();
        // Distinct addresses per run so both runs contribute fresh pairs.
        ctx.write(buf, static_cast<std::uint64_t>(run) * 100 + i, 3, 8);
      }
    }
    {
      LoopScope y(ctx, "y", 5);
      for (std::uint64_t i = 0; i < 8; ++i) {
        y.begin_iteration();
        ctx.read(buf, static_cast<std::uint64_t>(run) * 100 + i, 6);
        ctx.write(ctx.var("out"), static_cast<std::uint64_t>(run) * 100 + i, 7, 2);
      }
    }
  }
  const AnalysisResult res = analyzer.analyze();
  ASSERT_EQ(res.pipelines.size(), 1u);
  EXPECT_EQ(res.pipelines[0].samples(), 16u);  // 8 pairs per representative run
  EXPECT_NEAR(res.pipelines[0].fit.a, 1.0, 1e-9);
}

}  // namespace
}  // namespace ppd::core
