// Tests for ppd::obs: instrument semantics, registry behaviour under
// concurrency (run under PPD_SANITIZE=thread in CI), span collection, and a
// round trip of the Chrome trace exporter through a minimal in-test JSON
// parser that checks the three properties a trace viewer needs: the output
// is valid JSON, timestamps are nondecreasing per track, and B/E events are
// strictly balanced.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/obs.hpp"

namespace ppd::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON parser — just enough to validate the exporter output.

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : p_(text.data()), end_(text.data() + text.size()) {}

  /// Parses one value and requires end of input after it.
  bool parse_document(JsonValue& out) {
    if (!parse_value(out)) return false;
    skip_ws();
    return p_ == end_;
  }

 private:
  void skip_ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) ++p_;
  }

  bool consume(char c) {
    skip_ws();
    if (p_ == end_ || *p_ != c) return false;
    ++p_;
    return true;
  }

  bool parse_literal(std::string_view word) {
    if (static_cast<std::size_t>(end_ - p_) < word.size()) return false;
    if (std::string_view(p_, word.size()) != word) return false;
    p_ += word.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (p_ != end_ && *p_ != '"') {
      char c = *p_++;
      if (c == '\\') {
        if (p_ == end_) return false;
        const char esc = *p_++;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (end_ - p_ < 4) return false;
            for (int i = 0; i < 4; ++i) {
              const char h = p_[i];
              if (!((h >= '0' && h <= '9') || (h >= 'a' && h <= 'f') ||
                    (h >= 'A' && h <= 'F'))) {
                return false;
              }
            }
            p_ += 4;
            out += '?';  // exact code point does not matter for these tests
            break;
          }
          default: return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // control characters must be escaped
      } else {
        out += c;
      }
    }
    return p_ != end_ && *p_++ == '"';
  }

  bool parse_number(double& out) {
    const char* start = p_;
    if (p_ != end_ && *p_ == '-') ++p_;
    while (p_ != end_ && ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' || *p_ == 'e' ||
                          *p_ == 'E' || *p_ == '+' || *p_ == '-')) {
      ++p_;
    }
    if (p_ == start) return false;
    out = std::stod(std::string(start, static_cast<std::size_t>(p_ - start)));
    return true;
  }

  bool parse_value(JsonValue& out) {  // NOLINT(misc-no-recursion)
    skip_ws();
    if (p_ == end_) return false;
    switch (*p_) {
      case '{': {
        ++p_;
        out.kind = JsonValue::Kind::Object;
        skip_ws();
        if (p_ != end_ && *p_ == '}') {
          ++p_;
          return true;
        }
        while (true) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          if (!consume(':')) return false;
          JsonValue value;
          if (!parse_value(value)) return false;
          out.object.emplace_back(std::move(key), std::move(value));
          if (consume(',')) continue;
          return consume('}');
        }
      }
      case '[': {
        ++p_;
        out.kind = JsonValue::Kind::Array;
        skip_ws();
        if (p_ != end_ && *p_ == ']') {
          ++p_;
          return true;
        }
        while (true) {
          JsonValue value;
          if (!parse_value(value)) return false;
          out.array.push_back(std::move(value));
          if (consume(',')) continue;
          return consume(']');
        }
      }
      case '"':
        out.kind = JsonValue::Kind::String;
        return parse_string(out.string);
      case 't':
        out.kind = JsonValue::Kind::Bool;
        out.boolean = true;
        return parse_literal("true");
      case 'f':
        out.kind = JsonValue::Kind::Bool;
        out.boolean = false;
        return parse_literal("false");
      case 'n':
        out.kind = JsonValue::Kind::Null;
        return parse_literal("null");
      default:
        out.kind = JsonValue::Kind::Number;
        return parse_number(out.number);
    }
  }

  const char* p_;
  const char* end_;
};

/// Parses exporter output into `doc` and checks the trace-viewer contract:
/// valid JSON, per-tid nondecreasing timestamps, strictly balanced B/E
/// nesting. (void so gtest ASSERT_* may be used; unused when the library
/// is built with PPD_OBS=OFF and the span tests compile out.)
[[maybe_unused]] void validate_chrome_trace(const std::string& json, JsonValue& doc) {
  JsonParser parser(json);
  ASSERT_TRUE(parser.parse_document(doc)) << "exporter emitted invalid JSON:\n" << json;
  ASSERT_EQ(doc.kind, JsonValue::Kind::Object);
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr) << "missing traceEvents array";
  ASSERT_EQ(events->kind, JsonValue::Kind::Array);

  struct TrackState {
    double last_ts = -1.0;
    std::vector<std::string> stack;  // open B-event names
  };
  std::vector<std::pair<double, TrackState>> tracks;  // keyed by tid
  auto track = [&tracks](double tid) -> TrackState& {
    for (auto& [key, state] : tracks) {
      if (key == tid) return state;
    }
    tracks.emplace_back(tid, TrackState{});
    return tracks.back().second;
  };

  for (const JsonValue& event : events->array) {
    ASSERT_EQ(event.kind, JsonValue::Kind::Object);
    const JsonValue* ph = event.find("ph");
    const JsonValue* name = event.find("name");
    const JsonValue* tid = event.find("tid");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(name, nullptr);
    ASSERT_NE(tid, nullptr);
    if (ph->string == "M") continue;  // metadata has no timestamp ordering
    ASSERT_TRUE(ph->string == "B" || ph->string == "E")
        << "unexpected event phase '" << ph->string << "'";
    const JsonValue* ts = event.find("ts");
    ASSERT_NE(ts, nullptr);
    TrackState& state = track(tid->number);
    EXPECT_GE(ts->number, state.last_ts)
        << "timestamps went backwards on tid " << tid->number;
    state.last_ts = ts->number;
    if (ph->string == "B") {
      state.stack.push_back(name->string);
    } else {
      ASSERT_FALSE(state.stack.empty())
          << "E event '" << name->string << "' without matching B";
      EXPECT_EQ(state.stack.back(), name->string) << "interleaved B/E events";
      state.stack.pop_back();
    }
  }
  for (const auto& [tid, state] : tracks) {
    EXPECT_TRUE(state.stack.empty())
        << "unclosed B event on tid " << tid << ": "
        << (state.stack.empty() ? std::string() : state.stack.back());
  }
}

#if !defined(PPD_OBS_DISABLED)

TEST(ObsCounter, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsGauge, TracksValueAndHighWaterMark) {
  Gauge g;
  g.set(5);
  g.add(7);
  g.add(-10);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max(), 12);
  g.reset();
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max(), 0);
}

TEST(ObsHistogram, BucketsByBitWidth) {
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 0u);
  EXPECT_EQ(Histogram::bucket_index(2), 1u);
  EXPECT_EQ(Histogram::bucket_index(3), 1u);
  EXPECT_EQ(Histogram::bucket_index(4), 2u);
  EXPECT_EQ(Histogram::bucket_index(1023), 9u);
  EXPECT_EQ(Histogram::bucket_index(1024), 10u);
  EXPECT_EQ(Histogram::bucket_upper_bound(0), 1u);
  EXPECT_EQ(Histogram::bucket_upper_bound(9), 1023u);
  EXPECT_EQ(Histogram::bucket_upper_bound(Histogram::kBuckets - 1),
            ~std::uint64_t{0});
}

TEST(ObsHistogram, CountSumMaxQuantiles) {
  Histogram h;
  EXPECT_EQ(h.quantile_upper_bound(0.5), 0u);  // empty
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 5050u);
  EXPECT_EQ(h.max(), 100u);
  // Quantiles are bucket upper bounds: conservative (>= the true quantile)
  // but never beyond the observed max.
  EXPECT_GE(h.quantile_upper_bound(0.5), 50u);
  EXPECT_LE(h.quantile_upper_bound(0.5), 100u);
  EXPECT_EQ(h.quantile_upper_bound(0.99), 100u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(ObsRegistry, HandsOutStableReferences) {
  Registry& registry = Registry::instance();
  registry.reset();
  Counter& a = registry.counter("test.stable");
  Counter& b = registry.counter("test.stable");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  registry.reset();
  EXPECT_EQ(a.value(), 0u);  // reset zeroes, does not invalidate
}

TEST(ObsRegistry, SnapshotKeySchemeAndOrder) {
  Registry& registry = Registry::instance();
  registry.reset();
  registry.counter("test.snap.count").add(7);
  registry.gauge("test.snap.depth").set(3);
  registry.histogram("test.snap.lat").record(100);

  const std::string dump = registry.render_metrics();
  EXPECT_NE(dump.find("test.snap.count=7\n"), std::string::npos) << dump;
  EXPECT_NE(dump.find("test.snap.depth=3\n"), std::string::npos) << dump;
  EXPECT_NE(dump.find("test.snap.depth.max=3\n"), std::string::npos) << dump;
  EXPECT_NE(dump.find("test.snap.lat.count=1\n"), std::string::npos) << dump;
  EXPECT_NE(dump.find("test.snap.lat.sum=100\n"), std::string::npos) << dump;
  EXPECT_NE(dump.find("test.snap.lat.max=100\n"), std::string::npos) << dump;
  EXPECT_NE(dump.find("test.snap.lat.p99="), std::string::npos) << dump;

  const std::vector<MetricEntry> entries = Registry::instance().snapshot();
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LE(entries[i - 1].first, entries[i].first) << "snapshot not sorted";
  }
}

// The concurrency contract of the registry and its instruments: many
// threads hammering lookups and updates while a reader snapshots. Run
// under -DPPD_SANITIZE=thread this is the data-race test for the module.
TEST(ObsRegistry, ConcurrentUpdatesAndSnapshots) {
  Registry& registry = Registry::instance();
  registry.reset();
  constexpr std::uint64_t kThreads = 8;
  constexpr std::uint64_t kIters = 5000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (std::uint64_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter& counter = registry.counter("test.mt.counter");
      Gauge& gauge = registry.gauge("test.mt.gauge");
      Histogram& hist = registry.histogram("test.mt.hist");
      for (std::uint64_t i = 0; i < kIters; ++i) {
        counter.add();
        gauge.add(1);
        hist.record(i & 0xFFu);
        gauge.add(-1);
      }
    });
  }
  threads.emplace_back([&registry] {
    for (int i = 0; i < 100; ++i) {
      (void)registry.snapshot();
    }
  });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(registry.counter("test.mt.counter").value(), kThreads * kIters);
  EXPECT_EQ(registry.gauge("test.mt.gauge").value(), 0);
  EXPECT_LE(registry.gauge("test.mt.gauge").max(),
            static_cast<std::int64_t>(kThreads));
  EXPECT_EQ(registry.histogram("test.mt.hist").count(), kThreads * kIters);
  registry.reset();
}

TEST(ObsSpan, NoCollectorIsANoOp) {
  ASSERT_EQ(active_collector(), nullptr);
  { PPD_OBS_SPAN("test.orphan"); }
  // Nothing to observe directly; the point is that this neither crashes nor
  // touches a collector. The registry histogram must not have been created
  // by the orphan span either (record() is what creates it).
  const std::string dump = Registry::instance().render_metrics();
  EXPECT_EQ(dump.find("span.test.orphan"), std::string::npos);
}

TEST(ObsSpan, CollectorRecordsAndFoldsIntoRegistry) {
  Registry::instance().reset();
  SpanCollector collector;
  install_collector(&collector);
  {
    PPD_OBS_SPAN("test.outer");
    PPD_OBS_SPAN("test.inner");
  }
  install_collector(nullptr);

  std::vector<SpanRecord> spans = collector.take();
  ASSERT_EQ(spans.size(), 2u);
  // RAII order: inner destructs (records) first.
  EXPECT_EQ(spans[0].name, "test.inner");
  EXPECT_EQ(spans[1].name, "test.outer");
  EXPECT_LE(spans[1].begin_ns, spans[0].begin_ns);
  EXPECT_GE(spans[1].end_ns, spans[0].end_ns);

  const std::string dump = Registry::instance().render_metrics();
  EXPECT_NE(dump.find("span.test.outer_ns.count=1\n"), std::string::npos) << dump;
  EXPECT_NE(dump.find("span.test.inner_ns.count=1\n"), std::string::npos) << dump;
}

TEST(ObsSpan, AggregateOnlyCollectorKeepsNoSpans) {
  Registry::instance().reset();
  SpanCollector collector(/*keep_spans=*/false);
  install_collector(&collector);
  { PPD_OBS_SPAN("test.agg"); }
  install_collector(nullptr);
  EXPECT_EQ(collector.size(), 0u);
  const std::string dump = Registry::instance().render_metrics();
  EXPECT_NE(dump.find("span.test.agg_ns.count=1\n"), std::string::npos) << dump;
}

TEST(ObsExport, ChromeTraceRoundTripsThroughJsonParser) {
  Registry::instance().reset();
  SpanCollector collector;
  install_collector(&collector);

  // Nested spans on the main thread plus concurrent spans on worker
  // threads — the shape a real profiled run produces.
  {
    PPD_OBS_SPAN("main.outer");
    {
      PPD_OBS_SPAN("main.middle \"quoted\\path\"");
      PPD_OBS_SPAN("main.inner");
    }
    std::vector<std::thread> workers;
    for (int t = 0; t < 3; ++t) {
      workers.emplace_back([] {
        for (int i = 0; i < 4; ++i) {
          PPD_OBS_SPAN("worker.task");
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }
  install_collector(nullptr);

  const std::size_t span_count = collector.size();
  ASSERT_GE(span_count, 3u + 3u * 4u);
  const std::string json = chrome_trace_json(collector.take());
  JsonValue doc;
  ASSERT_NO_FATAL_FAILURE(validate_chrome_trace(json, doc));

  // One B and one E per span, plus metadata events.
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::size_t begins = 0;
  std::size_t ends = 0;
  std::size_t thread_names = 0;
  for (const JsonValue& event : events->array) {
    const std::string& ph = event.find("ph")->string;
    if (ph == "B") ++begins;
    if (ph == "E") ++ends;
    if (ph == "M" && event.find("name")->string == "thread_name") ++thread_names;
  }
  EXPECT_EQ(begins, span_count);
  EXPECT_EQ(ends, span_count);
  EXPECT_GE(thread_names, 4u);  // main + 3 workers at minimum
}

TEST(ObsExport, ClampsChildOverflowingItsParent) {
  // Hand-rolled records can overlap in ways RAII spans cannot; the exporter
  // must still emit balanced, monotone events.
  std::vector<SpanRecord> spans;
  spans.push_back(SpanRecord{"parent", 7, 1000, 2000});
  spans.push_back(SpanRecord{"child", 7, 1500, 2500});  // outlives parent
  const std::string json = chrome_trace_json(std::move(spans));
  JsonValue doc;
  validate_chrome_trace(json, doc);
}

TEST(ObsExport, EmptyRunIsValidJson) {
  const std::string json = chrome_trace_json({});
  JsonValue doc;
  JsonParser parser(json);
  ASSERT_TRUE(parser.parse_document(doc)) << json;
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->kind, JsonValue::Kind::Array);
}

TEST(ObsExport, MetricsDumpMatchesRegistry) {
  Registry::instance().reset();
  Registry::instance().counter("test.dump.one").add(1);
  const std::string dump = metrics_dump();
  EXPECT_NE(dump.find("test.dump.one=1\n"), std::string::npos) << dump;
}

#else  // PPD_OBS_DISABLED

TEST(ObsDisabled, StubsCompileAndDoNothing) {
  Registry& registry = Registry::instance();
  registry.counter("x").add(5);
  registry.gauge("y").set(9);
  registry.histogram("z").record(100);
  EXPECT_EQ(registry.counter("x").value(), 0u);
  EXPECT_EQ(registry.gauge("y").value(), 0);
  EXPECT_EQ(registry.histogram("z").count(), 0u);
  EXPECT_TRUE(registry.render_metrics().empty());
  EXPECT_TRUE(registry.snapshot().empty());

  SpanCollector collector;
  install_collector(&collector);
  { PPD_OBS_SPAN("stub"); }
  install_collector(nullptr);
  EXPECT_TRUE(collector.take().empty());
}

TEST(ObsDisabled, ExportersRenderAnEmptyRun) {
  const std::string json = chrome_trace_json({});
  JsonValue doc;
  JsonParser parser(json);
  ASSERT_TRUE(parser.parse_document(doc)) << json;
  ASSERT_NE(doc.find("traceEvents"), nullptr);
  EXPECT_TRUE(metrics_dump().empty());
}

#endif  // PPD_OBS_DISABLED

}  // namespace
}  // namespace ppd::obs
