// Tests for ppd::obs: instrument semantics, registry behaviour under
// concurrency (run under PPD_SANITIZE=thread in CI), span collection, and a
// round trip of the Chrome trace exporter through a minimal in-test JSON
// parser that checks the three properties a trace viewer needs: the output
// is valid JSON, timestamps are nondecreasing per track, and B/E events are
// strictly balanced.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/obs.hpp"
#include "rt/thread_pool.hpp"

namespace ppd::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON parser — just enough to validate the exporter output.

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : p_(text.data()), end_(text.data() + text.size()) {}

  /// Parses one value and requires end of input after it.
  bool parse_document(JsonValue& out) {
    if (!parse_value(out)) return false;
    skip_ws();
    return p_ == end_;
  }

 private:
  void skip_ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) ++p_;
  }

  bool consume(char c) {
    skip_ws();
    if (p_ == end_ || *p_ != c) return false;
    ++p_;
    return true;
  }

  bool parse_literal(std::string_view word) {
    if (static_cast<std::size_t>(end_ - p_) < word.size()) return false;
    if (std::string_view(p_, word.size()) != word) return false;
    p_ += word.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (p_ != end_ && *p_ != '"') {
      char c = *p_++;
      if (c == '\\') {
        if (p_ == end_) return false;
        const char esc = *p_++;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (end_ - p_ < 4) return false;
            for (int i = 0; i < 4; ++i) {
              const char h = p_[i];
              if (!((h >= '0' && h <= '9') || (h >= 'a' && h <= 'f') ||
                    (h >= 'A' && h <= 'F'))) {
                return false;
              }
            }
            p_ += 4;
            out += '?';  // exact code point does not matter for these tests
            break;
          }
          default: return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // control characters must be escaped
      } else {
        out += c;
      }
    }
    return p_ != end_ && *p_++ == '"';
  }

  bool parse_number(double& out) {
    const char* start = p_;
    if (p_ != end_ && *p_ == '-') ++p_;
    while (p_ != end_ && ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' || *p_ == 'e' ||
                          *p_ == 'E' || *p_ == '+' || *p_ == '-')) {
      ++p_;
    }
    if (p_ == start) return false;
    out = std::stod(std::string(start, static_cast<std::size_t>(p_ - start)));
    return true;
  }

  bool parse_value(JsonValue& out) {  // NOLINT(misc-no-recursion)
    skip_ws();
    if (p_ == end_) return false;
    switch (*p_) {
      case '{': {
        ++p_;
        out.kind = JsonValue::Kind::Object;
        skip_ws();
        if (p_ != end_ && *p_ == '}') {
          ++p_;
          return true;
        }
        while (true) {
          skip_ws();
          std::string key;
          if (!parse_string(key)) return false;
          if (!consume(':')) return false;
          JsonValue value;
          if (!parse_value(value)) return false;
          out.object.emplace_back(std::move(key), std::move(value));
          if (consume(',')) continue;
          return consume('}');
        }
      }
      case '[': {
        ++p_;
        out.kind = JsonValue::Kind::Array;
        skip_ws();
        if (p_ != end_ && *p_ == ']') {
          ++p_;
          return true;
        }
        while (true) {
          JsonValue value;
          if (!parse_value(value)) return false;
          out.array.push_back(std::move(value));
          if (consume(',')) continue;
          return consume(']');
        }
      }
      case '"':
        out.kind = JsonValue::Kind::String;
        return parse_string(out.string);
      case 't':
        out.kind = JsonValue::Kind::Bool;
        out.boolean = true;
        return parse_literal("true");
      case 'f':
        out.kind = JsonValue::Kind::Bool;
        out.boolean = false;
        return parse_literal("false");
      case 'n':
        out.kind = JsonValue::Kind::Null;
        return parse_literal("null");
      default:
        out.kind = JsonValue::Kind::Number;
        return parse_number(out.number);
    }
  }

  const char* p_;
  const char* end_;
};

/// Parses exporter output into `doc` and checks the trace-viewer contract:
/// valid JSON, per-tid nondecreasing timestamps, strictly balanced B/E
/// nesting. (void so gtest ASSERT_* may be used; unused when the library
/// is built with PPD_OBS=OFF and the span tests compile out.)
[[maybe_unused]] void validate_chrome_trace(const std::string& json, JsonValue& doc) {
  JsonParser parser(json);
  ASSERT_TRUE(parser.parse_document(doc)) << "exporter emitted invalid JSON:\n" << json;
  ASSERT_EQ(doc.kind, JsonValue::Kind::Object);
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr) << "missing traceEvents array";
  ASSERT_EQ(events->kind, JsonValue::Kind::Array);

  struct TrackState {
    double last_ts = -1.0;
    std::vector<std::string> stack;  // open B-event names
  };
  std::vector<std::pair<double, TrackState>> tracks;  // keyed by tid
  auto track = [&tracks](double tid) -> TrackState& {
    for (auto& [key, state] : tracks) {
      if (key == tid) return state;
    }
    tracks.emplace_back(tid, TrackState{});
    return tracks.back().second;
  };

  for (const JsonValue& event : events->array) {
    ASSERT_EQ(event.kind, JsonValue::Kind::Object);
    const JsonValue* ph = event.find("ph");
    const JsonValue* name = event.find("name");
    const JsonValue* tid = event.find("tid");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(name, nullptr);
    ASSERT_NE(tid, nullptr);
    if (ph->string == "M") continue;  // metadata has no timestamp ordering
    ASSERT_TRUE(ph->string == "B" || ph->string == "E")
        << "unexpected event phase '" << ph->string << "'";
    const JsonValue* ts = event.find("ts");
    ASSERT_NE(ts, nullptr);
    TrackState& state = track(tid->number);
    EXPECT_GE(ts->number, state.last_ts)
        << "timestamps went backwards on tid " << tid->number;
    state.last_ts = ts->number;
    if (ph->string == "B") {
      state.stack.push_back(name->string);
    } else {
      ASSERT_FALSE(state.stack.empty())
          << "E event '" << name->string << "' without matching B";
      EXPECT_EQ(state.stack.back(), name->string) << "interleaved B/E events";
      state.stack.pop_back();
    }
  }
  for (const auto& [tid, state] : tracks) {
    EXPECT_TRUE(state.stack.empty())
        << "unclosed B event on tid " << tid << ": "
        << (state.stack.empty() ? std::string() : state.stack.back());
  }
}

#if !defined(PPD_OBS_DISABLED)

TEST(ObsCounter, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsGauge, TracksValueAndHighWaterMark) {
  Gauge g;
  g.set(5);
  g.add(7);
  g.add(-10);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max(), 12);
  g.reset();
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max(), 0);
}

TEST(ObsHistogram, BucketsByBitWidth) {
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 0u);
  EXPECT_EQ(Histogram::bucket_index(2), 1u);
  EXPECT_EQ(Histogram::bucket_index(3), 1u);
  EXPECT_EQ(Histogram::bucket_index(4), 2u);
  EXPECT_EQ(Histogram::bucket_index(1023), 9u);
  EXPECT_EQ(Histogram::bucket_index(1024), 10u);
  EXPECT_EQ(Histogram::bucket_upper_bound(0), 1u);
  EXPECT_EQ(Histogram::bucket_upper_bound(9), 1023u);
  EXPECT_EQ(Histogram::bucket_upper_bound(Histogram::kBuckets - 1),
            ~std::uint64_t{0});
}

TEST(ObsHistogram, CountSumMaxQuantiles) {
  Histogram h;
  EXPECT_EQ(h.quantile_upper_bound(0.5), 0u);  // empty
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 5050u);
  EXPECT_EQ(h.max(), 100u);
  // Quantiles are bucket upper bounds: conservative (>= the true quantile)
  // but never beyond the observed max.
  EXPECT_GE(h.quantile_upper_bound(0.5), 50u);
  EXPECT_LE(h.quantile_upper_bound(0.5), 100u);
  EXPECT_EQ(h.quantile_upper_bound(0.99), 100u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(ObsRegistry, HandsOutStableReferences) {
  Registry& registry = Registry::instance();
  registry.reset();
  Counter& a = registry.counter("test.stable");
  Counter& b = registry.counter("test.stable");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  registry.reset();
  EXPECT_EQ(a.value(), 0u);  // reset zeroes, does not invalidate
}

TEST(ObsRegistry, SnapshotKeySchemeAndOrder) {
  Registry& registry = Registry::instance();
  registry.reset();
  registry.counter("test.snap.count").add(7);
  registry.gauge("test.snap.depth").set(3);
  registry.histogram("test.snap.lat").record(100);

  const std::string dump = registry.render_metrics();
  EXPECT_NE(dump.find("test.snap.count=7\n"), std::string::npos) << dump;
  EXPECT_NE(dump.find("test.snap.depth=3\n"), std::string::npos) << dump;
  EXPECT_NE(dump.find("test.snap.depth.max=3\n"), std::string::npos) << dump;
  EXPECT_NE(dump.find("test.snap.lat.count=1\n"), std::string::npos) << dump;
  EXPECT_NE(dump.find("test.snap.lat.sum=100\n"), std::string::npos) << dump;
  EXPECT_NE(dump.find("test.snap.lat.max=100\n"), std::string::npos) << dump;
  EXPECT_NE(dump.find("test.snap.lat.p99="), std::string::npos) << dump;

  const std::vector<MetricEntry> entries = Registry::instance().snapshot();
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LE(entries[i - 1].first, entries[i].first) << "snapshot not sorted";
  }
}

// The concurrency contract of the registry and its instruments: many
// threads hammering lookups and updates while a reader snapshots. Run
// under -DPPD_SANITIZE=thread this is the data-race test for the module.
TEST(ObsRegistry, ConcurrentUpdatesAndSnapshots) {
  Registry& registry = Registry::instance();
  registry.reset();
  constexpr std::uint64_t kThreads = 8;
  constexpr std::uint64_t kIters = 5000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (std::uint64_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter& counter = registry.counter("test.mt.counter");
      Gauge& gauge = registry.gauge("test.mt.gauge");
      Histogram& hist = registry.histogram("test.mt.hist");
      for (std::uint64_t i = 0; i < kIters; ++i) {
        counter.add();
        gauge.add(1);
        hist.record(i & 0xFFu);
        gauge.add(-1);
      }
    });
  }
  threads.emplace_back([&registry] {
    for (int i = 0; i < 100; ++i) {
      (void)registry.snapshot();
    }
  });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(registry.counter("test.mt.counter").value(), kThreads * kIters);
  EXPECT_EQ(registry.gauge("test.mt.gauge").value(), 0);
  EXPECT_LE(registry.gauge("test.mt.gauge").max(),
            static_cast<std::int64_t>(kThreads));
  EXPECT_EQ(registry.histogram("test.mt.hist").count(), kThreads * kIters);
  registry.reset();
}

TEST(ObsSpan, NoCollectorIsANoOp) {
  ASSERT_EQ(active_collector(), nullptr);
  { PPD_OBS_SPAN("test.orphan"); }
  // Nothing to observe directly; the point is that this neither crashes nor
  // touches a collector. The registry histogram must not have been created
  // by the orphan span either (record() is what creates it).
  const std::string dump = Registry::instance().render_metrics();
  EXPECT_EQ(dump.find("span.test.orphan"), std::string::npos);
}

TEST(ObsSpan, CollectorRecordsAndFoldsIntoRegistry) {
  Registry::instance().reset();
  SpanCollector collector;
  install_collector(&collector);
  {
    PPD_OBS_SPAN("test.outer");
    PPD_OBS_SPAN("test.inner");
  }
  install_collector(nullptr);

  std::vector<SpanRecord> spans = collector.take();
  ASSERT_EQ(spans.size(), 2u);
  // RAII order: inner destructs (records) first.
  EXPECT_EQ(spans[0].name, "test.inner");
  EXPECT_EQ(spans[1].name, "test.outer");
  EXPECT_LE(spans[1].begin_ns, spans[0].begin_ns);
  EXPECT_GE(spans[1].end_ns, spans[0].end_ns);

  const std::string dump = Registry::instance().render_metrics();
  EXPECT_NE(dump.find("span.test.outer_ns.count=1\n"), std::string::npos) << dump;
  EXPECT_NE(dump.find("span.test.inner_ns.count=1\n"), std::string::npos) << dump;
}

TEST(ObsSpan, AggregateOnlyCollectorKeepsNoSpans) {
  Registry::instance().reset();
  SpanCollector collector(/*keep_spans=*/false);
  install_collector(&collector);
  { PPD_OBS_SPAN("test.agg"); }
  install_collector(nullptr);
  EXPECT_EQ(collector.size(), 0u);
  const std::string dump = Registry::instance().render_metrics();
  EXPECT_NE(dump.find("span.test.agg_ns.count=1\n"), std::string::npos) << dump;
}

TEST(ObsExport, ChromeTraceRoundTripsThroughJsonParser) {
  Registry::instance().reset();
  SpanCollector collector;
  install_collector(&collector);

  // Nested spans on the main thread plus concurrent spans on worker
  // threads — the shape a real profiled run produces.
  {
    PPD_OBS_SPAN("main.outer");
    {
      PPD_OBS_SPAN("main.middle \"quoted\\path\"");
      PPD_OBS_SPAN("main.inner");
    }
    std::vector<std::thread> workers;
    for (int t = 0; t < 3; ++t) {
      workers.emplace_back([] {
        for (int i = 0; i < 4; ++i) {
          PPD_OBS_SPAN("worker.task");
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }
  install_collector(nullptr);

  const std::size_t span_count = collector.size();
  ASSERT_GE(span_count, 3u + 3u * 4u);
  const std::string json = chrome_trace_json(collector.take());
  JsonValue doc;
  ASSERT_NO_FATAL_FAILURE(validate_chrome_trace(json, doc));

  // One B and one E per span, plus metadata events.
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::size_t begins = 0;
  std::size_t ends = 0;
  std::size_t thread_names = 0;
  for (const JsonValue& event : events->array) {
    const std::string& ph = event.find("ph")->string;
    if (ph == "B") ++begins;
    if (ph == "E") ++ends;
    if (ph == "M" && event.find("name")->string == "thread_name") ++thread_names;
  }
  EXPECT_EQ(begins, span_count);
  EXPECT_EQ(ends, span_count);
  EXPECT_GE(thread_names, 4u);  // main + 3 workers at minimum
}

TEST(ObsExport, ClampsChildOverflowingItsParent) {
  // Hand-rolled records can overlap in ways RAII spans cannot; the exporter
  // must still emit balanced, monotone events.
  std::vector<SpanRecord> spans;
  spans.push_back(SpanRecord{"parent", 7, 1000, 2000});
  spans.push_back(SpanRecord{"child", 7, 1500, 2500});  // outlives parent
  const std::string json = chrome_trace_json(std::move(spans));
  JsonValue doc;
  validate_chrome_trace(json, doc);
}

TEST(ObsExport, EmptyRunIsValidJson) {
  const std::string json = chrome_trace_json({});
  JsonValue doc;
  JsonParser parser(json);
  ASSERT_TRUE(parser.parse_document(doc)) << json;
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->kind, JsonValue::Kind::Array);
}

TEST(ObsExport, MetricsDumpMatchesRegistry) {
  Registry::instance().reset();
  Registry::instance().counter("test.dump.one").add(1);
  const std::string dump = metrics_dump();
  EXPECT_NE(dump.find("test.dump.one=1\n"), std::string::npos) << dump;
}

// ---------------------------------------------------------------------------
// Histogram edge buckets and the snapshot-based quantile estimator — the
// inputs the Prometheus exporter depends on.

TEST(ObsHistogram, EdgeBucketsZeroAndMax) {
  Histogram h;
  h.record(0);  // bit width 0 lands in bucket 0 alongside value 1
  EXPECT_EQ(h.bucket(0), 1u);
  h.record(1);
  EXPECT_EQ(h.bucket(0), 2u);
  h.record(~std::uint64_t{0});  // widest value: the last bucket
  EXPECT_EQ(h.bucket(Histogram::kBuckets - 1), 1u);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.max(), ~std::uint64_t{0});
  // The top bucket's upper bound is already the maximal u64 — no overflow
  // past it is representable, so the quantile can never exceed it.
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}), Histogram::kBuckets - 1);
  EXPECT_EQ(h.quantile_upper_bound(0.99), ~std::uint64_t{0});
}

TEST(ObsHistogram, QuantileClampsBucketBoundToObservedMax) {
  Histogram h;
  h.record(5);  // bucket upper bound is 7; the estimate must clamp to 5
  EXPECT_EQ(h.quantile_upper_bound(0.5), 5u);
  EXPECT_EQ(h.quantile_upper_bound(1.0), 5u);
}

TEST(ObsHistogram, SnapshotIsInternallyConsistent) {
  Histogram h;
  for (const std::uint64_t v : {1ull, 2ull, 3ull, 100ull, 1000ull}) h.record(v);
  const Histogram::Snapshot s = h.snapshot();
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) total += s.buckets[i];
  EXPECT_EQ(total, s.count) << "snapshot count must derive from its buckets";
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.sum, 1106u);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_EQ(s.quantile_upper_bound(1.0), 1000u);
  EXPECT_LE(s.quantile_upper_bound(0.5), s.max);
  const Histogram::Snapshot empty = Histogram{}.snapshot();
  EXPECT_EQ(empty.quantile_upper_bound(0.5), 0u);
}

// ---------------------------------------------------------------------------
// Per-thread handle cache.

TEST(ObsRegistry, HandleCacheResolvesToTheSameInstrument) {
  Registry& registry = Registry::instance();
  Counter& direct = registry.counter("test.handle.c");
  EXPECT_EQ(&counter_handle("test.handle.c"), &direct);
  EXPECT_EQ(&counter_handle("test.handle.c"), &direct);  // cached second hit
  EXPECT_EQ(&gauge_handle("test.handle.g"), &registry.gauge("test.handle.g"));
  EXPECT_EQ(&histogram_handle("test.handle.h"),
            &registry.histogram("test.handle.h"));
  // A different thread's cache resolves the name to the same instrument.
  Counter* other = nullptr;
  std::thread([&other] { other = &counter_handle("test.handle.c"); }).join();
  EXPECT_EQ(other, &direct);
}

// ---------------------------------------------------------------------------
// Trace context: nesting, span-tree linkage, thread-pool propagation.

TEST(ObsTrace, WithTraceNestsAndRestores) {
  EXPECT_FALSE(current_trace().active());
  {
    WithTrace outer(TraceContext{7, 1});
    EXPECT_EQ(current_trace().trace_id, 7u);
    EXPECT_EQ(current_trace().span_id, 1u);
    {
      WithTrace inner(TraceContext{9, 2});
      EXPECT_EQ(current_trace().trace_id, 9u);
    }
    EXPECT_EQ(current_trace().trace_id, 7u);
  }
  EXPECT_FALSE(current_trace().active());
}

TEST(ObsTrace, SpansLinkIntoARequestTree) {
  Registry::instance().reset();
  SpanCollector collector;
  install_collector(&collector);
  {
    WithTrace request(TraceContext{42, 0});
    PPD_OBS_SPAN("test.tree.outer");
    { PPD_OBS_SPAN("test.tree.inner"); }
  }
  install_collector(nullptr);
  std::vector<SpanRecord> spans = collector.take();
  ASSERT_EQ(spans.size(), 2u);
  const SpanRecord& inner = spans[0];  // RAII: inner records first
  const SpanRecord& outer = spans[1];
  EXPECT_EQ(outer.trace_id, 42u);
  EXPECT_EQ(inner.trace_id, 42u);
  EXPECT_NE(outer.span_id, 0u);
  EXPECT_EQ(outer.parent_span_id, 0u);
  EXPECT_EQ(inner.parent_span_id, outer.span_id);
  EXPECT_NE(inner.span_id, outer.span_id);
}

TEST(ObsTrace, PropagatesAcrossThreadPoolSubmit) {
  rt::ThreadPool pool(2);
  TraceContext seen_with{};
  TraceContext seen_without{};
  {
    WithTrace scope(TraceContext{77, 5});
    rt::TaskGroup group(pool);
    group.run([&seen_with] { seen_with = current_trace(); });
    group.wait();
  }
  {
    rt::TaskGroup group(pool);
    group.run([&seen_without] { seen_without = current_trace(); });
    group.wait();
  }
  EXPECT_EQ(seen_with.trace_id, 77u);
  EXPECT_EQ(seen_with.span_id, 5u);
  EXPECT_FALSE(seen_without.active()) << "context leaked across submissions";
}

// ---------------------------------------------------------------------------
// Prometheus text exposition, validated by an in-test parser.

/// Minimal Prometheus text-format (0.0.4) validator: every sample line is
/// `name[{labels}] value`, names use the legal charset, TYPE comments
/// declare known types, histogram bucket series are cumulative with
/// increasing `le` and end at `le="+Inf"` == `_count`.
[[maybe_unused]] void validate_prometheus(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::string current_hist;           // prom name of the open histogram
  std::uint64_t last_bucket = 0;      // last cumulative bucket count
  double last_le = -1.0;              // last le edge
  std::uint64_t inf_bucket = 0;
  bool saw_inf = false;
  auto is_name_char = [](char c, bool first) {
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    return first ? alpha : (alpha || (c >= '0' && c <= '9'));
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream meta(line);
      std::string hash, keyword, name, type;
      meta >> hash >> keyword >> name >> type;
      ASSERT_EQ(keyword, "TYPE") << line;
      ASSERT_TRUE(type == "counter" || type == "gauge" || type == "histogram")
          << line;
      if (type == "histogram") {
        current_hist = name;
        last_bucket = 0;
        last_le = -1.0;
        saw_inf = false;
      }
      continue;
    }
    // Sample line: name{labels} value | name value.
    const std::size_t brace = line.find('{');
    const std::size_t space = line.find(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::size_t name_end = std::min(brace, space);
    ASSERT_GT(name_end, 0u) << line;
    const std::string name = line.substr(0, name_end);
    for (std::size_t i = 0; i < name.size(); ++i) {
      ASSERT_TRUE(is_name_char(name[i], i == 0)) << line;
    }
    const std::string value_text = line.substr(line.rfind(' ') + 1);
    ASSERT_FALSE(value_text.empty()) << line;
    char* end = nullptr;
    const double value = std::strtod(value_text.c_str(), &end);
    ASSERT_EQ(*end, '\0') << "unparseable sample value: " << line;

    if (!current_hist.empty() && name == current_hist + "_bucket") {
      ASSERT_NE(brace, std::string::npos) << line;
      const std::size_t le_at = line.find("le=\"", brace);
      ASSERT_NE(le_at, std::string::npos) << line;
      const std::size_t le_end = line.find('"', le_at + 4);
      ASSERT_NE(le_end, std::string::npos) << line;
      const std::string le_text = line.substr(le_at + 4, le_end - (le_at + 4));
      const auto count = static_cast<std::uint64_t>(value);
      if (le_text == "+Inf") {
        saw_inf = true;
        inf_bucket = count;
        EXPECT_GE(count, last_bucket) << "+Inf bucket below a finite one";
      } else {
        const double le = std::strtod(le_text.c_str(), nullptr);
        EXPECT_GT(le, last_le) << "le edges must increase: " << line;
        EXPECT_GE(count, last_bucket) << "buckets must be cumulative: " << line;
        last_le = le;
        last_bucket = count;
      }
    } else if (!current_hist.empty() && name == current_hist + "_count") {
      EXPECT_TRUE(saw_inf) << "histogram without +Inf bucket";
      EXPECT_EQ(static_cast<std::uint64_t>(value), inf_bucket)
          << "_count must equal the +Inf bucket";
    }
  }
}

TEST(ObsExport, PrometheusExpositionParsesAndIsCoherent) {
  Registry::instance().reset();
  Registry::instance().counter("test.prom.hits").add(3);
  Registry::instance().gauge("test.prom.depth").set(2);
  Histogram& h = Registry::instance().histogram("test.prom.lat");
  for (const std::uint64_t v : {1ull, 10ull, 100ull, 100ull}) h.record(v);

  const std::string text = prometheus_dump();
  ASSERT_NO_FATAL_FAILURE(validate_prometheus(text));
  EXPECT_NE(text.find("# TYPE ppd_test_prom_hits_total counter\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ppd_test_prom_hits_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("ppd_test_prom_depth 2\n"), std::string::npos);
  EXPECT_NE(text.find("ppd_test_prom_depth_max 2\n"), std::string::npos);
  EXPECT_NE(text.find("ppd_test_prom_lat_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("ppd_test_prom_lat_sum 211\n"), std::string::npos);
  EXPECT_NE(text.find("ppd_test_prom_lat_count 4\n"), std::string::npos);
  EXPECT_NE(text.find("ppd_test_prom_lat_p50 "), std::string::npos);
  EXPECT_NE(text.find("ppd_test_prom_lat_p99 "), std::string::npos);
}

// ---------------------------------------------------------------------------
// Flight recorder: ring semantics, trace linkage, truncation, dump text.

TEST(ObsFlight, RingKeepsTheLastCapacityRecords) {
  FlightRecorder ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  for (int i = 0; i < 20; ++i) {
    std::string name("e");
    name += std::to_string(i);
    ring.record_event(name);
  }
  EXPECT_EQ(ring.total_recorded(), 20u);
  const std::vector<FlightRecorder::Entry> snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 8u);
  EXPECT_EQ(snap.front().name, "e12");
  EXPECT_EQ(snap.back().name, "e19");
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_GT(snap[i].seq, snap[i - 1].seq) << "snapshot not oldest-first";
  }
}

TEST(ObsFlight, SpansAndEventsCarryTheTraceContext) {
  FlightRecorder ring(16);
  install_flight_recorder(&ring);
  ASSERT_EQ(active_flight_recorder(), &ring);
  {
    WithTrace request(TraceContext{123, 0});
    PPD_OBS_SPAN("test.flight.span");  // flight is the only sink installed
    flight_event("test.flight.event");
  }
  install_flight_recorder(nullptr);
  EXPECT_EQ(active_flight_recorder(), nullptr);
  { PPD_OBS_SPAN("test.flight.after"); }  // must not reach the ring

  const std::vector<FlightRecorder::Entry> snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].kind, FlightRecorder::Kind::Event);
  EXPECT_EQ(snap[0].name, "test.flight.event");
  EXPECT_EQ(snap[0].trace_id, 123u);
  EXPECT_NE(snap[0].span_id, 0u) << "event should attach to the open span";
  EXPECT_EQ(snap[1].kind, FlightRecorder::Kind::Span);
  EXPECT_EQ(snap[1].name, "test.flight.span");
  EXPECT_EQ(snap[1].trace_id, 123u);
  EXPECT_EQ(snap[1].span_id, snap[0].span_id);
}

TEST(ObsFlight, TruncatesOverlongNames) {
  FlightRecorder ring(4);
  ring.record_event(std::string(100, 'x'));
  const std::vector<FlightRecorder::Entry> snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].name, std::string(FlightRecorder::kNameBytes - 1, 'x'));
}

TEST(ObsFlight, ConcurrentRecordingStaysCoherent) {
  FlightRecorder ring(64);
  std::vector<std::thread> threads;
  for (std::uint32_t t = 0; t < 4; ++t) {
    threads.emplace_back([&ring, t] {
      for (std::uint64_t i = 0; i < 1000; ++i) {
        ring.record_span("thread-span", t, i, i + 1, 1, 2, 3);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(ring.total_recorded(), 4000u);
  // Torn slots are skipped, never emitted half-written: every surviving
  // entry is exactly one of the records some thread wrote.
  for (const FlightRecorder::Entry& e : ring.snapshot()) {
    EXPECT_EQ(e.name, "thread-span");
    EXPECT_EQ(e.trace_id, 1u);
    EXPECT_EQ(e.span_id, 2u);
    EXPECT_EQ(e.parent_span_id, 3u);
    EXPECT_EQ(e.end_ns, e.begin_ns + 1);
  }
}

TEST(ObsFlight, DumpWritesParseableText) {
  FlightRecorder ring(8);
  {
    WithTrace request(TraceContext{9, 0});
    ring.record_event("dump.me");
  }
  char path[] = "/tmp/ppd_obs_flight_XXXXXX";
  const int fd = mkstemp(path);
  ASSERT_GE(fd, 0);
  ring.dump(fd);
  ::close(fd);
  std::string text;
  {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }
  std::remove(path);
  EXPECT_NE(text.find("flight total=1 kept=1\n"), std::string::npos) << text;
  EXPECT_NE(text.find("event seq=0 trace=9"), std::string::npos) << text;
  EXPECT_NE(text.find("name=dump.me\n"), std::string::npos) << text;
}

#else  // PPD_OBS_DISABLED

TEST(ObsDisabled, StubsCompileAndDoNothing) {
  Registry& registry = Registry::instance();
  registry.counter("x").add(5);
  registry.gauge("y").set(9);
  registry.histogram("z").record(100);
  EXPECT_EQ(registry.counter("x").value(), 0u);
  EXPECT_EQ(registry.gauge("y").value(), 0);
  EXPECT_EQ(registry.histogram("z").count(), 0u);
  EXPECT_TRUE(registry.render_metrics().empty());
  EXPECT_TRUE(registry.snapshot().empty());

  SpanCollector collector;
  install_collector(&collector);
  { PPD_OBS_SPAN("stub"); }
  install_collector(nullptr);
  EXPECT_TRUE(collector.take().empty());
}

TEST(ObsDisabled, ExportersRenderAnEmptyRun) {
  const std::string json = chrome_trace_json({});
  JsonValue doc;
  JsonParser parser(json);
  ASSERT_TRUE(parser.parse_document(doc)) << json;
  ASSERT_NE(doc.find("traceEvents"), nullptr);
  EXPECT_TRUE(metrics_dump().empty());
}

#endif  // PPD_OBS_DISABLED

}  // namespace
}  // namespace ppd::obs
