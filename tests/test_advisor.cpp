// Unit tests for the advisor extensions (§VI future work): transformation
// hints (peeling, fusion, privatization), reduction-operator inference, and
// pattern ranking.
#include <gtest/gtest.h>

#include <algorithm>

#include "bs/benchmark.hpp"
#include "core/advisor.hpp"
#include "core/analyzer.hpp"
#include "trace/context.hpp"

namespace ppd::core {
namespace {

using trace::LoopScope;
using trace::TraceContext;
using trace::UpdateOp;

const TransformationHint* find_hint(const std::vector<TransformationHint>& hints,
                                    HintKind kind) {
  for (const TransformationHint& h : hints) {
    if (h.kind == kind) return &h;
  }
  return nullptr;
}

// ---- operator inference -------------------------------------------------------

AnalysisResult run_tagged_reduction(UpdateOp op_a, UpdateOp op_b, TraceContext& ctx) {
  PatternAnalyzer analyzer(ctx);
  const VarId acc = ctx.var("acc");
  {
    LoopScope l(ctx, "loop", 1);
    for (int i = 0; i < 16; ++i) {
      l.begin_iteration();
      ctx.update(acc, 0, 4, i % 2 == 0 ? op_a : op_b);
    }
  }
  return analyzer.analyze();
}

TEST(OperatorInference, SumInferred) {
  TraceContext ctx;
  const AnalysisResult res = run_tagged_reduction(UpdateOp::Sum, UpdateOp::Sum, ctx);
  ASSERT_EQ(res.reductions.size(), 1u);
  EXPECT_EQ(res.reductions[0].op, UpdateOp::Sum);
}

TEST(OperatorInference, MinInferred) {
  TraceContext ctx;
  const AnalysisResult res = run_tagged_reduction(UpdateOp::Min, UpdateOp::Min, ctx);
  ASSERT_EQ(res.reductions.size(), 1u);
  EXPECT_EQ(res.reductions[0].op, UpdateOp::Min);
}

TEST(OperatorInference, MixedOperatorsStayUnknown) {
  TraceContext ctx;
  const AnalysisResult res = run_tagged_reduction(UpdateOp::Sum, UpdateOp::Product, ctx);
  ASSERT_EQ(res.reductions.size(), 1u);
  EXPECT_EQ(res.reductions[0].op, UpdateOp::None);
}

TEST(OperatorInference, UntaggedWritesStayUnknown) {
  TraceContext ctx;
  PatternAnalyzer analyzer(ctx);
  const VarId acc = ctx.var("acc");
  {
    LoopScope l(ctx, "loop", 1);
    for (int i = 0; i < 16; ++i) {
      l.begin_iteration();
      ctx.read(acc, 0, 4);
      ctx.write(acc, 0, 4);
    }
  }
  const AnalysisResult res = analyzer.analyze();
  ASSERT_EQ(res.reductions.size(), 1u);
  EXPECT_EQ(res.reductions[0].op, UpdateOp::None);
}

TEST(OperatorInference, BenchmarkReductionsCarrySum) {
  const bs::Benchmark* bicg = bs::find_benchmark("bicg");
  ASSERT_NE(bicg, nullptr);
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*bicg);
  ASSERT_FALSE(traced.analysis.reductions.empty());
  for (const ReductionCandidate& r : traced.analysis.reductions) {
    EXPECT_EQ(r.op, UpdateOp::Sum);
  }
}

// ---- transformation hints -----------------------------------------------------

TEST(Hints, RegDetectGetsPeelingHint) {
  // The paper peels the first iteration of reg_detect's producer loop
  // because b = -1 (§IV-A); the advisor derives exactly that.
  const bs::Benchmark* reg_detect = bs::find_benchmark("reg_detect");
  ASSERT_NE(reg_detect, nullptr);
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*reg_detect);
  const auto hints = derive_hints(traced.analysis, *traced.ctx);

  const TransformationHint* peel = find_hint(hints, HintKind::PeelFirstIterations);
  ASSERT_NE(peel, nullptr);
  EXPECT_EQ(peel->iterations, 1u);
  EXPECT_NE(find_hint(hints, HintKind::ImplementPipeline), nullptr);
  EXPECT_EQ(find_hint(hints, HintKind::FuseLoops), nullptr);
}

TEST(Hints, FusionHintQuantifiesLocality) {
  // SIII-A future work: report the data volume fusion keeps cache-hot.
  const bs::Benchmark* rotcc = bs::find_benchmark("rot-cc");
  ASSERT_NE(rotcc, nullptr);
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*rotcc);
  const auto reported = traced.analysis.reported_pipelines();
  ASSERT_FALSE(reported.empty());
  const MultiLoopPipeline& p = *reported.front();
  // Every pixel of the intermediate image flows between the two loops.
  EXPECT_GT(p.shared_addresses, 0u);
  EXPECT_GT(p.x_footprint, 0u);
  EXPECT_GE(p.y_footprint, p.shared_addresses);

  const auto hints = derive_hints(traced.analysis, *traced.ctx);
  const TransformationHint* fuse = find_hint(hints, HintKind::FuseLoops);
  ASSERT_NE(fuse, nullptr);
  EXPECT_NE(fuse->text.find("cache-hot"), std::string::npos);
}

TEST(Hints, LoopFootprintsMeasured) {
  const bs::Benchmark* two_mm = bs::find_benchmark("2mm");
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*two_mm);
  const prof::LoopInfo* info =
      traced.analysis.profile.loop_info(traced.ctx->find_region("tmp_loop"));
  ASSERT_NE(info, nullptr);
  // The tmp loop touches A (40x40) and tmp (40x40): 3200 distinct elements.
  EXPECT_EQ(info->distinct_addresses, 3200u);
}

TEST(Hints, FusionBenchmarkGetsFuseHint) {
  const bs::Benchmark* two_mm = bs::find_benchmark("2mm");
  ASSERT_NE(two_mm, nullptr);
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*two_mm);
  const auto hints = derive_hints(traced.analysis, *traced.ctx);
  ASSERT_NE(find_hint(hints, HintKind::FuseLoops), nullptr);
  EXPECT_EQ(find_hint(hints, HintKind::ImplementPipeline), nullptr);
}

TEST(Hints, ReductionGetsPrivatizationWithOperator) {
  const bs::Benchmark* gesummv = bs::find_benchmark("gesummv");
  ASSERT_NE(gesummv, nullptr);
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*gesummv);
  const auto hints = derive_hints(traced.analysis, *traced.ctx);
  const TransformationHint* priv = find_hint(hints, HintKind::PrivatizeAccumulator);
  ASSERT_NE(priv, nullptr);
  EXPECT_EQ(priv->op, UpdateOp::Sum);
  EXPECT_NE(priv->text.find("combine partial results"), std::string::npos);
}

TEST(Hints, GeometricDecompositionGetsChunkHint) {
  const bs::Benchmark* kmeans = bs::find_benchmark("kmeans");
  ASSERT_NE(kmeans, nullptr);
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*kmeans);
  const auto hints = derive_hints(traced.analysis, *traced.ctx);
  const TransformationHint* chunk = find_hint(hints, HintKind::ChunkFunctionData);
  ASSERT_NE(chunk, nullptr);
  EXPECT_NE(chunk->text.find("cluster"), std::string::npos);
}

TEST(Hints, TaskParallelismGetsForkJoinHint) {
  const bs::Benchmark* mvt = bs::find_benchmark("mvt");
  ASSERT_NE(mvt, nullptr);
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*mvt);
  const auto hints = derive_hints(traced.analysis, *traced.ctx);
  const TransformationHint* fork = find_hint(hints, HintKind::ForkJoinTasks);
  ASSERT_NE(fork, nullptr);
  EXPECT_NE(fork->text.find("2 worker CU(s)"), std::string::npos);
}

TEST(Hints, DelayConsumerForPositiveIntercept) {
  // b > 0: the first consumer iterations depend on nothing.
  TraceContext ctx;
  PatternAnalyzer analyzer(ctx);
  const VarId buf = ctx.var("buf");
  const VarId out = ctx.var("out");
  constexpr std::uint64_t n = 32;
  constexpr std::uint64_t shift = 8;
  {
    trace::FunctionScope fn(ctx, "k", 1);
    {
      LoopScope x(ctx, "x", 2);
      for (std::uint64_t i = 0; i < n; ++i) {
        x.begin_iteration();
        ctx.write(buf, i, 3, 8);
      }
    }
    {
      LoopScope y(ctx, "y", 5);
      for (std::uint64_t i = 0; i < n + shift; ++i) {
        y.begin_iteration();
        if (i >= shift) ctx.read(buf, i - shift, 6);
        if (i > 0) ctx.read(out, i - 1, 7);
        ctx.write(out, i, 7);
      }
    }
  }
  const AnalysisResult res = analyzer.analyze();
  const auto hints = derive_hints(res, ctx);
  const TransformationHint* delay = find_hint(hints, HintKind::DelayConsumerStart);
  ASSERT_NE(delay, nullptr);
  EXPECT_EQ(delay->iterations, shift);
}

// ---- ranking -------------------------------------------------------------------

TEST(Ranking, OrderedByScoreDescending) {
  const bs::Benchmark* kmeans = bs::find_benchmark("kmeans");
  ASSERT_NE(kmeans, nullptr);
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*kmeans);
  const auto ranked = rank_patterns(traced.analysis, *traced.ctx);
  ASSERT_FALSE(ranked.empty());
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].score, ranked[i].score);
  }
}

TEST(Ranking, BenefitIsAmdahlBounded) {
  for (const char* name : {"ludcmp", "3mm", "streamcluster"}) {
    const bs::Benchmark* benchmark = bs::find_benchmark(name);
    ASSERT_NE(benchmark, nullptr);
    const bs::TracedAnalysis traced = bs::analyze_benchmark(*benchmark);
    for (const RankedPattern& r : rank_patterns(traced.analysis, *traced.ctx)) {
      EXPECT_GE(r.expected_benefit, 1.0);
      EXPECT_LE(r.expected_benefit, r.local_speedup + 1e-9)
          << name << ": whole-program benefit cannot exceed the local speedup";
    }
  }
}

TEST(Ranking, HotspotPatternOutranksColdPattern) {
  // kmeans: the GD of cluster() (~2% hotspot) yields a small benefit; the
  // ranking must reflect the Amdahl weighting rather than the local speedup.
  const bs::Benchmark* kmeans = bs::find_benchmark("kmeans");
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*kmeans);
  for (const RankedPattern& r : rank_patterns(traced.analysis, *traced.ctx)) {
    EXPECT_LT(r.expected_benefit, 1.1);  // nothing in kmeans is worth much overall
  }
}

TEST(Ranking, FusionScoresAboveSequentialPipeline) {
  // Equal hotspot shares: a fusion (low effort, scalable) must outrank a
  // pipeline into a sequential consumer (high effort, bounded overlap).
  TraceContext fusion_ctx;
  const bs::Benchmark* two_mm = bs::find_benchmark("2mm");
  const bs::Benchmark* fluid = bs::find_benchmark("fluidanimate");
  const bs::TracedAnalysis fused = bs::analyze_benchmark(*two_mm);
  const bs::TracedAnalysis piped = bs::analyze_benchmark(*fluid);
  const auto fusion_rank = rank_patterns(fused.analysis, *fused.ctx);
  const auto pipe_rank = rank_patterns(piped.analysis, *piped.ctx);
  ASSERT_FALSE(fusion_rank.empty());
  ASSERT_FALSE(pipe_rank.empty());
  EXPECT_GT(fusion_rank.front().score, pipe_rank.front().score);
}

}  // namespace
}  // namespace ppd::core
