// Execution verification (ctest -L execverify): for every benchmark in the
// suite, run the ppd::pat implementation of its detected pattern against
// the sequential kernel at jobs {1, 2, 4, 8} and require identical results
// at every width. This is the executable counterpart of the report the
// analysis pipeline emits — the pattern is not just *named*, it runs.
#include <cstddef>
#include <string>

#include <gtest/gtest.h>

#include "bs/benchmark.hpp"

namespace {

class PatExecVerify : public ::testing::TestWithParam<const ppd::bs::Benchmark*> {};

TEST_P(PatExecVerify, MatchesSequentialAtJobs1248) {
  const ppd::bs::Benchmark* benchmark = GetParam();
  for (std::size_t jobs : {1u, 2u, 4u, 8u}) {
    const ppd::bs::VerifyOutcome outcome = benchmark->verify_pat(jobs);
    EXPECT_TRUE(outcome.ok) << benchmark->paper().name << " at jobs=" << jobs
                            << ": " << outcome.detail;
  }
}

std::string benchmark_name(const ::testing::TestParamInfo<const ppd::bs::Benchmark*>& info) {
  std::string name = info.param->paper().name;
  for (char& c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, PatExecVerify,
                         ::testing::ValuesIn(ppd::bs::all_benchmarks()),
                         benchmark_name);

}  // namespace
