// Unit tests for trace serialization and replay: format round trips, the
// replayed analysis equals the live analysis, malformed inputs are rejected.
#include <gtest/gtest.h>

#include <sstream>

#include "bs/benchmark.hpp"
#include "core/analyzer.hpp"
#include "trace/buffer.hpp"
#include "trace/serialize.hpp"

namespace ppd::trace {
namespace {

/// Runs the given instrumented body while recording a trace; returns the
/// serialized text.
template <typename Body>
std::string record(Body&& body) {
  std::ostringstream out;
  TraceContext ctx;
  TraceWriter writer(ctx, out);
  ctx.add_sink(&writer);
  body(ctx);
  ctx.finish();
  return out.str();
}

TEST(Serialize, HeaderAndDefinitions) {
  const std::string text = record([](TraceContext& ctx) {
    const VarId v = ctx.var("data");
    FunctionScope f(ctx, "kernel", 3);
    ctx.write(v, 7, 4);
  });
  EXPECT_EQ(text.rfind("ppd-trace 1\n", 0), 0u);
  EXPECT_NE(text.find("fn 0 3 kernel"), std::string::npos);
  EXPECT_NE(text.find("var 0 0 data"), std::string::npos);
  EXPECT_NE(text.find("W 0 7 4 1 0"), std::string::npos);
}

TEST(Serialize, LocalVarFlagAndUpdateOpSurvive) {
  const std::string text = record([](TraceContext& ctx) {
    const VarId t = ctx.local_var("tmp");
    const VarId acc = ctx.var("acc");
    FunctionScope f(ctx, "k", 1);
    ctx.write(t, 0, 2);
    ctx.update(acc, 0, 3, UpdateOp::Product);
  });
  EXPECT_NE(text.find("var 0 1 tmp"), std::string::npos);   // local flag
  EXPECT_NE(text.find("W 1 0 3 1 2"), std::string::npos);   // Product tag
}

TEST(Replay, RoundTripPreservesEvents) {
  const std::string text = record([](TraceContext& ctx) {
    const VarId v = ctx.var("v");
    FunctionScope f(ctx, "k", 1);
    LoopScope l(ctx, "loop", 2);
    for (int i = 0; i < 3; ++i) {
      l.begin_iteration();
      ctx.read(v, static_cast<std::uint64_t>(i), 3, 2);
      ctx.write(v, static_cast<std::uint64_t>(i), 4, 5);
      ctx.compute(5, 7);
    }
  });

  std::istringstream in(text);
  TraceContext ctx;
  TraceBuffer buffer;
  ctx.add_sink(&buffer);
  const std::uint64_t records = replay_trace(in, ctx);
  EXPECT_GT(records, 0u);
  EXPECT_TRUE(buffer.ended());
  EXPECT_EQ(buffer.enters().size(), 2u);
  EXPECT_EQ(buffer.iterations().size(), 3u);
  ASSERT_EQ(buffer.accesses().size(), 6u);
  EXPECT_EQ(buffer.accesses()[0].cost, 2u);
  EXPECT_EQ(buffer.accesses()[1].cost, 5u);
  ASSERT_EQ(buffer.accesses()[2].loop_stack.size(), 1u);
  EXPECT_EQ(buffer.accesses()[2].loop_stack[0].iteration, 1u);
  EXPECT_EQ(ctx.total_cost(), 3u * (2 + 5 + 7));
}

TEST(Replay, StatementScopesSurvive) {
  const std::string text = record([](TraceContext& ctx) {
    const VarId v = ctx.var("v");
    FunctionScope f(ctx, "k", 1);
    StatementScope s(ctx, "the_call", 2);
    ctx.write(v, 0, 2);
  });
  std::istringstream in(text);
  TraceContext ctx;
  TraceBuffer buffer;
  ctx.add_sink(&buffer);
  (void)replay_trace(in, ctx);
  ASSERT_EQ(buffer.accesses().size(), 1u);
  ASSERT_TRUE(buffer.accesses()[0].stmt.valid());
  EXPECT_EQ(ctx.statement(buffer.accesses()[0].stmt).name, "the_call");
}

TEST(Replay, RejectsMissingHeader) {
  std::istringstream in("garbage\n");
  TraceContext ctx;
  EXPECT_THROW((void)replay_trace(in, ctx), std::runtime_error);
}

TEST(Replay, RejectsUnknownTag) {
  std::istringstream in("ppd-trace 1\nZZ 1 2 3\n");
  TraceContext ctx;
  EXPECT_THROW((void)replay_trace(in, ctx), std::runtime_error);
}

TEST(Replay, RejectsUndefinedVariable) {
  std::istringstream in("ppd-trace 1\nR 5 0 1 1\n");
  TraceContext ctx;
  EXPECT_THROW((void)replay_trace(in, ctx), std::runtime_error);
}

TEST(Replay, RejectsMismatchedExit) {
  std::istringstream in("ppd-trace 1\nfn 0 1 a\nfn 1 1 b\nE 0\nX 1\n");
  TraceContext ctx;
  EXPECT_THROW((void)replay_trace(in, ctx), std::runtime_error);
}

TEST(Replay, RejectsUnclosedScopes) {
  std::istringstream in("ppd-trace 1\nfn 0 1 a\nE 0\n");
  TraceContext ctx;
  EXPECT_THROW((void)replay_trace(in, ctx), std::runtime_error);
}

TEST(Replay, RejectsIterationOutsideLoop) {
  std::istringstream in("ppd-trace 1\nfn 0 1 a\nE 0\nI 0\nX 0\n");
  TraceContext ctx;
  EXPECT_THROW((void)replay_trace(in, ctx), std::runtime_error);
}

// End-to-end: for a representative subset of benchmarks, the analysis of a
// replayed trace must agree with the live analysis (same primary pattern,
// same reduction count, same pipeline coefficients).
class ReplayEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(ReplayEquivalence, SameAnalysis) {
  const bs::Benchmark* benchmark = bs::find_benchmark(GetParam());
  ASSERT_NE(benchmark, nullptr);

  // Live run, recording the trace on the side.
  std::ostringstream recorded;
  TraceContext live_ctx;
  core::PatternAnalyzer live_analyzer(live_ctx);
  TraceWriter writer(live_ctx, recorded);
  live_ctx.add_sink(&writer);
  benchmark->run_traced(live_ctx);
  const core::AnalysisResult live = live_analyzer.analyze();

  // Replayed run.
  std::istringstream in(recorded.str());
  TraceContext replay_ctx;
  core::PatternAnalyzer replay_analyzer(replay_ctx);
  (void)replay_trace(in, replay_ctx);
  const core::AnalysisResult replayed = replay_analyzer.analyze();

  EXPECT_EQ(replayed.primary_description, live.primary_description);
  EXPECT_EQ(replayed.reductions.size(), live.reductions.size());
  EXPECT_EQ(replayed.pipelines.size(), live.pipelines.size());
  ASSERT_EQ(replayed.profile.dependences.size(), live.profile.dependences.size());
  EXPECT_NEAR(replayed.hotspot_cost_fraction, live.hotspot_cost_fraction, 1e-12);
  for (std::size_t i = 0; i < live.pipelines.size(); ++i) {
    EXPECT_NEAR(replayed.pipelines[i].fit.a, live.pipelines[i].fit.a, 1e-12);
    EXPECT_NEAR(replayed.pipelines[i].fit.b, live.pipelines[i].fit.b, 1e-12);
    EXPECT_NEAR(replayed.pipelines[i].e, live.pipelines[i].e, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, ReplayEquivalence,
                         ::testing::Values("ludcmp", "reg_detect", "fluidanimate", "rot-cc",
                                           "Correlation", "2mm", "fib", "sort", "strassen",
                                           "3mm", "mvt", "fdtd-2d", "kmeans",
                                           "streamcluster", "nqueens", "bicg", "gesummv",
                                           "sum_local", "sum_module"),
                         [](const ::testing::TestParamInfo<const char*>& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace ppd::trace
