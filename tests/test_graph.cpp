// Unit tests for the digraph kernel: reachability, topological order, SCC
// condensation, weighted critical path.
#include <gtest/gtest.h>

#include "graph/digraph.hpp"

namespace ppd::graph {
namespace {

Digraph diamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 with weights 1, 5, 7, 2.
  Digraph g;
  g.add_node(1);
  g.add_node(5);
  g.add_node(7);
  g.add_node(2);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  return g;
}

TEST(Digraph, EdgesDeduplicate) {
  Digraph g;
  g.add_node();
  g.add_node();
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Digraph, SelfLoopsIgnoredByDefault) {
  Digraph g;
  g.add_node();
  g.add_edge(0, 0);
  EXPECT_EQ(g.edge_count(), 0u);
  g.add_edge(0, 0, /*allow_self_loops=*/true);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Digraph, Reachability) {
  const Digraph g = diamond();
  EXPECT_TRUE(g.reachable(0, 3));
  EXPECT_TRUE(g.reachable(1, 3));
  EXPECT_FALSE(g.reachable(3, 0));
  EXPECT_FALSE(g.reachable(1, 2));
  EXPECT_TRUE(g.reachable(2, 2));  // reflexive
}

TEST(Digraph, TopologicalOrderOnDag) {
  const Digraph g = diamond();
  const auto order = g.topological_order();
  ASSERT_TRUE(order.has_value());
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order->size(); ++i) pos[(*order)[i]] = i;
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[3]);
  EXPECT_LT(pos[2], pos[3]);
}

TEST(Digraph, TopologicalOrderRejectsCycle) {
  Digraph g;
  g.add_node();
  g.add_node();
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_FALSE(g.topological_order().has_value());
}

TEST(Digraph, CriticalPathOnDiamond) {
  const Digraph g = diamond();
  const auto cp = g.critical_path();
  // Heaviest path: 0 -> 2 -> 3 = 1 + 7 + 2 = 10.
  EXPECT_EQ(cp.weight, 10u);
  ASSERT_EQ(cp.nodes.size(), 3u);
  EXPECT_EQ(cp.nodes.front(), 0u);
  EXPECT_EQ(cp.nodes[1], 2u);
  EXPECT_EQ(cp.nodes.back(), 3u);
}

TEST(Digraph, CriticalPathWithCycleCondenses) {
  // 0 -> (1 <-> 2) -> 3: the SCC {1,2} counts as one sequential unit.
  Digraph g;
  g.add_node(1);
  g.add_node(4);
  g.add_node(6);
  g.add_node(2);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 1);
  g.add_edge(2, 3);
  const auto cp = g.critical_path();
  EXPECT_EQ(cp.weight, 1u + 4u + 6u + 2u);
}

TEST(Digraph, SccIdentifiesComponents) {
  Digraph g;
  for (int i = 0; i < 4; ++i) g.add_node();
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  std::uint32_t count = 0;
  const auto comp = g.strongly_connected_components(&count);
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_NE(comp[1], comp[2]);
  EXPECT_NE(comp[2], comp[3]);
}

TEST(Digraph, TotalWeight) {
  const Digraph g = diamond();
  EXPECT_EQ(g.total_weight(), 15u);
}

TEST(Digraph, CriticalPathEmptyGraph) {
  Digraph g;
  EXPECT_EQ(g.critical_path().weight, 0u);
}

TEST(Digraph, CriticalPathSingleNode) {
  Digraph g;
  g.add_node(42);
  const auto cp = g.critical_path();
  EXPECT_EQ(cp.weight, 42u);
  ASSERT_EQ(cp.nodes.size(), 1u);
}

// Property sweep: on random DAGs, critical path <= total weight and the
// witness path is a real path.
class DigraphProperty : public ::testing::TestWithParam<int> {};

TEST_P(DigraphProperty, CriticalPathBounds) {
  const int seed = GetParam();
  std::uint64_t state = static_cast<std::uint64_t>(seed) * 2654435761u + 1;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  Digraph g;
  const std::size_t n = 2 + next() % 30;
  for (std::size_t i = 0; i < n; ++i) g.add_node(next() % 100);
  for (std::size_t e = 0; e < 2 * n; ++e) {
    const NodeIndex a = static_cast<NodeIndex>(next() % n);
    const NodeIndex b = static_cast<NodeIndex>(next() % n);
    if (a < b) g.add_edge(a, b);  // forward edges only: a DAG
  }
  const auto cp = g.critical_path();
  EXPECT_LE(cp.weight, g.total_weight());
  EXPECT_GE(cp.nodes.size(), 1u);
  for (std::size_t i = 0; i + 1 < cp.nodes.size(); ++i) {
    EXPECT_TRUE(g.has_edge(cp.nodes[i], cp.nodes[i + 1]));
  }
  Cost path_weight = 0;
  for (NodeIndex node : cp.nodes) path_weight += g.weight(node);
  EXPECT_EQ(path_weight, cp.weight);
}

INSTANTIATE_TEST_SUITE_P(RandomDags, DigraphProperty, ::testing::Range(0, 25));

}  // namespace
}  // namespace ppd::graph
