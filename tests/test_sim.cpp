// Unit and property tests for the virtual-time simulator: makespan bounds,
// thread sweeps, pattern lowering.
#include <gtest/gtest.h>

#include "core/loop_class.hpp"
#include "sim/lowering.hpp"
#include "sim/task_dag.hpp"

namespace ppd::sim {
namespace {

SimParams no_overhead() {
  SimParams p;
  p.spawn_overhead = 0;
  p.startup_per_worker = 0;
  return p;
}

TEST(TaskDag, TotalsAndCriticalPath) {
  TaskDag dag;
  const TaskIndex a = dag.add_task(10);
  const TaskIndex b = dag.add_task(20);
  const TaskIndex c = dag.add_task(5);
  dag.add_dep(b, a);
  dag.add_dep(c, b);
  EXPECT_EQ(dag.total_work(), 35u);
  EXPECT_EQ(dag.critical_path(), 35u);  // a chain
}

TEST(TaskDag, CriticalPathOfIndependentTasks) {
  TaskDag dag;
  dag.add_task(10);
  dag.add_task(30);
  dag.add_task(20);
  EXPECT_EQ(dag.critical_path(), 30u);
}

TEST(Simulate, OneWorkerEqualsTotalWork) {
  TaskDag dag;
  for (int i = 0; i < 10; ++i) dag.add_task(7);
  EXPECT_EQ(simulate_makespan(dag, 1, no_overhead()), 70u);
}

TEST(Simulate, IndependentTasksScaleLinearly) {
  TaskDag dag;
  for (int i = 0; i < 32; ++i) dag.add_task(10);
  EXPECT_EQ(simulate_makespan(dag, 4, no_overhead()), 80u);
  EXPECT_EQ(simulate_makespan(dag, 32, no_overhead()), 10u);
}

TEST(Simulate, ChainDoesNotScale) {
  TaskDag dag;
  TaskIndex prev = dag.add_task(5);
  for (int i = 0; i < 9; ++i) {
    const TaskIndex t = dag.add_task(5);
    dag.add_dep(t, prev);
    prev = t;
  }
  EXPECT_EQ(simulate_makespan(dag, 8, no_overhead()), 50u);
}

TEST(Simulate, SpawnOverheadCharged) {
  TaskDag dag;
  dag.add_task(10);
  dag.add_task(10);
  SimParams p = no_overhead();
  p.spawn_overhead = 3;
  EXPECT_EQ(simulate_makespan(dag, 2, p), 13u);
  // Sequential mode (1 worker) pays no overhead.
  EXPECT_EQ(simulate_makespan(dag, 1, p), 20u);
}

TEST(Simulate, MemoryTermFloorsMakespan) {
  TaskDag dag;
  for (int i = 0; i < 16; ++i) dag.add_task(10);
  SimParams p = no_overhead();
  p.memory_work = 160;
  p.memory_scale_limit = 2;
  // Compute would finish in 10 at 16 workers, but bandwidth floors at 80.
  EXPECT_EQ(simulate_makespan(dag, 16, p), 80u);
}

TEST(Sweep, PrefersSmallestThreadCountOnPlateau) {
  TaskDag dag;
  for (int i = 0; i < 8; ++i) dag.add_task(100);
  SimParams p = no_overhead();
  p.memory_work = 800;
  p.memory_scale_limit = 4;  // no speedup beyond 4 threads
  const SweepResult sweep = sweep_threads(dag, p);
  EXPECT_EQ(sweep.best.threads, 4u);
  EXPECT_NEAR(sweep.best.speedup, 4.0, 1e-9);
}

TEST(Sweep, ReportsAllPoints) {
  TaskDag dag;
  dag.add_task(100);
  const SweepResult sweep = sweep_threads(dag, no_overhead(), {1, 2, 4});
  ASSERT_EQ(sweep.points.size(), 3u);
  EXPECT_EQ(sweep.points[0].threads, 1u);
  EXPECT_DOUBLE_EQ(sweep.points[0].speedup, 1.0);
}

// Property sweep: for any random DAG and worker count, the makespan is
// bounded below by both work/P and the critical path, and above by the
// total work (greedy list scheduling without overheads).
class MakespanBounds : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MakespanBounds, GreedyBoundsHold) {
  const auto [seed, workers] = GetParam();
  std::uint64_t state = static_cast<std::uint64_t>(seed) * 40503u + 11;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  TaskDag dag;
  const std::size_t n = 3 + next() % 40;
  for (std::size_t i = 0; i < n; ++i) {
    const TaskIndex t = dag.add_task(1 + next() % 50);
    for (std::size_t d = 0; d < 2 && i > 0; ++d) {
      if (next() % 3 == 0) dag.add_dep(t, static_cast<TaskIndex>(next() % i));
    }
  }
  const Cost makespan = simulate_makespan(dag, static_cast<std::size_t>(workers), no_overhead());
  EXPECT_GE(makespan, dag.critical_path());
  EXPECT_GE(makespan * static_cast<Cost>(workers), dag.total_work());
  EXPECT_LE(makespan, dag.total_work());
  // Graham bound: greedy <= work/P + critical path.
  EXPECT_LE(makespan,
            dag.total_work() / static_cast<Cost>(workers) + dag.critical_path() + 1);
}

INSTANTIATE_TEST_SUITE_P(RandomDags, MakespanBounds,
                         ::testing::Combine(::testing::Range(0, 12),
                                            ::testing::Values(1, 2, 4, 16)));

// ---- lowering ---------------------------------------------------------------

TEST(Lowering, DoAllLoopBlocks) {
  DagBuilder b;
  const auto loop = b.lower_loop(100, 1000, core::LoopClass::DoAll, 10);
  EXPECT_EQ(loop.blocks.size(), 10u);
  EXPECT_EQ(loop.tail, kInvalidTask);
  EXPECT_EQ(b.dag().total_work(), 1000u);
  // Blocks are independent: near-linear scaling.
  EXPECT_EQ(simulate_makespan(b.dag(), 10, no_overhead()), 100u);
}

TEST(Lowering, SequentialLoopIsAChain) {
  DagBuilder b;
  const auto loop = b.lower_loop(100, 1000, core::LoopClass::Sequential, 10);
  EXPECT_EQ(loop.tail, loop.blocks.back());
  EXPECT_EQ(simulate_makespan(b.dag(), 8, no_overhead()), 1000u);
}

TEST(Lowering, ReductionAddsCombine) {
  DagBuilder b;
  const auto loop = b.lower_loop(64, 640, core::LoopClass::Reduction, 8);
  ASSERT_NE(loop.tail, kInvalidTask);
  EXPECT_EQ(b.dag().size(), 9u);  // 8 blocks + combine
  EXPECT_EQ(simulate_makespan(b.dag(), 8, no_overhead()), 81u);
}

TEST(Lowering, CostRemainderDistributed) {
  DagBuilder b;
  (void)b.lower_loop(3, 10, core::LoopClass::DoAll, 3);
  EXPECT_EQ(b.dag().total_work(), 10u);
}

TEST(Lowering, LinkPairsWiresPipeline) {
  DagBuilder b;
  const auto x = b.lower_loop(10, 100, core::LoopClass::DoAll, 10);
  const auto y = b.lower_loop(10, 100, core::LoopClass::Sequential, 10);
  std::vector<prof::IterPair> pairs;
  for (std::uint64_t i = 0; i < 10; ++i) pairs.push_back({i, i});
  b.link_pairs(x, y, pairs);
  // y_0 waits for x_0 only: with enough workers the pipeline overlaps and
  // the makespan is x_0 + the whole y chain.
  EXPECT_EQ(simulate_makespan(b.dag(), 16, no_overhead()), 110u);
}

TEST(Lowering, LinkAllIsABarrier) {
  DagBuilder b;
  const auto x = b.lower_loop(4, 40, core::LoopClass::DoAll, 4);
  const auto y = b.lower_loop(4, 40, core::LoopClass::DoAll, 4);
  b.link_all(x, y);
  EXPECT_EQ(simulate_makespan(b.dag(), 4, no_overhead()), 20u);
}

TEST(Lowering, RecursionTreeShape) {
  DagBuilder b;
  (void)b.recursion_tree(2, 3, /*leaf=*/10, /*fork=*/1, /*join=*/1);
  // 2^3 = 8 leaves; internal nodes: 7 forks + 7 joins.
  EXPECT_EQ(b.dag().size(), 8u + 7u + 7u);
  EXPECT_EQ(b.dag().total_work(), 8u * 10 + 7u + 7u);
  // Parallel execution approaches leaves/P + tree depth.
  const Cost t1 = simulate_makespan(b.dag(), 1, no_overhead());
  const Cost t8 = simulate_makespan(b.dag(), 8, no_overhead());
  EXPECT_GT(t1, 3 * t8);
}

TEST(Lowering, BlockOfMapsIterations) {
  DagBuilder b;
  const auto loop = b.lower_loop(100, 100, core::LoopClass::DoAll, 10);
  EXPECT_EQ(loop.block_of(0), loop.blocks[0]);
  EXPECT_EQ(loop.block_of(15), loop.blocks[1]);
  EXPECT_EQ(loop.block_of(99), loop.blocks[9]);
  EXPECT_EQ(loop.block_of(1000), loop.blocks[9]);  // clamped
}

}  // namespace
}  // namespace ppd::sim
