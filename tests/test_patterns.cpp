// Unit tests for the core detectors: do-all/reduction classification,
// multi-loop pipeline + fusion, task parallelism (Algorithm 1), geometric
// decomposition (Algorithm 2), and the analyzer's primary-pattern choice.
#include <gtest/gtest.h>

#include "core/analyzer.hpp"
#include "trace/context.hpp"

namespace ppd::core {
namespace {

using trace::FunctionScope;
using trace::LoopScope;
using trace::StatementScope;
using trace::TraceContext;

// ---- loop classification ----------------------------------------------------

struct AnalyzerRun {
  TraceContext ctx;
  PatternAnalyzer analyzer{ctx};
};

TEST(LoopClass, DoAllLoop) {
  AnalyzerRun r;
  const VarId v = r.ctx.var("v");
  RegionId loop_id;
  {
    LoopScope l(r.ctx, "loop", 1);
    loop_id = l.id();
    for (int i = 0; i < 8; ++i) {
      l.begin_iteration();
      r.ctx.write(v, static_cast<std::uint64_t>(i), 2);
    }
  }
  const AnalysisResult res = r.analyzer.analyze();
  EXPECT_EQ(classify_loop(res.profile, loop_id), LoopClass::DoAll);
}

TEST(LoopClass, ReductionLoop) {
  AnalyzerRun r;
  const VarId sum = r.ctx.var("sum");
  const VarId arr = r.ctx.var("arr");
  RegionId loop_id;
  {
    LoopScope l(r.ctx, "loop", 1);
    loop_id = l.id();
    for (int i = 0; i < 16; ++i) {
      l.begin_iteration();
      r.ctx.read(arr, static_cast<std::uint64_t>(i), 2);
      r.ctx.read(sum, 0, 2);
      r.ctx.write(sum, 0, 2);
    }
  }
  const AnalysisResult res = r.analyzer.analyze();
  EXPECT_EQ(classify_loop(res.profile, loop_id), LoopClass::Reduction);
  const auto candidates = detect_reductions(res.profile, loop_id);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].line, 2u);
}

TEST(LoopClass, StencilChainIsSequentialNotReduction) {
  // path[i] = path[i-1] + x at one line: Algorithm 3's line test alone would
  // call it a reduction; the address refinement rejects it (each address is
  // visited once).
  AnalyzerRun r;
  const VarId path = r.ctx.var("path");
  RegionId loop_id;
  {
    LoopScope l(r.ctx, "loop", 1);
    loop_id = l.id();
    for (int i = 1; i < 16; ++i) {
      l.begin_iteration();
      r.ctx.read(path, static_cast<std::uint64_t>(i - 1), 3);
      r.ctx.write(path, static_cast<std::uint64_t>(i), 3);
    }
  }
  const AnalysisResult res = r.analyzer.analyze();
  EXPECT_TRUE(detect_reductions(res.profile, loop_id).empty());
  EXPECT_EQ(classify_loop(res.profile, loop_id), LoopClass::Sequential);
}

TEST(LoopClass, TwoReductionVariablesBothReported) {
  AnalyzerRun r;
  const VarId t1 = r.ctx.var("tmp");
  const VarId t2 = r.ctx.var("y");
  RegionId loop_id;
  {
    LoopScope l(r.ctx, "loop", 1);
    loop_id = l.id();
    for (int i = 0; i < 12; ++i) {
      l.begin_iteration();
      r.ctx.read(t1, 0, 4);
      r.ctx.write(t1, 0, 4);
      r.ctx.read(t2, 0, 5);
      r.ctx.write(t2, 0, 5);
    }
  }
  const AnalysisResult res = r.analyzer.analyze();
  EXPECT_EQ(detect_reductions(res.profile, loop_id).size(), 2u);
}

TEST(LoopClass, CarriedReadAtSecondLineDisqualifies) {
  // The accumulator is also read at a *different* line before the update:
  // that read sees the previous iteration's value (an inter-iteration RAW
  // at a second source line), so Algorithm 3's |readLines| == 1 test fails.
  AnalyzerRun r;
  const VarId v = r.ctx.var("v");
  RegionId loop_id;
  {
    LoopScope l(r.ctx, "loop", 1);
    loop_id = l.id();
    for (int i = 0; i < 8; ++i) {
      l.begin_iteration();
      r.ctx.read(v, 0, 3);  // pre-update read: carried RAW at line 3
      r.ctx.read(v, 0, 4);
      r.ctx.write(v, 0, 4);
    }
  }
  const AnalysisResult res = r.analyzer.analyze();
  EXPECT_TRUE(detect_reductions(res.profile, loop_id).empty());
}

TEST(LoopClass, SameIterationPostUpdateReadIsHarmless) {
  // Reading the accumulator *after* the update in the same iteration is
  // loop-independent and compatible with privatized reduction; Algorithm 3
  // keeps the candidate.
  AnalyzerRun r;
  const VarId v = r.ctx.var("v");
  RegionId loop_id;
  {
    LoopScope l(r.ctx, "loop", 1);
    loop_id = l.id();
    for (int i = 0; i < 8; ++i) {
      l.begin_iteration();
      r.ctx.read(v, 0, 4);
      r.ctx.write(v, 0, 4);
      r.ctx.read(v, 0, 9);  // reads this iteration's own partial value
    }
  }
  const AnalysisResult res = r.analyzer.analyze();
  EXPECT_EQ(detect_reductions(res.profile, loop_id).size(), 1u);
}

// ---- multi-loop pipeline ----------------------------------------------------

AnalysisResult run_two_loop_pipeline(std::uint64_t n, bool y_carried) {
  TraceContext ctx;
  PatternAnalyzer analyzer(ctx);
  const VarId buf = ctx.var("buf");
  const VarId out = ctx.var("out");
  {
    FunctionScope fn(ctx, "k", 1);
    {
      LoopScope x(ctx, "x", 2);
      for (std::uint64_t i = 0; i < n; ++i) {
        x.begin_iteration();
        ctx.write(buf, i, 3, 8);
      }
    }
    {
      LoopScope y(ctx, "y", 5);
      for (std::uint64_t i = 0; i < n; ++i) {
        y.begin_iteration();
        ctx.read(buf, i, 6);
        if (y_carried && i > 0) ctx.read(out, i - 1, 7);
        ctx.write(out, i, 7);
      }
    }
  }
  return analyzer.analyze();
}

TEST(Pipeline, PerfectPipelineDetected) {
  const AnalysisResult res = run_two_loop_pipeline(32, /*y_carried=*/true);
  ASSERT_EQ(res.pipelines.size(), 1u);
  const MultiLoopPipeline& p = res.pipelines[0];
  EXPECT_NEAR(p.fit.a, 1.0, 1e-9);
  EXPECT_NEAR(p.fit.b, 0.0, 1e-9);
  EXPECT_NEAR(p.e, 1.0, 1e-9);
  EXPECT_EQ(p.x_class, LoopClass::DoAll);
  EXPECT_EQ(p.y_class, LoopClass::Sequential);
  EXPECT_FALSE(p.fusion);
  EXPECT_FALSE(p.blocked);
  EXPECT_EQ(res.primary, PatternKind::MultiLoopPipeline);
}

TEST(Pipeline, FusionWhenBothDoAll) {
  const AnalysisResult res = run_two_loop_pipeline(32, /*y_carried=*/false);
  ASSERT_EQ(res.pipelines.size(), 1u);
  EXPECT_TRUE(res.pipelines[0].fusion);
  EXPECT_EQ(res.primary, PatternKind::Fusion);
  EXPECT_EQ(res.primary_description, "Fusion");
}

TEST(Pipeline, BlockingProducerSuppressesReport) {
  // y reads everything z wrote in its first iteration (e ~ 0 pair), plus a
  // perfect 1:1 pair from x; the blocked consumer suppresses both.
  TraceContext ctx;
  PatternAnalyzer analyzer(ctx);
  const VarId a = ctx.var("a");
  const VarId b = ctx.var("b");
  const VarId g = ctx.var("g");
  constexpr std::uint64_t n = 24;
  {
    FunctionScope fn(ctx, "k", 1);
    {
      LoopScope x(ctx, "x", 2);
      for (std::uint64_t i = 0; i < n; ++i) {
        x.begin_iteration();
        ctx.write(a, i, 3, 4);
      }
    }
    {
      LoopScope z(ctx, "z", 5);
      for (std::uint64_t i = 0; i < n; ++i) {
        z.begin_iteration();
        ctx.write(b, i, 6, 4);
      }
    }
    {
      LoopScope y(ctx, "y", 8);
      for (std::uint64_t i = 0; i < n; ++i) {
        y.begin_iteration();
        ctx.read(a, i, 9);
        if (i == 0) {
          for (std::uint64_t k = 0; k < n; ++k) ctx.read(b, k, 9);
        }
        ctx.write(g, i, 10);
      }
    }
  }
  const AnalysisResult res = analyzer.analyze();
  ASSERT_EQ(res.pipelines.size(), 2u);
  for (const MultiLoopPipeline& p : res.pipelines) EXPECT_TRUE(p.blocked);
  EXPECT_TRUE(res.reported_pipelines().empty());
  EXPECT_NE(res.primary, PatternKind::MultiLoopPipeline);
  EXPECT_NE(res.primary, PatternKind::Fusion);
}

TEST(Pipeline, ReversedDependenceIsBlocked) {
  // Consumer iteration i reads element n-1-i: a = -1. Eq. 2's area ratio is
  // direction-blind (the area under the reversed diagonal equals the
  // perfect one), but the first consumer iteration needs the *last*
  // producer iteration, so the pair must be blocked.
  TraceContext ctx;
  PatternAnalyzer analyzer(ctx);
  const VarId buf = ctx.var("buf");
  const VarId out = ctx.var("out");
  constexpr std::uint64_t n = 24;
  {
    FunctionScope fn(ctx, "k", 1);
    {
      LoopScope x(ctx, "x", 2);
      for (std::uint64_t i = 0; i < n; ++i) {
        x.begin_iteration();
        ctx.write(buf, i, 3, 4);
      }
    }
    {
      LoopScope y(ctx, "y", 5);
      for (std::uint64_t i = 0; i < n; ++i) {
        y.begin_iteration();
        ctx.read(buf, n - 1 - i, 6);
        ctx.write(out, i, 7, 4);
      }
    }
  }
  const AnalysisResult res = analyzer.analyze();
  ASSERT_EQ(res.pipelines.size(), 1u);
  EXPECT_LT(res.pipelines[0].fit.a, 0.0);
  EXPECT_TRUE(res.pipelines[0].blocked);
  EXPECT_NE(res.primary, PatternKind::MultiLoopPipeline);
  EXPECT_NE(res.primary, PatternKind::Fusion);
}

TEST(Pipeline, DescribeCoefficientsMatchesTable2) {
  EXPECT_NE(describe_coefficients(1.0, 0.0).find("exactly on one iteration"),
            std::string::npos);
  EXPECT_NE(describe_coefficients(0.05, -3.5).find("20.0 iterations of loop x"),
            std::string::npos);
  EXPECT_NE(describe_coefficients(2.0, 0.0).find("2.0 iterations of loop y"),
            std::string::npos);
  EXPECT_NE(describe_coefficients(1.0, -1.0).find("no iteration of loop y depends"),
            std::string::npos);
  EXPECT_NE(describe_coefficients(1.0, 3.0).find("first 3.0 iterations of loop y"),
            std::string::npos);
}

// ---- task parallelism (Algorithm 1) -----------------------------------------

TEST(TaskPar, DiamondClassification) {
  cu::CuGraph graph;
  graph.scope = RegionId(0);
  for (int i = 0; i < 4; ++i) {
    cu::Cu cu;
    cu.id = CuId(static_cast<CuId::rep_type>(i));
    cu.name = "CU_" + std::to_string(i);
    cu.cost = 10;
    graph.cus.push_back(cu);
    graph.graph.add_node(10);
  }
  graph.graph.add_edge(0, 1);
  graph.graph.add_edge(0, 2);
  graph.graph.add_edge(1, 3);
  graph.graph.add_edge(2, 3);

  const TaskParallelism tp = detect_task_parallelism(graph);
  EXPECT_EQ(tp.roles[0], CuRole::Fork);
  EXPECT_EQ(tp.roles[1], CuRole::Worker);
  EXPECT_EQ(tp.roles[2], CuRole::Worker);
  EXPECT_EQ(tp.roles[3], CuRole::Barrier);
  EXPECT_EQ(tp.worker_count(), 2u);
  EXPECT_EQ(tp.total_cost, 40u);
  EXPECT_EQ(tp.critical_path_cost, 30u);  // fork + one worker + barrier
  EXPECT_NEAR(tp.estimated_speedup, 4.0 / 3.0, 1e-9);
}

TEST(TaskPar, CilksortGraphMatchesFigure3) {
  // Figure 3: CU_0 forks CU_1..4; CU_5 barrier of 1,2; CU_6 barrier of 3,4;
  // CU_7 barrier of 5,6. CU_5 and CU_6 can run in parallel; CU_7 cannot run
  // in parallel with either.
  cu::CuGraph graph;
  graph.scope = RegionId(0);
  for (int i = 0; i < 8; ++i) {
    cu::Cu cu;
    cu.id = CuId(static_cast<CuId::rep_type>(i));
    cu.name = "CU_" + std::to_string(i);
    cu.cost = 10;
    graph.cus.push_back(cu);
    graph.graph.add_node(10);
  }
  for (int w = 1; w <= 4; ++w) graph.graph.add_edge(0, static_cast<graph::NodeIndex>(w));
  graph.graph.add_edge(1, 5);
  graph.graph.add_edge(2, 5);
  graph.graph.add_edge(3, 6);
  graph.graph.add_edge(4, 6);
  graph.graph.add_edge(5, 7);
  graph.graph.add_edge(6, 7);

  const TaskParallelism tp = detect_task_parallelism(graph);
  EXPECT_EQ(tp.roles[0], CuRole::Fork);
  for (int w = 1; w <= 4; ++w) EXPECT_EQ(tp.roles[static_cast<std::size_t>(w)], CuRole::Worker);
  EXPECT_EQ(tp.roles[5], CuRole::Barrier);
  EXPECT_EQ(tp.roles[6], CuRole::Barrier);
  EXPECT_EQ(tp.roles[7], CuRole::Barrier);
  ASSERT_EQ(tp.parallel_barriers.size(), 1u);
  EXPECT_EQ(tp.parallel_barriers[0], (std::pair<graph::NodeIndex, graph::NodeIndex>{5, 6}));
}

TEST(TaskPar, DisconnectedComponentsEachGetAFork) {
  cu::CuGraph graph;
  graph.scope = RegionId(0);
  for (int i = 0; i < 2; ++i) {
    cu::Cu cu;
    cu.id = CuId(static_cast<CuId::rep_type>(i));
    cu.cost = 5;
    graph.cus.push_back(cu);
    graph.graph.add_node(5);
  }
  const TaskParallelism tp = detect_task_parallelism(graph);
  EXPECT_EQ(tp.roles[0], CuRole::Fork);
  EXPECT_EQ(tp.roles[1], CuRole::Fork);
  EXPECT_EQ(tp.worker_count(), 0u);
  EXPECT_NEAR(tp.estimated_speedup, 2.0, 1e-9);
}

// ---- geometric decomposition (Algorithm 2) ----------------------------------

AnalysisResult run_gd_shape(bool inner_sequential) {
  TraceContext ctx;
  PatternAnalyzer analyzer(ctx);
  const VarId state = ctx.var("state");
  const VarId data = ctx.var("data");
  const VarId sum = ctx.var("sum");
  {
    FunctionScope fmain(ctx, "main", 1);
    LoopScope outer(ctx, "while_loop", 2);
    for (int round = 0; round < 3; ++round) {
      outer.begin_iteration();
      {
        FunctionScope worker(ctx, "work", 4);
        {
          LoopScope l1(ctx, "doall_loop", 5);
          for (int i = 0; i < 8; ++i) {
            l1.begin_iteration();
            ctx.read(state, 0, 6);
            ctx.write(data, static_cast<std::uint64_t>(i), 6, 10);
            if (inner_sequential && i > 0) {
              ctx.read(data, static_cast<std::uint64_t>(i - 1), 7);
            }
          }
        }
        {
          LoopScope l2(ctx, "sum_loop", 9);
          for (int i = 0; i < 8; ++i) {
            l2.begin_iteration();
            ctx.read(sum, 0, 10);
            ctx.write(sum, 0, 10);
          }
        }
      }
      // The round's result feeds the next round: the outer loop stays
      // sequential.
      ctx.read(sum, 0, 13);
      ctx.write(state, 0, 13);
    }
  }
  return analyzer.analyze();
}

TEST(Geometric, DetectedWhenAllLoopsDoallOrReduction) {
  const AnalysisResult res = run_gd_shape(/*inner_sequential=*/false);
  ASSERT_FALSE(res.geometric.empty());
  EXPECT_EQ(res.primary, PatternKind::GeometricDecomposition);
  EXPECT_EQ(res.geometric[0].doall_loops.size(), 1u);
  EXPECT_EQ(res.geometric[0].reduction_loops.size(), 1u);
}

TEST(Geometric, RejectedWhenALoopIsSequential) {
  const AnalysisResult res = run_gd_shape(/*inner_sequential=*/true);
  EXPECT_TRUE(res.geometric.empty());
  EXPECT_NE(res.primary, PatternKind::GeometricDecomposition);
}

// ---- pattern taxonomy (Table I) ----------------------------------------------

TEST(Taxonomy, SupportingStructures) {
  EXPECT_STREQ(supporting_structure(PatternKind::TaskParallelism), "Master/worker");
  EXPECT_STREQ(supporting_structure(PatternKind::GeometricDecomposition), "SPMD");
  EXPECT_STREQ(supporting_structure(PatternKind::Reduction), "SPMD");
  EXPECT_STREQ(supporting_structure(PatternKind::MultiLoopPipeline), "SPMD");
}

TEST(Taxonomy, PatternTypes) {
  EXPECT_EQ(pattern_type(PatternKind::TaskParallelism), PatternType::ByTask);
  EXPECT_EQ(pattern_type(PatternKind::GeometricDecomposition), PatternType::ByData);
  EXPECT_EQ(pattern_type(PatternKind::MultiLoopPipeline), PatternType::ByFlowOfData);
  EXPECT_EQ(pattern_type(PatternKind::Fusion), PatternType::ByFlowOfData);
}

}  // namespace
}  // namespace ppd::core
