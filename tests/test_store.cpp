// Unit tests for ppd::store: the .ppdt container primitives (varints,
// CRC32, framing), the writer/reader pair including the strict/lenient
// corruption contract, decode-parallelism determinism, and the batch
// driver's content-addressed report cache.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "store/batch.hpp"
#include "store/format.hpp"
#include "store/reader.hpp"
#include "store/writer.hpp"
#include "support/mapped_file.hpp"
#include "support/status.hpp"
#include "trace/context.hpp"
#include "trace/fault_injector.hpp"
#include "trace/serialize.hpp"
#include "trace/validator.hpp"

namespace ppd::store {
namespace {

using support::DiagSink;
using support::ErrorCode;
using support::Status;
using trace::ReplayMode;

// ---- primitives -------------------------------------------------------------

TEST(StoreFormat, VarintRoundtripBoundaries) {
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  (std::uint64_t{1} << 32) - 1,
                                  std::uint64_t{1} << 32,
                                  (std::uint64_t{1} << 56) - 1,
                                  std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t value : values) {
    std::string encoded;
    put_varint(encoded, value);
    EXPECT_LE(encoded.size(), 10u);
    ByteReader reader(encoded);
    std::uint64_t decoded = 0;
    ASSERT_TRUE(reader.read_varint(decoded)) << value;
    EXPECT_EQ(decoded, value);
    EXPECT_TRUE(reader.at_end());
  }
}

TEST(StoreFormat, VarintRejectsOverlongAndTruncated) {
  {  // Eleven continuation bytes can never be a valid 64-bit varint.
    const std::string overlong(11, '\x80');
    ByteReader reader(overlong);
    std::uint64_t decoded = 0;
    EXPECT_FALSE(reader.read_varint(decoded));
  }
  {  // A tenth byte with payload bits above 2^64 must be rejected.
    std::string bad(9, '\x80');
    bad += '\x7F';
    ByteReader reader(bad);
    std::uint64_t decoded = 0;
    EXPECT_FALSE(reader.read_varint(decoded));
  }
  {  // Truncated mid-varint: continuation bit set on the final byte.
    const std::string torn = "\x80";
    ByteReader reader(torn);
    std::uint64_t decoded = 0;
    EXPECT_FALSE(reader.read_varint(decoded));
  }
}

TEST(StoreFormat, ZigzagRoundtrip) {
  const std::int64_t values[] = {0, -1, 1, -2, 2, 1000, -1000,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  for (const std::int64_t value : values) {
    EXPECT_EQ(unzigzag(zigzag(value)), value);
  }
  // Small magnitudes encode small: the point of the mapping.
  EXPECT_EQ(zigzag(0), 0u);
  EXPECT_EQ(zigzag(-1), 1u);
  EXPECT_EQ(zigzag(1), 2u);
}

TEST(StoreFormat, Crc32KnownVector) {
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
  EXPECT_NE(crc32("a"), crc32("b"));
}

TEST(StoreFormat, Fnv1a64SeedSensitivity) {
  EXPECT_EQ(fnv1a64(""), kFnv1aOffset);
  EXPECT_NE(fnv1a64("trace"), fnv1a64("tracf"));
  EXPECT_NE(fnv1a64("trace", 1), fnv1a64("trace", 2));
  EXPECT_EQ(content_key("bytes", 7), content_key("bytes", 7));
  EXPECT_NE(content_key("bytes", 7), content_key("bytes", 8));
}

// ---- synthetic traced program ----------------------------------------------

/// A tiny reduction kernel; `iters` scales the record count so tests can
/// force single- or many-chunk containers.
void run_program(trace::TraceContext& ctx, int iters) {
  trace::FunctionScope fn(ctx, "main", 1);
  const VarId a = ctx.var("a");
  const VarId s = ctx.var("s");
  trace::LoopScope loop(ctx, "main_loop", 2);
  for (int i = 0; i < iters; ++i) {
    loop.begin_iteration();
    trace::StatementScope stmt(ctx, "acc", 3);
    ctx.read(a, static_cast<std::uint64_t>(i), 3);
    ctx.update(s, 0, 3, trace::UpdateOp::Sum);
    ctx.compute(3, 2);
  }
}

std::string make_binary(int iters, std::uint32_t target_chunk_bytes,
                        std::uint64_t* chunks_out = nullptr) {
  std::ostringstream out;
  trace::TraceContext ctx;
  BinaryTraceWriter::Options options;
  options.target_chunk_bytes = target_chunk_bytes;
  BinaryTraceWriter writer(ctx, out, options);
  ctx.add_sink(&writer);
  run_program(ctx, iters);
  ctx.finish();
  if (chunks_out != nullptr) *chunks_out = writer.chunks_written();
  return out.str();
}

std::string make_text(int iters) {
  std::ostringstream out;
  trace::TraceContext ctx;
  trace::TraceWriter writer(ctx, out);
  ctx.add_sink(&writer);
  run_program(ctx, iters);
  ctx.finish();
  return out.str();
}

/// Replays `bytes` (either format) into a fresh context and re-serializes
/// the dispatched stream as text — a canonical form for equality checks.
std::string reserialize(const std::string& bytes, const ReadOptions& options,
                        ReadResult* result_out = nullptr) {
  std::ostringstream out;
  trace::TraceContext ctx;
  trace::TraceWriter writer(ctx, out);
  ctx.add_sink(&writer);
  if (is_binary_trace(bytes)) {
    const ReadResult result = read_trace(bytes, ctx, options);
    if (result_out != nullptr) *result_out = result;
  } else {
    std::istringstream in(bytes);
    trace::ReplayOptions replay_options;
    replay_options.mode = options.mode;
    const trace::ReplayResult replay = trace::replay_trace(in, ctx, replay_options);
    if (result_out != nullptr) result_out->status = replay.status;
  }
  return out.str();
}

// ---- writer/reader roundtrip ------------------------------------------------

TEST(StoreRoundtrip, MagicSniffing) {
  EXPECT_TRUE(is_binary_trace(make_binary(4, 1u << 16)));
  EXPECT_FALSE(is_binary_trace(make_text(4)));
  EXPECT_FALSE(is_binary_trace(""));
  EXPECT_FALSE(is_binary_trace("PPDT"));  // prefix alone is not the magic
}

TEST(StoreRoundtrip, BinaryReplayMatchesTextReplay) {
  const std::string binary = make_binary(16, 1u << 16);
  const std::string text = make_text(16);

  ReadResult result;
  const std::string from_binary = reserialize(binary, ReadOptions{}, &result);
  const std::string from_text = reserialize(text, ReadOptions{});

  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_TRUE(result.finished);
  EXPECT_EQ(result.dropped, 0u);
  EXPECT_EQ(from_binary, from_text);
}

TEST(StoreRoundtrip, ReaderAccountsRecordsAndChunks) {
  std::uint64_t chunks = 0;
  const std::string binary = make_binary(64, 256, &chunks);
  EXPECT_GT(chunks, 2u) << "tiny target_chunk_bytes must split the stream";

  trace::TraceContext ctx;
  const ReadResult result = read_trace(binary, ctx, ReadOptions{});
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_EQ(result.chunks, chunks);
  EXPECT_GT(result.records, 0u);
}

TEST(StoreRoundtrip, ParallelDecodeIsDeterministic) {
  std::uint64_t chunks = 0;
  const std::string binary = make_binary(256, 128, &chunks);
  ASSERT_GT(chunks, 4u);

  ReadOptions serial;
  serial.jobs = 1;
  ReadOptions fanout;
  fanout.jobs = 4;

  ReadResult serial_result;
  ReadResult fanout_result;
  const std::string from_serial = reserialize(binary, serial, &serial_result);
  const std::string from_fanout = reserialize(binary, fanout, &fanout_result);

  ASSERT_TRUE(serial_result.status.is_ok());
  ASSERT_TRUE(fanout_result.status.is_ok());
  EXPECT_EQ(serial_result.records, fanout_result.records);
  EXPECT_EQ(from_serial, from_fanout);
}

TEST(StoreRoundtrip, EmptyProgramRoundtrips) {
  std::ostringstream out;
  trace::TraceContext ctx;
  BinaryTraceWriter writer(ctx, out);
  ctx.add_sink(&writer);
  ctx.finish();

  trace::TraceContext replay_ctx;
  const ReadResult result = read_trace(out.str(), replay_ctx, ReadOptions{});
  EXPECT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_EQ(result.records, 0u);
  EXPECT_TRUE(result.finished);
}

// ---- corruption contract ----------------------------------------------------

TEST(StoreCorruption, NonBinaryInputIsBadHeader) {
  trace::TraceContext ctx;
  EXPECT_EQ(read_trace("", ctx, ReadOptions{}).status.code(), ErrorCode::BadHeader);
  trace::TraceContext ctx2;
  EXPECT_EQ(read_trace("ppd-trace 1\n", ctx2, ReadOptions{}).status.code(),
            ErrorCode::BadHeader);
  trace::TraceContext ctx3;
  EXPECT_EQ(read_trace(std::string_view(kMagic, 4), ctx3, ReadOptions{}).status.code(),
            ErrorCode::BadHeader);
}

TEST(StoreCorruption, CorruptChunkStrictStopsLenientSkips) {
  std::uint64_t chunks = 0;
  const std::string pristine = make_binary(64, 256, &chunks);
  ASSERT_GT(chunks, 2u);

  // First byte of the first chunk payload: a single flipped payload byte is
  // guaranteed to break that section's CRC.
  std::string corrupt = pristine;
  corrupt[kMagicSize + kSectionHeaderSize] =
      static_cast<char>(corrupt[kMagicSize + kSectionHeaderSize] ^ 0x5A);

  {
    trace::TraceContext ctx;
    const ReadResult result = read_trace(corrupt, ctx, ReadOptions{});
    EXPECT_EQ(result.status.code(), ErrorCode::ChunkCorrupt)
        << result.status.to_string();
    EXPECT_GT(result.status.line(), 0u);
    EXPECT_FALSE(result.finished);
  }
  {
    trace::TraceContext ctx;
    DiagSink diags;
    trace::Validator validator(&diags);
    ctx.add_sink(&validator);
    ReadOptions options;
    options.mode = ReplayMode::Lenient;
    options.diags = &diags;
    const ReadResult result = read_trace(corrupt, ctx, options);
    ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
    EXPECT_TRUE(result.finished);
    EXPECT_EQ(result.skipped_chunks, 1u);
    EXPECT_GT(result.dropped, 0u);  // the chunk's declared records
    EXPECT_GE(diags.total(), 1u);
    EXPECT_TRUE(validator.ok()) << validator.status().to_string();
  }
}

TEST(StoreCorruption, FooterDamageStrictFailsLenientRecoversAllRecords) {
  const std::string pristine = make_binary(64, 256);
  trace::TraceContext pristine_ctx;
  const ReadResult pristine_result = read_trace(pristine, pristine_ctx, ReadOptions{});
  ASSERT_TRUE(pristine_result.status.is_ok());

  std::string damaged = pristine;
  damaged.back() = static_cast<char>(damaged.back() ^ 0x1);  // breaks the trailer magic

  {
    trace::TraceContext ctx;
    const ReadResult result = read_trace(damaged, ctx, ReadOptions{});
    EXPECT_EQ(result.status.code(), ErrorCode::BadFooter) << result.status.to_string();
    EXPECT_FALSE(result.finished);
  }
  {  // The sections are self-delimiting: a forward scan recovers everything.
    trace::TraceContext ctx;
    DiagSink diags;
    ReadOptions options;
    options.mode = ReplayMode::Lenient;
    options.diags = &diags;
    const ReadResult result = read_trace(damaged, ctx, options);
    ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
    EXPECT_TRUE(result.finished);
    EXPECT_EQ(result.records, pristine_result.records);
    EXPECT_EQ(result.dropped, 0u);
    EXPECT_GE(diags.total(), 1u);  // the footer damage itself is reported
  }
}

TEST(StoreCorruption, TruncationStrictFailsLenientFinishes) {
  const std::string pristine = make_binary(64, 256);
  const std::string torn = pristine.substr(0, pristine.size() / 2);

  {
    trace::TraceContext ctx;
    const ReadResult result = read_trace(torn, ctx, ReadOptions{});
    EXPECT_FALSE(result.status.is_ok());
    EXPECT_FALSE(result.finished);
  }
  {
    trace::TraceContext ctx;
    DiagSink diags;
    trace::Validator validator(&diags);
    ctx.add_sink(&validator);
    ReadOptions options;
    options.mode = ReplayMode::Lenient;
    options.diags = &diags;
    const ReadResult result = read_trace(torn, ctx, options);
    ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
    EXPECT_TRUE(result.finished);
    EXPECT_TRUE(validator.ok()) << validator.status().to_string();
  }
}

TEST(StoreCorruption, RecordCapIsFatalInBothModes) {
  const std::string binary = make_binary(64, 1u << 16);
  for (const ReplayMode mode : {ReplayMode::Strict, ReplayMode::Lenient}) {
    trace::TraceContext ctx;
    ReadOptions options;
    options.mode = mode;
    options.limits.max_records = 3;
    const ReadResult result = read_trace(binary, ctx, options);
    EXPECT_EQ(result.status.code(), ErrorCode::ResourceLimit)
        << result.status.to_string();
    EXPECT_FALSE(result.finished);
  }
}

// ---- batch driver and report cache ------------------------------------------

class StoreBatch : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("ppd_store_batch_" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string write_file(const std::string& name, const std::string& bytes) {
    const std::string path = (dir_ / name).string();
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return path;
  }

  std::filesystem::path dir_;
};

TEST_F(StoreBatch, CachePathAndFraming) {
  const std::string path = cache_path("cache", 0xDEADBEEFull);
  EXPECT_EQ(path, (std::filesystem::path("cache") / "00000000deadbeef.ppdr").string());
}

TEST_F(StoreBatch, FindTracesSniffsBothFormatsAndSorts) {
  write_file("b.ppdt", make_binary(4, 1u << 16));
  write_file("a.txt", make_text(4));
  write_file("junk.bin", "not a trace at all\n");

  const std::vector<std::string> traces = find_traces(dir_.string());
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_NE(traces[0].find("a.txt"), std::string::npos);
  EXPECT_NE(traces[1].find("b.ppdt"), std::string::npos);

  // A plain file path passes through untouched, trace or not.
  const std::vector<std::string> single = find_traces(traces[0]);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0], traces[0]);
}

TEST_F(StoreBatch, SecondRunIsServedEntirelyFromCache) {
  const std::string text_path = write_file("a.txt", make_text(8));
  const std::string binary_path = write_file("b.ppdt", make_binary(8, 1u << 16));
  const std::vector<std::string> paths = {text_path, binary_path};

  std::atomic<int> calls{0};
  const AnalyzeFn analyze = [&calls](const std::string& path, std::string_view) {
    ++calls;
    AnalyzeOutcome outcome;
    outcome.report = "report for " + path + "\n";
    return outcome;
  };

  BatchOptions options;
  options.jobs = 2;
  options.cache_dir = (dir_ / "cache").string();

  const BatchSummary first = analyze_batch(paths, options, analyze);
  ASSERT_EQ(first.items.size(), 2u);
  EXPECT_EQ(first.failures, 0u);
  EXPECT_EQ(first.cache_hits, 0u);
  EXPECT_EQ(calls.load(), 2);

  const BatchSummary second = analyze_batch(paths, options, analyze);
  EXPECT_EQ(second.cache_hits, 2u);
  EXPECT_EQ(second.failures, 0u);
  EXPECT_EQ(calls.load(), 2) << "cache hits must not re-analyze";
  for (std::size_t i = 0; i < paths.size(); ++i) {
    EXPECT_EQ(second.items[i].report, first.items[i].report);
    EXPECT_TRUE(second.items[i].cached);
  }

  // --refresh re-analyzes even though the cache entry exists.
  BatchOptions refresh = options;
  refresh.refresh = true;
  const BatchSummary third = analyze_batch(paths, refresh, analyze);
  EXPECT_EQ(third.cache_hits, 0u);
  EXPECT_EQ(calls.load(), 4);

  // A different salt (changed analysis configuration) misses the cache.
  BatchOptions salted = options;
  salted.salt = 99;
  const BatchSummary fourth = analyze_batch(paths, salted, analyze);
  EXPECT_EQ(fourth.cache_hits, 0u);
  EXPECT_EQ(calls.load(), 6);
}

TEST_F(StoreBatch, DegradedOutcomesAreNeverCached) {
  const std::string path = write_file("a.txt", make_text(4));
  std::atomic<int> calls{0};
  const AnalyzeFn analyze = [&calls](const std::string&, std::string_view) {
    ++calls;
    AnalyzeOutcome outcome;
    outcome.report = "degraded report\n";
    outcome.cacheable = false;
    return outcome;
  };
  BatchOptions options;
  options.cache_dir = (dir_ / "cache").string();
  (void)analyze_batch({path}, options, analyze);
  const BatchSummary second = analyze_batch({path}, options, analyze);
  EXPECT_EQ(second.cache_hits, 0u);
  EXPECT_EQ(calls.load(), 2);
}

TEST_F(StoreBatch, UnreadableFileBecomesFailedItem) {
  const std::string missing = (dir_ / "missing.txt").string();
  const AnalyzeFn analyze = [](const std::string&, std::string_view) {
    return AnalyzeOutcome{};
  };
  const BatchSummary summary = analyze_batch({missing}, BatchOptions{}, analyze);
  ASSERT_EQ(summary.items.size(), 1u);
  EXPECT_EQ(summary.failures, 1u);
  EXPECT_EQ(summary.items[0].status.code(), ErrorCode::IoError);
}

TEST_F(StoreBatch, TornCacheEntryIsAMiss) {
  const std::string path = write_file("a.txt", make_text(4));
  std::atomic<int> calls{0};
  const AnalyzeFn analyze = [&calls](const std::string&, std::string_view) {
    ++calls;
    AnalyzeOutcome outcome;
    outcome.report = "fresh report\n";
    return outcome;
  };
  BatchOptions options;
  options.cache_dir = (dir_ / "cache").string();
  (void)analyze_batch({path}, options, analyze);
  ASSERT_EQ(calls.load(), 1);

  // Truncate the stored entry: the length check must reject it.
  std::string bytes;
  ASSERT_TRUE(slurp_file(path, bytes));
  const std::string entry = cache_path(options.cache_dir, content_key(bytes, 0));
  std::string cached;
  ASSERT_TRUE(slurp_file(entry, cached));
  {
    std::ofstream out(entry, std::ios::binary | std::ios::trunc);
    out.write(cached.data(), static_cast<std::streamsize>(cached.size() / 2));
  }
  const BatchSummary summary = analyze_batch({path}, options, analyze);
  EXPECT_EQ(summary.cache_hits, 0u);
  EXPECT_EQ(calls.load(), 2);
  EXPECT_EQ(summary.items[0].report, "fresh report\n");
}

// ---- mmap read path ---------------------------------------------------------
//
// read_trace_file (support::MappedFile under the hood) must be
// indistinguishable from read_trace over slurped bytes: same Status codes,
// same tallies, same dispatched stream — for pristine containers and for
// every byte-level corruption the FaultInjector can produce. The CI
// sanitizer leg runs these tests to certify the mapped path's bounds
// handling.

class StoreMmap : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("ppd_store_mmap_" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string write_file(const std::string& name, const std::string& bytes) {
    const std::string path = (dir_ / name).string();
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return path;
  }

  std::filesystem::path dir_;
};

/// Replays via the mapped-file entry point and re-serializes the dispatched
/// stream, mirroring reserialize() for in-memory bytes.
std::string reserialize_file(const std::string& path, const ReadOptions& options,
                             ReadResult* result_out = nullptr) {
  std::ostringstream out;
  trace::TraceContext ctx;
  trace::TraceWriter writer(ctx, out);
  ctx.add_sink(&writer);
  const ReadResult result = read_trace_file(path, ctx, options);
  if (result_out != nullptr) *result_out = result;
  return out.str();
}

TEST_F(StoreMmap, MappedFileBasics) {
  support::MappedFile file;
  const std::string path = write_file("data.bin", "hello mapped world");
  ASSERT_TRUE(file.open(path).is_ok());
  EXPECT_EQ(file.bytes(), "hello mapped world");
  EXPECT_EQ(file.size(), 18u);

  // Re-open replaces the previous mapping.
  const std::string other = write_file("other.bin", "xy");
  ASSERT_TRUE(file.open(other).is_ok());
  EXPECT_EQ(file.bytes(), "xy");

  // Move transfers the view; the source becomes empty.
  support::MappedFile moved = std::move(file);
  EXPECT_EQ(moved.bytes(), "xy");
  EXPECT_EQ(file.size(), 0u);

  moved.reset();
  EXPECT_EQ(moved.size(), 0u);
}

TEST_F(StoreMmap, ZeroLengthFileMapsAsEmptyView) {
  support::MappedFile file;
  ASSERT_TRUE(file.open(write_file("empty.bin", "")).is_ok());
  EXPECT_EQ(file.size(), 0u);
  EXPECT_EQ(file.bytes(), std::string_view());
}

TEST_F(StoreMmap, MissingFileIsIoError) {
  support::MappedFile file;
  const Status status = file.open((dir_ / "does_not_exist").string());
  EXPECT_EQ(status.code(), ErrorCode::IoError) << status.to_string();
  EXPECT_EQ(file.size(), 0u);
}

TEST_F(StoreMmap, DirectoryIsIoError) {
  support::MappedFile file;
  const Status status = file.open(dir_.string());
  EXPECT_EQ(status.code(), ErrorCode::IoError) << status.to_string();
}

TEST_F(StoreMmap, ReadTraceFileMatchesInMemoryReplay) {
  const std::string pristine = make_binary(64, 256);
  const std::string path = write_file("trace.ppdt", pristine);

  ReadResult mem_result;
  const std::string mem_stream = reserialize(pristine, ReadOptions{}, &mem_result);
  ReadResult file_result;
  const std::string file_stream = reserialize_file(path, ReadOptions{}, &file_result);

  ASSERT_TRUE(file_result.status.is_ok()) << file_result.status.to_string();
  EXPECT_EQ(file_stream, mem_stream);
  EXPECT_EQ(file_result.records, mem_result.records);
  EXPECT_EQ(file_result.chunks, mem_result.chunks);
  EXPECT_TRUE(file_result.finished);
}

TEST_F(StoreMmap, MissingTraceFileReportsIoErrorThroughReadResult) {
  trace::TraceContext ctx;
  const ReadResult result =
      read_trace_file((dir_ / "missing.ppdt").string(), ctx, ReadOptions{});
  EXPECT_EQ(result.status.code(), ErrorCode::IoError) << result.status.to_string();
  EXPECT_FALSE(result.finished);
}

TEST_F(StoreMmap, ZeroLengthTraceFileIsBadHeaderLikeEmptyBytes) {
  const std::string path = write_file("empty.ppdt", "");
  trace::TraceContext ctx;
  const ReadResult file_result = read_trace_file(path, ctx, ReadOptions{});
  trace::TraceContext ctx2;
  const ReadResult mem_result = read_trace("", ctx2, ReadOptions{});
  EXPECT_EQ(file_result.status.code(), mem_result.status.code());
  EXPECT_EQ(file_result.status.code(), ErrorCode::BadHeader);
}

TEST_F(StoreMmap, FaultMutantsBehaveIdenticallyMappedAndSlurped) {
  // Every byte-level fault the injector knows, in both replay modes: the
  // mapped path must report the same Status code and tallies and dispatch
  // the same stream as the in-memory path over identical bytes.
  const std::string pristine = make_binary(64, 256);
  const trace::FaultInjector::Fault faults[] = {
      trace::FaultInjector::Fault::ChunkTruncate,
      trace::FaultInjector::Fault::CrcCorrupt,
      trace::FaultInjector::Fault::FooterDamage,
      trace::FaultInjector::Fault::TruncateTail,
      trace::FaultInjector::Fault::BitFlip,
  };
  int case_id = 0;
  for (const trace::FaultInjector::Fault fault : faults) {
    for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
      trace::FaultInjector injector(seed);
      const std::string mutated = injector.apply(pristine, fault);
      const std::string path =
          write_file("mutant_" + std::to_string(case_id++) + ".ppdt", mutated);
      for (const ReplayMode mode : {ReplayMode::Strict, ReplayMode::Lenient}) {
        SCOPED_TRACE(std::string(trace::FaultInjector::to_string(fault)) +
                     " seed=" + std::to_string(seed) +
                     (mode == ReplayMode::Strict ? " strict" : " lenient"));
        ReadOptions options;
        options.mode = mode;
        // Mem side goes straight through read_trace (no format sniffing):
        // read_trace_file unconditionally takes the binary path, so the
        // comparison must too, even for mutants that damaged the magic.
        ReadResult mem_result;
        std::string mem_stream;
        {
          std::ostringstream out;
          trace::TraceContext ctx;
          trace::TraceWriter writer(ctx, out);
          ctx.add_sink(&writer);
          mem_result = read_trace(mutated, ctx, options);
          mem_stream = out.str();
        }
        ReadResult file_result;
        const std::string file_stream = reserialize_file(path, options, &file_result);

        EXPECT_EQ(file_result.status.code(), mem_result.status.code())
            << "file: " << file_result.status.to_string()
            << " mem: " << mem_result.status.to_string();
        EXPECT_EQ(file_stream, mem_stream);
        EXPECT_EQ(file_result.records, mem_result.records);
        EXPECT_EQ(file_result.dropped, mem_result.dropped);
        EXPECT_EQ(file_result.skipped_chunks, mem_result.skipped_chunks);
        EXPECT_EQ(file_result.repaired_scopes, mem_result.repaired_scopes);
        EXPECT_EQ(file_result.finished, mem_result.finished);
      }
    }
  }
}

}  // namespace
}  // namespace ppd::store
