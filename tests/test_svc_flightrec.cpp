// Flight-recorder post-mortem suite (`ctest -L wirefault`): the crash
// story of the resident daemon, proven end to end.
//
// Two legs. The containment leg drives a hostile frame into a live
// in-process server running with a flight recorder and a crash-dump path,
// and requires the contained wirefault to leave the same post-mortem a
// fatal crash would: the dump names the fault, carries the flight ring
// (hostile request's events included), and ends with a metrics snapshot.
// The crash leg forks a real daemon process, serves one analysis request
// through it, kills it with SIGSEGV, and requires the dump it leaves
// behind to hold a coherent span tree covering that request — every span
// of the request's trace parented inside the tree, with the
// svc.request.begin event carrying the same trace id.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bs/benchmark.hpp"
#include "obs/flight.hpp"
#include "obs/obs.hpp"
#include "store/writer.hpp"
#include "svc/analysis.hpp"
#include "svc/client.hpp"
#include "svc/frame.hpp"
#include "svc/server.hpp"
#include "trace/context.hpp"

namespace ppd::svc {
namespace {

using support::Status;

struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/ppd_svc_fr_XXXXXX";
    path = mkdtemp(tmpl);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

#if !defined(PPD_OBS_DISABLED)

std::string make_trace(const char* benchmark_name) {
  std::ostringstream out;
  trace::TraceContext ctx;
  store::BinaryTraceWriter writer(ctx, out);
  ctx.add_sink(&writer);
  const bs::Benchmark* benchmark = bs::find_benchmark(benchmark_name);
  EXPECT_NE(benchmark, nullptr) << benchmark_name;
  benchmark->run_traced(ctx);
  ctx.finish();
  return out.str();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// One parsed `span ...` / `event ...` line of a flight dump.
struct DumpRecord {
  bool is_span = false;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  std::string name;
};

/// Parses the `k=v`-token grammar of ppd-flight-dump v1 record lines.
/// `name=` is always the last field and runs to the end of the line
/// (wirefault events embed free-text status messages).
bool parse_dump_record(const std::string& line, DumpRecord& out) {
  if (line.rfind("span ", 0) == 0) {
    out.is_span = true;
  } else if (line.rfind("event ", 0) == 0) {
    out.is_span = false;
  } else {
    return false;
  }
  const std::size_t name_at = line.find(" name=");
  if (name_at == std::string::npos) return false;
  out.name = line.substr(name_at + std::strlen(" name="));

  const auto field = [&](const char* key, std::uint64_t& value) {
    const std::string needle = std::string(" ") + key + "=";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos || at >= name_at) return false;
    value = std::strtoull(line.c_str() + at + needle.size(), nullptr, 10);
    return true;
  };
  if (!field("trace", out.trace_id)) return false;
  if (!field("span", out.span_id)) return false;
  out.parent_span_id = 0;
  if (out.is_span && !field("parent", out.parent_span_id)) return false;
  return true;
}

/// Parses a whole dump: the header lines are validated, the records
/// collected. Fatal-fails on anything that is not ppd-flight-dump v1.
void parse_dump(const std::string& text, std::string& reason,
                std::vector<DumpRecord>& records) {
  std::istringstream lines(text);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  ASSERT_EQ(line, "ppd-flight-dump v1");
  ASSERT_TRUE(std::getline(lines, line));
  ASSERT_EQ(line.rfind("reason=", 0), 0u);
  reason = line.substr(std::strlen("reason="));
  ASSERT_TRUE(std::getline(lines, line));
  ASSERT_EQ(line.rfind("flight total=", 0), 0u);
  bool saw_metrics = false;
  bool saw_end = false;
  while (std::getline(lines, line)) {
    if (line == "metrics") {
      saw_metrics = true;
      continue;
    }
    if (line == "end") {
      saw_end = true;
      continue;
    }
    DumpRecord record;
    if (parse_dump_record(line, record)) {
      ASSERT_FALSE(saw_metrics) << "record after the metrics section: " << line;
      records.push_back(record);
    } else {
      // Everything between `metrics` and `end` is a key=value line.
      ASSERT_TRUE(saw_metrics) << "unparseable flight line: " << line;
      ASSERT_NE(line.find('='), std::string::npos) << line;
    }
  }
  ASSERT_TRUE(saw_metrics);
  ASSERT_TRUE(saw_end);
}

/// A raw hostile connection: valid hello, then a CRC-corrupt request.
void send_corrupt_request(const std::string& socket_path,
                          std::string_view trace_bytes) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr),
            0);

  std::string hello;
  encode_hello(hello, HelloPayload{kProtocolVersion, kProtocolVersion, "evil"});
  std::string request;
  {
    RequestPayload payload;
    payload.trace = trace_bytes;
    encode_request(request, payload);
  }
  std::string stream = encode_frame(FrameType::Hello, hello) +
                       encode_frame(FrameType::AnalyzeRequest, request);
  stream.back() = static_cast<char>(stream.back() ^ 0x01);  // fail the CRC

  std::size_t off = 0;
  while (off < stream.size()) {
    const ssize_t n =
        ::send(fd, stream.data() + off, stream.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    off += static_cast<std::size_t>(n);
  }
  // Drain until the server hangs up: its error reply (and with it the
  // wirefault dump, written before the close) is complete by then.
  ::shutdown(fd, SHUT_WR);
  char sink[256];
  for (;;) {
    const ssize_t n = ::recv(fd, sink, sizeof sink, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
  }
  ::close(fd);
}

TEST(SvcFlightRec, ContainedWirefaultLeavesAPostMortemDump) {
  TempDir dir;
  const std::string dump_path = dir.path + "/flight.txt";
  static obs::FlightRecorder ring;  // outlives the server's worker threads
  obs::install_flight_recorder(&ring);
  ASSERT_TRUE(obs::enable_crash_dump(dump_path));

  Server::Options options;
  options.socket_path = dir.path + "/d.sock";
  options.cache.dir.clear();
  options.log_connections = false;
  Server server(options);
  ASSERT_TRUE(server.start().is_ok());

  // One clean request first, so the dump proves the ring held the daemon's
  // recent history — not just the fault itself.
  const std::string trace = make_trace("gesummv");
  Client client;
  ASSERT_TRUE(client.connect(options.socket_path, "clean").is_ok());
  ASSERT_TRUE(client.analyze(trace, {}).status.is_ok());

  send_corrupt_request(options.socket_path, trace);
  server.stop();
  obs::install_flight_recorder(nullptr);

  const std::string text = read_file(dump_path);
  ASSERT_FALSE(text.empty()) << "no flight dump at " << dump_path;
  std::string reason;
  std::vector<DumpRecord> records;
  ASSERT_NO_FATAL_FAILURE(parse_dump(text, reason, records));
  EXPECT_EQ(reason, "wirefault");

  bool saw_fault_event = false;
  bool saw_request_begin = false;
  bool saw_request_span = false;
  for (const DumpRecord& record : records) {
    if (!record.is_span && record.name == "svc.wirefault") saw_fault_event = true;
    if (!record.is_span && record.name == "svc.request.begin") {
      saw_request_begin = true;
      EXPECT_NE(record.trace_id, 0u) << "request event outside a trace";
    }
    if (record.is_span && record.name == "svc.request") saw_request_span = true;
  }
  EXPECT_TRUE(saw_fault_event) << text;
  EXPECT_TRUE(saw_request_begin) << text;
  EXPECT_TRUE(saw_request_span) << text;
  // The dump's metrics snapshot saw the contained fault being counted.
  EXPECT_NE(text.find("svc.conn.protocol_errors="), std::string::npos) << text;
}

TEST(SvcFlightRec, SigsegvDaemonDumpCoversTheRequestSpanTree) {
  TempDir dir;
  const std::string dump_path = dir.path + "/flight.txt";
  const std::string socket_path = dir.path + "/d.sock";
  const std::string trace = make_trace("bicg");

  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    // Child: a real daemon process with the flight recorder armed. It
    // never returns to gtest — it dies by the parent's SIGSEGV, and the
    // crash handler must leave the dump behind on its way down.
    static obs::FlightRecorder ring;
    obs::install_flight_recorder(&ring);
    if (!obs::enable_crash_dump(dump_path)) _exit(3);
    Server::Options options;
    options.socket_path = socket_path;
    options.cache.dir.clear();
    options.log_connections = false;
    Server server(options);
    if (!server.start().is_ok()) _exit(4);
    for (;;) pause();
  }

  // Parent: wait for the daemon socket, run one full request through it.
  Client client;
  Status connected = Status::ok();
  for (int attempt = 0;; ++attempt) {
    connected = client.connect(socket_path, "parent");
    if (connected.is_ok()) break;
    if (attempt > 200) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (!connected.is_ok()) {
    kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);
    FAIL() << "daemon child never came up: " << connected.to_string();
  }
  const Client::Result result = client.analyze(trace, {});
  EXPECT_TRUE(result.status.is_ok()) << result.status.to_string();
  client.close();

  ASSERT_EQ(kill(pid, SIGSEGV), 0);
  int wait_status = 0;
  ASSERT_EQ(waitpid(pid, &wait_status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wait_status));
  EXPECT_EQ(WTERMSIG(wait_status), SIGSEGV);

  const std::string text = read_file(dump_path);
  ASSERT_FALSE(text.empty()) << "crashed daemon left no dump at " << dump_path;
  std::string reason;
  std::vector<DumpRecord> records;
  ASSERT_NO_FATAL_FAILURE(parse_dump(text, reason, records));
  EXPECT_EQ(reason, "SIGSEGV");

  // The request's trace id comes from its begin event; the span tree of
  // that trace must be present and internally parented.
  std::uint64_t request_trace = 0;
  for (const DumpRecord& record : records) {
    if (!record.is_span && record.name == "svc.request.begin") {
      request_trace = record.trace_id;
    }
  }
  ASSERT_NE(request_trace, 0u) << text;

  std::set<std::uint64_t> span_ids;
  std::size_t request_spans = 0;
  for (const DumpRecord& record : records) {
    if (record.is_span && record.trace_id == request_trace) {
      span_ids.insert(record.span_id);
      ++request_spans;
    }
  }
  EXPECT_GE(request_spans, 2u) << "span tree too small to cover the request";
  std::size_t roots = 0;
  for (const DumpRecord& record : records) {
    if (!record.is_span || record.trace_id != request_trace) continue;
    if (record.parent_span_id == 0) {
      ++roots;
    } else {
      EXPECT_TRUE(span_ids.count(record.parent_span_id) != 0)
          << "span " << record.span_id << " parented outside the dump";
    }
  }
  EXPECT_GE(roots, 1u) << "no root span for trace " << request_trace;
}

#else  // PPD_OBS_DISABLED

TEST(SvcFlightRec, FlightApiIsAnInertStubWithObsOff) {
  // The disabled build must still link and no-op every entry point the
  // daemon calls on the crash path.
  obs::install_flight_recorder(nullptr);
  EXPECT_EQ(obs::active_flight_recorder(), nullptr);
  EXPECT_FALSE(obs::flight_dump_now("nothing"));
}

#endif  // PPD_OBS_DISABLED

}  // namespace
}  // namespace ppd::svc
