// Unit tests for the shadow-memory substrate and the inline loop stack.
#include <gtest/gtest.h>

#include "mem/access_record.hpp"
#include "mem/shadow.hpp"
#include "trace/context.hpp"

namespace ppd::mem {
namespace {

TEST(InlineLoopStack, EmptyByDefault) {
  InlineLoopStack stack;
  EXPECT_TRUE(stack.empty());
  EXPECT_EQ(stack.size(), 0u);
  EXPECT_EQ(stack.iteration_of(RegionId(1)), ~std::uint64_t{0});
}

TEST(InlineLoopStack, CopiesPositions) {
  const std::vector<trace::LoopPosition> positions{{RegionId(3), 7}, {RegionId(5), 2}};
  InlineLoopStack stack{std::span<const trace::LoopPosition>(positions)};
  ASSERT_EQ(stack.size(), 2u);
  EXPECT_EQ(stack[0].loop, RegionId(3));
  EXPECT_EQ(stack[0].iteration, 7u);
  EXPECT_EQ(stack.iteration_of(RegionId(5)), 2u);
  EXPECT_EQ(stack.iteration_of(RegionId(9)), ~std::uint64_t{0});
}

TEST(InlineLoopStack, SpanRoundTrips) {
  const std::vector<trace::LoopPosition> positions{{RegionId(1), 4}};
  InlineLoopStack stack{std::span<const trace::LoopPosition>(positions)};
  const auto span = stack.span();
  ASSERT_EQ(span.size(), 1u);
  EXPECT_EQ(span[0].iteration, 4u);
}

TEST(InlineLoopStack, MaxDepthAccepted) {
  std::vector<trace::LoopPosition> positions;
  for (std::uint32_t i = 0; i < InlineLoopStack::kMaxDepth; ++i) {
    positions.push_back({RegionId(i), i});
  }
  InlineLoopStack stack{std::span<const trace::LoopPosition>(positions)};
  EXPECT_EQ(stack.size(), InlineLoopStack::kMaxDepth);
  EXPECT_EQ(stack.iteration_of(RegionId(InlineLoopStack::kMaxDepth - 1)),
            InlineLoopStack::kMaxDepth - 1);
}

TEST(ShadowMemory, DefaultCellOnFirstTouch) {
  ShadowMemory<ShadowCell> shadow;
  const ShadowCell& cell = shadow.cell(12345);
  EXPECT_FALSE(cell.last_write.valid);
  EXPECT_FALSE(cell.last_read.valid);
}

TEST(ShadowMemory, WritesPersist) {
  ShadowMemory<int> shadow;
  shadow.cell(100) = 7;
  shadow.cell(100) += 1;
  EXPECT_EQ(*shadow.find(100), 8);
}

TEST(ShadowMemory, CellsAreIndependent) {
  ShadowMemory<int, 4> shadow;
  shadow.cell(0) = 1;
  shadow.cell(15) = 2;  // same 16-cell page
  shadow.cell(16) = 3;  // next page
  EXPECT_EQ(*shadow.find(0), 1);
  EXPECT_EQ(*shadow.find(15), 2);
  EXPECT_EQ(*shadow.find(16), 3);
  EXPECT_EQ(shadow.page_count(), 2u);
}

TEST(ShadowMemory, ClearReleasesPages) {
  ShadowMemory<int> shadow;
  shadow.cell(1) = 1;
  shadow.cell(1 << 20) = 2;
  EXPECT_EQ(shadow.page_count(), 2u);
  shadow.clear();
  EXPECT_EQ(shadow.page_count(), 0u);
  EXPECT_EQ(shadow.find(1), nullptr);
}

TEST(ShadowMemory, TouchedBytesGrowWithPages) {
  ShadowMemory<int, 4> shadow;
  EXPECT_EQ(shadow.touched_bytes(), 0u);
  shadow.cell(0) = 1;
  const std::size_t one_page = shadow.touched_bytes();
  EXPECT_GT(one_page, 0u);
  shadow.cell(1 << 16) = 1;
  EXPECT_EQ(shadow.touched_bytes(), 2 * one_page);
}

TEST(ShadowMemory, SparseAddressesFromDistinctVars) {
  // Synthetic addresses place each variable 2^40 apart; the paged map must
  // not allocate anything in between.
  ShadowMemory<int> shadow;
  shadow.cell(trace::TraceContext::addr(VarId(0), 0)) = 1;
  shadow.cell(trace::TraceContext::addr(VarId(1000), 0)) = 2;
  EXPECT_EQ(shadow.page_count(), 2u);
}

TEST(AccessRecord, FromEventCopiesEverything) {
  trace::AccessEvent ev;
  ev.kind = trace::AccessKind::Write;
  ev.addr = 42;
  ev.var = VarId(3);
  ev.line = 17;
  ev.cost = 5;
  ev.op = trace::UpdateOp::Max;
  ev.stmt = StatementId(2);
  ev.region = RegionId(1);
  ev.func = RegionId(0);
  ev.func_activation = 9;
  ev.seq = 1234;
  const std::vector<trace::LoopPosition> loops{{RegionId(1), 6}};
  ev.loop_stack = loops;

  const AccessRecord rec = AccessRecord::from_event(ev);
  EXPECT_TRUE(rec.valid);
  EXPECT_EQ(rec.line, 17u);
  EXPECT_EQ(rec.op, trace::UpdateOp::Max);
  EXPECT_EQ(rec.stmt, StatementId(2));
  EXPECT_EQ(rec.region, RegionId(1));
  EXPECT_EQ(rec.func, RegionId(0));
  EXPECT_EQ(rec.func_activation, 9u);
  EXPECT_EQ(rec.seq, 1234u);
  EXPECT_EQ(rec.loops.iteration_of(RegionId(1)), 6u);
}

}  // namespace
}  // namespace ppd::mem
