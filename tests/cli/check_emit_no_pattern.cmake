# --emit on a pattern-free trace: an explicit diagnostic on stderr, nothing
# on stdout, and the dedicated exit code 6 (distinct from an analysis
# failure: the analysis succeeded, there is just nothing to generate).
# The fixture trace is a hotspot loop whose carried RAW distances alternate
# (1, 2, 1, ...): sequential, not privatizable, and irregular, so neither
# a do-across schedule nor any other pattern applies.
#
# Driven by ctest:
#   cmake -DPPD_ANALYZE=<exe> -DTRACE=<no_pattern.trace> -P <this file>
foreach(var PPD_ANALYZE TRACE)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_emit_no_pattern.cmake: -D${var}=... is required")
  endif()
endforeach()

foreach(backend pat omp)
  execute_process(
    COMMAND ${PPD_ANALYZE} --trace ${TRACE} --emit ${backend}
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE code)
  if(NOT code EQUAL 6)
    message(FATAL_ERROR
      "--emit ${backend} on a pattern-free trace: expected exit 6, got ${code}\n"
      "stderr:\n${err}")
  endif()
  if(NOT out STREQUAL "")
    message(FATAL_ERROR
      "--emit ${backend} with no pattern put bytes on stdout:\n${out}")
  endif()
  if(NOT err MATCHES "no pattern detected")
    message(FATAL_ERROR
      "--emit ${backend} with no pattern is missing the diagnostic; stderr:\n${err}")
  endif()
endforeach()

# A bad backend operand is a usage error (exit 2), not exit 6.
execute_process(
  COMMAND ${PPD_ANALYZE} --trace ${TRACE} --emit fortran
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE code)
if(NOT code EQUAL 2)
  message(FATAL_ERROR "--emit fortran: expected usage exit 2, got ${code}")
endif()

message(STATUS "emit no-pattern diagnostics: ok")
