# Exit-code and help conventions of ppd-analyze, exercised end to end:
#   - --help / -h print usage to stdout and exit 0,
#   - --version prints the version line to stdout and exits 0,
#   - usage errors print usage to stderr and exit 2.
#
# Driven by ctest:  cmake -DPPD_ANALYZE=<exe> -P <this file>
if(NOT DEFINED PPD_ANALYZE)
  message(FATAL_ERROR "usage: cmake -DPPD_ANALYZE=<exe> -P check_cli_conventions.cmake")
endif()

function(run_expect code_expected out_var err_var)
  execute_process(
    COMMAND ${PPD_ANALYZE} ${ARGN}
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE code)
  if(NOT code EQUAL ${code_expected})
    message(FATAL_ERROR "ppd-analyze ${ARGN}: expected exit ${code_expected}, got ${code}\nstderr:\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
  set(${err_var} "${err}" PARENT_SCOPE)
endfunction()

function(expect_contains text needle what)
  string(FIND "${text}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "${what}: expected to find \"${needle}\" in:\n${text}")
  endif()
endfunction()

function(expect_empty text what)
  if(NOT text STREQUAL "")
    message(FATAL_ERROR "${what}: expected empty, got:\n${text}")
  endif()
endfunction()

# 1. --help and -h: usage on stdout, exit 0, quiet stderr.
run_expect(0 help_out help_err --help)
expect_contains("${help_out}" "usage: ppd-analyze" "--help stdout")
expect_contains("${help_out}" "--profile" "--help stdout documents observability flags")
expect_empty("${help_err}" "--help stderr")

run_expect(0 h_out h_err -h)
expect_contains("${h_out}" "usage: ppd-analyze" "-h stdout")

# --help wins even when combined with other (even broken) arguments.
run_expect(0 mixed_out mixed_err --trace nonexistent --help)
expect_contains("${mixed_out}" "usage: ppd-analyze" "mixed --help stdout")

# 2. --version: single version line on stdout, exit 0.
run_expect(0 ver_out ver_err --version)
expect_contains("${ver_out}" "ppd-analyze " "--version stdout")
expect_contains("${ver_out}" "ppdt container v" "--version reports container format")
expect_empty("${ver_err}" "--version stderr")

# 3. Usage errors exit 2 with the problem on stderr and nothing on stdout.
run_expect(2 noargs_out noargs_err)
expect_contains("${noargs_err}" "usage: ppd-analyze" "no-args stderr")
expect_empty("${noargs_out}" "no-args stdout")

run_expect(2 badflag_out badflag_err --trace)
expect_contains("${badflag_err}" "usage: ppd-analyze" "missing operand stderr")

run_expect(2 unknown_out unknown_err this-benchmark-does-not-exist)
expect_contains("${unknown_err}" "unknown benchmark" "unknown benchmark stderr")

# Observability flags need a file operand.
run_expect(2 obsflag_out obsflag_err --trace x.ppdt --profile=)
expect_contains("${obsflag_err}" "usage: ppd-analyze" "empty --profile stderr")

message(STATUS "cli conventions: ok")
