# Compile-and-run check of the executable codegen backend: the translation
# unit `ppd-analyze <benchmark> --emit pat` prints must
#   1. compile cleanly against src/ with only the four runtime .cpp files
#      the generated header comment promises,
#   2. run and self-verify (exit 0) at jobs {1,2,4,8},
#   3. report at least one verified pattern instance on stdout.
#
# Driven by ctest (LABEL execverify):
#   cmake -DPPD_ANALYZE=<exe> -DBENCHMARK=<name> -DCXX=<compiler>
#         -DSRC=<repo>/src -DWORK_DIR=<dir> -P <this file>
foreach(var PPD_ANALYZE BENCHMARK CXX SRC WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_emit_pat.cmake: -D${var}=... is required")
  endif()
endforeach()

file(MAKE_DIRECTORY ${WORK_DIR})
set(gen ${WORK_DIR}/gen_${BENCHMARK}.cpp)
set(bin ${WORK_DIR}/gen_${BENCHMARK})

execute_process(
  COMMAND ${PPD_ANALYZE} ${BENCHMARK} --emit pat
  OUTPUT_FILE ${gen}
  ERROR_VARIABLE err
  RESULT_VARIABLE code)
if(NOT code EQUAL 0)
  message(FATAL_ERROR
    "--emit pat for '${BENCHMARK}': expected exit 0, got ${code}\nstderr:\n${err}")
endif()

execute_process(
  COMMAND ${CXX} -std=c++20 -O2 -pthread -I${SRC} ${gen}
          ${SRC}/rt/thread_pool.cpp ${SRC}/obs/obs.cpp
          ${SRC}/support/assert.cpp ${SRC}/support/status.cpp
          -o ${bin}
  ERROR_VARIABLE err
  RESULT_VARIABLE code)
if(NOT code EQUAL 0)
  message(FATAL_ERROR
    "generated code for '${BENCHMARK}' does not compile (exit ${code}):\n${err}")
endif()

execute_process(
  COMMAND ${bin}
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE code)
if(NOT code EQUAL 0)
  message(FATAL_ERROR
    "generated code for '${BENCHMARK}' failed self-verification (exit ${code}):\n"
    "stdout:\n${out}\nstderr:\n${err}")
endif()
if(NOT out MATCHES "pat-verify: [1-9][0-9]* pattern instance")
  message(FATAL_ERROR
    "generated code for '${BENCHMARK}' verified nothing:\nstdout:\n${out}")
endif()

message(STATUS "emit pat (${BENCHMARK}): ok — ${out}")
