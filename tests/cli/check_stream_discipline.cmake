# Output-discipline contract of ppd-analyze, exercised end to end:
#   - the report is the only thing on stdout (pipeable),
#   - progress and diagnostics go to stderr,
#   - binary (.ppdt) replay reproduces the text-replay report byte for byte.
#
# Driven by ctest:  cmake -DPPD_ANALYZE=<exe> -DWORK_DIR=<dir> -P <this file>
if(NOT DEFINED PPD_ANALYZE OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DPPD_ANALYZE=<exe> -DWORK_DIR=<dir> -P check_stream_discipline.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_tool out_var err_var)
  execute_process(
    COMMAND ${PPD_ANALYZE} ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}"
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "ppd-analyze ${ARGN} exited with ${code}\nstderr:\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
  set(${err_var} "${err}" PARENT_SCOPE)
endfunction()

function(expect_contains text needle what)
  string(FIND "${text}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "${what}: expected to find \"${needle}\" in:\n${text}")
  endif()
endfunction()

function(expect_absent text needle what)
  string(FIND "${text}" "${needle}" at)
  if(NOT at EQUAL -1)
    message(FATAL_ERROR "${what}: \"${needle}\" must not appear in:\n${text}")
  endif()
endfunction()

# 1. Benchmark run with a trace dump: report on stdout, progress on stderr.
run_tool(bench_out bench_err fib --dump-trace fib.txt)
expect_contains("${bench_out}" "Primary pattern:" "benchmark stdout")
expect_absent("${bench_out}" "trace written" "benchmark stdout")
expect_contains("${bench_err}" "trace written" "benchmark stderr")

# 2. Text replay: report on stdout, progress on stderr.
run_tool(text_out text_err --trace fib.txt --strict)
expect_contains("${text_out}" "Primary pattern:" "text replay stdout")
expect_absent("${text_out}" "replayed" "text replay stdout")
expect_contains("${text_err}" "replayed" "text replay stderr")

# 3. Lenient replay of a damaged trace: diagnostics on stderr only.
file(READ "${WORK_DIR}/fib.txt" trace_text)
file(WRITE "${WORK_DIR}/bad.txt" "${trace_text}bogus record\n")
run_tool(bad_out bad_err --trace bad.txt --lenient)
expect_contains("${bad_out}" "Primary pattern:" "lenient stdout")
expect_absent("${bad_out}" "Diagnostics" "lenient stdout")
expect_contains("${bad_err}" "== Diagnostics ==" "lenient stderr")

# 4. Binary replay reproduces the text report byte for byte.
run_tool(conv_out conv_err convert fib.txt fib.ppdt)
expect_contains("${conv_err}" "converted" "convert stderr")
run_tool(bin_out bin_err --trace fib.ppdt --jobs 2)
if(NOT bin_out STREQUAL text_out)
  message(FATAL_ERROR "binary replay report differs from the text replay report")
endif()

# 5. Observability flags leave stdout untouched: the report stays byte-equal
#    to the unprofiled run, the "written" confirmations go to stderr, and
#    the profile is a Chrome trace-event file.
run_tool(prof_out prof_err --trace fib.ppdt --jobs 2
         --profile=prof.json --metrics=metrics.txt)
if(NOT prof_out STREQUAL bin_out)
  message(FATAL_ERROR "--profile/--metrics changed the report on stdout")
endif()
expect_absent("${prof_out}" "profile written" "profiled stdout")
expect_contains("${prof_err}" "profile written" "profiled stderr")
expect_contains("${prof_err}" "metrics written" "profiled stderr")
if(PPD_OBS_ENABLED)
  file(READ "${WORK_DIR}/prof.json" prof_json)
  expect_contains("${prof_json}" "traceEvents" "profile file")
  expect_contains("${prof_json}" "\"ph\": \"B\"" "profile file has begin events")
  file(READ "${WORK_DIR}/metrics.txt" metrics_text)
  expect_contains("${metrics_text}" "ingest.ppdt.records=" "metrics file")
endif()

# 6. Batch mode: per-trace "## <trace>" headers and the machine-readable
#    summary line on stdout; --progress heartbeats on stderr only.
file(MAKE_DIRECTORY "${WORK_DIR}/traces")
file(COPY "${WORK_DIR}/fib.txt" DESTINATION "${WORK_DIR}/traces")
file(COPY "${WORK_DIR}/fib.ppdt" DESTINATION "${WORK_DIR}/traces")
run_tool(batch_out batch_err --batch traces --jobs 2 --no-cache --progress)
expect_contains("${batch_out}" "## traces/fib.txt" "batch stdout header")
expect_contains("${batch_out}" "## traces/fib.ppdt" "batch stdout header")
expect_contains("${batch_out}" "## summary traces=2 cached=0 failed=0" "batch summary line")
expect_contains("${batch_err}" "progress: " "batch stderr heartbeat")
expect_contains("${batch_err}" "2/2 traces" "batch stderr final heartbeat")
expect_absent("${batch_out}" "progress: " "batch stdout")

message(STATUS "cli stream discipline: ok")
