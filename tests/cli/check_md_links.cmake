# Markdown link check: every relative link target in the given documents
# must exist on disk, so the repo map and the cross-references between
# README.md, DESIGN.md, and docs/PROTOCOL.md cannot silently rot.
# External (http/https/mailto) links and pure #anchors are skipped.
#
# Driven by ctest:
#   cmake -DROOT=<repo root> "-DFILES=README.md;DESIGN.md;..." -P <this file>
if(NOT DEFINED ROOT OR NOT DEFINED FILES)
  message(FATAL_ERROR "usage: cmake -DROOT=<dir> -DFILES=<list> -P check_md_links.cmake")
endif()

set(checked 0)
foreach(doc IN LISTS FILES)
  set(path ${ROOT}/${doc})
  if(NOT EXISTS ${path})
    message(FATAL_ERROR "document to check does not exist: ${path}")
  endif()
  file(READ ${path} text)
  string(REGEX MATCHALL "\\[[^]]*\\]\\(([^)]+)\\)" links "${text}")
  foreach(link IN LISTS links)
    string(REGEX REPLACE "^\\[[^]]*\\]\\(([^)]+)\\)$" "\\1" target "${link}")
    if(target MATCHES "^(https?|mailto):" OR target MATCHES "^#")
      continue()
    endif()
    # Drop a trailing #section anchor; only the file's existence is checked.
    string(REGEX REPLACE "#.*$" "" target "${target}")
    get_filename_component(dir ${path} DIRECTORY)
    if(NOT EXISTS ${dir}/${target})
      message(FATAL_ERROR "${doc}: broken relative link '${target}' (${link})")
    endif()
    math(EXPR checked "${checked} + 1")
  endforeach()
endforeach()

message(STATUS "markdown links: ${checked} relative links resolve")
