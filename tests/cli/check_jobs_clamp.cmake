# --jobs handling of ppd-analyze, exercised end to end:
#   - the "--jobs=N" spelling parses identically to "--jobs N",
#   - asking for more workers than the machine has prints exactly one
#     clamp note to stderr and nothing extra to stdout,
#   - the clamped (sharded) run's report stays byte-identical to the
#     serial run — the user-visible face of the bit-identity contract,
#   - out-of-range values (0, non-numeric, > 256) are usage errors.
#
# Driven by ctest:  cmake -DPPD_ANALYZE=<exe> -DWORK_DIR=<dir> -P <this file>
if(NOT DEFINED PPD_ANALYZE OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DPPD_ANALYZE=<exe> -DWORK_DIR=<dir> -P check_jobs_clamp.cmake")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_expect code_expected out_var err_var)
  execute_process(
    COMMAND ${PPD_ANALYZE} ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}"
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE code)
  if(NOT code EQUAL ${code_expected})
    message(FATAL_ERROR "ppd-analyze ${ARGN}: expected exit ${code_expected}, got ${code}\nstderr:\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
  set(${err_var} "${err}" PARENT_SCOPE)
endfunction()

function(expect_contains text needle what)
  string(FIND "${text}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "${what}: expected to find \"${needle}\" in:\n${text}")
  endif()
endfunction()

function(expect_absent text needle what)
  string(FIND "${text}" "${needle}" at)
  if(NOT at EQUAL -1)
    message(FATAL_ERROR "${what}: \"${needle}\" must not appear in:\n${text}")
  endif()
endfunction()

# Fixture: a small binary trace to replay.
run_expect(0 seed_out seed_err fib --dump-trace fib.txt)
run_expect(0 conv_out conv_err convert fib.txt fib.ppdt)

# 1. Serial baseline.
run_expect(0 serial_out serial_err --trace fib.ppdt --jobs 1)
expect_contains("${serial_out}" "Primary pattern:" "serial stdout")
expect_absent("${serial_err}" "exceeds hardware concurrency" "serial stderr")

# 2. Oversubscribed run: 256 is the largest accepted value and exceeds the
#    hardware concurrency of any supported CI runner, so the clamp note must
#    appear — once, on stderr only — and the report must not change.
run_expect(0 clamp_out clamp_err --trace fib.ppdt --jobs 256)
expect_contains("${clamp_err}" "note: --jobs 256 exceeds hardware concurrency" "clamped stderr")
expect_absent("${clamp_out}" "exceeds hardware concurrency" "clamped stdout")
string(FIND "${clamp_err}" "exceeds hardware concurrency" first_at)
math(EXPR after_first "${first_at} + 1")
string(SUBSTRING "${clamp_err}" ${after_first} -1 err_tail)
expect_absent("${err_tail}" "exceeds hardware concurrency" "clamp note printed once")
if(NOT clamp_out STREQUAL serial_out)
  message(FATAL_ERROR "clamped --jobs 256 report differs from the serial report")
endif()

# 3. The "--jobs=N" spelling is equivalent.
run_expect(0 eq_out eq_err --trace fib.ppdt --jobs=256)
expect_contains("${eq_err}" "note: --jobs 256 exceeds hardware concurrency" "--jobs= stderr")
if(NOT eq_out STREQUAL serial_out)
  message(FATAL_ERROR "--jobs=256 report differs from the serial report")
endif()

# 4. Batch mode clamps through the same helper.
file(MAKE_DIRECTORY "${WORK_DIR}/traces")
file(COPY "${WORK_DIR}/fib.ppdt" DESTINATION "${WORK_DIR}/traces")
run_expect(0 batch_out batch_err --batch traces --jobs 256 --no-cache)
expect_contains("${batch_err}" "note: --jobs 256 exceeds hardware concurrency" "batch stderr")
expect_absent("${batch_out}" "exceeds hardware concurrency" "batch stdout")

# 5. Out-of-range values are usage errors (exit 2, nothing on stdout).
run_expect(2 zero_out zero_err --trace fib.ppdt --jobs 0)
expect_contains("${zero_err}" "usage: ppd-analyze" "--jobs 0 stderr")
run_expect(2 huge_out huge_err --trace fib.ppdt --jobs 257)
expect_contains("${huge_err}" "usage: ppd-analyze" "--jobs 257 stderr")
run_expect(2 text_out2 text_err2 --trace fib.ppdt --jobs=banana)
expect_contains("${text_err2}" "usage: ppd-analyze" "--jobs=banana stderr")

message(STATUS "cli jobs clamp: ok")
