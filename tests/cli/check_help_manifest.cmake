# Help/README drift check, driven by the documented_flags.txt manifest:
#   1. every manifest flag appears in that tool's live --help output,
#   2. every manifest flag marked `both` also appears in README.md,
#   3. every --flag token the live --help output mentions has a manifest
#      line — so a new flag cannot ship undocumented.
#
# Driven by ctest:
#   cmake -DPPD_ANALYZE=<exe> -DPPD_ANALYZED=<exe>
#         -DMANIFEST=<documented_flags.txt> -DREADME=<README.md> -P <this file>
foreach(var PPD_ANALYZE PPD_ANALYZED MANIFEST README)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_help_manifest.cmake: -D${var}=... is required")
  endif()
endforeach()

function(capture_help exe out_var)
  execute_process(
    COMMAND ${exe} --help
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "${exe} --help: expected exit 0, got ${code}\nstderr:\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

capture_help(${PPD_ANALYZE} help_ppd-analyze)
capture_help(${PPD_ANALYZED} help_ppd-analyzed)
file(READ ${README} readme)
file(STRINGS ${MANIFEST} manifest_lines)

# Pass 1: manifest -> --help (and README for `both` entries).
set(known_ppd-analyze "")
set(known_ppd-analyzed "")
foreach(line IN LISTS manifest_lines)
  if(line MATCHES "^#" OR line STREQUAL "")
    continue()
  endif()
  if(NOT line MATCHES "^(ppd-analyze|ppd-analyzed) (--[a-z0-9-]+) (both|help)$")
    message(FATAL_ERROR "malformed manifest line: '${line}'")
  endif()
  set(tool ${CMAKE_MATCH_1})
  set(flag ${CMAKE_MATCH_2})
  set(where ${CMAKE_MATCH_3})
  list(APPEND known_${tool} ${flag})
  string(FIND "${help_${tool}}" "${flag}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR
      "manifest flag ${flag} is not in `${tool} --help` — remove the manifest "
      "line or document the flag in the usage text")
  endif()
  if(where STREQUAL "both")
    string(FIND "${readme}" "${flag}" at)
    if(at EQUAL -1)
      message(FATAL_ERROR
        "manifest flag ${flag} (${tool}) is marked `both` but README.md never "
        "mentions it — document it or demote the manifest entry to `help`")
    endif()
  endif()
endforeach()

# Pass 2: --help -> manifest. A flag in the usage text that the manifest
# does not know is exactly the drift this test exists to catch.
foreach(tool ppd-analyze ppd-analyzed)
  string(REGEX MATCHALL "--[a-z0-9-]+" tokens "${help_${tool}}")
  list(REMOVE_DUPLICATES tokens)
  foreach(flag IN LISTS tokens)
    list(FIND known_${tool} ${flag} at)
    if(at EQUAL -1)
      message(FATAL_ERROR
        "`${tool} --help` mentions ${flag} but tests/cli/documented_flags.txt "
        "has no entry for it — add one (and README coverage if user-facing)")
    endif()
  endforeach()
endforeach()

message(STATUS "help manifest: ok")
