// Unit tests for the markdown report and the Graphviz exports.
#include <gtest/gtest.h>

#include "bs/benchmark.hpp"
#include "core/task_parallelism.hpp"
#include "report/markdown.hpp"

namespace ppd::report {
namespace {

TEST(Markdown, ReportContainsEverySection) {
  const bs::Benchmark* kmeans = bs::find_benchmark("kmeans");
  ASSERT_NE(kmeans, nullptr);
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*kmeans);
  const std::string md = markdown_report(traced.analysis, *traced.ctx, "kmeans");

  EXPECT_NE(md.find("# Pattern analysis: kmeans"), std::string::npos);
  EXPECT_NE(md.find("**Geometric decomposition + Reduction**"), std::string::npos);
  EXPECT_NE(md.find("## Hotspots"), std::string::npos);
  EXPECT_NE(md.find("## Reductions"), std::string::npos);
  EXPECT_NE(md.find("## Ranked patterns"), std::string::npos);
  EXPECT_NE(md.find("## Transformation hints"), std::string::npos);
  EXPECT_NE(md.find("`cluster`"), std::string::npos);
}

TEST(Markdown, PipelineSectionForPipelineBenchmark) {
  const bs::Benchmark* ludcmp = bs::find_benchmark("ludcmp");
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*ludcmp);
  const std::string md = markdown_report(traced.analysis, *traced.ctx, "ludcmp");
  EXPECT_NE(md.find("## Multi-loop pipelines"), std::string::npos);
  EXPECT_NE(md.find("| `ludcmp_L1` | `ludcmp_L2` | 1.00 | 0.00 | 1.00 | no |"),
            std::string::npos);
}

TEST(Dot, PetExportIsWellFormed) {
  const bs::Benchmark* fib = bs::find_benchmark("fib");
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*fib);
  const std::string dot = pet_to_dot(traced.analysis.pet);
  EXPECT_EQ(dot.rfind("digraph PET {", 0), 0u);
  EXPECT_EQ(dot.back(), '\n');
  EXPECT_NE(dot.find("fib"), std::string::npos);
  EXPECT_NE(dot.find("[recursive]"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(Dot, CuGraphExportColorsRoles) {
  const bs::Benchmark* sort_benchmark = bs::find_benchmark("sort");
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*sort_benchmark);
  const core::ScopeTaskParallelism* tasks = traced.analysis.primary_tasks();
  ASSERT_NE(tasks, nullptr);
  const std::string dot = cu_graph_to_dot(tasks->graph, &tasks->tp);
  EXPECT_NE(dot.find("fillcolor=lightblue"), std::string::npos);   // fork
  EXPECT_NE(dot.find("fillcolor=palegreen"), std::string::npos);   // worker
  EXPECT_NE(dot.find("fillcolor=lightsalmon"), std::string::npos); // barrier
  EXPECT_NE(dot.find("sort_q1"), std::string::npos);
  EXPECT_NE(dot.find("merge_final"), std::string::npos);
}

TEST(Dot, CuGraphWithoutRolesIsPlain) {
  const bs::Benchmark* mvt = bs::find_benchmark("mvt");
  const bs::TracedAnalysis traced = bs::analyze_benchmark(*mvt);
  ASSERT_FALSE(traced.analysis.tasks.empty());
  const std::string dot = cu_graph_to_dot(traced.analysis.tasks.front().graph, nullptr);
  EXPECT_EQ(dot.find("fillcolor=palegreen"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=white"), std::string::npos);
}

}  // namespace
}  // namespace ppd::report
