// ReportCache suite: the daemon's persistent sharded LRU report store.
//
// Properties proven here: a stored report comes back byte-identical, the
// directory IS the persistence (a second instance over the same dir serves
// the first instance's entries), budgets evict least-recently-used
// (get() refreshes recency), a restart under a smaller budget trims
// immediately, a vanished file degrades to an honest counted miss, and
// the obs hit/miss/eviction counters account for every one of those
// events — they are the daemon's cache-effectiveness metric, so they are
// validated in-test, not assumed.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "obs/obs.hpp"
#include "svc/report_cache.hpp"

namespace ppd::svc {
namespace {

namespace fs = std::filesystem;

/// Unique scratch directory, removed on scope exit.
struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/ppd_svc_cache_XXXXXX";
    path = mkdtemp(tmpl);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

/// Snapshot of the cache's obs instruments, for delta assertions (the
/// registry is process-global and cumulative across tests).
struct CacheCounters {
  std::uint64_t hits = obs::Registry::instance().counter("svc.cache.hit").value();
  std::uint64_t misses =
      obs::Registry::instance().counter("svc.cache.miss").value();
  std::uint64_t evictions =
      obs::Registry::instance().counter("svc.cache.eviction").value();
};

TEST(SvcCache, RoundTripsAndCountsHitsAndMisses) {
  TempDir dir;
  ReportCache cache({dir.path, 4, 1 << 20});
  ASSERT_TRUE(cache.enabled());

  const CacheCounters before;
  std::string out;
  EXPECT_FALSE(cache.get(0x1111, out));
  cache.put(0x1111, "report one");
  ASSERT_TRUE(cache.get(0x1111, out));
  EXPECT_EQ(out, "report one");
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes(), 10u);

#if !defined(PPD_OBS_DISABLED)
  const CacheCounters after;
  EXPECT_EQ(after.misses - before.misses, 1u);
  EXPECT_EQ(after.hits - before.hits, 1u);
  EXPECT_EQ(after.evictions - before.evictions, 0u);
#endif
}

TEST(SvcCache, PersistsAcrossInstances) {
  TempDir dir;
  {
    ReportCache cache({dir.path, 8, 1 << 20});
    cache.put(0xAAAA, "persistent report");
    cache.put(0xBBBB, "another");
  }
  ReportCache reopened({dir.path, 8, 1 << 20});
  EXPECT_EQ(reopened.entries(), 2u);
  std::string out;
  ASSERT_TRUE(reopened.get(0xAAAA, out));
  EXPECT_EQ(out, "persistent report");
  ASSERT_TRUE(reopened.get(0xBBBB, out));
  EXPECT_EQ(out, "another");
}

TEST(SvcCache, EvictsLeastRecentlyUsedWithinBudget) {
  TempDir dir;
  // One shard so the whole budget is one LRU domain and eviction order is
  // deterministic. Budget fits two 40-byte reports, not three.
  ReportCache cache({dir.path, 1, 100});
  const std::string report(40, 'r');

  const CacheCounters before;
  cache.put(1, report);
  cache.put(2, report);
  // Touch key 1 so key 2 becomes the LRU victim.
  std::string out;
  ASSERT_TRUE(cache.get(1, out));
  cache.put(3, report);

  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_TRUE(cache.get(1, out));
  EXPECT_TRUE(cache.get(3, out));
  EXPECT_FALSE(cache.get(2, out));  // evicted
#if !defined(PPD_OBS_DISABLED)
  const CacheCounters after;
  EXPECT_EQ(after.evictions - before.evictions, 1u);
#endif
}

TEST(SvcCache, RestartUnderASmallerBudgetTrimsImmediately) {
  TempDir dir;
  {
    ReportCache cache({dir.path, 1, 1 << 20});
    for (std::uint64_t key = 1; key <= 8; ++key) {
      cache.put(key, std::string(100, 'x'));
    }
    EXPECT_EQ(cache.entries(), 8u);
  }
  ReportCache trimmed({dir.path, 1, 250});
  EXPECT_LE(trimmed.bytes(), 250u);
  EXPECT_EQ(trimmed.entries(), 2u);
}

TEST(SvcCache, DisabledCacheIsANoOp) {
  ReportCache cache({"", 8, 1 << 20});
  EXPECT_FALSE(cache.enabled());
  cache.put(1, "report");
  std::string out;
  EXPECT_FALSE(cache.get(1, out));
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(SvcCache, VanishedFileIsAnHonestMiss) {
  TempDir dir;
  ReportCache cache({dir.path, 1, 1 << 20});
  cache.put(0xDEAD, "ephemeral");
  ASSERT_EQ(cache.entries(), 1u);

  // Delete the entry file behind the cache's back (an operator cleaning
  // the directory of a running daemon must not wedge it).
  for (const auto& entry : fs::recursive_directory_iterator(dir.path)) {
    if (entry.path().extension() == ".ppdr") fs::remove(entry.path());
  }

  const CacheCounters before;
  std::string out;
  EXPECT_FALSE(cache.get(0xDEAD, out));
  EXPECT_EQ(cache.entries(), 0u);  // dropped from the index
#if !defined(PPD_OBS_DISABLED)
  const CacheCounters after;
  EXPECT_EQ(after.misses - before.misses, 1u);
#endif
}

TEST(SvcCache, AdoptionIgnoresForeignFiles) {
  TempDir dir;
  { ReportCache cache({dir.path, 1, 1 << 20}); }  // creates s0/
  // Plant files the cache did not write: wrong extension, wrong stem shape.
  std::ofstream(dir.path + "/s0/readme.txt") << "not a report";
  std::ofstream(dir.path + "/s0/abc.ppdr") << "short stem";
  std::ofstream(dir.path + "/s0/zzzzzzzzzzzzzzzz.ppdr") << "not hex";

  ReportCache cache({dir.path, 1, 1 << 20});
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(SvcCache, OverwriteReplacesBytesAndAccounting) {
  TempDir dir;
  ReportCache cache({dir.path, 2, 1 << 20});
  cache.put(7, "first");
  cache.put(7, "second version");
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes(), 14u);
  std::string out;
  ASSERT_TRUE(cache.get(7, out));
  EXPECT_EQ(out, "second version");
}

}  // namespace
}  // namespace ppd::svc
