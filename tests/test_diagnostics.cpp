// Tests for the fault-tolerant ingestion boundary: per-record-type
// malformed-trace diagnostics (exact error code and offending line),
// lenient-mode recovery and scope repair, resource caps, the stream
// invariant Validator, the pluggable assertion failure handler, and the
// Status/Diag formatting contract.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "support/assert.hpp"
#include "support/status.hpp"
#include "trace/buffer.hpp"
#include "trace/context.hpp"
#include "trace/serialize.hpp"
#include "trace/validator.hpp"

namespace ppd::trace {
namespace {

using support::DiagSink;
using support::ErrorCode;
using support::Status;

ReplayResult replay(const std::string& text, ReplayMode mode, DiagSink* diags = nullptr,
                    ReplayLimits limits = ReplayLimits{}) {
  std::istringstream in(text);
  TraceContext ctx;
  ReplayOptions options;
  options.mode = mode;
  options.limits = limits;
  options.diags = diags;
  return replay_trace(in, ctx, options);
}

// One corrupted sample per record type of the format grammar
// (var/fn/lp/st/E/X/I/S/P/R/W/C) plus the header and cross-record rules;
// strict replay must stop with exactly this code at exactly this line.
struct MalformedCase {
  const char* label;
  const char* trace;
  ErrorCode code;
  std::uint64_t line;
};

const MalformedCase kMalformedCases[] = {
    {"var_bad_id", "ppd-trace 1\nvar x 0 v\n", ErrorCode::MalformedRecord, 2},
    {"var_bad_local_flag", "ppd-trace 1\nvar 0 7 v\n", ErrorCode::MalformedRecord, 2},
    {"fn_negative_line", "ppd-trace 1\nfn 0 -3 f\n", ErrorCode::MalformedRecord, 2},
    {"lp_missing_name", "ppd-trace 1\nlp 0 1\n", ErrorCode::MalformedRecord, 2},
    {"st_bad_line", "ppd-trace 1\nst 0 abc s\n", ErrorCode::MalformedRecord, 2},
    {"enter_undefined_region", "ppd-trace 1\nE 7\n", ErrorCode::UndefinedId, 2},
    {"exit_mismatched_region", "ppd-trace 1\nfn 0 1 f\nE 0\nX 1\n",
     ErrorCode::ScopeMismatch, 4},
    {"iteration_outside_loop", "ppd-trace 1\nfn 0 1 f\nE 0\nI 0\nX 0\n",
     ErrorCode::IterationOutsideLoop, 4},
    {"stmt_open_undefined", "ppd-trace 1\nS 3\n", ErrorCode::UndefinedId, 2},
    {"stmt_close_mismatched", "ppd-trace 1\nst 0 1 s\nS 0\nP 1\n",
     ErrorCode::ScopeMismatch, 4},
    {"read_negative_cost", "ppd-trace 1\nvar 0 0 v\nR 0 0 1 -1\n",
     ErrorCode::MalformedRecord, 3},
    {"write_unknown_op", "ppd-trace 1\nvar 0 0 v\nW 0 0 1 1 9\n", ErrorCode::BadWriteOp, 3},
    {"write_missing_op", "ppd-trace 1\nvar 0 0 v\nW 0 0 1 1\n", ErrorCode::BadWriteOp, 3},
    {"compute_missing_cost", "ppd-trace 1\nC 1\n", ErrorCode::MalformedRecord, 2},
    {"unknown_tag", "ppd-trace 1\nQ 1\n", ErrorCode::UnknownTag, 2},
    {"trailing_garbage", "ppd-trace 1\nvar 0 0 v junk\n", ErrorCode::TrailingGarbage, 2},
    {"duplicate_definition", "ppd-trace 1\nvar 0 0 v\nvar 0 1 v\n",
     ErrorCode::DuplicateDefinition, 3},
    {"id_is_invalid_sentinel", "ppd-trace 1\nE 4294967295\n", ErrorCode::MalformedRecord, 2},
    {"missing_header", "bogus 1\n", ErrorCode::BadHeader, 1},
    {"unclosed_scope", "ppd-trace 1\nfn 0 1 f\nE 0\n", ErrorCode::UnclosedScope, 3},
};

class MalformedRecordCase : public ::testing::TestWithParam<MalformedCase> {};

TEST_P(MalformedRecordCase, StrictStopsWithExactCodeAndLine) {
  const MalformedCase& c = GetParam();
  const ReplayResult result = replay(c.trace, ReplayMode::Strict);
  EXPECT_FALSE(result.status.is_ok());
  EXPECT_EQ(result.status.code(), c.code) << result.status.to_string();
  EXPECT_EQ(result.status.line(), c.line) << result.status.to_string();
  EXPECT_FALSE(result.finished);
}

TEST_P(MalformedRecordCase, LenientRecoversAndReportsTheSameFinding) {
  const MalformedCase& c = GetParam();
  DiagSink diags;
  const ReplayResult result = replay(c.trace, ReplayMode::Lenient, &diags);
  EXPECT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_TRUE(result.finished);
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags.diags()[0].code, c.code) << diags.diags()[0].to_string();
  EXPECT_EQ(diags.diags()[0].line, c.line) << diags.diags()[0].to_string();
  EXPECT_GT(result.dropped + result.repaired_scopes + diags.total(), 0u);
}

INSTANTIATE_TEST_SUITE_P(RecordTypes, MalformedRecordCase,
                         ::testing::ValuesIn(kMalformedCases),
                         [](const ::testing::TestParamInfo<MalformedCase>& param_info) {
                           return param_info.param.label;
                         });

TEST(StrictReplay, LegacyApiThrowsWithTheStatusText) {
  std::istringstream in("ppd-trace 1\nfn 0 1 f\nE 0\nX 1\n");
  TraceContext ctx;
  try {
    (void)replay_trace(in, ctx);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("scope-mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("line 4"), std::string::npos) << what;
  }
}

TEST(LenientReplay, ResyncsAtTheNextRecordAfterACorruptOne) {
  const std::string text =
      "ppd-trace 1\n"
      "var 0 0 v\n"
      "fn 0 1 main\n"
      "E 0\n"
      "W 0 0 2 1 0\n"
      "W 0 zz 2 1 0\n"  // corrupt element index
      "R 0 0 3 1\n"
      "X 0\n";
  std::istringstream in(text);
  TraceContext ctx;
  TraceBuffer buffer;
  ctx.add_sink(&buffer);
  DiagSink diags;
  ReplayOptions options;
  options.mode = ReplayMode::Lenient;
  options.diags = &diags;
  const ReplayResult result = replay_trace(in, ctx, options);

  EXPECT_TRUE(result.status.is_ok());
  EXPECT_TRUE(result.finished);
  EXPECT_EQ(result.dropped, 1u);
  EXPECT_EQ(result.records, 4u);  // E, W, R, X survived
  EXPECT_TRUE(buffer.ended());
  ASSERT_EQ(buffer.accesses().size(), 2u);
  ASSERT_EQ(diags.total(), 1u);
  EXPECT_EQ(diags.diags()[0].line, 6u);
}

TEST(LenientReplay, RepairsDanglingScopesAtEndOfInput) {
  const std::string text =
      "ppd-trace 1\n"
      "fn 0 1 main\n"
      "E 0\n"
      "lp 1 2 loop\n"
      "E 1\n"
      "st 0 3 stmt\n"
      "S 0\n";  // statement, loop, and function all left open
  std::istringstream in(text);
  TraceContext ctx;
  TraceBuffer buffer;
  Validator validator;
  ctx.add_sink(&buffer);
  ctx.add_sink(&validator);
  DiagSink diags;
  ReplayOptions options;
  options.mode = ReplayMode::Lenient;
  options.diags = &diags;
  const ReplayResult result = replay_trace(in, ctx, options);

  EXPECT_TRUE(result.status.is_ok());
  EXPECT_TRUE(result.finished);
  EXPECT_EQ(result.repaired_scopes, 3u);
  EXPECT_EQ(diags.count(ErrorCode::UnclosedScope), 1u);
  EXPECT_TRUE(buffer.ended());
  // The synthesized exits unwind LIFO, so the repaired stream still honours
  // every invariant the downstream analyses assume.
  EXPECT_TRUE(validator.ok()) << validator.status().to_string();
}

TEST(ReplayLimitsTest, EventCountCapIsFatalInBothModes) {
  const std::string text =
      "ppd-trace 1\n"
      "var 0 0 v\n"
      "fn 0 1 f\n"
      "E 0\n"
      "W 0 0 2 1 0\n"
      "W 0 1 2 1 0\n"
      "X 0\n";
  ReplayLimits limits;
  limits.max_records = 2;
  for (const ReplayMode mode : {ReplayMode::Strict, ReplayMode::Lenient}) {
    const ReplayResult result = replay(text, mode, nullptr, limits);
    EXPECT_EQ(result.status.code(), ErrorCode::ResourceLimit);
    EXPECT_FALSE(result.finished);
  }
}

TEST(ReplayLimitsTest, LineLengthCapRejectsHugeRecords) {
  const std::string text = "ppd-trace 1\nvar 0 0 " + std::string(64, 'a') + "\n";
  ReplayLimits limits;
  limits.max_line_length = 16;
  const ReplayResult result = replay(text, ReplayMode::Lenient, nullptr, limits);
  EXPECT_EQ(result.status.code(), ErrorCode::ResourceLimit);
  EXPECT_EQ(result.status.line(), 2u);
}

TEST(ReplayLimitsTest, DefinitionCapBoundsInternedNames) {
  const std::string text = "ppd-trace 1\nvar 0 0 a\nvar 1 0 b\n";
  ReplayLimits limits;
  limits.max_definitions = 1;
  const ReplayResult result = replay(text, ReplayMode::Strict, nullptr, limits);
  EXPECT_EQ(result.status.code(), ErrorCode::ResourceLimit);
  EXPECT_EQ(result.status.line(), 3u);
}

TEST(ValidatorTest, CleanInstrumentedRunHasNoViolations) {
  TraceContext ctx;
  Validator validator;
  ctx.add_sink(&validator);
  const VarId v = ctx.var("v");
  {
    FunctionScope f(ctx, "f", 1);
    LoopScope l(ctx, "l", 2);
    for (int i = 0; i < 3; ++i) {
      l.begin_iteration();
      ctx.read(v, 0, 3);
      ctx.write(v, 0, 4);
    }
  }
  ctx.finish();
  EXPECT_TRUE(validator.ok()) << validator.status().to_string();
  EXPECT_EQ(validator.violations(), 0u);
}

TEST(ValidatorTest, FlagsExitWithoutMatchingEnter) {
  Validator validator;
  RegionInfo region;
  region.id = RegionId{0};
  region.name = "f";
  validator.on_region_exit(region);
  EXPECT_FALSE(validator.ok());
  EXPECT_EQ(validator.status().code(), ErrorCode::ScopeMismatch);
}

TEST(ValidatorTest, FlagsNonSequentialIterationNumbers) {
  DiagSink diags;
  Validator validator(&diags);
  RegionInfo loop;
  loop.id = RegionId{1};
  loop.kind = RegionKind::Loop;
  loop.name = "l";
  validator.on_region_enter(loop);
  validator.on_iteration(loop, 0);
  validator.on_iteration(loop, 2);  // skipped iteration 1
  EXPECT_EQ(validator.violations(), 1u);
  EXPECT_EQ(validator.status().code(), ErrorCode::MalformedRecord);
  EXPECT_EQ(diags.count(ErrorCode::MalformedRecord), 1u);
}

TEST(ValidatorTest, FlagsCorruptAccessEvents) {
  Validator validator;
  AccessEvent access;
  access.kind = AccessKind::Read;
  access.var = VarId{0};
  access.cost = Validator::kCostSanityCap + 1;  // wrapped negative cost
  access.op = UpdateOp::Sum;                    // update-op on a read
  validator.on_access(access);
  EXPECT_EQ(validator.violations(), 2u);
  EXPECT_EQ(validator.status().code(), ErrorCode::MalformedRecord);
}

TEST(ValidatorTest, FlagsScopesLeftOpenAtTraceEnd) {
  Validator validator;
  RegionInfo loop;
  loop.id = RegionId{0};
  loop.kind = RegionKind::Loop;
  loop.name = "l";
  validator.on_region_enter(loop);
  validator.on_trace_end();
  EXPECT_FALSE(validator.ok());
  EXPECT_EQ(validator.status().code(), ErrorCode::UnclosedScope);
}

TEST(FailureHandlerTest, ThrowingHandlerTurnsAssertionsIntoExceptions) {
  support::ScopedFailureHandler guard(&support::throwing_failure_handler);
  try {
    support::assert_fail("x == y", "file.cpp", 12, "context");
    FAIL() << "assert_fail must not return";
  } catch (const support::AssertionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("x == y"), std::string::npos) << what;
    EXPECT_NE(what.find("file.cpp"), std::string::npos) << what;
  }
}

TEST(FailureHandlerTest, ScopedGuardRestoresThePreviousHandler) {
  const support::FailureHandler before = support::failure_handler();
  {
    support::ScopedFailureHandler guard(&support::throwing_failure_handler);
    EXPECT_EQ(support::failure_handler(), &support::throwing_failure_handler);
  }
  EXPECT_EQ(support::failure_handler(), before);
}

TEST(FailureHandlerTest, ContextMisuseThrowsInsteadOfAborting) {
  support::ScopedFailureHandler guard(&support::throwing_failure_handler);
  TraceContext ctx;
  FunctionScope f(ctx, "f", 1);
  EXPECT_THROW(ctx.finish(), support::AssertionError);  // region still active
}

TEST(StatusTest, FormatsCodeMessageAndLine) {
  EXPECT_STREQ(support::to_string(ErrorCode::MalformedRecord), "malformed-record");
  EXPECT_EQ(Status::ok().to_string(), "ok");
  EXPECT_EQ(Status::error(ErrorCode::ScopeMismatch, "oops", 7).to_string(),
            "scope-mismatch: oops (line 7)");
  EXPECT_EQ(Status::error(ErrorCode::InvalidDag, "cycle").to_string(),
            "invalid-dag: cycle");
}

TEST(DiagSinkTest, RetainsUpToTheCapButCountsEverything) {
  DiagSink sink;
  for (std::uint64_t i = 0; i < 1500; ++i) {
    sink.report(support::Diag{ErrorCode::UnknownTag, i + 1, "x"});
  }
  EXPECT_EQ(sink.diags().size(), DiagSink::kMaxRetained);
  EXPECT_EQ(sink.total(), 1500u);
  EXPECT_EQ(sink.count(ErrorCode::UnknownTag), DiagSink::kMaxRetained);
  sink.clear();
  EXPECT_TRUE(sink.empty());
}

}  // namespace
}  // namespace ppd::trace
