// Unit tests for the parallel runtime: thread pool, fork/join, do-all,
// reduction, and the pipelined loop-pair executor.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "rt/parallel.hpp"
#include "rt/thread_pool.hpp"

namespace ppd::rt {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  TaskGroup group(pool);
  for (int i = 0; i < 100; ++i) {
    group.run([&counter] { counter.fetch_add(1); });
  }
  group.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  TaskGroup group(pool);
  group.run([&counter] { counter.fetch_add(1); });
  group.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(TaskGroup, PropagatesFirstException) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  group.run([] { throw std::runtime_error("boom"); });
  group.run([] {});
  EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(ThreadPool, SubmitAfterShutdownIsADefinedError) {
  ThreadPool pool(2);
  pool.submit([] {});
  pool.shutdown();
  EXPECT_TRUE(pool.is_shut_down());
  try {
    pool.submit([] { FAIL() << "must not run"; });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("pool-shutdown"), std::string::npos)
        << e.what();
  }
  pool.shutdown();  // idempotent
}

TEST(TaskGroup, SingleTaskErrorIsRethrownUnwrapped) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  group.run([] { throw std::invalid_argument("sole failure"); });
  // The original exception type survives when nothing was suppressed.
  EXPECT_THROW(group.wait(), std::invalid_argument);
}

TEST(TaskGroup, AggregatesSuppressedErrorCountIntoTheMessage) {
  ThreadPool pool(4);
  TaskGroup group(pool);
  for (int i = 0; i < 5; ++i) {
    group.run([] { throw std::runtime_error("task boom"); });
  }
  group.run([] {});
  try {
    group.wait();
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("task boom"), std::string::npos) << what;
    EXPECT_NE(what.find("(+4 more task error(s) suppressed)"), std::string::npos)
        << what;
  }
}

TEST(TaskGroup, RunOnShutDownPoolRollsTheForkBack) {
  ThreadPool pool(2);
  pool.shutdown();
  TaskGroup group(pool);
  EXPECT_THROW(group.run([] {}), std::runtime_error);
  group.wait();  // pending was rolled back; this must not hang
}

TEST(TaskGroup, WaitIsReusable) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> counter{0};
  group.run([&] { counter.fetch_add(1); });
  group.wait();
  group.run([&] { counter.fetch_add(1); });
  group.wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  parallel_for(pool, 0, hits.size(), [&](std::uint64_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(pool, 5, 5, [&](std::uint64_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelReduce, SumsCorrectly) {
  ThreadPool pool(4);
  const std::uint64_t n = 1000;
  const std::int64_t total = parallel_reduce<std::int64_t>(
      pool, 0, n, 0,
      [](std::int64_t acc, std::uint64_t i) { return acc + static_cast<std::int64_t>(i); },
      [](std::int64_t a, std::int64_t b) { return a + b; });
  EXPECT_EQ(total, static_cast<std::int64_t>(n * (n - 1) / 2));
}

TEST(ParallelReduce, EmptyRangeReturnsIdentity) {
  ThreadPool pool(2);
  const int result = parallel_reduce<int>(
      pool, 3, 3, 42, [](int acc, std::uint64_t) { return acc + 1; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(result, 42);
}

TEST(ParallelMapFold, FoldsInStrictIndexOrder) {
  // Maps run concurrently, but the fold must consume results in ascending
  // index order — the property merge_stripes() relies on for determinism.
  ThreadPool pool(4);
  const std::string folded = parallel_map_fold<std::string>(
      pool, 8, "",
      [](std::uint64_t i) { return std::to_string(i); },
      [](std::string acc, std::string next) { return acc + ":" + next; });
  EXPECT_EQ(folded, ":0:1:2:3:4:5:6:7");
}

TEST(ParallelMapFold, EmptyRangeReturnsInit) {
  ThreadPool pool(2);
  const int result = parallel_map_fold<int>(
      pool, 0, 7, [](std::uint64_t) { return 1; },
      [](int acc, int next) { return acc + next; });
  EXPECT_EQ(result, 7);
}

TEST(ParallelMapFold, MoveOnlyResultsFlowThrough) {
  // Mapped values and the accumulator are moved, never copied.
  ThreadPool pool(2);
  const auto folded = parallel_map_fold<std::unique_ptr<std::int64_t>>(
      pool, 100, std::make_unique<std::int64_t>(0),
      [](std::uint64_t i) {
        return std::make_unique<std::int64_t>(static_cast<std::int64_t>(i));
      },
      [](std::unique_ptr<std::int64_t> acc, std::unique_ptr<std::int64_t> next) {
        *acc += *next;
        return acc;
      });
  ASSERT_NE(folded, nullptr);
  EXPECT_EQ(*folded, 99 * 100 / 2);
}

TEST(IterationBarrier, PublishIsMonotone) {
  IterationBarrier barrier;
  barrier.publish(5);
  barrier.publish(3);  // lower publish must not regress
  EXPECT_EQ(barrier.completed(), 5u);
  barrier.wait_for(5);  // returns immediately
}

class PipelinedPairTest : public ::testing::TestWithParam<std::tuple<std::size_t, bool>> {};

TEST_P(PipelinedPairTest, OneToOnePipelineComputesSequentialResult) {
  const auto [threads, x_doall] = GetParam();
  const std::uint64_t n = 200;
  std::vector<std::int64_t> b(n, 0);
  std::vector<std::int64_t> y(n, 0);
  ThreadPool pool(threads);
  pipelined_loop_pair(
      pool, n, n, [](std::uint64_t j) { return j + 1; },
      [&](std::uint64_t i) { b[i] = static_cast<std::int64_t>(i) * 3; },
      [&](std::uint64_t j) { y[j] = b[j] + (j > 0 ? y[j - 1] : 0); }, x_doall);
  std::int64_t acc = 0;
  for (std::uint64_t j = 0; j < n; ++j) {
    acc += static_cast<std::int64_t>(j) * 3;
    EXPECT_EQ(y[j], acc);
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadsAndModes, PipelinedPairTest,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4, 8),
                                            ::testing::Bool()));

TEST(PipelinedPair, ShiftedDependenceWindow) {
  // y_j needs x up to 2j+5 (an a<1-style relationship).
  const std::uint64_t nx = 100;
  const std::uint64_t ny = 40;
  std::vector<int> x(nx, 0);
  std::vector<int> y(ny, 0);
  ThreadPool pool(3);
  pipelined_loop_pair(
      pool, nx, ny,
      [nx](std::uint64_t j) { return std::min<std::uint64_t>(nx, 2 * j + 5); },
      [&](std::uint64_t i) { x[i] = 1; },
      [&](std::uint64_t j) {
        int sum = 0;
        for (std::uint64_t i = 0; i < std::min<std::uint64_t>(nx, 2 * j + 5); ++i) sum += x[i];
        y[j] = sum;
      },
      /*x_doall=*/true);
  for (std::uint64_t j = 0; j < ny; ++j) {
    EXPECT_EQ(y[j], static_cast<int>(std::min<std::uint64_t>(nx, 2 * j + 5)));
  }
}

TEST(PipelinedPair, ZeroIterations) {
  ThreadPool pool(2);
  bool ran_y = false;
  pipelined_loop_pair(
      pool, 0, 0, [](std::uint64_t) { return 0; }, [](std::uint64_t) {},
      [&](std::uint64_t) { ran_y = true; }, true);
  EXPECT_FALSE(ran_y);
}

}  // namespace
}  // namespace ppd::rt
