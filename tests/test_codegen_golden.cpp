// Golden-file tests locking the codegen backends' output for the edge
// cases the unit tests don't pin byte-for-byte: reduction over multiple
// variables (several operators sharing one loop), perfectly nested do-all
// collapse, and empty-body loops. Both backends render against the same
// fixture traces, so omp_codegen and pat_codegen cannot drift apart
// silently — a deliberate output change is made by regenerating the
// .golden files (run with PPD_REGEN_GOLDEN=1) and reviewing the diff.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/analyzer.hpp"
#include "core/omp_codegen.hpp"
#include "core/pat_codegen.hpp"
#include "trace/context.hpp"

#ifndef PPD_GOLDEN_DIR
#error "PPD_GOLDEN_DIR must point at tests/golden"
#endif

namespace ppd::core {
namespace {

using trace::FunctionScope;
using trace::LoopScope;
using trace::TraceContext;

/// Canonical rendering of both backends over one analysis, the unit the
/// golden files store.
std::string render_backends(const AnalysisResult& analysis, const TraceContext& ctx,
                            bool with_translation_unit) {
  std::string out = "== omp ==\n";
  const auto omp = generate_openmp(analysis, ctx);
  if (omp.empty()) out += "(no suggestions)\n";
  for (std::size_t i = 0; i < omp.size(); ++i) {
    out += "-- suggestion " + std::to_string(i) + " --\n";
    out += omp[i].construct + "\n";
    out += "note: " + omp[i].note + "\n";
  }
  out += "== pat ==\n";
  const auto pat = generate_pat(analysis, ctx);
  if (pat.empty()) out += "(no suggestions)\n";
  for (std::size_t i = 0; i < pat.size(); ++i) {
    out += "-- suggestion " + std::to_string(i) + " --\n";
    out += pat[i].snippet + "\n";
    out += "note: " + pat[i].note + "\n";
  }
  if (with_translation_unit) {
    out += "== pat translation unit ==\n";
    out += pat_translation_unit(analysis, ctx, "golden");
  }
  return out;
}

void compare_golden(const std::string& actual, const char* name) {
  const std::string path = std::string(PPD_GOLDEN_DIR) + "/" + name + ".golden";
  if (std::getenv("PPD_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << actual;
    ASSERT_TRUE(out.good()) << "cannot regenerate " << path;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with PPD_REGEN_GOLDEN=1)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "codegen output drifted from " << path
      << " — if intended, regenerate with PPD_REGEN_GOLDEN=1 and review the diff";
}

TEST(CodegenGolden, MultiVariableReduction) {
  // One loop, three accumulators, three operators: the + and * clauses must
  // come out grouped per operator, and the pat backend must emit one
  // verified block per (loop, operator) pair.
  TraceContext ctx;
  PatternAnalyzer analyzer(ctx);
  const VarId arr = ctx.var("arr");
  const VarId sum = ctx.var("total");
  const VarId cnt = ctx.var("count");
  const VarId best = ctx.var("best");
  {
    FunctionScope fn(ctx, "accumulate", 1);
    LoopScope loop(ctx, "acc_loop", 2);
    for (std::uint64_t i = 0; i < 48; ++i) {
      loop.begin_iteration();
      ctx.read(arr, i, 3);
      ctx.compute(3, 4);
      ctx.update(sum, 0, 4, trace::UpdateOp::Sum);
      ctx.update(cnt, 0, 5, trace::UpdateOp::Sum);
      ctx.update(best, 0, 6, trace::UpdateOp::Max);
    }
  }
  const AnalysisResult analysis = analyzer.analyze();
  compare_golden(render_backends(analysis, ctx, /*with_translation_unit=*/true),
                 "multi_var_reduction");
}

TEST(CodegenGolden, NestedDoAllCollapse) {
  // A perfectly nested do-all pair (the outer loop's only child is an inner
  // do-all writing disjoint cells): the omp backend appends the collapse(2)
  // suggestion after the per-loop sections.
  TraceContext ctx;
  PatternAnalyzer analyzer(ctx);
  const VarId grid = ctx.var("grid");
  {
    FunctionScope fn(ctx, "sweep", 1);
    LoopScope rows(ctx, "row_loop", 2);
    for (std::uint64_t i = 0; i < 12; ++i) {
      rows.begin_iteration();
      LoopScope cols(ctx, "col_loop", 3);
      for (std::uint64_t j = 0; j < 8; ++j) {
        cols.begin_iteration();
        ctx.compute(4, 3);
        ctx.write(grid, i * 8 + j, 4);
      }
    }
  }
  const AnalysisResult analysis = analyzer.analyze();
  bool collapsed = false;
  for (const OmpSuggestion& s : generate_openmp(analysis, ctx)) {
    if (s.construct.find("collapse(2)") != std::string::npos) collapsed = true;
  }
  EXPECT_TRUE(collapsed);
  compare_golden(render_backends(analysis, ctx, /*with_translation_unit=*/false),
                 "nested_collapse");
}

TEST(CodegenGolden, EmptyBodyLoops) {
  // Two degenerate loops — one iterating with an empty body, one never
  // entered. Neither backend may emit a per-loop suggestion for them (or
  // crash). What both DO emit is pinned by the golden: an empty-body loop
  // has no dependences at all, so it classifies as do-all and drags its
  // enclosing function into a geometric-decomposition suggestion — the
  // degenerate-input behavior this test exists to keep visible.
  TraceContext ctx;
  PatternAnalyzer analyzer(ctx);
  {
    FunctionScope fn(ctx, "main", 1);
    ctx.compute(1, 500);
    {
      LoopScope empty(ctx, "empty_body_loop", 4);
      for (std::uint64_t i = 0; i < 16; ++i) empty.begin_iteration();
    }
    {
      LoopScope never(ctx, "zero_trip_loop", 7);
    }
  }
  const AnalysisResult analysis = analyzer.analyze();
  for (const OmpSuggestion& s : generate_openmp(analysis, ctx)) {
    EXPECT_EQ(s.note.find("empty_body_loop"), std::string::npos) << s.note;
    EXPECT_EQ(s.note.find("zero_trip_loop"), std::string::npos) << s.note;
  }
  for (const PatSuggestion& s : generate_pat(analysis, ctx)) {
    EXPECT_EQ(s.note.find("empty_body_loop"), std::string::npos) << s.note;
    EXPECT_EQ(s.note.find("zero_trip_loop"), std::string::npos) << s.note;
  }
  compare_golden(render_backends(analysis, ctx, /*with_translation_unit=*/false),
                 "empty_body_loops");
}

}  // namespace
}  // namespace ppd::core
