#include "store/batch.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <system_error>

#include "obs/obs.hpp"
#include "rt/thread_pool.hpp"
#include "store/format.hpp"
#include "support/mapped_file.hpp"
#include "support/status.hpp"

namespace ppd::store {
namespace {

using support::ErrorCode;
using support::Status;

constexpr std::string_view kTextHeader = "ppd-trace 1";
constexpr std::string_view kCacheHeader = "ppd-report 1";

/// Cache entries are framed so a torn write is detected and treated as a
/// miss: "ppd-report 1 <key-hex> <length>\n" followed by the report bytes.
std::string frame_cache_entry(std::uint64_t key, std::string_view report) {
  char header[64];
  std::snprintf(header, sizeof(header), "%s %016llx %zu\n",
                std::string(kCacheHeader).c_str(),
                static_cast<unsigned long long>(key), report.size());
  return std::string(header) + std::string(report);
}

bool parse_cache_entry(const std::string& bytes, std::uint64_t key,
                       std::string& report) {
  const std::size_t eol = bytes.find('\n');
  if (eol == std::string::npos) return false;
  std::istringstream header(bytes.substr(0, eol));
  std::string tag;
  std::string version;
  std::string key_hex;
  std::size_t length = 0;
  if (!(header >> tag >> version >> key_hex >> length)) return false;
  if (tag + " " + version != kCacheHeader) return false;
  char expected[32];
  std::snprintf(expected, sizeof(expected), "%016llx",
                static_cast<unsigned long long>(key));
  if (key_hex != expected) return false;
  if (bytes.size() - eol - 1 != length) return false;
  report = bytes.substr(eol + 1);
  return true;
}

/// Atomic-enough cache store: write a sibling temp file, then rename over.
void store_cache_entry(const std::string& path, std::uint64_t key,
                       std::string_view report) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;  // cache is best-effort; failure to store is not an error
    const std::string framed = frame_cache_entry(key, report);
    out.write(framed.data(), static_cast<std::streamsize>(framed.size()));
    if (!out) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) std::filesystem::remove(tmp, ec);
}

void process_one(const std::string& path, const BatchOptions& options,
                 const AnalyzeFn& analyze, BatchItem& item) {
  // Named per trace so a batch profile shows which trace occupied which
  // worker; recorded on the executing thread's track.
  obs::ScopedSpan span("batch:" + path);
  item.path = path;
  // Zero-copy view of the trace; `mapped` must outlive the analyze() call
  // below (the callback may replay straight out of the mapping).
  support::MappedFile mapped;
  if (!mapped.open(path).is_ok()) {
    item.status = Status::error(ErrorCode::IoError,
                                "cannot read trace file '" + path + "'");
    item.log = "cannot read trace file '" + path + "'\n";
    return;
  }
  const std::string_view bytes = mapped.bytes();
  item.key = content_key(bytes, options.salt);

  const bool use_cache = !options.cache_dir.empty();
  const std::string entry_path =
      use_cache ? cache_path(options.cache_dir, item.key) : std::string();
  if (use_cache && !options.refresh) {
    std::string cached;
    if (slurp_file(entry_path, cached) &&
        parse_cache_entry(cached, item.key, item.report)) {
      item.cached = true;
      item.status = Status::ok();
      item.log = "served from cache (" + entry_path + ")\n";
      return;
    }
  }

  AnalyzeOutcome outcome = analyze(path, bytes);
  item.status = outcome.status;
  item.report = std::move(outcome.report);
  item.log = std::move(outcome.log);
  if (use_cache && outcome.cacheable && item.status.is_ok()) {
    std::error_code ec;
    std::filesystem::create_directories(options.cache_dir, ec);
    store_cache_entry(entry_path, item.key, item.report);
  }
}

}  // namespace

std::uint64_t content_key(std::string_view bytes, std::uint64_t salt) {
  return fnv1a64(bytes, kFnv1aOffset ^ salt);
}

std::string cache_path(const std::string& dir, std::uint64_t key) {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.ppdr",
                static_cast<unsigned long long>(key));
  return (std::filesystem::path(dir) / name).string();
}

bool slurp_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return false;
  out = buffer.str();
  return true;
}

bool is_trace_content(std::string_view bytes) {
  if (is_binary_trace(bytes)) return true;
  return bytes.substr(0, kTextHeader.size()) == kTextHeader;
}

std::vector<std::string> find_traces(const std::string& path) {
  std::vector<std::string> traces;
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    for (const auto& entry : std::filesystem::directory_iterator(path, ec)) {
      if (!entry.is_regular_file(ec)) continue;
      std::string bytes;
      // Sniff just enough of the file to recognize either format.
      std::ifstream in(entry.path(), std::ios::binary);
      char head[16] = {};
      in.read(head, sizeof(head));
      if (is_trace_content(std::string_view(head, static_cast<std::size_t>(in.gcount())))) {
        traces.push_back(entry.path().string());
      }
    }
    std::sort(traces.begin(), traces.end());
  } else {
    traces.push_back(path);
  }
  return traces;
}

BatchSummary analyze_batch(const std::vector<std::string>& paths,
                           const BatchOptions& options, const AnalyzeFn& analyze) {
  PPD_OBS_SPAN("batch");
  BatchSummary summary;
  summary.items.resize(paths.size());

  std::atomic<std::size_t> done{0};
  std::atomic<std::size_t> hits{0};
  std::mutex progress_mutex;
  const auto completed = [&](const BatchItem& item) {
    if (item.cached) hits.fetch_add(1, std::memory_order_relaxed);
    const std::size_t finished = done.fetch_add(1, std::memory_order_relaxed) + 1;
    if (options.progress) {
      std::lock_guard lock(progress_mutex);
      options.progress(finished, paths.size(),
                       hits.load(std::memory_order_relaxed));
    }
  };

  if (options.jobs > 1 && paths.size() > 1) {
    rt::ThreadPool pool(std::min(options.jobs, paths.size()));
    rt::TaskGroup group(pool);
    for (std::size_t i = 0; i < paths.size(); ++i) {
      group.run([&, i] {
        process_one(paths[i], options, analyze, summary.items[i]);
        completed(summary.items[i]);
      });
    }
    group.wait();
  } else {
    for (std::size_t i = 0; i < paths.size(); ++i) {
      process_one(paths[i], options, analyze, summary.items[i]);
      completed(summary.items[i]);
    }
  }
  for (const BatchItem& item : summary.items) {
    if (!item.status.is_ok()) ++summary.failures;
    if (item.cached) ++summary.cache_hits;
  }

  obs::Registry& registry = obs::Registry::instance();
  registry.counter("batch.traces").add(summary.items.size());
  registry.counter("batch.cache_hits").add(summary.cache_hits);
  registry.counter("batch.failures").add(summary.failures);
  return summary;
}

}  // namespace ppd::store
