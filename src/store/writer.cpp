#include "store/writer.hpp"

#include <limits>
#include <ostream>

#include "store/format.hpp"
#include "support/assert.hpp"

namespace ppd::store {
namespace {

void ensure_slot(std::vector<bool>& defined, std::size_t index) {
  if (defined.size() <= index) defined.resize(index + 1, false);
}

}  // namespace

BinaryTraceWriter::BinaryTraceWriter(const trace::TraceContext& program,
                                     std::ostream& out)
    : BinaryTraceWriter(program, out, Options{}) {}

BinaryTraceWriter::BinaryTraceWriter(const trace::TraceContext& program,
                                     std::ostream& out, Options options)
    : program_(program), out_(out), options_(options) {
  out_.write(kMagic, static_cast<std::streamsize>(kMagicSize));
  bytes_ = kMagicSize;
}

void BinaryTraceWriter::def_entry(DefKind kind, std::uint32_t id, std::uint64_t extra,
                                  const std::string& name) {
  PPD_ASSERT_MSG(name.size() <= kMaxNameLength, "definition name too long");
  strtab_.push_back(static_cast<char>(kind));
  put_varint(strtab_, id);
  if (kind == DefKind::Var) {
    strtab_.push_back(static_cast<char>(extra));  // local flag
  } else {
    put_varint(strtab_, extra);  // source line
  }
  put_varint(strtab_, name.size());
  strtab_ += name;
  ++def_count_;
}

void BinaryTraceWriter::ensure_var(VarId var) {
  ensure_slot(var_defined_, var.value());
  if (var_defined_[var.value()]) return;
  const trace::VarInfo& info = program_.var_info(var);
  def_entry(DefKind::Var, var.value(), info.local ? 1 : 0, info.name);
  var_defined_[var.value()] = true;
}

void BinaryTraceWriter::ensure_region(const trace::RegionInfo& region) {
  ensure_slot(region_defined_, region.id.value());
  if (region_defined_[region.id.value()]) return;
  def_entry(region.kind == trace::RegionKind::Function ? DefKind::Function
                                                       : DefKind::Loop,
            region.id.value(), region.line, region.name);
  region_defined_[region.id.value()] = true;
}

void BinaryTraceWriter::ensure_statement(const trace::StatementInfo& stmt) {
  ensure_slot(stmt_defined_, stmt.id.value());
  if (stmt_defined_[stmt.id.value()]) return;
  def_entry(DefKind::Statement, stmt.id.value(), stmt.line, stmt.name);
  stmt_defined_[stmt.id.value()] = true;
}

void BinaryTraceWriter::record_written() {
  ++records_;
  ++chunk_records_;
  if (chunk_.size() >= options_.target_chunk_bytes ||
      chunk_records_ >= options_.max_chunk_records) {
    flush_chunk();
  }
}

void BinaryTraceWriter::on_region_enter(const trace::RegionInfo& region) {
  ensure_region(region);
  chunk_.push_back(static_cast<char>(RecordTag::RegionEnter));
  put_varint(chunk_, region.id.value());
  record_written();
}

void BinaryTraceWriter::on_region_exit(const trace::RegionInfo& region) {
  chunk_.push_back(static_cast<char>(RecordTag::RegionExit));
  put_varint(chunk_, region.id.value());
  record_written();
}

void BinaryTraceWriter::on_iteration(const trace::RegionInfo& loop,
                                     std::uint64_t iteration) {
  (void)iteration;  // iterations are implicit: replay re-counts from zero
  chunk_.push_back(static_cast<char>(RecordTag::Iteration));
  put_varint(chunk_, loop.id.value());
  record_written();
}

void BinaryTraceWriter::on_access(const trace::AccessEvent& access) {
  ensure_var(access.var);
  const std::uint64_t var = access.var.value();
  const std::uint64_t index = trace::TraceContext::addr_index(access.addr);
  const std::uint64_t line = access.line;
  chunk_.push_back(static_cast<char>(access.kind == trace::AccessKind::Read
                                         ? RecordTag::Read
                                         : RecordTag::Write));
  put_varint(chunk_, zigzag(static_cast<std::int64_t>(var - prev_var_)));
  put_varint(chunk_, zigzag(static_cast<std::int64_t>(index - prev_index_)));
  put_varint(chunk_, zigzag(static_cast<std::int64_t>(line - prev_line_)));
  put_varint(chunk_, access.cost);
  if (access.kind == trace::AccessKind::Write) {
    chunk_.push_back(static_cast<char>(access.op));
  }
  prev_var_ = var;
  prev_index_ = index;
  prev_line_ = line;
  record_written();
}

void BinaryTraceWriter::on_compute(const trace::ComputeEvent& compute) {
  const std::uint64_t line = compute.line;
  chunk_.push_back(static_cast<char>(RecordTag::Compute));
  put_varint(chunk_, zigzag(static_cast<std::int64_t>(line - prev_line_)));
  put_varint(chunk_, compute.cost);
  prev_line_ = line;
  record_written();
}

void BinaryTraceWriter::on_statement_enter(const trace::StatementInfo& stmt) {
  ensure_statement(stmt);
  chunk_.push_back(static_cast<char>(RecordTag::StatementEnter));
  put_varint(chunk_, stmt.id.value());
  record_written();
}

void BinaryTraceWriter::on_statement_exit(const trace::StatementInfo& stmt) {
  chunk_.push_back(static_cast<char>(RecordTag::StatementExit));
  put_varint(chunk_, stmt.id.value());
  record_written();
}

void BinaryTraceWriter::on_trace_end() { finalize(); }

void BinaryTraceWriter::write_section(SectionKind kind, std::string_view payload,
                                      std::uint32_t record_count) {
  PPD_ASSERT_MSG(payload.size() <= std::numeric_limits<std::uint32_t>::max(),
                 "section payload exceeds the 4 GiB framing limit");
  std::string header;
  header.reserve(kSectionHeaderSize);
  header.push_back(static_cast<char>(kind));
  put_u32le(header, static_cast<std::uint32_t>(payload.size()));
  put_u32le(header, record_count);
  put_u32le(header, crc32(payload));
  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
  out_.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  bytes_ += header.size() + payload.size();
}

void BinaryTraceWriter::flush_chunk() {
  if (chunk_.empty()) return;
  index_.push_back(ChunkIndexEntry{bytes_, chunk_records_});
  write_section(SectionKind::Events, chunk_, chunk_records_);
  chunk_.clear();
  chunk_records_ = 0;
  prev_var_ = prev_index_ = prev_line_ = 0;
}

void BinaryTraceWriter::finalize() {
  if (finalized_) return;
  finalized_ = true;
  flush_chunk();

  const std::uint64_t strtab_offset = bytes_;
  write_section(SectionKind::StringTable, strtab_, def_count_);

  std::string footer;
  put_varint(footer, kFormatVersion);
  put_varint(footer, records_);
  put_varint(footer, def_count_);
  put_varint(footer, strtab_offset);
  put_varint(footer, index_.size());
  for (const ChunkIndexEntry& entry : index_) {
    put_varint(footer, entry.offset);
    put_varint(footer, entry.records);
  }
  const std::uint64_t footer_section_len = kSectionHeaderSize + footer.size();
  write_section(SectionKind::Footer, footer,
                static_cast<std::uint32_t>(index_.size()));

  std::string trailer;
  put_u32le(trailer, static_cast<std::uint32_t>(footer_section_len));
  trailer.append(kTrailerMagic, sizeof(kTrailerMagic));
  out_.write(trailer.data(), static_cast<std::streamsize>(trailer.size()));
  bytes_ += trailer.size();
  out_.flush();
}

}  // namespace ppd::store
