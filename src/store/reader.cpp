#include "store/reader.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "support/mapped_file.hpp"
#include "rt/thread_pool.hpp"
#include "store/format.hpp"
#include "trace/validator.hpp"

namespace ppd::store {
namespace {

using support::ErrorCode;
using support::Status;

struct Section {
  SectionKind kind = SectionKind::Events;
  std::uint32_t records = 0;
  std::uint32_t crc = 0;
  std::string_view payload;
  std::uint64_t offset = 0;  ///< absolute offset of the section header
};

/// One decoded event record; the flat per-chunk shard state.
struct Rec {
  RecordTag tag = RecordTag::RegionEnter;
  std::uint8_t op = 0;
  std::uint32_t id = 0;
  std::uint32_t line = 0;
  std::uint64_t index = 0;
  std::uint64_t cost = 0;
};

struct DecodedChunk {
  std::vector<Rec> recs;
  Status error;  ///< non-ok: the chunk is corrupt and recs is empty
};

class BinaryReplayer {
 public:
  BinaryReplayer(trace::TraceContext& ctx, const ReadOptions& options)
      : ctx_(ctx), options_(options) {}

  ReadResult run(std::string_view bytes) {
    PPD_OBS_SPAN("ingest.ppdt");
    if (Status s = locate_sections(bytes); !s.is_ok()) {
      result_.status = s;
      return finish_metrics();
    }
    result_.chunks = chunks_.size();
    {
      PPD_OBS_SPAN("ppdt.strtab");
      if (Status s = decode_strtab(); !s.is_ok()) {
        result_.status = s;
        return finish_metrics();
      }
    }
    if (Status s = precheck_record_total(); !s.is_ok()) {
      result_.status = s;
      return finish_metrics();
    }
    if (!dispatch_all(decode_chunks())) return finish_metrics();
    finish();
    return finish_metrics();
  }

 private:
  /// Folds the replay tallies into the metrics registry on every exit path.
  ReadResult& finish_metrics() {
    obs::Registry& registry = obs::Registry::instance();
    registry.counter("ingest.ppdt.records").add(result_.records);
    registry.counter("ingest.ppdt.dropped").add(result_.dropped);
    registry.counter("ingest.ppdt.chunks").add(result_.chunks);
    registry.counter("ingest.ppdt.skipped_chunks").add(result_.skipped_chunks);
    return result_;
  }

  struct VarDef {
    bool local = false;
    std::string name;
    VarId interned;  ///< assigned lazily at first access, like text replay
  };
  struct RegionDef {
    trace::RegionKind kind = trace::RegionKind::Function;
    SourceLine line = 0;
    std::string name;
  };
  struct StmtDef {
    SourceLine line = 0;
    std::string name;
  };

  // Open scopes, reconstructed with the RAII wrappers on the heap; entries
  // are destroyed strictly LIFO so the emitted exit events mirror a
  // well-nested execution (same technique as the text Replayer).
  struct OpenScope {
    std::unique_ptr<trace::FunctionScope> function;
    std::unique_ptr<trace::LoopScope> loop;
    std::unique_ptr<trace::StatementScope> statement;
    std::uint32_t file_id = 0;
    char kind = 0;  // 'f', 'l', 's'
  };

  [[nodiscard]] bool strict() const {
    return options_.mode == trace::ReplayMode::Strict;
  }

  void diag(const Status& status) {
    if (options_.diags != nullptr) {
      options_.diags->report(
          support::Diag{status.code(), status.line(), status.message()});
    }
  }

  /// Routes a per-record error: lenient drops and continues (true), strict —
  /// and resource exhaustion in either mode — stops the replay (false).
  [[nodiscard]] bool note_record_error(const Status& status) {
    if (strict() || status.code() == ErrorCode::ResourceLimit) {
      result_.status = status;
      unwind_scopes();
      return false;
    }
    diag(status);
    ++result_.dropped;
    return true;
  }

  [[nodiscard]] static std::string name_chunk(std::uint64_t ordinal) {
    return "chunk " + std::to_string(ordinal);
  }

  [[nodiscard]] static Status bad_footer(std::string what) {
    return Status::error(ErrorCode::BadFooter, std::move(what), 1);
  }

  // ---- section discovery ----------------------------------------------------

  /// Parses and bounds-checks one section header + payload at `offset`.
  [[nodiscard]] Status parse_section_at(std::string_view bytes, std::uint64_t offset,
                                        Section& out) const {
    if (offset > bytes.size() || bytes.size() - offset < kSectionHeaderSize) {
      return Status::error(ErrorCode::ChunkCorrupt,
                           "section header truncated at offset " +
                               std::to_string(offset),
                           1);
    }
    ByteReader r(bytes.substr(offset));
    std::uint8_t kind = 0;
    std::uint32_t payload_len = 0;
    (void)r.read_u8(kind);
    (void)r.read_u32le(payload_len);
    Section section;
    section.offset = offset;
    (void)r.read_u32le(section.records);
    (void)r.read_u32le(section.crc);
    if (kind < static_cast<std::uint8_t>(SectionKind::Events) ||
        kind > static_cast<std::uint8_t>(SectionKind::Footer)) {
      return Status::error(ErrorCode::ChunkCorrupt,
                           "unknown section kind at offset " + std::to_string(offset),
                           1);
    }
    section.kind = static_cast<SectionKind>(kind);
    if (payload_len > options_.max_chunk_bytes) {
      return Status::error(ErrorCode::ResourceLimit,
                           "section payload exceeds cap of " +
                               std::to_string(options_.max_chunk_bytes) + " bytes",
                           1);
    }
    if (!r.read_bytes(section.payload, payload_len)) {
      return Status::error(ErrorCode::ChunkCorrupt,
                           "section payload truncated at offset " +
                               std::to_string(offset),
                           1);
    }
    out = section;
    return Status::ok();
  }

  /// Parses the trailer-addressed footer and builds the section lists from
  /// its index.
  [[nodiscard]] Status locate_via_footer(std::string_view bytes) {
    if (bytes.size() < kMagicSize + kTrailerSize) {
      return bad_footer("file too short to hold a footer trailer");
    }
    const std::string_view trailer = bytes.substr(bytes.size() - kTrailerSize);
    if (trailer.substr(4) != std::string_view(kTrailerMagic, 4)) {
      return bad_footer("trailer magic missing (not sealed or damaged)");
    }
    std::uint32_t footer_len = 0;
    {
      ByteReader r(trailer);
      (void)r.read_u32le(footer_len);
    }
    const std::uint64_t body_end = bytes.size() - kTrailerSize;
    if (footer_len < kSectionHeaderSize || footer_len > body_end ||
        body_end - footer_len < kMagicSize) {
      return bad_footer("trailer cites an impossible footer size");
    }
    Section footer;
    if (Status s = parse_section_at(bytes, body_end - footer_len, footer); !s.is_ok()) {
      return bad_footer("footer section unreadable: " + s.message());
    }
    if (footer.kind != SectionKind::Footer ||
        kSectionHeaderSize + footer.payload.size() != footer_len) {
      return bad_footer("trailer does not point at a footer section");
    }
    if (crc32(footer.payload) != footer.crc) {
      return bad_footer("footer checksum mismatch");
    }

    ByteReader r(footer.payload);
    std::uint64_t version = 0;
    std::uint64_t total_records = 0;
    std::uint64_t def_count = 0;
    std::uint64_t strtab_offset = 0;
    std::uint64_t chunk_count = 0;
    if (!r.read_varint(version) || !r.read_varint(total_records) ||
        !r.read_varint(def_count) || !r.read_varint(strtab_offset) ||
        !r.read_varint(chunk_count)) {
      return bad_footer("footer index truncated");
    }
    if (version != kFormatVersion) {
      return bad_footer("unsupported container version " + std::to_string(version));
    }
    if (chunk_count > bytes.size() / kSectionHeaderSize) {
      return bad_footer("footer cites more chunks than the file could hold");
    }
    Section strtab;
    if (Status s = parse_section_at(bytes, strtab_offset, strtab); !s.is_ok()) {
      return bad_footer("string table unreadable: " + s.message());
    }
    if (strtab.kind != SectionKind::StringTable) {
      return bad_footer("footer string-table offset points at a non-table section");
    }
    std::vector<Section> chunks;
    chunks.reserve(chunk_count);
    for (std::uint64_t i = 0; i < chunk_count; ++i) {
      std::uint64_t offset = 0;
      std::uint64_t records = 0;
      if (!r.read_varint(offset) || !r.read_varint(records)) {
        return bad_footer("footer chunk index truncated");
      }
      Section chunk;
      if (Status s = parse_section_at(bytes, offset, chunk); !s.is_ok()) {
        return bad_footer("indexed chunk " + std::to_string(i + 1) +
                          " unreadable: " + s.message());
      }
      if (chunk.kind != SectionKind::Events || chunk.records != records) {
        return bad_footer("footer disagrees with chunk " + std::to_string(i + 1) +
                          " header");
      }
      chunks.push_back(chunk);
    }
    if (!r.at_end()) return bad_footer("trailing bytes after the footer index");
    strtab_ = strtab;
    chunks_ = std::move(chunks);
    return Status::ok();
  }

  /// Lenient fallback: forward scan of the self-delimiting section headers,
  /// salvaging every section that still frames correctly.
  void scan_sections(std::string_view bytes) {
    chunks_.clear();
    strtab_.reset();
    std::uint64_t offset = kMagicSize;
    while (offset + kSectionHeaderSize <= bytes.size()) {
      Section section;
      if (Status s = parse_section_at(bytes, offset, section); !s.is_ok()) {
        diag(s);
        return;
      }
      switch (section.kind) {
        case SectionKind::Events:
          chunks_.push_back(section);
          break;
        case SectionKind::StringTable:
          if (!strtab_.has_value()) strtab_ = section;
          break;
        case SectionKind::Footer:
          return;  // the index adds nothing a completed scan doesn't have
      }
      offset = section.offset + kSectionHeaderSize + section.payload.size();
    }
  }

  [[nodiscard]] Status locate_sections(std::string_view bytes) {
    if (!is_binary_trace(bytes)) {
      const Status bad = Status::error(
          ErrorCode::BadHeader, "not a ppd binary trace (missing PPDT magic)", 1);
      if (strict()) return bad;
      diag(bad);
      if (bytes.size() < kMagicSize) return Status::ok();  // nothing to salvage
    }
    Status via_footer = locate_via_footer(bytes);
    if (via_footer.is_ok()) return Status::ok();
    if (strict()) return via_footer;
    diag(via_footer);
    scan_sections(bytes);
    return Status::ok();
  }

  // ---- string table ---------------------------------------------------------

  [[nodiscard]] std::uint64_t defs_total() const {
    return vars_.size() + regions_.size() + stmts_.size();
  }

  [[nodiscard]] static bool valid_name(std::string_view name) {
    return !name.empty() && name.size() <= kMaxNameLength &&
           name.find_first_of(" \t\n\r") == std::string_view::npos;
  }

  /// Decodes the definition table. Order matters: interning at dispatch
  /// follows first use exactly as text replay does, so ids match.
  [[nodiscard]] Status decode_strtab() {
    if (!strtab_.has_value()) {
      const Status missing = Status::error(
          ErrorCode::ChunkCorrupt, "container has no string table", 1);
      if (strict()) return missing;
      diag(missing);
      return Status::ok();
    }
    bool integrity_ok = crc32(strtab_->payload) == strtab_->crc;
    if (!integrity_ok) {
      const Status bad = Status::error(ErrorCode::ChunkCorrupt,
                                       "string table checksum mismatch", 1);
      if (strict()) return bad;
      diag(bad);  // decode best-effort below; every field is bounds-checked
    }
    ByteReader r(strtab_->payload);
    std::uint64_t ordinal = 0;
    while (!r.at_end()) {
      ++ordinal;
      if (defs_total() >= options_.limits.max_definitions) {
        return Status::error(ErrorCode::ResourceLimit,
                             "definition count exceeds cap of " +
                                 std::to_string(options_.limits.max_definitions),
                             ordinal);
      }
      std::uint8_t kind = 0;
      std::uint64_t id = 0;
      Status malformed = Status::error(
          ErrorCode::MalformedRecord,
          "malformed definition " + std::to_string(ordinal), ordinal);
      if (!r.read_u8(kind) || !r.read_varint(id) ||
          id >= std::numeric_limits<std::uint32_t>::max() ||
          kind < static_cast<std::uint8_t>(DefKind::Var) ||
          kind > static_cast<std::uint8_t>(DefKind::Statement)) {
        if (strict()) return malformed;
        diag(malformed);
        break;  // binary streams cannot resync after a framing error
      }
      std::uint64_t extra = 0;
      if (static_cast<DefKind>(kind) == DefKind::Var) {
        std::uint8_t local = 0;
        if (!r.read_u8(local) || local > 1) {
          if (strict()) return malformed;
          diag(malformed);
          break;
        }
        extra = local;
      } else if (!r.read_varint(extra) ||
                 extra > std::numeric_limits<SourceLine>::max()) {
        if (strict()) return malformed;
        diag(malformed);
        break;
      }
      std::uint64_t name_len = 0;
      std::string_view name;
      if (!r.read_varint(name_len) || name_len > kMaxNameLength ||
          !r.read_bytes(name, name_len) || !valid_name(name)) {
        if (strict()) return malformed;
        diag(malformed);
        break;
      }
      if (Status s = add_def(static_cast<DefKind>(kind),
                             static_cast<std::uint32_t>(id), extra, name, ordinal);
          !s.is_ok()) {
        if (strict()) return s;
        diag(s);
      }
    }
    return Status::ok();
  }

  [[nodiscard]] Status add_def(DefKind kind, std::uint32_t id, std::uint64_t extra,
                               std::string_view name, std::uint64_t ordinal) {
    const Status duplicate = Status::error(
        ErrorCode::DuplicateDefinition,
        "definition id " + std::to_string(id) + " redefined differently", ordinal);
    switch (kind) {
      case DefKind::Var: {
        auto it = vars_.find(id);
        if (it != vars_.end()) {
          return it->second.local == (extra != 0) && it->second.name == name
                     ? Status::ok()
                     : duplicate;
        }
        vars_.emplace(id, VarDef{extra != 0, std::string(name), VarId()});
        return Status::ok();
      }
      case DefKind::Function:
      case DefKind::Loop: {
        const trace::RegionKind region_kind = kind == DefKind::Function
                                                  ? trace::RegionKind::Function
                                                  : trace::RegionKind::Loop;
        auto it = regions_.find(id);
        if (it != regions_.end()) {
          return it->second.kind == region_kind && it->second.line == extra &&
                         it->second.name == name
                     ? Status::ok()
                     : duplicate;
        }
        regions_.emplace(id, RegionDef{region_kind, static_cast<SourceLine>(extra),
                                       std::string(name)});
        return Status::ok();
      }
      case DefKind::Statement: {
        auto it = stmts_.find(id);
        if (it != stmts_.end()) {
          return it->second.line == extra && it->second.name == name ? Status::ok()
                                                                     : duplicate;
        }
        stmts_.emplace(id, StmtDef{static_cast<SourceLine>(extra), std::string(name)});
        return Status::ok();
      }
    }
    return Status::error(ErrorCode::Internal, "unreachable definition kind", ordinal);
  }

  // ---- chunk decode (the parallel phase) ------------------------------------

  [[nodiscard]] Status precheck_record_total() const {
    std::uint64_t declared = 0;
    for (const Section& chunk : chunks_) declared += chunk.records;
    if (declared > options_.limits.max_records) {
      return Status::error(ErrorCode::ResourceLimit,
                           "event count exceeds cap of " +
                               std::to_string(options_.limits.max_records),
                           1);
    }
    return Status::ok();
  }

  /// Structural decode of one chunk; runs concurrently with other chunks.
  /// `base` is the record ordinal preceding this chunk, for attribution.
  [[nodiscard]] DecodedChunk decode_chunk(const Section& chunk,
                                          std::uint64_t chunk_ordinal,
                                          std::uint64_t base) const {
    DecodedChunk out;
    const auto corrupt = [&](std::string what) {
      out.recs.clear();
      out.error = Status::error(ErrorCode::ChunkCorrupt,
                                name_chunk(chunk_ordinal) + ": " + std::move(what),
                                chunk_ordinal);
    };
    if (crc32(chunk.payload) != chunk.crc) {
      corrupt("checksum mismatch");
      return out;
    }
    out.recs.reserve(chunk.records);
    ByteReader r(chunk.payload);
    std::uint64_t prev_var = 0;
    std::uint64_t prev_index = 0;
    std::uint64_t prev_line = 0;
    while (!r.at_end()) {
      const std::uint64_t ordinal = base + out.recs.size() + 1;
      const auto malformed = [&](std::string_view what) {
        out.recs.clear();
        out.error = Status::error(ErrorCode::MalformedRecord,
                                  "record " + std::to_string(ordinal) + ": " +
                                      std::string(what),
                                  ordinal);
      };
      std::uint8_t tag = 0;
      (void)r.read_u8(tag);
      Rec rec;
      if (tag >= static_cast<std::uint8_t>(RecordTag::RegionEnter) &&
          tag <= static_cast<std::uint8_t>(RecordTag::StatementExit)) {
        rec.tag = static_cast<RecordTag>(tag);
        std::uint64_t id = 0;
        if (!r.read_varint(id) || id >= std::numeric_limits<std::uint32_t>::max()) {
          malformed("bad id field");
          return out;
        }
        rec.id = static_cast<std::uint32_t>(id);
      } else if (tag == static_cast<std::uint8_t>(RecordTag::Read) ||
                 tag == static_cast<std::uint8_t>(RecordTag::Write)) {
        rec.tag = static_cast<RecordTag>(tag);
        std::uint64_t dv = 0;
        std::uint64_t di = 0;
        std::uint64_t dl = 0;
        if (!r.read_varint(dv) || !r.read_varint(di) || !r.read_varint(dl) ||
            !r.read_varint(rec.cost)) {
          malformed("truncated access record");
          return out;
        }
        const std::uint64_t var =
            prev_var + static_cast<std::uint64_t>(unzigzag(dv));
        const std::uint64_t line =
            prev_line + static_cast<std::uint64_t>(unzigzag(dl));
        if (var >= std::numeric_limits<std::uint32_t>::max()) {
          malformed("bad variable id");
          return out;
        }
        if (line > std::numeric_limits<SourceLine>::max()) {
          malformed("bad access source line");
          return out;
        }
        if (rec.cost >= trace::Validator::kCostSanityCap) {
          malformed("access cost beyond the sanity cap");
          return out;
        }
        rec.id = static_cast<std::uint32_t>(var);
        rec.index = prev_index + static_cast<std::uint64_t>(unzigzag(di));
        rec.line = static_cast<SourceLine>(line);
        if (tag == static_cast<std::uint8_t>(RecordTag::Write)) {
          if (!r.read_u8(rec.op) ||
              rec.op > static_cast<std::uint8_t>(trace::UpdateOp::Max)) {
            out.recs.clear();
            out.error = Status::error(ErrorCode::BadWriteOp,
                                      "record " + std::to_string(ordinal) +
                                          ": unknown write update-op code",
                                      ordinal);
            return out;
          }
        }
        prev_var = var;
        prev_index = rec.index;
        prev_line = line;
      } else if (tag == static_cast<std::uint8_t>(RecordTag::Compute)) {
        rec.tag = RecordTag::Compute;
        std::uint64_t dl = 0;
        if (!r.read_varint(dl) || !r.read_varint(rec.cost)) {
          malformed("truncated compute record");
          return out;
        }
        const std::uint64_t line =
            prev_line + static_cast<std::uint64_t>(unzigzag(dl));
        if (line > std::numeric_limits<SourceLine>::max()) {
          malformed("bad compute source line");
          return out;
        }
        if (rec.cost >= trace::Validator::kCostSanityCap) {
          malformed("compute cost beyond the sanity cap");
          return out;
        }
        rec.line = static_cast<SourceLine>(line);
        prev_line = line;
      } else {
        out.recs.clear();
        out.error = Status::error(ErrorCode::UnknownTag,
                                  "record " + std::to_string(ordinal) +
                                      ": unknown record tag " + std::to_string(tag),
                                  ordinal);
        return out;
      }
      out.recs.push_back(rec);
    }
    if (out.recs.size() != chunk.records) {
      corrupt("decoded " + std::to_string(out.recs.size()) + " records, header claims " +
              std::to_string(chunk.records));
    }
    return out;
  }

  /// Decodes every chunk, fanning out over a thread pool when configured.
  /// Results land in chunk order regardless of scheduling, so the merge into
  /// the dispatch phase is deterministic.
  [[nodiscard]] std::vector<DecodedChunk> decode_chunks() {
    PPD_OBS_SPAN("ppdt.decode");
    std::vector<std::uint64_t> base(chunks_.size(), 0);
    for (std::size_t i = 1; i < chunks_.size(); ++i) {
      base[i] = base[i - 1] + chunks_[i - 1].records;
    }
    std::vector<DecodedChunk> decoded(chunks_.size());
    rt::ThreadPool* pool = options_.pool;
    std::unique_ptr<rt::ThreadPool> local_pool;
    if (pool == nullptr && options_.jobs > 1 && chunks_.size() > 1) {
      local_pool = std::make_unique<rt::ThreadPool>(
          std::min<std::size_t>(options_.jobs, chunks_.size()));
      pool = local_pool.get();
    }
    if (pool != nullptr && pool->thread_count() > 1 && chunks_.size() > 1) {
      rt::TaskGroup group(*pool);
      for (std::size_t i = 0; i < chunks_.size(); ++i) {
        group.run([this, &decoded, &base, i] {
          // Recorded on the worker thread, so each decode lands on its
          // worker's track in the exported Chrome trace.
          PPD_OBS_SPAN("ppdt.chunk");
          decoded[i] = decode_chunk(chunks_[i], i + 1, base[i]);
        });
      }
      group.wait();
    } else {
      for (std::size_t i = 0; i < chunks_.size(); ++i) {
        PPD_OBS_SPAN("ppdt.chunk");
        decoded[i] = decode_chunk(chunks_[i], i + 1, base[i]);
      }
    }
    return decoded;
  }

  // ---- sequential dispatch --------------------------------------------------

  [[nodiscard]] Status count_event(std::uint64_t ordinal) const {
    if (result_.records >= options_.limits.max_records) {
      return Status::error(ErrorCode::ResourceLimit,
                           "event count exceeds cap of " +
                               std::to_string(options_.limits.max_records),
                           ordinal);
    }
    return Status::ok();
  }

  /// Replays decoded chunks in order. Returns false when the replay stopped
  /// with a fatal status.
  [[nodiscard]] bool dispatch_all(std::vector<DecodedChunk> decoded) {
    PPD_OBS_SPAN("ppdt.dispatch");
    for (std::size_t i = 0; i < decoded.size(); ++i) {
      DecodedChunk& chunk = decoded[i];
      if (!chunk.error.is_ok()) {
        if (strict() || chunk.error.code() == ErrorCode::ResourceLimit) {
          result_.status = chunk.error;
          unwind_scopes();
          return false;
        }
        diag(chunk.error);
        ++result_.skipped_chunks;
        result_.dropped += chunks_[i].records;
        continue;
      }
      for (const Rec& rec : chunk.recs) {
        ++ordinal_;
        if (Status s = dispatch(rec, ordinal_); !s.is_ok() && !note_record_error(s)) {
          return false;
        }
      }
    }
    return true;
  }

  [[nodiscard]] Status dispatch(const Rec& rec, std::uint64_t ordinal) {
    switch (rec.tag) {
      case RecordTag::RegionEnter: {
        auto def = regions_.find(rec.id);
        if (def == regions_.end()) {
          return Status::error(ErrorCode::UndefinedId,
                               "enter of undefined region " + std::to_string(rec.id),
                               ordinal);
        }
        if (Status s = count_event(ordinal); !s.is_ok()) return s;
        OpenScope scope;
        scope.file_id = rec.id;
        if (def->second.kind == trace::RegionKind::Function) {
          scope.kind = 'f';
          scope.function = std::make_unique<trace::FunctionScope>(
              ctx_, def->second.name, def->second.line);
        } else {
          scope.kind = 'l';
          scope.loop = std::make_unique<trace::LoopScope>(ctx_, def->second.name,
                                                          def->second.line);
        }
        scope_stack_.push_back(std::move(scope));
        break;
      }
      case RecordTag::RegionExit: {
        if (scope_stack_.empty() || scope_stack_.back().kind == 's' ||
            scope_stack_.back().file_id != rec.id) {
          return Status::error(ErrorCode::ScopeMismatch,
                               "exit of region " + std::to_string(rec.id) +
                                   " does not match the innermost open scope",
                               ordinal);
        }
        if (Status s = count_event(ordinal); !s.is_ok()) return s;
        scope_stack_.pop_back();
        break;
      }
      case RecordTag::Iteration: {
        if (scope_stack_.empty() || scope_stack_.back().kind != 'l' ||
            scope_stack_.back().file_id != rec.id) {
          return Status::error(ErrorCode::IterationOutsideLoop,
                               "iteration of loop " + std::to_string(rec.id) +
                                   " outside its innermost loop scope",
                               ordinal);
        }
        if (Status s = count_event(ordinal); !s.is_ok()) return s;
        scope_stack_.back().loop->begin_iteration();
        break;
      }
      case RecordTag::StatementEnter: {
        auto def = stmts_.find(rec.id);
        if (def == stmts_.end()) {
          return Status::error(ErrorCode::UndefinedId,
                               "open of undefined statement " + std::to_string(rec.id),
                               ordinal);
        }
        if (Status s = count_event(ordinal); !s.is_ok()) return s;
        OpenScope scope;
        scope.file_id = rec.id;
        scope.kind = 's';
        scope.statement = std::make_unique<trace::StatementScope>(
            ctx_, def->second.name, def->second.line);
        scope_stack_.push_back(std::move(scope));
        break;
      }
      case RecordTag::StatementExit: {
        if (scope_stack_.empty() || scope_stack_.back().kind != 's' ||
            scope_stack_.back().file_id != rec.id) {
          return Status::error(ErrorCode::ScopeMismatch,
                               "close of statement " + std::to_string(rec.id) +
                                   " does not match the innermost open scope",
                               ordinal);
        }
        if (Status s = count_event(ordinal); !s.is_ok()) return s;
        scope_stack_.pop_back();
        break;
      }
      case RecordTag::Read:
      case RecordTag::Write: {
        auto def = vars_.find(rec.id);
        if (def == vars_.end()) {
          return Status::error(ErrorCode::UndefinedId,
                               "access to undefined variable " + std::to_string(rec.id),
                               ordinal);
        }
        if (Status s = count_event(ordinal); !s.is_ok()) return s;
        VarDef& var = def->second;
        if (!var.interned.valid()) {
          // First access interns the variable — the same moment (relative to
          // every other first use) at which a text replay interns it, so the
          // assigned ids are identical across formats.
          var.interned = var.local ? ctx_.local_var(var.name) : ctx_.var(var.name);
        }
        if (rec.tag == RecordTag::Read) {
          ctx_.read(var.interned, rec.index, rec.line, rec.cost);
        } else if (rec.op == 0) {
          ctx_.write(var.interned, rec.index, rec.line, rec.cost);
        } else {
          // update() would emit an extra read; re-emit the tagged write only.
          ctx_.write_impl(var.interned, rec.index, rec.line, rec.cost,
                          static_cast<trace::UpdateOp>(rec.op));
        }
        break;
      }
      case RecordTag::Compute: {
        if (Status s = count_event(ordinal); !s.is_ok()) return s;
        ctx_.compute(rec.line, rec.cost);
        break;
      }
    }
    ++result_.records;
    return Status::ok();
  }

  /// Closes any open scopes strictly LIFO (the RAII destructors emit the
  /// matching exit events, keeping the context's own invariants intact).
  void unwind_scopes() {
    while (!scope_stack_.empty()) scope_stack_.pop_back();
  }

  void finish() {
    if (!scope_stack_.empty()) {
      const Status unclosed = Status::error(
          ErrorCode::UnclosedScope,
          "trace ended with " + std::to_string(scope_stack_.size()) +
              " scope(s) still open",
          ordinal_);
      if (strict()) {
        result_.status = unclosed;
        unwind_scopes();
        return;
      }
      diag(unclosed);
      result_.repaired_scopes = scope_stack_.size();
      unwind_scopes();  // repair: synthesize the missing exits
    }
    ctx_.finish();
    result_.finished = true;
  }

  trace::TraceContext& ctx_;
  const ReadOptions& options_;
  ReadResult result_;

  std::optional<Section> strtab_;
  std::vector<Section> chunks_;

  std::unordered_map<std::uint32_t, VarDef> vars_;
  std::unordered_map<std::uint32_t, RegionDef> regions_;
  std::unordered_map<std::uint32_t, StmtDef> stmts_;

  std::vector<OpenScope> scope_stack_;
  std::uint64_t ordinal_ = 0;  ///< 1-based record ordinal across all chunks
};

}  // namespace

ReadResult read_trace(std::string_view bytes, trace::TraceContext& ctx,
                      const ReadOptions& options) {
  return BinaryReplayer(ctx, options).run(bytes);
}

ReadResult read_trace_file(const std::string& path, trace::TraceContext& ctx,
                           const ReadOptions& options) {
  support::MappedFile file;
  const support::Status mapped = file.open(path);
  if (!mapped.is_ok()) {
    ReadResult result;
    result.status = mapped;
    return result;
  }
  // `file` outlives the replay; the reader interns everything it keeps.
  return read_trace(file.bytes(), ctx, options);
}

}  // namespace ppd::store
