#include "store/format.hpp"

#include <array>
#include <cstring>

namespace ppd::store {
namespace {

// Slice-by-8 CRC-32: table[0] is the classic byte-at-a-time table; table[k]
// advances a byte through k additional zero bytes, so eight input bytes fold
// in one step. CRC-ing every chunk is a fixed per-byte cost of ingestion,
// and this cuts it several-fold.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_crc_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      tables[k][i] = tables[0][tables[k - 1][i] & 0xFFu] ^ (tables[k - 1][i] >> 8);
    }
  }
  return tables;
}

constexpr std::array<std::array<std::uint32_t, 256>, 8> kCrcTables = make_crc_tables();

}  // namespace

bool is_binary_trace(std::string_view bytes) {
  return bytes.size() >= kMagicSize &&
         std::memcmp(bytes.data(), kMagic, kMagicSize) == 0;
}

std::uint32_t crc32(std::string_view bytes) {
  std::uint32_t c = 0xFFFFFFFFu;
  const char* p = bytes.data();
  std::size_t n = bytes.size();
  while (n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    c ^= lo;  // assumes little-endian, like the rest of the on-disk format
    c = kCrcTables[7][c & 0xFFu] ^ kCrcTables[6][(c >> 8) & 0xFFu] ^
        kCrcTables[5][(c >> 16) & 0xFFu] ^ kCrcTables[4][c >> 24] ^
        kCrcTables[3][hi & 0xFFu] ^ kCrcTables[2][(hi >> 8) & 0xFFu] ^
        kCrcTables[1][(hi >> 16) & 0xFFu] ^ kCrcTables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (; n != 0; ++p, --n) {
    c = kCrcTables[0][(c ^ static_cast<unsigned char>(*p)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (const char byte : bytes) {
    hash ^= static_cast<unsigned char>(byte);
    hash *= 0x100000001B3ull;
  }
  return hash;
}

void put_u32le(std::string& out, std::uint32_t value) {
  out.push_back(static_cast<char>(value & 0xFFu));
  out.push_back(static_cast<char>((value >> 8) & 0xFFu));
  out.push_back(static_cast<char>((value >> 16) & 0xFFu));
  out.push_back(static_cast<char>((value >> 24) & 0xFFu));
}

void put_varint(std::string& out, std::uint64_t value) {
  while (value >= 0x80u) {
    out.push_back(static_cast<char>(0x80u | (value & 0x7Fu)));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

}  // namespace ppd::store
