// ppd::store — compact binary trace container (.ppdt), format version 1.
//
// The paper's workflow dumps the whole dynamic event stream to a file and
// post-analyzes it (§III-A). The text format of ppd::trace reproduces that
// faithfully but replays at parser speed on one thread; this container is
// the production ingestion format: the same event stream, varint/delta
// encoded into independently decodable chunks so a reader can fan the
// decode out over a thread pool and still dispatch events in exact
// program order.
//
// Layout (all fixed-width integers little-endian, varints LEB128):
//
//   file    := magic sections trailer
//   magic   := "PPDT" 0x01 "\r\n" 0x00                   (8 bytes)
//   section := kind:u8  payload_len:u32  record_count:u32  crc32:u32  payload
//   trailer := footer_section_len:u32  "PPDF"            (8 bytes)
//
// Section kinds:
//   Events      — a chunk of encoded event records. Delta baselines (variable
//                 id, element index, source line) reset at every chunk start,
//                 so chunks decode independently and in parallel.
//   StringTable — the var/region/statement definitions, in first-use order.
//                 Replaying them in table order reproduces the exact id
//                 assignment of a text replay, which keeps detector output
//                 bit-identical across the two formats.
//   Footer      — seekable index: per-chunk file offsets and record counts,
//                 the string-table offset, and the stream totals. Located
//                 via the fixed-size trailer; when it is damaged, a lenient
//                 reader falls back to a forward scan of the self-delimiting
//                 section headers.
//
// Every section carries a CRC32 of its payload and its record count, so
// corruption is detected per chunk: strict readers stop with a Status,
// lenient readers skip the chunk, report a Diag, and keep going.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace ppd::store {

inline constexpr std::size_t kMagicSize = 8;
inline constexpr char kMagic[kMagicSize] = {'P', 'P', 'D', 'T', 0x01, '\r', '\n', 0x00};

inline constexpr std::size_t kTrailerSize = 8;  // u32 footer section length + "PPDF"
inline constexpr char kTrailerMagic[4] = {'P', 'P', 'D', 'F'};

/// kind + payload_len + record_count + crc32.
inline constexpr std::size_t kSectionHeaderSize = 1 + 4 + 4 + 4;

inline constexpr std::uint64_t kFormatVersion = 1;

enum class SectionKind : std::uint8_t {
  Events = 1,
  StringTable = 2,
  Footer = 3,
};

/// Event record tags. The encodings mirror the text grammar one to one
/// (serialize.hpp): E X I S P R W C.
enum class RecordTag : std::uint8_t {
  RegionEnter = 1,    ///< varint region-id
  RegionExit = 2,     ///< varint region-id
  Iteration = 3,      ///< varint loop-id
  StatementEnter = 4, ///< varint statement-id
  StatementExit = 5,  ///< varint statement-id
  Read = 6,           ///< zigzag Δvar, zigzag Δindex, zigzag Δline, varint cost
  Write = 7,          ///< as Read, plus op:u8
  Compute = 8,        ///< zigzag Δline, varint cost
};

/// String-table entry kinds.
enum class DefKind : std::uint8_t {
  Var = 1,        ///< varint id, local:u8, varint name_len, name
  Function = 2,   ///< varint id, varint line, varint name_len, name
  Loop = 3,       ///< varint id, varint line, varint name_len, name
  Statement = 4,  ///< varint id, varint line, varint name_len, name
};

/// Longest accepted definition name; hostile tables cannot balloon memory.
inline constexpr std::uint64_t kMaxNameLength = 4096;

/// True when `bytes` starts with the .ppdt magic (format sniffing for tools
/// that accept either the text or the binary trace format).
[[nodiscard]] bool is_binary_trace(std::string_view bytes);

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `bytes`.
[[nodiscard]] std::uint32_t crc32(std::string_view bytes);

/// FNV-1a 64-bit content hash, seedable so callers can fold configuration
/// into the key (the batch driver's cache keying).
inline constexpr std::uint64_t kFnv1aOffset = 0xCBF29CE484222325ull;
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes,
                                    std::uint64_t seed = kFnv1aOffset);

// ---- little-endian / varint primitives --------------------------------------

void put_u32le(std::string& out, std::uint32_t value);

/// Appends `value` as LEB128 (7 bits per byte, high bit = continuation).
void put_varint(std::string& out, std::uint64_t value);

/// Zigzag maps signed deltas onto small unsigned varints.
[[nodiscard]] constexpr std::uint64_t zigzag(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

[[nodiscard]] constexpr std::int64_t unzigzag(std::uint64_t value) {
  return static_cast<std::int64_t>((value >> 1) ^ (~(value & 1) + 1));
}

/// Bounds-checked cursor over a byte span; every read reports truncation
/// instead of walking off the end, so decoding hostile files is safe.
/// Defined inline: these reads are the per-field inner loop of the chunk
/// decoder, and keeping them visible to the caller is worth measurable
/// ingestion throughput.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] bool read_u8(std::uint8_t& out) {
    if (remaining() < 1) return false;
    out = static_cast<std::uint8_t>(bytes_[pos_++]);
    return true;
  }

  [[nodiscard]] bool read_u32le(std::uint32_t& out) {
    if (remaining() < 4) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(bytes_[pos_ + static_cast<std::size_t>(i)]))
             << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  /// Rejects varints longer than 10 bytes or with set bits past 64.
  [[nodiscard]] bool read_varint(std::uint64_t& out) {
    // Fast path: most fields (delta-encoded ids, lines, unit costs) fit a
    // single byte.
    if (pos_ < bytes_.size()) {
      const auto first = static_cast<unsigned char>(bytes_[pos_]);
      if ((first & 0x80u) == 0) {
        ++pos_;
        out = first;
        return true;
      }
    }
    out = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      if (at_end()) return false;
      const auto byte = static_cast<unsigned char>(bytes_[pos_++]);
      const std::uint64_t payload = byte & 0x7Fu;
      // The 10th byte may only contribute the final bit of a 64-bit value.
      if (shift == 63 && payload > 1) return false;
      out |= payload << shift;
      if ((byte & 0x80u) == 0) return true;
    }
    return false;
  }

  [[nodiscard]] bool read_bytes(std::string_view& out, std::size_t count) {
    if (remaining() < count) return false;
    out = bytes_.substr(pos_, count);
    pos_ += count;
    return true;
  }

  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return pos_ >= bytes_.size(); }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

}  // namespace ppd::store
