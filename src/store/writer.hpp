// Binary trace writer: an EventSink streaming the dynamic event stream into
// the .ppdt container (see format.hpp).
//
// Definitions are collected in first-use order — variables at their first
// access, regions at their first enter, statements at their first open —
// which is exactly the order the text TraceWriter emits its definition
// lines. The reader interns them in the same order, so the two formats
// assign identical ids and downstream analyses produce bit-identical
// results either way.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "store/format.hpp"
#include "trace/context.hpp"
#include "trace/events.hpp"

namespace ppd::store {

class BinaryTraceWriter final : public trace::EventSink {
 public:
  struct Options {
    /// A chunk is flushed once its payload reaches this size. Smaller chunks
    /// mean more decode parallelism and finer-grained corruption containment
    /// at a slightly worse compression ratio.
    std::uint32_t target_chunk_bytes = std::uint32_t{1} << 16;
    /// Hard record cap per chunk (keeps the per-chunk decode bounded even
    /// for streams of tiny records).
    std::uint32_t max_chunk_records = std::uint32_t{1} << 14;
  };

  BinaryTraceWriter(const trace::TraceContext& program, std::ostream& out);
  BinaryTraceWriter(const trace::TraceContext& program, std::ostream& out,
                    Options options);

  void on_region_enter(const trace::RegionInfo& region) override;
  void on_region_exit(const trace::RegionInfo& region) override;
  void on_iteration(const trace::RegionInfo& loop, std::uint64_t iteration) override;
  void on_access(const trace::AccessEvent& access) override;
  void on_compute(const trace::ComputeEvent& compute) override;
  void on_statement_enter(const trace::StatementInfo& stmt) override;
  void on_statement_exit(const trace::StatementInfo& stmt) override;
  void on_trace_end() override;

  /// Flushes the open chunk and writes the string table, footer, and
  /// trailer. Called by on_trace_end(); idempotent.
  void finalize();

  [[nodiscard]] std::uint64_t records_written() const { return records_; }
  [[nodiscard]] std::uint64_t chunks_written() const { return index_.size(); }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_; }

 private:
  void ensure_var(VarId var);
  void ensure_region(const trace::RegionInfo& region);
  void ensure_statement(const trace::StatementInfo& stmt);
  void def_entry(DefKind kind, std::uint32_t id, std::uint64_t extra,
                 const std::string& name);

  void record_written();
  void flush_chunk();
  void write_section(SectionKind kind, std::string_view payload,
                     std::uint32_t record_count);

  const trace::TraceContext& program_;
  std::ostream& out_;
  Options options_;

  std::string chunk_;  ///< payload of the chunk being built
  std::uint32_t chunk_records_ = 0;
  // Delta baselines; reset at every chunk boundary so chunks decode
  // independently.
  std::uint64_t prev_var_ = 0;
  std::uint64_t prev_index_ = 0;
  std::uint64_t prev_line_ = 0;

  std::string strtab_;  ///< definition payload, first-use order
  std::uint32_t def_count_ = 0;
  std::vector<bool> var_defined_;
  std::vector<bool> region_defined_;
  std::vector<bool> stmt_defined_;

  struct ChunkIndexEntry {
    std::uint64_t offset = 0;  ///< absolute file offset of the section header
    std::uint32_t records = 0;
  };
  std::vector<ChunkIndexEntry> index_;

  std::uint64_t bytes_ = 0;
  std::uint64_t records_ = 0;
  bool finalized_ = false;
};

}  // namespace ppd::store
