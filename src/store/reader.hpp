// Chunk-parallel reader for the .ppdt binary trace container.
//
// Reading happens in two phases. *Decode* — CRC check plus varint/delta
// decode of each event chunk into a flat record buffer — is embarrassingly
// parallel because chunks are self-contained; with jobs > 1 it fans out
// over an rt::ThreadPool, one task per chunk, and the per-chunk results
// land in an index-ordered vector, so the merge is deterministic no matter
// how the scheduler interleaved the workers. *Dispatch* — re-driving the
// TraceContext (scope nesting, id interning, event fan-out to the
// subscribed detectors) — is inherently order-dependent and runs
// sequentially over the merged buffers. The expensive part of text replay
// is the parsing, so this split parallelizes the dominant cost while
// keeping detector output bit-identical to a text replay of the same
// stream.
//
// The PR-3 diagnostics contract carries over: strict mode stops at the
// first problem with a Status; lenient mode skips corrupt chunks and drops
// bad records, reporting a Diag for each, repairs unbalanced scopes at end
// of input, and still completes a degraded analysis. A damaged footer
// downgrades to a forward scan of the self-delimiting section headers in
// lenient mode. Resource caps (ReplayLimits) are enforced in both modes.
//
// Binary records have no text line numbers; the `line` carried by a Status
// or Diag is the 1-based *record ordinal* for record-level problems and the
// 1-based *chunk ordinal* for chunk-level problems (the message says
// which).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "support/status.hpp"
#include "trace/context.hpp"
#include "trace/serialize.hpp"

namespace ppd::rt {
class ThreadPool;
}

namespace ppd::store {

struct ReadOptions {
  trace::ReplayMode mode = trace::ReplayMode::Strict;
  trace::ReplayLimits limits;
  /// Optional collector for non-fatal findings (lenient skips/repairs).
  support::DiagSink* diags = nullptr;
  /// Decode concurrency: chunks are decoded on `jobs` pool workers. 1 =
  /// decode inline on the calling thread.
  std::size_t jobs = 1;
  /// Optional externally owned pool to decode on; overrides `jobs` for
  /// sizing (a pool is created internally only when this is null and
  /// jobs > 1).
  rt::ThreadPool* pool = nullptr;
  /// Cap on a single section's declared payload size.
  std::uint64_t max_chunk_bytes = std::uint64_t{1} << 26;
};

/// Outcome of a binary replay; mirrors trace::ReplayResult.
struct ReadResult {
  support::Status status;
  std::uint64_t records = 0;          ///< events successfully dispatched
  std::uint64_t dropped = 0;          ///< lenient: records dropped
  std::uint64_t skipped_chunks = 0;   ///< lenient: corrupt chunks skipped whole
  std::uint64_t repaired_scopes = 0;  ///< lenient: scopes auto-closed at EOF
  std::uint64_t chunks = 0;           ///< event chunks seen in the container
  bool finished = false;              ///< ctx.finish() was reached
};

/// Replays a .ppdt container into `ctx` (whose sinks must already be
/// subscribed). Never throws on malformed input — problems are reported
/// through the returned ReadResult, exactly like trace::replay_trace.
[[nodiscard]] ReadResult read_trace(std::string_view bytes, trace::TraceContext& ctx,
                                    const ReadOptions& options);

/// Maps `path` (support::MappedFile — zero-copy on POSIX) and replays it via
/// read_trace; the mapping lives exactly for the duration of the call, which
/// is safe because the reader retains no views into its input. Unreadable
/// files report ErrorCode::IoError through the ReadResult, keeping the
/// never-throws contract.
[[nodiscard]] ReadResult read_trace_file(const std::string& path,
                                         trace::TraceContext& ctx,
                                         const ReadOptions& options);

}  // namespace ppd::store
