// Batch analysis driver: many traces, one invocation.
//
// Evaluating a detector means sweeping whole benchmark suites repeatedly
// (Barakhshan & Eigenmann 2022 re-run NAS many times); the batch driver
// turns that sweep into a single command. Traces are analyzed concurrently
// on a thread pool — one task per trace, each with its own TraceContext —
// and the per-trace outputs are collected into input order, so stdout is
// deterministic regardless of scheduling.
//
// A content-hash keyed artifact cache skips traces whose bytes (and
// analysis configuration, folded into the key as a salt) have not changed:
// the rendered report is stored under `<cache_dir>/<key>.ppdr` and replayed
// verbatim on the next run. Only clean analyses (Ok status, caller marked
// them cacheable) are stored, so degraded runs keep reproducing their
// diagnostics.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.hpp"

namespace ppd::store {

/// Completion heartbeat: items finished so far, total, and how many of the
/// finished ones were served from the cache. Invocations are serialized by
/// the driver but may come from any worker thread.
using ProgressFn =
    std::function<void(std::size_t done, std::size_t total, std::size_t cache_hits)>;

struct BatchOptions {
  /// Concurrent analysis tasks (and thread-pool size).
  std::size_t jobs = 1;
  /// Directory for cached reports; empty disables the cache.
  std::string cache_dir;
  /// Folded into every content key; callers mix in everything that changes
  /// the report (replay mode, limits, tool/format version).
  std::uint64_t salt = 0;
  /// Re-analyze even on a cache hit (fresh results still refresh the cache).
  bool refresh = false;
  /// Optional heartbeat called after every completed item.
  ProgressFn progress;
};

/// What the per-trace analysis callback produced.
struct AnalyzeOutcome {
  support::Status status;
  std::string report;     ///< the stdout payload
  std::string log;        ///< progress/diagnostics, kept off stdout
  bool cacheable = true;  ///< false: never store (e.g. degraded analyses)
};

/// One per-trace result in the batch summary.
struct BatchItem {
  std::string path;
  support::Status status;
  std::string report;
  std::string log;
  bool cached = false;  ///< report served from the artifact cache
  std::uint64_t key = 0;
};

struct BatchSummary {
  std::vector<BatchItem> items;  ///< in input order
  std::size_t failures = 0;
  std::size_t cache_hits = 0;
};

/// Analysis callback: receives the trace path and its raw bytes. The view
/// is backed by the batch worker's mapped file and is valid only for the
/// duration of the call — copy anything that must outlive it.
using AnalyzeFn =
    std::function<AnalyzeOutcome(const std::string& path, std::string_view bytes)>;

/// Analyzes every path concurrently (`options.jobs` workers), consulting and
/// populating the artifact cache. Missing/unreadable files become failed
/// items, not exceptions.
[[nodiscard]] BatchSummary analyze_batch(const std::vector<std::string>& paths,
                                         const BatchOptions& options,
                                         const AnalyzeFn& analyze);

/// Content key of one trace: FNV-1a over the bytes, seeded with the salt.
[[nodiscard]] std::uint64_t content_key(std::string_view bytes, std::uint64_t salt);

/// `<dir>/<key as hex>.ppdr`.
[[nodiscard]] std::string cache_path(const std::string& dir, std::uint64_t key);

/// Binary-safe file slurp; false on any I/O error.
[[nodiscard]] bool slurp_file(const std::string& path, std::string& out);

/// True when the bytes look like either trace format (text header or .ppdt
/// magic) — the batch scanner's admission test.
[[nodiscard]] bool is_trace_content(std::string_view bytes);

/// Non-recursive scan of `dir` for trace files (by content sniff), sorted by
/// path for deterministic batch order. A path that is already a file is
/// returned as-is.
[[nodiscard]] std::vector<std::string> find_traces(const std::string& path);

}  // namespace ppd::store
