// Polybench `bicg` (Table III row 16; Table VI).
//
// Hotspot reproduced: the single outer loop of kernel_bicg computing both
// s = Aᵀ·r and q = A·p. The s[j] accumulators are re-updated across
// iterations of the outer loop at one source line — the reduction Algorithm
// 3 detects; q[i] is written within its own iteration only. icc misses the
// reduction (array-element accumulator behind pointer parameters defeats
// its alias analysis), Sambamba finds it statically, and so does DiscoPoP
// dynamically (Table VI). The paper implements the reduction by hand and
// reports 5.64x at 8 threads.
#include <vector>

#include "bs/benchmark.hpp"
#include "bs/detail.hpp"
#include "pat/pat.hpp"
#include "rt/parallel.hpp"
#include "sim/lowering.hpp"

namespace ppd::bs {
namespace {

constexpr std::size_t kN = 64;

struct Workload {
  Matrix a{kN, kN};
  std::vector<double> r = std::vector<double>(kN);
  std::vector<double> p = std::vector<double>(kN);
};

const Workload& workload() {
  static const Workload w = [] {
    Workload wl;
    Rng rng(4242);
    wl.a.fill_random(rng);
    for (double& v : wl.r) v = rng.uniform();
    for (double& v : wl.p) v = rng.uniform();
    return wl;
  }();
  return w;
}

void run_sequential(const Workload& w, std::vector<double>& s, std::vector<double>& q) {
  for (std::size_t i = 0; i < kN; ++i) {
    q[i] = 0.0;
    for (std::size_t j = 0; j < kN; ++j) {
      s[j] += w.r[i] * w.a.at(i, j);
      q[i] += w.a.at(i, j) * w.p[j];
    }
  }
}

class Bicg final : public Benchmark {
 public:
  const PaperRow& paper() const override {
    static const PaperRow row{"bicg", "Polybench", 191, 74.58, 5.64, 8, "Reduction"};
    return row;
  }

  void run_traced(trace::TraceContext& ctx) const override {
    const Workload& w = workload();
    std::vector<double> s(kN, 0.0);
    std::vector<double> q(kN, 0.0);

    const VarId vs = ctx.var("s");
    const VarId vq = ctx.var("q");

    trace::FunctionScope fmain(ctx, "main", 1);
    {
      trace::FunctionScope finit(ctx, "init_array", 2);
      ctx.compute(2, 11190);  // hotspot holds ~74.6%
    }
    {
      trace::FunctionScope fk(ctx, "kernel_bicg", 4);
      trace::LoopScope li(ctx, "bicg_loop", 5);
      for (std::size_t i = 0; i < kN; ++i) {
        li.begin_iteration();
        q[i] = 0.0;
        ctx.write(vq, i, 6);
        for (std::size_t j = 0; j < kN; ++j) {
          s[j] += w.r[i] * w.a.at(i, j);
          q[i] += w.a.at(i, j) * w.p[j];
          ctx.compute(8, 2);
          ctx.update(vs, j, 8, trace::UpdateOp::Sum);
          ctx.compute(9, 2);
          ctx.update(vq, i, 9, trace::UpdateOp::Sum);
        }
      }
    }
  }

  VerifyOutcome verify_parallel(std::size_t threads) const override {
    const Workload& w = workload();
    std::vector<double> s_seq(kN, 0.0), q_seq(kN, 0.0);
    run_sequential(w, s_seq, q_seq);

    // Reduction over rows: each worker accumulates a private copy of s over
    // its row range; q rows are disjoint, written in place.
    std::vector<double> q_par(kN, 0.0);
    rt::ThreadPool pool(threads);
    const std::vector<double> s_par = rt::parallel_reduce<std::vector<double>>(
        pool, 0, kN, std::vector<double>(kN, 0.0),
        [&](std::vector<double> acc, std::uint64_t i) {
          q_par[i] = 0.0;
          for (std::size_t j = 0; j < kN; ++j) {
            acc[j] += w.r[i] * w.a.at(i, j);
            q_par[i] += w.a.at(i, j) * w.p[j];
          }
          return acc;
        },
        [](std::vector<double> a, const std::vector<double>& b) {
          for (std::size_t j = 0; j < kN; ++j) a[j] += b[j];
          return a;
        });

    std::vector<double> seq_all = s_seq;
    seq_all.insert(seq_all.end(), q_seq.begin(), q_seq.end());
    std::vector<double> par_all = s_par;
    par_all.insert(par_all.end(), q_par.begin(), q_par.end());
    return compare_results(seq_all, par_all);
  }

  VerifyOutcome verify_pat(std::size_t threads) const override {
    const Workload& w = workload();
    std::vector<double> s_seq(kN, 0.0), q_seq(kN, 0.0);
    run_sequential(w, s_seq, q_seq);

    // Same reduction on the pattern runtime: per-chunk private copies of s,
    // combined in chunk order.
    std::vector<double> q_par(kN, 0.0);
    rt::ThreadPool pool(threads);
    const std::vector<double> s_par = pat::parallel_for_reduce(
        pool, 0, kN, std::vector<double>(kN, 0.0),
        [&](std::vector<double> acc, std::uint64_t i) {
          q_par[i] = 0.0;
          for (std::size_t j = 0; j < kN; ++j) {
            acc[j] += w.r[i] * w.a.at(i, j);
            q_par[i] += w.a.at(i, j) * w.p[j];
          }
          return acc;
        },
        [](std::vector<double> a, std::vector<double> b) {
          for (std::size_t j = 0; j < kN; ++j) a[j] += b[j];
          return a;
        });

    std::vector<double> seq_all = s_seq;
    seq_all.insert(seq_all.end(), q_seq.begin(), q_seq.end());
    std::vector<double> par_all = s_par;
    par_all.insert(par_all.end(), q_par.begin(), q_par.end());
    return compare_results(seq_all, par_all);
  }

  sim::TaskDag build_sim_dag(const core::AnalysisResult& analysis) const override {
    const pet::PetNode& loop = pet_node_named(analysis, "bicg_loop");
    sim::DagBuilder builder;
    (void)builder.lower_loop(loop.iterations, loop.inclusive_cost, core::LoopClass::Reduction,
                             32);
    return builder.take();
  }

  sim::SimParams sim_params(const core::AnalysisResult& analysis) const override {
    sim::SimParams params;
    // Streaming A twice per iteration: firmly bandwidth-bound, saturating
    // around 8 threads as the paper observed.
    const pet::PetNode& loop = pet_node_named(analysis, "bicg_loop");
    params.memory_work = (loop.inclusive_cost * 7) / 8;
    params.memory_scale_limit = 5;
    return params;
  }

  std::optional<staticdet::LoopModel> reduction_source_model() const override {
    staticdet::LoopModel loop;
    loop.name = "bicg_loop";
    staticdet::Stmt s_acc;
    s_acc.line = 8;
    s_acc.op = staticdet::Op::AddAssign;
    s_acc.target = staticdet::TargetKind::ArrayElement;
    s_acc.target_name = "s";
    s_acc.reads = {"r", "A"};
    loop.body.push_back(s_acc);
    staticdet::Stmt q_acc;
    q_acc.line = 9;
    q_acc.op = staticdet::Op::AddAssign;
    q_acc.target = staticdet::TargetKind::ArrayElement;
    q_acc.target_name = "q";
    q_acc.reads = {"A", "p"};
    loop.body.push_back(q_acc);
    return loop;
  }
};

}  // namespace

const Benchmark& bicg_benchmark() {
  static const Bicg instance;
  return instance;
}

}  // namespace ppd::bs
