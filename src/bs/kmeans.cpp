// Starbench `kmeans` (Table III row 13).
//
// Hotspot reproduced: the function cluster() called from the sequential
// convergence loop. Inside cluster(), the assignment loop (nearest centroid
// per point) is a do-all, and the centroid-accumulation loop is a reduction
// (sums[k] and counts[k] re-updated across iterations). Every loop of
// cluster() is do-all or reduction, and the caller loop is sequential
// (each round consumes the previous round's centroids), so cluster() is a
// geometric-decomposition candidate: split the points into chunks and call
// cluster on each chunk per thread — "Geometric decomposition + Reduction".
// The paper reports 3.97x at 8 threads; the hotspot holds only ~2% of the
// executed instructions (I/O dominates the original).
#include <cmath>
#include <vector>

#include "bs/benchmark.hpp"
#include "bs/detail.hpp"
#include "pat/pat.hpp"
#include "rt/parallel.hpp"
#include "sim/lowering.hpp"

namespace ppd::bs {
namespace {

constexpr std::size_t kPoints = 384;
constexpr std::size_t kClusters = 8;
constexpr std::size_t kDim = 4;
constexpr std::size_t kRounds = 5;

struct Workload {
  std::vector<double> coords = std::vector<double>(kPoints * kDim);
};

const Workload& workload() {
  static const Workload w = [] {
    Workload wl;
    Rng rng(2718);
    for (double& v : wl.coords) v = rng.uniform();
    return wl;
  }();
  return w;
}

double dist2(const double* a, const double* b) {
  double d = 0.0;
  for (std::size_t k = 0; k < kDim; ++k) d += (a[k] - b[k]) * (a[k] - b[k]);
  return d;
}

std::size_t nearest(const Workload& w, const std::vector<double>& centroids, std::size_t p) {
  std::size_t best = 0;
  double best_d = dist2(&w.coords[p * kDim], &centroids[0]);
  for (std::size_t c = 1; c < kClusters; ++c) {
    const double d = dist2(&w.coords[p * kDim], &centroids[c * kDim]);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

void initial_centroids(const Workload& w, std::vector<double>& centroids) {
  for (std::size_t c = 0; c < kClusters; ++c) {
    for (std::size_t k = 0; k < kDim; ++k) {
      centroids[c * kDim + k] = w.coords[(c * 37 % kPoints) * kDim + k];
    }
  }
}

/// One round of cluster() over [lo, hi): assign, then accumulate into
/// sums/counts (the caller recomputes centroids).
void cluster_round(const Workload& w, const std::vector<double>& centroids,
                   std::vector<std::size_t>& assign, std::vector<double>& sums,
                   std::vector<double>& counts, std::size_t lo, std::size_t hi) {
  for (std::size_t p = lo; p < hi; ++p) assign[p] = nearest(w, centroids, p);
  for (std::size_t p = lo; p < hi; ++p) {
    const std::size_t c = assign[p];
    for (std::size_t k = 0; k < kDim; ++k) sums[c * kDim + k] += w.coords[p * kDim + k];
    counts[c] += 1.0;
  }
}

void recompute_centroids(std::vector<double>& centroids, const std::vector<double>& sums,
                         const std::vector<double>& counts) {
  for (std::size_t c = 0; c < kClusters; ++c) {
    for (std::size_t k = 0; k < kDim; ++k) {
      centroids[c * kDim + k] =
          counts[c] > 0.0 ? sums[c * kDim + k] / counts[c] : centroids[c * kDim + k];
    }
  }
}

std::vector<double> run_sequential(const Workload& w) {
  std::vector<double> centroids(kClusters * kDim, 0.0);
  initial_centroids(w, centroids);
  std::vector<std::size_t> assign(kPoints, 0);
  for (std::size_t r = 0; r < kRounds; ++r) {
    std::vector<double> sums(kClusters * kDim, 0.0);
    std::vector<double> counts(kClusters, 0.0);
    cluster_round(w, centroids, assign, sums, counts, 0, kPoints);
    recompute_centroids(centroids, sums, counts);
  }
  return centroids;
}

class Kmeans final : public Benchmark {
 public:
  const PaperRow& paper() const override {
    static const PaperRow row{"kmeans", "Starbench", 347, 2.04, 3.97, 8,
                              "Geometric decomposition + Reduction"};
    return row;
  }

  void run_traced(trace::TraceContext& ctx) const override {
    const Workload& w = workload();
    std::vector<double> centroids(kClusters * kDim, 0.0);
    initial_centroids(w, centroids);
    std::vector<std::size_t> assign(kPoints, 0);

    const VarId vcent = ctx.var("centroids");
    const VarId vassign = ctx.var("assign");
    const VarId vsums = ctx.var("sums");
    const VarId vcounts = ctx.var("counts");

    trace::FunctionScope fmain(ctx, "main", 1);
    {
      // In Starbench kmeans, input parsing and I/O dominate: the cluster
      // hotspot holds only ~2% of the executed instructions.
      trace::FunctionScope fio(ctx, "read_input", 2);
      ctx.compute(2, 11970000);
    }
    {
      trace::LoopScope conv(ctx, "convergence_loop", 5);
      for (std::size_t r = 0; r < kRounds; ++r) {
        conv.begin_iteration();
        std::vector<double> sums(kClusters * kDim, 0.0);
        std::vector<double> counts(kClusters, 0.0);
        {
          trace::FunctionScope fc(ctx, "cluster", 8);
          {
            trace::LoopScope lassign(ctx, "assign_loop", 10);
            for (std::size_t p = 0; p < kPoints; ++p) {
              lassign.begin_iteration();
              assign[p] = nearest(w, centroids, p);
              for (std::size_t c = 0; c < kClusters; ++c) ctx.read(vcent, c * kDim, 11);
              ctx.compute(11, 3 * kClusters * kDim);
              ctx.write(vassign, p, 12);
            }
          }
          {
            trace::LoopScope lupdate(ctx, "update_loop", 14);
            for (std::size_t p = 0; p < kPoints; ++p) {
              lupdate.begin_iteration();
              const std::size_t c = assign[p];
              for (std::size_t k = 0; k < kDim; ++k) {
                sums[c * kDim + k] += w.coords[p * kDim + k];
              }
              counts[c] += 1.0;
              ctx.read(vassign, p, 15);
              ctx.update(vsums, c * kDim, 16, trace::UpdateOp::Sum);
              ctx.update(vcounts, c, 17, trace::UpdateOp::Sum);
              ctx.compute(16, 20);
            }
          }
        }
        {
          trace::StatementScope s(ctx, "recompute_centroids", 20);
          recompute_centroids(centroids, sums, counts);
          for (std::size_t c = 0; c < kClusters; ++c) {
            ctx.read(vsums, c * kDim, 21);
            ctx.read(vcounts, c, 21);
            ctx.write(vcent, c * kDim, 21);
          }
          ctx.compute(21, kClusters * kDim);
        }
      }
    }
  }

  VerifyOutcome verify_parallel(std::size_t threads) const override {
    const Workload& w = workload();
    const std::vector<double> expected = run_sequential(w);

    // Geometric decomposition: each thread runs cluster() on its own chunk
    // of points with private sums/counts, combined per round (+ reduction).
    std::vector<double> centroids(kClusters * kDim, 0.0);
    initial_centroids(w, centroids);
    std::vector<std::size_t> assign(kPoints, 0);
    rt::ThreadPool pool(threads);
    const std::size_t chunks = std::max<std::size_t>(1, threads);
    for (std::size_t r = 0; r < kRounds; ++r) {
      std::vector<std::vector<double>> chunk_sums(chunks,
                                                  std::vector<double>(kClusters * kDim, 0.0));
      std::vector<std::vector<double>> chunk_counts(chunks,
                                                    std::vector<double>(kClusters, 0.0));
      rt::TaskGroup group(pool);
      for (std::size_t c = 0; c < chunks; ++c) {
        group.run([&, c] {
          const std::size_t lo = kPoints * c / chunks;
          const std::size_t hi = kPoints * (c + 1) / chunks;
          cluster_round(w, centroids, assign, chunk_sums[c], chunk_counts[c], lo, hi);
        });
      }
      group.wait();
      std::vector<double> sums(kClusters * kDim, 0.0);
      std::vector<double> counts(kClusters, 0.0);
      for (std::size_t c = 0; c < chunks; ++c) {
        for (std::size_t i = 0; i < sums.size(); ++i) sums[i] += chunk_sums[c][i];
        for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += chunk_counts[c][i];
      }
      recompute_centroids(centroids, sums, counts);
    }
    return compare_results(expected, centroids);
  }

  VerifyOutcome verify_pat(std::size_t threads) const override {
    const Workload& w = workload();
    const std::vector<double> expected = run_sequential(w);

    // Geometric decomposition + reduction on the pattern runtime: per
    // round, chunks of points fold into private sums/counts partials that
    // combine in chunk order.
    struct Partial {
      std::vector<double> sums = std::vector<double>(kClusters * kDim, 0.0);
      std::vector<double> counts = std::vector<double>(kClusters, 0.0);
    };
    std::vector<double> centroids(kClusters * kDim, 0.0);
    initial_centroids(w, centroids);
    std::vector<std::size_t> assign(kPoints, 0);
    rt::ThreadPool pool(threads);
    for (std::size_t r = 0; r < kRounds; ++r) {
      Partial combined = pat::parallel_for_reduce(
          pool, 0, kPoints, Partial{},
          [&](Partial acc, std::uint64_t p) {
            const std::size_t point = static_cast<std::size_t>(p);
            const std::size_t c = nearest(w, centroids, point);
            assign[point] = c;
            for (std::size_t k = 0; k < kDim; ++k) {
              acc.sums[c * kDim + k] += w.coords[point * kDim + k];
            }
            acc.counts[c] += 1.0;
            return acc;
          },
          [](Partial a, Partial b) {
            for (std::size_t i = 0; i < a.sums.size(); ++i) a.sums[i] += b.sums[i];
            for (std::size_t i = 0; i < a.counts.size(); ++i) a.counts[i] += b.counts[i];
            return a;
          });
      recompute_centroids(centroids, combined.sums, combined.counts);
    }
    return compare_results(expected, centroids);
  }

  sim::TaskDag build_sim_dag(const core::AnalysisResult& analysis) const override {
    // Per convergence round: chunked cluster() calls + a combine + centroid
    // recompute, chained across rounds.
    const pet::PetNode& cluster_node = pet_node_named(analysis, "cluster");
    const Cost per_round = cluster_node.inclusive_cost /
                           std::max<std::uint64_t>(1, cluster_node.instances);
    sim::DagBuilder builder;
    sim::TaskIndex prev = sim::kInvalidTask;
    for (std::size_t r = 0; r < kRounds; ++r) {
      const sim::TaskIndex fork = builder.serial_task(2, prev);
      auto chunks = builder.lower_loop(kPoints, per_round, core::LoopClass::DoAll, 32);
      builder.before_loop(chunks, fork);
      const sim::TaskIndex combine = builder.serial_task(kClusters * kDim);
      builder.after_loop(combine, chunks);
      prev = builder.serial_task(kClusters * kDim);
      builder.link(prev, combine);
    }
    return builder.take();
  }

  sim::SimParams sim_params(const core::AnalysisResult& analysis) const override {
    sim::SimParams params;
    // Point streaming is bandwidth-bound; the paper peaks at 8 threads.
    const pet::PetNode& cluster_node = pet_node_named(analysis, "cluster");
    params.memory_work = (cluster_node.inclusive_cost * 3) / 4;
    params.memory_scale_limit = 3;
    return params;
  }

  std::optional<staticdet::LoopModel> reduction_source_model() const override {
    // The centroid-accumulation loop as a static analyzer sees it: calls
    // into distance/accumulation helpers and C++ container machinery that
    // Sambamba's frontend cannot process at all (NA), and that icc's
    // conservative analysis gives up on.
    staticdet::LoopModel loop;
    loop.name = "kmeans_update_loop";
    loop.unsupported_by_sambamba = true;
    staticdet::Stmt call;
    call.line = 15;
    call.op = staticdet::Op::Call;
    call.callee = "euclid_dist_2";
    loop.body.push_back(call);
    staticdet::Stmt acc;
    acc.line = 16;
    acc.op = staticdet::Op::AddAssign;
    acc.target = staticdet::TargetKind::ArrayElement;
    acc.target_name = "sums";
    acc.reads = {"coords"};
    loop.body.push_back(acc);
    return loop;
  }
};

}  // namespace

const Benchmark& kmeans_benchmark() {
  static const Kmeans instance;
  return instance;
}

}  // namespace ppd::bs
