// BOTS `strassen` (Table III row 9; Table V row 3).
//
// Hotspot reproduced: OptimizedStrassenMultiply's seven independent
// recursive sub-multiplications M1..M7 followed by the combining loop that
// assembles the result quadrants. The seven call statements are classified
// as workers; the combining loop (a collapsed child region in the CU graph)
// depends on all seven and becomes their barrier — exactly the structure
// BOTS parallelizes, reaching 8.93x at 32 threads.
#include <vector>

#include "bs/benchmark.hpp"
#include "bs/detail.hpp"
#include "pat/pat.hpp"
#include "rt/parallel.hpp"
#include "sim/lowering.hpp"

namespace ppd::bs {
namespace {

constexpr std::size_t kN = 128;       // matrix dimension (power of two)
constexpr std::size_t kBase = 16;     // base-case dimension

Matrix matmul_base(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows, b.cols);
  for (std::size_t i = 0; i < a.rows; ++i) {
    for (std::size_t j = 0; j < b.cols; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < a.cols; ++k) sum += a.at(i, k) * b.at(k, j);
      c.at(i, j) = sum;
    }
  }
  return c;
}

Matrix add(const Matrix& a, const Matrix& b, double sign = 1.0) {
  Matrix c(a.rows, a.cols);
  for (std::size_t i = 0; i < a.data.size(); ++i) c.data[i] = a.data[i] + sign * b.data[i];
  return c;
}

Matrix quadrant(const Matrix& m, std::size_t qi, std::size_t qj) {
  const std::size_t h = m.rows / 2;
  Matrix q(h, h);
  for (std::size_t i = 0; i < h; ++i) {
    for (std::size_t j = 0; j < h; ++j) q.at(i, j) = m.at(qi * h + i, qj * h + j);
  }
  return q;
}

/// Plain (non-traced) Strassen.
Matrix strassen_seq(const Matrix& a, const Matrix& b) {
  if (a.rows <= kBase) return matmul_base(a, b);
  const std::size_t h = a.rows / 2;
  const Matrix a11 = quadrant(a, 0, 0), a12 = quadrant(a, 0, 1);
  const Matrix a21 = quadrant(a, 1, 0), a22 = quadrant(a, 1, 1);
  const Matrix b11 = quadrant(b, 0, 0), b12 = quadrant(b, 0, 1);
  const Matrix b21 = quadrant(b, 1, 0), b22 = quadrant(b, 1, 1);

  const Matrix m1 = strassen_seq(add(a11, a22), add(b11, b22));
  const Matrix m2 = strassen_seq(add(a21, a22), b11);
  const Matrix m3 = strassen_seq(a11, add(b12, b22, -1.0));
  const Matrix m4 = strassen_seq(a22, add(b21, b11, -1.0));
  const Matrix m5 = strassen_seq(add(a11, a12), b22);
  const Matrix m6 = strassen_seq(add(a21, a11, -1.0), add(b11, b12));
  const Matrix m7 = strassen_seq(add(a12, a22, -1.0), add(b21, b22));

  Matrix c(a.rows, a.cols);
  for (std::size_t i = 0; i < h; ++i) {
    for (std::size_t j = 0; j < h; ++j) {
      c.at(i, j) = m1.at(i, j) + m4.at(i, j) - m5.at(i, j) + m7.at(i, j);
      c.at(i, j + h) = m3.at(i, j) + m5.at(i, j);
      c.at(i + h, j) = m2.at(i, j) + m4.at(i, j);
      c.at(i + h, j + h) = m1.at(i, j) - m2.at(i, j) + m3.at(i, j) + m6.at(i, j);
    }
  }
  return c;
}

struct TracedVars {
  VarId quads, m, c;
};

/// Instrumented Strassen: the statement structure the detector sees.
Matrix strassen_traced(trace::TraceContext& ctx, const TracedVars& v, const Matrix& a,
                       const Matrix& b, std::uint64_t depth) {
  trace::FunctionScope f(ctx, "OptimizedStrassenMultiply", 1);
  if (a.rows <= kBase) {
    // Leaf work attributes to the enclosing product statement: the call CU
    // carries the cost of its whole subtree, as in Fig. 3.
    ctx.compute(3, static_cast<Cost>(2 * a.rows * a.rows * a.rows) / 64);
    return matmul_base(a, b);
  }
  {
    trace::StatementScope s(ctx, "decompose", 5);
    ctx.compute(5, 4);
    ctx.write(v.quads, depth, 5);
  }
  const std::size_t h = a.rows / 2;
  const Matrix a11 = quadrant(a, 0, 0), a12 = quadrant(a, 0, 1);
  const Matrix a21 = quadrant(a, 1, 0), a22 = quadrant(a, 1, 1);
  const Matrix b11 = quadrant(b, 0, 0), b12 = quadrant(b, 0, 1);
  const Matrix b21 = quadrant(b, 1, 0), b22 = quadrant(b, 1, 1);

  std::vector<Matrix> m(7);
  const char* names[7] = {"M1", "M2", "M3", "M4", "M5", "M6", "M7"};
  const Matrix lhs[7] = {add(a11, a22), add(a21, a22),        a11,
                         a22,           add(a11, a12),        add(a21, a11, -1.0),
                         add(a12, a22, -1.0)};
  const Matrix rhs[7] = {add(b11, b22), b11,
                         add(b12, b22, -1.0), add(b21, b11, -1.0),
                         b22,           add(b11, b12),
                         add(b21, b22)};
  for (int k = 0; k < 7; ++k) {
    trace::StatementScope s(ctx, names[k], static_cast<SourceLine>(7 + k));
    ctx.read(v.quads, depth, static_cast<SourceLine>(7 + k));
    m[static_cast<std::size_t>(k)] = strassen_traced(ctx, v, lhs[k], rhs[k], depth + 1);
    ctx.compute(static_cast<SourceLine>(7 + k), static_cast<Cost>(h * h * 5) / 32);
    ctx.write(v.m, depth * 8 + static_cast<std::uint64_t>(k), static_cast<SourceLine>(7 + k));
  }

  Matrix c(a.rows, a.cols);
  {
    // The combining loop: reads all seven products -> barrier (§IV-B).
    trace::LoopScope combine(ctx, "combine_loop", 16);
    for (std::size_t i = 0; i < h; ++i) {
      combine.begin_iteration();
      if (i == 0) {
        // The seven products are read once (row pointers hoisted).
        for (int k = 0; k < 7; ++k) {
          ctx.read(v.m, depth * 8 + static_cast<std::uint64_t>(k), 18);
        }
      }
      ctx.compute(18, (static_cast<Cost>(h) * 7) / 10 + 1);
      for (std::size_t j = 0; j < h; ++j) {
        c.at(i, j) = m[0].at(i, j) + m[3].at(i, j) - m[4].at(i, j) + m[6].at(i, j);
        c.at(i, j + h) = m[2].at(i, j) + m[4].at(i, j);
        c.at(i + h, j) = m[1].at(i, j) + m[3].at(i, j);
        c.at(i + h, j + h) = m[0].at(i, j) - m[1].at(i, j) + m[2].at(i, j) + m[5].at(i, j);
      }
      ctx.write(v.c, depth * 1024 + i, 19);
    }
  }
  return c;
}

struct Workload {
  Matrix a{kN, kN};
  Matrix b{kN, kN};
};

const Workload& workload() {
  static const Workload w = [] {
    Workload wl;
    Rng rng(5);
    wl.a.fill_random(rng);
    wl.b.fill_random(rng);
    return wl;
  }();
  return w;
}

class Strassen final : public Benchmark {
 public:
  const PaperRow& paper() const override {
    static const PaperRow row{"strassen", "BOTS", 399, 90.27, 8.93, 32, "Task parallelism"};
    return row;
  }

  void run_traced(trace::TraceContext& ctx) const override {
    const Workload& w = workload();
    TracedVars v{ctx.var("quads"), ctx.var("M"), ctx.var("C")};
    trace::FunctionScope fmain(ctx, "main", 1);
    {
      trace::FunctionScope finit(ctx, "init_matrix", 2);
      ctx.compute(2, 9700);  // hotspot holds ~90.3%
    }
    (void)strassen_traced(ctx, v, w.a, w.b, 0);
  }

  VerifyOutcome verify_parallel(std::size_t threads) const override {
    const Workload& w = workload();
    const Matrix expected = strassen_seq(w.a, w.b);
    const Matrix reference = matmul_base(w.a, w.b);

    // Parallel per the detected pattern: fork the seven products at the top
    // level, join, then run the combining loop.
    const std::size_t h = kN / 2;
    const Matrix a11 = quadrant(w.a, 0, 0), a12 = quadrant(w.a, 0, 1);
    const Matrix a21 = quadrant(w.a, 1, 0), a22 = quadrant(w.a, 1, 1);
    const Matrix b11 = quadrant(w.b, 0, 0), b12 = quadrant(w.b, 0, 1);
    const Matrix b21 = quadrant(w.b, 1, 0), b22 = quadrant(w.b, 1, 1);
    std::vector<Matrix> m(7);
    rt::ThreadPool pool(threads);
    {
      rt::TaskGroup workers(pool);
      workers.run([&] { m[0] = strassen_seq(add(a11, a22), add(b11, b22)); });
      workers.run([&] { m[1] = strassen_seq(add(a21, a22), b11); });
      workers.run([&] { m[2] = strassen_seq(a11, add(b12, b22, -1.0)); });
      workers.run([&] { m[3] = strassen_seq(a22, add(b21, b11, -1.0)); });
      workers.run([&] { m[4] = strassen_seq(add(a11, a12), b22); });
      workers.run([&] { m[5] = strassen_seq(add(a21, a11, -1.0), add(b11, b12)); });
      workers.run([&] { m[6] = strassen_seq(add(a12, a22, -1.0), add(b21, b22)); });
      workers.wait();
    }
    Matrix c(kN, kN);
    for (std::size_t i = 0; i < h; ++i) {
      for (std::size_t j = 0; j < h; ++j) {
        c.at(i, j) = m[0].at(i, j) + m[3].at(i, j) - m[4].at(i, j) + m[6].at(i, j);
        c.at(i, j + h) = m[2].at(i, j) + m[4].at(i, j);
        c.at(i + h, j) = m[1].at(i, j) + m[3].at(i, j);
        c.at(i + h, j + h) = m[0].at(i, j) - m[1].at(i, j) + m[2].at(i, j) + m[5].at(i, j);
      }
    }

    VerifyOutcome strassen_vs_seq = compare_results(c.data, expected.data, 1e-9);
    VerifyOutcome strassen_vs_classic = compare_results(c.data, reference.data, 1e-6);
    VerifyOutcome out;
    out.ok = strassen_vs_seq.ok && strassen_vs_classic.ok;
    out.detail = "vs sequential strassen: " + strassen_vs_seq.detail +
                 "; vs classic multiply: " + strassen_vs_classic.detail;
    return out;
  }

  VerifyOutcome verify_pat(std::size_t threads) const override {
    const Workload& w = workload();
    const Matrix expected = strassen_seq(w.a, w.b);
    const Matrix reference = matmul_base(w.a, w.b);

    // The seven products spawned from one parent task on the TaskPool: six
    // sit in the spawner's deque waiting to be stolen, the classic
    // divide-and-conquer shape. Each product writes its own slot.
    const std::size_t h = kN / 2;
    const Matrix a11 = quadrant(w.a, 0, 0), a12 = quadrant(w.a, 0, 1);
    const Matrix a21 = quadrant(w.a, 1, 0), a22 = quadrant(w.a, 1, 1);
    const Matrix b11 = quadrant(w.b, 0, 0), b12 = quadrant(w.b, 0, 1);
    const Matrix b21 = quadrant(w.b, 1, 0), b22 = quadrant(w.b, 1, 1);
    std::vector<Matrix> m(7);
    rt::ThreadPool pool(threads);
    {
      pat::TaskPool tasks(pool);
      tasks.submit([&] {
        tasks.submit([&] { m[0] = strassen_seq(add(a11, a22), add(b11, b22)); });
        tasks.submit([&] { m[1] = strassen_seq(add(a21, a22), b11); });
        tasks.submit([&] { m[2] = strassen_seq(a11, add(b12, b22, -1.0)); });
        tasks.submit([&] { m[3] = strassen_seq(a22, add(b21, b11, -1.0)); });
        tasks.submit([&] { m[4] = strassen_seq(add(a11, a12), b22); });
        tasks.submit([&] { m[5] = strassen_seq(add(a21, a11, -1.0), add(b11, b12)); });
        tasks.submit([&] { m[6] = strassen_seq(add(a12, a22, -1.0), add(b21, b22)); });
      });
      tasks.wait();
    }
    Matrix c(kN, kN);
    for (std::size_t i = 0; i < h; ++i) {
      for (std::size_t j = 0; j < h; ++j) {
        c.at(i, j) = m[0].at(i, j) + m[3].at(i, j) - m[4].at(i, j) + m[6].at(i, j);
        c.at(i, j + h) = m[2].at(i, j) + m[4].at(i, j);
        c.at(i + h, j) = m[1].at(i, j) + m[3].at(i, j);
        c.at(i + h, j + h) = m[0].at(i, j) - m[1].at(i, j) + m[2].at(i, j) + m[5].at(i, j);
      }
    }

    VerifyOutcome strassen_vs_seq = compare_results(c.data, expected.data, 1e-9);
    VerifyOutcome strassen_vs_classic = compare_results(c.data, reference.data, 1e-6);
    VerifyOutcome out;
    out.ok = strassen_vs_seq.ok && strassen_vs_classic.ok;
    out.detail = "vs sequential strassen: " + strassen_vs_seq.detail +
                 "; vs classic multiply: " + strassen_vs_classic.detail;
    return out;
  }

  sim::TaskDag build_sim_dag(const core::AnalysisResult& analysis) const override {
    (void)analysis;
    sim::DagBuilder builder;
    // Quadrant packing/unpacking at the root stays serial (~4% of the work).
    const sim::TaskIndex setup = builder.serial_task(kN * kN / 5);
    build_node(builder, kN, setup);
    return builder.take();
  }

 private:
  static sim::TaskIndex build_node(sim::DagBuilder& b, std::size_t n, sim::TaskIndex after) {
    if (n <= kBase) {
      return b.serial_task(static_cast<Cost>(2 * n * n * n) / 64, after);
    }
    const std::size_t h = n / 2;
    // Quadrant additions before the fork are serial in the parent.
    const sim::TaskIndex fork = b.serial_task(static_cast<Cost>(h * h) / 8 + 4, after);
    sim::TaskIndex products[7];
    for (auto& p : products) p = build_node(b, h, fork);
    // The combining loop.
    const sim::TaskIndex combine = b.serial_task(static_cast<Cost>(h * h) / 4 + 4);
    for (sim::TaskIndex p : products) b.link(combine, p);
    return combine;
  }
};

}  // namespace

const Benchmark& strassen_benchmark() {
  static const Strassen instance;
  return instance;
}

}  // namespace ppd::bs
