// BOTS `nqueens` (Table III row 15).
//
// Hotspot reproduced: the placement loop of the recursive nqueens search.
// Each iteration tries one column for the current row; the solution counter
// is the single variable written and read at one source line across
// iterations — Algorithm 3's reduction case. BOTS's parallel version
// privatizes the board per task and reduces the counts; the paper reports
// 8.38x at 32 threads. (The board itself is thread-private in any parallel
// implementation; the instrumentation models it as register-promoted local
// state, so the accumulator is the loop's only cross-iteration traffic.)
#include <cstdint>
#include <vector>

#include "bs/benchmark.hpp"
#include "bs/detail.hpp"
#include "pat/pat.hpp"
#include "rt/parallel.hpp"
#include "sim/lowering.hpp"

namespace ppd::bs {
namespace {

constexpr int kBoard = 8;

bool safe(const std::vector<int>& board, int row, int col) {
  for (int r = 0; r < row; ++r) {
    if (board[static_cast<std::size_t>(r)] == col) return false;
    if (board[static_cast<std::size_t>(r)] - r == col - row) return false;
    if (board[static_cast<std::size_t>(r)] + r == col + row) return false;
  }
  return true;
}

std::int64_t nqueens_plain(std::vector<int>& board, int row) {
  if (row == kBoard) return 1;
  std::int64_t solutions = 0;
  for (int col = 0; col < kBoard; ++col) {
    if (!safe(board, row, col)) continue;
    board[static_cast<std::size_t>(row)] = col;
    solutions += nqueens_plain(board, row + 1);
  }
  return solutions;
}

std::int64_t nqueens_traced(trace::TraceContext& ctx, VarId vsol, std::vector<int>& board,
                            int row) {
  trace::FunctionScope f(ctx, "nqueens", 1);
  if (row == kBoard) {
    ctx.compute(2, 1);
    return 1;
  }
  std::int64_t solutions = 0;
  trace::LoopScope loop(ctx, "placement_loop", 4);
  for (int col = 0; col < kBoard; ++col) {
    loop.begin_iteration();
    ctx.compute(5, static_cast<Cost>(3 * row + 1));  // the safety check
    if (!safe(board, row, col)) continue;
    board[static_cast<std::size_t>(row)] = col;
    const std::int64_t sub = nqueens_traced(ctx, vsol, board, row + 1);
    // solutions += sub: the reduction line.
    ctx.compute(7, 1);
    ctx.update(vsol, static_cast<std::uint64_t>(row), 7, trace::UpdateOp::Sum);
    solutions += sub;
  }
  return solutions;
}

class Nqueens final : public Benchmark {
 public:
  const PaperRow& paper() const override {
    static const PaperRow row{"nqueens", "BOTS", 118, 100.00, 8.38, 32, "Reduction"};
    return row;
  }

  void run_traced(trace::TraceContext& ctx) const override {
    const VarId vsol = ctx.var("solutions");
    std::vector<int> board(kBoard, -1);
    trace::FunctionScope fmain(ctx, "main", 1);
    (void)nqueens_traced(ctx, vsol, board, 0);
  }

  VerifyOutcome verify_parallel(std::size_t threads) const override {
    std::vector<int> seq_board(kBoard, -1);
    const std::int64_t expected = nqueens_plain(seq_board, 0);

    // Parallel per the detected reduction: the first row's placements
    // partition the search space; each task explores its subtree with a
    // private board, partial counts reduce at the end.
    rt::ThreadPool pool(threads);
    const std::int64_t total = rt::parallel_reduce<std::int64_t>(
        pool, 0, kBoard, 0,
        [](std::int64_t acc, std::uint64_t col) {
          std::vector<int> board(kBoard, -1);
          board[0] = static_cast<int>(col);
          return acc + nqueens_plain(board, 1);
        },
        [](std::int64_t a, std::int64_t b) { return a + b; });

    VerifyOutcome out;
    out.ok = total == expected;
    out.detail = "solutions = " + std::to_string(total) + ", expected " +
                 std::to_string(expected) + " (92 for 8x8)";
    return out;
  }

  VerifyOutcome verify_pat(std::size_t threads) const override {
    std::vector<int> seq_board(kBoard, -1);
    const std::int64_t expected = nqueens_plain(seq_board, 0);

    // The same privatized reduction on the pattern runtime; guided chunks
    // soak up the irregular subtree sizes.
    rt::ThreadPool pool(threads);
    pat::ForOptions options;
    options.chunking = pat::Chunking::Guided;
    const std::int64_t total = pat::parallel_for_reduce(
        pool, 0, kBoard, std::int64_t{0},
        [](std::int64_t acc, std::uint64_t col) {
          std::vector<int> board(kBoard, -1);
          board[0] = static_cast<int>(col);
          return acc + nqueens_plain(board, 1);
        },
        [](std::int64_t a, std::int64_t b) { return a + b; }, options);

    VerifyOutcome out;
    out.ok = total == expected;
    out.detail = "solutions = " + std::to_string(total) + ", expected " +
                 std::to_string(expected) + " (92 for 8x8)";
    return out;
  }

  sim::TaskDag build_sim_dag(const core::AnalysisResult& analysis) const override {
    // Implemented version: tasks per first-two-rows placement with a final
    // count reduction. Subtree sizes are irregular; lower_loop's uniform
    // blocks over the recorded total keep the aggregate work right and the
    // spread is modelled by a deeper fan-out.
    const pet::PetNode& root = pet_node_named(analysis, "nqueens");
    sim::DagBuilder builder;
    // Search-tree imbalance and the serial board setup (~8%) bound the
    // scaling the way BOTS observed (~8.4x at 32 threads).
    const sim::TaskIndex setup = builder.serial_task(root.inclusive_cost * 8 / 100);
    auto tasks =
        builder.lower_loop(kBoard * kBoard, root.inclusive_cost, core::LoopClass::Reduction, 24);
    builder.before_loop(tasks, setup);
    return builder.take();
  }

  std::optional<staticdet::LoopModel> reduction_source_model() const override {
    staticdet::LoopModel loop;
    loop.name = "nqueens_placement_loop";
    // The loop body recurses; Sambamba's analysis cannot process the
    // recursive task structure at all (the paper's NA entry).
    loop.unsupported_by_sambamba = true;
    staticdet::Stmt call;
    call.line = 6;
    call.op = staticdet::Op::Call;
    call.callee = "nqueens";
    call.recursive_call = true;
    loop.body.push_back(call);
    staticdet::Stmt acc;
    acc.line = 7;
    acc.op = staticdet::Op::AddAssign;
    acc.target = staticdet::TargetKind::ScalarLocal;
    acc.target_name = "solutions";
    acc.reads = {"sub"};
    loop.body.push_back(acc);
    return loop;
  }
};

}  // namespace

const Benchmark& nqueens_benchmark() {
  static const Nqueens instance;
  return instance;
}

}  // namespace ppd::bs
