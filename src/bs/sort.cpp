// BOTS `sort` / cilksort (Table III row 8; Table V row 2; Figure 3).
//
// Hotspot reproduced: cilksort() splits the array into quarters, sorts each
// quarter recursively, merges quarter pairs into a temporary, and merges
// the two halves back. The instrumented statements are the CUs of Fig. 3:
// the partition statement (CU_0) forks the four recursive sorts (CU_1..4);
// the two pair merges (CU_5, CU_6) are barriers for their sorts and can run
// in parallel with each other (no directed path between them); the final
// merge (CU_7) is a barrier for both. BOTS's task-parallel implementation
// of exactly this structure reaches 3.67x at 32 threads.
#include <algorithm>
#include <cstdint>
#include <vector>

#include "bs/benchmark.hpp"
#include "bs/detail.hpp"
#include "pat/pat.hpp"
#include "rt/parallel.hpp"
#include "sim/lowering.hpp"

namespace ppd::bs {
namespace {

constexpr std::size_t kElems = 4096;
constexpr std::size_t kCutoff = 64;

std::vector<std::uint64_t> make_input() {
  std::vector<std::uint64_t> v(kElems);
  Rng rng(77);
  for (auto& x : v) x = rng.next();
  return v;
}

/// Bottom-up insertion sort for leaf ranges (the "quick sort" leaf of the
/// original uses a cutoff, too).
void leaf_sort(std::uint64_t* lo, std::uint64_t* hi) {
  for (std::uint64_t* i = lo + 1; i < hi; ++i) {
    std::uint64_t key = *i;
    std::uint64_t* j = i;
    while (j > lo && *(j - 1) > key) {
      *j = *(j - 1);
      --j;
    }
    *j = key;
  }
}

void merge_ranges(const std::uint64_t* a_lo, const std::uint64_t* a_hi,
                  const std::uint64_t* b_lo, const std::uint64_t* b_hi,
                  std::uint64_t* out) {
  while (a_lo < a_hi && b_lo < b_hi) *out++ = (*a_lo <= *b_lo) ? *a_lo++ : *b_lo++;
  while (a_lo < a_hi) *out++ = *a_lo++;
  while (b_lo < b_hi) *out++ = *b_lo++;
}

/// Sequential cilksort over data[lo, hi) using tmp as scratch.
void cilksort_seq(std::vector<std::uint64_t>& data, std::vector<std::uint64_t>& tmp,
                  std::size_t lo, std::size_t hi) {
  const std::size_t n = hi - lo;
  if (n <= kCutoff) {
    leaf_sort(data.data() + lo, data.data() + hi);
    return;
  }
  const std::size_t q = n / 4;
  const std::size_t a = lo;
  const std::size_t b = lo + q;
  const std::size_t c = lo + 2 * q;
  const std::size_t d = lo + 3 * q;
  cilksort_seq(data, tmp, a, b);
  cilksort_seq(data, tmp, b, c);
  cilksort_seq(data, tmp, c, d);
  cilksort_seq(data, tmp, d, hi);
  merge_ranges(data.data() + a, data.data() + b, data.data() + b, data.data() + c,
               tmp.data() + a);
  merge_ranges(data.data() + c, data.data() + d, data.data() + d, data.data() + hi,
               tmp.data() + c);
  merge_ranges(tmp.data() + a, tmp.data() + c, tmp.data() + c, tmp.data() + hi,
               data.data() + a);
}

struct TracedVars {
  VarId bounds, a, tmp;
};

void cilksort_traced(trace::TraceContext& ctx, const TracedVars& v,
                     std::vector<std::uint64_t>& data, std::vector<std::uint64_t>& tmp,
                     std::size_t lo, std::size_t hi, std::uint64_t depth) {
  trace::FunctionScope f(ctx, "cilksort", 1);
  const std::size_t n = hi - lo;
  if (n <= kCutoff) {
    // Leaf work attributes to the enclosing sort_q* statement: the call CU
    // carries the cost of its whole subtree, as in Fig. 3.
    ctx.read(v.a, lo, 3);
    ctx.compute(3, static_cast<Cost>(n) * 6);
    leaf_sort(data.data() + lo, data.data() + hi);
    ctx.write(v.a, lo, 3);
    ctx.write(v.a, hi - 1, 3);
    return;
  }
  const std::size_t q = n / 4;
  const std::size_t quarters[5] = {lo, lo + q, lo + 2 * q, lo + 3 * q, hi};
  {
    // CU_0: computing the quarter bounds forks the four sorts.
    trace::StatementScope s(ctx, "partition", 5);
    ctx.compute(5, 2);
    ctx.write(v.bounds, depth, 5);
  }
  const char* names[4] = {"sort_q1", "sort_q2", "sort_q3", "sort_q4"};
  for (int k = 0; k < 4; ++k) {
    trace::StatementScope s(ctx, names[k], static_cast<SourceLine>(7 + k));
    ctx.read(v.bounds, depth, static_cast<SourceLine>(7 + k));
    cilksort_traced(ctx, v, data, tmp, quarters[k], quarters[k + 1], depth + 1);
    // The call statement's effect: the quarter is now sorted in place.
    ctx.write(v.a, quarters[k], static_cast<SourceLine>(7 + k));
    ctx.write(v.a, quarters[k + 1] - 1, static_cast<SourceLine>(7 + k));
  }
  {
    // CU_5: merge quarters 1+2 into tmp's first half.
    trace::StatementScope s(ctx, "merge_q1q2", 12);
    ctx.read(v.a, quarters[0], 12);
    ctx.read(v.a, quarters[1] - 1, 12);
    ctx.read(v.a, quarters[1], 12);
    ctx.read(v.a, quarters[2] - 1, 12);
    ctx.compute(12, static_cast<Cost>(quarters[2] - quarters[0]));
    merge_ranges(data.data() + quarters[0], data.data() + quarters[1],
                 data.data() + quarters[1], data.data() + quarters[2],
                 tmp.data() + quarters[0]);
    ctx.write(v.tmp, quarters[0], 12);
    ctx.write(v.tmp, quarters[2] - 1, 12);
  }
  {
    // CU_6: merge quarters 3+4 into tmp's second half.
    trace::StatementScope s(ctx, "merge_q3q4", 13);
    ctx.read(v.a, quarters[2], 13);
    ctx.read(v.a, quarters[3] - 1, 13);
    ctx.read(v.a, quarters[3], 13);
    ctx.read(v.a, quarters[4] - 1, 13);
    ctx.compute(13, static_cast<Cost>(quarters[4] - quarters[2]));
    merge_ranges(data.data() + quarters[2], data.data() + quarters[3],
                 data.data() + quarters[3], data.data() + quarters[4],
                 tmp.data() + quarters[2]);
    ctx.write(v.tmp, quarters[2], 13);
    ctx.write(v.tmp, quarters[4] - 1, 13);
  }
  {
    // CU_7: merge the two halves of tmp back into the array.
    trace::StatementScope s(ctx, "merge_final", 14);
    ctx.read(v.tmp, quarters[0], 14);
    ctx.read(v.tmp, quarters[2] - 1, 14);
    ctx.read(v.tmp, quarters[2], 14);
    ctx.read(v.tmp, quarters[4] - 1, 14);
    ctx.compute(14, static_cast<Cost>(quarters[4] - quarters[0]));
    merge_ranges(tmp.data() + quarters[0], tmp.data() + quarters[2],
                 tmp.data() + quarters[2], tmp.data() + quarters[4],
                 data.data() + quarters[0]);
    ctx.write(v.a, quarters[0], 14);
    ctx.write(v.a, quarters[4] - 1, 14);
  }
}

class Sort final : public Benchmark {
 public:
  const PaperRow& paper() const override {
    static const PaperRow row{"sort", "BOTS", 305, 94.89, 3.67, 32, "Task parallelism"};
    return row;
  }

  void run_traced(trace::TraceContext& ctx) const override {
    std::vector<std::uint64_t> data = make_input();
    std::vector<std::uint64_t> tmp(kElems, 0);
    TracedVars v{ctx.var("bounds"), ctx.var("A"), ctx.var("tmp")};
    trace::FunctionScope fmain(ctx, "main", 1);
    {
      trace::FunctionScope finit(ctx, "fill_array", 2);
      ctx.compute(2, 1650);  // input generation: hotspot holds ~94.9%
    }
    cilksort_traced(ctx, v, data, tmp, 0, kElems, 0);
  }

  VerifyOutcome verify_parallel(std::size_t threads) const override {
    std::vector<std::uint64_t> expected = make_input();
    {
      std::vector<std::uint64_t> tmp(kElems, 0);
      cilksort_seq(expected, tmp, 0, kElems);
    }

    // Parallel per the detected pattern: fork the four quarter sorts, join,
    // run the two pair merges in parallel (parallel barriers), then the
    // final merge.
    std::vector<std::uint64_t> data = make_input();
    std::vector<std::uint64_t> tmp(kElems, 0);
    rt::ThreadPool pool(threads);
    const std::size_t q = kElems / 4;
    {
      rt::TaskGroup sorts(pool);
      for (int k = 0; k < 4; ++k) {
        sorts.run([&data, &tmp, k, q] {
          std::vector<std::uint64_t> scratch(kElems, 0);
          cilksort_seq(data, scratch, static_cast<std::size_t>(k) * q,
                       (static_cast<std::size_t>(k) + 1) * q);
        });
      }
      sorts.wait();
    }
    {
      rt::TaskGroup merges(pool);
      merges.run([&] {
        merge_ranges(data.data(), data.data() + q, data.data() + q, data.data() + 2 * q,
                     tmp.data());
      });
      merges.run([&] {
        merge_ranges(data.data() + 2 * q, data.data() + 3 * q, data.data() + 3 * q,
                     data.data() + kElems, tmp.data() + 2 * q);
      });
      merges.wait();
    }
    merge_ranges(tmp.data(), tmp.data() + 2 * q, tmp.data() + 2 * q, tmp.data() + kElems,
                 data.data());

    VerifyOutcome out;
    out.ok = data == expected;
    out.detail = out.ok ? "sorted output matches sequential cilksort"
                        : "parallel sort output differs";
    return out;
  }

  VerifyOutcome verify_pat(std::size_t threads) const override {
    std::vector<std::uint64_t> expected = make_input();
    {
      std::vector<std::uint64_t> tmp(kElems, 0);
      cilksort_seq(expected, tmp, 0, kElems);
    }

    // The same fork/join phases on the work-stealing TaskPool: the quarter
    // sorts as one spawn episode, the pair merges as the next, the final
    // merge serial — the detected CU graph's barriers become wait()s.
    std::vector<std::uint64_t> data = make_input();
    std::vector<std::uint64_t> tmp(kElems, 0);
    rt::ThreadPool pool(threads);
    const std::size_t q = kElems / 4;
    {
      pat::TaskPool sorts(pool);
      sorts.submit([&] {
        // One parent task fans out the quarters so three of them sit in a
        // single worker's deque — stealing is what spreads them.
        for (int k = 0; k < 4; ++k) {
          sorts.submit([&data, k, q] {
            std::vector<std::uint64_t> scratch(kElems, 0);
            cilksort_seq(data, scratch, static_cast<std::size_t>(k) * q,
                         (static_cast<std::size_t>(k) + 1) * q);
          });
        }
      });
      sorts.wait();
    }
    {
      pat::TaskPool merges(pool);
      merges.submit([&] {
        merge_ranges(data.data(), data.data() + q, data.data() + q, data.data() + 2 * q,
                     tmp.data());
      });
      merges.submit([&] {
        merge_ranges(data.data() + 2 * q, data.data() + 3 * q, data.data() + 3 * q,
                     data.data() + kElems, tmp.data() + 2 * q);
      });
      merges.wait();
    }
    merge_ranges(tmp.data(), tmp.data() + 2 * q, tmp.data() + 2 * q, tmp.data() + kElems,
                 data.data());

    VerifyOutcome out;
    out.ok = data == expected;
    out.detail = out.ok ? "sorted output matches sequential cilksort"
                        : "parallel sort output differs";
    return out;
  }

  sim::TaskDag build_sim_dag(const core::AnalysisResult& analysis) const override {
    (void)analysis;
    // The implemented recursion: 4-way sorts + 2 pair merges + final merge
    // per node, with merge costs linear in the range. Built directly over
    // the workload's own sizes.
    sim::DagBuilder builder;
    const sim::TaskIndex setup = builder.serial_task(kElems);  // ~8% serial setup
    build_node(builder, kElems, setup);
    return builder.take();
  }

 private:
  static sim::TaskIndex build_node(sim::DagBuilder& b, std::size_t n, sim::TaskIndex after) {
    if (n <= kCutoff) {
      // Leaf sort: ~n log n comparisons.
      return b.serial_task(static_cast<Cost>(n * 6), after);
    }
    const std::size_t q = n / 4;
    const sim::TaskIndex fork = b.serial_task(2, after);
    sim::TaskIndex s1 = build_node(b, q, fork);
    sim::TaskIndex s2 = build_node(b, q, fork);
    sim::TaskIndex s3 = build_node(b, q, fork);
    sim::TaskIndex s4 = build_node(b, n - 3 * q, fork);
    const sim::TaskIndex m12 = b.serial_task(static_cast<Cost>(2 * q));
    b.link(m12, s1);
    b.link(m12, s2);
    const sim::TaskIndex m34 = b.serial_task(static_cast<Cost>(n - 2 * q));
    b.link(m34, s3);
    b.link(m34, s4);
    const sim::TaskIndex final_merge = b.serial_task(static_cast<Cost>(n));
    b.link(final_merge, m12);
    b.link(final_merge, m34);
    return final_merge;
  }
};

}  // namespace

const Benchmark& sort_benchmark() {
  static const Sort instance;
  return instance;
}

}  // namespace ppd::bs
