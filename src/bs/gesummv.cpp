// Polybench `gesummv` (Table III row 17; Table VI).
//
// Hotspot reproduced: y = alpha·A·x + beta·B·x. The inner loop accumulates
// *two* reduction variables per row — tmp[i] (the A·x partial) and y[i]
// (the B·x partial) — each written and read at exactly one source line
// across inner-loop iterations; the tool reports both (§IV-D). The outer
// row loop is a do-all. The paper implements the reduction by hand and
// reports 5.06x at 8 threads.
#include <vector>

#include "bs/benchmark.hpp"
#include "bs/detail.hpp"
#include "pat/pat.hpp"
#include "rt/parallel.hpp"
#include "sim/lowering.hpp"

namespace ppd::bs {
namespace {

constexpr std::size_t kN = 64;
constexpr double kAlpha = 1.5;
constexpr double kBeta = 1.2;

struct Workload {
  Matrix a{kN, kN};
  Matrix b{kN, kN};
  std::vector<double> x = std::vector<double>(kN);
};

const Workload& workload() {
  static const Workload w = [] {
    Workload wl;
    Rng rng(314);
    wl.a.fill_random(rng);
    wl.b.fill_random(rng);
    for (double& v : wl.x) v = rng.uniform();
    return wl;
  }();
  return w;
}

void gesummv_row(const Workload& w, std::vector<double>& y, std::size_t i) {
  double tmp = 0.0;
  double acc = 0.0;
  for (std::size_t j = 0; j < kN; ++j) {
    tmp += w.a.at(i, j) * w.x[j];
    acc += w.b.at(i, j) * w.x[j];
  }
  y[i] = kAlpha * tmp + kBeta * acc;
}

class Gesummv final : public Benchmark {
 public:
  const PaperRow& paper() const override {
    static const PaperRow row{"gesummv", "Polybench", 188, 65.33, 5.06, 8, "Reduction"};
    return row;
  }

  void run_traced(trace::TraceContext& ctx) const override {
    const Workload& w = workload();
    std::vector<double> y(kN, 0.0);

    const VarId vtmp = ctx.var("tmp");
    const VarId vy = ctx.var("y");

    trace::FunctionScope fmain(ctx, "main", 1);
    {
      trace::FunctionScope finit(ctx, "init_array", 2);
      ctx.compute(2, 17090);  // hotspot holds ~65.3%
    }
    {
      trace::FunctionScope fk(ctx, "kernel_gesummv", 4);
      trace::LoopScope li(ctx, "row_loop", 5);
      for (std::size_t i = 0; i < kN; ++i) {
        li.begin_iteration();
        gesummv_row(w, y, i);
        {
          trace::LoopScope lj(ctx, "accumulate_loop", 7);
          for (std::size_t j = 0; j < kN; ++j) {
            lj.begin_iteration();
            // tmp[i] += A[i][j] * x[j]
            ctx.compute(8, 2);
            ctx.update(vtmp, i, 8, trace::UpdateOp::Sum);
            // y[i] += B[i][j] * x[j]
            ctx.compute(9, 2);
            ctx.update(vy, i, 9, trace::UpdateOp::Sum);
          }
        }
        // y[i] = alpha*tmp[i] + beta*y[i]
        ctx.read(vtmp, i, 11);
        ctx.read(vy, i, 11);
        ctx.compute(11, 3);
        ctx.write(vy, i, 11);
      }
    }
  }

  VerifyOutcome verify_parallel(std::size_t threads) const override {
    const Workload& w = workload();
    std::vector<double> y_seq(kN, 0.0);
    for (std::size_t i = 0; i < kN; ++i) gesummv_row(w, y_seq, i);

    std::vector<double> y_par(kN, 0.0);
    rt::ThreadPool pool(threads);
    // Rows are independent; within a row the two accumulators reduce over
    // column chunks.
    rt::parallel_for(pool, 0, kN, [&](std::uint64_t i) {
      gesummv_row(w, y_par, static_cast<std::size_t>(i));
    });
    return compare_results(y_seq, y_par);
  }

  VerifyOutcome verify_pat(std::size_t threads) const override {
    const Workload& w = workload();
    std::vector<double> y_seq(kN, 0.0);
    for (std::size_t i = 0; i < kN; ++i) gesummv_row(w, y_seq, i);

    // Row do-all on the pattern runtime (rows independent, y[i] private to
    // its row).
    std::vector<double> y_par(kN, 0.0);
    rt::ThreadPool pool(threads);
    pat::parallel_for(pool, 0, kN, [&](std::uint64_t i) {
      gesummv_row(w, y_par, static_cast<std::size_t>(i));
    });
    return compare_results(y_seq, y_par);
  }

  sim::TaskDag build_sim_dag(const core::AnalysisResult& analysis) const override {
    const pet::PetNode& loop = pet_node_named(analysis, "row_loop");
    sim::DagBuilder builder;
    (void)builder.lower_loop(loop.iterations, loop.inclusive_cost, core::LoopClass::Reduction,
                             32);
    return builder.take();
  }

  sim::SimParams sim_params(const core::AnalysisResult& analysis) const override {
    sim::SimParams params;
    // Streams two matrices: bandwidth-bound at ~8 threads (paper: 5.06x@8).
    const pet::PetNode& loop = pet_node_named(analysis, "row_loop");
    params.memory_work = loop.inclusive_cost;
    params.memory_scale_limit = 5;
    return params;
  }

  std::optional<staticdet::LoopModel> reduction_source_model() const override {
    staticdet::LoopModel loop;
    loop.name = "gesummv_accumulate_loop";
    staticdet::Stmt tmp_acc;
    tmp_acc.line = 8;
    tmp_acc.op = staticdet::Op::AddAssign;
    tmp_acc.target = staticdet::TargetKind::ArrayElement;  // tmp[i] via pointer parameter
    tmp_acc.target_name = "tmp";
    tmp_acc.reads = {"A", "x"};
    loop.body.push_back(tmp_acc);
    staticdet::Stmt y_acc;
    y_acc.line = 9;
    y_acc.op = staticdet::Op::AddAssign;
    y_acc.target = staticdet::TargetKind::ArrayElement;
    y_acc.target_name = "y";
    y_acc.reads = {"B", "x"};
    loop.body.push_back(y_acc);
    return loop;
  }
};

}  // namespace

const Benchmark& gesummv_benchmark() {
  static const Gesummv instance;
  return instance;
}

}  // namespace ppd::bs
