// Polybench `ludcmp` (Table III row 1; Table IV row 1).
//
// Hotspot reproduced (DESIGN.md §5): the two dependent loops of
// kernel_ludcmp. The first loop is a do-all computing the right-hand side
// b[i] = A[i]·x0 (heavy, O(N) per iteration); the second is the
// substitution recurrence y[i] = b[i] - A[i][i-1]·y[i-1] with a genuine
// inter-iteration dependence. Iteration i of the second loop reads b[i]
// written by iteration i of the first: a one-to-one dependence, i.e. a
// perfect multi-loop pipeline (a=1, b=0, e=1). The paper implements the
// pipeline with the first stage additionally parallelized as a do-all and
// reports 14.06x at 32 threads.
#include <vector>

#include "bs/benchmark.hpp"
#include "bs/detail.hpp"
#include "pat/pat.hpp"
#include "rt/parallel.hpp"
#include "sim/lowering.hpp"

namespace ppd::bs {
namespace {

constexpr std::size_t kN = 64;

struct Workload {
  Matrix a{kN, kN};
  std::vector<double> x0 = std::vector<double>(kN);
};

const Workload& workload() {
  static const Workload w = [] {
    Workload wl;
    Rng rng(42);
    wl.a.fill_random(rng);
    for (double& v : wl.x0) v = rng.uniform();
    return wl;
  }();
  return w;
}

void stage1(const Workload& w, std::vector<double>& b, std::size_t i) {
  double sum = 0.0;
  for (std::size_t k = 0; k < kN; ++k) sum += w.a.at(i, k) * w.x0[k];
  b[i] = sum;
}

void stage2(const Workload& w, const std::vector<double>& b, std::vector<double>& y,
            std::size_t i) {
  y[i] = i == 0 ? b[i] : b[i] - 0.5 * w.a.at(i, i - 1) * y[i - 1];
}

void run_sequential(const Workload& w, std::vector<double>& b, std::vector<double>& y) {
  for (std::size_t i = 0; i < kN; ++i) stage1(w, b, i);
  for (std::size_t i = 0; i < kN; ++i) stage2(w, b, y, i);
}

class Ludcmp final : public Benchmark {
 public:
  const PaperRow& paper() const override {
    static const PaperRow row{"ludcmp", "Polybench", 135, 88.64, 14.06, 32,
                              "Multi-loop pipeline"};
    return row;
  }

  void run_traced(trace::TraceContext& ctx) const override {
    const Workload& w = workload();
    std::vector<double> b(kN, 0.0);
    std::vector<double> y(kN, 0.0);

    const VarId va = ctx.var("A");
    const VarId vb = ctx.var("b");
    const VarId vy = ctx.var("y");

    trace::FunctionScope fmain(ctx, "main", 1);
    {
      // Array setup outside the hotspot (sized so the kernel holds the
      // paper's ~88.6% of the executed instructions).
      trace::FunctionScope finit(ctx, "init_array", 2);
      ctx.compute(2, 1120);
    }
    {
      trace::FunctionScope fk(ctx, "kernel_ludcmp", 4);
      {
        trace::LoopScope l1(ctx, "ludcmp_L1", 6);
        for (std::size_t i = 0; i < kN; ++i) {
          l1.begin_iteration();
          ctx.read(va, workload().a.index(i, 0), 7);
          ctx.compute(7, 2 * kN);  // the A[i]·x0 dot product
          stage1(w, b, i);
          ctx.write(vb, i, 8);
        }
      }
      {
        trace::LoopScope l2(ctx, "ludcmp_L2", 10);
        for (std::size_t i = 0; i < kN; ++i) {
          l2.begin_iteration();
          ctx.read(vb, i, 11);
          if (i > 0) ctx.read(vy, i - 1, 11);
          ctx.compute(11, 2);
          stage2(w, b, y, i);
          ctx.write(vy, i, 11);
        }
      }
    }
  }

  VerifyOutcome verify_parallel(std::size_t threads) const override {
    const Workload& w = workload();
    std::vector<double> b_seq(kN, 0.0);
    std::vector<double> y_seq(kN, 0.0);
    run_sequential(w, b_seq, y_seq);

    std::vector<double> b_par(kN, 0.0);
    std::vector<double> y_par(kN, 0.0);
    rt::ThreadPool pool(threads);
    // The detected pipeline: y-iteration j needs x-iterations [0, j+1)
    // (a=1, b=0); stage 1 is itself a do-all.
    rt::pipelined_loop_pair(
        pool, kN, kN, [](std::uint64_t j) { return j + 1; },
        [&](std::uint64_t i) { stage1(w, b_par, static_cast<std::size_t>(i)); },
        [&](std::uint64_t j) { stage2(w, b_par, y_par, static_cast<std::size_t>(j)); },
        /*x_doall=*/true);
    return compare_results(y_seq, y_par);
  }

  VerifyOutcome verify_pat(std::size_t threads) const override {
    const Workload& w = workload();
    std::vector<double> b_seq(kN, 0.0);
    std::vector<double> y_seq(kN, 0.0);
    run_sequential(w, b_seq, y_seq);

    // The detected pipeline on the pattern runtime: row blocks stream
    // through a farm running the do-all stage 1 (blocks are independent);
    // the ordered sink runs the substitution recurrence, which by the a=1,
    // b=0 dependence only ever reads b rows from blocks already delivered.
    std::vector<double> b_par(kN, 0.0);
    std::vector<double> y_par(kN, 0.0);
    rt::ThreadPool pool(threads);
    constexpr std::size_t kBlock = 8;
    std::uint64_t next_block = 0;
    pat::Pipeline<std::uint64_t> pipe(pool);
    pipe.farm(
        [&](std::uint64_t block) {
          const std::size_t lo = static_cast<std::size_t>(block) * kBlock;
          for (std::size_t i = lo; i < lo + kBlock; ++i) stage1(w, b_par, i);
          return block;
        },
        4);
    pipe.run(
        [&]() -> std::optional<std::uint64_t> {
          if (next_block >= kN / kBlock) return std::nullopt;
          return next_block++;
        },
        [&](std::uint64_t block) {
          const std::size_t lo = static_cast<std::size_t>(block) * kBlock;
          for (std::size_t i = lo; i < lo + kBlock; ++i) stage2(w, b_par, y_par, i);
        });
    return compare_results(y_seq, y_par);
  }

  sim::TaskDag build_sim_dag(const core::AnalysisResult& analysis) const override {
    const pet::PetNode& l1 = pet_node_named(analysis, "ludcmp_L1");
    const pet::PetNode& l2 = pet_node_named(analysis, "ludcmp_L2");
    sim::DagBuilder builder;
    auto x = builder.lower_loop(l1.iterations, l1.inclusive_cost, core::LoopClass::DoAll, 64);
    auto y =
        builder.lower_loop(l2.iterations, l2.inclusive_cost, core::LoopClass::Sequential, 64);
    const prof::LoopPairKey key{l1.region, l2.region};
    auto it = analysis.profile.loop_pairs.find(key);
    if (it != analysis.profile.loop_pairs.end()) builder.link_pairs(x, y, it->second);
    return builder.take();
  }
};

}  // namespace

const Benchmark& ludcmp_benchmark() {
  static const Ludcmp instance;
  return instance;
}

}  // namespace ppd::bs
