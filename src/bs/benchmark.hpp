// Benchmark-suite interface.
//
// Each of the paper's 17 evaluation applications (plus the two synthetic
// reduction kernels of Table VI) is reimplemented here as its *hotspot*: the
// same loop structure, the same dependence structure, the same data-flow
// shape (DESIGN.md §5). Every benchmark provides:
//
//  * run_traced()       — the instrumented sequential kernel (what the
//                         paper's LLVM pass would profile);
//  * verify_parallel()  — executes the sequential kernel and the parallel
//                         implementation of the *detected* pattern on the
//                         real thread-pool runtime and compares outputs;
//  * build_sim_dag()    — the task DAG of the implemented parallel version
//                         for the virtual-time simulator (Table III's
//                         speedup column; see DESIGN.md substitution table);
//  * paper()            — the Table III row the paper reports, for
//                         side-by-side comparison in EXPERIMENTS.md.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/analyzer.hpp"
#include "sim/task_dag.hpp"
#include "staticdet/source_model.hpp"
#include "trace/context.hpp"

namespace ppd::bs {

/// The paper's Table III row for one application.
struct PaperRow {
  const char* name;
  const char* suite;
  int loc;             ///< LOC of the original application
  double hotspot_pct;  ///< "Exec Inst % in Hotspot"
  double speedup;      ///< best measured speedup
  int threads;         ///< thread count at best speedup
  const char* pattern;  ///< "Detected Pattern"
};

/// Outcome of the sequential-vs-parallel output comparison.
struct VerifyOutcome {
  bool ok = false;
  std::string detail;
};

/// One reproduced application.
class Benchmark {
 public:
  virtual ~Benchmark() = default;

  [[nodiscard]] virtual const PaperRow& paper() const = 0;

  /// Runs the instrumented sequential kernel, emitting the full event
  /// stream into `ctx`.
  virtual void run_traced(trace::TraceContext& ctx) const = 0;

  /// Runs sequential and parallel versions (parallel per the detected
  /// pattern, on the real thread-pool runtime) and compares outputs.
  [[nodiscard]] virtual VerifyOutcome verify_parallel(std::size_t threads) const = 0;

  /// Same comparison, but the parallel side runs on the ppd::pat pattern
  /// runtime (parallel_for_reduce / Pipeline / TaskPool) instead of the raw
  /// rt primitives. The execution-verification suite (ctest -L execverify)
  /// runs this at jobs {1, 2, 4, 8} and requires identical results at every
  /// width.
  [[nodiscard]] virtual VerifyOutcome verify_pat(std::size_t threads) const = 0;

  /// Task DAG of the implemented parallel version, with costs taken from
  /// the analysis of this benchmark's own trace.
  [[nodiscard]] virtual sim::TaskDag build_sim_dag(
      const core::AnalysisResult& analysis) const = 0;

  /// Overhead/bandwidth model for the simulator (streaming kernels override
  /// this with a memory term).
  [[nodiscard]] virtual sim::SimParams sim_params(
      const core::AnalysisResult& analysis) const {
    (void)analysis;
    return {};
  }

  /// Static source model of the reduction loop for the Table VI baselines
  /// (only the reduction benchmarks provide one).
  [[nodiscard]] virtual std::optional<staticdet::LoopModel> reduction_source_model() const {
    return std::nullopt;
  }
};

/// All registered benchmarks, in Table III order.
[[nodiscard]] const std::vector<const Benchmark*>& all_benchmarks();

/// Lookup by name; nullptr if unknown.
[[nodiscard]] const Benchmark* find_benchmark(std::string_view name);

/// Convenience: trace the benchmark into a fresh context and run the full
/// pattern analysis.
struct TracedAnalysis {
  std::unique_ptr<trace::TraceContext> ctx;
  core::AnalysisResult analysis;
};
[[nodiscard]] TracedAnalysis analyze_benchmark(const Benchmark& benchmark,
                                               core::AnalyzerConfig config = {});

}  // namespace ppd::bs
