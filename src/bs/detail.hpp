// Shared helpers for the benchmark kernels.
#pragma once

#include <cmath>
#include <cstdint>
#include <string_view>
#include <vector>

#include "bs/benchmark.hpp"
#include "core/analyzer.hpp"
#include "pet/pet.hpp"
#include "support/assert.hpp"

namespace ppd::bs {

/// Deterministic xorshift PRNG so every run profiles the same input.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed == 0 ? 0x9e3779b97f4a7c15ull : seed) {}

  std::uint64_t next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) / 9007199254740992.0;  // 2^53
  }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }

 private:
  std::uint64_t state_;
};

/// Row-major dense matrix.
struct Matrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<double> data;

  Matrix() = default;
  Matrix(std::size_t r, std::size_t c) : rows(r), cols(c), data(r * c, 0.0) {}

  double& at(std::size_t r, std::size_t c) { return data[r * cols + c]; }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const { return data[r * cols + c]; }
  [[nodiscard]] std::uint64_t index(std::size_t r, std::size_t c) const {
    return static_cast<std::uint64_t>(r * cols + c);
  }

  void fill_random(Rng& rng) {
    for (double& v : data) v = rng.uniform() * 2.0 - 1.0;
  }
};

/// Finds the PET node with the given region name (the hottest occurrence);
/// asserts it exists — a benchmark knows its own region names.
[[nodiscard]] inline const pet::PetNode& pet_node_named(const core::AnalysisResult& analysis,
                                                        std::string_view name) {
  for (const pet::PetNode& n : analysis.pet.nodes()) {
    if (n.name == name) return n;
  }
  PPD_ASSERT_MSG(false, "PET node not found by name");
}

/// Max |a-b| over two equally sized vectors.
[[nodiscard]] inline double max_abs_diff(const std::vector<double>& a,
                                         const std::vector<double>& b) {
  PPD_ASSERT(a.size() == b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

/// Standard verify helper: compares two result vectors within tolerance.
[[nodiscard]] inline VerifyOutcome compare_results(const std::vector<double>& sequential,
                                                   const std::vector<double>& parallel,
                                                   double tolerance = 1e-9) {
  const double diff = max_abs_diff(sequential, parallel);
  VerifyOutcome out;
  out.ok = diff <= tolerance;
  out.detail = "max |seq - par| = " + std::to_string(diff);
  return out;
}

}  // namespace ppd::bs
