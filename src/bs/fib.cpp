// BOTS `fib` (Table III row 7; Table V row 1; Listing 4).
//
// Hotspot reproduced: the recursive fib with its two independent recursive
// calls. Instrumented with one statement per read-compute-write site —
// the base-case check (sync), the two recursive-call statements that
// produce x and y (workers), and the summing return (sync). Recursive
// activations merge into one PET node marked recursive; value-return
// dependences between activations are excluded from the per-activation CU
// graph, leaving the diamond check -> {x, y} -> return that Algorithm 1
// classifies as fork / worker / worker / barrier — the classification shown
// in Listing 4. BOTS's task-parallel version reaches 13.25x at 32 threads.
#include <atomic>
#include <cstdint>
#include <functional>

#include "bs/benchmark.hpp"
#include "bs/detail.hpp"
#include "pat/pat.hpp"
#include "rt/parallel.hpp"
#include "sim/lowering.hpp"

namespace ppd::bs {
namespace {

constexpr int kInput = 12;

std::int64_t fib_plain(int n) { return n < 2 ? n : fib_plain(n - 1) + fib_plain(n - 2); }

struct TracedVars {
  VarId ok, x, y, ret;
};

std::int64_t fib_traced(trace::TraceContext& ctx, const TracedVars& v, int n,
                        std::uint64_t depth) {
  trace::FunctionScope f(ctx, "fib", 1);
  {
    trace::StatementScope check(ctx, "n<2_check", 2);
    ctx.compute(2, 1);
    ctx.write(v.ok, depth, 2);
  }
  if (n < 2) {
    trace::StatementScope base(ctx, "return_n", 3);
    ctx.read(v.ok, depth, 3);
    ctx.compute(3, 1);
    ctx.write(v.ret, depth, 3);
    return n;
  }
  std::int64_t x = 0;
  std::int64_t y = 0;
  {
    trace::StatementScope sx(ctx, "x=fib(n-1)", 4);
    ctx.read(v.ok, depth, 4);
    x = fib_traced(ctx, v, n - 1, depth + 1);
    ctx.read(v.ret, depth + 1, 4);  // value returned by the callee
    ctx.compute(4, 8);
    ctx.write(v.x, depth, 4);
  }
  {
    trace::StatementScope sy(ctx, "y=fib(n-2)", 5);
    ctx.read(v.ok, depth, 5);
    y = fib_traced(ctx, v, n - 2, depth + 1);
    ctx.read(v.ret, depth + 1, 5);
    ctx.compute(5, 8);
    ctx.write(v.y, depth, 5);
  }
  {
    trace::StatementScope ret(ctx, "return_x+y", 6);
    ctx.read(v.x, depth, 6);
    ctx.read(v.y, depth, 6);
    ctx.compute(6, 1);
    ctx.write(v.ret, depth, 6);
  }
  return x + y;
}

class Fib final : public Benchmark {
 public:
  const PaperRow& paper() const override {
    static const PaperRow row{"fib", "BOTS", 32, 100.00, 13.25, 32, "Task parallelism"};
    return row;
  }

  void run_traced(trace::TraceContext& ctx) const override {
    TracedVars v{ctx.var("ok"), ctx.var("x"), ctx.var("y"), ctx.var("ret")};
    trace::FunctionScope fmain(ctx, "main", 1);
    (void)fib_traced(ctx, v, kInput, 0);
  }

  VerifyOutcome verify_parallel(std::size_t threads) const override {
    const std::int64_t expected = fib_plain(kInput);
    rt::ThreadPool pool(threads);
    // One level of fork/join per the detected pattern; the two workers run
    // sequential fib below the fork.
    std::int64_t x = 0;
    std::int64_t y = 0;
    rt::TaskGroup group(pool);
    group.run([&] { x = fib_plain(kInput - 1); });
    group.run([&] { y = fib_plain(kInput - 2); });
    group.wait();
    VerifyOutcome out;
    out.ok = (x + y) == expected;
    out.detail = "fib(" + std::to_string(kInput) + ") = " + std::to_string(x + y) +
                 ", expected " + std::to_string(expected);
    return out;
  }

  VerifyOutcome verify_pat(std::size_t threads) const override {
    const std::int64_t expected = fib_plain(kInput);
    rt::ThreadPool pool(threads);
    // The full recursive spawn tree with a cutoff: every activation above
    // the cutoff spawns its two children before returning (the TaskPool
    // dependency discipline); leaves fold into a shared sum — fib is
    // additive over its leaves, so the sum is exact.
    std::atomic<std::int64_t> total{0};
    {
      pat::TaskPool tasks(pool);
      std::function<void(int, int)> spawn = [&](int n, int budget) {
        if (n < 2 || budget == 0) {
          total.fetch_add(fib_plain(n), std::memory_order_relaxed);
          return;
        }
        tasks.submit([&spawn, n, budget] { spawn(n - 1, budget - 1); });
        tasks.submit([&spawn, n, budget] { spawn(n - 2, budget - 1); });
      };
      tasks.submit([&spawn] { spawn(kInput, 5); });
      tasks.wait();
    }
    VerifyOutcome out;
    out.ok = total.load() == expected;
    out.detail = "fib(" + std::to_string(kInput) + ") = " + std::to_string(total.load()) +
                 ", expected " + std::to_string(expected);
    return out;
  }

  sim::TaskDag build_sim_dag(const core::AnalysisResult& analysis) const override {
    // The implemented version recurses with a cutoff: a binary fork/join
    // tree. Total work comes from the traced fib region; the tree splits it
    // across the leaves.
    const pet::PetNode& fib_node = pet_node_named(analysis, "fib");
    constexpr std::size_t kDepth = 8;  // 256 leaves
    const Cost leaf = std::max<Cost>(1, fib_node.inclusive_cost >> kDepth);
    sim::DagBuilder builder;
    const sim::TaskIndex setup = builder.serial_task(fib_node.inclusive_cost * 30 / 1000);
    (void)builder.recursion_tree(2, kDepth, leaf, /*fork_cost=*/1, /*join_cost=*/1, setup);
    return builder.take();
  }
};

}  // namespace

const Benchmark& fib_benchmark() {
  static const Fib instance;
  return instance;
}

}  // namespace ppd::bs
