// Starbench `rot-cc` (Table III row 4).
//
// Hotspot reproduced: the image-rotation loop (a gather over output pixels)
// followed by the colour-conversion loop over the same pixel range. Both
// loops are do-all, and pixel i of the conversion reads exactly the pixel i
// the rotation wrote (a=1, b=0, e=1): the fusion case. Starbench's parallel
// version fuses exactly these two loops; the fused loop runs as a do-all.
#include <vector>

#include "bs/benchmark.hpp"
#include "bs/detail.hpp"
#include "pat/pat.hpp"
#include "rt/parallel.hpp"
#include "sim/lowering.hpp"

namespace ppd::bs {
namespace {

constexpr std::size_t kWidth = 96;
constexpr std::size_t kHeight = 64;
constexpr std::size_t kPixels = kWidth * kHeight;

struct Workload {
  std::vector<double> in = std::vector<double>(kPixels);
};

const Workload& workload() {
  static const Workload w = [] {
    Workload wl;
    Rng rng(99);
    for (double& v : wl.in) v = rng.uniform();
    return wl;
  }();
  return w;
}

/// 90-degree rotation as a gather: output pixel i pulls from map(i).
std::size_t rotation_source(std::size_t i) {
  const std::size_t x = i % kHeight;          // output is kHeight wide
  const std::size_t y = i / kHeight;          // ... and kWidth tall
  return (kHeight - 1 - x) * kWidth + y;      // input index
}

void rotate_pixel(const Workload& w, std::vector<double>& rot, std::size_t i) {
  rot[i] = w.in[rotation_source(i)];
}

void convert_pixel(const std::vector<double>& rot, std::vector<double>& out, std::size_t i) {
  // RGB->YUV-style affine conversion stand-in.
  const double v = rot[i];
  out[i] = 0.299 * v + 0.587 * v * v + 0.114;
}

void run_sequential(const Workload& w, std::vector<double>& rot, std::vector<double>& out) {
  for (std::size_t i = 0; i < kPixels; ++i) rotate_pixel(w, rot, i);
  for (std::size_t i = 0; i < kPixels; ++i) convert_pixel(rot, out, i);
}

class RotCc final : public Benchmark {
 public:
  const PaperRow& paper() const override {
    static const PaperRow row{"rot-cc", "Starbench", 578, 94.53, 16.18, 32, "Fusion"};
    return row;
  }

  void run_traced(trace::TraceContext& ctx) const override {
    const Workload& w = workload();
    std::vector<double> rot(kPixels, 0.0);
    std::vector<double> out(kPixels, 0.0);

    const VarId vin = ctx.var("in");
    const VarId vrot = ctx.var("rot");
    const VarId vout = ctx.var("out");

    trace::FunctionScope fmain(ctx, "main", 1);
    {
      trace::FunctionScope fload(ctx, "load_image", 2);
      ctx.compute(2, 2130);  // I/O & setup: hotspot holds ~94.5%
    }
    {
      trace::FunctionScope fk(ctx, "rotate_cc", 4);
      {
        trace::LoopScope l1(ctx, "rotate_loop", 6);
        for (std::size_t i = 0; i < kPixels; ++i) {
          l1.begin_iteration();
          rotate_pixel(w, rot, i);
          ctx.read(vin, rotation_source(i), 7);
          ctx.write(vrot, i, 7);
        }
      }
      {
        trace::LoopScope l2(ctx, "cc_loop", 10);
        for (std::size_t i = 0; i < kPixels; ++i) {
          l2.begin_iteration();
          convert_pixel(rot, out, i);
          ctx.read(vrot, i, 11);
          ctx.compute(11, 3);
          ctx.write(vout, i, 11);
        }
      }
    }
  }

  VerifyOutcome verify_parallel(std::size_t threads) const override {
    const Workload& w = workload();
    std::vector<double> rot_seq(kPixels, 0.0);
    std::vector<double> out_seq(kPixels, 0.0);
    run_sequential(w, rot_seq, out_seq);

    std::vector<double> rot_par(kPixels, 0.0);
    std::vector<double> out_par(kPixels, 0.0);
    rt::ThreadPool pool(threads);
    // The suggested fusion: one do-all over pixels, rotation and conversion
    // back-to-back per iteration.
    rt::parallel_for(pool, 0, kPixels, [&](std::uint64_t i) {
      rotate_pixel(w, rot_par, static_cast<std::size_t>(i));
      convert_pixel(rot_par, out_par, static_cast<std::size_t>(i));
    });
    return compare_results(out_seq, out_par);
  }

  VerifyOutcome verify_pat(std::size_t threads) const override {
    const Workload& w = workload();
    std::vector<double> rot_seq(kPixels, 0.0);
    std::vector<double> out_seq(kPixels, 0.0);
    run_sequential(w, rot_seq, out_seq);

    // The fusion as a farm: pixel blocks stream through replicated fused
    // rotate+convert workers (Starbench's chunked worker scheme); blocks
    // are disjoint, so replica placement is free.
    std::vector<double> rot_par(kPixels, 0.0);
    std::vector<double> out_par(kPixels, 0.0);
    rt::ThreadPool pool(threads);
    constexpr std::size_t kBlock = 512;
    const std::uint64_t blocks = (kPixels + kBlock - 1) / kBlock;
    std::uint64_t next_block = 0;
    pat::Pipeline<std::uint64_t> pipe(pool);
    pipe.farm(
        [&](std::uint64_t block) {
          const std::size_t lo = static_cast<std::size_t>(block) * kBlock;
          const std::size_t hi = std::min(kPixels, lo + kBlock);
          for (std::size_t i = lo; i < hi; ++i) {
            rotate_pixel(w, rot_par, i);
            convert_pixel(rot_par, out_par, i);
          }
          return block;
        },
        4);
    pipe.run(
        [&]() -> std::optional<std::uint64_t> {
          if (next_block >= blocks) return std::nullopt;
          return next_block++;
        },
        [](std::uint64_t) {});
    return compare_results(out_seq, out_par);
  }

  sim::TaskDag build_sim_dag(const core::AnalysisResult& analysis) const override {
    const pet::PetNode& l1 = pet_node_named(analysis, "rotate_loop");
    const pet::PetNode& l2 = pet_node_named(analysis, "cc_loop");
    sim::DagBuilder builder;
    // Fused loop: one do-all carrying both loops' work, preceded by the
    // serial chunk setup / image assembly the Starbench version keeps
    // outside the parallel region (~3% of the hotspot).
    const Cost total = l1.inclusive_cost + l2.inclusive_cost;
    const sim::TaskIndex setup = builder.serial_task(total * 32 / 1000);
    auto fused = builder.lower_loop(l1.iterations, total, core::LoopClass::DoAll, 256);
    builder.before_loop(fused, setup);
    return builder.take();
  }

  sim::SimParams sim_params(const core::AnalysisResult& analysis) const override {
    (void)analysis;
    return {};
  }
};

}  // namespace

const Benchmark& rotcc_benchmark() {
  static const RotCc instance;
  return instance;
}

}  // namespace ppd::bs
