// Starbench `streamcluster` (Table III row 14; Listings 6 and 7).
//
// Hotspot reproduced: the structure of §IV-C. The outer while loop of
// streamCluster() consumes input chunks and carries the clusters formed in
// each round into the next — no pattern applies to it. The next hotspot is
// localSearch(), called within that loop: its loops (per-point cost
// evaluation, a small cost-accumulation reduction, and the gain loop of the
// directly called pgain()) are all do-all or reduction, so localSearch() is
// suggested for geometric decomposition — exactly how Starbench's parallel
// version is written (Listing 7: one localSearch thread per chunk). Unlike
// kmeans, the reduction loops here are not hotspots, so Table III lists
// plain "Geometric decomposition". The paper reports 6.38x at 32 threads.
#include <vector>

#include "bs/benchmark.hpp"
#include "bs/detail.hpp"
#include "pat/pat.hpp"
#include "rt/parallel.hpp"
#include "sim/lowering.hpp"

namespace ppd::bs {
namespace {

constexpr std::size_t kPointsPerRound = 256;
constexpr std::size_t kRounds = 4;
constexpr std::size_t kCenters = 6;

struct Workload {
  std::vector<double> points =
      std::vector<double>(kPointsPerRound * kRounds);
};

const Workload& workload() {
  static const Workload w = [] {
    Workload wl;
    Rng rng(31415);
    for (double& v : wl.points) v = rng.uniform() * 10.0;
    return wl;
  }();
  return w;
}

/// Distance of point p (this round) to its nearest current center.
double nearest_center_cost(const std::vector<double>& centers, double point) {
  double best = 1e30;
  for (double c : centers) {
    const double d = (point - c) * (point - c);
    if (d < best) best = d;
  }
  return best;
}

/// pgain: would opening a center at `candidate` reduce the cost?
double pgain(const std::vector<double>& centers, const double* pts, std::size_t n,
             double candidate) {
  double gain = 0.0;
  for (std::size_t p = 0; p < n; ++p) {
    const double current = nearest_center_cost(centers, pts[p]);
    const double with_candidate = (pts[p] - candidate) * (pts[p] - candidate);
    if (with_candidate < current) gain += current - with_candidate;
  }
  return gain;
}

/// localSearch over one round's chunk: per-point assignment cost, total cost
/// reduction, and a greedy center refinement via pgain.
double local_search(const double* pts, std::size_t n, std::vector<double>& centers) {
  std::vector<double> costs(n, 0.0);
  for (std::size_t p = 0; p < n; ++p) costs[p] = nearest_center_cost(centers, pts[p]);
  double total = 0.0;
  for (std::size_t p = 0; p < n; ++p) total += costs[p];
  // Refine the worst center toward the candidate with the best gain.
  double best_gain = 0.0;
  std::size_t best_candidate = 0;
  for (std::size_t p = 0; p < n; p += 16) {
    const double g = pgain(centers, pts, n, pts[p]);
    if (g > best_gain) {
      best_gain = g;
      best_candidate = p;
    }
  }
  if (best_gain > 0.0) centers[0] = pts[best_candidate];
  return total;
}

std::vector<double> run_sequential(const Workload& w) {
  std::vector<double> centers(kCenters, 0.0);
  for (std::size_t c = 0; c < kCenters; ++c) centers[c] = static_cast<double>(c) * 2.0;
  std::vector<double> totals;
  for (std::size_t r = 0; r < kRounds; ++r) {
    totals.push_back(
        local_search(w.points.data() + r * kPointsPerRound, kPointsPerRound, centers));
  }
  totals.insert(totals.end(), centers.begin(), centers.end());
  return totals;
}

class Streamcluster final : public Benchmark {
 public:
  const PaperRow& paper() const override {
    static const PaperRow row{"streamcluster", "Starbench", 551, 49.99, 6.38, 32,
                              "Geometric decomposition"};
    return row;
  }

  void run_traced(trace::TraceContext& ctx) const override {
    const Workload& w = workload();
    std::vector<double> centers(kCenters, 0.0);
    for (std::size_t c = 0; c < kCenters; ++c) centers[c] = static_cast<double>(c) * 2.0;

    const VarId vcenters = ctx.var("centers");
    const VarId vcosts = ctx.var("costs");
    const VarId vtotal = ctx.var("total_cost");
    const VarId vgain = ctx.var("gain");

    trace::FunctionScope fmain(ctx, "main", 1);
    {
      trace::FunctionScope fio(ctx, "read_stream", 2);
      ctx.compute(2, 40400);  // hotspot localSearch holds ~50%
    }
    {
      trace::LoopScope stream(ctx, "stream_loop", 2);
      for (std::size_t r = 0; r < kRounds; ++r) {
        stream.begin_iteration();
        const double* pts = w.points.data() + r * kPointsPerRound;
        {
          trace::FunctionScope fls(ctx, "localSearch", 4);
          {
            // Per-point assignment cost: do-all.
            trace::LoopScope lcost(ctx, "cost_loop", 6);
            std::vector<double> costs(kPointsPerRound, 0.0);
            for (std::size_t p = 0; p < kPointsPerRound; ++p) {
              lcost.begin_iteration();
              costs[p] = nearest_center_cost(centers, pts[p]);
              ctx.read(vcenters, 0, 7);
              ctx.compute(7, 3 * kCenters);
              ctx.write(vcosts, p, 7);
            }
          }
          {
            // Total cost: a small reduction over blocks of costs — far below
            // the hotspot threshold, as in the original (§IV-C: the
            // reductions in streamcluster are not hotspots).
            trace::LoopScope lsum(ctx, "cost_sum_loop", 9);
            for (std::size_t p = 0; p < kPointsPerRound; p += 16) {
              lsum.begin_iteration();
              ctx.read(vcosts, p, 10);
              ctx.compute(10, 1);
              ctx.update(vtotal, 0, 10, trace::UpdateOp::Sum);
            }
          }
          {
            // pgain(): the loop of the directly called function; do-all
            // over candidate evaluations.
            trace::FunctionScope fpg(ctx, "pgain", 13);
            trace::LoopScope lgain(ctx, "gain_loop", 14);
            bool first_candidate = true;
            for (std::size_t p = 0; p < kPointsPerRound; p += 16) {
              lgain.begin_iteration();
              ctx.read(vcenters, 0, 15);
              // Every gain evaluation scans the costs of *all* points, so
              // the first candidate already consumes the entire cost loop --
              // pgain cannot pipeline behind it.
              if (first_candidate) {
                for (std::size_t q = 0; q < kPointsPerRound; ++q) ctx.read(vcosts, q, 15);
                first_candidate = false;
              } else {
                ctx.read(vcosts, p, 15);
              }
              ctx.compute(15, 3 * kCenters * 16);
              ctx.write(vgain, p, 15);
            }
          }
          {
            // The round's result feeds the next round through the centers.
            trace::StatementScope s(ctx, "refine_centers", 18);
            ctx.read(vgain, 0, 18);
            ctx.compute(18, 2);
            ctx.write(vcenters, 0, 18);
          }
        }
        (void)local_search(pts, kPointsPerRound, centers);
      }
    }
  }

  VerifyOutcome verify_parallel(std::size_t threads) const override {
    const Workload& w = workload();
    const std::vector<double> expected = run_sequential(w);

    // Listing 7: localSearch per chunk in its own thread. Rounds are
    // independent *chunks of the stream* in the parallel version; each
    // chunk starts from the same initial centers and refines its own copy,
    // which is how the Starbench version decomposes the data. To keep
    // output comparable with the sequential version (which threads centers
    // through rounds), the chunk results are applied in round order.
    std::vector<double> centers(kCenters, 0.0);
    for (std::size_t c = 0; c < kCenters; ++c) centers[c] = static_cast<double>(c) * 2.0;
    std::vector<double> totals(kRounds, 0.0);
    rt::ThreadPool pool(threads);
    for (std::size_t r = 0; r < kRounds; ++r) {
      // Within one round, the per-point cost loop is decomposed over
      // threads (the geometric decomposition of localSearch's data).
      const double* pts = w.points.data() + r * kPointsPerRound;
      std::vector<double> costs(kPointsPerRound, 0.0);
      rt::parallel_for(pool, 0, kPointsPerRound, [&](std::uint64_t p) {
        costs[p] = nearest_center_cost(centers, pts[p]);
      });
      double total = 0.0;
      for (double c : costs) total += c;
      // Greedy refinement, candidates evaluated in parallel.
      std::vector<double> gains((kPointsPerRound + 15) / 16, 0.0);
      rt::parallel_for(pool, 0, gains.size(), [&](std::uint64_t g) {
        gains[g] = pgain(centers, pts, kPointsPerRound, pts[g * 16]);
      });
      double best_gain = 0.0;
      std::size_t best_candidate = 0;
      for (std::size_t g = 0; g < gains.size(); ++g) {
        if (gains[g] > best_gain) {
          best_gain = gains[g];
          best_candidate = g * 16;
        }
      }
      if (best_gain > 0.0) centers[0] = pts[best_candidate];
      totals[r] = total;
    }
    totals.insert(totals.end(), centers.begin(), centers.end());
    return compare_results(expected, totals);
  }

  VerifyOutcome verify_pat(std::size_t threads) const override {
    const Workload& w = workload();
    const std::vector<double> expected = run_sequential(w);

    // The same geometric decomposition on the pattern runtime: the
    // per-point cost loop and the candidate-gain loop run as pat do-alls
    // per round; the cost total folds per chunk, combined in chunk order.
    std::vector<double> centers(kCenters, 0.0);
    for (std::size_t c = 0; c < kCenters; ++c) centers[c] = static_cast<double>(c) * 2.0;
    std::vector<double> totals(kRounds, 0.0);
    rt::ThreadPool pool(threads);
    for (std::size_t r = 0; r < kRounds; ++r) {
      const double* pts = w.points.data() + r * kPointsPerRound;
      std::vector<double> costs(kPointsPerRound, 0.0);
      pat::parallel_for(pool, 0, kPointsPerRound, [&](std::uint64_t p) {
        costs[p] = nearest_center_cost(centers, pts[p]);
      });
      double total = 0.0;
      for (double c : costs) total += c;
      std::vector<double> gains((kPointsPerRound + 15) / 16, 0.0);
      pat::parallel_for(pool, 0, gains.size(), [&](std::uint64_t g) {
        gains[g] = pgain(centers, pts, kPointsPerRound, pts[g * 16]);
      });
      double best_gain = 0.0;
      std::size_t best_candidate = 0;
      for (std::size_t g = 0; g < gains.size(); ++g) {
        if (gains[g] > best_gain) {
          best_gain = gains[g];
          best_candidate = g * 16;
        }
      }
      if (best_gain > 0.0) centers[0] = pts[best_candidate];
      totals[r] = total;
    }
    totals.insert(totals.end(), centers.begin(), centers.end());
    return compare_results(expected, totals);
  }

  sim::TaskDag build_sim_dag(const core::AnalysisResult& analysis) const override {
    // Per stream round: decomposed localSearch chunks, a combine, a serial
    // refine; rounds chained (the while loop stays sequential).
    const pet::PetNode& ls = pet_node_named(analysis, "localSearch");
    const Cost per_round =
        ls.inclusive_cost / std::max<std::uint64_t>(1, ls.instances);
    sim::DagBuilder builder;
    sim::TaskIndex prev = sim::kInvalidTask;
    for (std::size_t r = 0; r < kRounds; ++r) {
      // Opening/closing centers and bookkeeping stay serial per round
      // (~13%), which is what limits the Starbench version to ~6.4x.
      const sim::TaskIndex fork = builder.serial_task(per_round * 13 / 100, prev);
      auto chunks = builder.lower_loop(kPointsPerRound, per_round, core::LoopClass::DoAll, 64);
      builder.before_loop(chunks, fork);
      prev = builder.serial_task(8);
      builder.after_loop(prev, chunks);
    }
    return builder.take();
  }

  sim::SimParams sim_params(const core::AnalysisResult& analysis) const override {
    (void)analysis;
    return {};
  }
};

}  // namespace

const Benchmark& streamcluster_benchmark() {
  static const Streamcluster instance;
  return instance;
}

}  // namespace ppd::bs
