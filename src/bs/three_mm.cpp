// Polybench `3mm` (Table III row 10; Table V row 4; Listing 5).
//
// Hotspot reproduced: E = A·B, F = C·D, G = E·F in kernel_3mm. The E and F
// loops are independent workers; the G loop reads everything they produce
// and is their barrier. Although (E-loop, G-loop) alone looks like a
// perfect pipeline (row i of G reads row i of E), the (F-loop, G-loop)
// relationship has e ~ 0 — every G iteration reads *all* of F — which
// blocks the pipeline and leaves the region to task parallelism, combined
// with do-all on the three loops themselves. The paper reports 12.93x at 16
// threads for the combined implementation.
#include <algorithm>
#include <vector>

#include "bs/benchmark.hpp"
#include "bs/detail.hpp"
#include "pat/pat.hpp"
#include "rt/parallel.hpp"
#include "sim/lowering.hpp"

namespace ppd::bs {
namespace {

constexpr std::size_t kN = 32;

struct Workload {
  Matrix a{kN, kN};
  Matrix b{kN, kN};
  Matrix c{kN, kN};
  Matrix d{kN, kN};
};

const Workload& workload() {
  static const Workload w = [] {
    Workload wl;
    Rng rng(33);
    wl.a.fill_random(rng);
    wl.b.fill_random(rng);
    wl.c.fill_random(rng);
    wl.d.fill_random(rng);
    return wl;
  }();
  return w;
}

void matmul_row(const Matrix& a, const Matrix& b, Matrix& out, std::size_t i) {
  for (std::size_t j = 0; j < out.cols; ++j) {
    double sum = 0.0;
    for (std::size_t k = 0; k < a.cols; ++k) sum += a.at(i, k) * b.at(k, j);
    out.at(i, j) = sum;
  }
}

class ThreeMm final : public Benchmark {
 public:
  const PaperRow& paper() const override {
    static const PaperRow row{"3mm", "Polybench", 166, 99.44, 12.93, 16,
                              "Task parallelism + Do-all"};
    return row;
  }

  void run_traced(trace::TraceContext& ctx) const override {
    const Workload& w = workload();
    Matrix e(kN, kN);
    Matrix f(kN, kN);
    Matrix g(kN, kN);

    const VarId vargs = ctx.var("args");
    const VarId ve = ctx.var("E");
    const VarId vf = ctx.var("F");
    const VarId vg = ctx.var("G");

    trace::FunctionScope fmain(ctx, "main", 1);
    {
      trace::FunctionScope finit(ctx, "init_array", 2);
      ctx.compute(2, 1180);  // hotspot holds ~99.4%
    }
    {
      trace::FunctionScope fk(ctx, "kernel_3mm", 4);
      {
        // Argument setup: the fork CU both worker loops depend on.
        trace::StatementScope s(ctx, "kernel_entry", 4);
        ctx.compute(4, 2);
        ctx.write(vargs, 0, 4);
      }
      {
        trace::LoopScope l1(ctx, "e_loop", 6);
        for (std::size_t i = 0; i < kN; ++i) {
          l1.begin_iteration();
          if (i == 0) ctx.read(vargs, 0, 7);
          matmul_row(w.a, w.b, e, i);
          for (std::size_t j = 0; j < kN; ++j) {
            ctx.compute(7, 2 * kN);
            ctx.write(ve, e.index(i, j), 7);
          }
        }
      }
      {
        trace::LoopScope l2(ctx, "f_loop", 9);
        for (std::size_t i = 0; i < kN; ++i) {
          l2.begin_iteration();
          if (i == 0) ctx.read(vargs, 0, 10);
          matmul_row(w.c, w.d, f, i);
          for (std::size_t j = 0; j < kN; ++j) {
            ctx.compute(10, 2 * kN);
            ctx.write(vf, f.index(i, j), 10);
          }
        }
      }
      {
        trace::LoopScope l3(ctx, "g_loop", 12);
        for (std::size_t i = 0; i < kN; ++i) {
          l3.begin_iteration();
          matmul_row(e, f, g, i);
          for (std::size_t k = 0; k < kN; ++k) ctx.read(ve, e.index(i, k), 13);
          if (i == 0) {
            // G's first row already consumes every element of F.
            for (std::size_t k = 0; k < kN; ++k) {
              for (std::size_t j = 0; j < kN; ++j) ctx.read(vf, f.index(k, j), 13);
            }
          } else {
            ctx.read(vf, f.index(i, i), 13);
          }
          for (std::size_t j = 0; j < kN; ++j) {
            ctx.compute(13, 2 * kN);
            ctx.write(vg, g.index(i, j), 14);
          }
        }
      }
    }
  }

  VerifyOutcome verify_parallel(std::size_t threads) const override {
    const Workload& w = workload();
    Matrix e_seq(kN, kN), f_seq(kN, kN), g_seq(kN, kN);
    for (std::size_t i = 0; i < kN; ++i) matmul_row(w.a, w.b, e_seq, i);
    for (std::size_t i = 0; i < kN; ++i) matmul_row(w.c, w.d, f_seq, i);
    for (std::size_t i = 0; i < kN; ++i) matmul_row(e_seq, f_seq, g_seq, i);

    Matrix e_par(kN, kN), f_par(kN, kN), g_par(kN, kN);
    rt::ThreadPool pool(threads);
    {
      // Worker tasks E and F fork together, each internally a do-all;
      // barrier G follows as a do-all.
      rt::TaskGroup workers(pool);
      workers.run([&] {
        for (std::size_t i = 0; i < kN; ++i) matmul_row(w.a, w.b, e_par, i);
      });
      workers.run([&] {
        for (std::size_t i = 0; i < kN; ++i) matmul_row(w.c, w.d, f_par, i);
      });
      workers.wait();
    }
    rt::parallel_for(pool, 0, kN, [&](std::uint64_t i) {
      matmul_row(e_par, f_par, g_par, static_cast<std::size_t>(i));
    });
    return compare_results(g_seq.data, g_par.data);
  }

  VerifyOutcome verify_pat(std::size_t threads) const override {
    const Workload& w = workload();
    Matrix e_seq(kN, kN), f_seq(kN, kN), g_seq(kN, kN);
    for (std::size_t i = 0; i < kN; ++i) matmul_row(w.a, w.b, e_seq, i);
    for (std::size_t i = 0; i < kN; ++i) matmul_row(w.c, w.d, f_seq, i);
    for (std::size_t i = 0; i < kN; ++i) matmul_row(e_seq, f_seq, g_seq, i);

    // Fork/join on the task pool: the E and F products are independent
    // subtrees whose row tasks spread via work stealing; the dependent G
    // product follows as a pat do-all once both settle.
    Matrix e_par(kN, kN), f_par(kN, kN), g_par(kN, kN);
    rt::ThreadPool pool(threads);
    {
      pat::TaskPool tasks(pool);
      constexpr std::size_t kBlock = 8;
      for (std::size_t lo = 0; lo < kN; lo += kBlock) {
        const std::size_t hi = std::min(kN, lo + kBlock);
        tasks.submit([&, lo, hi] {
          for (std::size_t i = lo; i < hi; ++i) matmul_row(w.a, w.b, e_par, i);
        });
        tasks.submit([&, lo, hi] {
          for (std::size_t i = lo; i < hi; ++i) matmul_row(w.c, w.d, f_par, i);
        });
      }
      tasks.wait();
    }
    pat::parallel_for(pool, 0, kN, [&](std::uint64_t i) {
      matmul_row(e_par, f_par, g_par, static_cast<std::size_t>(i));
    });
    return compare_results(g_seq.data, g_par.data);
  }

  sim::TaskDag build_sim_dag(const core::AnalysisResult& analysis) const override {
    const pet::PetNode& l1 = pet_node_named(analysis, "e_loop");
    const pet::PetNode& l2 = pet_node_named(analysis, "f_loop");
    const pet::PetNode& l3 = pet_node_named(analysis, "g_loop");
    sim::DagBuilder builder;
    auto e = builder.lower_loop(l1.iterations, l1.inclusive_cost, core::LoopClass::DoAll, 32);
    auto f = builder.lower_loop(l2.iterations, l2.inclusive_cost, core::LoopClass::DoAll, 32);
    auto g = builder.lower_loop(l3.iterations, l3.inclusive_cost, core::LoopClass::DoAll, 32);
    builder.link_all(e, g);
    builder.link_all(f, g);
    return builder.take();
  }

  sim::SimParams sim_params(const core::AnalysisResult& analysis) const override {
    sim::SimParams params;
    const pet::PetNode& fk = pet_node_named(analysis, "kernel_3mm");
    params.memory_work = fk.inclusive_cost;
    params.memory_scale_limit = 13;
    return params;
  }
};

}  // namespace

const Benchmark& three_mm_benchmark() {
  static const ThreeMm instance;
  return instance;
}

}  // namespace ppd::bs
