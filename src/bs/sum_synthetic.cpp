// Synthetic reduction benchmarks `sum_local` and `sum_module` (Listings 8
// and 9; Table VI).
//
// sum_local performs the reduction in the lexical extent of the loop —
// every tool finds it. sum_module performs the reduction inside a function
// called from the loop (the accumulator is passed by reference): static
// analyses (icc, Sambamba) are intra-procedural and miss it; the dynamic
// approach sees the same accumulator address re-updated across iterations
// regardless of which function executes the update, and detects it.
#include <vector>

#include "bs/benchmark.hpp"
#include "bs/detail.hpp"
#include "pat/pat.hpp"
#include "rt/parallel.hpp"
#include "sim/lowering.hpp"

namespace ppd::bs {
namespace {

constexpr std::size_t kElems = 2048;

const std::vector<std::int64_t>& input() {
  static const std::vector<std::int64_t> v = [] {
    std::vector<std::int64_t> data(kElems);
    Rng rng(606);
    for (auto& x : data) x = static_cast<std::int64_t>(rng.below(1000));
    return data;
  }();
  return v;
}

/// "do some heavy work on val" (Listing 9).
std::int64_t heavy_work(std::int64_t val) {
  std::int64_t x = val;
  for (int k = 0; k < 8; ++k) x = (x * 31 + 7) % 100003;
  return x;
}

std::int64_t sum_local_plain() {
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < kElems; ++i) sum += input()[i];
  return sum;
}

std::int64_t sum_module_plain() {
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < kElems; ++i) sum += heavy_work(input()[i]);
  return sum;
}

class SumLocal final : public Benchmark {
 public:
  const PaperRow& paper() const override {
    static const PaperRow row{"sum_local", "synthetic", 5, 100.00, 0.0, 0, "Reduction"};
    return row;
  }

  void run_traced(trace::TraceContext& ctx) const override {
    const VarId vsum = ctx.var("sum");
    const VarId varr = ctx.var("arr");
    trace::FunctionScope fmain(ctx, "sum_local", 1);
    trace::LoopScope loop(ctx, "sum_local_loop", 3);
    for (std::size_t i = 0; i < kElems; ++i) {
      loop.begin_iteration();
      ctx.read(varr, i, 4);
      ctx.compute(4, 1);
      ctx.update(vsum, 0, 4, trace::UpdateOp::Sum);
    }
  }

  VerifyOutcome verify_parallel(std::size_t threads) const override {
    const std::int64_t expected = sum_local_plain();
    rt::ThreadPool pool(threads);
    const std::int64_t total = rt::parallel_reduce<std::int64_t>(
        pool, 0, kElems, 0,
        [](std::int64_t acc, std::uint64_t i) { return acc + input()[i]; },
        [](std::int64_t a, std::int64_t b) { return a + b; });
    VerifyOutcome out;
    out.ok = total == expected;
    out.detail = "sum = " + std::to_string(total) + ", expected " + std::to_string(expected);
    return out;
  }

  VerifyOutcome verify_pat(std::size_t threads) const override {
    const std::int64_t expected = sum_local_plain();
    rt::ThreadPool pool(threads);
    const std::int64_t total = pat::parallel_for_reduce(
        pool, 0, kElems, std::int64_t{0},
        [](std::int64_t acc, std::uint64_t i) { return acc + input()[i]; },
        [](std::int64_t a, std::int64_t b) { return a + b; });
    VerifyOutcome out;
    out.ok = total == expected;
    out.detail = "sum = " + std::to_string(total) + ", expected " + std::to_string(expected);
    return out;
  }

  sim::TaskDag build_sim_dag(const core::AnalysisResult& analysis) const override {
    const pet::PetNode& loop = pet_node_named(analysis, "sum_local_loop");
    sim::DagBuilder builder;
    (void)builder.lower_loop(loop.iterations, loop.inclusive_cost, core::LoopClass::Reduction,
                             64);
    return builder.take();
  }

  std::optional<staticdet::LoopModel> reduction_source_model() const override {
    staticdet::LoopModel loop;
    loop.name = "sum_local_loop";
    staticdet::Stmt acc;
    acc.line = 4;
    acc.op = staticdet::Op::AddAssign;
    acc.target = staticdet::TargetKind::ScalarLocal;
    acc.target_name = "sum";
    acc.reads = {"arr"};
    loop.body.push_back(acc);
    return loop;
  }
};

class SumModule final : public Benchmark {
 public:
  const PaperRow& paper() const override {
    static const PaperRow row{"sum_module", "synthetic", 13, 100.00, 0.0, 0, "Reduction"};
    return row;
  }

  void run_traced(trace::TraceContext& ctx) const override {
    const VarId vsum = ctx.var("sum");
    const VarId varr = ctx.var("arr");
    const VarId vx = ctx.var("x");
    trace::FunctionScope fmain(ctx, "sum_module", 6);
    trace::LoopScope loop(ctx, "sum_module_loop", 8);
    for (std::size_t i = 0; i < kElems; ++i) {
      loop.begin_iteration();
      ctx.read(varr, i, 9);
      {
        // The callee performs the accumulation: invisible to lexical static
        // analysis, plainly visible to the dynamic profiler.
        trace::FunctionScope callee(ctx, "sum_module_impl", 1);
        ctx.compute(2, 8);  // the heavy work on val
        ctx.compute(3, 1);
        ctx.update(vsum, 0, 3, trace::UpdateOp::Sum);
        ctx.write(vx, i, 4);
      }
      ctx.read(vx, i, 10);
      ctx.compute(10, 1);  // foo(x)
    }
  }

  VerifyOutcome verify_parallel(std::size_t threads) const override {
    const std::int64_t expected = sum_module_plain();
    rt::ThreadPool pool(threads);
    const std::int64_t total = rt::parallel_reduce<std::int64_t>(
        pool, 0, kElems, 0,
        [](std::int64_t acc, std::uint64_t i) { return acc + heavy_work(input()[i]); },
        [](std::int64_t a, std::int64_t b) { return a + b; });
    VerifyOutcome out;
    out.ok = total == expected;
    out.detail = "sum = " + std::to_string(total) + ", expected " + std::to_string(expected);
    return out;
  }

  VerifyOutcome verify_pat(std::size_t threads) const override {
    const std::int64_t expected = sum_module_plain();
    rt::ThreadPool pool(threads);
    // Guided chunking: the interesting leg for the cross-module reduction,
    // since the heavy per-element callee is what the guided plan amortizes.
    pat::ForOptions options;
    options.chunking = pat::Chunking::Guided;
    options.min_chunk = 32;
    const std::int64_t total = pat::parallel_for_reduce(
        pool, 0, kElems, std::int64_t{0},
        [](std::int64_t acc, std::uint64_t i) { return acc + heavy_work(input()[i]); },
        [](std::int64_t a, std::int64_t b) { return a + b; }, options);
    VerifyOutcome out;
    out.ok = total == expected;
    out.detail = "sum = " + std::to_string(total) + ", expected " + std::to_string(expected);
    return out;
  }

  sim::TaskDag build_sim_dag(const core::AnalysisResult& analysis) const override {
    const pet::PetNode& loop = pet_node_named(analysis, "sum_module_loop");
    sim::DagBuilder builder;
    (void)builder.lower_loop(loop.iterations, loop.inclusive_cost, core::LoopClass::Reduction,
                             64);
    return builder.take();
  }

  std::optional<staticdet::LoopModel> reduction_source_model() const override {
    staticdet::LoopModel loop;
    loop.name = "sum_module_loop";
    staticdet::Stmt call;
    call.line = 9;
    call.op = staticdet::Op::Call;
    call.callee = "sum_module_impl";
    loop.body.push_back(call);
    staticdet::Stmt foo;
    foo.line = 10;
    foo.op = staticdet::Op::Call;
    foo.callee = "foo";
    loop.body.push_back(foo);
    staticdet::CalleeModel impl;
    impl.name = "sum_module_impl";
    staticdet::Stmt acc;
    acc.line = 3;
    acc.op = staticdet::Op::AddAssign;
    acc.target = staticdet::TargetKind::ScalarThrough;
    acc.target_name = "sum";
    acc.reads = {"x"};
    impl.body.push_back(acc);
    loop.callees.push_back(impl);
    return loop;
  }
};

}  // namespace

const Benchmark& sum_local_benchmark() {
  static const SumLocal instance;
  return instance;
}

const Benchmark& sum_module_benchmark() {
  static const SumModule instance;
  return instance;
}

}  // namespace ppd::bs
