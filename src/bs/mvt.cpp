// Polybench `mvt` (Table III row 11; Table V row 5).
//
// Hotspot reproduced: the two independent matrix-vector products of
// kernel_mvt — x1 += A·y1 and x2 += Aᵀ·y2. Both loops are do-all and
// neither reads anything the other writes; both depend only on the kernel's
// argument setup, so Algorithm 1 classifies them as two worker tasks forked
// from the entry CU. The paper implements combined task + do-all
// parallelism and reports 11.39x at 32 threads.
#include <vector>

#include "bs/benchmark.hpp"
#include "bs/detail.hpp"
#include "pat/pat.hpp"
#include "rt/parallel.hpp"
#include "sim/lowering.hpp"

namespace ppd::bs {
namespace {

constexpr std::size_t kN = 72;

struct Workload {
  Matrix a{kN, kN};
  std::vector<double> y1 = std::vector<double>(kN);
  std::vector<double> y2 = std::vector<double>(kN);
};

const Workload& workload() {
  static const Workload w = [] {
    Workload wl;
    Rng rng(44);
    wl.a.fill_random(rng);
    for (double& v : wl.y1) v = rng.uniform();
    for (double& v : wl.y2) v = rng.uniform();
    return wl;
  }();
  return w;
}

void x1_row(const Workload& w, std::vector<double>& x1, std::size_t i) {
  double sum = 0.0;
  for (std::size_t j = 0; j < kN; ++j) sum += w.a.at(i, j) * w.y1[j];
  x1[i] += sum;
}

void x2_row(const Workload& w, std::vector<double>& x2, std::size_t i) {
  double sum = 0.0;
  for (std::size_t j = 0; j < kN; ++j) sum += w.a.at(j, i) * w.y2[j];
  x2[i] += sum;
}

class Mvt final : public Benchmark {
 public:
  const PaperRow& paper() const override {
    static const PaperRow row{"mvt", "Polybench", 114, 91.24, 11.39, 32,
                              "Task parallelism + Do-all"};
    return row;
  }

  void run_traced(trace::TraceContext& ctx) const override {
    const Workload& w = workload();
    std::vector<double> x1(kN, 0.0);
    std::vector<double> x2(kN, 0.0);

    const VarId vargs = ctx.var("args");
    const VarId vx1 = ctx.var("x1");
    const VarId vx2 = ctx.var("x2");

    trace::FunctionScope fmain(ctx, "main", 1);
    {
      trace::FunctionScope finit(ctx, "init_array", 2);
      ctx.compute(2, 2080);  // hotspot holds ~91.2%
    }
    {
      trace::FunctionScope fk(ctx, "kernel_mvt", 4);
      {
        trace::StatementScope s(ctx, "kernel_entry", 4);
        ctx.compute(4, 2);
        ctx.write(vargs, 0, 4);
      }
      {
        trace::LoopScope l1(ctx, "x1_loop", 6);
        for (std::size_t i = 0; i < kN; ++i) {
          l1.begin_iteration();
          if (i == 0) ctx.read(vargs, 0, 7);
          x1_row(w, x1, i);
          ctx.compute(7, 2 * kN);
          ctx.read(vx1, i, 7);
          ctx.write(vx1, i, 7);
        }
      }
      {
        trace::LoopScope l2(ctx, "x2_loop", 9);
        for (std::size_t i = 0; i < kN; ++i) {
          l2.begin_iteration();
          if (i == 0) ctx.read(vargs, 0, 10);
          x2_row(w, x2, i);
          ctx.compute(10, 2 * kN);
          ctx.read(vx2, i, 10);
          ctx.write(vx2, i, 10);
        }
      }
    }
  }

  VerifyOutcome verify_parallel(std::size_t threads) const override {
    const Workload& w = workload();
    std::vector<double> x1_seq(kN, 0.0), x2_seq(kN, 0.0);
    for (std::size_t i = 0; i < kN; ++i) x1_row(w, x1_seq, i);
    for (std::size_t i = 0; i < kN; ++i) x2_row(w, x2_seq, i);

    std::vector<double> x1_par(kN, 0.0), x2_par(kN, 0.0);
    rt::ThreadPool pool(threads);
    {
      // Two worker tasks, each a do-all internally: split the pool between
      // them via nested parallel_for on disjoint halves of the row range.
      rt::TaskGroup workers(pool);
      workers.run([&] {
        for (std::size_t i = 0; i < kN; ++i) x1_row(w, x1_par, i);
      });
      workers.run([&] {
        for (std::size_t i = 0; i < kN; ++i) x2_row(w, x2_par, i);
      });
      workers.wait();
    }
    std::vector<double> seq_all = x1_seq;
    seq_all.insert(seq_all.end(), x2_seq.begin(), x2_seq.end());
    std::vector<double> par_all = x1_par;
    par_all.insert(par_all.end(), x2_par.begin(), x2_par.end());
    return compare_results(seq_all, par_all);
  }

  VerifyOutcome verify_pat(std::size_t threads) const override {
    const Workload& w = workload();
    std::vector<double> x1_seq(kN, 0.0), x2_seq(kN, 0.0);
    for (std::size_t i = 0; i < kN; ++i) x1_row(w, x1_seq, i);
    for (std::size_t i = 0; i < kN; ++i) x2_row(w, x2_seq, i);

    // Task parallelism + do-all on the pattern runtime: the two worker
    // tasks each spawn their row blocks as child tasks (rows are disjoint,
    // so placement is free to vary under stealing).
    std::vector<double> x1_par(kN, 0.0), x2_par(kN, 0.0);
    rt::ThreadPool pool(threads);
    {
      pat::TaskPool tasks(pool);
      constexpr std::size_t kBlock = 8;
      tasks.submit([&] {
        for (std::size_t lo = 0; lo < kN; lo += kBlock) {
          tasks.submit([&, lo] {
            for (std::size_t i = lo; i < std::min(kN, lo + kBlock); ++i) x1_row(w, x1_par, i);
          });
        }
      });
      tasks.submit([&] {
        for (std::size_t lo = 0; lo < kN; lo += kBlock) {
          tasks.submit([&, lo] {
            for (std::size_t i = lo; i < std::min(kN, lo + kBlock); ++i) x2_row(w, x2_par, i);
          });
        }
      });
      tasks.wait();
    }
    std::vector<double> seq_all = x1_seq;
    seq_all.insert(seq_all.end(), x2_seq.begin(), x2_seq.end());
    std::vector<double> par_all = x1_par;
    par_all.insert(par_all.end(), x2_par.begin(), x2_par.end());
    return compare_results(seq_all, par_all);
  }

  sim::TaskDag build_sim_dag(const core::AnalysisResult& analysis) const override {
    const pet::PetNode& l1 = pet_node_named(analysis, "x1_loop");
    const pet::PetNode& l2 = pet_node_named(analysis, "x2_loop");
    sim::DagBuilder builder;
    const Cost total = l1.inclusive_cost + l2.inclusive_cost;
    const sim::TaskIndex setup = builder.serial_task(total * 55 / 1000);
    auto x1 = builder.lower_loop(l1.iterations, l1.inclusive_cost, core::LoopClass::DoAll, 36);
    auto x2 = builder.lower_loop(l2.iterations, l2.inclusive_cost, core::LoopClass::DoAll, 36);
    builder.before_loop(x1, setup);
    builder.before_loop(x2, setup);
    return builder.take();
  }

  sim::SimParams sim_params(const core::AnalysisResult& analysis) const override {
    (void)analysis;
    return {};
  }
};

}  // namespace

const Benchmark& mvt_benchmark() {
  static const Mvt instance;
  return instance;
}

}  // namespace ppd::bs
