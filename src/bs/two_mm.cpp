// Polybench `2mm` (Table III row 6).
//
// Hotspot reproduced: tmp = A·B followed by D = tmp·C. Row i of the second
// matrix product reads exactly row i of tmp, written by iteration i of the
// first loop (both loops iterate over rows): a = 1, b = 0 between two
// do-all loops — fusion. The fused loop computes tmp row i and immediately
// consumes it. The paper reports 13.50x at 32 threads for its hand-fused
// version.
#include <vector>

#include "bs/benchmark.hpp"
#include "bs/detail.hpp"
#include "pat/pat.hpp"
#include "rt/parallel.hpp"
#include "sim/lowering.hpp"

namespace ppd::bs {
namespace {

constexpr std::size_t kN = 40;

struct Workload {
  Matrix a{kN, kN};
  Matrix b{kN, kN};
  Matrix c{kN, kN};
};

const Workload& workload() {
  static const Workload w = [] {
    Workload wl;
    Rng rng(22);
    wl.a.fill_random(rng);
    wl.b.fill_random(rng);
    wl.c.fill_random(rng);
    return wl;
  }();
  return w;
}

void tmp_row(const Workload& w, Matrix& tmp, std::size_t i) {
  for (std::size_t j = 0; j < kN; ++j) {
    double sum = 0.0;
    for (std::size_t k = 0; k < kN; ++k) sum += w.a.at(i, k) * w.b.at(k, j);
    tmp.at(i, j) = sum;
  }
}

void d_row(const Workload& w, const Matrix& tmp, Matrix& d, std::size_t i) {
  for (std::size_t j = 0; j < kN; ++j) {
    double sum = 0.0;
    for (std::size_t k = 0; k < kN; ++k) sum += tmp.at(i, k) * w.c.at(k, j);
    d.at(i, j) = sum;
  }
}

class TwoMm final : public Benchmark {
 public:
  const PaperRow& paper() const override {
    static const PaperRow row{"2mm", "Polybench", 153, 99.19, 13.50, 32, "Fusion"};
    return row;
  }

  void run_traced(trace::TraceContext& ctx) const override {
    const Workload& w = workload();
    Matrix tmp(kN, kN);
    Matrix d(kN, kN);

    const VarId va = ctx.var("A");
    const VarId vtmp = ctx.var("tmp");
    const VarId vd = ctx.var("D");

    trace::FunctionScope fmain(ctx, "main", 1);
    {
      trace::FunctionScope finit(ctx, "init_array", 2);
      ctx.compute(2, 2120);  // hotspot holds ~99.2%
    }
    {
      trace::FunctionScope fk(ctx, "kernel_2mm", 4);
      {
        trace::LoopScope l1(ctx, "tmp_loop", 6);
        for (std::size_t i = 0; i < kN; ++i) {
          l1.begin_iteration();
          tmp_row(w, tmp, i);
          for (std::size_t j = 0; j < kN; ++j) {
            ctx.read(va, w.a.index(i, j), 8);
            ctx.compute(8, 2 * kN);
            ctx.write(vtmp, tmp.index(i, j), 9);
          }
        }
      }
      {
        trace::LoopScope l2(ctx, "d_loop", 12);
        for (std::size_t i = 0; i < kN; ++i) {
          l2.begin_iteration();
          d_row(w, tmp, d, i);
          for (std::size_t j = 0; j < kN; ++j) {
            ctx.read(vtmp, tmp.index(i, j), 14);
            ctx.compute(14, 2 * kN);
            ctx.write(vd, d.index(i, j), 15);
          }
        }
      }
    }
  }

  VerifyOutcome verify_parallel(std::size_t threads) const override {
    const Workload& w = workload();
    Matrix tmp_seq(kN, kN);
    Matrix d_seq(kN, kN);
    for (std::size_t i = 0; i < kN; ++i) tmp_row(w, tmp_seq, i);
    for (std::size_t i = 0; i < kN; ++i) d_row(w, tmp_seq, d_seq, i);

    Matrix tmp_par(kN, kN);
    Matrix d_par(kN, kN);
    rt::ThreadPool pool(threads);
    rt::parallel_for(pool, 0, kN, [&](std::uint64_t i) {
      tmp_row(w, tmp_par, static_cast<std::size_t>(i));
      d_row(w, tmp_par, d_par, static_cast<std::size_t>(i));
    });
    return compare_results(d_seq.data, d_par.data);
  }

  VerifyOutcome verify_pat(std::size_t threads) const override {
    const Workload& w = workload();
    Matrix tmp_seq(kN, kN);
    Matrix d_seq(kN, kN);
    for (std::size_t i = 0; i < kN; ++i) tmp_row(w, tmp_seq, i);
    for (std::size_t i = 0; i < kN; ++i) d_row(w, tmp_seq, d_seq, i);

    // The detected fusion as one pat do-all: row i of tmp feeds only row i
    // of d, so both multiplies run back-to-back per iteration.
    Matrix tmp_par(kN, kN);
    Matrix d_par(kN, kN);
    rt::ThreadPool pool(threads);
    pat::parallel_for(pool, 0, kN, [&](std::uint64_t i) {
      tmp_row(w, tmp_par, static_cast<std::size_t>(i));
      d_row(w, tmp_par, d_par, static_cast<std::size_t>(i));
    });
    return compare_results(d_seq.data, d_par.data);
  }

  sim::TaskDag build_sim_dag(const core::AnalysisResult& analysis) const override {
    const pet::PetNode& l1 = pet_node_named(analysis, "tmp_loop");
    const pet::PetNode& l2 = pet_node_named(analysis, "d_loop");
    sim::DagBuilder builder;
    const Cost total = l1.inclusive_cost + l2.inclusive_cost;
    const sim::TaskIndex setup = builder.serial_task(total * 30 / 1000);
    auto fused = builder.lower_loop(l1.iterations, total, core::LoopClass::DoAll, 128);
    builder.before_loop(fused, setup);
    return builder.take();
  }

  sim::SimParams sim_params(const core::AnalysisResult& analysis) const override {
    (void)analysis;
    return {};
  }
};

}  // namespace

const Benchmark& two_mm_benchmark() {
  static const TwoMm instance;
  return instance;
}

}  // namespace ppd::bs
