// Polybench `fdtd-2d` (Table III row 12; Table V row 6).
//
// Hotspot reproduced: the time-stepping loop of kernel_fdtd_2d. Each time
// step contains four CUs — the _fict_ boundary update, the ey update, and
// the ex update (three independent workers), plus the hz update that reads
// what all three produced (their barrier). The dependences from hz back to
// ey/ex belong to the *next* time step: they are carried by the time loop
// and therefore do not appear in the per-iteration CU graph. The paper
// implements the task parallelism (with the field updates as do-alls
// internally) and reports 5.19x at 8 threads.
#include <vector>

#include "bs/benchmark.hpp"
#include "bs/detail.hpp"
#include "pat/pat.hpp"
#include "rt/parallel.hpp"
#include "sim/lowering.hpp"

namespace ppd::bs {
namespace {

constexpr std::size_t kNx = 24;
constexpr std::size_t kNy = 24;
constexpr std::size_t kSteps = 20;

struct Fields {
  Matrix ex{kNx, kNy};
  Matrix ey{kNx, kNy};
  Matrix hz{kNx, kNy};
};

void fict_update(Fields& f, std::size_t t) {
  for (std::size_t j = 0; j < kNy; ++j) f.ey.at(0, j) = static_cast<double>(t) * 0.01;
}

void ey_update(Fields& f) {
  for (std::size_t i = 1; i < kNx; ++i) {
    for (std::size_t j = 0; j < kNy; ++j) {
      f.ey.at(i, j) -= 0.5 * (f.hz.at(i, j) - f.hz.at(i - 1, j));
    }
  }
}

void ex_update(Fields& f) {
  for (std::size_t i = 0; i < kNx; ++i) {
    for (std::size_t j = 1; j < kNy; ++j) {
      f.ex.at(i, j) -= 0.5 * (f.hz.at(i, j) - f.hz.at(i, j - 1));
    }
  }
}

void hz_update(Fields& f) {
  for (std::size_t i = 0; i + 1 < kNx; ++i) {
    for (std::size_t j = 0; j + 1 < kNy; ++j) {
      f.hz.at(i, j) -= 0.7 * (f.ex.at(i, j + 1) - f.ex.at(i, j) + f.ey.at(i + 1, j) -
                              f.ey.at(i, j));
    }
  }
}

void run_sequential(Fields& f) {
  for (std::size_t t = 0; t < kSteps; ++t) {
    fict_update(f, t);
    ey_update(f);
    ex_update(f);
    hz_update(f);
  }
}

class Fdtd2d final : public Benchmark {
 public:
  const PaperRow& paper() const override {
    static const PaperRow row{"fdtd-2d", "Polybench", 142, 76.51, 5.19, 8,
                              "Task parallelism"};
    return row;
  }

  void run_traced(trace::TraceContext& ctx) const override {
    Fields f;
    const VarId vstep = ctx.var("step");
    const VarId vex = ctx.var("ex");
    const VarId vey = ctx.var("ey");
    const VarId vhz = ctx.var("hz");

    trace::FunctionScope fmain(ctx, "main", 1);
    {
      trace::FunctionScope finit(ctx, "init_array", 2);
      ctx.compute(2, 45000);  // hotspot holds ~76.5%
    }
    {
      trace::FunctionScope fk(ctx, "kernel_fdtd_2d", 4);
      trace::LoopScope ltime(ctx, "time_loop", 5);
      for (std::size_t t = 0; t < kSteps; ++t) {
        ltime.begin_iteration();
        {
          trace::StatementScope s(ctx, "step_setup", 5);
          ctx.compute(5, 1);
          ctx.write(vstep, 0, 5);
        }
        {
          trace::StatementScope s(ctx, "fict_update", 6);
          ctx.read(vstep, 0, 6);
          fict_update(f, t);
          for (std::size_t j = 0; j < kNy; ++j) ctx.write(vey, f.ey.index(0, j), 6);
          ctx.compute(6, kNy);
        }
        {
          trace::StatementScope s(ctx, "ey_update", 7);
          ctx.read(vstep, 0, 7);
          ey_update(f);
          for (std::size_t i = 1; i < kNx; ++i) {
            for (std::size_t j = 0; j < kNy; ++j) {
              ctx.read(vhz, f.hz.index(i, j), 7);
              ctx.write(vey, f.ey.index(i, j), 7);
            }
          }
          ctx.compute(7, 2 * kNx * kNy);
        }
        {
          trace::StatementScope s(ctx, "ex_update", 8);
          ctx.read(vstep, 0, 8);
          ex_update(f);
          for (std::size_t i = 0; i < kNx; ++i) {
            for (std::size_t j = 1; j < kNy; ++j) {
              ctx.read(vhz, f.hz.index(i, j), 8);
              ctx.write(vex, f.ex.index(i, j), 8);
            }
          }
          ctx.compute(8, 2 * kNx * kNy);
        }
        {
          trace::StatementScope s(ctx, "hz_update", 9);
          hz_update(f);
          for (std::size_t i = 0; i + 1 < kNx; ++i) {
            for (std::size_t j = 0; j + 1 < kNy; j += 2) {
              ctx.read(vex, f.ex.index(i, j + 1), 9);
              ctx.read(vey, f.ey.index(i + 1, j), 9);
              if (i == 0) ctx.read(vey, f.ey.index(0, j), 9);  // the fict boundary row
              ctx.write(vhz, f.hz.index(i, j), 9);
            }
          }
          ctx.compute(9, kNx * kNy / 2);
        }
      }
    }
  }

  VerifyOutcome verify_parallel(std::size_t threads) const override {
    Fields seq;
    run_sequential(seq);

    Fields par;
    rt::ThreadPool pool(threads);
    for (std::size_t t = 0; t < kSteps; ++t) {
      // Detected task graph: three workers fork per step, barrier hz after.
      rt::TaskGroup workers(pool);
      workers.run([&] { fict_update(par, t); });
      workers.run([&] { ey_update_rows(par, 1, kNx); });
      workers.run([&] { ex_update_rows(par, 0, kNx); });
      workers.wait();
      hz_update(par);
    }

    std::vector<double> seq_all = seq.hz.data;
    seq_all.insert(seq_all.end(), seq.ex.data.begin(), seq.ex.data.end());
    seq_all.insert(seq_all.end(), seq.ey.data.begin(), seq.ey.data.end());
    std::vector<double> par_all = par.hz.data;
    par_all.insert(par_all.end(), par.ex.data.begin(), par.ex.data.end());
    par_all.insert(par_all.end(), par.ey.data.begin(), par.ey.data.end());
    return compare_results(seq_all, par_all);
  }

  VerifyOutcome verify_pat(std::size_t threads) const override {
    Fields seq;
    run_sequential(seq);

    // The detected per-step task graph on the pattern runtime: the three
    // independent updates as TaskPool tasks, hz as their barrier.
    Fields par;
    rt::ThreadPool pool(threads);
    for (std::size_t t = 0; t < kSteps; ++t) {
      pat::TaskPool tasks(pool);
      tasks.submit([&par, t] { fict_update(par, t); });
      tasks.submit([&par] { ey_update_rows(par, 1, kNx); });
      tasks.submit([&par] { ex_update_rows(par, 0, kNx); });
      tasks.wait();
      hz_update(par);
    }

    std::vector<double> seq_all = seq.hz.data;
    seq_all.insert(seq_all.end(), seq.ex.data.begin(), seq.ex.data.end());
    seq_all.insert(seq_all.end(), seq.ey.data.begin(), seq.ey.data.end());
    std::vector<double> par_all = par.hz.data;
    par_all.insert(par_all.end(), par.ex.data.begin(), par.ex.data.end());
    par_all.insert(par_all.end(), par.ey.data.begin(), par.ey.data.end());
    return compare_results(seq_all, par_all);
  }

  sim::TaskDag build_sim_dag(const core::AnalysisResult& analysis) const override {
    // Implemented version: per time step, the three updates run as do-all
    // worker tasks, hz as a do-all barrier, chained across steps.
    const pet::PetNode& time_loop = pet_node_named(analysis, "time_loop");
    const Cost step_cost = time_loop.inclusive_cost / (time_loop.iterations > 0
                                                           ? time_loop.iterations
                                                           : 1);
    const Cost quarter = step_cost / 4;
    sim::DagBuilder builder;
    sim::TaskIndex prev = sim::kInvalidTask;
    for (std::uint64_t t = 0; t < kSteps; ++t) {
      const sim::TaskIndex fork = builder.serial_task(1, prev);
      auto fict = builder.lower_loop(kNy, quarter / 8 + 1, core::LoopClass::DoAll, 4);
      auto ey = builder.lower_loop(kNx, quarter + quarter / 2, core::LoopClass::DoAll, 8);
      auto ex = builder.lower_loop(kNx, quarter + quarter / 2, core::LoopClass::DoAll, 8);
      builder.before_loop(fict, fork);
      builder.before_loop(ey, fork);
      builder.before_loop(ex, fork);
      auto hz = builder.lower_loop(kNx, quarter, core::LoopClass::DoAll, 8);
      builder.link_all(fict, hz);
      builder.link_all(ey, hz);
      builder.link_all(ex, hz);
      prev = builder.serial_task(1);
      builder.after_loop(prev, hz);
    }
    return builder.take();
  }

  sim::SimParams sim_params(const core::AnalysisResult& analysis) const override {
    sim::SimParams params;
    // Stencil sweeps are bandwidth-bound; the paper saw the peak at 8
    // threads.
    const pet::PetNode& fk = pet_node_named(analysis, "kernel_fdtd_2d");
    params.memory_work = (fk.inclusive_cost * 4) / 5;
    params.memory_scale_limit = 4;
    return params;
  }

 private:
  static void ey_update_rows(Fields& f, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      for (std::size_t j = 0; j < kNy; ++j) {
        f.ey.at(i, j) -= 0.5 * (f.hz.at(i, j) - f.hz.at(i - 1, j));
      }
    }
  }
  static void ex_update_rows(Fields& f, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      for (std::size_t j = 1; j < kNy; ++j) {
        f.ex.at(i, j) -= 0.5 * (f.hz.at(i, j) - f.hz.at(i, j - 1));
      }
    }
  }
};

}  // namespace

const Benchmark& fdtd_2d_benchmark() {
  static const Fdtd2d instance;
  return instance;
}

}  // namespace ppd::bs
