#include "bs/benchmark.hpp"

#include "support/assert.hpp"

namespace ppd::bs {

// Each benchmark translation unit defines a factory; the registry lists them
// in Table III order.
const Benchmark& ludcmp_benchmark();
const Benchmark& reg_detect_benchmark();
const Benchmark& fluidanimate_benchmark();
const Benchmark& rotcc_benchmark();
const Benchmark& correlation_benchmark();
const Benchmark& two_mm_benchmark();
const Benchmark& fib_benchmark();
const Benchmark& sort_benchmark();
const Benchmark& strassen_benchmark();
const Benchmark& three_mm_benchmark();
const Benchmark& mvt_benchmark();
const Benchmark& fdtd_2d_benchmark();
const Benchmark& kmeans_benchmark();
const Benchmark& streamcluster_benchmark();
const Benchmark& nqueens_benchmark();
const Benchmark& bicg_benchmark();
const Benchmark& gesummv_benchmark();
const Benchmark& sum_local_benchmark();
const Benchmark& sum_module_benchmark();

const std::vector<const Benchmark*>& all_benchmarks() {
  static const std::vector<const Benchmark*> benchmarks = {
      &ludcmp_benchmark(),     &reg_detect_benchmark(), &fluidanimate_benchmark(),
      &rotcc_benchmark(),      &correlation_benchmark(), &two_mm_benchmark(),
      &fib_benchmark(),        &sort_benchmark(),       &strassen_benchmark(),
      &three_mm_benchmark(),   &mvt_benchmark(),        &fdtd_2d_benchmark(),
      &kmeans_benchmark(),     &streamcluster_benchmark(), &nqueens_benchmark(),
      &bicg_benchmark(),       &gesummv_benchmark(),    &sum_local_benchmark(),
      &sum_module_benchmark(),
  };
  return benchmarks;
}

const Benchmark* find_benchmark(std::string_view name) {
  for (const Benchmark* b : all_benchmarks()) {
    if (b->paper().name == name) return b;
  }
  return nullptr;
}

TracedAnalysis analyze_benchmark(const Benchmark& benchmark, core::AnalyzerConfig config) {
  TracedAnalysis result;
  result.ctx = std::make_unique<trace::TraceContext>();
  core::PatternAnalyzer analyzer(*result.ctx, config);
  benchmark.run_traced(*result.ctx);
  result.analysis = analyzer.analyze();
  return result;
}

}  // namespace ppd::bs
