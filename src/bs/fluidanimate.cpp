// Parsec `fluidanimate` (Table III row 3; Table IV row 3; Listing 3).
//
// Hotspot reproduced: the ComputeDensities / ComputeForces loop pair of the
// SPH solver, reduced to a 1D cell chain (DESIGN.md §5). The first loop
// iterates over (cell, interaction) pairs — K = 20 interactions per cell
// with neighbour offsets -3..16 — and *accumulates* into the density of the
// neighbour cell; the second loop walks cells, reads the densities of the
// cell and its immediate neighbours, writes the acceleration, and re-scales
// the cell's density (the paper: "reads and (again) updates the densities").
//
// The last write to density[m] happens at interaction index 20m + 60 and the
// first read in the force loop at cell m-1, so the recorded pairs follow
// i_y = i_x/20 - 4: a = 0.05 (one force iteration per ~20 density
// iterations), b < 0, and e = 1 - 8/C ~ 0.97 — the paper's Table IV row.
// Neither loop is do-all; the implemented pipeline only reaches ~1.5x.
#include <vector>

#include "bs/benchmark.hpp"
#include "bs/detail.hpp"
#include "pat/pat.hpp"
#include "rt/parallel.hpp"
#include "sim/lowering.hpp"

namespace ppd::bs {
namespace {

constexpr std::size_t kCells = 256;
constexpr std::size_t kInteractions = 20;  // neighbour offsets -3 .. +16
constexpr long kOffsetMin = -3;

struct Workload {
  std::vector<double> pos = std::vector<double>(kCells);
};

const Workload& workload() {
  static const Workload w = [] {
    Workload wl;
    Rng rng(1234);
    for (double& v : wl.pos) v = rng.uniform();
    return wl;
  }();
  return w;
}

/// One density interaction: iteration t of the first loop.
void density_step(const Workload& w, std::vector<double>& density, std::uint64_t t) {
  const std::size_t c = static_cast<std::size_t>(t / kInteractions);
  const long delta = kOffsetMin + static_cast<long>(t % kInteractions);
  const long n = static_cast<long>(c) + delta;
  if (n < 0 || n >= static_cast<long>(kCells)) return;
  const double contrib = 0.01 * (w.pos[c] + w.pos[static_cast<std::size_t>(n)]);
  density[static_cast<std::size_t>(n)] += contrib;
}

/// One force iteration: cell c of the second loop.
void force_step(std::vector<double>& density, std::vector<double>& accel, std::size_t c) {
  const double left = c > 0 ? density[c - 1] : 0.0;
  const double right = c + 1 < kCells ? density[c + 1] : 0.0;
  double f = 0.0;
  for (int r = 0; r < 20; ++r) f += 0.05 * (left + density[c] + right + f * 0.25);
  accel[c] = f;
  density[c] *= 0.995;  // the second loop re-updates the densities
}

void run_sequential(const Workload& w, std::vector<double>& density,
                    std::vector<double>& accel) {
  for (std::uint64_t t = 0; t < kCells * kInteractions; ++t) density_step(w, density, t);
  for (std::size_t c = 0; c < kCells; ++c) force_step(density, accel, c);
}

class Fluidanimate final : public Benchmark {
 public:
  const PaperRow& paper() const override {
    static const PaperRow row{"fluidanimate", "Parsec", 3987, 99.54, 1.5, 3,
                              "Multi-loop pipeline"};
    return row;
  }

  void run_traced(trace::TraceContext& ctx) const override {
    const Workload& w = workload();
    std::vector<double> density(kCells, 0.0);
    std::vector<double> accel(kCells, 0.0);

    const VarId vpos = ctx.var("pos");
    const VarId vdensity = ctx.var("density");
    const VarId vaccel = ctx.var("accel");

    trace::FunctionScope fmain(ctx, "main", 1);
    {
      trace::FunctionScope finit(ctx, "InitSim", 2);
      ctx.compute(2, 180);  // hotspot holds ~99.5%
    }
    {
      trace::FunctionScope fk(ctx, "ComputeForcesMT", 4);
      {
        trace::LoopScope l1(ctx, "densities_loop", 2);
        for (std::uint64_t t = 0; t < kCells * kInteractions; ++t) {
          l1.begin_iteration();
          const std::size_t c = static_cast<std::size_t>(t / kInteractions);
          const long n = static_cast<long>(c) + kOffsetMin +
                         static_cast<long>(t % kInteractions);
          density_step(w, density, t);
          if (n < 0 || n >= static_cast<long>(kCells)) continue;
          ctx.read(vpos, c, 4);
          ctx.compute(4, 1);
          ctx.read(vdensity, static_cast<std::uint64_t>(n), 5);
          ctx.write(vdensity, static_cast<std::uint64_t>(n), 5);
        }
      }
      {
        trace::LoopScope l2(ctx, "forces_loop", 8);
        for (std::size_t c = 0; c < kCells; ++c) {
          l2.begin_iteration();
          force_step(density, accel, c);
          if (c > 0) ctx.read(vdensity, c - 1, 10);
          if (c + 1 < kCells) ctx.read(vdensity, c + 1, 10);
          ctx.read(vdensity, c, 10);
          ctx.compute(10, 44);
          ctx.write(vaccel, c, 11);
          ctx.read(vdensity, c, 12);
          ctx.write(vdensity, c, 12);
        }
      }
    }
  }

  VerifyOutcome verify_parallel(std::size_t threads) const override {
    const Workload& w = workload();
    std::vector<double> density_seq(kCells, 0.0);
    std::vector<double> accel_seq(kCells, 0.0);
    run_sequential(w, density_seq, accel_seq);

    std::vector<double> density_par(kCells, 0.0);
    std::vector<double> accel_par(kCells, 0.0);
    rt::ThreadPool pool(threads);
    const std::uint64_t nx = kCells * kInteractions;
    // Force iteration c reads density[c+1], last written at interaction
    // index 20(c+1)+60; the detected line i_y = i_x/20 - 4, conservatively
    // inverted (over-waiting near the boundary is safe, under-waiting would
    // race).
    rt::pipelined_loop_pair(
        pool, nx, kCells,
        [nx](std::uint64_t c) { return std::min(nx, 20 * c + 81); },
        [&](std::uint64_t t) { density_step(w, density_par, t); },
        [&](std::uint64_t c) {
          force_step(density_par, accel_par, static_cast<std::size_t>(c));
        },
        /*x_doall=*/false);

    VerifyOutcome accel_check = compare_results(accel_seq, accel_par);
    VerifyOutcome density_check = compare_results(density_seq, density_par);
    VerifyOutcome out;
    out.ok = accel_check.ok && density_check.ok;
    out.detail = "accel: " + accel_check.detail + "; density: " + density_check.detail;
    return out;
  }

  VerifyOutcome verify_pat(std::size_t threads) const override {
    const Workload& w = workload();
    std::vector<double> density_seq(kCells, 0.0);
    std::vector<double> accel_seq(kCells, 0.0);
    run_sequential(w, density_seq, accel_seq);

    // The detected multi-loop pipeline as a pat::Pipeline: density blocks
    // stream through a serial stage; the sink runs every force iteration
    // whose dependence frontier (i_y = i_x/20 - 4, inverted to
    // need(c) = 20c + 81 as above) lies behind the streamed progress. A
    // force iteration only touches cells <= c+1, and density interactions
    // past need(c) only write cells >= c+2, so the overlap is race-free.
    std::vector<double> density_par(kCells, 0.0);
    std::vector<double> accel_par(kCells, 0.0);
    rt::ThreadPool pool(threads);
    const std::uint64_t nx = kCells * kInteractions;
    constexpr std::uint64_t kBlock = 160;
    const std::uint64_t blocks = (nx + kBlock - 1) / kBlock;
    std::uint64_t next_block = 0;
    std::uint64_t next_force = 0;
    pat::Pipeline<std::uint64_t> pipe(pool);
    pipe.stage([&](std::uint64_t b) {
      const std::uint64_t lo = b * kBlock;
      const std::uint64_t hi = std::min(nx, lo + kBlock);
      for (std::uint64_t t = lo; t < hi; ++t) density_step(w, density_par, t);
      return b;
    });
    pipe.run(
        [&]() -> std::optional<std::uint64_t> {
          if (next_block >= blocks) return std::nullopt;
          return next_block++;
        },
        [&](std::uint64_t b) {
          const std::uint64_t progress = std::min(nx, (b + 1) * kBlock);
          while (next_force < kCells && std::min(nx, 20 * next_force + 81) <= progress) {
            force_step(density_par, accel_par, static_cast<std::size_t>(next_force));
            ++next_force;
          }
        });

    VerifyOutcome accel_check = compare_results(accel_seq, accel_par);
    VerifyOutcome density_check = compare_results(density_seq, density_par);
    VerifyOutcome out;
    out.ok = accel_check.ok && density_check.ok;
    out.detail = "accel: " + accel_check.detail + "; density: " + density_check.detail;
    return out;
  }

  sim::TaskDag build_sim_dag(const core::AnalysisResult& analysis) const override {
    const pet::PetNode& l1 = pet_node_named(analysis, "densities_loop");
    const pet::PetNode& l2 = pet_node_named(analysis, "forces_loop");
    sim::DagBuilder builder;
    // Neither loop is do-all: both lower to dependence chains; the pipeline
    // overlap between the two chains is all the parallelism there is.
    auto x =
        builder.lower_loop(l1.iterations, l1.inclusive_cost, core::LoopClass::Sequential, 128);
    auto y =
        builder.lower_loop(l2.iterations, l2.inclusive_cost, core::LoopClass::Sequential, 128);
    const prof::LoopPairKey key{l1.region, l2.region};
    auto it = analysis.profile.loop_pairs.find(key);
    if (it != analysis.profile.loop_pairs.end()) builder.link_pairs(x, y, it->second);
    return builder.take();
  }
};

}  // namespace

const Benchmark& fluidanimate_benchmark() {
  static const Fluidanimate instance;
  return instance;
}

}  // namespace ppd::bs
