// Polybench `reg_detect` (Table III row 2; Table IV row 2; Listing 2).
//
// Hotspot reproduced: the two loops of kernel_reg_detect, kept literally:
//
//   for (i = 0; i < N-1; i++)  mean[i][j] = ...          (do-all)
//   for (i = 1; i < N-1; i++)  path[i][j] = path[i-1][j-1] + mean[i][j]
//
// Iteration k (0-based) of the second loop works on row i = k+1 and reads
// mean[k+1][*], which the first loop wrote in *its* iteration k+1 — so the
// recorded pairs are (k+1, k): a = 1, b = -1. No iteration of the second
// loop depends on the first iteration of the first loop, exactly the
// coefficient anomaly the paper highlights; they peel the first iteration
// and pipeline the rest, reporting 2.26x at 16 threads.
#include <vector>

#include "bs/benchmark.hpp"
#include "bs/detail.hpp"
#include "pat/pat.hpp"
#include "rt/parallel.hpp"
#include "sim/lowering.hpp"

namespace ppd::bs {
namespace {

constexpr std::size_t kGrid = 200;  // PB_MAXGRID
constexpr std::size_t kCols = 24;

struct Workload {
  Matrix input{kGrid, kCols};
};

const Workload& workload() {
  static const Workload w = [] {
    Workload wl;
    Rng rng(7);
    wl.input.fill_random(rng);
    return wl;
  }();
  return w;
}

void mean_row(const Workload& w, Matrix& mean, std::size_t i) {
  for (std::size_t j = 0; j < kCols; ++j) {
    mean.at(i, j) = (w.input.at(i, j) + 1.0) * 0.5;
  }
}

void path_row(const Matrix& mean, Matrix& path, std::size_t i) {
  for (std::size_t j = 0; j < kCols; ++j) {
    const double prev = (i >= 1 && j >= 1) ? path.at(i - 1, j - 1) : 0.0;
    path.at(i, j) = prev + mean.at(i, j);
  }
}

void run_sequential(const Workload& w, Matrix& mean, Matrix& path) {
  for (std::size_t i = 0; i < kGrid - 1; ++i) mean_row(w, mean, i);
  for (std::size_t i = 1; i < kGrid - 1; ++i) path_row(mean, path, i);
}

class RegDetect final : public Benchmark {
 public:
  const PaperRow& paper() const override {
    static const PaperRow row{"reg_detect", "Polybench", 137, 99.50, 2.26, 16,
                              "Multi-loop pipeline"};
    return row;
  }

  void run_traced(trace::TraceContext& ctx) const override {
    const Workload& w = workload();
    Matrix mean(kGrid, kCols);
    Matrix path(kGrid, kCols);

    const VarId vmean = ctx.var("mean");
    const VarId vpath = ctx.var("path");

    trace::FunctionScope fmain(ctx, "main", 1);
    {
      trace::FunctionScope finit(ctx, "init_array", 2);
      ctx.compute(2, 120);  // kernel carries ~99.5% of the instructions
    }
    {
      trace::FunctionScope fk(ctx, "kernel_reg_detect", 1);
      {
        trace::LoopScope l1(ctx, "reg_detect_L1", 3);
        for (std::size_t i = 0; i < kGrid - 1; ++i) {
          l1.begin_iteration();
          mean_row(w, mean, i);
          for (std::size_t j = 0; j < kCols; ++j) {
            ctx.compute(5, 5);
            ctx.write(vmean, mean.index(i, j), 5);
          }
        }
      }
      {
        trace::LoopScope l2(ctx, "reg_detect_L2", 7);
        for (std::size_t i = 1; i < kGrid - 1; ++i) {
          l2.begin_iteration();
          path_row(mean, path, i);
          for (std::size_t j = 0; j < kCols; ++j) {
            if (j >= 1) ctx.read(vpath, path.index(i - 1, j - 1), 9);
            ctx.read(vmean, mean.index(i, j), 9);
            ctx.compute(9, 1);
            ctx.write(vpath, path.index(i, j), 9);
          }
        }
      }
    }
  }

  VerifyOutcome verify_parallel(std::size_t threads) const override {
    const Workload& w = workload();
    Matrix mean_seq(kGrid, kCols);
    Matrix path_seq(kGrid, kCols);
    run_sequential(w, mean_seq, path_seq);

    Matrix mean_par(kGrid, kCols);
    Matrix path_par(kGrid, kCols);
    rt::ThreadPool pool(threads);
    // y-iteration k (row k+1) reads mean rows up to k+1, i.e. x-iterations
    // [0, k+2) — the detected a=1, b=-1 line.
    rt::pipelined_loop_pair(
        pool, kGrid - 1, kGrid - 2, [](std::uint64_t k) { return k + 2; },
        [&](std::uint64_t i) { mean_row(w, mean_par, static_cast<std::size_t>(i)); },
        [&](std::uint64_t k) { path_row(mean_par, path_par, static_cast<std::size_t>(k) + 1); },
        /*x_doall=*/true);
    return compare_results(path_seq.data, path_par.data);
  }

  VerifyOutcome verify_pat(std::size_t threads) const override {
    const Workload& w = workload();
    Matrix mean_seq(kGrid, kCols);
    Matrix path_seq(kGrid, kCols);
    run_sequential(w, mean_seq, path_seq);

    // The detected pipeline on the pattern runtime: mean row blocks stream
    // through a farm (the do-all stage); the ordered sink advances the path
    // recurrence across every row whose mean block has been delivered
    // (a = 1, b = -1: path row i needs mean rows <= i).
    Matrix mean_par(kGrid, kCols);
    Matrix path_par(kGrid, kCols);
    rt::ThreadPool pool(threads);
    constexpr std::size_t kBlock = 25;
    const std::size_t mean_rows = kGrid - 1;
    const std::uint64_t blocks = (mean_rows + kBlock - 1) / kBlock;
    std::uint64_t next_block = 0;
    std::size_t next_path = 1;
    pat::Pipeline<std::uint64_t> pipe(pool);
    pipe.farm(
        [&](std::uint64_t block) {
          const std::size_t lo = static_cast<std::size_t>(block) * kBlock;
          const std::size_t hi = std::min(mean_rows, lo + kBlock);
          for (std::size_t i = lo; i < hi; ++i) mean_row(w, mean_par, i);
          return block;
        },
        4);
    pipe.run(
        [&]() -> std::optional<std::uint64_t> {
          if (next_block >= blocks) return std::nullopt;
          return next_block++;
        },
        [&](std::uint64_t block) {
          const std::size_t progress = std::min(mean_rows, (static_cast<std::size_t>(block) + 1) * kBlock);
          while (next_path < mean_rows && next_path < progress) {
            path_row(mean_par, path_par, next_path);
            ++next_path;
          }
        });
    return compare_results(path_seq.data, path_par.data);
  }

  sim::TaskDag build_sim_dag(const core::AnalysisResult& analysis) const override {
    const pet::PetNode& l1 = pet_node_named(analysis, "reg_detect_L1");
    const pet::PetNode& l2 = pet_node_named(analysis, "reg_detect_L2");
    sim::DagBuilder builder;
    auto x = builder.lower_loop(l1.iterations, l1.inclusive_cost, core::LoopClass::DoAll, 128);
    auto y =
        builder.lower_loop(l2.iterations, l2.inclusive_cost, core::LoopClass::Sequential, 128);
    const prof::LoopPairKey key{l1.region, l2.region};
    auto it = analysis.profile.loop_pairs.find(key);
    if (it != analysis.profile.loop_pairs.end()) builder.link_pairs(x, y, it->second);
    return builder.take();
  }
};

}  // namespace

const Benchmark& reg_detect_benchmark() {
  static const RegDetect instance;
  return instance;
}

}  // namespace ppd::bs
