// Polybench `correlation` (Table III row 5).
//
// Hotspot reproduced: the per-column statistics loop (mean and stddev of
// each column) followed by the per-column normalization loop. Column j of
// the normalization reads mean[j]/std[j] written by iteration j of the
// statistics loop — a 1:1 dependence between two do-all loops: fusion.
// Polybench ships no parallel version; the paper implements the fusion by
// hand and reports 10.74x at 32 threads.
#include <cmath>
#include <vector>

#include "bs/benchmark.hpp"
#include "bs/detail.hpp"
#include "pat/pat.hpp"
#include "rt/parallel.hpp"
#include "sim/lowering.hpp"

namespace ppd::bs {
namespace {

constexpr std::size_t kRows = 64;   // N observations
constexpr std::size_t kCols = 128;  // M variables

struct Workload {
  Matrix data{kRows, kCols};
};

const Workload& workload() {
  static const Workload w = [] {
    Workload wl;
    Rng rng(2016);
    wl.data.fill_random(rng);
    return wl;
  }();
  return w;
}

void stats_column(const Matrix& data, std::vector<double>& mean, std::vector<double>& stddev,
                  std::size_t j) {
  double m = 0.0;
  for (std::size_t i = 0; i < kRows; ++i) m += data.at(i, j);
  m /= static_cast<double>(kRows);
  double s = 0.0;
  for (std::size_t i = 0; i < kRows; ++i) s += (data.at(i, j) - m) * (data.at(i, j) - m);
  mean[j] = m;
  stddev[j] = std::sqrt(s / static_cast<double>(kRows)) + 0.1;
}

void normalize_column(Matrix& data, const std::vector<double>& mean,
                      const std::vector<double>& stddev, std::size_t j) {
  for (std::size_t i = 0; i < kRows; ++i) {
    data.at(i, j) = (data.at(i, j) - mean[j]) / stddev[j];
  }
}

class Correlation final : public Benchmark {
 public:
  const PaperRow& paper() const override {
    static const PaperRow row{"Correlation", "Polybench", 137, 99.27, 10.74, 32, "Fusion"};
    return row;
  }

  void run_traced(trace::TraceContext& ctx) const override {
    const Workload& w = workload();
    Matrix data = w.data;
    std::vector<double> mean(kCols, 0.0);
    std::vector<double> stddev(kCols, 0.0);

    const VarId vdata = ctx.var("data");
    const VarId vmean = ctx.var("mean");
    const VarId vstd = ctx.var("stddev");

    trace::FunctionScope fmain(ctx, "main", 1);
    {
      trace::FunctionScope finit(ctx, "init_array", 2);
      ctx.compute(2, 340);  // hotspot holds ~99.3%
    }
    {
      trace::FunctionScope fk(ctx, "kernel_correlation", 4);
      {
        trace::LoopScope l1(ctx, "stats_loop", 6);
        for (std::size_t j = 0; j < kCols; ++j) {
          l1.begin_iteration();
          stats_column(data, mean, stddev, j);
          for (std::size_t i = 0; i < kRows; ++i) ctx.read(vdata, data.index(i, j), 8);
          ctx.compute(8, 3 * kRows);
          ctx.write(vmean, j, 9);
          ctx.write(vstd, j, 10);
        }
      }
      {
        trace::LoopScope l2(ctx, "normalize_loop", 13);
        for (std::size_t j = 0; j < kCols; ++j) {
          l2.begin_iteration();
          normalize_column(data, mean, stddev, j);
          ctx.read(vmean, j, 15);
          ctx.read(vstd, j, 15);
          for (std::size_t i = 0; i < kRows; ++i) {
            ctx.read(vdata, data.index(i, j), 16);
            ctx.compute(16, 2);
            ctx.write(vdata, data.index(i, j), 16);
          }
        }
      }
    }
  }

  VerifyOutcome verify_parallel(std::size_t threads) const override {
    const Workload& w = workload();
    Matrix data_seq = w.data;
    std::vector<double> mean_seq(kCols, 0.0);
    std::vector<double> std_seq(kCols, 0.0);
    for (std::size_t j = 0; j < kCols; ++j) stats_column(data_seq, mean_seq, std_seq, j);
    for (std::size_t j = 0; j < kCols; ++j) normalize_column(data_seq, mean_seq, std_seq, j);

    Matrix data_par = w.data;
    std::vector<double> mean_par(kCols, 0.0);
    std::vector<double> std_par(kCols, 0.0);
    rt::ThreadPool pool(threads);
    rt::parallel_for(pool, 0, kCols, [&](std::uint64_t j) {
      stats_column(data_par, mean_par, std_par, static_cast<std::size_t>(j));
      normalize_column(data_par, mean_par, std_par, static_cast<std::size_t>(j));
    });
    return compare_results(data_seq.data, data_par.data);
  }

  VerifyOutcome verify_pat(std::size_t threads) const override {
    const Workload& w = workload();
    Matrix data_seq = w.data;
    std::vector<double> mean_seq(kCols, 0.0);
    std::vector<double> std_seq(kCols, 0.0);
    for (std::size_t j = 0; j < kCols; ++j) stats_column(data_seq, mean_seq, std_seq, j);
    for (std::size_t j = 0; j < kCols; ++j) normalize_column(data_seq, mean_seq, std_seq, j);

    // The fused per-column do-all on the pattern runtime; guided chunking
    // exercises the decreasing-chunk plan.
    Matrix data_par = w.data;
    std::vector<double> mean_par(kCols, 0.0);
    std::vector<double> std_par(kCols, 0.0);
    rt::ThreadPool pool(threads);
    pat::ForOptions options;
    options.chunking = pat::Chunking::Guided;
    options.min_chunk = 4;
    pat::parallel_for(
        pool, 0, kCols,
        [&](std::uint64_t j) {
          stats_column(data_par, mean_par, std_par, static_cast<std::size_t>(j));
          normalize_column(data_par, mean_par, std_par, static_cast<std::size_t>(j));
        },
        options);
    return compare_results(data_seq.data, data_par.data);
  }

  sim::TaskDag build_sim_dag(const core::AnalysisResult& analysis) const override {
    const pet::PetNode& l1 = pet_node_named(analysis, "stats_loop");
    const pet::PetNode& l2 = pet_node_named(analysis, "normalize_loop");
    sim::DagBuilder builder;
    const Cost total = l1.inclusive_cost + l2.inclusive_cost;
    const sim::TaskIndex setup = builder.serial_task(total * 62 / 1000);
    auto fused = builder.lower_loop(l1.iterations, total, core::LoopClass::DoAll, 128);
    builder.before_loop(fused, setup);
    return builder.take();
  }

  sim::SimParams sim_params(const core::AnalysisResult& analysis) const override {
    (void)analysis;
    return {};
  }
};

}  // namespace

const Benchmark& correlation_benchmark() {
  static const Correlation instance;
  return instance;
}

}  // namespace ppd::bs
