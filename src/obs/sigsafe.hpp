// Async-signal-safe buffered fd writer for the obs crash path.
//
// A fatal-signal handler may only call the handful of functions POSIX
// lists as async-signal-safe — write(2) qualifies, snprintf/malloc/
// iostreams/mutexes do not. FdWriter formats integers by hand into a
// stack buffer and flushes with raw write() loops, so the flight-recorder
// dump and the registry crash walk can run from inside a SIGSEGV handler
// without touching the allocator or any lock.
#pragma once

#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ppd::obs {

class FdWriter {
 public:
  explicit FdWriter(int fd) noexcept : fd_(fd) {}
  ~FdWriter() { flush(); }

  FdWriter(const FdWriter&) = delete;
  FdWriter& operator=(const FdWriter&) = delete;

  void put(std::string_view text) noexcept {
    for (const char c : text) put_char(c);
  }

  void put_char(char c) noexcept {
    if (length_ == sizeof(buffer_)) flush();
    buffer_[length_++] = c;
  }

  void put_u64(std::uint64_t v) noexcept {
    char digits[20];
    std::size_t n = 0;
    do {
      digits[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) put_char(digits[--n]);
  }

  void put_i64(std::int64_t v) noexcept {
    if (v < 0) {
      put_char('-');
      // Negate via unsigned so INT64_MIN does not overflow.
      put_u64(~static_cast<std::uint64_t>(v) + 1);
    } else {
      put_u64(static_cast<std::uint64_t>(v));
    }
  }

  void flush() noexcept {
    const char* data = buffer_;
    std::size_t left = length_;
    while (left > 0) {
      const ssize_t n = ::write(fd_, data, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // nowhere to report I/O trouble from a signal handler
      }
      data += n;
      left -= static_cast<std::size_t>(n);
    }
    length_ = 0;
  }

 private:
  int fd_;
  char buffer_[512];
  std::size_t length_ = 0;
};

}  // namespace ppd::obs
