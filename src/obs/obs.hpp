// ppd::obs — observability for the analysis pipeline itself.
//
// The tool chain is a heavy dynamic-analysis pipeline (trace replay → CU
// construction → dependence profiling → pattern detectors → report) that
// runs chunk-parallel on a thread pool, and a pipeline we cannot see into
// cannot be made faster. This module provides the measurement substrate:
//
//  * a thread-safe metrics **Registry** of named monotonic counters,
//    gauges (with high-water mark), and fixed-bucket power-of-two
//    histograms — always on, cheap enough to leave in hot-ish paths
//    (single relaxed atomic RMW per update; name lookup is done once and
//    the returned reference cached by the instrumented site);
//
//  * RAII **ScopedSpan** phase timers that record per-thread begin/end
//    events into an installed SpanCollector. Spans are a *runtime* no-op
//    when no collector is installed (one relaxed atomic load per scope)
//    and a *compile-time* no-op when the library is built with
//    `-DPPD_OBS=OFF` (every type below collapses to an empty inline stub,
//    so instrumented call sites compile unchanged and vanish).
//
// Exporters (obs/export.hpp) turn the collected data into a Chrome
// trace-event JSON file (loadable in Perfetto / chrome://tracing, one
// track per worker thread) and a flat sorted `key=value` metrics dump.
//
// Threading contract: install_collector() must happen-before any thread
// that will record spans starts its work, and the collector must outlive
// every recording thread (install(nullptr) + join before destroying it).
// The CLI owns exactly that window around a run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#if !defined(PPD_OBS_DISABLED)
#include <atomic>
#include <bit>
#include <map>
#include <memory>
#include <mutex>
#endif

namespace ppd::obs {

/// One completed phase: [begin_ns, end_ns) on thread `tid` (small dense
/// per-process thread ordinal, not the OS id).
struct SpanRecord {
  std::string name;
  std::uint32_t tid = 0;
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
};

/// Flat metrics snapshot entry (see Registry::snapshot for the key scheme).
using MetricEntry = std::pair<std::string, std::int64_t>;

#if !defined(PPD_OBS_DISABLED)

/// Nanoseconds on the steady clock, anchored at the first call so span
/// timestamps stay small.
[[nodiscard]] std::uint64_t now_ns();

/// Dense per-process ordinal of the calling thread (first caller gets 0).
[[nodiscard]] std::uint32_t thread_id();

/// Monotonic counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Signed gauge with a high-water mark (e.g. instantaneous queue depth).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
    raise_max(v);
  }
  void add(std::int64_t delta) noexcept {
    const std::int64_t v =
        value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    raise_max(v);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void raise_max(std::int64_t v) noexcept {
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Fixed-bucket latency/size histogram. Bucket i holds values whose bit
/// width is i (i.e. upper bound 2^i - 1), so record() is a shift and one
/// relaxed RMW — no per-value allocation, mergeable by addition.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t v) noexcept {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    std::uint64_t total = 0;
    for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
    return total;
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Inclusive upper edge of bucket i.
  [[nodiscard]] static constexpr std::uint64_t bucket_upper_bound(std::size_t i) {
    return i + 1 >= kBuckets ? ~std::uint64_t{0}
                             : (std::uint64_t{1} << (i + 1)) - 1;
  }
  [[nodiscard]] static constexpr std::size_t bucket_index(std::uint64_t v) {
    const std::size_t width = static_cast<std::size_t>(std::bit_width(v));
    return width == 0 ? 0 : width - 1;
  }

  /// Upper bound of the bucket where the cumulative count crosses `q`
  /// (0 < q <= 1); 0 when the histogram is empty.
  [[nodiscard]] std::uint64_t quantile_upper_bound(double q) const noexcept;

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Process-wide named-instrument registry. Lookup takes a mutex; the
/// returned references are stable for the process lifetime (instruments
/// are never deallocated — reset() zeroes, it does not erase), so hot
/// sites look up once and keep the reference.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Flat snapshot, sorted by key. Counters appear as `name`; gauges as
  /// `name` and `name.max`; histograms as `name.count`, `name.sum`,
  /// `name.max`, `name.p50`, `name.p90`, `name.p99` (bucket upper bounds).
  /// Zero-valued counters/empty histograms are included — an instrument
  /// that exists but never fired is itself a finding.
  [[nodiscard]] std::vector<MetricEntry> snapshot() const;

  /// snapshot() rendered as sorted `key=value` lines.
  [[nodiscard]] std::string render_metrics() const;

  /// Zeroes every instrument; references handed out stay valid.
  void reset();

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Collects completed spans. Every record() also folds the duration into
/// the registry histogram `span.<name>_ns`, so a metrics-only run (no
/// Chrome trace wanted) can install a collector with keep_spans = false
/// and pay no per-span storage.
class SpanCollector {
 public:
  explicit SpanCollector(bool keep_spans = true) : keep_spans_(keep_spans) {}

  void record(std::string name, std::uint32_t tid, std::uint64_t begin_ns,
              std::uint64_t end_ns);

  /// Moves the collected spans out (collector stays usable).
  [[nodiscard]] std::vector<SpanRecord> take();
  [[nodiscard]] std::size_t size() const;

 private:
  const bool keep_spans_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
};

/// Installs (or with nullptr uninstalls) the process-wide span collector.
/// See the threading contract in the header comment.
void install_collector(SpanCollector* collector);
[[nodiscard]] SpanCollector* active_collector();

/// RAII phase timer. Captures the collector once at construction: when none
/// is installed the constructor is a single relaxed load and the destructor
/// a branch; the span name is only materialized when it will be recorded.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name) : collector_(active_collector()) {
    if (collector_ != nullptr) {
      name_ = name;
      begin_ns_ = now_ns();
    }
  }
  explicit ScopedSpan(const char* name) : ScopedSpan(std::string_view(name)) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (collector_ != nullptr) {
      collector_->record(std::move(name_), thread_id(), begin_ns_, now_ns());
    }
  }

 private:
  SpanCollector* collector_;
  std::string name_;
  std::uint64_t begin_ns_ = 0;
};

#else  // PPD_OBS_DISABLED — every instrument is an empty inline stub so
       // instrumented call sites compile unchanged and optimize away.

inline std::uint64_t now_ns() { return 0; }
inline std::uint32_t thread_id() { return 0; }

class Counter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  [[nodiscard]] std::uint64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class Gauge {
 public:
  void set(std::int64_t) noexcept {}
  void add(std::int64_t) noexcept {}
  [[nodiscard]] std::int64_t value() const noexcept { return 0; }
  [[nodiscard]] std::int64_t max() const noexcept { return 0; }
  void reset() noexcept {}
};

class Histogram {
 public:
  static constexpr std::size_t kBuckets = 1;
  void record(std::uint64_t) noexcept {}
  [[nodiscard]] std::uint64_t count() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t max() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t bucket(std::size_t) const noexcept { return 0; }
  [[nodiscard]] static constexpr std::uint64_t bucket_upper_bound(std::size_t) {
    return 0;
  }
  [[nodiscard]] std::uint64_t quantile_upper_bound(double) const noexcept {
    return 0;
  }
  void reset() noexcept {}
};

class Registry {
 public:
  static Registry& instance() {
    static Registry registry;
    return registry;
  }
  Counter& counter(std::string_view) { return counter_; }
  Gauge& gauge(std::string_view) { return gauge_; }
  Histogram& histogram(std::string_view) { return histogram_; }
  [[nodiscard]] std::vector<MetricEntry> snapshot() const { return {}; }
  [[nodiscard]] std::string render_metrics() const { return {}; }
  void reset() {}

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

class SpanCollector {
 public:
  explicit SpanCollector(bool = true) {}
  void record(std::string, std::uint32_t, std::uint64_t, std::uint64_t) {}
  [[nodiscard]] std::vector<SpanRecord> take() { return {}; }
  [[nodiscard]] std::size_t size() const { return 0; }
};

inline void install_collector(SpanCollector*) {}
inline SpanCollector* active_collector() { return nullptr; }

class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view) {}
  explicit ScopedSpan(const char*) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
};

#endif  // PPD_OBS_DISABLED

}  // namespace ppd::obs

// Spans read as one line at the top of the phase they time:
//   PPD_OBS_SPAN("cu.form");
#define PPD_OBS_CONCAT_IMPL_(a, b) a##b
#define PPD_OBS_CONCAT_(a, b) PPD_OBS_CONCAT_IMPL_(a, b)
#define PPD_OBS_SPAN(name) \
  ::ppd::obs::ScopedSpan PPD_OBS_CONCAT_(ppd_obs_span_, __LINE__)(name)
