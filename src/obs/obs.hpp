// ppd::obs — observability for the analysis pipeline itself.
//
// The tool chain is a heavy dynamic-analysis pipeline (trace replay → CU
// construction → dependence profiling → pattern detectors → report) that
// runs chunk-parallel on a thread pool, and a pipeline we cannot see into
// cannot be made faster. Since the pipeline also runs as a resident
// daemon (ppd-analyzed), the substrate serves two audiences: offline
// profiling of one run, and live inspection of a long-running service.
// This module provides:
//
//  * a thread-safe metrics **Registry** of named monotonic counters,
//    gauges (with high-water mark), and fixed-bucket power-of-two
//    histograms — always on, cheap enough to leave in hot-ish paths
//    (single relaxed atomic RMW per update; name lookup is done once and
//    the returned reference cached by the instrumented site, or resolved
//    through the lock-free per-thread *handle cache* below);
//
//  * RAII **ScopedSpan** phase timers that record per-thread begin/end
//    events into the installed sinks (a SpanCollector, a FlightRecorder,
//    or both). Spans are a *runtime* no-op when no sink is installed (one
//    relaxed atomic load per scope) and a *compile-time* no-op when the
//    library is built with `-DPPD_OBS=OFF` (every type below collapses to
//    an empty inline stub, so instrumented call sites compile unchanged
//    and vanish);
//
//  * a **TraceContext** — a (trace id, span id) pair carried in a
//    thread-local and propagated across rt::ThreadPool submissions — so
//    every span records which request caused it. The service mints one
//    trace id per remote request (and accepts one from the client over
//    the wire, PROTOCOL.md §7), turning the daemon's span soup into
//    causally-linked per-request trees;
//
//  * coherent **snapshots**: every instrument can be read in a single
//    pass (Gauge value/max pair, Histogram bucket array) so a live scrape
//    never observes torn counter/gauge pairs, and Registry::
//    structured_snapshot() captures the whole registry under one lock
//    hold.
//
// Exporters (obs/export.hpp) turn the collected data into a Chrome
// trace-event JSON file (loadable in Perfetto / chrome://tracing, one
// track per worker thread, trace/span ids as event args), a flat sorted
// `key=value` metrics dump, and a Prometheus text exposition. The crash
// path (obs/flight.hpp) dumps the flight-recorder ring and a lock-free
// metrics walk from a fatal-signal handler.
//
// Threading contract: install_collector() / install_flight_recorder()
// must happen-before any thread that will record spans starts its work,
// and the sink must outlive every recording thread (install(nullptr) +
// join before destroying it). The CLI and daemon own exactly that window
// around a run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#if !defined(PPD_OBS_DISABLED)
#include <atomic>
#include <bit>
#include <map>
#include <memory>
#include <mutex>
#endif

namespace ppd::obs {

/// Request-scoped identity: which remote request (trace_id) and which
/// enclosing span (span_id) the current work belongs to. Id 0 means
/// "none" — spans recorded outside any request carry trace_id 0.
/// Plain data in both build modes so wire code can carry it unchanged.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  [[nodiscard]] bool active() const noexcept { return trace_id != 0; }
};

/// One completed phase: [begin_ns, end_ns) on thread `tid` (small dense
/// per-process thread ordinal, not the OS id). trace_id/span_id/
/// parent_span_id link the span into its request's tree (0 = unlinked).
struct SpanRecord {
  std::string name;
  std::uint32_t tid = 0;
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
};

/// Flat metrics snapshot entry (see Registry::snapshot for the key scheme).
using MetricEntry = std::pair<std::string, std::int64_t>;

/// Coherent (value, max) pair read in one pass; max is clamped to at
/// least value so a concurrent set() can never yield max < value.
struct GaugeSnapshot {
  std::int64_t value = 0;
  std::int64_t max = 0;
};

#if !defined(PPD_OBS_DISABLED)

class FlightRecorder;  // obs/flight.hpp — forward-declared sink

/// Nanoseconds on the steady clock, anchored at the first call so span
/// timestamps stay small.
[[nodiscard]] std::uint64_t now_ns();

/// Dense per-process ordinal of the calling thread (first caller gets 0).
[[nodiscard]] std::uint32_t thread_id();

// ---- trace context ----------------------------------------------------------

/// The calling thread's current context ({0,0} when none).
[[nodiscard]] TraceContext current_trace() noexcept;
void set_current_trace(TraceContext ctx) noexcept;

/// Process-unique nonzero id (shared pool for trace and span ids).
[[nodiscard]] std::uint64_t mint_id() noexcept;

/// RAII: installs `ctx` as the thread's context, restores the previous
/// one on destruction. rt::ThreadPool reinstalls the submitter's context
/// around each task with exactly this guard, so context follows work
/// across the pool without any caller plumbing.
class WithTrace {
 public:
  explicit WithTrace(TraceContext ctx) noexcept : previous_(current_trace()) {
    set_current_trace(ctx);
  }
  ~WithTrace() { set_current_trace(previous_); }
  WithTrace(const WithTrace&) = delete;
  WithTrace& operator=(const WithTrace&) = delete;

 private:
  TraceContext previous_;
};

// ---- instruments ------------------------------------------------------------

/// Monotonic counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Signed gauge with a high-water mark (e.g. instantaneous queue depth).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
    raise_max(v);
  }
  void add(std::int64_t delta) noexcept {
    const std::int64_t v =
        value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    raise_max(v);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }

  /// Single-pass coherent read: a concurrent set(v) whose raise_max has
  /// not landed yet can make max_ lag value_; the clamp restores the
  /// invariant max >= value for every snapshot consumer.
  [[nodiscard]] GaugeSnapshot snapshot() const noexcept {
    GaugeSnapshot s;
    s.value = value_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    if (s.max < s.value) s.max = s.value;
    return s;
  }

  void reset() noexcept {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void raise_max(std::int64_t v) noexcept {
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Fixed-bucket latency/size histogram. Bucket i holds values whose bit
/// width is i (i.e. upper bound 2^i - 1), so record() is a shift and one
/// relaxed RMW — no per-value allocation, mergeable by addition.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  /// One-pass copy of the whole histogram. count is derived from the
  /// copied buckets (not re-read), so quantiles computed from a Snapshot
  /// are internally consistent even while writers keep recording — this
  /// is the estimator the Prometheus exporter uses.
  struct Snapshot {
    std::uint64_t buckets[kBuckets] = {};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;

    /// Upper bound of the bucket where the cumulative count crosses `q`
    /// (0 < q <= 1), clamped to the observed max; 0 when empty.
    [[nodiscard]] std::uint64_t quantile_upper_bound(double q) const noexcept;
  };

  void record(std::uint64_t v) noexcept {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    std::uint64_t total = 0;
    for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
    return total;
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  [[nodiscard]] Snapshot snapshot() const noexcept;

  /// Inclusive upper edge of bucket i.
  [[nodiscard]] static constexpr std::uint64_t bucket_upper_bound(std::size_t i) {
    return i + 1 >= kBuckets ? ~std::uint64_t{0}
                             : (std::uint64_t{1} << (i + 1)) - 1;
  }
  [[nodiscard]] static constexpr std::size_t bucket_index(std::uint64_t v) {
    const std::size_t width = static_cast<std::size_t>(std::bit_width(v));
    return width == 0 ? 0 : width - 1;
  }

  /// Convenience over snapshot().quantile_upper_bound(q).
  [[nodiscard]] std::uint64_t quantile_upper_bound(double q) const noexcept;

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Whole-registry snapshot captured under one lock hold: every instrument
/// read exactly once, with its coherent per-instrument snapshot type.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, GaugeSnapshot>> gauges;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
};

/// Process-wide named-instrument registry. Lookup takes a mutex; the
/// returned references are stable for the process lifetime (instruments
/// are never deallocated — reset() zeroes, it does not erase), so hot
/// sites look up once and keep the reference, or go through the
/// per-thread handle cache (counter_handle & co.) which bypasses the
/// mutex after the first hit.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Single-pass snapshot of every instrument, sorted by name within each
  /// kind. The lock is held for the whole pass, so no instrument can be
  /// *added* mid-snapshot and every (value, max) / bucket-array pair is
  /// read through its coherent per-instrument snapshot.
  [[nodiscard]] RegistrySnapshot structured_snapshot() const;

  /// Flat rendering of structured_snapshot(), sorted by key. Counters
  /// appear as `name`; gauges as `name` and `name.max`; histograms as
  /// `name.count`, `name.sum`, `name.max`, `name.p50`, `name.p90`,
  /// `name.p99` (bucket upper bounds). Zero-valued counters/empty
  /// histograms are included — an instrument that exists but never fired
  /// is itself a finding.
  [[nodiscard]] std::vector<MetricEntry> snapshot() const;

  /// snapshot() rendered as sorted `key=value` lines.
  [[nodiscard]] std::string render_metrics() const;

  /// Async-signal-safe metrics walk: writes `key=value` lines to `fd`
  /// using only write(2) and stack buffers, via a lock-free instrument
  /// directory maintained on insert (names point at the stable map keys).
  /// Order is insertion-reversed, not sorted — this is the crash path.
  void crash_dump(int fd) const noexcept;

  /// Zeroes every instrument; references handed out stay valid.
  void reset();

 private:
  enum class Kind : std::uint8_t { Counter, Gauge, Histogram };
  /// Lock-free directory node for the crash path; pushed under mutex_,
  /// read with acquire loads only.
  struct DirNode {
    const char* name;
    Kind kind;
    const void* instrument;
    DirNode* next;
  };

  Registry() = default;
  void push_dir_locked(const char* name, Kind kind, const void* instrument);

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::atomic<DirNode*> dir_head_{nullptr};
};

// ---- per-thread handle cache ------------------------------------------------
//
// Registry lookup takes the global mutex; these resolve a name through a
// thread-local map instead, touching the registry only on each thread's
// first use of a name. The returned references are the same stable
// registry instruments. This is the hot-path spelling for call sites
// that cannot cache a reference themselves (dynamic names, or code that
// runs before an owner could resolve one).

[[nodiscard]] Counter& counter_handle(std::string_view name);
[[nodiscard]] Gauge& gauge_handle(std::string_view name);
[[nodiscard]] Histogram& histogram_handle(std::string_view name);

// ---- span sinks -------------------------------------------------------------

/// Collects completed spans. Every record() also folds the duration into
/// the registry histogram `span.<name>_ns` (through the per-thread handle
/// cache — no global mutex, no name allocation after first use), so a
/// metrics-only run can install a collector with keep_spans = false and
/// pay no per-span storage.
class SpanCollector {
 public:
  explicit SpanCollector(bool keep_spans = true) : keep_spans_(keep_spans) {}

  void record(SpanRecord record);

  /// Moves the collected spans out (collector stays usable).
  [[nodiscard]] std::vector<SpanRecord> take();
  [[nodiscard]] std::size_t size() const;

 private:
  const bool keep_spans_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
};

/// Installs (or with nullptr uninstalls) the process-wide span collector.
/// See the threading contract in the header comment.
void install_collector(SpanCollector* collector);
[[nodiscard]] SpanCollector* active_collector();

/// Installs (or with nullptr uninstalls) the process-wide flight
/// recorder. Spans and flight_event()s are recorded into its ring in
/// addition to any collector. Defined in obs/flight.cpp — callers pull in
/// the flight recorder; code that never installs one (e.g. generated
/// standalone pattern runtimes, which link obs.cpp alone) carries no link
/// dependency on it, because obs.cpp reaches the recorder only through
/// the detail::g_flight_* hooks below.
void install_flight_recorder(FlightRecorder* recorder);
[[nodiscard]] FlightRecorder* active_flight_recorder();

/// Records a point event (name + current trace context + timestamp) into
/// the flight recorder; no-op when none is installed. Used for the
/// moments worth seeing in a post-mortem: wirefault containment, assert
/// fires, request admission failures.
void flight_event(std::string_view name);

namespace detail {
/// Bitmask of installed span sinks (bit 0 collector, bit 1 flight
/// recorder); spans_active() is the one relaxed-ish load every
/// PPD_OBS_SPAN pays when nothing is recording.
extern std::atomic<std::uint32_t> g_span_sinks;
[[nodiscard]] inline bool spans_active() noexcept {
  return g_span_sinks.load(std::memory_order_acquire) != 0;
}

/// Flight-recorder indirection: obs.cpp calls the recorder only through
/// these function pointers, which install_flight_recorder (flight.cpp)
/// sets together with the kSinkFlight bit. Null = no recorder.
using FlightSpanHook = void (*)(std::string_view name, std::uint32_t tid,
                                std::uint64_t begin_ns, std::uint64_t end_ns,
                                std::uint64_t trace_id, std::uint64_t span_id,
                                std::uint64_t parent_span_id);
using FlightEventHook = void (*)(std::string_view name);
extern std::atomic<FlightSpanHook> g_flight_span_hook;
extern std::atomic<FlightEventHook> g_flight_event_hook;
/// Atomically publishes both hooks and maintains the flight bit in
/// g_span_sinks (both null clears it). Defined in obs.cpp.
void set_flight_hooks(FlightSpanHook span_hook, FlightEventHook event_hook);
}  // namespace detail

/// RAII phase timer. Construction is a single sink-mask load when nothing
/// is recording; when a sink is installed it captures the sinks, mints a
/// span id, and pushes itself as the thread's current context (so nested
/// spans and submitted tasks become its children). The destructor
/// restores the parent context and records into every installed sink.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name) {
    if (detail::spans_active()) begin(name);
  }
  explicit ScopedSpan(const char* name) : ScopedSpan(std::string_view(name)) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (active_) finish();
  }

 private:
  void begin(std::string_view name);
  void finish();

  SpanCollector* collector_ = nullptr;
  detail::FlightSpanHook flight_ = nullptr;
  std::string name_;
  std::uint64_t begin_ns_ = 0;
  std::uint64_t trace_id_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_span_id_ = 0;
  bool active_ = false;
};

#else  // PPD_OBS_DISABLED — every instrument is an empty inline stub so
       // instrumented call sites compile unchanged and optimize away.

class FlightRecorder;

inline std::uint64_t now_ns() { return 0; }
inline std::uint32_t thread_id() { return 0; }

inline TraceContext current_trace() noexcept { return {}; }
inline void set_current_trace(TraceContext) noexcept {}
inline std::uint64_t mint_id() noexcept { return 0; }

class WithTrace {
 public:
  explicit WithTrace(TraceContext) noexcept {}
  WithTrace(const WithTrace&) = delete;
  WithTrace& operator=(const WithTrace&) = delete;
};

class Counter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  [[nodiscard]] std::uint64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class Gauge {
 public:
  void set(std::int64_t) noexcept {}
  void add(std::int64_t) noexcept {}
  [[nodiscard]] std::int64_t value() const noexcept { return 0; }
  [[nodiscard]] std::int64_t max() const noexcept { return 0; }
  [[nodiscard]] GaugeSnapshot snapshot() const noexcept { return {}; }
  void reset() noexcept {}
};

class Histogram {
 public:
  static constexpr std::size_t kBuckets = 1;
  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    std::uint64_t buckets[kBuckets] = {0};
    [[nodiscard]] std::uint64_t quantile_upper_bound(double) const noexcept {
      return 0;
    }
  };
  void record(std::uint64_t) noexcept {}
  [[nodiscard]] std::uint64_t count() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t max() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t bucket(std::size_t) const noexcept { return 0; }
  [[nodiscard]] Snapshot snapshot() const noexcept { return {}; }
  [[nodiscard]] static constexpr std::uint64_t bucket_upper_bound(std::size_t) {
    return 0;
  }
  [[nodiscard]] std::uint64_t quantile_upper_bound(double) const noexcept {
    return 0;
  }
  void reset() noexcept {}
};

struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, GaugeSnapshot>> gauges;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
};

class Registry {
 public:
  static Registry& instance() {
    static Registry registry;
    return registry;
  }
  Counter& counter(std::string_view) { return counter_; }
  Gauge& gauge(std::string_view) { return gauge_; }
  Histogram& histogram(std::string_view) { return histogram_; }
  [[nodiscard]] RegistrySnapshot structured_snapshot() const { return {}; }
  [[nodiscard]] std::vector<MetricEntry> snapshot() const { return {}; }
  [[nodiscard]] std::string render_metrics() const { return {}; }
  void crash_dump(int) const noexcept {}
  void reset() {}

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

inline Counter& counter_handle(std::string_view name) {
  return Registry::instance().counter(name);
}
inline Gauge& gauge_handle(std::string_view name) {
  return Registry::instance().gauge(name);
}
inline Histogram& histogram_handle(std::string_view name) {
  return Registry::instance().histogram(name);
}

class SpanCollector {
 public:
  explicit SpanCollector(bool = true) {}
  void record(SpanRecord) {}
  [[nodiscard]] std::vector<SpanRecord> take() { return {}; }
  [[nodiscard]] std::size_t size() const { return 0; }
};

inline void install_collector(SpanCollector*) {}
inline SpanCollector* active_collector() { return nullptr; }
inline void install_flight_recorder(FlightRecorder*) {}
inline FlightRecorder* active_flight_recorder() { return nullptr; }
inline void flight_event(std::string_view) {}

class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view) {}
  explicit ScopedSpan(const char*) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
};

#endif  // PPD_OBS_DISABLED

}  // namespace ppd::obs

// Spans read as one line at the top of the phase they time:
//   PPD_OBS_SPAN("cu.form");
#define PPD_OBS_CONCAT_IMPL_(a, b) a##b
#define PPD_OBS_CONCAT_(a, b) PPD_OBS_CONCAT_IMPL_(a, b)
#define PPD_OBS_SPAN(name) \
  ::ppd::obs::ScopedSpan PPD_OBS_CONCAT_(ppd_obs_span_, __LINE__)(name)
