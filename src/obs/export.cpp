#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

namespace ppd::obs {
namespace {

/// JSON string escaping for span names (control chars, quote, backslash).
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_event(std::string& out, bool& first, std::string_view name,
                  char phase, std::uint32_t tid, std::uint64_t ts_ns) {
  char buffer[64];
  // Microseconds with nanosecond precision; ns/1000 renders exactly in
  // three decimals, so per-track monotonicity survives the conversion.
  std::snprintf(buffer, sizeof(buffer), "%llu.%03llu",
                static_cast<unsigned long long>(ts_ns / 1000),
                static_cast<unsigned long long>(ts_ns % 1000));
  if (!first) out += ",\n";
  first = false;
  out += "    {\"name\": \"";
  out += json_escape(name);
  out += "\", \"ph\": \"";
  out += phase;
  out += "\", \"pid\": 1, \"tid\": ";
  out += std::to_string(tid);
  out += ", \"ts\": ";
  out += buffer;
  out += "}";
}

void append_metadata(std::string& out, bool& first, std::string_view name,
                     std::uint32_t tid, std::string_view value) {
  if (!first) out += ",\n";
  first = false;
  out += "    {\"name\": \"";
  out += json_escape(name);
  out += "\", \"ph\": \"M\", \"pid\": 1, \"tid\": ";
  out += std::to_string(tid);
  out += ", \"args\": {\"name\": \"";
  out += json_escape(value);
  out += "\"}}";
}

}  // namespace

std::string chrome_trace_json(std::vector<SpanRecord> spans) {
  // Group by thread; each thread's spans form properly nested intervals
  // (RAII timers), so sorting by (begin asc, end desc) yields parents
  // before children and a stack walk emits balanced B/E pairs with
  // nondecreasing timestamps.
  std::map<std::uint32_t, std::vector<SpanRecord*>> tracks;
  for (SpanRecord& span : spans) tracks[span.tid].push_back(&span);

  std::string out = "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  bool first = true;
  append_metadata(out, first, "process_name", 0, "ppd");
  for (const auto& [tid, track] : tracks) {
    append_metadata(out, first, "thread_name", tid,
                    tid == 0 ? std::string("main")
                             : "worker-" + std::to_string(tid));
  }

  for (auto& [tid, track] : tracks) {
    std::sort(track.begin(), track.end(),
              [](const SpanRecord* a, const SpanRecord* b) {
                if (a->begin_ns != b->begin_ns) return a->begin_ns < b->begin_ns;
                return a->end_ns > b->end_ns;
              });
    std::vector<SpanRecord*> stack;
    for (SpanRecord* span : track) {
      while (!stack.empty() && stack.back()->end_ns <= span->begin_ns) {
        append_event(out, first, stack.back()->name, 'E', tid,
                     stack.back()->end_ns);
        stack.pop_back();
      }
      // Clamp a child that claims to outlive its enclosing span.
      if (!stack.empty() && span->end_ns > stack.back()->end_ns) {
        span->end_ns = stack.back()->end_ns;
      }
      append_event(out, first, span->name, 'B', tid, span->begin_ns);
      stack.push_back(span);
    }
    while (!stack.empty()) {
      append_event(out, first, stack.back()->name, 'E', tid,
                   stack.back()->end_ns);
      stack.pop_back();
    }
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string metrics_dump() { return Registry::instance().render_metrics(); }

}  // namespace ppd::obs
