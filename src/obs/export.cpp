#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

namespace ppd::obs {
namespace {

/// JSON string escaping for span names (control chars, quote, backslash).
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_event(std::string& out, bool& first, std::string_view name,
                  char phase, std::uint32_t tid, std::uint64_t ts_ns,
                  const SpanRecord* args_from = nullptr) {
  char buffer[64];
  // Microseconds with nanosecond precision; ns/1000 renders exactly in
  // three decimals, so per-track monotonicity survives the conversion.
  std::snprintf(buffer, sizeof(buffer), "%llu.%03llu",
                static_cast<unsigned long long>(ts_ns / 1000),
                static_cast<unsigned long long>(ts_ns % 1000));
  if (!first) out += ",\n";
  first = false;
  out += "    {\"name\": \"";
  out += json_escape(name);
  out += "\", \"ph\": \"";
  out += phase;
  out += "\", \"pid\": 1, \"tid\": ";
  out += std::to_string(tid);
  out += ", \"ts\": ";
  out += buffer;
  if (args_from != nullptr && args_from->trace_id != 0) {
    out += ", \"args\": {\"trace\": ";
    out += std::to_string(args_from->trace_id);
    out += ", \"span\": ";
    out += std::to_string(args_from->span_id);
    out += ", \"parent\": ";
    out += std::to_string(args_from->parent_span_id);
    out += "}";
  }
  out += "}";
}

void append_metadata(std::string& out, bool& first, std::string_view name,
                     std::uint32_t tid, std::string_view value) {
  if (!first) out += ",\n";
  first = false;
  out += "    {\"name\": \"";
  out += json_escape(name);
  out += "\", \"ph\": \"M\", \"pid\": 1, \"tid\": ";
  out += std::to_string(tid);
  out += ", \"args\": {\"name\": \"";
  out += json_escape(value);
  out += "\"}}";
}

/// Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; the registry's
/// dotted names map onto that with '.' → '_' and a 'ppd_' namespace
/// prefix (which also fixes names that would start with a digit).
std::string prom_name(std::string_view name) {
  std::string out = "ppd_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void append_prom_line(std::string& out, const std::string& name,
                      std::string_view labels, std::uint64_t value) {
  out += name;
  out += labels;
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

}  // namespace

std::string chrome_trace_json(std::vector<SpanRecord> spans) {
  // Group by thread; each thread's spans form properly nested intervals
  // (RAII timers), so sorting by (begin asc, end desc) yields parents
  // before children and a stack walk emits balanced B/E pairs with
  // nondecreasing timestamps.
  std::map<std::uint32_t, std::vector<SpanRecord*>> tracks;
  for (SpanRecord& span : spans) tracks[span.tid].push_back(&span);

  std::string out = "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";
  bool first = true;
  append_metadata(out, first, "process_name", 0, "ppd");
  for (const auto& [tid, track] : tracks) {
    append_metadata(out, first, "thread_name", tid,
                    tid == 0 ? std::string("main")
                             : "worker-" + std::to_string(tid));
  }

  for (auto& [tid, track] : tracks) {
    std::sort(track.begin(), track.end(),
              [](const SpanRecord* a, const SpanRecord* b) {
                if (a->begin_ns != b->begin_ns) return a->begin_ns < b->begin_ns;
                return a->end_ns > b->end_ns;
              });
    std::vector<SpanRecord*> stack;
    for (SpanRecord* span : track) {
      while (!stack.empty() && stack.back()->end_ns <= span->begin_ns) {
        append_event(out, first, stack.back()->name, 'E', tid,
                     stack.back()->end_ns);
        stack.pop_back();
      }
      // Clamp a child that claims to outlive its enclosing span.
      if (!stack.empty() && span->end_ns > stack.back()->end_ns) {
        span->end_ns = stack.back()->end_ns;
      }
      append_event(out, first, span->name, 'B', tid, span->begin_ns, span);
      stack.push_back(span);
    }
    while (!stack.empty()) {
      append_event(out, first, stack.back()->name, 'E', tid,
                   stack.back()->end_ns);
      stack.pop_back();
    }
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string metrics_dump() { return Registry::instance().render_metrics(); }

std::string prometheus_dump() {
  const RegistrySnapshot snap = Registry::instance().structured_snapshot();
  std::string out;

  for (const auto& [name, value] : snap.counters) {
    const std::string prom = prom_name(name) + "_total";
    out += "# TYPE " + prom + " counter\n";
    append_prom_line(out, prom, "", value);
  }

  for (const auto& [name, gauge] : snap.gauges) {
    const std::string prom = prom_name(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + ' ' + std::to_string(gauge.value) + '\n';
    out += "# TYPE " + prom + "_max gauge\n";
    out += prom + "_max " + std::to_string(gauge.max) + '\n';
  }

  for (const auto& [name, hist] : snap.histograms) {
    const std::string prom = prom_name(name);
    out += "# TYPE " + prom + " histogram\n";
    // Cumulative `le` buckets; empty buckets are skipped (sparse series
    // are valid as long as `le` increases and counts are nondecreasing)
    // so 64 pow2 buckets don't balloon the exposition.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (hist.buckets[i] == 0) continue;
      cumulative += hist.buckets[i];
      append_prom_line(out, prom + "_bucket",
                       "{le=\"" +
                           std::to_string(Histogram::bucket_upper_bound(i)) +
                           "\"}",
                       cumulative);
    }
    append_prom_line(out, prom + "_bucket", "{le=\"+Inf\"}", hist.count);
    append_prom_line(out, prom + "_sum", "", hist.sum);
    append_prom_line(out, prom + "_count", "", hist.count);
    // Quantile estimates from the same coherent snapshot, exposed as
    // gauges (a Prometheus histogram itself carries no quantiles).
    for (const auto& [suffix, q] :
         {std::pair<const char*, double>{"_p50", 0.50},
          std::pair<const char*, double>{"_p90", 0.90},
          std::pair<const char*, double>{"_p99", 0.99}}) {
      out += "# TYPE " + prom + suffix + " gauge\n";
      append_prom_line(out, prom + suffix, "", hist.quantile_upper_bound(q));
    }
  }
  return out;
}

}  // namespace ppd::obs
