#include "obs/obs.hpp"

#if !defined(PPD_OBS_DISABLED)

#include <algorithm>
#include <chrono>
#include <functional>
#include <unordered_map>

#include "obs/sigsafe.hpp"

namespace ppd::obs {
namespace {

std::atomic<SpanCollector*> g_collector{nullptr};

constexpr std::uint32_t kSinkCollector = 0x1;
constexpr std::uint32_t kSinkFlight = 0x2;

thread_local TraceContext t_trace{};

/// Heterogeneous string hashing so handle-cache lookups take a
/// string_view without materializing a std::string on the hot path.
struct StringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

template <typename T>
using HandleMap =
    std::unordered_map<std::string, T*, StringHash, std::equal_to<>>;

}  // namespace

namespace detail {
std::atomic<std::uint32_t> g_span_sinks{0};
std::atomic<FlightSpanHook> g_flight_span_hook{nullptr};
std::atomic<FlightEventHook> g_flight_event_hook{nullptr};

void set_flight_hooks(FlightSpanHook span_hook, FlightEventHook event_hook) {
  g_flight_span_hook.store(span_hook, std::memory_order_release);
  g_flight_event_hook.store(event_hook, std::memory_order_release);
  if (span_hook != nullptr || event_hook != nullptr) {
    g_span_sinks.fetch_or(kSinkFlight, std::memory_order_release);
  } else {
    g_span_sinks.fetch_and(~kSinkFlight, std::memory_order_release);
  }
}
}  // namespace detail

std::uint64_t now_ns() {
  // Anchored at the first call so span timestamps stay small and the
  // exported trace starts near t=0.
  static const std::chrono::steady_clock::time_point t0 =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

std::uint32_t thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// ---- trace context ----------------------------------------------------------

TraceContext current_trace() noexcept { return t_trace; }

void set_current_trace(TraceContext ctx) noexcept { t_trace = ctx; }

std::uint64_t mint_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// ---- histogram snapshots ----------------------------------------------------

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot s;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count += s.buckets[i];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

std::uint64_t Histogram::Snapshot::quantile_upper_bound(double q) const noexcept {
  if (count == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative > rank || (cumulative == count && cumulative != 0)) {
      return std::min(bucket_upper_bound(i), max);
    }
  }
  return max;
}

std::uint64_t Histogram::quantile_upper_bound(double q) const noexcept {
  // Through the one-pass snapshot: the cumulative walk and the total it
  // compares against come from the same bucket copy, so a concurrent
  // record() can no longer skew the rank against a moving total.
  return snapshot().quantile_upper_bound(q);
}

// ---- registry ---------------------------------------------------------------

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::push_dir_locked(const char* name, Kind kind,
                               const void* instrument) {
  // Nodes are never freed (instruments never are either); the list is the
  // crash handler's lock-free view of the registry.
  auto* node = new DirNode{name, kind, instrument, nullptr};
  node->next = dir_head_.load(std::memory_order_relaxed);
  while (!dir_head_.compare_exchange_weak(node->next, node,
                                          std::memory_order_release,
                                          std::memory_order_relaxed)) {
  }
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
    push_dir_locked(it->first.c_str(), Kind::Counter, it->second.get());
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
    push_dir_locked(it->first.c_str(), Kind::Gauge, it->second.get());
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
    push_dir_locked(it->first.c_str(), Kind::Histogram, it->second.get());
  }
  return *it->second;
}

RegistrySnapshot Registry::structured_snapshot() const {
  RegistrySnapshot out;
  std::lock_guard lock(mutex_);
  out.counters.reserve(counters_.size());
  out.gauges.reserve(gauges_.size());
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace_back(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace_back(name, gauge->snapshot());
  }
  for (const auto& [name, hist] : histograms_) {
    out.histograms.emplace_back(name, hist->snapshot());
  }
  return out;
}

std::vector<MetricEntry> Registry::snapshot() const {
  const RegistrySnapshot snap = structured_snapshot();
  std::vector<MetricEntry> out;
  out.reserve(snap.counters.size() + 2 * snap.gauges.size() +
              6 * snap.histograms.size());
  for (const auto& [name, value] : snap.counters) {
    out.emplace_back(name, static_cast<std::int64_t>(value));
  }
  for (const auto& [name, gauge] : snap.gauges) {
    out.emplace_back(name, gauge.value);
    out.emplace_back(name + ".max", gauge.max);
  }
  for (const auto& [name, hist] : snap.histograms) {
    out.emplace_back(name + ".count", static_cast<std::int64_t>(hist.count));
    out.emplace_back(name + ".sum", static_cast<std::int64_t>(hist.sum));
    out.emplace_back(name + ".max", static_cast<std::int64_t>(hist.max));
    out.emplace_back(name + ".p50", static_cast<std::int64_t>(
                                        hist.quantile_upper_bound(0.50)));
    out.emplace_back(name + ".p90", static_cast<std::int64_t>(
                                        hist.quantile_upper_bound(0.90)));
    out.emplace_back(name + ".p99", static_cast<std::int64_t>(
                                        hist.quantile_upper_bound(0.99)));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string Registry::render_metrics() const {
  std::string out;
  for (const MetricEntry& entry : snapshot()) {
    out += entry.first;
    out += '=';
    out += std::to_string(entry.second);
    out += '\n';
  }
  return out;
}

void Registry::crash_dump(int fd) const noexcept {
  FdWriter writer(fd);
  for (const DirNode* node = dir_head_.load(std::memory_order_acquire);
       node != nullptr; node = node->next) {
    switch (node->kind) {
      case Kind::Counter: {
        const auto* counter = static_cast<const Counter*>(node->instrument);
        writer.put(node->name);
        writer.put("=");
        writer.put_u64(counter->value());
        writer.put("\n");
        break;
      }
      case Kind::Gauge: {
        const auto* gauge = static_cast<const Gauge*>(node->instrument);
        const GaugeSnapshot snap = gauge->snapshot();
        writer.put(node->name);
        writer.put("=");
        writer.put_i64(snap.value);
        writer.put("\n");
        writer.put(node->name);
        writer.put(".max=");
        writer.put_i64(snap.max);
        writer.put("\n");
        break;
      }
      case Kind::Histogram: {
        const auto* hist = static_cast<const Histogram*>(node->instrument);
        const Histogram::Snapshot snap = hist->snapshot();
        writer.put(node->name);
        writer.put(".count=");
        writer.put_u64(snap.count);
        writer.put("\n");
        writer.put(node->name);
        writer.put(".sum=");
        writer.put_u64(snap.sum);
        writer.put("\n");
        writer.put(node->name);
        writer.put(".max=");
        writer.put_u64(snap.max);
        writer.put("\n");
        break;
      }
    }
  }
  writer.flush();
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, hist] : histograms_) hist->reset();
}

// ---- per-thread handle cache ------------------------------------------------

Counter& counter_handle(std::string_view name) {
  thread_local HandleMap<Counter> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(std::string(name), &Registry::instance().counter(name))
             .first;
  }
  return *it->second;
}

Gauge& gauge_handle(std::string_view name) {
  thread_local HandleMap<Gauge> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(std::string(name), &Registry::instance().gauge(name))
             .first;
  }
  return *it->second;
}

Histogram& histogram_handle(std::string_view name) {
  thread_local HandleMap<Histogram> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(std::string(name), &Registry::instance().histogram(name))
             .first;
  }
  return *it->second;
}

namespace {

/// Duration histogram for a span name, memoized per thread under the
/// *span* name so the "span.<name>_ns" metric string is built once per
/// (thread, name) instead of once per record.
Histogram& span_histogram(std::string_view span_name) {
  thread_local HandleMap<Histogram> cache;
  auto it = cache.find(span_name);
  if (it == cache.end()) {
    std::string metric = "span.";
    metric += span_name;
    metric += "_ns";
    it = cache.emplace(std::string(span_name),
                       &Registry::instance().histogram(metric))
             .first;
  }
  return *it->second;
}

}  // namespace

// ---- span sinks -------------------------------------------------------------

void SpanCollector::record(SpanRecord record) {
  const std::uint64_t duration =
      record.end_ns >= record.begin_ns ? record.end_ns - record.begin_ns : 0;
  span_histogram(record.name).record(duration);
  if (!keep_spans_) return;
  std::lock_guard lock(mutex_);
  spans_.push_back(std::move(record));
}

std::vector<SpanRecord> SpanCollector::take() {
  std::lock_guard lock(mutex_);
  std::vector<SpanRecord> out = std::move(spans_);
  spans_.clear();
  return out;
}

std::size_t SpanCollector::size() const {
  std::lock_guard lock(mutex_);
  return spans_.size();
}

void install_collector(SpanCollector* collector) {
  g_collector.store(collector, std::memory_order_release);
  if (collector != nullptr) {
    detail::g_span_sinks.fetch_or(kSinkCollector, std::memory_order_release);
  } else {
    detail::g_span_sinks.fetch_and(~kSinkCollector, std::memory_order_release);
  }
}

SpanCollector* active_collector() {
  return g_collector.load(std::memory_order_acquire);
}

// install_flight_recorder / active_flight_recorder live in obs/flight.cpp;
// this translation unit reaches the recorder only through the hooks, so a
// binary that never installs one (generated pattern runtimes link obs.cpp
// standalone) carries no reference to FlightRecorder's code.

void flight_event(std::string_view name) {
  if (const detail::FlightEventHook hook =
          detail::g_flight_event_hook.load(std::memory_order_acquire)) {
    hook(name);
  }
}

void ScopedSpan::begin(std::string_view name) {
  collector_ = active_collector();
  flight_ = detail::g_flight_span_hook.load(std::memory_order_acquire);
  if (collector_ == nullptr && flight_ == nullptr) return;  // sink raced away
  name_ = name;
  const TraceContext parent = current_trace();
  trace_id_ = parent.trace_id;
  parent_span_id_ = parent.span_id;
  span_id_ = mint_id();
  set_current_trace(TraceContext{trace_id_, span_id_});
  active_ = true;
  begin_ns_ = now_ns();
}

void ScopedSpan::finish() {
  const std::uint64_t end_ns = now_ns();
  set_current_trace(TraceContext{trace_id_, parent_span_id_});
  if (flight_ != nullptr) {
    flight_(name_, thread_id(), begin_ns_, end_ns, trace_id_, span_id_,
            parent_span_id_);
  }
  if (collector_ != nullptr) {
    collector_->record(SpanRecord{std::move(name_), thread_id(), begin_ns_,
                                  end_ns, trace_id_, span_id_,
                                  parent_span_id_});
  }
}

}  // namespace ppd::obs

#endif  // !PPD_OBS_DISABLED
