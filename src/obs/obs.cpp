#include "obs/obs.hpp"

#if !defined(PPD_OBS_DISABLED)

#include <algorithm>
#include <chrono>

namespace ppd::obs {
namespace {

std::atomic<SpanCollector*> g_collector{nullptr};

}  // namespace

std::uint64_t now_ns() {
  // Anchored at the first call so span timestamps stay small and the
  // exported trace starts near t=0.
  static const std::chrono::steady_clock::time_point t0 =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

std::uint32_t thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::uint64_t Histogram::quantile_upper_bound(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(total));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += bucket(i);
    if (cumulative > rank || (cumulative == total && cumulative != 0)) {
      return std::min(bucket_upper_bound(i), max());
    }
  }
  return max();
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::vector<MetricEntry> Registry::snapshot() const {
  std::vector<MetricEntry> out;
  {
    std::lock_guard lock(mutex_);
    out.reserve(counters_.size() + 2 * gauges_.size() + 6 * histograms_.size());
    for (const auto& [name, counter] : counters_) {
      out.emplace_back(name, static_cast<std::int64_t>(counter->value()));
    }
    for (const auto& [name, gauge] : gauges_) {
      out.emplace_back(name, gauge->value());
      out.emplace_back(name + ".max", gauge->max());
    }
    for (const auto& [name, hist] : histograms_) {
      out.emplace_back(name + ".count", static_cast<std::int64_t>(hist->count()));
      out.emplace_back(name + ".sum", static_cast<std::int64_t>(hist->sum()));
      out.emplace_back(name + ".max", static_cast<std::int64_t>(hist->max()));
      out.emplace_back(name + ".p50", static_cast<std::int64_t>(
                                          hist->quantile_upper_bound(0.50)));
      out.emplace_back(name + ".p90", static_cast<std::int64_t>(
                                          hist->quantile_upper_bound(0.90)));
      out.emplace_back(name + ".p99", static_cast<std::int64_t>(
                                          hist->quantile_upper_bound(0.99)));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string Registry::render_metrics() const {
  std::string out;
  for (const MetricEntry& entry : snapshot()) {
    out += entry.first;
    out += '=';
    out += std::to_string(entry.second);
    out += '\n';
  }
  return out;
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, hist] : histograms_) hist->reset();
}

void SpanCollector::record(std::string name, std::uint32_t tid,
                           std::uint64_t begin_ns, std::uint64_t end_ns) {
  const std::uint64_t duration = end_ns >= begin_ns ? end_ns - begin_ns : 0;
  Registry::instance().histogram("span." + name + "_ns").record(duration);
  if (!keep_spans_) return;
  std::lock_guard lock(mutex_);
  spans_.push_back(SpanRecord{std::move(name), tid, begin_ns, end_ns});
}

std::vector<SpanRecord> SpanCollector::take() {
  std::lock_guard lock(mutex_);
  std::vector<SpanRecord> out = std::move(spans_);
  spans_.clear();
  return out;
}

std::size_t SpanCollector::size() const {
  std::lock_guard lock(mutex_);
  return spans_.size();
}

void install_collector(SpanCollector* collector) {
  g_collector.store(collector, std::memory_order_release);
}

SpanCollector* active_collector() {
  return g_collector.load(std::memory_order_acquire);
}

}  // namespace ppd::obs

#endif  // !PPD_OBS_DISABLED
