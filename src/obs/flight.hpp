// Flight recorder: a fixed-size lock-free ring of recent span and event
// records, kept by the daemon so a crash (fatal signal), an assertion
// failure, or a wirefault containment leaves a post-mortem trail of what
// the process was doing — including the span tree of the request that
// went hostile — plus a metrics snapshot, in a plain-text dump file.
//
// Design constraints, in order:
//
//  * Recording must be cheap and wait-free: writers claim a slot with one
//    fetch_add and publish it with a per-slot sequence store (a seqlock):
//    seq is zeroed before the fields are written and set to the record's
//    global index + 1 after, both with release ordering. Readers skip
//    slots whose sequence is 0 or changes across the field copy — a torn
//    slot costs one lost record, never a lock or a crash.
//
//  * Dumping must be async-signal-safe: dump() walks the ring oldest-
//    first with acquire loads, formats with obs::FdWriter (hand-rolled
//    integers, stack buffers, raw write(2)) and never allocates, locks,
//    or calls the C library's formatted I/O. It is therefore callable
//    from the SIGSEGV handler that enable_crash_dump() installs.
//
//  * Names are truncated into a fixed in-record array (kNameBytes) at
//    record time, so the ring owns no heap memory a crashed allocator
//    could corrupt.
//
// Wiring: install_flight_recorder() (obs.hpp) makes ScopedSpan record
// every completed span here; flight_event() drops point events. The
// daemon enables the whole stack with one enable_crash_dump(path) call —
// fatal-signal handlers, an assert failure handler, and the dump path
// used by flight_dump_now() for non-fatal containment dumps.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"

namespace ppd::obs {

#if !defined(PPD_OBS_DISABLED)

class FlightRecorder {
 public:
  static constexpr std::size_t kNameBytes = 48;
  static constexpr std::size_t kDefaultCapacity = 4096;

  enum class Kind : std::uint8_t { Span = 1, Event = 2 };

  /// A decoded record, as returned by snapshot(). For events begin_ns ==
  /// end_ns (the moment it fired).
  struct Entry {
    std::uint64_t seq = 0;  ///< global record index (monotonic, 0-based)
    Kind kind = Kind::Span;
    std::uint32_t tid = 0;
    std::uint64_t begin_ns = 0;
    std::uint64_t end_ns = 0;
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
    std::uint64_t parent_span_id = 0;
    std::string name;
  };

  /// Capacity is rounded up to a power of two.
  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void record_span(std::string_view name, std::uint32_t tid,
                   std::uint64_t begin_ns, std::uint64_t end_ns,
                   std::uint64_t trace_id, std::uint64_t span_id,
                   std::uint64_t parent_span_id) noexcept;

  /// Point event stamped with now_ns() and the caller's current context.
  void record_event(std::string_view name) noexcept;

  /// Readable copy of the ring, oldest first, torn slots skipped.
  [[nodiscard]] std::vector<Entry> snapshot() const;

  /// Async-signal-safe text dump of the ring to `fd`, oldest first:
  ///   span seq=.. trace=.. span=.. parent=.. tid=.. begin_ns=.. end_ns=.. name=..
  ///   event seq=.. trace=.. span=.. tid=.. at_ns=.. name=..
  void dump(int fd) const noexcept;

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }
  /// Total records ever written (ring keeps the last capacity() of them).
  [[nodiscard]] std::uint64_t total_recorded() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

 private:
  struct Record {
    std::atomic<std::uint64_t> seq{0};  ///< 0 = empty/in-flight, else index+1
    Kind kind = Kind::Span;
    std::uint32_t tid = 0;
    std::uint64_t begin_ns = 0;
    std::uint64_t end_ns = 0;
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
    std::uint64_t parent_span_id = 0;
    char name[kNameBytes] = {};
  };

  void write_record(Kind kind, std::string_view name, std::uint32_t tid,
                    std::uint64_t begin_ns, std::uint64_t end_ns,
                    std::uint64_t trace_id, std::uint64_t span_id,
                    std::uint64_t parent_span_id) noexcept;
  /// Seqlock read of one slot; false when empty or torn.
  [[nodiscard]] bool read_slot(std::uint64_t index, Record& out,
                               std::uint64_t& seq) const noexcept;

  std::atomic<std::uint64_t> head_{0};
  std::size_t mask_ = 0;
  std::unique_ptr<Record[]> ring_;
  Counter& records_;
  Counter& events_;
};

/// Turns the crash path on: remembers `path` as the dump destination,
/// installs fatal-signal handlers (SIGSEGV, SIGBUS, SIGFPE, SIGILL,
/// SIGABRT) that write the flight ring + a metrics walk to it and then
/// re-raise, and installs a support::assert failure handler that records
/// the failing expression as a flight event before aborting (the SIGABRT
/// handler then writes the dump). Call once, before recording threads
/// start; the path buffer is fixed (long paths are rejected with false).
bool enable_crash_dump(const std::string& path);

/// The configured dump path ("" when enable_crash_dump was never called).
[[nodiscard]] std::string_view crash_dump_path() noexcept;

/// Writes a dump (reason line, flight ring, metrics) to the configured
/// path right now — the non-fatal spelling used on wirefault containment.
/// False when no path is configured. Safe from any thread, not just
/// signal handlers.
bool flight_dump_now(std::string_view reason) noexcept;

#else  // PPD_OBS_DISABLED

class FlightRecorder {
 public:
  static constexpr std::size_t kNameBytes = 1;
  static constexpr std::size_t kDefaultCapacity = 0;
  enum class Kind : std::uint8_t { Span = 1, Event = 2 };
  struct Entry {
    std::uint64_t seq = 0;
    Kind kind = Kind::Span;
    std::uint32_t tid = 0;
    std::uint64_t begin_ns = 0;
    std::uint64_t end_ns = 0;
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
    std::uint64_t parent_span_id = 0;
    std::string name;
  };
  explicit FlightRecorder(std::size_t = 0) {}
  void record_span(std::string_view, std::uint32_t, std::uint64_t,
                   std::uint64_t, std::uint64_t, std::uint64_t,
                   std::uint64_t) noexcept {}
  void record_event(std::string_view) noexcept {}
  [[nodiscard]] std::vector<Entry> snapshot() const { return {}; }
  void dump(int) const noexcept {}
  [[nodiscard]] std::size_t capacity() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t total_recorded() const noexcept { return 0; }
};

inline bool enable_crash_dump(const std::string&) { return false; }
inline std::string_view crash_dump_path() noexcept { return {}; }
inline bool flight_dump_now(std::string_view) noexcept { return false; }

#endif  // PPD_OBS_DISABLED

}  // namespace ppd::obs
