// Exporters for the collected observability data.
//
// chrome_trace_json() renders completed spans as a Chrome trace-event JSON
// object (the `traceEvents` format understood by Perfetto and
// chrome://tracing): one B/E duration-event pair per span, one track per
// recorded thread (metadata `thread_name` events name them "main" /
// "worker-N"), timestamps in microseconds with nanosecond precision.
// Within a track, events are emitted with nondecreasing timestamps and
// strictly balanced B/E nesting — spans from RAII timers nest properly per
// thread; a child that outlives its parent (possible only with hand-rolled
// records) is clamped to the parent's end rather than emitted unbalanced.
// Spans that carry a trace context get `args: {"trace": .., "span": ..,
// "parent": ..}` on their B event, so one remote request's spans can be
// filtered out of the daemon's timeline by trace id.
//
// metrics_dump() renders the process-wide registry as sorted `key=value`
// lines (see Registry::snapshot for the key scheme).
//
// prometheus_dump() renders the registry in the Prometheus text
// exposition format (version 0.0.4), built from one coherent
// Registry::structured_snapshot(): counters become `ppd_<name>_total`,
// gauges a value/`_max` pair, histograms a cumulative-`le` bucket series
// with `_sum`/`_count` plus `_p50`/`_p90`/`_p99` gauges from the
// snapshot's quantile estimator. Metric names are sanitized to the
// Prometheus charset (dots become underscores).
//
// All three are pure renderers over plain data, so they compile and
// work identically with PPD_OBS=OFF (they just render an empty run).
#pragma once

#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace ppd::obs {

/// Chrome trace-event JSON of the given spans (consumes them).
[[nodiscard]] std::string chrome_trace_json(std::vector<SpanRecord> spans);

/// Registry::instance() rendered as sorted `key=value` lines.
[[nodiscard]] std::string metrics_dump();

/// Registry::instance() rendered as Prometheus text exposition.
[[nodiscard]] std::string prometheus_dump();

}  // namespace ppd::obs
