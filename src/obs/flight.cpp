#include "obs/flight.hpp"

#if !defined(PPD_OBS_DISABLED)

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "obs/sigsafe.hpp"
#include "support/assert.hpp"

namespace ppd::obs {
namespace {

/// Fixed-size destination path: the crash handler cannot read a
/// std::string whose heap the crash may have corrupted.
char g_dump_path[512] = {};
std::atomic<bool> g_handlers_installed{false};

std::atomic<FlightRecorder*> g_flight{nullptr};

/// Hook bodies handed to obs.cpp (detail::set_flight_hooks): the span and
/// event paths re-read g_flight so an uninstall between the hook load and
/// the call degrades to a no-op, never a dangling recorder.
void flight_span_hook(std::string_view name, std::uint32_t tid,
                      std::uint64_t begin_ns, std::uint64_t end_ns,
                      std::uint64_t trace_id, std::uint64_t span_id,
                      std::uint64_t parent_span_id) {
  if (FlightRecorder* flight = g_flight.load(std::memory_order_acquire)) {
    flight->record_span(name, tid, begin_ns, end_ns, trace_id, span_id,
                        parent_span_id);
  }
}

void flight_event_hook(std::string_view name) {
  if (FlightRecorder* flight = g_flight.load(std::memory_order_acquire)) {
    flight->record_event(name);
  }
}

constexpr int kFatalSignals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT};

const char* signal_name(int sig) noexcept {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    case SIGABRT: return "SIGABRT";
  }
  return "signal";
}

/// The shared dump body: reason line, flight ring, metrics walk. Async-
/// signal-safe (both dump paths format through FdWriter).
void write_dump(int fd, std::string_view reason) noexcept {
  {
    FdWriter writer(fd);
    writer.put("ppd-flight-dump v1\nreason=");
    writer.put(reason);
    writer.put("\n");
    writer.flush();
  }
  if (const FlightRecorder* flight = active_flight_recorder()) {
    flight->dump(fd);
  }
  {
    FdWriter writer(fd);
    writer.put("metrics\n");
    writer.flush();
  }
  Registry::instance().crash_dump(fd);
  FdWriter writer(fd);
  writer.put("end\n");
  writer.flush();
}

void crash_signal_handler(int sig) {
  if (g_dump_path[0] != '\0') {
    const int fd = ::open(g_dump_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      write_dump(fd, signal_name(sig));
      ::close(fd);
    }
  }
  // SA_RESETHAND restored the default disposition before we ran; re-raise
  // so the process dies with the real signal (and the right wait status).
  ::raise(sig);
}

/// Assert failures record the failing expression into the ring and abort;
/// the SIGABRT handler above then writes the dump, so the post-mortem
/// carries both the assertion text and the spans leading up to it.
void flight_failure_handler(const char* expr, const char* file, int line,
                            const char* msg) {
  flight_event("assert.fail");
  if (expr != nullptr) flight_event(expr);
  std::fprintf(stderr, "ppd assertion failed: %s (%s:%d)%s%s\n",
               expr != nullptr ? expr : "?", file != nullptr ? file : "?",
               line, msg != nullptr ? " — " : "",
               msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace

void install_flight_recorder(FlightRecorder* recorder) {
  g_flight.store(recorder, std::memory_order_release);
  if (recorder != nullptr) {
    detail::set_flight_hooks(flight_span_hook, flight_event_hook);
  } else {
    detail::set_flight_hooks(nullptr, nullptr);
  }
}

FlightRecorder* active_flight_recorder() {
  return g_flight.load(std::memory_order_acquire);
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : records_(Registry::instance().counter("obs.flight.records")),
      events_(Registry::instance().counter("obs.flight.events")) {
  std::size_t rounded = 1;
  while (rounded < capacity) rounded <<= 1;
  mask_ = rounded - 1;
  ring_ = std::make_unique<Record[]>(rounded);
}

void FlightRecorder::write_record(Kind kind, std::string_view name,
                                  std::uint32_t tid, std::uint64_t begin_ns,
                                  std::uint64_t end_ns, std::uint64_t trace_id,
                                  std::uint64_t span_id,
                                  std::uint64_t parent_span_id) noexcept {
  const std::uint64_t index = head_.fetch_add(1, std::memory_order_relaxed);
  Record& slot = ring_[index & mask_];
  // Seqlock write: invalidate, fill, publish. A reader that observes
  // seq == index + 1 on both sides of its copy got a whole record.
  slot.seq.store(0, std::memory_order_release);
  slot.kind = kind;
  slot.tid = tid;
  slot.begin_ns = begin_ns;
  slot.end_ns = end_ns;
  slot.trace_id = trace_id;
  slot.span_id = span_id;
  slot.parent_span_id = parent_span_id;
  const std::size_t copy = std::min(name.size(), kNameBytes - 1);
  std::memcpy(slot.name, name.data(), copy);
  slot.name[copy] = '\0';
  slot.seq.store(index + 1, std::memory_order_release);
}

void FlightRecorder::record_span(std::string_view name, std::uint32_t tid,
                                 std::uint64_t begin_ns, std::uint64_t end_ns,
                                 std::uint64_t trace_id, std::uint64_t span_id,
                                 std::uint64_t parent_span_id) noexcept {
  records_.add();
  write_record(Kind::Span, name, tid, begin_ns, end_ns, trace_id, span_id,
               parent_span_id);
}

void FlightRecorder::record_event(std::string_view name) noexcept {
  events_.add();
  const TraceContext ctx = current_trace();
  const std::uint64_t at = now_ns();
  write_record(Kind::Event, name, thread_id(), at, at, ctx.trace_id,
               ctx.span_id, 0);
}

bool FlightRecorder::read_slot(std::uint64_t index, Record& out,
                               std::uint64_t& seq) const noexcept {
  const Record& slot = ring_[index & mask_];
  const std::uint64_t before = slot.seq.load(std::memory_order_acquire);
  if (before == 0) return false;
  out.kind = slot.kind;
  out.tid = slot.tid;
  out.begin_ns = slot.begin_ns;
  out.end_ns = slot.end_ns;
  out.trace_id = slot.trace_id;
  out.span_id = slot.span_id;
  out.parent_span_id = slot.parent_span_id;
  std::memcpy(out.name, slot.name, kNameBytes);
  std::atomic_thread_fence(std::memory_order_acquire);
  const std::uint64_t after = slot.seq.load(std::memory_order_acquire);
  if (after != before) return false;  // torn: a writer lapped us mid-copy
  seq = before - 1;
  return true;
}

std::vector<FlightRecorder::Entry> FlightRecorder::snapshot() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t span = std::min<std::uint64_t>(head, capacity());
  std::vector<Entry> out;
  out.reserve(static_cast<std::size_t>(span));
  for (std::uint64_t i = head - span; i < head; ++i) {
    Record record;
    std::uint64_t seq = 0;
    if (!read_slot(i, record, seq)) continue;
    Entry entry;
    entry.seq = seq;
    entry.kind = record.kind;
    entry.tid = record.tid;
    entry.begin_ns = record.begin_ns;
    entry.end_ns = record.end_ns;
    entry.trace_id = record.trace_id;
    entry.span_id = record.span_id;
    entry.parent_span_id = record.parent_span_id;
    entry.name = record.name;
    out.push_back(std::move(entry));
  }
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
  return out;
}

void FlightRecorder::dump(int fd) const noexcept {
  FdWriter writer(fd);
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t span = std::min<std::uint64_t>(head, capacity());
  writer.put("flight total=");
  writer.put_u64(head);
  writer.put(" kept=");
  writer.put_u64(span);
  writer.put("\n");
  for (std::uint64_t i = head - span; i < head; ++i) {
    Record record;
    std::uint64_t seq = 0;
    if (!read_slot(i, record, seq)) continue;
    if (record.kind == Kind::Span) {
      writer.put("span seq=");
      writer.put_u64(seq);
      writer.put(" trace=");
      writer.put_u64(record.trace_id);
      writer.put(" span=");
      writer.put_u64(record.span_id);
      writer.put(" parent=");
      writer.put_u64(record.parent_span_id);
      writer.put(" tid=");
      writer.put_u64(record.tid);
      writer.put(" begin_ns=");
      writer.put_u64(record.begin_ns);
      writer.put(" end_ns=");
      writer.put_u64(record.end_ns);
    } else {
      writer.put("event seq=");
      writer.put_u64(seq);
      writer.put(" trace=");
      writer.put_u64(record.trace_id);
      writer.put(" span=");
      writer.put_u64(record.span_id);
      writer.put(" tid=");
      writer.put_u64(record.tid);
      writer.put(" at_ns=");
      writer.put_u64(record.begin_ns);
    }
    writer.put(" name=");
    writer.put(record.name);
    writer.put("\n");
  }
  writer.flush();
}

bool enable_crash_dump(const std::string& path) {
  if (path.empty() || path.size() >= sizeof(g_dump_path)) return false;
  std::memcpy(g_dump_path, path.c_str(), path.size() + 1);
  // Touch the registry now: its function-local static must be constructed
  // before a signal handler can walk it (static init is not signal-safe).
  Registry::instance().counter("obs.flight.dumps");
  if (!g_handlers_installed.exchange(true)) {
    struct sigaction action {};
    action.sa_handler = crash_signal_handler;
    sigemptyset(&action.sa_mask);
    // RESETHAND: one shot, default disposition restored before the handler
    // runs. NODEFER: the re-raise inside the handler delivers immediately.
    action.sa_flags =
        static_cast<int>(static_cast<unsigned>(SA_RESETHAND) |
                         static_cast<unsigned>(SA_NODEFER));
    for (const int sig : kFatalSignals) {
      ::sigaction(sig, &action, nullptr);
    }
    support::set_failure_handler(flight_failure_handler);
  }
  return true;
}

std::string_view crash_dump_path() noexcept { return g_dump_path; }

bool flight_dump_now(std::string_view reason) noexcept {
  if (g_dump_path[0] == '\0') return false;
  const int fd = ::open(g_dump_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  Registry::instance().counter("obs.flight.dumps").add();
  write_dump(fd, reason);
  ::close(fd);
  return true;
}

}  // namespace ppd::obs

#endif  // !PPD_OBS_DISABLED
