// Lightweight always-on assertion macro for internal invariants.
//
// The profiling and detection pipeline is driven entirely by dynamic data, so
// a silent invariant violation (e.g. a region exit without a matching enter)
// would corrupt every downstream analysis. Invariants therefore stay checked
// in release builds; the cost is negligible next to trace processing.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ppd::support {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "ppd: assertion failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace ppd::support

#define PPD_ASSERT(expr)                                                    \
  ((expr) ? static_cast<void>(0)                                            \
          : ::ppd::support::assert_fail(#expr, __FILE__, __LINE__, nullptr))

#define PPD_ASSERT_MSG(expr, msg)                                        \
  ((expr) ? static_cast<void>(0)                                        \
          : ::ppd::support::assert_fail(#expr, __FILE__, __LINE__, msg))
