// Lightweight always-on assertion macro for internal invariants.
//
// The profiling and detection pipeline is driven entirely by dynamic data, so
// a silent invariant violation (e.g. a region exit without a matching enter)
// would corrupt every downstream analysis. Invariants therefore stay checked
// in release builds; the cost is negligible next to trace processing.
//
// The failure action is pluggable: the default handler prints and aborts,
// but embedders (and the test suite) can install a handler that throws a
// recoverable exception instead, so invariant violations can be asserted on
// rather than killing the process. A handler must not return; if it does,
// the process still aborts.
#pragma once

#include <stdexcept>
#include <string>

namespace ppd::support {

/// Called on assertion failure with the failing expression, location, and
/// optional message. Must abort or throw; returning falls through to abort().
using FailureHandler = void (*)(const char* expr, const char* file, int line,
                                const char* msg);

/// Installs `handler` as the process-wide failure handler and returns the
/// previous one. Passing nullptr restores the default print-and-abort
/// handler.
FailureHandler set_failure_handler(FailureHandler handler) noexcept;

/// The currently installed failure handler.
[[nodiscard]] FailureHandler failure_handler() noexcept;

[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const char* msg);

/// Exception thrown by throwing_failure_handler(); carries the formatted
/// assertion text.
class AssertionError : public std::logic_error {
 public:
  explicit AssertionError(const std::string& what) : std::logic_error(what) {}
};

/// Ready-made handler that throws AssertionError instead of aborting.
[[noreturn]] void throwing_failure_handler(const char* expr, const char* file, int line,
                                           const char* msg);

/// RAII guard installing a failure handler for the current scope (used by
/// tests to assert that an invariant violation is detected).
class ScopedFailureHandler {
 public:
  explicit ScopedFailureHandler(FailureHandler handler)
      : previous_(set_failure_handler(handler)) {}
  ~ScopedFailureHandler() { set_failure_handler(previous_); }
  ScopedFailureHandler(const ScopedFailureHandler&) = delete;
  ScopedFailureHandler& operator=(const ScopedFailureHandler&) = delete;

 private:
  FailureHandler previous_;
};

}  // namespace ppd::support

#define PPD_ASSERT(expr)                                                    \
  ((expr) ? static_cast<void>(0)                                            \
          : ::ppd::support::assert_fail(#expr, __FILE__, __LINE__, nullptr))

#define PPD_ASSERT_MSG(expr, msg)                                        \
  ((expr) ? static_cast<void>(0)                                        \
          : ::ppd::support::assert_fail(#expr, __FILE__, __LINE__, msg))
