// Read-only memory-mapped file.
//
// The batch driver and the CLI used to slurp every trace into a std::string
// before handing it to the reader — one full copy of what can be a large
// .ppdt container, made on the single dispatch-side thread. MappedFile maps
// the file read-only instead (POSIX mmap, MAP_PRIVATE) and exposes it as a
// string_view, so the chunk-parallel reader decodes straight out of the
// page cache with zero copies.
//
// Lifetime rule (DESIGN.md §10): bytes() views into the live mapping. The
// MappedFile must outlive every view derived from it — in particular it
// must stay alive across the whole read_trace()/analyze() call chain. The
// reader itself never retains views into the input past its return (names
// are interned into the TraceContext as owned strings), so destroying the
// MappedFile after the reader returns is safe.
//
// Edge cases, all deliberate:
//  * zero-length files: mmap(len=0) is EINVAL on POSIX, so empty files get
//    an empty view with no mapping — still a successful open();
//  * platforms without mmap: falls back to a heap slurp, same interface
//    (zero_copy() reports which path was taken);
//  * open/stat/map failures: Status{IoError}, never an exception.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "support/status.hpp"

namespace ppd::support {

class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only, replacing any previous mapping. On failure the
  /// object is left empty and the Status carries ErrorCode::IoError.
  [[nodiscard]] Status open(const std::string& path);

  /// The mapped contents. Valid until reset()/destruction/next open().
  [[nodiscard]] std::string_view bytes() const { return view_; }
  [[nodiscard]] std::size_t size() const { return view_.size(); }

  /// True when bytes() points into a live mmap (false for the empty-file
  /// case and the no-mmap fallback slurp).
  [[nodiscard]] bool zero_copy() const { return mapping_ != nullptr; }

  /// Unmaps/releases; bytes() becomes empty.
  void reset();

 private:
  void* mapping_ = nullptr;
  std::size_t mapped_size_ = 0;
  std::string fallback_;  ///< owns the bytes when mmap is unavailable
  std::string_view view_;
};

}  // namespace ppd::support
