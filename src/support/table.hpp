// Plain-text table rendering for the evaluation harnesses.
//
// Every bench binary reproduces one of the paper's tables; this renderer
// prints aligned monospace tables (and optionally CSV) so the output can be
// diffed against the paper's rows.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ppd::support {

/// Column alignment within a rendered table.
enum class Align { Left, Right };

/// An aligned plain-text table. Add a header, then rows; render at the end.
class TextTable {
 public:
  /// Sets the header row and column count. Must be called before add_row.
  void set_header(std::vector<std::string> header);

  /// Sets per-column alignment; defaults to left for all columns.
  void set_alignment(std::vector<Align> alignment);

  /// Appends a data row; must match the header's column count.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator line at this position.
  void add_separator();

  /// Renders the table with column-aligned cells and a header rule.
  [[nodiscard]] std::string render() const;

  /// Renders the table as RFC-4180-ish CSV (no quoting of embedded commas;
  /// cell text in this project never contains commas).
  [[nodiscard]] std::string render_csv() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::string> header_;
  std::vector<Align> alignment_;
  std::vector<Row> rows_;
};

/// Formats a double with `digits` fractional digits ("3.25", "0.97").
[[nodiscard]] std::string format_fixed(double value, int digits);

}  // namespace ppd::support
