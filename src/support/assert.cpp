#include "support/assert.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace ppd::support {
namespace {

[[noreturn]] void default_failure_handler(const char* expr, const char* file, int line,
                                          const char* msg) {
  std::fprintf(stderr, "ppd: assertion failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg != nullptr ? msg : "");
  std::abort();
}

std::atomic<FailureHandler> g_handler{&default_failure_handler};

}  // namespace

FailureHandler set_failure_handler(FailureHandler handler) noexcept {
  if (handler == nullptr) handler = &default_failure_handler;
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

FailureHandler failure_handler() noexcept {
  return g_handler.load(std::memory_order_acquire);
}

void assert_fail(const char* expr, const char* file, int line, const char* msg) {
  failure_handler()(expr, file, line, msg);
  // A handler must not return; enforce the no-return contract regardless.
  std::abort();
}

void throwing_failure_handler(const char* expr, const char* file, int line,
                              const char* msg) {
  std::string what = "assertion failed: ";
  what += expr;
  what += " at ";
  what += file;
  what += ':';
  what += std::to_string(line);
  if (msg != nullptr && *msg != '\0') {
    what += " (";
    what += msg;
    what += ')';
  }
  throw AssertionError(what);
}

}  // namespace ppd::support
