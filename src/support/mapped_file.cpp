#include "support/mapped_file.hpp"

#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define PPD_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#include <fstream>
#include <sstream>
#endif

namespace ppd::support {

MappedFile::~MappedFile() { reset(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : mapping_(std::exchange(other.mapping_, nullptr)),
      mapped_size_(std::exchange(other.mapped_size_, 0)),
      fallback_(std::move(other.fallback_)),
      view_(std::exchange(other.view_, {})) {
  // A fallback-backed view must chase the moved string's storage.
  if (mapping_ == nullptr && !view_.empty()) view_ = fallback_;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this == &other) return *this;
  reset();
  mapping_ = std::exchange(other.mapping_, nullptr);
  mapped_size_ = std::exchange(other.mapped_size_, 0);
  fallback_ = std::move(other.fallback_);
  view_ = std::exchange(other.view_, {});
  if (mapping_ == nullptr && !view_.empty()) view_ = fallback_;
  return *this;
}

void MappedFile::reset() {
#if PPD_HAVE_MMAP
  if (mapping_ != nullptr) ::munmap(mapping_, mapped_size_);
#endif
  mapping_ = nullptr;
  mapped_size_ = 0;
  fallback_.clear();
  fallback_.shrink_to_fit();
  view_ = {};
}

Status MappedFile::open(const std::string& path) {
  reset();
#if PPD_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::error(ErrorCode::IoError, "cannot open '" + path + "'");
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::error(ErrorCode::IoError, "cannot stat '" + path + "'");
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    // mmap of length 0 is EINVAL; an empty file is simply an empty view.
    ::close(fd);
    return Status::ok();
  }
  void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the pages; the descriptor is done
  if (mapping == MAP_FAILED) {
    return Status::error(ErrorCode::IoError, "cannot map '" + path + "'");
  }
  mapping_ = mapping;
  mapped_size_ = size;
  view_ = std::string_view(static_cast<const char*>(mapping_), size);
  return Status::ok();
#else
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::error(ErrorCode::IoError, "cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::error(ErrorCode::IoError, "cannot read '" + path + "'");
  }
  fallback_ = buffer.str();
  view_ = fallback_;
  return Status::ok();
#endif
}

}  // namespace ppd::support
