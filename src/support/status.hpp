// Recoverable error taxonomy for the ingestion and runtime boundary.
//
// The whole pipeline is driven by dynamic trace data produced by untrusted
// runs (the paper's §III-A dump files), so errors at the ingestion boundary
// must be *values*, not aborts: a Status carries a stable error code, a
// human-readable message, and — for trace ingestion — the 1-based line of
// the offending record, so a service can log, skip, and keep serving.
// Diags are the non-fatal counterpart: warnings collected by a DiagSink
// while lenient ingestion repairs what it can.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ppd::support {

/// Stable error codes shared by trace ingestion and the runtime. Codes are
/// part of the tool's contract (tests assert on them; services switch on
/// them), so new codes are appended, never renumbered.
enum class ErrorCode : std::uint8_t {
  Ok = 0,
  // ---- trace ingestion ----
  BadHeader,             ///< missing/unrecognized "ppd-trace 1" header
  MalformedRecord,       ///< record fields missing, non-numeric, or negative
  UnknownTag,            ///< record tag not in the format grammar
  DuplicateDefinition,   ///< var/region/statement id defined twice (mismatched)
  UndefinedId,           ///< event references an id with no prior definition
  ScopeMismatch,         ///< exit does not match the innermost open scope
  IterationOutsideLoop,  ///< iteration record outside its loop scope
  BadWriteOp,            ///< write carries an unknown update-op code
  TrailingGarbage,       ///< extra tokens after a well-formed record
  UnclosedScope,         ///< trace ended with scopes still open
  ResourceLimit,         ///< event-count/definition/line-length cap exceeded
  // ---- runtime ----
  InvalidDag,            ///< dependency out of range or not pointing backwards
  TaskFailed,            ///< a DAG task threw; dependents were skipped
  PoolShutdown,          ///< submit() on a shut-down thread pool
  // ---- general ----
  AnalysisFailed,        ///< post-ingestion analysis raised an error
  Internal,              ///< invariant violation reported by a failure handler
  // ---- binary trace container (ppd::store) ----
  BadFooter,             ///< .ppdt footer/trailer missing, damaged, or lying
  ChunkCorrupt,          ///< .ppdt section failed its CRC or framing checks
  IoError,               ///< file could not be read or written
  // ---- service wire protocol (ppd::svc) ----
  BadFrame,              ///< frame header malformed or payload grammar violated
  CrcMismatch,           ///< frame payload failed its CRC-32 check
  OversizedFrame,        ///< frame length prefix exceeds the negotiated cap
  UnsupportedVersion,    ///< no protocol version shared by client and server
  Overloaded,            ///< admission control rejected the request (queue full)
  ConnectionLost,        ///< peer vanished mid-frame or mid-request
};

[[nodiscard]] const char* to_string(ErrorCode code);

/// A recoverable operation outcome: Ok, or an error code plus message plus
/// (for ingestion errors) the trace line that triggered it.
class [[nodiscard]] Status {
 public:
  /// Default-constructed Status is Ok.
  Status() = default;

  [[nodiscard]] static Status ok() { return Status(); }
  [[nodiscard]] static Status error(ErrorCode code, std::string message,
                                    std::uint64_t line = 0);

  [[nodiscard]] bool is_ok() const { return code_ == ErrorCode::Ok; }
  [[nodiscard]] ErrorCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }
  /// 1-based line of the offending trace record; 0 when not applicable.
  [[nodiscard]] std::uint64_t line() const { return line_; }

  /// "error-code: message (line N)" — the canonical log form.
  [[nodiscard]] std::string to_string() const;

 private:
  ErrorCode code_ = ErrorCode::Ok;
  std::uint64_t line_ = 0;
  std::string message_;
};

/// One non-fatal finding: what was wrong, where, and what was done about it.
struct Diag {
  ErrorCode code = ErrorCode::Ok;
  std::uint64_t line = 0;  ///< 1-based trace line; 0 when not applicable
  std::string message;

  [[nodiscard]] std::string to_string() const;
};

/// Collects Diags emitted while an operation degrades gracefully (lenient
/// trace replay, validators). Override report() to stream them elsewhere;
/// the base class retains them for inspection, dropping (but still counting)
/// everything past a retention cap so hostile inputs cannot OOM the sink.
class DiagSink {
 public:
  virtual ~DiagSink() = default;

  virtual void report(Diag diag);

  [[nodiscard]] const std::vector<Diag>& diags() const { return diags_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t count(ErrorCode code) const;
  [[nodiscard]] bool empty() const { return total_ == 0; }
  void clear();

  /// Retention cap for the in-memory vector; report() keeps counting past it.
  static constexpr std::size_t kMaxRetained = 1024;

 private:
  std::vector<Diag> diags_;
  std::uint64_t total_ = 0;
};

}  // namespace ppd::support
