#include "support/stats.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace ppd::support {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - m) * (x - m);
  return sum / static_cast<double>(xs.size());
}

double correlation(std::span<const double> xs, std::span<const double> ys) {
  PPD_ASSERT(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace ppd::support
