#include "support/status.hpp"

namespace ppd::support {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::Ok: return "ok";
    case ErrorCode::BadHeader: return "bad-header";
    case ErrorCode::MalformedRecord: return "malformed-record";
    case ErrorCode::UnknownTag: return "unknown-tag";
    case ErrorCode::DuplicateDefinition: return "duplicate-definition";
    case ErrorCode::UndefinedId: return "undefined-id";
    case ErrorCode::ScopeMismatch: return "scope-mismatch";
    case ErrorCode::IterationOutsideLoop: return "iteration-outside-loop";
    case ErrorCode::BadWriteOp: return "bad-write-op";
    case ErrorCode::TrailingGarbage: return "trailing-garbage";
    case ErrorCode::UnclosedScope: return "unclosed-scope";
    case ErrorCode::ResourceLimit: return "resource-limit";
    case ErrorCode::InvalidDag: return "invalid-dag";
    case ErrorCode::TaskFailed: return "task-failed";
    case ErrorCode::PoolShutdown: return "pool-shutdown";
    case ErrorCode::AnalysisFailed: return "analysis-failed";
    case ErrorCode::Internal: return "internal";
    case ErrorCode::BadFooter: return "bad-footer";
    case ErrorCode::ChunkCorrupt: return "chunk-corrupt";
    case ErrorCode::IoError: return "io-error";
    case ErrorCode::BadFrame: return "bad-frame";
    case ErrorCode::CrcMismatch: return "crc-mismatch";
    case ErrorCode::OversizedFrame: return "oversized-frame";
    case ErrorCode::UnsupportedVersion: return "unsupported-version";
    case ErrorCode::Overloaded: return "overloaded";
    case ErrorCode::ConnectionLost: return "connection-lost";
  }
  return "unknown";
}

Status Status::error(ErrorCode code, std::string message, std::uint64_t line) {
  Status status;
  status.code_ = code;
  status.message_ = std::move(message);
  status.line_ = line;
  return status;
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  std::string text = support::to_string(code_);
  text += ": ";
  text += message_;
  if (line_ != 0) {
    text += " (line ";
    text += std::to_string(line_);
    text += ')';
  }
  return text;
}

std::string Diag::to_string() const {
  std::string text = support::to_string(code);
  text += ": ";
  text += message;
  if (line != 0) {
    text += " (line ";
    text += std::to_string(line);
    text += ')';
  }
  return text;
}

void DiagSink::report(Diag diag) {
  ++total_;
  if (diags_.size() < kMaxRetained) diags_.push_back(std::move(diag));
}

std::uint64_t DiagSink::count(ErrorCode code) const {
  std::uint64_t n = 0;
  for (const Diag& d : diags_) {
    if (d.code == code) ++n;
  }
  return n;
}

void DiagSink::clear() {
  diags_.clear();
  total_ = 0;
}

}  // namespace ppd::support
