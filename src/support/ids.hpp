// Strong identifier types shared across the ppd subsystems.
//
// Each analysis (trace, profiler, PET, CU graph) refers to the same static
// program entities; strong types keep region ids, statement ids, and source
// lines from being mixed up at call sites.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>

namespace ppd {

/// A tagged integral id. `Tag` is an empty struct used only to distinguish
/// id spaces at compile time.
template <typename Tag, typename Rep = std::uint32_t>
class Id {
 public:
  using rep_type = Rep;

  constexpr Id() = default;
  constexpr explicit Id(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != invalid_rep(); }

  /// The reserved "no id" sentinel.
  [[nodiscard]] static constexpr Id invalid() { return Id(); }

  friend constexpr auto operator<=>(Id, Id) = default;

 private:
  static constexpr Rep invalid_rep() { return std::numeric_limits<Rep>::max(); }
  Rep value_ = invalid_rep();
};

struct RegionTag {};
struct StatementTag {};
struct CuTag {};
struct VarTag {};

/// Identifies a *static* control region (a function or a loop); all dynamic
/// instances of the same source-level region share one RegionId, mirroring
/// the paper's merging of loop iterations and recursive calls into one PET
/// node per static region.
using RegionId = Id<RegionTag>;

/// Identifies a static statement (one read-compute-write site).
using StatementId = Id<StatementTag>;

/// Identifies a computational unit in a CU graph.
using CuId = Id<CuTag>;

/// Identifies a named program variable (array or scalar) in the registry.
using VarId = Id<VarTag>;

/// A 1-based source line number. Line 0 means "unknown".
using SourceLine = std::uint32_t;

/// Abstract work measure: stands in for the paper's LLVM-IR instruction
/// counts (see DESIGN.md, substitution table).
using Cost = std::uint64_t;

/// An abstract memory address, element-granular.
using Address = std::uint64_t;

}  // namespace ppd

template <typename Tag, typename Rep>
struct std::hash<ppd::Id<Tag, Rep>> {
  std::size_t operator()(ppd::Id<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
