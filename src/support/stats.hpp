// Small statistics helpers shared by the regression and simulation modules.
#pragma once

#include <span>

namespace ppd::support {

/// Arithmetic mean; returns 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs);

/// Population variance; returns 0 for fewer than two samples.
[[nodiscard]] double variance(std::span<const double> xs);

/// Sample Pearson correlation of two equally sized spans; returns 0 when
/// either side has zero variance.
[[nodiscard]] double correlation(std::span<const double> xs, std::span<const double> ys);

}  // namespace ppd::support
