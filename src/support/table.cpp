#include "support/table.hpp"

#include <algorithm>
#include <cstdio>

#include "support/assert.hpp"

namespace ppd::support {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::set_alignment(std::vector<Align> alignment) {
  alignment_ = std::move(alignment);
}

void TextTable::add_row(std::vector<std::string> row) {
  PPD_ASSERT_MSG(row.size() == header_.size(), "row width must match header");
  rows_.push_back(Row{std::move(row), /*separator=*/false});
}

void TextTable::add_separator() { rows_.push_back(Row{{}, /*separator=*/true}); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c)
      widths[c] = std::max(widths[c], row.cells[c].size());
  }

  auto pad = [&](const std::string& cell, std::size_t c) {
    const Align align =
        c < alignment_.size() ? alignment_[c] : Align::Left;
    std::string padding(widths[c] - cell.size(), ' ');
    return align == Align::Left ? cell + padding : padding + cell;
  };

  std::string out;
  auto emit_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      out += std::string(widths[c] + 2, '-');
      out += c + 1 < widths.size() ? "+" : "\n";
    }
  };

  for (std::size_t c = 0; c < header_.size(); ++c) {
    out += ' ';
    out += pad(header_[c], c);
    out += c + 1 < header_.size() ? " |" : " \n";
  }
  emit_rule();
  for (const Row& row : rows_) {
    if (row.separator) {
      emit_rule();
      continue;
    }
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      out += ' ';
      out += pad(row.cells[c], c);
      out += c + 1 < row.cells.size() ? " |" : " \n";
    }
  }
  return out;
}

std::string TextTable::render_csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out += cells[c];
      out += c + 1 < cells.size() ? "," : "\n";
    }
  };
  emit(header_);
  for (const Row& row : rows_) {
    if (!row.separator) emit(row.cells);
  }
  return out;
}

std::string format_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

}  // namespace ppd::support
