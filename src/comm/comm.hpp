// Loop-level communication-pattern characterization.
//
// §II of the paper: the outputs of DiscoPoP's two analyses also feed a
// characterization of "threads communication patterns" (Mazaheri et al.,
// ICPP'15 — the paper's reference [16]). Given the dependence profile and
// per-(variable, region) access counts, this module derives:
//
//  * a region-to-region communication matrix (how much data produced in one
//    control region is consumed by another — the traffic a parallelization
//    along region boundaries would turn into inter-thread communication);
//  * a sharing classification per variable: private to one region,
//    read-only shared, producer/consumer (one writer region, other
//    readers), or migratory (ownership moves between regions).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "prof/dependence.hpp"
#include "trace/context.hpp"
#include "support/ids.hpp"
#include "trace/events.hpp"

namespace ppd::comm {

/// Sharing behaviour of one variable across control regions.
enum class Sharing {
  Private,           ///< touched by exactly one region
  ReadOnly,          ///< read by several regions, never written
  ProducerConsumer,  ///< written in one region, read in others
  Migratory,         ///< written in several regions (ownership moves)
};

[[nodiscard]] const char* to_string(Sharing sharing);

/// Per-variable access summary used for the classification.
struct VarUsage {
  VarId var;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::vector<RegionId> reader_regions;
  std::vector<RegionId> writer_regions;
  Sharing sharing = Sharing::Private;
};

/// One cell of the communication matrix: RAW traffic from producer region to
/// consumer region.
struct CommEdge {
  RegionId producer;
  RegionId consumer;
  std::uint64_t occurrences = 0;  ///< dynamic RAW dependences crossing the edge
  std::uint64_t variables = 0;    ///< distinct variables carried over the edge
};

/// The characterization result.
struct CommunicationMatrix {
  std::vector<CommEdge> edges;       ///< producer != consumer only, sorted by traffic
  std::vector<VarUsage> variables;   ///< every traced variable, classified

  /// Renders the matrix and the sharing table as text.
  [[nodiscard]] std::string render(const trace::TraceContext& program) const;
};

/// Event sink counting per-(variable, region) accesses. Subscribe alongside
/// the dependence profiler.
class CommProfiler final : public trace::EventSink {
 public:
  void on_access(const trace::AccessEvent& access) override;

  /// Combines the counted accesses with the dependence profile into the
  /// communication characterization.
  [[nodiscard]] CommunicationMatrix build(const prof::Profile& profile) const;

 private:
  struct Key {
    VarId var;
    RegionId region;
    friend bool operator<(const Key& a, const Key& b) {
      return std::tie(a.var, a.region) < std::tie(b.var, b.region);
    }
  };
  struct Counts {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
  };
  std::map<Key, Counts> counts_;
};

}  // namespace ppd::comm
