#include "comm/comm.hpp"

#include <algorithm>
#include <set>
#include <tuple>

#include "trace/context.hpp"

namespace ppd::comm {

const char* to_string(Sharing sharing) {
  switch (sharing) {
    case Sharing::Private: return "private";
    case Sharing::ReadOnly: return "read-only";
    case Sharing::ProducerConsumer: return "producer/consumer";
    case Sharing::Migratory: return "migratory";
  }
  return "?";
}

void CommProfiler::on_access(const trace::AccessEvent& access) {
  Counts& c = counts_[Key{access.var, access.region}];
  if (access.kind == trace::AccessKind::Read) {
    ++c.reads;
  } else {
    ++c.writes;
  }
}

CommunicationMatrix CommProfiler::build(const prof::Profile& profile) const {
  CommunicationMatrix result;

  // Per-variable usage and sharing classification.
  std::map<VarId, VarUsage> usage;
  for (const auto& [key, counts] : counts_) {
    VarUsage& u = usage[key.var];
    u.var = key.var;
    u.reads += counts.reads;
    u.writes += counts.writes;
    if (counts.reads > 0) u.reader_regions.push_back(key.region);
    if (counts.writes > 0) u.writer_regions.push_back(key.region);
  }
  for (auto& [var, u] : usage) {
    std::set<RegionId> touched(u.reader_regions.begin(), u.reader_regions.end());
    touched.insert(u.writer_regions.begin(), u.writer_regions.end());
    if (touched.size() <= 1) {
      u.sharing = Sharing::Private;
    } else if (u.writer_regions.empty()) {
      u.sharing = Sharing::ReadOnly;
    } else if (u.writer_regions.size() == 1) {
      u.sharing = Sharing::ProducerConsumer;
    } else {
      u.sharing = Sharing::Migratory;
    }
    result.variables.push_back(u);
  }

  // Region-to-region RAW traffic.
  std::map<std::pair<RegionId, RegionId>, CommEdge> edges;
  std::map<std::pair<RegionId, RegionId>, std::set<VarId>> edge_vars;
  for (const prof::Dependence& dep : profile.dependences) {
    if (dep.kind != prof::DepKind::Raw) continue;
    if (dep.source.region == dep.sink.region) continue;
    const auto key = std::pair{dep.source.region, dep.sink.region};
    CommEdge& edge = edges[key];
    edge.producer = dep.source.region;
    edge.consumer = dep.sink.region;
    edge.occurrences += dep.count;
    edge_vars[key].insert(dep.var);
  }
  for (auto& [key, edge] : edges) {
    edge.variables = edge_vars[key].size();
    result.edges.push_back(edge);
  }
  std::sort(result.edges.begin(), result.edges.end(),
            [](const CommEdge& a, const CommEdge& b) { return a.occurrences > b.occurrences; });
  return result;
}

std::string CommunicationMatrix::render(const trace::TraceContext& program) const {
  std::string out = "communication matrix (producer -> consumer, RAW traffic):\n";
  for (const CommEdge& edge : edges) {
    out += "  " + program.region(edge.producer).name + " -> " +
           program.region(edge.consumer).name + ": " + std::to_string(edge.occurrences) +
           " dependences over " + std::to_string(edge.variables) + " variable(s)\n";
  }
  out += "variable sharing:\n";
  for (const VarUsage& u : variables) {
    out += "  " + program.var_info(u.var).name + ": " + to_string(u.sharing) + " (" +
           std::to_string(u.reads) + " reads, " + std::to_string(u.writes) + " writes)\n";
  }
  return out;
}

}  // namespace ppd::comm
