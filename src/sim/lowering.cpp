#include "sim/lowering.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace ppd::sim {

DagBuilder::LoweredLoop DagBuilder::lower_loop(std::uint64_t iterations, Cost total_cost,
                                               core::LoopClass cls, std::size_t max_blocks) {
  LoweredLoop loop;
  loop.iterations = iterations;
  if (iterations == 0) return loop;

  const std::uint64_t blocks =
      std::min<std::uint64_t>(iterations, static_cast<std::uint64_t>(std::max<std::size_t>(1, max_blocks)));
  loop.iters_per_block = (iterations + blocks - 1) / blocks;
  const std::uint64_t actual_blocks =
      (iterations + loop.iters_per_block - 1) / loop.iters_per_block;

  const Cost per_block = total_cost / actual_blocks;
  Cost remainder = total_cost - per_block * actual_blocks;

  TaskIndex prev = kInvalidTask;
  for (std::uint64_t b = 0; b < actual_blocks; ++b) {
    Cost cost = per_block;
    if (remainder > 0) {
      ++cost;
      --remainder;
    }
    const TaskIndex t = dag_.add_task(cost);
    if (cls == core::LoopClass::Sequential && prev != kInvalidTask) {
      dag_.add_dep(t, prev);
    }
    loop.blocks.push_back(t);
    prev = t;
  }

  if (cls == core::LoopClass::Sequential) {
    loop.tail = loop.blocks.back();
  } else if (cls == core::LoopClass::Reduction) {
    // Partial accumulators combine in one cheap join.
    const TaskIndex combine = dag_.add_task(1);
    for (TaskIndex b : loop.blocks) dag_.add_dep(combine, b);
    loop.tail = combine;
  }
  return loop;
}

TaskIndex DagBuilder::serial_task(Cost cost, TaskIndex after) {
  const TaskIndex t = dag_.add_task(cost);
  if (after != kInvalidTask) dag_.add_dep(t, after);
  return t;
}

void DagBuilder::link_all(const LoweredLoop& from, const LoweredLoop& to) {
  for (TaskIndex dst : to.blocks) {
    if (from.tail != kInvalidTask) {
      dag_.add_dep(dst, from.tail);
    } else {
      for (TaskIndex src : from.blocks) dag_.add_dep(dst, src);
    }
  }
}

void DagBuilder::link_pairs(const LoweredLoop& x, const LoweredLoop& y,
                            std::span<const prof::IterPair> pairs) {
  if (x.blocks.empty() || y.blocks.empty()) return;
  // Deduplicate per (y block): keep the latest required x block.
  std::vector<TaskIndex> needed(y.blocks.size(), kInvalidTask);
  for (const prof::IterPair& p : pairs) {
    const std::size_t yb =
        std::min<std::size_t>(static_cast<std::size_t>(p.iy / y.iters_per_block),
                              y.blocks.size() - 1);
    const TaskIndex xb = x.block_of(p.ix);
    if (needed[yb] == kInvalidTask || xb > needed[yb]) needed[yb] = xb;
  }
  for (std::size_t yb = 0; yb < needed.size(); ++yb) {
    if (needed[yb] != kInvalidTask) dag_.add_dep(y.blocks[yb], needed[yb]);
  }
}

void DagBuilder::after_loop(TaskIndex task, const LoweredLoop& loop) {
  if (loop.blocks.empty()) return;
  if (loop.tail != kInvalidTask) {
    dag_.add_dep(task, loop.tail);
  } else {
    for (TaskIndex b : loop.blocks) dag_.add_dep(task, b);
  }
}

void DagBuilder::before_loop(const LoweredLoop& loop, TaskIndex task) {
  for (TaskIndex b : loop.blocks) dag_.add_dep(b, task);
}

TaskIndex DagBuilder::recursion_tree(std::size_t branching, std::size_t depth,
                                     Cost leaf_cost, Cost fork_cost, Cost join_cost,
                                     TaskIndex after) {
  PPD_ASSERT(branching >= 1);
  if (depth == 0) {
    return serial_task(leaf_cost, after);
  }
  const TaskIndex fork = serial_task(fork_cost, after);
  std::vector<TaskIndex> children;
  children.reserve(branching);
  for (std::size_t c = 0; c < branching; ++c) {
    children.push_back(
        recursion_tree(branching, depth - 1, leaf_cost, fork_cost, join_cost, fork));
  }
  const TaskIndex join = dag_.add_task(join_cost);
  for (TaskIndex child : children) dag_.add_dep(join, child);
  dag_.add_dep(join, fork);
  return join;
}

}  // namespace ppd::sim
