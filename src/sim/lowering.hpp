// Lowering detected patterns onto the virtual-time task DAG.
//
// Each benchmark's "implemented parallel version" is expressed as a TaskDag
// built from these helpers; the simulator then sweeps thread counts to
// produce the Table III speedup column. The helpers mirror the supporting
// structures: lower_loop() is SPMD (do-all blocks / reduction blocks + a
// combine / a sequential chain), link_pairs() wires a multi-loop pipeline
// from the profiler's recorded iteration pairs, link_all() is a barrier, and
// recursion_tree() is the fork/join shape of the BOTS-style recursive task
// benchmarks.
#pragma once

#include <span>

#include "core/loop_class.hpp"
#include "prof/dependence.hpp"
#include "sim/task_dag.hpp"

namespace ppd::sim {

/// Incrementally builds a TaskDag out of pattern-shaped pieces.
class DagBuilder {
 public:
  /// A loop lowered to block tasks. Blocks are in iteration order.
  struct LoweredLoop {
    std::vector<TaskIndex> blocks;
    std::uint64_t iterations = 0;
    std::uint64_t iters_per_block = 1;
    /// The task completing the whole loop (last chain link, the reduction
    /// combine, or kInvalidTask for a plain do-all — use blocks directly).
    TaskIndex tail = kInvalidTask;

    /// Block containing iteration i.
    [[nodiscard]] TaskIndex block_of(std::uint64_t i) const {
      const std::size_t b = static_cast<std::size_t>(i / iters_per_block);
      return blocks[std::min(b, blocks.size() - 1)];
    }
  };

  /// Lowers a loop of `iterations` iterations and `total_cost` total work:
  /// do-all -> independent blocks; reduction -> independent blocks plus a
  /// combine task; sequential -> a dependence chain of blocks. At most
  /// `max_blocks` tasks are created (iterations group into blocks beyond
  /// that).
  LoweredLoop lower_loop(std::uint64_t iterations, Cost total_cost, core::LoopClass cls,
                         std::size_t max_blocks = 256);

  /// A single serial task, optionally dependent on a previous task.
  TaskIndex serial_task(Cost cost, TaskIndex after = kInvalidTask);

  /// Barrier: every block of `to` depends on every block (and tail) of
  /// `from`.
  void link_all(const LoweredLoop& from, const LoweredLoop& to);

  /// Multi-loop pipeline edges from recorded iteration pairs: y's block of
  /// iteration iy depends on x's block of iteration ix.
  void link_pairs(const LoweredLoop& x, const LoweredLoop& y,
                  std::span<const prof::IterPair> pairs);

  /// Makes `task` depend on the completion of `loop` (its tail, or all
  /// blocks for a plain do-all).
  void after_loop(TaskIndex task, const LoweredLoop& loop);

  /// Makes every block of `loop` depend on `task` (serial setup before a
  /// parallel loop).
  void before_loop(const LoweredLoop& loop, TaskIndex task);

  void link(TaskIndex task, TaskIndex dep) { dag_.add_dep(task, dep); }

  /// Fork/join recursion tree with branching factor k and the given depth:
  /// each internal node forks k children and joins them with a combine task;
  /// leaves carry `leaf_cost`. Returns the root's join task. This is the
  /// shape of the implemented BOTS task benchmarks (fib/sort/strassen),
  /// whose parallel versions recurse with a cutoff.
  TaskIndex recursion_tree(std::size_t branching, std::size_t depth, Cost leaf_cost,
                           Cost fork_cost, Cost join_cost, TaskIndex after = kInvalidTask);

  [[nodiscard]] TaskDag take() { return std::move(dag_); }
  [[nodiscard]] const TaskDag& dag() const { return dag_; }

 private:
  TaskDag dag_;
};

}  // namespace ppd::sim
