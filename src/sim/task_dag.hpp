// Virtual-time parallel-execution model.
//
// The paper measures speedups on a 2x8-core Xeon with 32 hyper-threads; the
// build machine for this reproduction has a single core, so wall-clock
// speedup is physically unobservable. Instead, the benchmark harness
// *replays the profiled dependence structure* — the same iteration pairs,
// task graphs, and cost weights the detectors extracted — under P virtual
// workers with a calibrated overhead model (see DESIGN.md, substitution
// table). This preserves the shape of Table III: which applications scale
// to 32 threads, which saturate at 3-16, and roughly by what factor.
//
// The model is a task DAG with per-task costs plus a list scheduler. Every
// pattern lowers onto it: do-all loops become independent per-iteration (or
// per-block) tasks, sequential loops become dependence chains, multi-loop
// pipelines add cross-loop edges straight from the recorded (i_x, i_y)
// pairs, and task parallelism uses the CU graph itself.
#pragma once

#include <cstdint>
#include <vector>

#include "support/ids.hpp"

namespace ppd::sim {

using TaskIndex = std::uint32_t;
inline constexpr TaskIndex kInvalidTask = ~TaskIndex{0};

/// One schedulable unit of virtual work.
struct SimTask {
  Cost cost = 0;
  std::vector<TaskIndex> deps;  ///< tasks that must finish first
};

/// A DAG of virtual tasks.
class TaskDag {
 public:
  TaskIndex add_task(Cost cost);
  void add_dep(TaskIndex task, TaskIndex dep);

  [[nodiscard]] std::size_t size() const { return tasks_.size(); }
  [[nodiscard]] const SimTask& task(TaskIndex t) const { return tasks_[t]; }
  [[nodiscard]] const std::vector<SimTask>& tasks() const { return tasks_; }

  /// Sum of all task costs: the sequential execution time (no overheads).
  [[nodiscard]] Cost total_work() const;

  /// Longest dependence chain by cost: a lower bound on any makespan.
  [[nodiscard]] Cost critical_path() const;

 private:
  std::vector<SimTask> tasks_;
};

/// Overhead model for the virtual machine.
struct SimParams {
  /// Cost added to every task when executed in parallel mode (thread wakeup,
  /// queue traffic). Zero tasks still pay it.
  Cost spawn_overhead = 2;
  /// One-time cost per run for team startup/teardown per worker.
  Cost startup_per_worker = 2;
  /// Roofline-style memory term: the portion of the total work that is
  /// memory traffic at one thread. Bandwidth stops scaling past
  /// memory_scale_limit workers, so T(P) >= memory_work / min(P, limit).
  /// Streaming kernels (bicg, gesummv, kmeans) saturate around 8 threads on
  /// the paper's two-socket machine; this term reproduces that saturation.
  Cost memory_work = 0;
  std::size_t memory_scale_limit = 8;
};

/// List-schedules the DAG on `workers` virtual workers (critical-path-first
/// priority) and returns the makespan in virtual time units. With one
/// worker, no overheads apply (that is the sequential execution).
[[nodiscard]] Cost simulate_makespan(const TaskDag& dag, std::size_t workers,
                                     const SimParams& params = {});

/// Result of a thread sweep.
struct SweepPoint {
  std::size_t threads = 1;
  Cost makespan = 0;
  double speedup = 1.0;
};
struct SweepResult {
  std::vector<SweepPoint> points;
  SweepPoint best;
};

/// Simulates the DAG for each thread count (default: the paper's sweep
/// 1..32) and reports the highest speedup and where it occurred (Table III's
/// "Speedup" and "Threads" columns).
[[nodiscard]] SweepResult sweep_threads(const TaskDag& dag, const SimParams& params = {},
                                        const std::vector<std::size_t>& thread_counts = {
                                            1, 2, 3, 4, 8, 16, 32});

}  // namespace ppd::sim
