#include "sim/task_dag.hpp"

#include <algorithm>
#include <queue>

#include "support/assert.hpp"

namespace ppd::sim {

TaskIndex TaskDag::add_task(Cost cost) {
  tasks_.push_back(SimTask{cost, {}});
  return static_cast<TaskIndex>(tasks_.size() - 1);
}

void TaskDag::add_dep(TaskIndex task, TaskIndex dep) {
  PPD_ASSERT(task < tasks_.size() && dep < tasks_.size());
  PPD_ASSERT_MSG(dep < task, "dependencies must point at earlier tasks (DAG by construction)");
  tasks_[task].deps.push_back(dep);
}

Cost TaskDag::total_work() const {
  Cost total = 0;
  for (const SimTask& t : tasks_) total += t.cost;
  return total;
}

Cost TaskDag::critical_path() const {
  // Tasks are topologically ordered by construction (deps point backwards).
  std::vector<Cost> longest(tasks_.size(), 0);
  Cost best = 0;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    Cost start = 0;
    for (TaskIndex dep : tasks_[i].deps) start = std::max(start, longest[dep]);
    longest[i] = start + tasks_[i].cost;
    best = std::max(best, longest[i]);
  }
  return best;
}

Cost simulate_makespan(const TaskDag& dag, std::size_t workers, const SimParams& params) {
  PPD_ASSERT(workers > 0);
  if (dag.size() == 0) return 0;

  const bool parallel = workers > 1;
  const Cost per_task = parallel ? params.spawn_overhead : 0;

  std::vector<std::uint32_t> pending(dag.size(), 0);
  std::vector<std::vector<TaskIndex>> dependents(dag.size());
  for (std::size_t i = 0; i < dag.size(); ++i) {
    const SimTask& t = dag.task(static_cast<TaskIndex>(i));
    pending[i] = static_cast<std::uint32_t>(t.deps.size());
    for (TaskIndex dep : t.deps) dependents[dep].push_back(static_cast<TaskIndex>(i));
  }

  // Priority: longest downstream chain first (classic list scheduling).
  // Tasks are topologically ordered (deps point backwards), so a reverse
  // sweep sees every dependent before its dependency.
  std::vector<Cost> rank(dag.size(), 0);
  for (std::size_t i = dag.size(); i-- > 0;) {
    Cost downstream = 0;
    for (TaskIndex j : dependents[i]) downstream = std::max(downstream, rank[j]);
    rank[i] = downstream + dag.task(static_cast<TaskIndex>(i)).cost;
  }

  auto ready_cmp = [&](TaskIndex a, TaskIndex b) { return rank[a] < rank[b]; };
  std::priority_queue<TaskIndex, std::vector<TaskIndex>, decltype(ready_cmp)> ready(ready_cmp);
  for (std::size_t i = 0; i < dag.size(); ++i) {
    if (pending[i] == 0) ready.push(static_cast<TaskIndex>(i));
  }

  // Event-driven simulation: workers become free at their finish times.
  using Event = std::pair<Cost, TaskIndex>;  // (finish time, task)
  auto event_cmp = [](const Event& a, const Event& b) { return a.first > b.first; };
  std::priority_queue<Event, std::vector<Event>, decltype(event_cmp)> running(event_cmp);

  Cost now = 0;
  Cost makespan = 0;
  std::size_t busy = 0;
  std::size_t completed = 0;

  while (completed < dag.size()) {
    while (!ready.empty() && busy < workers) {
      const TaskIndex t = ready.top();
      ready.pop();
      const Cost finish = now + dag.task(t).cost + per_task;
      running.push({finish, t});
      ++busy;
    }
    PPD_ASSERT_MSG(!running.empty(), "scheduler stalled: cyclic or disconnected DAG");
    const auto [finish, task] = running.top();
    running.pop();
    now = finish;
    makespan = std::max(makespan, finish);
    --busy;
    ++completed;
    for (TaskIndex dep : dependents[task]) {
      if (--pending[dep] == 0) ready.push(dep);
    }
  }

  if (parallel) makespan += params.startup_per_worker * static_cast<Cost>(workers);
  if (params.memory_work > 0 && parallel) {
    const Cost mem_time =
        params.memory_work /
        static_cast<Cost>(std::min(workers, params.memory_scale_limit));
    makespan = std::max(makespan, mem_time);
  }
  return makespan;
}

SweepResult sweep_threads(const TaskDag& dag, const SimParams& params,
                          const std::vector<std::size_t>& thread_counts) {
  SweepResult result;
  const Cost sequential = dag.total_work();
  for (std::size_t threads : thread_counts) {
    SweepPoint point;
    point.threads = threads;
    point.makespan = threads == 1 ? sequential : simulate_makespan(dag, threads, params);
    point.speedup = point.makespan == 0
                        ? 1.0
                        : static_cast<double>(sequential) / static_cast<double>(point.makespan);
    result.points.push_back(point);
  }
  // Report the smallest thread count on the saturation plateau: beyond it,
  // marginal gains are below measurement noise on a real machine.
  constexpr double kPlateauTolerance = 0.96;
  double max_speedup = 0.0;
  for (const SweepPoint& p : result.points) max_speedup = std::max(max_speedup, p.speedup);
  for (const SweepPoint& p : result.points) {
    if (p.speedup >= kPlateauTolerance * max_speedup) {
      result.best = p;
      break;
    }
  }
  return result;
}

}  // namespace ppd::sim
