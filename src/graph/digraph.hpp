// Generic directed-graph kernel.
//
// Used for CU graphs (CUs as vertices, data dependences as edges), for the
// reachability test behind the parallel-barrier check (§III-B), and for the
// weighted critical-path computation behind the estimated-speedup metric.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "support/ids.hpp"

namespace ppd::graph {

using NodeIndex = std::uint32_t;
inline constexpr NodeIndex kInvalidNode = ~NodeIndex{0};

/// Adjacency-list digraph with deduplicated edges and per-node weights.
class Digraph {
 public:
  /// Adds a node with the given weight; returns its index.
  NodeIndex add_node(Cost weight = 0);

  /// Adds edge from -> to (ignored if it already exists or is a self-loop
  /// when `allow_self_loops` is false).
  void add_edge(NodeIndex from, NodeIndex to, bool allow_self_loops = false);

  [[nodiscard]] std::size_t node_count() const { return successors_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }

  [[nodiscard]] const std::vector<NodeIndex>& successors(NodeIndex n) const {
    return successors_[n];
  }
  [[nodiscard]] const std::vector<NodeIndex>& predecessors(NodeIndex n) const {
    return predecessors_[n];
  }
  [[nodiscard]] Cost weight(NodeIndex n) const { return weights_[n]; }
  void set_weight(NodeIndex n, Cost w) { weights_[n] = w; }
  void add_weight(NodeIndex n, Cost w) { weights_[n] += w; }

  [[nodiscard]] bool has_edge(NodeIndex from, NodeIndex to) const;

  /// BFS reachability: is `to` reachable from `from` following edges?
  /// A node is considered reachable from itself.
  [[nodiscard]] bool reachable(NodeIndex from, NodeIndex to) const;

  /// Topological order, or nullopt if the graph has a cycle.
  [[nodiscard]] std::optional<std::vector<NodeIndex>> topological_order() const;

  /// Sum of all node weights.
  [[nodiscard]] Cost total_weight() const;

  /// Weighted critical path (heaviest path by node weights). Works on any
  /// digraph: cycles are condensed into strongly connected components first
  /// (an SCC executes sequentially, so its whole weight lies on the path).
  /// Returns the path weight and one witness path of original node indices
  /// (for condensed components, a representative member).
  struct CriticalPath {
    Cost weight = 0;
    std::vector<NodeIndex> nodes;
  };
  [[nodiscard]] CriticalPath critical_path() const;

  /// Tarjan strongly-connected components. Returns component id per node;
  /// ids are in reverse topological order of the condensation.
  [[nodiscard]] std::vector<std::uint32_t> strongly_connected_components(
      std::uint32_t* component_count = nullptr) const;

 private:
  std::vector<std::vector<NodeIndex>> successors_;
  std::vector<std::vector<NodeIndex>> predecessors_;
  std::vector<Cost> weights_;
  std::size_t edge_count_ = 0;
};

}  // namespace ppd::graph
