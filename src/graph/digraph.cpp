#include "graph/digraph.hpp"

#include <algorithm>
#include <deque>

#include "support/assert.hpp"

namespace ppd::graph {

NodeIndex Digraph::add_node(Cost weight) {
  const NodeIndex n = static_cast<NodeIndex>(successors_.size());
  successors_.emplace_back();
  predecessors_.emplace_back();
  weights_.push_back(weight);
  return n;
}

void Digraph::add_edge(NodeIndex from, NodeIndex to, bool allow_self_loops) {
  PPD_ASSERT(from < node_count() && to < node_count());
  if (from == to && !allow_self_loops) return;
  if (has_edge(from, to)) return;
  successors_[from].push_back(to);
  predecessors_[to].push_back(from);
  ++edge_count_;
}

bool Digraph::has_edge(NodeIndex from, NodeIndex to) const {
  const auto& succ = successors_[from];
  return std::find(succ.begin(), succ.end(), to) != succ.end();
}

bool Digraph::reachable(NodeIndex from, NodeIndex to) const {
  if (from == to) return true;
  std::vector<bool> seen(node_count(), false);
  std::deque<NodeIndex> queue{from};
  seen[from] = true;
  while (!queue.empty()) {
    const NodeIndex n = queue.front();
    queue.pop_front();
    for (NodeIndex succ : successors_[n]) {
      if (succ == to) return true;
      if (!seen[succ]) {
        seen[succ] = true;
        queue.push_back(succ);
      }
    }
  }
  return false;
}

std::optional<std::vector<NodeIndex>> Digraph::topological_order() const {
  std::vector<std::uint32_t> indegree(node_count(), 0);
  for (NodeIndex n = 0; n < node_count(); ++n) {
    for (NodeIndex succ : successors_[n]) ++indegree[succ];
  }
  std::deque<NodeIndex> ready;
  for (NodeIndex n = 0; n < node_count(); ++n) {
    if (indegree[n] == 0) ready.push_back(n);
  }
  std::vector<NodeIndex> order;
  order.reserve(node_count());
  while (!ready.empty()) {
    const NodeIndex n = ready.front();
    ready.pop_front();
    order.push_back(n);
    for (NodeIndex succ : successors_[n]) {
      if (--indegree[succ] == 0) ready.push_back(succ);
    }
  }
  if (order.size() != node_count()) return std::nullopt;
  return order;
}

Cost Digraph::total_weight() const {
  Cost total = 0;
  for (Cost w : weights_) total += w;
  return total;
}

std::vector<std::uint32_t> Digraph::strongly_connected_components(
    std::uint32_t* component_count) const {
  // Iterative Tarjan (the CU graphs of recursive benchmarks can be deep).
  const std::uint32_t n = static_cast<std::uint32_t>(node_count());
  constexpr std::uint32_t kUnvisited = ~std::uint32_t{0};
  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::uint32_t> component(n, kUnvisited);
  std::vector<NodeIndex> stack;
  std::uint32_t next_index = 0;
  std::uint32_t next_component = 0;

  struct Frame {
    NodeIndex node;
    std::size_t child = 0;
  };
  std::vector<Frame> frames;

  for (NodeIndex root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    frames.push_back(Frame{root});
    while (!frames.empty()) {
      Frame& f = frames.back();
      const NodeIndex v = f.node;
      if (f.child == 0) {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      bool recursed = false;
      while (f.child < successors_[v].size()) {
        const NodeIndex w = successors_[v][f.child++];
        if (index[w] == kUnvisited) {
          frames.push_back(Frame{w});
          recursed = true;
          break;
        }
        if (on_stack[w]) lowlink[v] = std::min(lowlink[v], index[w]);
      }
      if (recursed) continue;
      if (lowlink[v] == index[v]) {
        NodeIndex w;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          component[w] = next_component;
        } while (w != v);
        ++next_component;
      }
      frames.pop_back();
      if (!frames.empty()) {
        const NodeIndex parent = frames.back().node;
        lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
      }
    }
  }
  if (component_count != nullptr) *component_count = next_component;
  return component;
}

Digraph::CriticalPath Digraph::critical_path() const {
  if (node_count() == 0) return {};

  // Condense cycles: an SCC executes sequentially, so its entire weight
  // contributes to any path through it.
  std::uint32_t num_components = 0;
  const std::vector<std::uint32_t> component = strongly_connected_components(&num_components);

  std::vector<Cost> comp_weight(num_components, 0);
  std::vector<NodeIndex> comp_representative(num_components, kInvalidNode);
  for (NodeIndex v = 0; v < node_count(); ++v) {
    comp_weight[component[v]] += weights_[v];
    if (comp_representative[component[v]] == kInvalidNode) comp_representative[component[v]] = v;
  }

  Digraph condensed;
  for (std::uint32_t c = 0; c < num_components; ++c) condensed.add_node(comp_weight[c]);
  for (NodeIndex v = 0; v < node_count(); ++v) {
    for (NodeIndex w : successors_[v]) {
      if (component[v] != component[w]) {
        condensed.add_edge(component[v], component[w]);
      }
    }
  }

  const auto order = condensed.topological_order();
  PPD_ASSERT_MSG(order.has_value(), "condensation must be acyclic");

  std::vector<Cost> best(num_components, 0);
  std::vector<std::uint32_t> best_pred(num_components, kInvalidNode);
  Cost best_total = 0;
  std::uint32_t best_end = kInvalidNode;
  for (NodeIndex c : *order) {
    best[c] += condensed.weight(c);
    for (NodeIndex succ : condensed.successors(c)) {
      if (best[c] > best[succ]) {
        best[succ] = best[c];
        best_pred[succ] = c;
      }
    }
    if (best[c] > best_total) {
      best_total = best[c];
      best_end = c;
    }
  }

  CriticalPath result;
  result.weight = best_total;
  for (std::uint32_t c = best_end; c != kInvalidNode; c = best_pred[c]) {
    result.nodes.push_back(comp_representative[c]);
  }
  std::reverse(result.nodes.begin(), result.nodes.end());
  return result;
}

}  // namespace ppd::graph
