// Ordinary-least-squares linear regression and the multi-loop pipeline
// efficiency factor (Eq. 1 and Eq. 2 of the paper).
#pragma once

#include <span>

#include "prof/dependence.hpp"

namespace ppd::regress {

/// Fitted line Y = a·X + b.
struct LinearFit {
  double a = 0.0;  ///< slope
  double b = 0.0;  ///< intercept
  double r2 = 0.0;  ///< coefficient of determination
  std::size_t samples = 0;

  [[nodiscard]] bool usable() const { return samples >= 2; }
};

/// OLS fit over (x, y) samples. With fewer than two samples or zero X
/// variance, the fit degenerates to a horizontal line through the mean.
[[nodiscard]] LinearFit fit(std::span<const double> xs, std::span<const double> ys);

/// Convenience overload over recorded iteration pairs.
[[nodiscard]] LinearFit fit(std::span<const prof::IterPair> pairs);

/// Efficiency factor e = ∫current / ∫perfect (Eq. 2).
///
/// ∫current is the area under the fitted line over X ∈ [0, nx]. The
/// *perfect* pipeline line is the normalized diagonal from (0,0) to
/// (nx, ny): iteration fractions of the two loops correspond one-to-one
/// (for equal trip counts this is the paper's Y = X line; for unequal trip
/// counts the diagonal rescales, which reproduces the paper's fluidanimate
/// value e = 0.97 at a = 0.05). Clamped to be non-negative; e ≈ 1 is a
/// perfect pipeline, e ≈ 0 means loop y waits for nearly all of loop x, and
/// e >> 1 means both loops can run almost concurrently (§III-A).
[[nodiscard]] double efficiency_factor(const LinearFit& fit_result, double nx, double ny);

}  // namespace ppd::regress
