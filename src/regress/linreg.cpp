#include "regress/linreg.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/assert.hpp"

namespace ppd::regress {

LinearFit fit(std::span<const double> xs, std::span<const double> ys) {
  PPD_ASSERT(xs.size() == ys.size());
  LinearFit result;
  result.samples = xs.size();
  if (xs.empty()) return result;

  const double n = static_cast<double>(xs.size());
  double sx = 0.0;
  double sy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n;
  const double my = sy / n;

  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxx += (xs[i] - mx) * (xs[i] - mx);
    sxy += (xs[i] - mx) * (ys[i] - my);
    syy += (ys[i] - my) * (ys[i] - my);
  }

  if (sxx == 0.0) {
    // Degenerate: all X equal; horizontal line through the Y mean.
    result.a = 0.0;
    result.b = my;
    result.r2 = 0.0;
    return result;
  }

  result.a = sxy / sxx;
  result.b = my - result.a * mx;
  if (syy == 0.0) {
    result.r2 = 1.0;  // all residuals are zero on a horizontal target
  } else {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double pred = result.a * xs[i] + result.b;
      ss_res += (ys[i] - pred) * (ys[i] - pred);
    }
    result.r2 = 1.0 - ss_res / syy;
  }
  return result;
}

LinearFit fit(std::span<const prof::IterPair> pairs) {
  std::vector<double> xs;
  std::vector<double> ys;
  xs.reserve(pairs.size());
  ys.reserve(pairs.size());
  for (const prof::IterPair& p : pairs) {
    xs.push_back(static_cast<double>(p.ix));
    ys.push_back(static_cast<double>(p.iy));
  }
  return fit(xs, ys);
}

double efficiency_factor(const LinearFit& fit_result, double nx, double ny) {
  if (nx <= 0.0 || ny <= 0.0) return 0.0;
  // Area under the fitted line over [0, nx]; negative stretches (where the
  // line is below zero) contribute nothing, matching the intuition that an
  // iteration cannot depend on a negative iteration index.
  const double a = fit_result.a;
  const double b = fit_result.b;
  auto primitive = [&](double x) { return 0.5 * a * x * x + b * x; };
  double current = 0.0;
  if (a == 0.0) {
    current = b > 0.0 ? b * nx : 0.0;
  } else {
    const double root = -b / a;
    double lo = 0.0;
    double hi = nx;
    if (a > 0.0) {
      lo = std::clamp(root, 0.0, nx);  // line positive above the root
      current = primitive(hi) - primitive(lo);
    } else {
      hi = std::clamp(root, 0.0, nx);  // line positive below the root
      current = primitive(hi) - primitive(lo);
    }
    current = std::max(current, 0.0);
  }
  const double perfect = 0.5 * ny * nx;  // diagonal (0,0) -> (nx, ny)
  PPD_ASSERT(perfect > 0.0);
  return current / perfect;
}

}  // namespace ppd::regress
