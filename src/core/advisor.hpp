// Advisor: transformation hints and pattern ranking.
//
// The paper's conclusion (§VI) names three future-work items this module
// implements on top of the detectors:
//
//  * loop optimizations such as *peeling*: the paper peels the first
//    iteration of reg_detect's producer loop by hand because the detected
//    intercept was b = -1 — derive_hints() derives exactly that suggestion
//    from the regression line;
//  * metrics to *choose the best pattern* among several detected ones:
//    rank_patterns() scores every detected pattern instance by its expected
//    whole-program benefit (Amdahl-weighted by the hotspot's cost share)
//    and the estimated transformation effort;
//  * operator inference feeds the PrivatizeAccumulator hint with the
//    concrete reduction operator.
#pragma once

#include <string>
#include <vector>

#include "core/analyzer.hpp"

namespace ppd::core {

/// Kind of source transformation suggested to the programmer.
enum class HintKind {
  PeelFirstIterations,   ///< peel the first |b| producer iterations (b < 0)
  DelayConsumerStart,    ///< the first b consumer iterations are independent (b > 0)
  FuseLoops,             ///< merge the two loops, parallelize as do-all
  ImplementPipeline,     ///< two-stage pipeline with the derived need() function
  PrivatizeAccumulator,  ///< per-thread accumulator + combine (reduction)
  PrivatizeVariables,    ///< per-thread copies remove WAR/WAW-only carried deps
  DoacrossSchedule,      ///< ordered parallelism with a fixed sync distance
  ChunkFunctionData,     ///< split the function's input data (geometric decomp.)
  ForkJoinTasks,         ///< master/worker over the classified fork/worker/barrier CUs
};

[[nodiscard]] const char* to_string(HintKind kind);

/// One actionable suggestion tied to the program locations it concerns.
struct TransformationHint {
  HintKind kind = HintKind::ImplementPipeline;
  RegionId region;            ///< the loop/function the hint applies to
  RegionId partner_region;    ///< second loop for pipeline/fusion hints
  std::uint64_t iterations = 0;  ///< e.g. how many iterations to peel
  trace::UpdateOp op = trace::UpdateOp::None;  ///< for reduction hints
  std::string text;           ///< human-readable instruction
};

/// Derives every applicable hint from an analysis result.
[[nodiscard]] std::vector<TransformationHint> derive_hints(const AnalysisResult& analysis,
                                                           const trace::TraceContext& program);

/// Relative programmer effort of applying a pattern's supporting structure.
enum class Effort { Low, Medium, High };

[[nodiscard]] const char* to_string(Effort effort);

/// One ranked pattern instance.
struct RankedPattern {
  PatternKind kind = PatternKind::None;
  std::string description;
  RegionId region;             ///< anchor region
  double local_speedup = 1.0;  ///< speedup of the pattern's own region
  double hotspot_fraction = 0.0;
  /// Amdahl-weighted whole-program speedup bound:
  /// 1 / ((1 - f) + f / local_speedup).
  double expected_benefit = 1.0;
  Effort effort = Effort::Medium;
  /// benefit-per-effort score used for the ranking.
  double score = 0.0;
};

/// Scores and ranks every pattern instance the analysis found, best first.
/// This answers the paper's "choose the best pattern among multiple
/// detected parallel patterns" (§VI).
[[nodiscard]] std::vector<RankedPattern> rank_patterns(const AnalysisResult& analysis,
                                                       const trace::TraceContext& program);

/// The ppd::pat construct implementing a pattern — the executable backend's
/// counterpart of Table I's supporting-structure column. Patterns without a
/// pat counterpart (None) map to "(none)".
[[nodiscard]] const char* pat_construct(PatternKind kind);

}  // namespace ppd::core
