// OpenMP skeleton generation from detected patterns.
//
// The paper's conclusion aims at "semi-automatic code transformation of a
// sequential application into a parallel one" (§VI). This module turns each
// detected pattern into the concrete OpenMP construct a programmer would
// paste in: `parallel for` for do-all and fused loops, `reduction(op:vars)`
// clauses with the inferred operator, `task`/`taskwait` skeletons following
// the fork/worker/barrier classification, `ordered depend` loops for
// do-across schedules, and chunked `parallel` regions for geometric
// decomposition.
#pragma once

#include <string>
#include <vector>

#include "core/analyzer.hpp"

namespace ppd::core {

/// One generated suggestion: where it applies and the code to paste.
struct OmpSuggestion {
  RegionId region;        ///< the loop/function the construct wraps
  std::string construct;  ///< the pragma line(s), '\n'-separated
  std::string note;       ///< what the programmer still has to check
};

/// Generates OpenMP constructs for every detected pattern instance,
/// primary-pattern suggestions first.
[[nodiscard]] std::vector<OmpSuggestion> generate_openmp(const AnalysisResult& analysis,
                                                         const trace::TraceContext& program);

}  // namespace ppd::core
