// Multi-loop pipeline and loop-fusion detection (§III-A).
//
// A multi-loop pipeline is a pipeline hidden across two (or more) loops:
// iterations of a later loop depend on iterations of an earlier loop. The
// detector takes the iteration pairs (i_x, i_y) the profiler filtered out
// (last write of an address in loop x, first read in loop y), fits the line
// Y = aX + b by linear regression (Eq. 1), and computes the efficiency
// factor e (Eq. 2). Table II's interpretation of a and b is provided as
// text. Fusion is the special case where both loops are do-all and a = 1,
// b = 0: the loops can be merged and parallelized as a single do-all.
#pragma once

#include <string>
#include <vector>

#include "core/loop_class.hpp"
#include "pet/pet.hpp"
#include "prof/dependence.hpp"
#include "regress/linreg.hpp"

namespace ppd::core {

/// One detected loop-pair relationship. Chains of n dependent loops yield
/// n-1 of these (§III-A).
struct MultiLoopPipeline {
  RegionId loop_x;
  RegionId loop_y;
  regress::LinearFit fit;  ///< Y = aX + b over the recorded iteration pairs
  double e = 0.0;          ///< efficiency factor (Eq. 2)
  std::uint64_t nx = 0;    ///< trip count of loop x
  std::uint64_t ny = 0;    ///< trip count of loop y
  /// Distinct addresses flowing from x to y (the recorded last-writer /
  /// first-reader pairs), and each loop's own footprint: the inputs to the
  /// locality argument for fusion (§III-A).
  std::uint64_t shared_addresses = 0;
  std::uint64_t x_footprint = 0;
  std::uint64_t y_footprint = 0;
  LoopClass x_class = LoopClass::Sequential;
  LoopClass y_class = LoopClass::Sequential;
  bool fusion = false;  ///< both do-all with a=1, b=0 (hence e=1)
  /// True when the pair itself is unusable (e ~ 0, or a reversed a < 0
  /// dependence whose first consumer iteration needs the producer's tail)
  /// or when another hotspot loop pair (z, y) blocks loop y entirely:
  /// y cannot start until z finishes, so pipelining (x, y) buys nothing and
  /// the region is better handled as a task graph.
  bool blocked = false;

  [[nodiscard]] std::size_t samples() const { return fit.samples; }
};

/// Detector configuration.
struct PipelineConfig {
  /// Minimum inclusive-cost share for a loop to count as a hotspot; only
  /// hotspot loop pairs are analyzed (§III-A gathers hotspot pairs from the
  /// PET).
  double hotspot_fraction = 0.02;
  /// Minimum number of filtered iteration pairs for a meaningful regression.
  std::size_t min_samples = 3;
  /// Coefficient tolerance for the exact a=1, b=0 fusion test.
  double coefficient_tolerance = 1e-6;
  /// Efficiency below which a producing pair blocks its consumer loop.
  double blocking_efficiency = 0.1;
};

/// Detects all multi-loop pipeline relationships between hotspot loops.
[[nodiscard]] std::vector<MultiLoopPipeline> detect_pipelines(
    const prof::Profile& profile, const pet::Pet& pet, const PipelineConfig& config = {});

/// Table II: plain-text interpretation of the regression coefficients.
[[nodiscard]] std::string describe_coefficients(double a, double b,
                                                double tolerance = 1e-6);

/// A chain of dependent loops (§III-A: "if there is a chain dependence of n
/// loops, it gives n pairs of relationships. A pipeline of n stages can be
/// easily implemented by merging the information provided by the tool.").
/// stages[i] feeds stages[i+1]; links[i] is the detected relationship
/// between them.
struct PipelineChain {
  std::vector<RegionId> stages;
  std::vector<const MultiLoopPipeline*> links;

  [[nodiscard]] std::size_t stage_count() const { return stages.size(); }
};

/// Merges the pairwise relationships into maximal chains. Only unblocked
/// pairs participate; a loop feeding (or fed by) several loops starts/ends a
/// chain at the branch point.
[[nodiscard]] std::vector<PipelineChain> build_pipeline_chains(
    const std::vector<MultiLoopPipeline>& pipelines);

}  // namespace ppd::core
