#include "core/multiloop_pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "support/table.hpp"

namespace ppd::core {

std::vector<MultiLoopPipeline> detect_pipelines(const prof::Profile& profile,
                                                const pet::Pet& pet,
                                                const PipelineConfig& config) {
  auto is_hotspot_loop = [&](RegionId loop) {
    const pet::NodeIndex node = pet.find(loop);
    if (node == pet::kInvalidPetNode) return false;
    return pet.cost_fraction(node) >= config.hotspot_fraction;
  };

  std::vector<MultiLoopPipeline> result;
  for (const auto& [key, pairs] : profile.loop_pairs) {
    if (pairs.size() < config.min_samples) continue;
    if (!is_hotspot_loop(key.x) || !is_hotspot_loop(key.y)) continue;

    MultiLoopPipeline p;
    p.loop_x = key.x;
    p.loop_y = key.y;
    p.fit = regress::fit(pairs);
    const prof::LoopInfo* info_x = profile.loop_info(key.x);
    const prof::LoopInfo* info_y = profile.loop_info(key.y);
    p.nx = info_x != nullptr ? info_x->max_iterations : 0;
    p.ny = info_y != nullptr ? info_y->max_iterations : 0;
    p.shared_addresses = pairs.size();  // one recorded pair per communicated address
    p.x_footprint = info_x != nullptr ? info_x->distinct_addresses : 0;
    p.y_footprint = info_y != nullptr ? info_y->distinct_addresses : 0;
    p.e = regress::efficiency_factor(p.fit, static_cast<double>(p.nx),
                                     static_cast<double>(p.ny));
    p.x_class = classify_loop(profile, key.x);
    p.y_class = classify_loop(profile, key.y);
    p.fusion = p.x_class == LoopClass::DoAll && p.y_class == LoopClass::DoAll &&
               std::abs(p.fit.a - 1.0) <= config.coefficient_tolerance &&
               std::abs(p.fit.b) <= config.coefficient_tolerance;
    result.push_back(p);
  }

  // A pair is useless when it is itself inefficient (e ~ 0: loop y waits
  // for nearly all of loop x, §III-A) or when some other hotspot producer z
  // blocks loop y entirely: y then waits for all of z regardless of the
  // (x, y) overlap, and the region is a task-graph case (e.g. 3mm), not a
  // pipeline.
  // Pass 1 — self-blocked pairs: inefficient (e ~ 0: loop y waits for
  // nearly all of loop x, §III-A), or a reversed dependence (a < 0): later
  // consumer iterations depend on *earlier* producer iterations, so the
  // first consumer iteration already needs the producer's tail and no
  // overlap exists, even though Eq. 2's area ratio is direction-blind.
  std::vector<bool> self_blocked(result.size(), false);
  for (std::size_t i = 0; i < result.size(); ++i) {
    self_blocked[i] = result[i].fit.a < 0.0 || result[i].e < config.blocking_efficiency;
    result[i].blocked = self_blocked[i];
  }
  // Pass 2 — a consumer stalled by one producer gains nothing from
  // overlapping any other producer (the 3mm case): every pair feeding the
  // same consumer loop is blocked too.
  for (std::size_t i = 0; i < result.size(); ++i) {
    if (result[i].blocked) continue;
    for (std::size_t j = 0; j < result.size(); ++j) {
      if (i != j && self_blocked[j] && result[j].loop_y == result[i].loop_y) {
        result[i].blocked = true;
        break;
      }
    }
  }

  std::sort(result.begin(), result.end(), [](const auto& a, const auto& b) {
    return std::tie(a.loop_x, a.loop_y) < std::tie(b.loop_x, b.loop_y);
  });
  return result;
}

std::vector<PipelineChain> build_pipeline_chains(
    const std::vector<MultiLoopPipeline>& pipelines) {
  // Usable links only.
  std::vector<const MultiLoopPipeline*> links;
  for (const MultiLoopPipeline& p : pipelines) {
    if (!p.blocked) links.push_back(&p);
  }

  auto outgoing = [&](RegionId loop) {
    std::vector<const MultiLoopPipeline*> out;
    for (const MultiLoopPipeline* p : links) {
      if (p->loop_x == loop) out.push_back(p);
    }
    return out;
  };
  auto incoming_count = [&](RegionId loop) {
    std::size_t n = 0;
    for (const MultiLoopPipeline* p : links) {
      if (p->loop_y == loop) ++n;
    }
    return n;
  };

  std::vector<PipelineChain> chains;
  std::vector<bool> used(links.size(), false);
  for (std::size_t start = 0; start < links.size(); ++start) {
    if (used[start]) continue;
    const MultiLoopPipeline* first = links[start];
    // Chains start at a loop with no usable producer (or a branch point).
    if (incoming_count(first->loop_x) == 1) continue;

    PipelineChain chain;
    chain.stages.push_back(first->loop_x);
    const MultiLoopPipeline* current = first;
    for (;;) {
      const auto it = std::find(links.begin(), links.end(), current);
      used[static_cast<std::size_t>(it - links.begin())] = true;
      chain.links.push_back(current);
      chain.stages.push_back(current->loop_y);
      const auto next = outgoing(current->loop_y);
      // Extend only through unambiguous, unconsumed single links.
      if (next.size() != 1 || incoming_count(next.front()->loop_y) != 1) break;
      const auto next_it = std::find(links.begin(), links.end(), next.front());
      if (used[static_cast<std::size_t>(next_it - links.begin())]) break;
      current = next.front();
    }
    chains.push_back(std::move(chain));
  }
  // Any links left (cycles/branches): emit them as two-stage chains.
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (used[i]) continue;
    PipelineChain chain;
    chain.stages = {links[i]->loop_x, links[i]->loop_y};
    chain.links = {links[i]};
    chains.push_back(std::move(chain));
  }
  return chains;
}

std::string describe_coefficients(double a, double b, double tolerance) {
  std::string out;
  if (std::abs(a - 1.0) <= tolerance) {
    out += "a = 1: one iteration of loop y depends exactly on one iteration of loop x.";
  } else if (std::abs(a) <= tolerance * 0.1) {
    out += "a = 0: every iteration of loop y depends on (nearly) all iterations of "
           "loop x.";
  } else if (a < 1.0) {
    out += "a < 1: one iteration of loop y depends on " +
           support::format_fixed(1.0 / a, 1) + " iterations of loop x.";
  } else {
    out += "a > 1: " + support::format_fixed(a, 1) +
           " iterations of loop y can be executed after one iteration of loop x.";
  }
  out += ' ';
  if (std::abs(b) <= tolerance) {
    out += "b = 0: iteration i of loop y depends on iteration i of loop x.";
  } else if (b < 0.0) {
    out += "b < 0: no iteration of loop y depends on the first " +
           support::format_fixed(-b, 1) + " iterations of loop x.";
  } else {
    out += "b > 0: the first " + support::format_fixed(b, 1) +
           " iterations of loop y do not depend on any iteration of loop x.";
  }
  return out;
}

}  // namespace ppd::core
