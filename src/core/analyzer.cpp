#include "core/analyzer.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace ppd::core {

const ScopeTaskParallelism* AnalysisResult::primary_tasks() const {
  if (primary != PatternKind::TaskParallelism) return nullptr;
  if (hotspot_node == pet::kInvalidPetNode) return nullptr;
  for (const ScopeTaskParallelism& t : tasks) {
    if (t.scope_node == hotspot_node) return &t;
  }
  return nullptr;
}

std::vector<const MultiLoopPipeline*> AnalysisResult::reported_pipelines() const {
  std::vector<const MultiLoopPipeline*> out;
  for (const MultiLoopPipeline& p : pipelines) {
    if (!p.blocked) out.push_back(&p);
  }
  return out;
}

PatternAnalyzer::PatternAnalyzer(trace::TraceContext& ctx, AnalyzerConfig config)
    : ctx_(ctx), config_(config) {
  if (config_.profiler_mode == ProfilerMode::Sharded) {
    prof::ShardedProfiler::Options options;
    options.shards = config_.profile_shards;
    options.pool = config_.pool;
    if (options.pool == nullptr && config_.profile_jobs > 1) {
      owned_pool_ = std::make_unique<rt::ThreadPool>(config_.profile_jobs);
      options.pool = owned_pool_.get();
    }
    sharded_profiler_ = std::make_unique<prof::ShardedProfiler>(options);
    ctx_.add_sink(sharded_profiler_.get());
  } else {
    serial_profiler_ = std::make_unique<prof::DependenceProfiler>();
    ctx_.add_sink(serial_profiler_.get());
  }
  ctx_.add_sink(&pet_builder_);
  ctx_.add_sink(&cu_facts_);
}

prof::Profile PatternAnalyzer::take_profile() {
  return serial_profiler_ ? serial_profiler_->take() : sharded_profiler_->take();
}

AnalysisResult PatternAnalyzer::analyze() {
  PPD_OBS_SPAN("analyze");
  ctx_.finish();

  AnalysisResult result;
  result.profile = take_profile();
  {
    PPD_OBS_SPAN("pet.build");
    result.pet = pet_builder_.take();
  }
  result.cus = cu::form_cus(cu_facts_, ctx_);
  {
    PPD_OBS_SPAN("detect.reduction");
    result.reductions = detect_reductions(result.profile);
  }
  {
    PPD_OBS_SPAN("detect.pipeline");
    result.pipelines = detect_pipelines(result.profile, result.pet, config_.pipeline);
  }
  {
    PPD_OBS_SPAN("detect.geometric");
    result.geometric = detect_geometric_decomposition(result.profile, result.pet,
                                                      config_.hotspot_fraction);
  }

  // Task parallelism on every hotspot scope that has structure to offer.
  {
    PPD_OBS_SPAN("detect.tasks");
    for (pet::NodeIndex node : result.pet.hotspots(config_.hotspot_fraction)) {
      cu::CuGraph graph =
          cu::build_cu_graph(result.cus, result.profile, result.pet, node, ctx_);
      if (graph.size() < 2) continue;
      TaskParallelism tp = detect_task_parallelism(graph);
      result.tasks.push_back(
          ScopeTaskParallelism{node, std::move(graph), std::move(tp)});
    }
  }

  choose_primary(result);
  return result;
}

void PatternAnalyzer::choose_primary(AnalysisResult& result) const {
  const pet::Pet& pet = result.pet;
  auto set_hotspot = [&](pet::NodeIndex node) {
    result.hotspot_node = node;
    result.hotspot_cost_fraction =
        node == pet::kInvalidPetNode ? 0.0 : pet.cost_fraction(node);
  };

  // 1. Multi-loop pipeline / fusion.
  const auto reported = result.reported_pipelines();
  if (!reported.empty()) {
    const bool all_fusion =
        std::all_of(reported.begin(), reported.end(),
                    [](const MultiLoopPipeline* p) { return p->fusion; });
    result.primary = all_fusion ? PatternKind::Fusion : PatternKind::MultiLoopPipeline;
    result.primary_description = to_string(result.primary);
    // Hotspot: nearest common ancestor of the hottest reported pair.
    const MultiLoopPipeline* hottest = reported.front();
    const pet::NodeIndex nx = pet.find(hottest->loop_x);
    const pet::NodeIndex ny = pet.find(hottest->loop_y);
    set_hotspot(pet.nearest_common_ancestor(nx, ny));
    return;
  }

  // 2. Task parallelism (best worthwhile scope).
  const ScopeTaskParallelism* best_tasks = nullptr;
  for (const ScopeTaskParallelism& t : result.tasks) {
    if (t.tp.worker_count() < config_.min_workers) continue;
    if (t.tp.estimated_speedup < config_.min_task_speedup) continue;
    if (best_tasks == nullptr ||
        t.tp.estimated_speedup > best_tasks->tp.estimated_speedup) {
      best_tasks = &t;
    }
  }
  if (best_tasks != nullptr) {
    result.primary = PatternKind::TaskParallelism;
    // "+ Do-all" when the worker tasks are collapsed do-all loops (3mm/mvt).
    bool workers_doall = true;
    bool any_collapsed = false;
    for (std::size_t i = 0; i < best_tasks->tp.roles.size(); ++i) {
      if (best_tasks->tp.roles[i] != CuRole::Worker) continue;
      const cu::Cu& c = best_tasks->graph.cu(static_cast<graph::NodeIndex>(i));
      if (!c.collapsed) {
        workers_doall = false;
        break;
      }
      any_collapsed = true;
      if (classify_loop(result.profile, c.collapsed_region) != LoopClass::DoAll) {
        workers_doall = false;
        break;
      }
    }
    result.primary_description = "Task parallelism";
    if (workers_doall && any_collapsed) result.primary_description += " + Do-all";
    set_hotspot(best_tasks->scope_node);
    return;
  }

  // 3. Geometric decomposition of a function called inside a sequential
  //    hotspot loop.
  for (const GeometricDecomposition& gd : result.geometric) {
    bool sequential_caller = false;
    for (pet::NodeIndex n = pet.node(gd.node).parent; n != pet::kInvalidPetNode;
         n = pet.node(n).parent) {
      if (pet.node(n).is_loop() &&
          classify_loop(result.profile, pet.node(n).region) == LoopClass::Sequential) {
        sequential_caller = true;
        break;
      }
    }
    if (!sequential_caller) continue;
    result.primary = PatternKind::GeometricDecomposition;
    result.primary_description = "Geometric decomposition";
    // "+ Reduction" only when the reduction loops carry real weight; the
    // paper lists kmeans (heavy centroid accumulation) with the suffix but
    // not streamcluster, whose reduction loops are not hotspots (§IV-D).
    Cost reduction_cost = 0;
    for (pet::NodeIndex loop : gd.reduction_loops) {
      reduction_cost += pet.node(loop).inclusive_cost;
    }
    const Cost function_cost = pet.node(gd.node).inclusive_cost;
    if (function_cost > 0 &&
        static_cast<double>(reduction_cost) >= 0.1 * static_cast<double>(function_cost)) {
      result.primary_description += " + Reduction";
    }
    set_hotspot(gd.node);
    return;
  }

  // 4. Reduction in a hotspot loop (hottest qualifying loop wins).
  for (pet::NodeIndex node : pet.hotspots(config_.hotspot_fraction)) {
    if (!pet.node(node).is_loop()) continue;
    if (classify_loop(result.profile, pet.node(node).region) != LoopClass::Reduction) {
      continue;
    }
    result.primary = PatternKind::Reduction;
    result.primary_description = "Reduction";
    set_hotspot(node);
    return;
  }

  // 5. Plain do-all.
  for (pet::NodeIndex node : pet.hotspots(config_.hotspot_fraction)) {
    if (!pet.node(node).is_loop()) continue;
    if (classify_loop(result.profile, pet.node(node).region) != LoopClass::DoAll) continue;
    result.primary = PatternKind::DoAll;
    result.primary_description = "Do-all";
    set_hotspot(node);
    return;
  }

  result.primary = PatternKind::None;
  result.primary_description = "None";
  set_hotspot(pet::kInvalidPetNode);
}

}  // namespace ppd::core
