// Pattern taxonomy: the algorithm-structure design space covered by the
// paper and its mapping onto supporting structures (Table I).
#pragma once

#include <string>

namespace ppd::core {

/// Algorithm-structure patterns detected by this library.
enum class PatternKind {
  None,
  DoAll,
  Reduction,
  GeometricDecomposition,
  TaskParallelism,
  MultiLoopPipeline,
  Fusion,
};

/// Organization principle of the pattern (Table I, "Type" row).
enum class PatternType { ByTask, ByData, ByFlowOfData };

[[nodiscard]] const char* to_string(PatternKind kind);

/// Table I: the best supporting structure for implementing each pattern
/// ("Master/worker" for task parallelism, "SPMD" for the data-organized
/// and flow-organized patterns).
[[nodiscard]] const char* supporting_structure(PatternKind kind);

/// Table I: whether the pattern organizes by task, by data, or by data flow.
[[nodiscard]] PatternType pattern_type(PatternKind kind);

[[nodiscard]] const char* to_string(PatternType type);

}  // namespace ppd::core
