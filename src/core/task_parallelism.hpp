// Task-parallelism detection (§III-B, Algorithm 1).
//
// BFS over the CU graph of a hotspot region classifies CUs into fork,
// worker, and barrier roles: the first unmarked CU in serial order becomes a
// fork, its unmarked dependents become workers, and an already-marked
// dependent becomes a barrier (it waits on more than one CU). Two barriers
// can run in parallel iff neither reaches the other in the CU graph
// (checkParallelBarriers). The estimated-speedup metric divides the
// hotspot's total cost by the cost of the weighted critical path (Table V).
// The fork/worker/barrier output maps directly onto master/worker and
// fork/join supporting structures.
#pragma once

#include <string>
#include <vector>

#include "cu/cu.hpp"
#include "graph/digraph.hpp"

namespace ppd::core {

/// Role assigned to a CU by Algorithm 1.
enum class CuRole { Unmarked, Fork, Worker, Barrier };

[[nodiscard]] const char* to_string(CuRole role);

/// One fork relationship: which CU forks which workers.
struct ForkGroup {
  graph::NodeIndex fork = 0;
  std::vector<graph::NodeIndex> workers;
};

/// Result of task-parallelism detection on one CU graph.
struct TaskParallelism {
  RegionId scope;
  std::vector<CuRole> roles;  ///< parallel to the CU graph's nodes
  std::vector<ForkGroup> forks;
  /// Barrier pairs with no directed path between them (may run in parallel).
  std::vector<std::pair<graph::NodeIndex, graph::NodeIndex>> parallel_barriers;
  Cost total_cost = 0;          ///< total instructions in the hotspot
  Cost critical_path_cost = 0;  ///< instructions on the critical path
  std::vector<graph::NodeIndex> critical_path;
  double estimated_speedup = 1.0;

  [[nodiscard]] std::size_t worker_count() const;
  [[nodiscard]] std::size_t barrier_count() const;

  /// Renders the classification (Fig. 3-style) as text.
  [[nodiscard]] std::string render(const cu::CuGraph& graph) const;
};

/// Runs Algorithm 1 + checkParallelBarriers + the estimated-speedup metric
/// on one CU graph.
[[nodiscard]] TaskParallelism detect_task_parallelism(const cu::CuGraph& graph);

}  // namespace ppd::core
