#include "core/loop_class.hpp"

#include <algorithm>
#include <tuple>

namespace ppd::core {

const char* to_string(LoopClass cls) {
  switch (cls) {
    case LoopClass::DoAll: return "do-all";
    case LoopClass::Reduction: return "reduction";
    case LoopClass::Sequential: return "sequential";
  }
  return "?";
}

std::vector<ReductionCandidate> detect_reductions(const prof::Profile& profile,
                                                  RegionId loop, bool address_refinement) {
  std::vector<ReductionCandidate> result;
  auto it = profile.carried_vars.find(loop);
  if (it == profile.carried_vars.end()) return result;

  for (const auto& [var, access] : it->second) {
    // Algorithm 3: exactly one write line, reads only at that same line.
    if (access.write_lines.size() != 1) continue;
    if (access.read_lines.size() != 1) continue;
    if (*access.read_lines.begin() != *access.write_lines.begin()) continue;
    // Dynamic refinement: a reduction re-updates the same accumulator
    // addresses iteration after iteration.
    if (address_refinement && access.occurrences < 2 * access.addresses.size()) continue;
    ReductionCandidate candidate{loop, var, *access.write_lines.begin(),
                                 trace::UpdateOp::None};
    // Operator inference: a single consistent tag across every
    // participating write names the operator.
    if (access.ops.size() == 1) candidate.op = *access.ops.begin();
    result.push_back(candidate);
  }
  std::sort(result.begin(), result.end(), [](const auto& a, const auto& b) {
    return std::tie(a.line, a.var) < std::tie(b.line, b.var);
  });
  return result;
}

std::vector<ReductionCandidate> detect_reductions(const prof::Profile& profile) {
  std::vector<ReductionCandidate> result;
  for (const auto& [loop, info] : profile.loops) {
    auto candidates = detect_reductions(profile, loop);
    result.insert(result.end(), candidates.begin(), candidates.end());
  }
  std::sort(result.begin(), result.end(), [](const auto& a, const auto& b) {
    return std::tie(a.loop, a.line, a.var) < std::tie(b.loop, b.line, b.var);
  });
  return result;
}

LoopAnalysis analyze_loop(const prof::Profile& profile, RegionId loop) {
  LoopAnalysis out;
  out.cls = classify_loop(profile, loop);
  out.reductions = detect_reductions(profile, loop);

  const auto carried = profile.carried_in(loop);
  auto is_reduction_var = [&](VarId v) {
    return std::any_of(out.reductions.begin(), out.reductions.end(),
                       [&](const ReductionCandidate& r) { return r.var == v; });
  };

  // Group the carried dependences per variable.
  std::vector<VarId> raw_vars;
  std::vector<VarId> waronly_vars;
  for (const prof::Dependence* dep : carried) {
    if (dep->kind == prof::DepKind::Raw && !is_reduction_var(dep->var)) {
      raw_vars.push_back(dep->var);
    }
  }
  std::sort(raw_vars.begin(), raw_vars.end());
  raw_vars.erase(std::unique(raw_vars.begin(), raw_vars.end()), raw_vars.end());

  for (const prof::Dependence* dep : carried) {
    const VarId v = dep->var;
    if (is_reduction_var(v)) continue;
    if (std::binary_search(raw_vars.begin(), raw_vars.end(), v)) continue;
    waronly_vars.push_back(v);  // only WAR/WAW carried: privatizable
  }
  std::sort(waronly_vars.begin(), waronly_vars.end());
  waronly_vars.erase(std::unique(waronly_vars.begin(), waronly_vars.end()),
                     waronly_vars.end());
  out.privatizable = std::move(waronly_vars);

  if (out.cls == LoopClass::Sequential) {
    out.doall_after_transform = raw_vars.empty() && !out.privatizable.empty();
  }

  // Residual carried RAW dependences -> do-across characterization.
  std::uint64_t min_distance = ~std::uint64_t{0};
  bool regular = true;
  bool any = false;
  for (const prof::Dependence* dep : carried) {
    if (dep->kind != prof::DepKind::Raw || is_reduction_var(dep->var)) continue;
    any = true;
    min_distance = std::min(min_distance, dep->min_distance);
    if (dep->min_distance != dep->max_distance) regular = false;
  }
  if (any) {
    out.doacross_distance = min_distance;
    out.doacross_regular = regular;
  }
  return out;
}

LoopClass classify_loop(const prof::Profile& profile, RegionId loop) {
  const auto carried = profile.carried_in(loop);
  if (carried.empty()) return LoopClass::DoAll;

  const auto reductions = detect_reductions(profile, loop);
  auto is_reduction_dep = [&](const prof::Dependence& dep) {
    return std::any_of(reductions.begin(), reductions.end(),
                       [&](const ReductionCandidate& r) {
                         return r.var == dep.var && r.line == dep.source.line &&
                                r.line == dep.sink.line;
                       });
  };
  const bool all_reduction = std::all_of(
      carried.begin(), carried.end(),
      [&](const prof::Dependence* dep) { return is_reduction_dep(*dep); });
  return all_reduction && !reductions.empty() ? LoopClass::Reduction : LoopClass::Sequential;
}

}  // namespace ppd::core
