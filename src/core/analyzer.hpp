// PatternAnalyzer: the end-to-end detection pipeline.
//
// Wires the three DiscoPoP analyses (dependence profiler, PET builder, CU
// facts) to a TraceContext, then runs every pattern detector over the
// profiled data and selects the *primary* pattern the way the paper reports
// one pattern per application in Table III:
//
//   1. multi-loop pipeline / fusion between hotspot loops (unless another
//      producer blocks the consumer loop entirely — the 3mm case, which is
//      a task graph, not a pipeline);
//   2. task parallelism in a hotspot region (>= 2 workers and a worthwhile
//      estimated speedup), annotated "+ Do-all" when the worker tasks are
//      do-all loops;
//   3. geometric decomposition of a function called inside a sequential
//      hotspot loop (the streamcluster/kmeans narrative of §IV-C),
//      annotated "+ Reduction" when reduction loops sit inside;
//   4. reduction in a hotspot loop;
//   5. plain do-all.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/geometric.hpp"
#include "core/loop_class.hpp"
#include "core/multiloop_pipeline.hpp"
#include "core/pattern.hpp"
#include "core/task_parallelism.hpp"
#include "cu/builder.hpp"
#include "cu/facts.hpp"
#include "pet/pet.hpp"
#include "prof/profiler.hpp"
#include "prof/sharded_profiler.hpp"
#include "rt/thread_pool.hpp"
#include "trace/context.hpp"

namespace ppd::core {

/// Which dependence-profiler front-end the analyzer wires up. Both produce
/// bit-identical profiles (the `bitidentity` ctest label enforces this);
/// Sharded overlaps the shadow-memory work with event dispatch on a thread
/// pool and is the default for multi-job CLI runs.
enum class ProfilerMode { Serial, Sharded };

/// Tuning knobs for the full analysis.
struct AnalyzerConfig {
  PipelineConfig pipeline;
  /// Minimum inclusive-cost share for hotspot regions.
  double hotspot_fraction = 0.02;
  /// Task parallelism is reported only with at least this estimated speedup.
  double min_task_speedup = 1.3;
  /// ... and at least this many worker CUs.
  std::size_t min_workers = 2;

  ProfilerMode profiler_mode = ProfilerMode::Serial;
  /// Sharded mode: worker threads profiling concurrently. Values <= 1 keep
  /// the striped state but process inline (no pool) — useful for tests.
  std::size_t profile_jobs = 1;
  /// Sharded mode: address stripes (power of two; see ShardedShadow).
  std::size_t profile_shards = 64;
  /// Sharded mode: externally owned pool to profile on. When null and
  /// profile_jobs > 1, the analyzer creates its own pool of profile_jobs
  /// workers. Sharing the reader's decode pool here is the intended setup
  /// (decode tasks and profiling blocks interleave on the same workers).
  rt::ThreadPool* pool = nullptr;
};

/// Task-parallelism result bound to the scope it was detected in.
struct ScopeTaskParallelism {
  pet::NodeIndex scope_node = pet::kInvalidPetNode;
  cu::CuGraph graph;
  TaskParallelism tp;
};

/// Everything the analysis produced.
struct AnalysisResult {
  prof::Profile profile;
  pet::Pet pet{std::vector<pet::PetNode>{}};
  std::vector<cu::Cu> cus;
  std::vector<ReductionCandidate> reductions;
  std::vector<MultiLoopPipeline> pipelines;
  std::vector<ScopeTaskParallelism> tasks;
  std::vector<GeometricDecomposition> geometric;

  PatternKind primary = PatternKind::None;
  std::string primary_description;  ///< Table III "Detected Pattern" text
  pet::NodeIndex hotspot_node = pet::kInvalidPetNode;
  double hotspot_cost_fraction = 0.0;  ///< Table III "Exec Inst % in Hotspot"

  /// The task-parallelism result backing the primary pattern (if any).
  [[nodiscard]] const ScopeTaskParallelism* primary_tasks() const;
  /// The unblocked pipeline relationships (Table IV rows).
  [[nodiscard]] std::vector<const MultiLoopPipeline*> reported_pipelines() const;
};

/// End-to-end analyzer. Construct *before* running the instrumented kernel
/// (it subscribes its sinks), run the kernel, then call analyze().
class PatternAnalyzer {
 public:
  explicit PatternAnalyzer(trace::TraceContext& ctx, AnalyzerConfig config = {});

  /// Finishes the trace and runs every detector.
  [[nodiscard]] AnalysisResult analyze();

 private:
  void choose_primary(AnalysisResult& result) const;
  [[nodiscard]] prof::Profile take_profile();

  trace::TraceContext& ctx_;
  AnalyzerConfig config_;
  /// Pool created when Sharded mode asked for jobs but supplied no pool.
  /// Declared before the profiler so it is destroyed after it (the sharded
  /// profiler's destructor drains onto the pool).
  std::unique_ptr<rt::ThreadPool> owned_pool_;
  /// Exactly one of the two profiler front-ends is instantiated, per
  /// config_.profiler_mode.
  std::unique_ptr<prof::DependenceProfiler> serial_profiler_;
  std::unique_ptr<prof::ShardedProfiler> sharded_profiler_;
  pet::PetBuilder pet_builder_;
  cu::CuFacts cu_facts_{ctx_};
};

}  // namespace ppd::core
