#include "core/advisor.hpp"

#include <algorithm>
#include <cmath>

#include "support/table.hpp"

namespace ppd::core {
namespace {

std::string region_name(const trace::TraceContext& program, RegionId region) {
  return region.valid() ? program.region(region).name : std::string("<unknown>");
}

double amdahl(double fraction, double local_speedup) {
  if (local_speedup <= 1.0) return 1.0;
  const double f = std::clamp(fraction, 0.0, 1.0);
  return 1.0 / ((1.0 - f) + f / local_speedup);
}

/// Local speedup bound of a two-loop pipeline: the producer parallelizes if
/// do-all, the consumer runs at its own pace, the overlap hides the faster
/// stage. A crude but monotone bound: (Tx + Ty) / max(serial parts).
double pipeline_local_speedup(const MultiLoopPipeline& p, const pet::Pet& pet) {
  const pet::NodeIndex nx = pet.find(p.loop_x);
  const pet::NodeIndex ny = pet.find(p.loop_y);
  if (nx == pet::kInvalidPetNode || ny == pet::kInvalidPetNode) return 1.0;
  const double tx = static_cast<double>(pet.node(nx).inclusive_cost);
  const double ty = static_cast<double>(pet.node(ny).inclusive_cost);
  if (tx + ty == 0.0) return 1.0;
  if (p.fusion) return 16.0;  // a fused do-all scales with the machine
  const double serial_x = p.x_class == LoopClass::Sequential ? tx : tx / 16.0;
  const double serial_y = p.y_class == LoopClass::Sequential ? ty : ty / 16.0;
  const double bound = (tx + ty) / std::max(1.0, std::max(serial_x, serial_y));
  return std::max(1.0, bound * std::min(1.0, p.e));
}

}  // namespace

const char* to_string(HintKind kind) {
  switch (kind) {
    case HintKind::PeelFirstIterations: return "peel first iterations";
    case HintKind::DelayConsumerStart: return "start consumer early";
    case HintKind::FuseLoops: return "fuse loops";
    case HintKind::ImplementPipeline: return "implement pipeline";
    case HintKind::PrivatizeAccumulator: return "privatize accumulator";
    case HintKind::PrivatizeVariables: return "privatize variables";
    case HintKind::DoacrossSchedule: return "do-across schedule";
    case HintKind::ChunkFunctionData: return "chunk function data";
    case HintKind::ForkJoinTasks: return "fork/join tasks";
  }
  return "?";
}

const char* to_string(Effort effort) {
  switch (effort) {
    case Effort::Low: return "low";
    case Effort::Medium: return "medium";
    case Effort::High: return "high";
  }
  return "?";
}

std::vector<TransformationHint> derive_hints(const AnalysisResult& analysis,
                                             const trace::TraceContext& program) {
  std::vector<TransformationHint> hints;

  for (const MultiLoopPipeline* p : analysis.reported_pipelines()) {
    const std::string x_name = region_name(program, p->loop_x);
    const std::string y_name = region_name(program, p->loop_y);

    if (p->fusion) {
      TransformationHint hint;
      hint.kind = HintKind::FuseLoops;
      hint.region = p->loop_x;
      hint.partner_region = p->loop_y;
      hint.text = "fuse loops '" + x_name + "' and '" + y_name +
                  "' (both do-all, a=1 b=0) and parallelize the fused loop as a do-all";
      if (p->shared_addresses > 0 && p->y_footprint > 0) {
        // §III-A future work: quantify the locality benefit of fusion.
        const double share = 100.0 * static_cast<double>(p->shared_addresses) /
                             static_cast<double>(p->y_footprint);
        hint.text += "; " + std::to_string(p->shared_addresses) +
                     " elements flow between the loops (" +
                     support::format_fixed(share, 0) +
                     "% of the consumer's footprint) and stay cache-hot after fusion";
      }
      hints.push_back(std::move(hint));
      continue;
    }

    TransformationHint pipe;
    pipe.kind = HintKind::ImplementPipeline;
    pipe.region = p->loop_x;
    pipe.partner_region = p->loop_y;
    pipe.text = "implement a 2-stage pipeline '" + x_name + "' -> '" + y_name +
                "': iteration j of the consumer may start once ceil((j - (" +
                support::format_fixed(p->fit.b, 2) + ")) / " +
                support::format_fixed(p->fit.a, 2) + ") producer iterations completed" +
                (p->x_class == LoopClass::DoAll ? "; run the producer stage as a do-all"
                                                : "");
    hints.push_back(std::move(pipe));

    // The paper's reg_detect transformation: b = -1 means no consumer
    // iteration needs the first producer iteration, so peeling it leaves a
    // clean one-to-one pipeline (§IV-A).
    if (p->fit.b <= -0.5) {
      TransformationHint peel;
      peel.kind = HintKind::PeelFirstIterations;
      peel.region = p->loop_x;
      peel.partner_region = p->loop_y;
      peel.iterations = static_cast<std::uint64_t>(std::llround(-p->fit.b));
      peel.text = "peel the first " + std::to_string(peel.iterations) + " iteration(s) of '" +
                  x_name + "': no iteration of '" + y_name + "' depends on them (b = " +
                  support::format_fixed(p->fit.b, 2) + ")";
      hints.push_back(std::move(peel));
    } else if (p->fit.b >= 0.5) {
      TransformationHint delay;
      delay.kind = HintKind::DelayConsumerStart;
      delay.region = p->loop_y;
      delay.partner_region = p->loop_x;
      delay.iterations = static_cast<std::uint64_t>(std::llround(p->fit.b));
      delay.text = "the first " + std::to_string(delay.iterations) + " iteration(s) of '" +
                   y_name + "' depend on no producer iteration and can start immediately";
      hints.push_back(std::move(delay));
    }
  }

  for (const ReductionCandidate& r : analysis.reductions) {
    TransformationHint hint;
    hint.kind = HintKind::PrivatizeAccumulator;
    hint.region = r.loop;
    hint.op = r.op;
    hint.text = "privatize accumulator '" + program.var_info(r.var).name + "' in loop '" +
                region_name(program, r.loop) + "' (updated at line " + std::to_string(r.line) +
                ")";
    if (r.op != trace::UpdateOp::None) {
      hint.text += std::string(" and combine partial results with operator '") +
                   trace::to_string(r.op) + "'";
    } else {
      hint.text += "; confirm the update operator is associative";
    }
    hints.push_back(std::move(hint));
  }

  // Per-hotspot-loop transformation opportunities (§V: the privatization
  // and do-across patterns of related tools, applied to *sequential* loops
  // our primary detectors left behind).
  for (pet::NodeIndex node : analysis.pet.hotspots(0.02)) {
    const pet::PetNode& n = analysis.pet.node(node);
    if (!n.is_loop()) continue;
    const LoopAnalysis la = analyze_loop(analysis.profile, n.region);
    if (la.cls != LoopClass::Sequential) continue;
    if (la.doall_after_transform) {
      TransformationHint hint;
      hint.kind = HintKind::PrivatizeVariables;
      hint.region = n.region;
      hint.text = "loop '" + n.name + "' becomes do-all after privatizing ";
      for (std::size_t i = 0; i < la.privatizable.size(); ++i) {
        hint.text += (i > 0 ? ", " : "") + std::string("'") +
                     program.var_info(la.privatizable[i]).name + "'";
      }
      hint.text += " (only WAR/WAW dependences cross its iterations)";
      hints.push_back(std::move(hint));
    } else if (la.doacross_regular && la.doacross_distance >= 1) {
      TransformationHint hint;
      hint.kind = HintKind::DoacrossSchedule;
      hint.region = n.region;
      hint.iterations = la.doacross_distance;
      hint.text = "loop '" + n.name + "' admits a do-across schedule: iteration i+" +
                  std::to_string(la.doacross_distance) +
                  " may start once iteration i completed (constant dependence distance)";
      hints.push_back(std::move(hint));
    }
  }

  for (const GeometricDecomposition& gd : analysis.geometric) {
    TransformationHint hint;
    hint.kind = HintKind::ChunkFunctionData;
    hint.region = gd.function;
    hint.text = "split the data of function '" + region_name(program, gd.function) +
                "' into chunks and invoke it per chunk from separate threads (" +
                std::to_string(gd.doall_loops.size()) + " do-all / " +
                std::to_string(gd.reduction_loops.size()) + " reduction loops inside)";
    hints.push_back(std::move(hint));
  }

  for (const ScopeTaskParallelism& t : analysis.tasks) {
    if (t.tp.worker_count() < 2) continue;
    TransformationHint hint;
    hint.kind = HintKind::ForkJoinTasks;
    hint.region = t.tp.scope;
    hint.text = "fork the " + std::to_string(t.tp.worker_count()) + " worker CU(s) of '" +
                region_name(program, t.tp.scope) + "' with master/worker and join at the " +
                std::to_string(t.tp.barrier_count()) + " barrier CU(s); estimated speedup " +
                support::format_fixed(t.tp.estimated_speedup, 2);
    if (!t.tp.parallel_barriers.empty()) {
      hint.text += "; " + std::to_string(t.tp.parallel_barriers.size()) +
                   " barrier pair(s) can also run in parallel";
    }
    hints.push_back(std::move(hint));
  }

  return hints;
}

std::vector<RankedPattern> rank_patterns(const AnalysisResult& analysis,
                                         const trace::TraceContext& program) {
  std::vector<RankedPattern> ranked;
  const pet::Pet& pet = analysis.pet;

  auto fraction_of = [&](RegionId region) {
    const pet::NodeIndex node = pet.find(region);
    return node == pet::kInvalidPetNode ? 0.0 : pet.cost_fraction(node);
  };
  auto effort_factor = [](Effort effort) {
    switch (effort) {
      case Effort::Low: return 1.0;
      case Effort::Medium: return 0.8;
      case Effort::High: return 0.6;
    }
    return 0.8;
  };
  auto push = [&](RankedPattern p) {
    p.expected_benefit = amdahl(p.hotspot_fraction, p.local_speedup);
    p.score = (p.expected_benefit - 1.0) * effort_factor(p.effort);
    ranked.push_back(std::move(p));
  };

  for (const MultiLoopPipeline* p : analysis.reported_pipelines()) {
    RankedPattern r;
    r.kind = p->fusion ? PatternKind::Fusion : PatternKind::MultiLoopPipeline;
    r.description = std::string(to_string(r.kind)) + " over '" +
                    region_name(program, p->loop_x) + "' -> '" +
                    region_name(program, p->loop_y) + "'";
    r.region = p->loop_x;
    const pet::NodeIndex nx = pet.find(p->loop_x);
    const pet::NodeIndex ny = pet.find(p->loop_y);
    r.hotspot_fraction =
        fraction_of(p->loop_x) + fraction_of(p->loop_y);
    (void)nx;
    (void)ny;
    r.local_speedup = pipeline_local_speedup(*p, pet);
    // Fusion is a mechanical rewrite; a pipeline needs stage synchronization.
    r.effort = p->fusion ? Effort::Low : Effort::High;
    push(std::move(r));
  }

  for (const ScopeTaskParallelism& t : analysis.tasks) {
    if (t.tp.worker_count() < 2) continue;
    RankedPattern r;
    r.kind = PatternKind::TaskParallelism;
    r.description = "Task parallelism in '" + region_name(program, t.tp.scope) + "' (" +
                    std::to_string(t.tp.worker_count()) + " workers)";
    r.region = t.tp.scope;
    r.hotspot_fraction = t.scope_node == pet::kInvalidPetNode
                             ? 0.0
                             : pet.cost_fraction(t.scope_node);
    r.local_speedup = t.tp.estimated_speedup;
    r.effort = Effort::Medium;
    push(std::move(r));
  }

  for (const GeometricDecomposition& gd : analysis.geometric) {
    RankedPattern r;
    r.kind = PatternKind::GeometricDecomposition;
    r.description = "Geometric decomposition of '" + region_name(program, gd.function) + "'";
    r.region = gd.function;
    r.hotspot_fraction =
        gd.node == pet::kInvalidPetNode ? 0.0 : pet.cost_fraction(gd.node);
    // SPMD chunks scale with the machine minus the combine step.
    r.local_speedup = 12.0;
    r.effort = Effort::Medium;
    push(std::move(r));
  }

  for (const ReductionCandidate& red : analysis.reductions) {
    RankedPattern r;
    r.kind = PatternKind::Reduction;
    r.description = "Reduction of '" + program.var_info(red.var).name + "' in '" +
                    region_name(program, red.loop) + "'";
    r.region = red.loop;
    r.hotspot_fraction = fraction_of(red.loop);
    r.local_speedup = 8.0;  // typically bandwidth-bound
    r.effort = Effort::Low;
    push(std::move(r));
  }

  std::sort(ranked.begin(), ranked.end(),
            [](const RankedPattern& a, const RankedPattern& b) { return a.score > b.score; });
  return ranked;
}

const char* pat_construct(PatternKind kind) {
  switch (kind) {
    case PatternKind::DoAll: return "pat::parallel_for";
    case PatternKind::Reduction: return "pat::parallel_for_reduce";
    case PatternKind::Fusion: return "pat::parallel_for (fused body)";
    case PatternKind::MultiLoopPipeline: return "pat::Pipeline (farm)";
    case PatternKind::TaskParallelism: return "pat::TaskPool";
    case PatternKind::GeometricDecomposition: return "pat::parallel_for (chunked)";
    case PatternKind::None: break;
  }
  return "(none)";
}

}  // namespace ppd::core
