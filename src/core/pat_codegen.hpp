// ppd::pat skeleton generation: the executable second backend.
//
// Where omp_codegen emits pragma *text* the programmer pastes into their
// own sources, this backend emits C++ against the ppd::pat runtime — code
// the repo itself can compile, run, and time. Two granularities:
//
//  * generate_pat(): per-pattern snippets (the pat counterpart of each
//    OmpSuggestion), for reports and side-by-side display;
//  * pat_translation_unit(): one complete, self-verifying program that
//    instantiates every detected pattern with a synthetic workload sized
//    from the analysis, runs it on ppd::pat at jobs {1,2,4,8}, compares
//    against the sequential evaluation, and exits 0 iff all results match.
//    `ppd-analyze <benchmark> --emit pat > gen.cpp` pipes straight into a
//    compiler (see tests/cli/check_emit_pat.cmake).
#pragma once

#include <string>
#include <vector>

#include "core/analyzer.hpp"

namespace ppd::core {

/// One generated suggestion: where it applies and the pat code to paste.
struct PatSuggestion {
  RegionId region;      ///< the loop/function the construct replaces
  std::string snippet;  ///< C++ against the ppd::pat API, '\n'-separated
  std::string note;     ///< what the programmer still has to adapt
};

/// Generates ppd::pat snippets for every detected pattern instance, in the
/// same order as generate_openmp() so the two backends can be compared
/// suggestion by suggestion.
[[nodiscard]] std::vector<PatSuggestion> generate_pat(const AnalysisResult& analysis,
                                                      const trace::TraceContext& program);

/// Emits the complete self-verifying translation unit described above.
/// Returns the empty string when no executable pattern was detected (the
/// caller reports the no-pattern diagnostic; see ppd-analyze exit code 6).
[[nodiscard]] std::string pat_translation_unit(const AnalysisResult& analysis,
                                               const trace::TraceContext& program,
                                               const std::string& program_name);

}  // namespace ppd::core
