// Geometric-decomposition detection (§III-C, Algorithm 2).
//
// A hotspot function is a geometric-decomposition candidate when every loop
// among its immediate PET children is do-all or reduction, and every
// directly called function likewise contains only do-all/reduction loops.
// Such a function can be invoked on separate chunks of its input data from
// separate threads (SPMD), which coarsens granularity compared to
// parallelizing each loop individually.
#pragma once

#include <vector>

#include "core/loop_class.hpp"
#include "pet/pet.hpp"
#include "prof/dependence.hpp"

namespace ppd::core {

/// One geometric-decomposition candidate.
struct GeometricDecomposition {
  RegionId function;
  pet::NodeIndex node = pet::kInvalidPetNode;
  /// Loops (PET nodes) inside that were classified do-all.
  std::vector<pet::NodeIndex> doall_loops;
  /// Loops (PET nodes) inside that were classified reduction.
  std::vector<pet::NodeIndex> reduction_loops;
};

/// Algorithm 2 on one function node. Returns true (and fills the loop
/// lists) when the function qualifies. A function with no loops anywhere
/// does not qualify (there is nothing to decompose).
[[nodiscard]] bool is_geometric_decomposition(const prof::Profile& profile,
                                              const pet::Pet& pet, pet::NodeIndex func_node,
                                              GeometricDecomposition* out = nullptr);

/// All geometric-decomposition candidates among hotspot functions.
[[nodiscard]] std::vector<GeometricDecomposition> detect_geometric_decomposition(
    const prof::Profile& profile, const pet::Pet& pet, double hotspot_fraction = 0.02);

}  // namespace ppd::core
