#include "core/task_parallelism.hpp"

#include <algorithm>
#include <deque>

#include "support/assert.hpp"

namespace ppd::core {

const char* to_string(CuRole role) {
  switch (role) {
    case CuRole::Unmarked: return "unmarked";
    case CuRole::Fork: return "fork";
    case CuRole::Worker: return "worker";
    case CuRole::Barrier: return "barrier";
  }
  return "?";
}

std::size_t TaskParallelism::worker_count() const {
  return static_cast<std::size_t>(
      std::count(roles.begin(), roles.end(), CuRole::Worker));
}

std::size_t TaskParallelism::barrier_count() const {
  return static_cast<std::size_t>(
      std::count(roles.begin(), roles.end(), CuRole::Barrier));
}

TaskParallelism detect_task_parallelism(const cu::CuGraph& cu_graph) {
  const graph::Digraph& g = cu_graph.graph;
  const std::size_t n = g.node_count();

  TaskParallelism result;
  result.scope = cu_graph.scope;
  result.roles.assign(n, CuRole::Unmarked);

  // Algorithm 1. CU graph nodes are already in serial order, so the first
  // unmarked CU is the lowest unmarked index. Each node enters the queue at
  // most once per marking event (first mark or barrier upgrade), which
  // bounds the traversal on diamonds and keeps the paper's semantics.
  std::deque<graph::NodeIndex> queue;
  for (std::size_t start = 0; start < n; ++start) {
    if (result.roles[start] != CuRole::Unmarked) continue;
    result.roles[start] = CuRole::Fork;
    queue.push_back(static_cast<graph::NodeIndex>(start));
    while (!queue.empty()) {
      const graph::NodeIndex node = queue.front();
      queue.pop_front();
      ForkGroup group;
      group.fork = node;
      for (graph::NodeIndex dep : g.successors(node)) {
        if (result.roles[dep] == CuRole::Unmarked) {
          result.roles[dep] = CuRole::Worker;
          group.workers.push_back(dep);
          queue.push_back(dep);
        } else if (result.roles[dep] != CuRole::Barrier) {
          // Already marked once: it depends on more than one CU.
          result.roles[dep] = CuRole::Barrier;
          queue.push_back(dep);
        }
      }
      if (!group.workers.empty()) result.forks.push_back(std::move(group));
    }
  }

  // checkParallelBarriers: two barriers can run in parallel iff there is no
  // directed path between them in either direction.
  std::vector<graph::NodeIndex> barriers;
  for (std::size_t i = 0; i < n; ++i) {
    if (result.roles[i] == CuRole::Barrier) {
      barriers.push_back(static_cast<graph::NodeIndex>(i));
    }
  }
  for (std::size_t i = 0; i < barriers.size(); ++i) {
    for (std::size_t j = i + 1; j < barriers.size(); ++j) {
      if (!g.reachable(barriers[i], barriers[j]) &&
          !g.reachable(barriers[j], barriers[i])) {
        result.parallel_barriers.emplace_back(barriers[i], barriers[j]);
      }
    }
  }

  // Estimated speedup: total hotspot instructions / critical-path
  // instructions (§III-B).
  result.total_cost = g.total_weight();
  const graph::Digraph::CriticalPath cp = g.critical_path();
  result.critical_path_cost = cp.weight;
  result.critical_path = cp.nodes;
  result.estimated_speedup =
      cp.weight == 0 ? 1.0
                     : static_cast<double>(result.total_cost) /
                           static_cast<double>(cp.weight);
  return result;
}

std::string TaskParallelism::render(const cu::CuGraph& graph) const {
  PPD_ASSERT(roles.size() == graph.size());
  std::string out;
  for (std::size_t i = 0; i < roles.size(); ++i) {
    out += "CU_" + std::to_string(i) + " (" + graph.cu(static_cast<graph::NodeIndex>(i)).name +
           "): " + to_string(roles[i]) + "\n";
  }
  for (const ForkGroup& f : forks) {
    out += "CU_" + std::to_string(f.fork) + " forks";
    for (graph::NodeIndex w : f.workers) out += " CU_" + std::to_string(w);
    out += "\n";
  }
  for (const auto& [a, b] : parallel_barriers) {
    out += "barriers CU_" + std::to_string(a) + " and CU_" + std::to_string(b) +
           " can run in parallel\n";
  }
  out += "estimated speedup = " + std::to_string(estimated_speedup) + "\n";
  return out;
}

}  // namespace ppd::core
