#include "core/pattern.hpp"

namespace ppd::core {

const char* to_string(PatternKind kind) {
  switch (kind) {
    case PatternKind::None: return "None";
    case PatternKind::DoAll: return "Do-all";
    case PatternKind::Reduction: return "Reduction";
    case PatternKind::GeometricDecomposition: return "Geometric decomposition";
    case PatternKind::TaskParallelism: return "Task parallelism";
    case PatternKind::MultiLoopPipeline: return "Multi-loop pipeline";
    case PatternKind::Fusion: return "Fusion";
  }
  return "?";
}

const char* supporting_structure(PatternKind kind) {
  switch (kind) {
    case PatternKind::TaskParallelism:
      return "Master/worker";
    case PatternKind::GeometricDecomposition:
    case PatternKind::Reduction:
    case PatternKind::MultiLoopPipeline:
    case PatternKind::Fusion:
    case PatternKind::DoAll:
      return "SPMD";
    case PatternKind::None:
      return "-";
  }
  return "?";
}

PatternType pattern_type(PatternKind kind) {
  switch (kind) {
    case PatternKind::TaskParallelism:
      return PatternType::ByTask;
    case PatternKind::MultiLoopPipeline:
    case PatternKind::Fusion:
      return PatternType::ByFlowOfData;
    default:
      return PatternType::ByData;
  }
}

const char* to_string(PatternType type) {
  switch (type) {
    case PatternType::ByTask: return "Task";
    case PatternType::ByData: return "Data";
    case PatternType::ByFlowOfData: return "Flow of data";
  }
  return "?";
}

}  // namespace ppd::core
