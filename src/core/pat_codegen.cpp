#include "core/pat_codegen.hpp"

#include <algorithm>
#include <map>

#include "core/advisor.hpp"
#include "support/table.hpp"

namespace ppd::core {
namespace {

std::string region_name(const trace::TraceContext& program, RegionId region) {
  return region.valid() ? program.region(region).name : std::string("<unknown>");
}

/// Per-instance trip count of the loop backing `region`, clamped to a range
/// that keeps the generated synthetic workload meaningful but quick.
std::uint64_t loop_trip(const AnalysisResult& analysis, RegionId region) {
  std::uint64_t trip = 0;
  const pet::NodeIndex idx = analysis.pet.find(region);
  if (idx != pet::kInvalidPetNode) {
    const pet::PetNode& node = analysis.pet.node(idx);
    if (node.instances > 0) trip = node.iterations / node.instances;
  }
  return std::clamp<std::uint64_t>(trip, 64, 65536);
}

/// One synthetic accumulator per reduction operator. Arithmetic is uint64
/// throughout: wraparound is defined, and the chunk-ordered combine of
/// pat::parallel_for_reduce makes every result exactly reproducible.
struct OpShape {
  const char* label;     ///< operator name for comments / check labels
  const char* identity;  ///< identity element expression
  const char* fold;      ///< fold expression over (acc, synth(i))
  const char* combine;   ///< combine expression over (a, b)
};

OpShape op_shape(trace::UpdateOp op) {
  switch (op) {
    case trace::UpdateOp::Sum:
      return {"+", "0", "acc + synth(i)", "a + b"};
    case trace::UpdateOp::Product:
      return {"*", "1", "acc * (1u + synth(i) % 3u)", "a * b"};
    case trace::UpdateOp::Min:
      return {"min", "~std::uint64_t{0}", "std::min(acc, synth(i))", "std::min(a, b)"};
    case trace::UpdateOp::Max:
      return {"max", "0", "std::max(acc, synth(i))", "std::max(a, b)"};
    case trace::UpdateOp::None:
      break;
  }
  // Operator not inferred: verify with the associative default and leave
  // the substitution to the programmer (mirrors the omp backend's '?').
  return {"?", "0", "acc + synth(i)", "a + b"};
}

/// One emitted pattern instance: the paste-in snippet plus the verifying
/// block of the translation unit, generated together so the two outputs of
/// this backend can never drift apart.
struct Block {
  PatSuggestion suggestion;
  std::string tu;  ///< body of one `{ ... }` block inside the jobs loop
};

std::string join_vars(const trace::TraceContext& program, const std::vector<VarId>& vars) {
  std::string out;
  for (std::size_t i = 0; i < vars.size(); ++i) {
    out += (i > 0 ? ", " : "") + program.var_info(vars[i]).name;
  }
  return out;
}

void emit_fusion(const AnalysisResult& analysis, const trace::TraceContext& program,
                 const MultiLoopPipeline& p, std::vector<Block>& blocks) {
  const std::string x = region_name(program, p.loop_x);
  const std::string y = region_name(program, p.loop_y);
  const std::uint64_t n = loop_trip(analysis, p.loop_x);
  Block b;
  b.suggestion.region = p.loop_x;
  b.suggestion.snippet =
      "ppd::pat::parallel_for(pool, 0, n, [&](std::uint64_t i) {\n"
      "  /* body of '" + x + "' iteration i */\n"
      "  /* body of '" + y + "' iteration i */\n"
      "});";
  b.suggestion.note = "after fusing '" + x + "' and '" + y + "' into one loop body";
  b.tu =
      "    {\n"
      "      // fusion: '" + x + "' + '" + y + "' as one pat do-all (" +
      std::to_string(n) + " iterations); iteration i of the second loop\n"
      "      // reads exactly what iteration i of the first wrote.\n"
      "      const std::uint64_t n = " + std::to_string(n) + ";\n"
      "      std::vector<std::uint64_t> mid(n, 0), out(n, 0);\n"
      "      std::vector<std::uint64_t> mid_seq(n, 0), out_seq(n, 0);\n"
      "      for (std::uint64_t i = 0; i < n; ++i) {\n"
      "        mid_seq[i] = synth(i) * 3u;\n"
      "        out_seq[i] = mid_seq[i] + 7u;\n"
      "      }\n"
      "      ppd::pat::parallel_for(pool, 0, n, [&](std::uint64_t i) {\n"
      "        mid[i] = synth(i) * 3u;\n"
      "        out[i] = mid[i] + 7u;\n"
      "      });\n"
      "      check(out == out_seq, \"fusion '" + x + "'+'" + y + "'\", jobs);\n"
      "      ++patterns;\n"
      "    }\n";
  blocks.push_back(std::move(b));
}

void emit_pipeline(const AnalysisResult& analysis, const trace::TraceContext& program,
                   const MultiLoopPipeline& p, std::vector<Block>& blocks) {
  const std::string x = region_name(program, p.loop_x);
  const std::string y = region_name(program, p.loop_y);
  const std::uint64_t n = loop_trip(analysis, p.loop_x);
  const std::string need = "need(j) = ceil((j - (" + support::format_fixed(p.fit.b, 2) +
                           ")) / " + support::format_fixed(p.fit.a, 2) + ")";
  Block b;
  b.suggestion.region = p.loop_x;
  b.suggestion.snippet =
      "ppd::pat::Pipeline<std::uint64_t> pipe(pool);\n"
      "pipe.farm([&](std::uint64_t j) { /* '" + x + "' iteration j */ return j; }, 2);\n"
      "pipe.run(source /* yields 0..n-1 */,\n"
      "         [&](std::uint64_t j) { /* '" + y + "' iteration j */ });";
  b.suggestion.note = "the farm preserves delivery order, so the sink runs '" + y +
                      "' exactly when " + need + " producer iterations are done";
  b.tu =
      "    {\n"
      "      // pipeline: '" + x + "' farmed, '" + y + "' ordered at the sink\n"
      "      // (" + need + ", " + std::to_string(n) + " iterations)\n"
      "      const std::uint64_t n = " + std::to_string(n) + ";\n"
      "      std::vector<std::uint64_t> mid(n, 0), out(n, 0), out_seq(n, 0);\n"
      "      for (std::uint64_t j = 0; j < n; ++j) out_seq[j] = synth(j) * 3u + 7u;\n"
      "      std::uint64_t next = 0, expect = 0;\n"
      "      ppd::pat::Pipeline<std::uint64_t> pipe(pool);\n"
      "      pipe.farm([&](std::uint64_t j) { mid[j] = synth(j) * 3u; return j; }, 2);\n"
      "      pipe.run(\n"
      "          [&]() -> std::optional<std::uint64_t> {\n"
      "            if (next >= n) return std::nullopt;\n"
      "            return next++;\n"
      "          },\n"
      "          [&](std::uint64_t j) {\n"
      "            check(j == expect, \"pipeline '" + x + "' delivery order\", jobs);\n"
      "            ++expect;\n"
      "            out[j] = mid[j] + 7u;\n"
      "          });\n"
      "      check(out == out_seq, \"pipeline '" + x + "' -> '" + y + "'\", jobs);\n"
      "      ++patterns;\n"
      "    }\n";
  blocks.push_back(std::move(b));
}

void emit_reduction(const AnalysisResult& analysis, const trace::TraceContext& program,
                    RegionId loop, trace::UpdateOp op, const std::string& vars,
                    std::vector<Block>& blocks) {
  const std::string name = region_name(program, loop);
  const OpShape shape = op_shape(op);
  const std::uint64_t n = loop_trip(analysis, loop);
  Block b;
  b.suggestion.region = loop;
  b.suggestion.snippet =
      "auto result = ppd::pat::parallel_for_reduce(\n"
      "    pool, 0, n, /* identity */ " + std::string(shape.identity) + ",\n"
      "    [&](auto acc, std::uint64_t i) { /* '" + name + "' body folding " + vars +
      " */ return acc; },\n"
      "    [](auto a, auto b) { return " + shape.combine + "; });";
  b.suggestion.note = "for loop '" + name + "' (operator " + shape.label + ": " + vars + ")";
  if (shape.label[0] == '?') {
    b.suggestion.note +=
        "; the operator was not inferred — confirm associativity and substitute it";
  }
  b.tu =
      "    {\n"
      "      // reduction: loop '" + name + "' over " + vars + " (operator " + shape.label +
      ", " + std::to_string(n) + " iterations)\n"
      "      const std::uint64_t n = " + std::to_string(n) + ";\n"
      "      std::uint64_t seq = " + shape.identity + ";\n"
      "      for (std::uint64_t i = 0; i < n; ++i) {\n"
      "        const std::uint64_t acc = seq;\n"
      "        seq = " + shape.fold + ";\n"
      "      }\n"
      "      const std::uint64_t par = ppd::pat::parallel_for_reduce(\n"
      "          pool, 0, n, std::uint64_t{" + shape.identity + "},\n"
      "          [](std::uint64_t acc, std::uint64_t i) { return " + shape.fold + "; },\n"
      "          [](std::uint64_t a, std::uint64_t b) { return " + shape.combine + "; });\n"
      "      check(par == seq, \"reduction '" + name + "' (" + shape.label + ")\", jobs);\n"
      "      ++patterns;\n"
      "    }\n";
  blocks.push_back(std::move(b));
}

void emit_tasks(const trace::TraceContext& program, const ScopeTaskParallelism& t,
                std::vector<Block>& blocks) {
  const std::string scope = region_name(program, t.tp.scope);
  const std::size_t workers = t.tp.worker_count();
  std::string worker_names;
  for (std::size_t i = 0; i < t.tp.roles.size(); ++i) {
    if (t.tp.roles[i] != CuRole::Worker) continue;
    if (!worker_names.empty()) worker_names += ", ";
    worker_names += t.graph.cu(static_cast<graph::NodeIndex>(i)).name;
  }
  Block b;
  b.suggestion.region = t.tp.scope;
  b.suggestion.snippet =
      "ppd::pat::TaskPool tasks(pool);\n"
      "tasks.submit([&] { /* worker CU */ });  // one per worker: " + worker_names + "\n"
      "tasks.wait();  // barrier CU runs after";
  b.suggestion.note = "in '" + scope + "'; work stealing spreads the " +
                      std::to_string(workers) + " worker task(s) across the pool";
  b.tu =
      "    {\n"
      "      // fork/worker/barrier: scope '" + scope + "', " + std::to_string(workers) +
      " worker task(s) (" + worker_names + ")\n"
      "      const std::size_t workers = " + std::to_string(workers) + ";\n"
      "      const std::uint64_t n = 4096;\n"
      "      std::vector<std::uint64_t> partial(workers, 0);\n"
      "      {\n"
      "        ppd::pat::TaskPool tasks(pool);\n"
      "        for (std::size_t w = 0; w < workers; ++w) {\n"
      "          tasks.submit([&, w] {\n"
      "            const std::uint64_t lo = n * w / workers;\n"
      "            const std::uint64_t hi = n * (w + 1) / workers;\n"
      "            std::uint64_t acc = 0;\n"
      "            for (std::uint64_t i = lo; i < hi; ++i) acc += synth(i);\n"
      "            partial[w] = acc;\n"
      "          });\n"
      "        }\n"
      "        tasks.wait();\n"
      "      }\n"
      "      std::uint64_t total = 0, seq = 0;\n"
      "      for (const std::uint64_t v : partial) total += v;\n"
      "      for (std::uint64_t i = 0; i < n; ++i) seq += synth(i);\n"
      "      check(total == seq, \"tasks '" + scope + "'\", jobs);\n"
      "      ++patterns;\n"
      "    }\n";
  blocks.push_back(std::move(b));
}

void emit_geometric(const trace::TraceContext& program, const GeometricDecomposition& gd,
                    std::vector<Block>& blocks) {
  const std::string fn = region_name(program, gd.function);
  Block b;
  b.suggestion.region = gd.function;
  b.suggestion.snippet =
      "ppd::pat::parallel_for(pool, 0, chunks, [&](std::uint64_t c) {\n"
      "  " + fn + "(data + c * chunk_size, chunk_size);\n"
      "});";
  b.suggestion.note = "split the input of '" + fn +
                      "' into contiguous chunks; combine per-chunk results afterwards";
  b.tu =
      "    {\n"
      "      // geometric decomposition: '" + fn + "' over contiguous data chunks\n"
      "      const std::uint64_t n = 4096, chunks = 8;\n"
      "      std::vector<std::uint64_t> out(n, 0), out_seq(n, 0);\n"
      "      for (std::uint64_t i = 0; i < n; ++i) out_seq[i] = synth(i) + 1u;\n"
      "      ppd::pat::parallel_for(pool, 0, chunks, [&](std::uint64_t c) {\n"
      "        const std::uint64_t lo = n * c / chunks;\n"
      "        const std::uint64_t hi = n * (c + 1) / chunks;\n"
      "        for (std::uint64_t i = lo; i < hi; ++i) out[i] = synth(i) + 1u;\n"
      "      });\n"
      "      check(out == out_seq, \"geometric '" + fn + "'\", jobs);\n"
      "      ++patterns;\n"
      "    }\n";
  blocks.push_back(std::move(b));
}

void emit_privatized_doall(const AnalysisResult& analysis, const trace::TraceContext& program,
                           RegionId loop, const LoopAnalysis& la, std::vector<Block>& blocks) {
  const std::string name = region_name(program, loop);
  const std::string vars = join_vars(program, la.privatizable);
  const std::uint64_t n = loop_trip(analysis, loop);
  Block b;
  b.suggestion.region = loop;
  b.suggestion.snippet =
      "ppd::pat::parallel_for(pool, 0, n, [&](std::uint64_t i) {\n"
      "  /* '" + name + "' body with " + vars + " declared inside the lambda */\n"
      "});";
  b.suggestion.note = "for loop '" + name + "': moving " + vars +
                      " into the iteration body privatizes every carried dependence";
  b.tu =
      "    {\n"
      "      // privatized do-all: loop '" + name + "' (" + std::to_string(n) +
      " iterations; private: " + vars + ")\n"
      "      const std::uint64_t n = " + std::to_string(n) + ";\n"
      "      std::vector<std::uint64_t> out(n, 0), out_seq(n, 0);\n"
      "      for (std::uint64_t i = 0; i < n; ++i) {\n"
      "        const std::uint64_t t = synth(i);\n"
      "        out_seq[i] = t * t;\n"
      "      }\n"
      "      ppd::pat::parallel_for(pool, 0, n, [&](std::uint64_t i) {\n"
      "        const std::uint64_t t = synth(i);  // the privatized temporary\n"
      "        out[i] = t * t;\n"
      "      });\n"
      "      check(out == out_seq, \"privatized do-all '" + name + "'\", jobs);\n"
      "      ++patterns;\n"
      "    }\n";
  blocks.push_back(std::move(b));
}

/// Every executable pattern instance, in generate_openmp() order. Do-across
/// schedules are the one family with no pat counterpart (the runtime has no
/// ordered construct); they stay on the OpenMP backend and are omitted here.
std::vector<Block> collect_blocks(const AnalysisResult& analysis,
                                  const trace::TraceContext& program) {
  std::vector<Block> blocks;

  for (const MultiLoopPipeline* p : analysis.reported_pipelines()) {
    if (p->fusion) {
      emit_fusion(analysis, program, *p, blocks);
    } else {
      emit_pipeline(analysis, program, *p, blocks);
    }
  }

  // Reductions, grouped like the omp backend: one block per (loop, op).
  std::map<RegionId, std::map<trace::UpdateOp, std::vector<VarId>>> by_loop;
  for (const ReductionCandidate& r : analysis.reductions) {
    by_loop[r.loop][r.op].push_back(r.var);
  }
  for (const auto& [loop, per_op] : by_loop) {
    for (const auto& [op, vars] : per_op) {
      emit_reduction(analysis, program, loop, op, join_vars(program, vars), blocks);
    }
  }

  for (const ScopeTaskParallelism& t : analysis.tasks) {
    if (t.tp.worker_count() < 2) continue;
    emit_tasks(program, t, blocks);
  }

  for (const GeometricDecomposition& gd : analysis.geometric) {
    emit_geometric(program, gd, blocks);
  }

  for (const pet::NodeIndex node : analysis.pet.hotspots(0.02)) {
    const pet::PetNode& n = analysis.pet.node(node);
    if (!n.is_loop()) continue;
    const LoopAnalysis la = analyze_loop(analysis.profile, n.region);
    if (la.cls != LoopClass::Sequential || !la.doall_after_transform) continue;
    emit_privatized_doall(analysis, program, n.region, la, blocks);
  }

  return blocks;
}

}  // namespace

std::vector<PatSuggestion> generate_pat(const AnalysisResult& analysis,
                                        const trace::TraceContext& program) {
  std::vector<PatSuggestion> out;
  for (Block& b : collect_blocks(analysis, program)) {
    out.push_back(std::move(b.suggestion));
  }
  return out;
}

std::string pat_translation_unit(const AnalysisResult& analysis,
                                 const trace::TraceContext& program,
                                 const std::string& program_name) {
  const std::vector<Block> blocks = collect_blocks(analysis, program);
  if (blocks.empty()) return {};

  std::string tu;
  tu +=
      "// Generated by ppd-analyze --emit pat from '" + program_name + "'.\n"
      "// Primary pattern: " + std::string(to_string(analysis.primary)) +
      " (supporting construct: " + pat_construct(analysis.primary) + ").\n"
      "//\n"
      "// Self-verifying: every detected pattern instance runs on ppd::pat\n"
      "// with a synthetic workload sized from the analysis, at jobs\n"
      "// {1,2,4,8}, and is compared against the sequential evaluation.\n"
      "// Exit 0 iff all results match. Compile with -I <repo>/src plus\n"
      "// rt/thread_pool.cpp, obs/obs.cpp, support/assert.cpp,\n"
      "// support/status.cpp and -pthread (tests/cli/check_emit_pat.cmake\n"
      "// does exactly this).\n"
      "#include <algorithm>\n"
      "#include <cstdint>\n"
      "#include <cstdio>\n"
      "#include <optional>\n"
      "#include <vector>\n"
      "\n"
      "#include \"pat/pat.hpp\"\n"
      "#include \"rt/thread_pool.hpp\"\n"
      "\n"
      "namespace {\n"
      "\n"
      "int g_failures = 0;\n"
      "\n"
      "void check(bool ok, const char* what, std::size_t jobs) {\n"
      "  if (!ok) {\n"
      "    ++g_failures;\n"
      "    std::fprintf(stderr, \"FAIL: %s at jobs=%zu\\n\", what, jobs);\n"
      "  }\n"
      "}\n"
      "\n"
      "/// Deterministic synthetic element: stands in for the real loop body.\n"
      "std::uint64_t synth(std::uint64_t i) {\n"
      "  return (i * 2654435761u + 12345u) % 1000u;\n"
      "}\n"
      "\n"
      "}  // namespace\n"
      "\n"
      "int main() {\n"
      "  int patterns = 0;\n"
      "  for (const std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{4},\n"
      "                                 std::size_t{8}}) {\n"
      "    ppd::rt::ThreadPool pool(jobs);\n"
      "    patterns = 0;\n";
  for (const Block& b : blocks) tu += b.tu;
  tu +=
      "  }\n"
      "  if (g_failures != 0) return 1;\n"
      "  std::printf(\"pat-verify: %d pattern instance(s) verified at jobs 1/2/4/8\\n\",\n"
      "              patterns);\n"
      "  return 0;\n"
      "}\n";
  return tu;
}

}  // namespace ppd::core
