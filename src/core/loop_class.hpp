// Per-loop classification: do-all, reduction, or sequential.
//
// Do-all and reduction classification is the substrate several detectors
// share: fusion requires both loops to be do-all (§III-A), geometric
// decomposition requires every loop of a function to be do-all or reduction
// (Algorithm 2), and Table III's "+ Do-all" annotations come from here.
#pragma once

#include <vector>

#include "prof/dependence.hpp"
#include "trace/events.hpp"
#include "support/ids.hpp"

namespace ppd::core {

/// Reduction candidate found by Algorithm 3.
struct ReductionCandidate {
  RegionId loop;
  VarId var;
  SourceLine line = 0;  ///< the single source line performing the update
  /// Inferred reduction operator (None when the kernel was traced with
  /// untagged writes or the tags are inconsistent). The paper leaves
  /// operator identification to the programmer (§III-D) and names automatic
  /// inference as future work (§VI); tagged self-updates provide it here.
  trace::UpdateOp op = trace::UpdateOp::None;
};

/// How a loop can be parallelized on its own.
enum class LoopClass {
  DoAll,      ///< no loop-carried dependences
  Reduction,  ///< the only carried dependences are reduction updates
  Sequential, ///< other carried dependences present
};

[[nodiscard]] const char* to_string(LoopClass cls);

/// Algorithm 3 over the profiled inter-iteration access summaries: a
/// variable written at exactly one source line of the loop and read only at
/// that same line is a reduction candidate. As a dynamic refinement, the
/// dependence must re-update the same accumulator addresses across
/// iterations (occurrences exceeding distinct addresses); this separates
/// reductions from single-visit stencil chains such as reg_detect's
/// `path[i][j] = path[i-1][j-1] + ...`, which Algorithm 3's line test alone
/// cannot distinguish.
/// `address_refinement` enables the dynamic refinement described above;
/// disabling it yields the paper's plain line test (the ablation bench shows
/// the stencil false positives that reappear without it).
[[nodiscard]] std::vector<ReductionCandidate> detect_reductions(const prof::Profile& profile,
                                                                RegionId loop,
                                                                bool address_refinement = true);

/// All reduction candidates of every profiled loop.
[[nodiscard]] std::vector<ReductionCandidate> detect_reductions(const prof::Profile& profile);

/// Classifies `loop`: do-all if it has no loop-carried dependences,
/// reduction if all carried dependences belong to reduction candidates,
/// sequential otherwise.
[[nodiscard]] LoopClass classify_loop(const prof::Profile& profile, RegionId loop);

/// Extended per-loop analysis covering the transformations related tools
/// detect (§V: Sambamba lists privatization and do-across): which carried
/// dependences are removable and what remains.
struct LoopAnalysis {
  LoopClass cls = LoopClass::Sequential;
  std::vector<ReductionCandidate> reductions;
  /// Variables whose only carried dependences are WAR/WAW: each iteration
  /// writes before (or without) reading the previous iteration's value, so
  /// a per-thread private copy removes the dependence.
  std::vector<VarId> privatizable;
  /// True when the loop is Sequential but privatization + reduction remove
  /// *all* carried dependences: a do-all after transformation.
  bool doall_after_transform = false;
  /// Minimum iteration distance over the residual carried RAW dependences
  /// (0 when there are none): a regular distance d >= 1 admits a do-across
  /// schedule where iteration i+d starts once iteration i finished.
  std::uint64_t doacross_distance = 0;
  /// True when every residual carried RAW dependence has one constant
  /// distance (the do-across synchronization is a fixed stride).
  bool doacross_regular = false;
};

[[nodiscard]] LoopAnalysis analyze_loop(const prof::Profile& profile, RegionId loop);

}  // namespace ppd::core
