#include "core/geometric.hpp"

#include <algorithm>

namespace ppd::core {
namespace {

/// Checks every loop in the subtree of `node`: all must be do-all or
/// reduction. Collects the classified loops.
bool all_loops_doall_or_reduction(const prof::Profile& profile, const pet::Pet& pet,
                                  pet::NodeIndex node, GeometricDecomposition* out) {
  std::vector<pet::NodeIndex> stack{node};
  bool ok = true;
  while (!stack.empty()) {
    const pet::PetNode& n = pet.node(stack.back());
    stack.pop_back();
    if (n.is_loop()) {
      switch (classify_loop(profile, n.region)) {
        case LoopClass::DoAll:
          if (out != nullptr) out->doall_loops.push_back(n.index);
          break;
        case LoopClass::Reduction:
          if (out != nullptr) out->reduction_loops.push_back(n.index);
          break;
        case LoopClass::Sequential:
          ok = false;
          break;
      }
      if (!ok) return false;
    }
    for (pet::NodeIndex child : n.children) stack.push_back(child);
  }
  return true;
}

}  // namespace

bool is_geometric_decomposition(const prof::Profile& profile, const pet::Pet& pet,
                                pet::NodeIndex func_node, GeometricDecomposition* out) {
  const pet::PetNode& func = pet.node(func_node);
  if (!func.is_function()) return false;

  GeometricDecomposition local;
  local.function = func.region;
  local.node = func_node;

  // Algorithm 2: immediate children. A loop child must itself be
  // do-all/reduction and so must every loop nested below it; a function
  // child must contain only do-all/reduction loops.
  bool any_loop = false;
  for (pet::NodeIndex child_index : func.children) {
    const pet::PetNode& child = pet.node(child_index);
    const std::size_t loops_before = local.doall_loops.size() + local.reduction_loops.size();
    if (!all_loops_doall_or_reduction(profile, pet, child_index, &local)) return false;
    if (local.doall_loops.size() + local.reduction_loops.size() > loops_before ||
        child.is_loop()) {
      any_loop = true;
    }
  }
  if (!any_loop) return false;

  if (out != nullptr) *out = std::move(local);
  return true;
}

std::vector<GeometricDecomposition> detect_geometric_decomposition(
    const prof::Profile& profile, const pet::Pet& pet, double hotspot_fraction) {
  std::vector<GeometricDecomposition> result;
  for (pet::NodeIndex node : pet.hotspots(hotspot_fraction)) {
    if (!pet.node(node).is_function()) continue;
    GeometricDecomposition gd;
    if (is_geometric_decomposition(profile, pet, node, &gd)) {
      result.push_back(std::move(gd));
    }
  }
  return result;
}

}  // namespace ppd::core
