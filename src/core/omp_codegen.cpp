#include "core/omp_codegen.hpp"

#include <algorithm>
#include <map>

#include "support/table.hpp"

namespace ppd::core {
namespace {

std::string region_name(const trace::TraceContext& program, RegionId region) {
  return region.valid() ? program.region(region).name : std::string("<unknown>");
}

const char* omp_operator(trace::UpdateOp op) {
  switch (op) {
    case trace::UpdateOp::Sum: return "+";
    case trace::UpdateOp::Product: return "*";
    case trace::UpdateOp::Min: return "min";
    case trace::UpdateOp::Max: return "max";
    case trace::UpdateOp::None: return nullptr;
  }
  return nullptr;
}

}  // namespace

std::vector<OmpSuggestion> generate_openmp(const AnalysisResult& analysis,
                                           const trace::TraceContext& program) {
  std::vector<OmpSuggestion> out;

  // Fused loops / pipelines.
  for (const MultiLoopPipeline* p : analysis.reported_pipelines()) {
    OmpSuggestion s;
    s.region = p->loop_x;
    if (p->fusion) {
      s.construct = "#pragma omp parallel for";
      s.note = "after fusing '" + region_name(program, p->loop_x) + "' and '" +
               region_name(program, p->loop_y) + "' into one loop body";
    } else {
      s.construct =
          "#pragma omp parallel sections\n"
          "{\n"
          "  #pragma omp section\n"
          "  { /* stage 1: " +
          region_name(program, p->loop_x) +
          (p->x_class == LoopClass::DoAll ? " (internally a parallel for)" : "") +
          ", publish completed iterations */ }\n"
          "  #pragma omp section\n"
          "  { /* stage 2: " +
          region_name(program, p->loop_y) + ", before iteration j wait for " +
          std::to_string(static_cast<long long>(p->fit.a == 0.0
                                                    ? 0
                                                    : 1)) +
          "*ceil((j - (" + support::format_fixed(p->fit.b, 2) + ")) / " +
          support::format_fixed(p->fit.a, 2) + ") stage-1 iterations */ }\n"
          "}";
      s.note = "the stage handshake needs a progress counter (see "
               "rt::pipelined_loop_pair for a reference implementation)";
    }
    out.push_back(std::move(s));
  }

  // Reductions, grouped per loop so several accumulators share one clause.
  std::map<RegionId, std::vector<const ReductionCandidate*>> by_loop;
  for (const ReductionCandidate& r : analysis.reductions) {
    by_loop[r.loop].push_back(&r);
  }
  for (const auto& [loop, candidates] : by_loop) {
    // One clause per operator present in the loop.
    std::map<std::string, std::vector<std::string>> per_op;
    bool unknown = false;
    for (const ReductionCandidate* r : candidates) {
      const char* op = omp_operator(r->op);
      if (op == nullptr) {
        unknown = true;
        per_op["?"].push_back(program.var_info(r->var).name);
      } else {
        per_op[op].push_back(program.var_info(r->var).name);
      }
    }
    OmpSuggestion s;
    s.region = loop;
    s.construct = "#pragma omp parallel for";
    for (const auto& [op, vars] : per_op) {
      s.construct += " reduction(" + op + ":";
      for (std::size_t i = 0; i < vars.size(); ++i) {
        s.construct += (i > 0 ? "," : "") + vars[i];
      }
      s.construct += ")";
    }
    s.note = "for loop '" + region_name(program, loop) + "'";
    if (unknown) {
      s.note += "; the '?' operator was not inferred — confirm associativity and "
                "substitute it";
    }
    out.push_back(std::move(s));
  }

  // Task parallelism: the fork/worker/barrier classification as tasks.
  for (const ScopeTaskParallelism& t : analysis.tasks) {
    if (t.tp.worker_count() < 2) continue;
    OmpSuggestion s;
    s.region = t.tp.scope;
    s.construct = "#pragma omp parallel\n#pragma omp single\n{\n";
    for (std::size_t i = 0; i < t.tp.roles.size(); ++i) {
      const auto& cu = t.graph.cu(static_cast<graph::NodeIndex>(i));
      if (t.tp.roles[i] == CuRole::Worker) {
        s.construct += "  #pragma omp task  // " + cu.name + "\n  { ... }\n";
      } else if (t.tp.roles[i] == CuRole::Barrier) {
        s.construct += "  #pragma omp taskwait  // before " + cu.name + "\n  // " +
                       cu.name + " ...\n";
      }
    }
    s.construct += "}";
    s.note = "in '" + region_name(program, t.tp.scope) + "'; " +
             std::to_string(t.tp.parallel_barriers.size()) +
             " barrier pair(s) may themselves run as sibling tasks";
    out.push_back(std::move(s));
  }

  // Geometric decomposition: chunked SPMD call.
  for (const GeometricDecomposition& gd : analysis.geometric) {
    OmpSuggestion s;
    s.region = gd.function;
    s.construct =
        "#pragma omp parallel\n"
        "{\n"
        "  int chunk = omp_get_thread_num();\n"
        "  " +
        region_name(program, gd.function) +
        "(data + chunk * chunk_size, chunk_size);\n"
        "}";
    s.note = "split the input of '" + region_name(program, gd.function) +
             "' into per-thread chunks; combine per-chunk results afterwards";
    out.push_back(std::move(s));
  }

  // Perfectly nested do-all pairs: the outer hotspot loop's only child is
  // another do-all loop, so both iteration spaces collapse into one
  // parallel-for — more parallelism when the outer trip count alone is
  // smaller than the machine. Appended after the per-loop sections so the
  // primary suggestion for a loop stays the pattern that detected it.
  for (pet::NodeIndex node : analysis.pet.hotspots(0.02)) {
    const pet::PetNode& n = analysis.pet.node(node);
    if (!n.is_loop() || n.children.size() != 1) continue;
    const pet::PetNode& inner = analysis.pet.node(n.children.front());
    if (!inner.is_loop()) continue;
    const LoopAnalysis outer_la = analyze_loop(analysis.profile, n.region);
    const LoopAnalysis inner_la = analyze_loop(analysis.profile, inner.region);
    if (outer_la.cls != LoopClass::DoAll || inner_la.cls != LoopClass::DoAll) continue;
    OmpSuggestion s;
    s.region = n.region;
    s.construct = "#pragma omp parallel for collapse(2)";
    s.note = "loops '" + n.name + "' and '" + inner.name +
             "' are perfectly nested do-alls; collapsing multiplies the parallel "
             "iteration space";
    out.push_back(std::move(s));
  }

  // Do-across schedules for residual sequential hotspot loops.
  for (pet::NodeIndex node : analysis.pet.hotspots(0.02)) {
    const pet::PetNode& n = analysis.pet.node(node);
    if (!n.is_loop()) continue;
    const LoopAnalysis la = analyze_loop(analysis.profile, n.region);
    if (la.cls != LoopClass::Sequential) continue;
    if (la.doall_after_transform) {
      OmpSuggestion s;
      s.region = n.region;
      s.construct = "#pragma omp parallel for private(";
      for (std::size_t i = 0; i < la.privatizable.size(); ++i) {
        s.construct += (i > 0 ? "," : "") + program.var_info(la.privatizable[i]).name;
      }
      s.construct += ")";
      s.note = "for loop '" + n.name + "': privatization removes every carried dependence";
      out.push_back(std::move(s));
    } else if (la.doacross_regular && la.doacross_distance >= 1) {
      OmpSuggestion s;
      s.region = n.region;
      s.construct = "#pragma omp parallel for ordered(1)\n...\n#pragma omp ordered depend(sink: i-" +
                    std::to_string(la.doacross_distance) +
                    ")\n...\n#pragma omp ordered depend(source)";
      s.note = "do-across schedule for loop '" + n.name + "' (constant distance " +
               std::to_string(la.doacross_distance) + ")";
      out.push_back(std::move(s));
    }
  }

  return out;
}

}  // namespace ppd::core
