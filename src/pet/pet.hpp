// Program Execution Tree (PET).
//
// Reproduces the paper's §II/§III structure: nodes are control regions
// (functions and loops); all iterations of a loop merge into one node with
// the total iteration count recorded; recursive activations of a function
// merge into one node explicitly marked recursive; every node carries the
// cost (IR-instruction-count stand-in) of its region, and nodes with a high
// share of the executed cost are the hotspots. Children keep the sequential
// execution order of first encounter.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/ids.hpp"
#include "trace/events.hpp"

namespace ppd::pet {

using NodeIndex = std::uint32_t;
inline constexpr NodeIndex kInvalidPetNode = ~NodeIndex{0};

/// One PET node: a static control region in a specific tree position.
struct PetNode {
  NodeIndex index = 0;
  RegionId region;
  trace::RegionKind kind = trace::RegionKind::Function;
  std::string name;
  SourceLine line = 0;
  NodeIndex parent = kInvalidPetNode;
  std::vector<NodeIndex> children;  ///< sequential first-encounter order
  std::uint64_t instances = 0;      ///< dynamic entries merged into this node
  std::uint64_t iterations = 0;     ///< total loop iterations (loops only)
  bool recursive = false;           ///< merged recursive activations (functions)
  Cost exclusive_cost = 0;          ///< cost observed directly in this region
  Cost inclusive_cost = 0;          ///< exclusive + all descendants

  [[nodiscard]] bool is_loop() const { return kind == trace::RegionKind::Loop; }
  [[nodiscard]] bool is_function() const { return kind == trace::RegionKind::Function; }
};

/// The finished tree.
class Pet {
 public:
  explicit Pet(std::vector<PetNode> nodes) : nodes_(std::move(nodes)) {}

  [[nodiscard]] const std::vector<PetNode>& nodes() const { return nodes_; }
  [[nodiscard]] const PetNode& node(NodeIndex index) const { return nodes_.at(index); }
  /// The synthetic program root (always node 0).
  [[nodiscard]] const PetNode& root() const { return nodes_.front(); }

  /// Total executed cost of the program.
  [[nodiscard]] Cost total_cost() const { return root().inclusive_cost; }

  /// Fraction of the total executed cost spent in `node` (inclusively).
  [[nodiscard]] double cost_fraction(NodeIndex index) const;

  /// First node for a region (regions can appear in several tree positions;
  /// returns the hottest occurrence). kInvalidPetNode if absent.
  [[nodiscard]] NodeIndex find(RegionId region) const;

  /// All nodes for a region.
  [[nodiscard]] std::vector<NodeIndex> find_all(RegionId region) const;

  /// Hotspot nodes: regions whose inclusive cost is at least
  /// `min_fraction` of the total, sorted hottest-first (root excluded).
  [[nodiscard]] std::vector<NodeIndex> hotspots(double min_fraction) const;

  /// True if `descendant` lies in the subtree of `ancestor` (inclusive).
  [[nodiscard]] bool in_subtree(NodeIndex ancestor, NodeIndex descendant) const;

  /// Nearest common ancestor of two nodes (possibly one of them).
  [[nodiscard]] NodeIndex nearest_common_ancestor(NodeIndex a, NodeIndex b) const;

  /// Renders the tree as indented text (for the pet_explorer example).
  [[nodiscard]] std::string render() const;

 private:
  std::vector<PetNode> nodes_;
};

/// Online PET builder; subscribe to a TraceContext before running.
class PetBuilder final : public trace::EventSink {
 public:
  PetBuilder();

  void on_region_enter(const trace::RegionInfo& region) override;
  void on_region_exit(const trace::RegionInfo& region) override;
  void on_iteration(const trace::RegionInfo& loop, std::uint64_t iteration) override;
  void on_access(const trace::AccessEvent& access) override;
  void on_compute(const trace::ComputeEvent& compute) override;

  /// Finalizes inclusive costs and returns the tree.
  [[nodiscard]] Pet take() const;

 private:
  NodeIndex child_for(NodeIndex parent, const trace::RegionInfo& region);

  std::vector<PetNode> nodes_;
  std::vector<NodeIndex> stack_;  ///< current path; stack_[0] is the root
};

}  // namespace ppd::pet
