#include "pet/pet.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/table.hpp"

namespace ppd::pet {

double Pet::cost_fraction(NodeIndex index) const {
  const Cost total = total_cost();
  if (total == 0) return 0.0;
  return static_cast<double>(node(index).inclusive_cost) / static_cast<double>(total);
}

NodeIndex Pet::find(RegionId region) const {
  NodeIndex best = kInvalidPetNode;
  for (const PetNode& n : nodes_) {
    if (n.region == region &&
        (best == kInvalidPetNode || n.inclusive_cost > node(best).inclusive_cost)) {
      best = n.index;
    }
  }
  return best;
}

std::vector<NodeIndex> Pet::find_all(RegionId region) const {
  std::vector<NodeIndex> result;
  for (const PetNode& n : nodes_) {
    if (n.region == region) result.push_back(n.index);
  }
  return result;
}

std::vector<NodeIndex> Pet::hotspots(double min_fraction) const {
  std::vector<NodeIndex> result;
  for (const PetNode& n : nodes_) {
    if (n.index == 0) continue;  // synthetic root
    if (cost_fraction(n.index) >= min_fraction) result.push_back(n.index);
  }
  std::sort(result.begin(), result.end(), [this](NodeIndex a, NodeIndex b) {
    return node(a).inclusive_cost > node(b).inclusive_cost;
  });
  return result;
}

bool Pet::in_subtree(NodeIndex ancestor, NodeIndex descendant) const {
  NodeIndex n = descendant;
  while (n != kInvalidPetNode) {
    if (n == ancestor) return true;
    n = node(n).parent;
  }
  return false;
}

NodeIndex Pet::nearest_common_ancestor(NodeIndex a, NodeIndex b) const {
  std::vector<bool> on_a_path(nodes_.size(), false);
  for (NodeIndex n = a; n != kInvalidPetNode; n = node(n).parent) on_a_path[n] = true;
  for (NodeIndex n = b; n != kInvalidPetNode; n = node(n).parent) {
    if (on_a_path[n]) return n;
  }
  return 0;  // the synthetic root is a common ancestor of everything
}

std::string Pet::render() const {
  std::string out;
  struct Item {
    NodeIndex node;
    int depth;
  };
  std::vector<Item> stack{{0, 0}};
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    const PetNode& n = node(item.node);
    out += std::string(static_cast<std::size_t>(item.depth) * 2, ' ');
    out += n.index == 0 ? "<program>" : (n.is_loop() ? "loop " : "func ") + n.name;
    if (n.recursive) out += " [recursive]";
    if (n.is_loop()) out += " iterations=" + std::to_string(n.iterations);
    out += " cost=" + std::to_string(n.inclusive_cost);
    out += " (" + support::format_fixed(cost_fraction(n.index) * 100.0, 2) + "%)\n";
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      stack.push_back({*it, item.depth + 1});
    }
  }
  return out;
}

PetBuilder::PetBuilder() {
  PetNode root;
  root.index = 0;
  root.name = "<program>";
  nodes_.push_back(std::move(root));
  stack_.push_back(0);
}

NodeIndex PetBuilder::child_for(NodeIndex parent, const trace::RegionInfo& region) {
  for (NodeIndex child : nodes_[parent].children) {
    if (nodes_[child].region == region.id) return child;
  }
  const NodeIndex index = static_cast<NodeIndex>(nodes_.size());
  PetNode n;
  n.index = index;
  n.region = region.id;
  n.kind = region.kind;
  n.name = region.name;
  n.line = region.line;
  n.parent = parent;
  nodes_.push_back(std::move(n));
  nodes_[parent].children.push_back(index);
  return index;
}

void PetBuilder::on_region_enter(const trace::RegionInfo& region) {
  // Recursive re-entry of a function already on the path merges into the
  // existing node instead of growing the tree.
  for (NodeIndex on_path : stack_) {
    if (nodes_[on_path].region == region.id) {
      nodes_[on_path].recursive = true;
      ++nodes_[on_path].instances;
      stack_.push_back(on_path);
      return;
    }
  }
  const NodeIndex child = child_for(stack_.back(), region);
  ++nodes_[child].instances;
  stack_.push_back(child);
}

void PetBuilder::on_region_exit(const trace::RegionInfo& region) {
  PPD_ASSERT_MSG(stack_.size() > 1 && nodes_[stack_.back()].region == region.id,
                 "PET exit does not match the current path");
  stack_.pop_back();
}

void PetBuilder::on_iteration(const trace::RegionInfo& loop, std::uint64_t iteration) {
  (void)iteration;
  PPD_ASSERT(nodes_[stack_.back()].region == loop.id);
  ++nodes_[stack_.back()].iterations;
}

void PetBuilder::on_access(const trace::AccessEvent& access) {
  nodes_[stack_.back()].exclusive_cost += access.cost;
}

void PetBuilder::on_compute(const trace::ComputeEvent& compute) {
  nodes_[stack_.back()].exclusive_cost += compute.cost;
}

Pet PetBuilder::take() const {
  std::vector<PetNode> nodes = nodes_;
  // Children are created after parents, so a reverse sweep accumulates
  // inclusive costs bottom-up.
  for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) {
    it->inclusive_cost += it->exclusive_cost;
    if (it->parent != kInvalidPetNode) {
      nodes[it->parent].inclusive_cost += it->inclusive_cost;
    }
  }
  return Pet(std::move(nodes));
}

}  // namespace ppd::pet
