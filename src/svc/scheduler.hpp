// Admission-controlled request scheduler.
//
// The daemon multiplexes every connection's analysis requests onto one
// rt::ThreadPool. Without admission control an overloaded service degrades
// the worst way possible — every request gets slower together until all of
// them time out. This scheduler bounds the number of admitted-but-
// unfinished requests instead: past the bound, submit() returns an
// immediate Overloaded status that the connection turns into an error
// frame, so clients learn "busy, retry" in microseconds while the admitted
// requests keep their latency. (Load shedding at the front door — the
// standard resident-service discipline.)
//
// The bound covers queued *and* running work: a pool with P workers and a
// bound of N admits at most N requests, of which min(N, P) execute while
// the rest wait in the pool's FIFO.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>

#include "obs/obs.hpp"
#include "rt/thread_pool.hpp"
#include "support/status.hpp"

namespace ppd::svc {

class Scheduler {
 public:
  struct Options {
    /// Maximum admitted-but-unfinished jobs; further submissions are
    /// rejected with Overloaded.
    std::size_t max_pending = 16;
  };

  Scheduler(rt::ThreadPool& pool, Options options);
  /// Drains: blocks until every admitted job has finished.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admits `job` onto the pool, or rejects it without blocking:
  /// Overloaded when the in-flight bound is reached, PoolShutdown when the
  /// pool no longer accepts work. Jobs must not throw (exceptions are the
  /// pool's raw-submit contract); completion is accounted either way.
  [[nodiscard]] support::Status submit(std::function<void()> job);

  /// Blocks until every admitted job has finished.
  void drain();

  [[nodiscard]] std::size_t in_flight() const;
  [[nodiscard]] const Options& options() const { return options_; }

 private:
  rt::ThreadPool& pool_;
  Options options_;

  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;

  obs::Counter& admitted_;
  obs::Counter& rejected_;
  obs::Counter& completed_;
  obs::Gauge& inflight_gauge_;
  /// Admitted-set occupancy sampled at each admission: the distribution of
  /// how full the admission window runs (pow2 buckets of in-flight count).
  obs::Histogram& occupancy_;
};

}  // namespace ppd::svc
