// The resident analysis service: ppd-analyzed's engine.
//
// A Server listens on a Unix-domain stream socket and speaks the framed
// protocol of svc/frame.hpp. Each accepted connection gets a reader
// thread; analysis requests are admitted through the Scheduler onto one
// shared rt::ThreadPool, so concurrency is across requests (each request
// analyzes serially, like the batch driver) and overload turns into an
// immediate Overloaded error frame instead of collective latency collapse.
// Clean reports are cached in the persistent sharded ReportCache keyed by
// the PR 4 content hash salted with the analysis options.
//
// Containment contract (proven by the `wirefault` ctest suite): any
// malformed, truncated, CRC-corrupt, oversized, or mid-request-vanishing
// client costs at most its own connection — the fault surfaces as a
// wire-encoded Status diagnostic on that connection (best effort) and a
// per-connection stderr log line, while every other connection's requests
// complete with byte-identical reports to the offline tool. Nothing a
// client sends can crash, wedge, or OOM the daemon: frame lengths are
// bounded before allocation, request bytes are bounded by admission
// budgets, replay is the PR 1 hardened path, and detector exceptions are
// caught into AnalysisFailed statuses.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "rt/thread_pool.hpp"
#include "svc/frame.hpp"
#include "svc/report_cache.hpp"
#include "svc/scheduler.hpp"
#include "trace/serialize.hpp"

namespace ppd::svc {

class Server {
 public:
  struct Options {
    std::string socket_path;
    /// Server display name sent in HelloAck.
    std::string name = "ppd-analyzed";
    /// Thread-pool workers executing analyses.
    std::size_t jobs = 2;
    /// Admission bound: admitted-but-unfinished analysis requests.
    std::size_t max_pending = 16;
    /// Connection bound: further connects are greeted with Overloaded.
    std::size_t max_connections = 64;
    /// Per-request byte budget — the frame-payload cap. A hostile length
    /// prefix above it is rejected from the 16 header bytes alone.
    std::uint64_t max_request_bytes = std::uint64_t{64} << 20;
    /// Server-side ceiling on the per-request record budget; client
    /// requests may lower it, never raise it.
    std::uint64_t max_records = trace::ReplayLimits{}.max_records;
    /// Report cache configuration; an empty dir disables caching.
    ReportCache::Options cache;
    /// Per-connection diagnostics on stderr (the daemon's log).
    bool log_connections = false;
  };

  explicit Server(Options options);
  ~Server();  ///< stop()s if still running.

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket (unlinking a stale one), starts the accept loop.
  [[nodiscard]] support::Status start();

  /// Stops accepting, wakes and joins every connection (in-flight requests
  /// finish first), drains the scheduler. Idempotent.
  void stop();

  /// True while start() succeeded and stop() has not run.
  [[nodiscard]] bool running() const;

  /// Waits up to `poll_ms` for a client Shutdown frame (or stop()).
  /// Returns true once shutdown was requested — the caller then stop()s.
  [[nodiscard]] bool wait_for_shutdown(unsigned poll_ms);

  [[nodiscard]] const Options& options() const { return options_; }
  [[nodiscard]] ReportCache& cache() { return cache_; }

 private:
  struct Connection {
    std::uint64_t id = 0;
    int fd = -1;
    /// Negotiated protocol revision; frames are written in this version
    /// (the handshake itself is always v1-framed, see svc/frame.hpp).
    std::uint8_t version = kProtocolVersionMin;
    std::thread thread;
    std::atomic<bool> finished{false};
    /// Writes come from the reader thread and, mid-request, from the pool
    /// worker streaming progress; the mutex serializes them and `dead`
    /// latches the first failed write so a vanished client is not written
    /// to again.
    std::mutex write_mutex;
    bool dead = false;
  };

  void accept_loop();
  void run_connection(Connection& conn);
  /// Handles one AnalyzeRequest. Returns false when the connection must
  /// close (protocol violation), true to keep serving it.
  bool handle_request(Connection& conn, std::string_view payload);
  /// Answers a MetricsRequest with a live registry scrape. Returns false
  /// when the connection must close (malformed payload).
  [[nodiscard]] bool handle_metrics(Connection& conn, std::string_view payload);
  /// Serialized, dead-latching frame write. On a v2 connection the calling
  /// thread's trace context (if active) rides along as the header extension.
  void send(Connection& conn, FrameType type, std::string_view payload);
  void send_error(Connection& conn, const support::Status& status);
  /// Containment bookkeeping for a hostile/corrupt peer: counts the
  /// protocol error, drops a flight-recorder event, and (when a crash-dump
  /// path is configured) snapshots the flight ring to disk.
  void record_wirefault(const support::Status& status);
  void log_conn(const Connection& conn, const std::string& what);
  void reap_finished_locked();

  Options options_;
  rt::ThreadPool pool_;
  Scheduler scheduler_;
  ReportCache cache_;
  std::uint64_t cache_salt_ = 0;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::mutex conn_mutex_;
  std::list<std::unique_ptr<Connection>> connections_;
  std::uint64_t next_conn_id_ = 1;
  std::atomic<std::size_t> active_connections_{0};

  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;

  obs::Counter& conns_accepted_;
  obs::Counter& conns_rejected_;
  obs::Counter& protocol_errors_;
  obs::Gauge& conns_active_;
  obs::Counter& requests_received_;
  obs::Counter& requests_completed_;
  obs::Counter& requests_failed_;
  obs::Counter& requests_rejected_;
  obs::Counter& metrics_scrapes_;
  obs::Histogram& request_bytes_;
  obs::Histogram& request_ns_;
};

}  // namespace ppd::svc
