#include "svc/scheduler.hpp"

#include <stdexcept>
#include <utility>

namespace ppd::svc {

using support::ErrorCode;
using support::Status;

Scheduler::Scheduler(rt::ThreadPool& pool, Options options)
    : pool_(pool),
      options_(options),
      admitted_(obs::Registry::instance().counter("svc.sched.admitted")),
      rejected_(obs::Registry::instance().counter("svc.sched.rejected")),
      completed_(obs::Registry::instance().counter("svc.sched.completed")),
      inflight_gauge_(obs::Registry::instance().gauge("svc.sched.inflight")),
      occupancy_(obs::Registry::instance().histogram("svc.sched.occupancy")) {
  if (options_.max_pending == 0) options_.max_pending = 1;
}

Scheduler::~Scheduler() { drain(); }

Status Scheduler::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (in_flight_ >= options_.max_pending) {
      rejected_.add();
      return Status::error(
          ErrorCode::Overloaded,
          std::to_string(in_flight_) + " requests in flight (limit " +
              std::to_string(options_.max_pending) + "); retry later");
    }
    ++in_flight_;
    inflight_gauge_.add(1);
    occupancy_.record(in_flight_);
  }
  admitted_.add();

  try {
    pool_.submit([this, job = std::move(job)] {
      job();
      completed_.add();
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      inflight_gauge_.add(-1);
      if (in_flight_ == 0) idle_cv_.notify_all();
    });
  } catch (const std::runtime_error& e) {
    // Pool shut down between the admission check and the submit: roll the
    // accounting back and surface the defined error.
    std::lock_guard<std::mutex> lock(mutex_);
    --in_flight_;
    inflight_gauge_.add(-1);
    if (in_flight_ == 0) idle_cv_.notify_all();
    return Status::error(ErrorCode::PoolShutdown, e.what());
  }
  return Status::ok();
}

void Scheduler::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

std::size_t Scheduler::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

}  // namespace ppd::svc
