#include "svc/report_cache.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "store/batch.hpp"

namespace ppd::svc {

namespace fs = std::filesystem;

namespace {

/// splitmix-style finalizer: the shard index must not correlate with the
/// filename (the low hex digits of the key), or one shard would soak up
/// whole key ranges.
[[nodiscard]] std::uint64_t mix(std::uint64_t key) {
  key ^= key >> 33;
  key *= 0xFF51AFD7ED558CCDull;
  key ^= key >> 33;
  return key;
}

[[nodiscard]] std::string hex_key(std::uint64_t key) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(key));
  return std::string(buffer);
}

}  // namespace

ReportCache::ReportCache(Options options)
    : options_(std::move(options)),
      hits_(obs::Registry::instance().counter("svc.cache.hit")),
      misses_(obs::Registry::instance().counter("svc.cache.miss")),
      evictions_(obs::Registry::instance().counter("svc.cache.eviction")),
      bytes_gauge_(obs::Registry::instance().gauge("svc.cache.bytes")),
      entries_gauge_(obs::Registry::instance().gauge("svc.cache.entries")) {
  if (options_.shards == 0) options_.shards = 1;
  if (options_.shards > 256) options_.shards = 256;
  shards_ = std::vector<Shard>(options_.shards);
  shard_budget_ = options_.max_bytes / options_.shards;
  if (shard_budget_ == 0) shard_budget_ = 1;
  if (enabled()) adopt_existing_files();
}

ReportCache::Shard& ReportCache::shard_for(std::uint64_t key) {
  return shards_[mix(key) % shards_.size()];
}

std::string ReportCache::entry_path(std::uint64_t key) const {
  const std::size_t shard = mix(key) % shards_.size();
  return options_.dir + "/s" + std::to_string(shard) + "/" + hex_key(key) +
         ".ppdr";
}

void ReportCache::adopt_existing_files() {
  std::error_code ec;
  std::uint64_t total_bytes = 0;
  std::uint64_t total_entries = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::string subdir = "s";
    subdir += std::to_string(i);
    const fs::path dir = fs::path(options_.dir) / subdir;
    fs::create_directories(dir, ec);
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& file : fs::directory_iterator(dir, ec)) {
      const fs::path& path = file.path();
      if (path.extension() != ".ppdr") continue;
      const std::string stem = path.stem().string();
      if (stem.size() != 16) continue;
      char* end = nullptr;
      const std::uint64_t key = std::strtoull(stem.c_str(), &end, 16);
      if (end == nullptr || *end != '\0') continue;
      std::error_code size_ec;
      const std::uint64_t size = fs::file_size(path, size_ec);
      if (size_ec) continue;
      // A key that hashes to a different shard than the directory it sits
      // in was planted by something else; leave it on disk, don't index it.
      if (mix(key) % shards_.size() != i) continue;
      shard.entries[key] =
          Entry{size, clock_.fetch_add(1, std::memory_order_relaxed)};
      shard.bytes += size;
    }
    // Budgets apply to adopted state too: a restart with a smaller budget
    // trims the directory immediately — before the totals are published, so
    // a concurrent scrape never reads (and the gauges' high-water marks
    // never record) a byte count the budget forbids.
    evict_over_budget(shard, /*update_gauges=*/false);
    total_bytes += shard.bytes;
    total_entries += shard.entries.size();
  }
  bytes_gauge_.set(static_cast<std::int64_t>(total_bytes));
  entries_gauge_.set(static_cast<std::int64_t>(total_entries));
}

bool ReportCache::get(std::uint64_t key, std::string& out) {
  if (!enabled()) return false;
  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
      misses_.add();
      return false;
    }
    if (!store::slurp_file(entry_path(key), out)) {
      // Evicted behind our back (operator rm, disk trouble): drop the index
      // entry and report an honest miss.
      const std::uint64_t size = it->second.size;
      shard.bytes -= size;
      shard.entries.erase(it);
      bytes_gauge_.add(-static_cast<std::int64_t>(size));
      entries_gauge_.add(-1);
      misses_.add();
      return false;
    }
    it->second.tick = clock_.fetch_add(1, std::memory_order_relaxed);
    // Count the hit while still holding the shard lock: a scrape that runs
    // between the index update and the counter bump would otherwise see a
    // touched entry whose hit is not yet counted (a torn hit/miss pair
    // against the gauges).
    hits_.add();
  }
  return true;
}

void ReportCache::put(std::uint64_t key, std::string_view report) {
  if (!enabled()) return;
  Shard& shard = shard_for(key);
  const std::string path = entry_path(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(report.data(), static_cast<std::streamsize>(report.size()));
    if (!out.flush()) {
      // Disk refused; leave the cache consistent by not indexing the stub.
      std::error_code ec;
      fs::remove(path, ec);
      return;
    }
  }
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    shard.bytes -= it->second.size;
    bytes_gauge_.add(-static_cast<std::int64_t>(it->second.size));
    entries_gauge_.add(-1);
  }
  shard.entries[key] =
      Entry{report.size(), clock_.fetch_add(1, std::memory_order_relaxed)};
  shard.bytes += report.size();
  bytes_gauge_.add(static_cast<std::int64_t>(report.size()));
  entries_gauge_.add(1);
  evict_over_budget(shard);
}

void ReportCache::evict_over_budget(Shard& shard, bool update_gauges) {
  while (shard.bytes > shard_budget_ && !shard.entries.empty()) {
    auto victim = shard.entries.begin();
    for (auto it = shard.entries.begin(); it != shard.entries.end(); ++it) {
      if (it->second.tick < victim->second.tick) victim = it;
    }
    std::error_code ec;
    fs::remove(entry_path(victim->first), ec);
    shard.bytes -= victim->second.size;
    if (update_gauges) {
      bytes_gauge_.add(-static_cast<std::int64_t>(victim->second.size));
      entries_gauge_.add(-1);
    }
    evictions_.add();
    shard.entries.erase(victim);
  }
}

ReportCache::Stats ReportCache::stats() const {
  Stats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total.entries += shard.entries.size();
    total.bytes += shard.bytes;
  }
  return total;
}

}  // namespace ppd::svc
