// Persistent sharded report cache for the resident analysis service.
//
// The batch driver's cache (PR 4) is a flat directory consulted once per
// run; a daemon needs the long-lived version: bounded, concurrent, and
// observable. Reports are keyed by the same content hash
// (store::content_key over the trace bytes, salted with everything that
// changes the report), stored one file per entry under `<dir>/s<shard>/`,
// and evicted least-recently-used when a shard exceeds its byte budget.
//
// Sharding serves concurrency, not distribution: each shard has its own
// mutex, index, and byte budget, so cache traffic from N connections
// contends only when two requests hash to the same shard. The LRU clock is
// a process-wide atomic tick — cheap, and total ordering across shards is
// irrelevant because eviction is per shard.
//
// Persistence is the directory itself: on construction the cache rescans
// its shard directories and adopts every `.ppdr` file (recency resets to
// file order — an approximation that only costs eviction precision right
// after a restart). Hit/miss/eviction counters and byte/entry gauges live
// in the ppd::obs registry, so cache effectiveness is a first-class
// metric of the running daemon.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"

namespace ppd::svc {

class ReportCache {
 public:
  struct Options {
    std::string dir;          ///< root directory; empty disables the cache
    std::size_t shards = 8;   ///< clamped to [1, 256]
    /// Total byte budget across shards (each shard gets an equal slice).
    /// A single report larger than its shard's slice is stored and then
    /// immediately becomes the next eviction victim.
    std::uint64_t max_bytes = std::uint64_t{256} << 20;
  };

  explicit ReportCache(Options options);

  ReportCache(const ReportCache&) = delete;
  ReportCache& operator=(const ReportCache&) = delete;

  /// False when constructed with an empty dir (get/put become no-ops).
  [[nodiscard]] bool enabled() const { return !options_.dir.empty(); }

  /// Loads the report stored under `key` into `out`. A file that vanished
  /// or fails to read is treated (and counted) as a miss and dropped from
  /// the index.
  [[nodiscard]] bool get(std::uint64_t key, std::string& out);

  /// Stores `report` under `key`, then evicts least-recently-used entries
  /// until the shard is back under budget.
  void put(std::uint64_t key, std::string_view report);

  /// Entry/byte totals taken in one pass (each shard visited once, under
  /// its lock), so the pair is coherent per shard — entries() and bytes()
  /// are views of one stats() call, never two drifting walks.
  struct Stats {
    std::size_t entries = 0;
    std::uint64_t bytes = 0;
  };
  [[nodiscard]] Stats stats() const;

  // Introspection (tests and the daemon's status line).
  [[nodiscard]] std::size_t entries() const { return stats().entries; }
  [[nodiscard]] std::uint64_t bytes() const { return stats().bytes; }
  [[nodiscard]] const Options& options() const { return options_; }

 private:
  struct Entry {
    std::uint64_t size = 0;
    std::uint64_t tick = 0;  ///< last-use stamp from the global clock
  };

  struct Shard {
    mutable std::mutex mutex;
    std::map<std::uint64_t, Entry> entries;
    std::uint64_t bytes = 0;
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t key);
  [[nodiscard]] std::string entry_path(std::uint64_t key) const;
  void adopt_existing_files();
  /// Caller holds the shard mutex. `update_gauges` is false only during
  /// adoption, where the gauges are published once from the post-trim
  /// totals — a scrape must never see the pre-trim byte count.
  void evict_over_budget(Shard& shard, bool update_gauges = true);

  Options options_;
  std::uint64_t shard_budget_ = 0;
  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> clock_{1};

  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& evictions_;
  obs::Gauge& bytes_gauge_;
  obs::Gauge& entries_gauge_;
};

}  // namespace ppd::svc
