#include "svc/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "store/batch.hpp"
#include "svc/analysis.hpp"

namespace ppd::svc {

using support::ErrorCode;
using support::Status;

namespace {

/// Tag folded into the cache salt; bump when the report format changes.
constexpr const char kCacheTag[] = "ppd-analyzed v1";

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

Server::Server(Options options)
    : options_(std::move(options)),
      pool_(options_.jobs == 0 ? 1 : options_.jobs),
      scheduler_(pool_, Scheduler::Options{options_.max_pending}),
      cache_(options_.cache),
      conns_accepted_(obs::Registry::instance().counter("svc.conn.accepted")),
      conns_rejected_(obs::Registry::instance().counter("svc.conn.rejected")),
      protocol_errors_(obs::Registry::instance().counter("svc.conn.protocol_errors")),
      conns_active_(obs::Registry::instance().gauge("svc.conn.active")),
      requests_received_(obs::Registry::instance().counter("svc.requests.received")),
      requests_completed_(obs::Registry::instance().counter("svc.requests.completed")),
      requests_failed_(obs::Registry::instance().counter("svc.requests.failed")),
      requests_rejected_(obs::Registry::instance().counter("svc.requests.rejected")),
      metrics_scrapes_(obs::Registry::instance().counter("svc.metrics.scrapes")),
      request_bytes_(obs::Registry::instance().histogram("svc.request.bytes")),
      request_ns_(obs::Registry::instance().histogram("svc.request.ns")) {}

Server::~Server() { stop(); }

Status Server::start() {
  if (running_.load()) {
    return Status::error(ErrorCode::Internal, "server already started");
  }
  sockaddr_un addr{};
  if (options_.socket_path.empty() ||
      options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::error(ErrorCode::IoError,
                         "socket path empty or longer than " +
                             std::to_string(sizeof(addr.sun_path) - 1) +
                             " bytes: '" + options_.socket_path + "'");
  }

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::error(ErrorCode::IoError,
                         std::string("socket: ") + std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);
  // A stale socket file from a dead daemon would make bind fail forever.
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listen_fd_, 64) < 0) {
    const Status status = Status::error(
        ErrorCode::IoError, "bind/listen '" + options_.socket_path +
                                "': " + std::strerror(errno));
    close_fd(listen_fd_);
    return status;
  }
  if (::pipe(wake_pipe_) < 0) {
    close_fd(listen_fd_);
    return Status::error(ErrorCode::IoError,
                         std::string("pipe: ") + std::strerror(errno));
  }
  const int flags = ::fcntl(listen_fd_, F_GETFL, 0);
  ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK);

  stopping_.store(false);
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return Status::ok();
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  // Wake the accept loop, then wake every connection reader. In-flight
  // analyses finish on the pool before their reader threads exit.
  if (wake_pipe_[1] >= 0) {
    const char byte = 1;
    (void)!::write(wake_pipe_[1], &byte, 1);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (auto& conn : connections_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  for (;;) {
    std::unique_ptr<Connection> conn;
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      if (connections_.empty()) break;
      conn = std::move(connections_.front());
      connections_.pop_front();
    }
    if (conn->thread.joinable()) conn->thread.join();
    close_fd(conn->fd);
  }
  scheduler_.drain();
  close_fd(listen_fd_);
  close_fd(wake_pipe_[0]);
  close_fd(wake_pipe_[1]);
  ::unlink(options_.socket_path.c_str());
  // Unblock anyone parked in wait_for_shutdown().
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  shutdown_cv_.notify_all();
}

bool Server::running() const { return running_.load(); }

bool Server::wait_for_shutdown(unsigned poll_ms) {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  shutdown_cv_.wait_for(lock, std::chrono::milliseconds(poll_ms));
  return shutdown_requested_ || !running_.load();
}

void Server::reap_finished_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->finished.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      close_fd((*it)->fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::accept_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0 || stopping_.load()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;

    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        break;
      }
      std::lock_guard<std::mutex> lock(conn_mutex_);
      reap_finished_locked();
      if (active_connections_.load() >= options_.max_connections) {
        // Connection-level load shedding, same contract as request
        // admission: an immediate, explicit rejection.
        std::string payload;
        encode_status(payload,
                      Status::error(ErrorCode::Overloaded,
                                    "connection limit reached; retry later"));
        (void)write_frame(fd, FrameType::Error, payload);
        ::close(fd);
        conns_rejected_.add();
        continue;
      }
      auto conn = std::make_unique<Connection>();
      conn->id = next_conn_id_++;
      conn->fd = fd;
      conns_accepted_.add();
      conns_active_.add(1);
      active_connections_.fetch_add(1);
      Connection* raw = conn.get();
      conn->thread = std::thread([this, raw] {
        run_connection(*raw);
        // Signal EOF to the peer right away; the close itself waits for the
        // reap (or stop()) so the fd cannot be double-closed or reused
        // while a pool worker still holds a reference to this connection.
        ::shutdown(raw->fd, SHUT_RDWR);
        conns_active_.add(-1);
        active_connections_.fetch_sub(1);
        raw->finished.store(true);
      });
      connections_.push_back(std::move(conn));
    }
  }
}

void Server::log_conn(const Connection& conn, const std::string& what) {
  if (!options_.log_connections) return;
  std::fprintf(stderr, "%s: conn %llu: %s\n", options_.name.c_str(),
               static_cast<unsigned long long>(conn.id), what.c_str());
}

void Server::send(Connection& conn, FrameType type, std::string_view payload) {
  // Reader threads and pool workers both send while a request's trace
  // context is installed, so the frames a request produces carry its ids.
  const obs::TraceContext trace = obs::current_trace();
  std::lock_guard<std::mutex> lock(conn.write_mutex);
  if (conn.dead) return;
  if (!write_frame(conn.fd, type, payload, conn.version, &trace).is_ok()) {
    conn.dead = true;
  }
}

void Server::send_error(Connection& conn, const Status& status) {
  std::string payload;
  encode_status(payload, status);
  send(conn, FrameType::Error, payload);
}

void Server::record_wirefault(const Status& status) {
  protocol_errors_.add();
  obs::flight_event("svc.wirefault");
  obs::flight_event(status.message());
  // When the daemon runs with a crash-dump path, a contained fault leaves
  // the same post-mortem a fatal one would — the flight ring at the moment
  // of containment, hostile request's spans included.
  (void)obs::flight_dump_now("wirefault");
}

void Server::run_connection(Connection& conn) {
  std::string buffer;
  Frame frame;

  // Handshake: exactly one Hello, answered with HelloAck (or a refusal).
  Status status = read_frame(conn.fd, options_.max_request_bytes, buffer, frame);
  if (!status.is_ok()) {
    if (status.code() == ErrorCode::ConnectionLost && status.message() == "eof") {
      log_conn(conn, "disconnected before hello");  // port scan, not a fault
      return;
    }
    record_wirefault(status);
    log_conn(conn, "handshake failed: " + status.to_string());
    send_error(conn, status);
    return;
  }
  HelloPayload hello;
  if (frame.type != FrameType::Hello || !decode_hello(frame.payload, hello)) {
    const Status bad = Status::error(ErrorCode::BadFrame, "expected a valid hello");
    record_wirefault(bad);
    log_conn(conn, bad.to_string());
    send_error(conn, bad);
    return;
  }
  const std::uint8_t version =
      negotiate_version(hello.min_version, hello.max_version,
                        kProtocolVersionMin, kProtocolVersion);
  if (version == 0) {
    protocol_errors_.add();
    const Status bad = Status::error(
        ErrorCode::UnsupportedVersion,
        "client speaks " + std::to_string(hello.min_version) + ".." +
            std::to_string(hello.max_version) + ", server speaks " +
            std::to_string(kProtocolVersionMin) + ".." +
            std::to_string(kProtocolVersion));
    log_conn(conn, bad.to_string());
    send_error(conn, bad);
    return;
  }
  {
    // The ack is framed as v1 (conn.version still holds the default), so
    // an old client reads the chosen version before any v2 header reaches it.
    std::string payload;
    encode_hello_ack(payload, HelloAckPayload{version, options_.name});
    send(conn, FrameType::HelloAck, payload);
  }
  conn.version = version;
  log_conn(conn, "hello from '" + hello.client + "' (v" + std::to_string(version) + ")");

  while (!stopping_.load()) {
    status = read_frame(conn.fd, options_.max_request_bytes, buffer, frame);
    if (!status.is_ok()) {
      if (status.code() == ErrorCode::ConnectionLost) {
        log_conn(conn, status.message() == "eof" ? "disconnected"
                                                 : "lost: " + status.to_string());
      } else {
        // Framing violation: answer with the diagnostic, then hang up —
        // the byte stream can no longer be trusted.
        record_wirefault(status);
        log_conn(conn, status.to_string());
        send_error(conn, status);
      }
      return;
    }
    switch (frame.type) {
      case FrameType::Ping:
        send(conn, FrameType::Pong, {});
        break;
      case FrameType::Shutdown: {
        log_conn(conn, "shutdown requested");
        send(conn, FrameType::Shutdown, {});
        std::lock_guard<std::mutex> lock(shutdown_mutex_);
        shutdown_requested_ = true;
        shutdown_cv_.notify_all();
        return;
      }
      case FrameType::AnalyzeRequest: {
        // One trace per request: adopt the client's ids when the frame
        // carried the extension, mint fresh ones otherwise. Everything the
        // request touches — progress frames, scheduler admission, the pool
        // worker's spans, the flight ring — inherits this context.
        obs::TraceContext ctx = frame.trace;
        if (ctx.trace_id == 0) ctx.trace_id = obs::mint_id();
        obs::WithTrace trace_scope(ctx);
        obs::flight_event("svc.request.begin");
        if (!handle_request(conn, frame.payload)) return;
        break;
      }
      case FrameType::MetricsRequest:
        if (!handle_metrics(conn, frame.payload)) return;
        break;
      default: {
        const Status bad =
            Status::error(ErrorCode::BadFrame,
                          std::string("unexpected frame type ") +
                              svc::to_string(frame.type));
        record_wirefault(bad);
        log_conn(conn, bad.to_string());
        send_error(conn, bad);
        return;
      }
    }
  }
}

bool Server::handle_metrics(Connection& conn, std::string_view payload) {
  MetricsRequestPayload request;
  if (!decode_metrics_request(payload, request)) {
    const Status bad =
        Status::error(ErrorCode::BadFrame, "malformed metrics-request payload");
    record_wirefault(bad);
    log_conn(conn, bad.to_string());
    send_error(conn, bad);
    return false;
  }
  metrics_scrapes_.add();
  // The scrape runs on the reader thread, outside the scheduler: it must
  // answer while every pool worker is busy — that is the whole point.
  MetricsReplyPayload reply;
  reply.format = request.format;
  reply.text = request.format == kMetricsFormatPrometheus
                   ? obs::prometheus_dump()
                   : obs::metrics_dump();
  std::string bytes;
  encode_metrics_reply(bytes, reply);
  send(conn, FrameType::MetricsReply, bytes);
  log_conn(conn, "metrics scraped");
  return true;
}

bool Server::handle_request(Connection& conn, std::string_view payload) {
  requests_received_.add();
  RequestPayload request;
  if (!decode_request(payload, request)) {
    const Status bad =
        Status::error(ErrorCode::BadFrame, "malformed analyze-request payload");
    record_wirefault(bad);
    log_conn(conn, bad.to_string());
    send_error(conn, bad);
    return false;
  }
  request_bytes_.record(request.trace.size());

  AnalysisOptions options;
  options.mode = request.mode;
  options.max_records = request.max_records == 0
                            ? options_.max_records
                            : std::min(request.max_records, options_.max_records);
  options.jobs = 1;  // parallelism is across requests

  const bool use_cache = cache_.enabled() && !request.no_cache;
  const std::uint64_t key =
      store::content_key(request.trace, analysis_salt(options, kCacheTag));
  if (use_cache && !request.refresh) {
    std::string cached;
    if (cache_.get(key, cached)) {
      log_conn(conn, "request served from cache");
      {
        std::string progress;
        encode_progress(progress, ProgressPayload{"cache", 1, 1});
        send(conn, FrameType::Progress, progress);
      }
      std::string report;
      encode_report(report, ReportPayload{true, std::move(cached), {}});
      send(conn, FrameType::Report, report);
      requests_completed_.add();
      return true;
    }
  }

  // The frame buffer is reused for the next read; the admitted job owns a
  // copy of the trace bytes.
  struct Pending {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    AnalysisOutput output;
  };
  Pending pending;
  std::string trace_copy(request.trace);
  // "queued" precedes admission so progress frames arrive in stage order;
  // a rejected request therefore streams queued → error, which the
  // protocol permits (PROTOCOL.md §4).
  {
    std::string progress;
    encode_progress(progress, ProgressPayload{"queued", 1, 3});
    send(conn, FrameType::Progress, progress);
  }
  const Status admitted = scheduler_.submit([this, &conn, &pending, options,
                                             trace_copy = std::move(trace_copy)] {
    {
      std::string progress;
      encode_progress(progress, ProgressPayload{"running", 2, 3});
      send(conn, FrameType::Progress, progress);
    }
    const std::uint64_t begin = obs::now_ns();
    AnalysisOutput output;
    {
      PPD_OBS_SPAN("svc.request");
      output = analyze_trace_bytes("request", trace_copy, options);
    }
    request_ns_.record(obs::now_ns() - begin);
    std::lock_guard<std::mutex> lock(pending.mutex);
    pending.output = std::move(output);
    pending.done = true;
    pending.cv.notify_all();
  });
  if (!admitted.is_ok()) {
    // Overload (or a stopping pool) is an immediate, explicit rejection —
    // the connection survives; the client may retry.
    requests_rejected_.add();
    log_conn(conn, "rejected: " + admitted.to_string());
    send_error(conn, admitted);
    return true;
  }

  AnalysisOutput output;
  {
    std::unique_lock<std::mutex> lock(pending.mutex);
    pending.cv.wait(lock, [&pending] { return pending.done; });
    output = std::move(pending.output);
  }

  if (!output.status.is_ok()) {
    requests_failed_.add();
    log_conn(conn, "request failed: " + output.status.to_string());
    send_error(conn, output.status);
    return true;
  }
  if (use_cache && output.clean) cache_.put(key, output.report);
  {
    std::string progress;
    encode_progress(progress, ProgressPayload{"analyzed", 3, 3});
    send(conn, FrameType::Progress, progress);
  }
  std::string report;
  encode_report(report,
                ReportPayload{false, std::move(output.report), std::move(output.log)});
  send(conn, FrameType::Report, report);
  requests_completed_.add();
  log_conn(conn, "request completed");
  return true;
}

}  // namespace ppd::svc
