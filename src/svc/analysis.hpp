// The one analysis entry point shared by every front end.
//
// `ppd-analyze --trace`, the `--batch` driver, and the `ppd-analyzed`
// daemon must all produce byte-identical reports for the same trace bytes
// and options — the service's cache and its regression suite both depend
// on it. The only way to guarantee that is to have exactly one
// implementation: this module owns trace replay (either container,
// sniffed by content), the full detector pipeline, report rendering, and
// the diagnostics section, and every front end calls it. Front ends keep
// only their own concerns: stream/exit-code discipline for the CLI,
// frames and admission control for the daemon.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/analyzer.hpp"
#include "support/status.hpp"
#include "trace/context.hpp"
#include "trace/serialize.hpp"

namespace ppd::svc {

struct AnalysisOptions {
  trace::ReplayMode mode = trace::ReplayMode::Strict;
  /// Per-request record budget (PR 1's ReplayLimits cap).
  std::uint64_t max_records = trace::ReplayLimits{}.max_records;
  /// Workers for chunk decode + sharded profiling; 1 keeps the run serial
  /// (the daemon parallelizes across requests, not within them).
  std::size_t jobs = 1;
};

struct AnalysisOutput {
  /// Ok, or why replay/analysis failed (AnalysisFailed for detector
  /// errors; the precise ingestion code otherwise).
  support::Status status;
  std::string report;  ///< the stdout payload
  std::string log;     ///< progress + diagnostics, kept off stdout
  /// Pristine ingestion: nothing dropped, repaired, or flagged. Only clean
  /// outputs are cacheable — degraded runs must keep reproducing their
  /// diagnostics.
  bool clean = true;
};

/// Replays `bytes` (text or .ppdt, sniffed) and runs the full detector
/// pipeline. `name` appears in log lines only — never in the report — so
/// reports stay content-addressable.
[[nodiscard]] AnalysisOutput analyze_trace_bytes(const std::string& name,
                                                 std::string_view bytes,
                                                 const AnalysisOptions& options);

/// Renders the standard text report (the `ppd-analyze` stdout format).
[[nodiscard]] std::string render_report(const core::AnalysisResult& result,
                                        const trace::TraceContext& ctx);

/// Cache-key salt folding everything that changes the report: the replay
/// options plus a front-end tag that names the report format revision.
[[nodiscard]] std::uint64_t analysis_salt(const AnalysisOptions& options,
                                          std::string_view tag);

}  // namespace ppd::svc
