#include "svc/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ppd::svc {

using support::ErrorCode;
using support::Status;

namespace {

/// Client-side frame budget: generous, because the report + log of a large
/// analysis ride in one frame.
constexpr std::uint64_t kClientMaxPayload = kMaxFramePayload;

}  // namespace

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  version_ = 0;
  server_name_.clear();
}

Status Client::next_frame(Frame& frame) {
  const Status status = read_frame(fd_, kClientMaxPayload, buffer_, frame);
  if (!status.is_ok()) close();
  return status;
}

Status Client::connect(const std::string& socket_path,
                       const std::string& client_name) {
  close();
  sockaddr_un addr{};
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::error(ErrorCode::IoError,
                         "socket path empty or too long: '" + socket_path + "'");
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::error(ErrorCode::IoError,
                         std::string("socket: ") + std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const Status status = Status::error(
        ErrorCode::IoError, "connect '" + socket_path + "': " + std::strerror(errno));
    close();
    return status;
  }

  // The hello itself is always a v1 frame (svc/frame.hpp): an old server
  // must be able to read it far enough to refuse us cleanly.
  std::string payload;
  encode_hello(payload,
               HelloPayload{kProtocolVersionMin, kProtocolVersion, client_name});
  Status status = write_frame(fd_, FrameType::Hello, payload);
  if (!status.is_ok()) {
    // The server may have refused us (an Overloaded greeting) and hung up
    // before our hello landed; the refusal frame is still queued — prefer
    // its precise status over a generic ConnectionLost.
    Frame pending;
    if (read_frame(fd_, kClientMaxPayload, buffer_, pending).is_ok() &&
        pending.type == FrameType::Error) {
      Status refusal;
      if (decode_status(pending.payload, refusal) && !refusal.is_ok()) {
        status = refusal;
      }
    }
    close();
    return status;
  }
  Frame frame;
  status = next_frame(frame);
  if (!status.is_ok()) return status;
  if (frame.type == FrameType::Error) {
    Status refusal;
    if (!decode_status(frame.payload, refusal)) {
      refusal = Status::error(ErrorCode::BadFrame, "undecodable server error frame");
    }
    close();
    return refusal;
  }
  HelloAckPayload ack;
  if (frame.type != FrameType::HelloAck || !decode_hello_ack(frame.payload, ack)) {
    close();
    return Status::error(ErrorCode::BadFrame, "expected hello-ack");
  }
  if (ack.version < kProtocolVersionMin || ack.version > kProtocolVersion) {
    close();
    return Status::error(ErrorCode::UnsupportedVersion,
                         "server chose version " + std::to_string(ack.version) +
                             ", outside " + std::to_string(kProtocolVersionMin) +
                             ".." + std::to_string(kProtocolVersion));
  }
  version_ = ack.version;
  server_name_ = ack.server;
  return Status::ok();
}

Client::Result Client::analyze(std::string_view trace_bytes,
                               const RequestOptions& options,
                               const ProgressFn& progress) {
  Result result;
  if (!connected()) {
    result.status = Status::error(ErrorCode::ConnectionLost, "not connected");
    return result;
  }
  RequestPayload request;
  request.mode = options.mode;
  request.max_records = options.max_records;
  request.no_cache = options.no_cache;
  request.refresh = options.refresh;
  request.trace = trace_bytes;
  std::string payload;
  encode_request(payload, request);
  // On a v2 connection the caller's trace context (if any) rides along in
  // the header extension; the server adopts it instead of minting its own.
  const obs::TraceContext trace = obs::current_trace();
  result.status =
      write_frame(fd_, FrameType::AnalyzeRequest, payload, version_, &trace);
  if (!result.status.is_ok()) {
    close();
    return result;
  }

  for (;;) {
    Frame frame;
    result.status = next_frame(frame);
    if (!result.status.is_ok()) return result;
    switch (frame.type) {
      case FrameType::Progress: {
        ProgressPayload stage;
        if (decode_progress(frame.payload, stage) && progress) progress(stage);
        break;
      }
      case FrameType::Report: {
        ReportPayload report;
        if (!decode_report(frame.payload, report)) {
          result.status =
              Status::error(ErrorCode::BadFrame, "undecodable report frame");
          close();
          return result;
        }
        result.report = std::move(report.report);
        result.log = std::move(report.log);
        result.cached = report.cached;
        result.status = Status::ok();
        return result;
      }
      case FrameType::Error: {
        if (!decode_status(frame.payload, result.status) ||
            result.status.is_ok()) {
          result.status =
              Status::error(ErrorCode::BadFrame, "undecodable server error frame");
          close();
        }
        return result;
      }
      default:
        result.status = Status::error(
            ErrorCode::BadFrame,
            std::string("unexpected frame type ") + to_string(frame.type));
        close();
        return result;
    }
  }
}

Status Client::ping() {
  if (!connected()) {
    return Status::error(ErrorCode::ConnectionLost, "not connected");
  }
  Status status = write_frame(fd_, FrameType::Ping, {});
  if (!status.is_ok()) {
    close();
    return status;
  }
  Frame frame;
  status = next_frame(frame);
  if (!status.is_ok()) return status;
  if (frame.type == FrameType::Error) {
    Status refusal;
    if (decode_status(frame.payload, refusal) && !refusal.is_ok()) return refusal;
  }
  if (frame.type != FrameType::Pong) {
    close();
    return Status::error(ErrorCode::BadFrame, "expected pong");
  }
  return Status::ok();
}

Status Client::metrics(std::uint8_t format, std::string& text) {
  if (!connected()) {
    return Status::error(ErrorCode::ConnectionLost, "not connected");
  }
  if (version_ < 2) {
    return Status::error(ErrorCode::UnsupportedVersion,
                         "server negotiated protocol v" +
                             std::to_string(version_) +
                             "; metrics frames need v2");
  }
  std::string payload;
  encode_metrics_request(payload, MetricsRequestPayload{format});
  Status status =
      write_frame(fd_, FrameType::MetricsRequest, payload, version_, nullptr);
  if (!status.is_ok()) {
    close();
    return status;
  }
  Frame frame;
  status = next_frame(frame);
  if (!status.is_ok()) return status;
  if (frame.type == FrameType::Error) {
    Status refusal;
    if (decode_status(frame.payload, refusal) && !refusal.is_ok()) return refusal;
  }
  MetricsReplyPayload reply;
  if (frame.type != FrameType::MetricsReply ||
      !decode_metrics_reply(frame.payload, reply) || reply.format != format) {
    close();
    return Status::error(ErrorCode::BadFrame, "expected metrics-reply");
  }
  text = std::move(reply.text);
  return Status::ok();
}

Status Client::shutdown_server() {
  if (!connected()) {
    return Status::error(ErrorCode::ConnectionLost, "not connected");
  }
  Status status = write_frame(fd_, FrameType::Shutdown, {});
  if (!status.is_ok()) {
    close();
    return status;
  }
  Frame frame;
  status = next_frame(frame);
  if (!status.is_ok()) return status;
  if (frame.type != FrameType::Shutdown) {
    close();
    return Status::error(ErrorCode::BadFrame, "expected shutdown ack");
  }
  close();
  return Status::ok();
}

}  // namespace ppd::svc
