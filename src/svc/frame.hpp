// ppd::svc wire framing — the byte protocol of the resident analysis
// service, protocol versions 1 and 2.
//
// Everything the daemon and its clients exchange travels in one frame
// shape: a fixed 16-byte header followed by a CRC-32-guarded payload.
// The header is deliberately minimal — magic (so a stray client speaking
// the wrong protocol is detected on the first four bytes), protocol
// version, frame type, a length prefix bounded by the negotiated cap, and
// the payload CRC — and every multi-byte field is little-endian, matching
// the .ppdt container. Payload grammars reuse the container's primitives
// (LEB128 varints, length-prefixed strings, store::ByteReader), and error
// payloads are the wire encoding of support::Status, so a remote failure
// carries exactly the same stable error code the offline tool would print.
//
// Version 2 repurposes the v1 reserved header bytes as a flags word and
// adds two things on top of v1:
//   * an optional 16-byte trace-context extension (trace id + span id,
//     both u64le) between header and payload, announced by flag bit 0.
//     It is diagnostic metadata, deliberately outside the CRC: a flipped
//     trace id must never cost a request its reply.
//   * MetricsRequest/MetricsReply frames — a live scrape of the daemon's
//     metrics registry without queueing an analysis.
// Hello and HelloAck are always framed as version 1 regardless of what
// the peers later negotiate, so an old peer can read the handshake far
// enough to discover the mismatch and fail cleanly.
//
// The normative byte-level spec (the one third-party clients implement
// from) is docs/PROTOCOL.md; this header is its in-tree mirror.
//
// Decoding is incremental and hostile-input safe: decode_frame() reports
// NeedMore on a short buffer (never an error), and every malformed input
// maps onto a precise ErrorCode — BadFrame, OversizedFrame, CrcMismatch,
// UnsupportedVersion — that the server echoes back as a per-connection
// diagnostic before hanging up. A corrupt frame can cost the client its
// connection, never the daemon its life.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/obs.hpp"
#include "store/format.hpp"
#include "support/status.hpp"
#include "trace/serialize.hpp"

namespace ppd::svc {

/// Current (highest) protocol revision. Hello/HelloAck negotiate a version
/// from the ranges both sides support; the frame header carries the
/// revision the sender framed this particular frame with.
inline constexpr std::uint8_t kProtocolVersion = 2;

/// Oldest revision this build still speaks. The handshake itself is always
/// framed as this version (see the file comment).
inline constexpr std::uint8_t kProtocolVersionMin = 1;

/// "PPDA" little-endian — Parallel Pattern Detection, Analysis service.
inline constexpr std::uint32_t kFrameMagic = 0x41445050u;

/// magic:u32 version:u8 type:u8 flags:u16 length:u32 crc32:u32.
/// (v1 called the flags word "reserved" and requires it to be zero.)
inline constexpr std::size_t kFrameHeaderSize = 16;

/// v2 flag bit 0: a 16-byte trace-context extension (trace_id:u64le
/// span_id:u64le) follows the header, before the payload. Not CRC-covered.
inline constexpr std::uint16_t kFrameFlagTrace = 0x0001;

/// All header flag bits this build understands; the rest are rejected.
inline constexpr std::uint16_t kFrameFlagsKnown = kFrameFlagTrace;

/// Size of the trace-context extension announced by kFrameFlagTrace.
inline constexpr std::size_t kTraceContextSize = 16;

/// Absolute protocol ceiling on one frame's payload. Servers typically run
/// with a much smaller per-request byte budget (ServerOptions); this bound
/// exists so length prefixes can be sanity-checked before any allocation.
inline constexpr std::uint64_t kMaxFramePayload = std::uint64_t{1} << 30;

enum class FrameType : std::uint8_t {
  Hello = 1,           ///< client → server: version range + client name
  HelloAck = 2,        ///< server → client: chosen version + server name
  AnalyzeRequest = 3,  ///< client → server: options + trace bytes
  Progress = 4,        ///< server → client: request stage heartbeat
  Report = 5,          ///< server → client: final report + log
  Error = 6,           ///< server → client: wire-encoded support::Status
  Ping = 7,            ///< client → server: liveness probe (empty payload)
  Pong = 8,            ///< server → client: probe reply (empty payload)
  Shutdown = 9,        ///< client → server: stop the daemon (echoed as ack)
  MetricsRequest = 10,  ///< client → server: scrape the metrics registry (v2)
  MetricsReply = 11,    ///< server → client: rendered metrics text (v2)
};

[[nodiscard]] const char* to_string(FrameType type);

/// One decoded frame: type plus a view of the payload (into the caller's
/// buffer — copy it to outlive the buffer), plus the header version and
/// the trace context carried by the extension, when present.
struct Frame {
  FrameType type = FrameType::Error;
  std::string_view payload;
  std::uint8_t version = kProtocolVersionMin;
  bool has_trace = false;
  obs::TraceContext trace;
};

/// Renders header + payload, stamping length and CRC-32. Frames as
/// version 1 (no extension) — the form every peer understands; the
/// handshake and all pre-v2 traffic use this.
[[nodiscard]] std::string encode_frame(FrameType type, std::string_view payload);

/// Renders header + payload framed as `version`. When `version` >= 2 and
/// `trace` is non-null and active, the trace-context extension is attached
/// (flag bit 0); on a v1 frame `trace` is ignored.
[[nodiscard]] std::string encode_frame(FrameType type, std::string_view payload,
                                       std::uint8_t version,
                                       const obs::TraceContext* trace);

enum class DecodeResult : std::uint8_t {
  Ok,        ///< `frame` filled, `consumed` bytes eaten
  NeedMore,  ///< prefix of a valid frame; feed more bytes
  Error,     ///< malformed; see the Status
};

/// Incremental decode of the first frame in `bytes`. `max_payload` is the
/// receiver's byte budget (requests larger than it are rejected with
/// OversizedFrame *from the length prefix alone*, before buffering).
/// On Ok, `frame.payload` points into `bytes` and `consumed` is the total
/// frame size.
[[nodiscard]] DecodeResult decode_frame(std::string_view bytes, std::uint64_t max_payload,
                                        Frame& frame, std::size_t& consumed,
                                        support::Status& status);

// ---- payload grammars -------------------------------------------------------

/// Hello: the version range the client speaks plus a display name.
struct HelloPayload {
  std::uint8_t min_version = kProtocolVersion;
  std::uint8_t max_version = kProtocolVersion;
  std::string client;
};

/// HelloAck: the version the server chose plus its display name.
struct HelloAckPayload {
  std::uint8_t version = kProtocolVersion;
  std::string server;
};

/// AnalyzeRequest: replay options plus the trace bytes (either format).
struct RequestPayload {
  trace::ReplayMode mode = trace::ReplayMode::Strict;
  bool no_cache = false;  ///< skip the report cache entirely
  bool refresh = false;   ///< ignore a cached report but store the fresh one
  std::uint64_t max_records = 0;  ///< 0: server default (subject to its cap)
  std::string_view trace;         ///< view into the request frame payload
};

/// Progress: coarse request stage heartbeat (done/total are stage ordinals).
struct ProgressPayload {
  std::string stage;
  std::uint64_t done = 0;
  std::uint64_t total = 0;
};

/// Report: the final analysis output. `report` is byte-identical to the
/// offline `ppd-analyze --trace` stdout for the same bytes and options.
struct ReportPayload {
  bool cached = false;
  std::string report;
  std::string log;
};

/// MetricsRequest/MetricsReply text formats.
inline constexpr std::uint8_t kMetricsFormatKeyValue = 0;    ///< sorted k=v lines
inline constexpr std::uint8_t kMetricsFormatPrometheus = 1;  ///< text exposition

/// MetricsRequest (v2): which rendering the client wants.
struct MetricsRequestPayload {
  std::uint8_t format = kMetricsFormatKeyValue;
};

/// MetricsReply (v2): the format echoed back plus the rendered text.
struct MetricsReplyPayload {
  std::uint8_t format = kMetricsFormatKeyValue;
  std::string text;
};

void encode_hello(std::string& out, const HelloPayload& hello);
void encode_hello_ack(std::string& out, const HelloAckPayload& ack);
void encode_request(std::string& out, const RequestPayload& request);
void encode_progress(std::string& out, const ProgressPayload& progress);
void encode_report(std::string& out, const ReportPayload& report);
void encode_metrics_request(std::string& out, const MetricsRequestPayload& request);
void encode_metrics_reply(std::string& out, const MetricsReplyPayload& reply);

/// Wire encoding of a Status: code:u8, line:varint, message:string. The
/// codes are the stable support::ErrorCode registry (docs/PROTOCOL.md §5).
void encode_status(std::string& out, const support::Status& status);

[[nodiscard]] bool decode_hello(std::string_view payload, HelloPayload& out);
[[nodiscard]] bool decode_hello_ack(std::string_view payload, HelloAckPayload& out);
/// `out.trace` views into `payload`; keep the frame buffer alive.
[[nodiscard]] bool decode_request(std::string_view payload, RequestPayload& out);
[[nodiscard]] bool decode_progress(std::string_view payload, ProgressPayload& out);
[[nodiscard]] bool decode_report(std::string_view payload, ReportPayload& out);
[[nodiscard]] bool decode_status(std::string_view payload, support::Status& out);
[[nodiscard]] bool decode_metrics_request(std::string_view payload,
                                          MetricsRequestPayload& out);
[[nodiscard]] bool decode_metrics_reply(std::string_view payload,
                                        MetricsReplyPayload& out);

/// Version negotiation: highest revision inside both [min, max] ranges, or
/// 0 when the ranges are disjoint (the server then answers with an
/// UnsupportedVersion error and closes).
[[nodiscard]] std::uint8_t negotiate_version(std::uint8_t client_min,
                                             std::uint8_t client_max,
                                             std::uint8_t server_min,
                                             std::uint8_t server_max);

// ---- blocking socket I/O ----------------------------------------------------
//
// Both sides run one blocking reader per connection, so the socket layer
// stays simple: read/write exactly, loop on EINTR, never raise SIGPIPE.

/// Writes one v1 frame to `fd`. ConnectionLost when the peer vanished.
[[nodiscard]] support::Status write_frame(int fd, FrameType type,
                                          std::string_view payload);

/// Writes one frame framed as `version`, attaching the trace-context
/// extension when `version` >= 2 and `trace` is non-null and active.
[[nodiscard]] support::Status write_frame(int fd, FrameType type,
                                          std::string_view payload,
                                          std::uint8_t version,
                                          const obs::TraceContext* trace);

/// Reads one frame from `fd` into `buffer` (reused across calls; the
/// returned frame's payload views into it). Blocks until a full frame,
/// a framing error, or EOF. EOF at a frame boundary yields ConnectionLost
/// with message "eof"; EOF mid-frame yields ConnectionLost "truncated
/// frame". Framing errors (BadFrame/OversizedFrame/CrcMismatch/
/// UnsupportedVersion) leave the stream unusable — callers must close.
[[nodiscard]] support::Status read_frame(int fd, std::uint64_t max_payload,
                                         std::string& buffer, Frame& frame);

}  // namespace ppd::svc
