// Client side of the framed analysis protocol.
//
// Wraps one Unix-socket connection to a ppd-analyzed daemon: connect()
// performs the Hello/HelloAck version negotiation, analyze() runs one
// request-response exchange (streaming progress frames into an optional
// callback), ping() probes liveness, shutdown_server() asks the daemon to
// exit. `ppd-analyze remote` and the test suites are the two in-tree
// users; third parties implement the same exchange from docs/PROTOCOL.md.
//
// The connection is sequential by design — one request in flight at a
// time; open several clients for concurrency (that is exactly what the
// daemon's scheduler multiplexes).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "svc/frame.hpp"
#include "support/status.hpp"
#include "trace/serialize.hpp"

namespace ppd::svc {

class Client {
 public:
  struct RequestOptions {
    trace::ReplayMode mode = trace::ReplayMode::Strict;
    std::uint64_t max_records = 0;  ///< 0: server default
    bool no_cache = false;
    bool refresh = false;
  };

  struct Result {
    support::Status status;  ///< Ok, or the server's wire-encoded Status
    std::string report;
    std::string log;
    bool cached = false;
  };

  using ProgressFn = std::function<void(const ProgressPayload&)>;

  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects and negotiates. On any failure the client stays closed and
  /// the Status says why (IoError for socket trouble, the server's own
  /// refusal otherwise).
  [[nodiscard]] support::Status connect(const std::string& socket_path,
                                        const std::string& client_name);

  /// Sends one analysis request and blocks until Report or Error. Progress
  /// frames invoke `progress` as they arrive. A transport failure closes
  /// the connection and surfaces as ConnectionLost.
  [[nodiscard]] Result analyze(std::string_view trace_bytes,
                               const RequestOptions& options,
                               const ProgressFn& progress = {});

  [[nodiscard]] support::Status ping();

  /// Scrapes the daemon's live metrics registry (v2 connections only;
  /// UnsupportedVersion against a v1 server). `format` is one of the
  /// kMetricsFormat* constants; on Ok, `text` holds the rendered metrics.
  [[nodiscard]] support::Status metrics(std::uint8_t format, std::string& text);

  /// Asks the daemon to exit; Ok once the shutdown ack arrived.
  [[nodiscard]] support::Status shutdown_server();

  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  [[nodiscard]] std::uint8_t version() const { return version_; }
  [[nodiscard]] const std::string& server_name() const { return server_name_; }

 private:
  /// Reads the next frame, translating transport errors; closes on error.
  [[nodiscard]] support::Status next_frame(Frame& frame);

  int fd_ = -1;
  std::uint8_t version_ = 0;
  std::string server_name_;
  std::string buffer_;
};

}  // namespace ppd::svc
