#include "svc/analysis.hpp"

#include <cstdarg>
#include <cstdio>
#include <memory>
#include <sstream>
#include <vector>

#include "core/advisor.hpp"
#include "obs/obs.hpp"
#include "rt/thread_pool.hpp"
#include "store/batch.hpp"
#include "store/format.hpp"
#include "store/reader.hpp"
#include "trace/validator.hpp"

namespace ppd::svc {

namespace {

#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void appendf(std::string& out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list sized;
  va_copy(sized, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, sized);
  va_end(sized);
  if (needed > 0) {
    std::vector<char> buffer(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buffer.data(), buffer.size(), fmt, args);
    out.append(buffer.data(), static_cast<std::size_t>(needed));
  }
  va_end(args);
}

/// Ingestion statistics shared by the text and the binary replay paths.
struct IngestStats {
  std::uint64_t records = 0;
  std::uint64_t dropped = 0;
  std::uint64_t repaired_scopes = 0;
  std::uint64_t skipped_chunks = 0;
  bool binary = false;
};

std::string render_diagnostics(const IngestStats& stats,
                               const support::DiagSink& diags,
                               const trace::Validator& validator,
                               trace::ReplayMode mode) {
  std::string out;
  appendf(out, "== Diagnostics ==\n");
  appendf(out, "  mode: %s\n",
          mode == trace::ReplayMode::Strict ? "strict" : "lenient");
  appendf(out, "  records replayed: %llu, dropped: %llu, repaired scopes: %llu\n",
          static_cast<unsigned long long>(stats.records),
          static_cast<unsigned long long>(stats.dropped),
          static_cast<unsigned long long>(stats.repaired_scopes));
  if (stats.binary) {
    appendf(out, "  corrupt chunks skipped: %llu\n",
            static_cast<unsigned long long>(stats.skipped_chunks));
  }
  appendf(out, "  stream-invariant violations: %llu\n",
          static_cast<unsigned long long>(validator.violations()));
  constexpr std::size_t kMaxShown = 10;
  std::size_t shown = 0;
  for (const support::Diag& d : diags.diags()) {
    if (shown++ == kMaxShown) break;
    appendf(out, "  - %s\n", d.to_string().c_str());
  }
  if (diags.total() > kMaxShown) {
    appendf(out, "  ... and %llu more\n",
            static_cast<unsigned long long>(diags.total() - kMaxShown));
  }
  appendf(out, "\n");
  return out;
}

}  // namespace

std::string render_report(const core::AnalysisResult& result,
                          const trace::TraceContext& ctx) {
  std::string out;
  appendf(out, "== Program execution tree (hotspots >= 2%%) ==\n");
  for (pet::NodeIndex node : result.pet.hotspots(0.02)) {
    const pet::PetNode& n = result.pet.node(node);
    appendf(out, "  %-24s %6.2f%%  (%s%s)\n", n.name.c_str(),
            result.pet.cost_fraction(node) * 100.0, n.is_loop() ? "loop" : "function",
            n.recursive ? ", recursive" : "");
  }

  appendf(out, "\nPrimary pattern: %s\n", result.primary_description.c_str());
  appendf(out, "Supporting structure: %s\n\n",
          core::supporting_structure(result.primary));

  const auto pipelines = result.reported_pipelines();
  if (!pipelines.empty()) {
    appendf(out, "== Multi-loop pipelines ==\n");
    for (const core::MultiLoopPipeline* p : pipelines) {
      appendf(out, "  %s -> %s: a=%.2f b=%.2f e=%.2f%s\n",
              ctx.region(p->loop_x).name.c_str(), ctx.region(p->loop_y).name.c_str(),
              p->fit.a, p->fit.b, p->e, p->fusion ? " [fusion]" : "");
      appendf(out, "    %s\n",
              core::describe_coefficients(p->fit.a, p->fit.b, 0.05).c_str());
    }
    appendf(out, "\n");
  }

  if (!result.reductions.empty()) {
    appendf(out, "== Reduction candidates (Algorithm 3) ==\n");
    for (const core::ReductionCandidate& r : result.reductions) {
      appendf(out, "  loop '%s': variable '%s' at line %u, operator %s\n",
              ctx.region(r.loop).name.c_str(), ctx.var_info(r.var).name.c_str(), r.line,
              trace::to_string(r.op));
    }
    appendf(out, "\n");
  }

  const core::ScopeTaskParallelism* tasks = result.primary_tasks();
  if (tasks == nullptr) {
    for (const core::ScopeTaskParallelism& t : result.tasks) {
      if (t.tp.worker_count() >= 2 &&
          (tasks == nullptr || t.tp.estimated_speedup > tasks->tp.estimated_speedup)) {
        tasks = &t;
      }
    }
  }
  if (tasks != nullptr && tasks->tp.worker_count() >= 1) {
    appendf(out, "== Task classification in '%s' ==\n",
            ctx.region(tasks->tp.scope).name.c_str());
    out += tasks->tp.render(tasks->graph);
    appendf(out, "\n");
  }

  const auto ranked = core::rank_patterns(result, ctx);
  if (!ranked.empty()) {
    appendf(out, "== Ranked patterns (best first) ==\n");
    for (const core::RankedPattern& r : ranked) {
      appendf(out, "  %-60s  benefit %.2fx  effort %-6s score %.3f\n",
              r.description.c_str(), r.expected_benefit, core::to_string(r.effort),
              r.score);
    }
    appendf(out, "\n");
  }

  const auto hints = core::derive_hints(result, ctx);
  if (!hints.empty()) {
    appendf(out, "== Transformation hints ==\n");
    for (const core::TransformationHint& h : hints) {
      appendf(out, "  [%s] %s\n", core::to_string(h.kind), h.text.c_str());
    }
  }
  return out;
}

AnalysisOutput analyze_trace_bytes(const std::string& name, std::string_view bytes,
                                   const AnalysisOptions& options) {
  AnalysisOutput out;
  // One pool serves both the chunk decoder and the sharded dependence
  // profiler, so decode tasks and profiling blocks interleave on the same
  // workers. Declared before the analyzer: the sharded profiler drains onto
  // the pool in its destructor.
  std::unique_ptr<rt::ThreadPool> pool;
  core::AnalyzerConfig config;
  if (options.jobs > 1) {
    pool = std::make_unique<rt::ThreadPool>(options.jobs);
    config.profiler_mode = core::ProfilerMode::Sharded;
    config.profile_jobs = options.jobs;
    config.pool = pool.get();
  }
  trace::TraceContext ctx;
  core::PatternAnalyzer analyzer(ctx, config);
  support::DiagSink diags;
  trace::Validator validator(&diags);
  ctx.add_sink(&validator);

  IngestStats stats;
  support::Status status;
  if (store::is_binary_trace(bytes)) {
    store::ReadOptions read_options;
    read_options.mode = options.mode;
    read_options.limits.max_records = options.max_records;
    read_options.diags = &diags;
    read_options.jobs = options.jobs;
    read_options.pool = pool.get();
    const store::ReadResult read = store::read_trace(bytes, ctx, read_options);
    status = read.status;
    stats.records = read.records;
    stats.dropped = read.dropped;
    stats.repaired_scopes = read.repaired_scopes;
    stats.skipped_chunks = read.skipped_chunks;
    stats.binary = true;
  } else {
    trace::ReplayOptions replay_options;
    replay_options.mode = options.mode;
    replay_options.limits.max_records = options.max_records;
    replay_options.diags = &diags;
    std::istringstream in{std::string(bytes)};
    const trace::ReplayResult replay = trace::replay_trace(in, ctx, replay_options);
    status = replay.status;
    stats.records = replay.records;
    stats.dropped = replay.dropped;
    stats.repaired_scopes = replay.repaired_scopes;
  }

  if (!status.is_ok()) {
    appendf(out.log, "replay failed: %s\n", status.to_string().c_str());
    out.status = status;
    out.clean = false;
    return out;
  }
  appendf(out.log, "replayed %llu records from %s (%s)\n",
          static_cast<unsigned long long>(stats.records), name.c_str(),
          stats.binary ? "binary" : "text");
  const bool degraded = stats.dropped != 0 || stats.repaired_scopes != 0 ||
                        stats.skipped_chunks != 0 || !validator.ok() ||
                        !diags.empty();
  if (degraded) {
    out.log += render_diagnostics(stats, diags, validator, options.mode);
  }
  out.clean = !degraded;

  try {
    const core::AnalysisResult result = analyzer.analyze();
    out.report = render_report(result, ctx);
  } catch (const std::exception& e) {
    appendf(out.log, "analysis failed: %s\n", e.what());
    out.status = support::Status::error(support::ErrorCode::AnalysisFailed, e.what());
    out.clean = false;
    return out;
  }
  out.status = support::Status::ok();
  return out;
}

std::uint64_t analysis_salt(const AnalysisOptions& options, std::string_view tag) {
  std::string config(tag);
  config += '|';
  config += options.mode == trace::ReplayMode::Strict ? "strict" : "lenient";
  config += '|';
  config += std::to_string(options.max_records);
  return store::fnv1a64(config);
}

}  // namespace ppd::svc
