#include "svc/frame.hpp"

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ppd::svc {

namespace {

using support::ErrorCode;
using support::Status;

constexpr std::uint8_t kMinFrameType = static_cast<std::uint8_t>(FrameType::Hello);
/// v1 ends at Shutdown; the metrics pair exists only in v2 frames. A v1
/// header carrying type 10 is a bad frame, exactly as it was before v2.
constexpr std::uint8_t kMaxFrameTypeV1 = static_cast<std::uint8_t>(FrameType::Shutdown);
constexpr std::uint8_t kMaxFrameTypeV2 = static_cast<std::uint8_t>(FrameType::MetricsReply);

/// Display names are bounded like .ppdt definition names: hostile peers
/// cannot balloon memory through a length prefix.
constexpr std::uint64_t kMaxStringField = store::kMaxNameLength;

void put_string(std::string& out, std::string_view text) {
  store::put_varint(out, text.size());
  out.append(text);
}

[[nodiscard]] bool read_string(store::ByteReader& reader, std::string& out,
                               std::uint64_t cap = kMaxStringField) {
  std::uint64_t length = 0;
  if (!reader.read_varint(length) || length > cap) return false;
  std::string_view bytes;
  if (!reader.read_bytes(bytes, static_cast<std::size_t>(length))) return false;
  out.assign(bytes);
  return true;
}

[[nodiscard]] bool version_supported(std::uint8_t version) {
  return version >= kProtocolVersionMin && version <= kProtocolVersion;
}

[[nodiscard]] Status unsupported_version(std::uint8_t version) {
  return Status::error(ErrorCode::UnsupportedVersion,
                       "frame version " + std::to_string(version) +
                           ", expected " + std::to_string(kProtocolVersionMin) +
                           ".." + std::to_string(kProtocolVersion));
}

/// The parsed fixed-size header, before the payload has been seen.
struct Header {
  FrameType type = FrameType::Error;
  std::uint8_t version = kProtocolVersionMin;
  std::uint16_t flags = 0;
  std::uint32_t length = 0;
  std::uint32_t crc = 0;
};

/// Bytes of extension data (between header and payload) the flags announce.
[[nodiscard]] std::size_t extension_size(const Header& header) {
  return (header.flags & kFrameFlagTrace) != 0 ? kTraceContextSize : 0;
}

/// Validates the 16 header bytes. Field order doubles as the validation
/// order, so a garbage stream is rejected on its earliest bad byte.
[[nodiscard]] Status parse_header(const char* bytes, std::uint64_t max_payload,
                                  Header& out) {
  std::uint32_t magic = 0;
  std::memcpy(&magic, bytes, 4);
  if (magic != kFrameMagic) {
    return Status::error(ErrorCode::BadFrame, "bad frame magic");
  }
  const auto version = static_cast<std::uint8_t>(bytes[4]);
  if (!version_supported(version)) {
    return unsupported_version(version);
  }
  const auto type = static_cast<std::uint8_t>(bytes[5]);
  const std::uint8_t max_type = version >= 2 ? kMaxFrameTypeV2 : kMaxFrameTypeV1;
  if (type < kMinFrameType || type > max_type) {
    return Status::error(ErrorCode::BadFrame,
                         "unknown frame type " + std::to_string(type));
  }
  std::uint16_t flags = 0;
  std::memcpy(&flags, bytes + 6, 2);
  if (version < 2) {
    // v1 never defined these bytes; any nonzero value is a corrupt header.
    if (flags != 0) {
      return Status::error(ErrorCode::BadFrame, "reserved header bytes set");
    }
  } else if ((flags & ~kFrameFlagsKnown) != 0) {
    return Status::error(ErrorCode::BadFrame,
                         "unknown header flags " + std::to_string(flags));
  }
  std::uint32_t length = 0;
  std::memcpy(&length, bytes + 8, 4);
  const std::uint64_t cap = max_payload < kMaxFramePayload ? max_payload : kMaxFramePayload;
  if (length > cap) {
    return Status::error(ErrorCode::OversizedFrame,
                         "frame payload of " + std::to_string(length) +
                             " bytes exceeds the cap of " + std::to_string(cap));
  }
  out.type = static_cast<FrameType>(type);
  out.version = version;
  out.flags = flags;
  out.length = length;
  std::memcpy(&out.crc, bytes + 12, 4);
  return Status::ok();
}

/// Reads the trace-context extension into the frame (caller guarantees
/// `bytes` holds kTraceContextSize bytes at the extension offset).
void parse_trace_extension(const char* bytes, Frame& frame) {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::memcpy(&trace_id, bytes, 8);
  std::memcpy(&span_id, bytes + 8, 8);
  frame.has_trace = true;
  frame.trace.trace_id = trace_id;
  frame.trace.span_id = span_id;
}

}  // namespace

const char* to_string(FrameType type) {
  switch (type) {
    case FrameType::Hello: return "hello";
    case FrameType::HelloAck: return "hello-ack";
    case FrameType::AnalyzeRequest: return "analyze-request";
    case FrameType::Progress: return "progress";
    case FrameType::Report: return "report";
    case FrameType::Error: return "error";
    case FrameType::Ping: return "ping";
    case FrameType::Pong: return "pong";
    case FrameType::Shutdown: return "shutdown";
    case FrameType::MetricsRequest: return "metrics-request";
    case FrameType::MetricsReply: return "metrics-reply";
  }
  return "unknown";
}

namespace {

void put_u64le(std::string& out, std::uint64_t value) {
  store::put_u32le(out, static_cast<std::uint32_t>(value & 0xFFFFFFFFu));
  store::put_u32le(out, static_cast<std::uint32_t>(value >> 32));
}

}  // namespace

std::string encode_frame(FrameType type, std::string_view payload) {
  return encode_frame(type, payload, kProtocolVersionMin, nullptr);
}

std::string encode_frame(FrameType type, std::string_view payload,
                         std::uint8_t version, const obs::TraceContext* trace) {
  const bool with_trace = version >= 2 && trace != nullptr && trace->active();
  std::uint16_t flags = 0;
  if (with_trace) flags |= kFrameFlagTrace;
  std::string out;
  out.reserve(kFrameHeaderSize + (with_trace ? kTraceContextSize : 0) +
              payload.size());
  store::put_u32le(out, kFrameMagic);
  out.push_back(static_cast<char>(version));
  out.push_back(static_cast<char>(type));
  out.push_back(static_cast<char>(flags & 0xFF));
  out.push_back(static_cast<char>(flags >> 8));
  store::put_u32le(out, static_cast<std::uint32_t>(payload.size()));
  store::put_u32le(out, store::crc32(payload));
  if (with_trace) {
    put_u64le(out, trace->trace_id);
    put_u64le(out, trace->span_id);
  }
  out.append(payload);
  return out;
}

DecodeResult decode_frame(std::string_view bytes, std::uint64_t max_payload,
                          Frame& frame, std::size_t& consumed, Status& status) {
  consumed = 0;
  if (bytes.size() < kFrameHeaderSize) {
    // Validate the prefix we do have, so a wrong-protocol peer is rejected
    // on its first bytes instead of being strung along until EOF.
    char header[kFrameHeaderSize] = {};
    std::memcpy(header, bytes.data(), bytes.size());
    if (bytes.size() >= 4) {
      std::uint32_t magic = 0;
      std::memcpy(&magic, header, 4);
      if (magic != kFrameMagic) {
        status = Status::error(ErrorCode::BadFrame, "bad frame magic");
        return DecodeResult::Error;
      }
    }
    if (bytes.size() >= 5 &&
        !version_supported(static_cast<std::uint8_t>(header[4]))) {
      status = unsupported_version(static_cast<std::uint8_t>(header[4]));
      return DecodeResult::Error;
    }
    return DecodeResult::NeedMore;
  }

  Header header;
  status = parse_header(bytes.data(), max_payload, header);
  if (!status.is_ok()) return DecodeResult::Error;
  const std::size_t ext = extension_size(header);
  const std::size_t total = kFrameHeaderSize + ext + header.length;
  if (bytes.size() < total) return DecodeResult::NeedMore;

  const std::string_view payload =
      bytes.substr(kFrameHeaderSize + ext, header.length);
  if (store::crc32(payload) != header.crc) {
    status = Status::error(ErrorCode::CrcMismatch,
                           "frame payload failed its CRC-32 check");
    return DecodeResult::Error;
  }
  frame.type = header.type;
  frame.payload = payload;
  frame.version = header.version;
  frame.has_trace = false;
  frame.trace = obs::TraceContext{};
  if (ext != 0) {
    parse_trace_extension(bytes.data() + kFrameHeaderSize, frame);
  }
  consumed = total;
  status = Status::ok();
  return DecodeResult::Ok;
}

// ---- payload grammars -------------------------------------------------------

void encode_hello(std::string& out, const HelloPayload& hello) {
  store::put_varint(out, hello.min_version);
  store::put_varint(out, hello.max_version);
  put_string(out, hello.client);
}

void encode_hello_ack(std::string& out, const HelloAckPayload& ack) {
  store::put_varint(out, ack.version);
  put_string(out, ack.server);
}

void encode_request(std::string& out, const RequestPayload& request) {
  std::uint8_t flags = 0;
  if (request.mode == trace::ReplayMode::Lenient) flags |= 0x01;
  if (request.no_cache) flags |= 0x02;
  if (request.refresh) flags |= 0x04;
  out.push_back(static_cast<char>(flags));
  store::put_varint(out, request.max_records);
  store::put_varint(out, request.trace.size());
  out.append(request.trace);
}

void encode_progress(std::string& out, const ProgressPayload& progress) {
  put_string(out, progress.stage);
  store::put_varint(out, progress.done);
  store::put_varint(out, progress.total);
}

void encode_report(std::string& out, const ReportPayload& report) {
  out.push_back(report.cached ? 1 : 0);
  store::put_varint(out, report.report.size());
  out.append(report.report);
  store::put_varint(out, report.log.size());
  out.append(report.log);
}

void encode_metrics_request(std::string& out, const MetricsRequestPayload& request) {
  out.push_back(static_cast<char>(request.format));
}

void encode_metrics_reply(std::string& out, const MetricsReplyPayload& reply) {
  out.push_back(static_cast<char>(reply.format));
  store::put_varint(out, reply.text.size());
  out.append(reply.text);
}

void encode_status(std::string& out, const Status& status) {
  out.push_back(static_cast<char>(status.code()));
  store::put_varint(out, status.line());
  put_string(out, status.message());
}

bool decode_hello(std::string_view payload, HelloPayload& out) {
  store::ByteReader reader(payload);
  std::uint64_t min_version = 0;
  std::uint64_t max_version = 0;
  if (!reader.read_varint(min_version) || !reader.read_varint(max_version) ||
      min_version == 0 || min_version > 255 || max_version > 255 ||
      min_version > max_version) {
    return false;
  }
  if (!read_string(reader, out.client)) return false;
  out.min_version = static_cast<std::uint8_t>(min_version);
  out.max_version = static_cast<std::uint8_t>(max_version);
  return reader.at_end();
}

bool decode_hello_ack(std::string_view payload, HelloAckPayload& out) {
  store::ByteReader reader(payload);
  std::uint64_t version = 0;
  if (!reader.read_varint(version) || version == 0 || version > 255) return false;
  if (!read_string(reader, out.server)) return false;
  out.version = static_cast<std::uint8_t>(version);
  return reader.at_end();
}

bool decode_request(std::string_view payload, RequestPayload& out) {
  store::ByteReader reader(payload);
  std::uint8_t flags = 0;
  if (!reader.read_u8(flags) || (flags & ~0x07u) != 0) return false;
  out.mode = (flags & 0x01u) != 0 ? trace::ReplayMode::Lenient
                                  : trace::ReplayMode::Strict;
  out.no_cache = (flags & 0x02u) != 0;
  out.refresh = (flags & 0x04u) != 0;
  if (!reader.read_varint(out.max_records)) return false;
  std::uint64_t trace_length = 0;
  if (!reader.read_varint(trace_length) || trace_length > reader.remaining()) {
    return false;
  }
  if (!reader.read_bytes(out.trace, static_cast<std::size_t>(trace_length))) {
    return false;
  }
  return reader.at_end();
}

bool decode_progress(std::string_view payload, ProgressPayload& out) {
  store::ByteReader reader(payload);
  if (!read_string(reader, out.stage)) return false;
  if (!reader.read_varint(out.done) || !reader.read_varint(out.total)) return false;
  return reader.at_end();
}

bool decode_report(std::string_view payload, ReportPayload& out) {
  store::ByteReader reader(payload);
  std::uint8_t cached = 0;
  if (!reader.read_u8(cached) || cached > 1) return false;
  out.cached = cached != 0;
  if (!read_string(reader, out.report, kMaxFramePayload)) return false;
  if (!read_string(reader, out.log, kMaxFramePayload)) return false;
  return reader.at_end();
}

bool decode_metrics_request(std::string_view payload, MetricsRequestPayload& out) {
  store::ByteReader reader(payload);
  std::uint8_t format = 0;
  if (!reader.read_u8(format) || format > kMetricsFormatPrometheus) return false;
  out.format = format;
  return reader.at_end();
}

bool decode_metrics_reply(std::string_view payload, MetricsReplyPayload& out) {
  store::ByteReader reader(payload);
  std::uint8_t format = 0;
  if (!reader.read_u8(format) || format > kMetricsFormatPrometheus) return false;
  out.format = format;
  if (!read_string(reader, out.text, kMaxFramePayload)) return false;
  return reader.at_end();
}

bool decode_status(std::string_view payload, Status& out) {
  store::ByteReader reader(payload);
  std::uint8_t code = 0;
  std::uint64_t line = 0;
  std::string message;
  if (!reader.read_u8(code) ||
      code > static_cast<std::uint8_t>(ErrorCode::ConnectionLost) ||
      !reader.read_varint(line) || !read_string(reader, message) ||
      !reader.at_end()) {
    return false;
  }
  if (static_cast<ErrorCode>(code) == ErrorCode::Ok) {
    out = Status::ok();
  } else {
    out = Status::error(static_cast<ErrorCode>(code), std::move(message), line);
  }
  return true;
}

std::uint8_t negotiate_version(std::uint8_t client_min, std::uint8_t client_max,
                               std::uint8_t server_min, std::uint8_t server_max) {
  const std::uint8_t low = client_min > server_min ? client_min : server_min;
  const std::uint8_t high = client_max < server_max ? client_max : server_max;
  return low <= high ? high : 0;
}

// ---- blocking socket I/O ----------------------------------------------------

namespace {

/// send() the whole buffer; MSG_NOSIGNAL so a vanished peer surfaces as an
/// error return, not SIGPIPE.
[[nodiscard]] bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t sent = ::send(fd, data, size, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (sent == 0) return false;
    data += sent;
    size -= static_cast<std::size_t>(sent);
  }
  return true;
}

enum class ReadExact : std::uint8_t { Ok, Eof, Error };

[[nodiscard]] ReadExact recv_exact(int fd, char* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ReadExact::Error;
    }
    if (n == 0) return got == 0 ? ReadExact::Eof : ReadExact::Error;
    got += static_cast<std::size_t>(n);
  }
  return ReadExact::Ok;
}

}  // namespace

Status write_frame(int fd, FrameType type, std::string_view payload) {
  return write_frame(fd, type, payload, kProtocolVersionMin, nullptr);
}

Status write_frame(int fd, FrameType type, std::string_view payload,
                   std::uint8_t version, const obs::TraceContext* trace) {
  const std::string bytes = encode_frame(type, payload, version, trace);
  if (!send_all(fd, bytes.data(), bytes.size())) {
    return Status::error(ErrorCode::ConnectionLost, "peer closed while writing");
  }
  return Status::ok();
}

Status read_frame(int fd, std::uint64_t max_payload, std::string& buffer,
                  Frame& frame) {
  buffer.resize(kFrameHeaderSize);
  switch (recv_exact(fd, buffer.data(), kFrameHeaderSize)) {
    case ReadExact::Eof:
      return Status::error(ErrorCode::ConnectionLost, "eof");
    case ReadExact::Error:
      return Status::error(ErrorCode::ConnectionLost, "truncated frame");
    case ReadExact::Ok:
      break;
  }
  Header header;
  // The oversize check runs on the 16 header bytes alone — a hostile length
  // prefix is rejected before a single payload byte is buffered.
  const Status status = parse_header(buffer.data(), max_payload, header);
  if (!status.is_ok()) return status;

  const std::size_t ext = extension_size(header);
  buffer.resize(kFrameHeaderSize + ext + header.length);
  if (ext + header.length > 0 &&
      recv_exact(fd, buffer.data() + kFrameHeaderSize, ext + header.length) !=
          ReadExact::Ok) {
    return Status::error(ErrorCode::ConnectionLost, "truncated frame");
  }
  const std::string_view payload =
      std::string_view(buffer).substr(kFrameHeaderSize + ext, header.length);
  if (store::crc32(payload) != header.crc) {
    return Status::error(ErrorCode::CrcMismatch,
                         "frame payload failed its CRC-32 check");
  }
  frame.type = header.type;
  frame.payload = payload;
  frame.version = header.version;
  frame.has_trace = false;
  frame.trace = obs::TraceContext{};
  if (ext != 0) {
    parse_trace_extension(buffer.data() + kFrameHeaderSize, frame);
  }
  return Status::ok();
}

}  // namespace ppd::svc
