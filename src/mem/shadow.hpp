// Paged shadow memory.
//
// DiscoPoP's dependence profiler keeps per-address metadata in a shadow
// memory; we reproduce that with a two-level paged map over the synthetic
// element-granular address space. Pages are allocated on first touch, which
// keeps the footprint proportional to the touched working set rather than to
// the address-space size.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "support/ids.hpp"

namespace ppd::mem {

/// Two-level paged map Address -> Cell. Cells are value types default-
/// constructed on first touch.
template <typename Cell, std::size_t PageBits = 8>
class ShadowMemory {
 public:
  static constexpr std::size_t kPageSize = std::size_t{1} << PageBits;

  /// Returns the cell for `addr`, creating its page if needed.
  Cell& cell(Address addr) {
    const std::uint64_t page_index = addr >> PageBits;
    std::unique_ptr<Page>& page = pages_[page_index];
    if (!page) {
      page = std::make_unique<Page>();
      ++page_count_;
    }
    return page->cells[addr & (kPageSize - 1)];
  }

  /// Returns the cell for `addr` if its page exists, else nullptr.
  [[nodiscard]] const Cell* find(Address addr) const {
    auto it = pages_.find(addr >> PageBits);
    if (it == pages_.end()) return nullptr;
    return &it->second->cells[addr & (kPageSize - 1)];
  }

  /// Invokes fn(address, cell) for every cell in every allocated page.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [page_index, page] : pages_) {
      for (std::size_t i = 0; i < kPageSize; ++i) {
        fn((page_index << PageBits) | i, page->cells[i]);
      }
    }
  }

  [[nodiscard]] std::size_t page_count() const { return page_count_; }
  [[nodiscard]] std::size_t touched_bytes() const { return page_count_ * sizeof(Page); }

  void clear() {
    pages_.clear();
    page_count_ = 0;
  }

 private:
  struct Page {
    std::array<Cell, kPageSize> cells{};
  };

  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
  std::size_t page_count_ = 0;
};

}  // namespace ppd::mem
