// Per-address access records kept in shadow memory.
//
// The dependence profiler needs, for every traced address, where the last
// write and the last read came from — source line, statement, region, and
// the loop-iteration vector at the time of access — to classify RAW/WAR/WAW
// dependences and decide whether they are loop-carried.
#pragma once

#include <cstdint>
#include <span>

#include "support/assert.hpp"
#include "support/ids.hpp"
#include "trace/events.hpp"

namespace ppd::mem {

/// Fixed-capacity copy of the enclosing-loop iteration vector at the moment
/// of an access. Inline storage avoids a heap allocation per traced access.
class InlineLoopStack {
 public:
  static constexpr std::size_t kMaxDepth = 8;

  InlineLoopStack() = default;

  explicit InlineLoopStack(std::span<const trace::LoopPosition> positions) {
    PPD_ASSERT_MSG(positions.size() <= kMaxDepth, "loop nesting deeper than supported");
    size_ = static_cast<std::uint8_t>(positions.size());
    for (std::size_t i = 0; i < positions.size(); ++i) positions_[i] = positions[i];
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] const trace::LoopPosition& operator[](std::size_t i) const {
    PPD_ASSERT(i < size_);
    return positions_[i];
  }

  [[nodiscard]] std::span<const trace::LoopPosition> span() const {
    return {positions_.data(), size_};
  }

  /// Iteration index of `loop` in this stack, or UINT64_MAX if `loop` was not
  /// active at the time of the access.
  [[nodiscard]] std::uint64_t iteration_of(RegionId loop) const {
    for (std::size_t i = 0; i < size_; ++i) {
      if (positions_[i].loop == loop) return positions_[i].iteration;
    }
    return ~std::uint64_t{0};
  }

 private:
  std::array<trace::LoopPosition, kMaxDepth> positions_{};
  std::uint8_t size_ = 0;
};

/// Snapshot of one memory access (one side of a dependence).
struct AccessRecord {
  bool valid = false;
  SourceLine line = 0;
  trace::UpdateOp op = trace::UpdateOp::None;  ///< self-update tag (writes)
  StatementId stmt;
  RegionId region;
  RegionId func;                      ///< innermost enclosing function
  std::uint64_t func_activation = 0;  ///< dynamic activation of that function
  std::uint64_t seq = 0;
  InlineLoopStack loops;

  [[nodiscard]] static AccessRecord from_event(const trace::AccessEvent& ev) {
    AccessRecord rec;
    rec.valid = true;
    rec.line = ev.line;
    rec.op = ev.op;
    rec.stmt = ev.stmt;
    rec.region = ev.region;
    rec.func = ev.func;
    rec.func_activation = ev.func_activation;
    rec.seq = ev.seq;
    rec.loops = InlineLoopStack(ev.loop_stack);
    return rec;
  }
};

/// Shadow cell: the state the profiler keeps per traced address.
struct ShadowCell {
  AccessRecord last_write;
  AccessRecord last_read;
};

}  // namespace ppd::mem
