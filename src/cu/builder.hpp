// CU formation and CU-graph construction.
//
// form_cus() reproduces the read-compute-write grouping of Fig. 1: sites
// (statements / source lines) within a region merge into one CU when they
// update the same global state variable or are glued together by local
// temporaries (a local written by one site and read by another). Explicit
// statement scopes are kept as separate CUs — they model distinct call-site
// units like the two recursive calls of `fib`.
//
// build_cu_graph() maps the profiled data dependences onto CU pairs for one
// scope region (§II): CUs lexically in the scope become vertices, each child
// region of the scope collapses into a single vertex weighted with its whole
// subtree cost (the paper's loop-level tasks of `3mm`/`mvt`), and only
// dependences that are loop-independent with respect to the scope become
// edges (writer -> dependent reader). Dependences carried by the scope loop
// itself are flagged instead — they rule out naive per-iteration forking.
#pragma once

#include <vector>

#include "cu/cu.hpp"
#include "cu/facts.hpp"
#include "pet/pet.hpp"
#include "prof/dependence.hpp"
#include "trace/context.hpp"

namespace ppd::cu {

/// Groups the collected sites into CUs (Fig. 1 semantics).
[[nodiscard]] std::vector<Cu> form_cus(const CuFacts& facts,
                                       const trace::TraceContext& program);

/// Builds the CU graph of the region at PET node `scope_node`.
/// `filter_cross_activation` excludes value-return dependences between
/// different activations of a merged recursive function (the default); the
/// ablation bench shows the cycles that appear without the filter.
[[nodiscard]] CuGraph build_cu_graph(const std::vector<Cu>& cus,
                                     const prof::Profile& profile, const pet::Pet& pet,
                                     pet::NodeIndex scope_node,
                                     const trace::TraceContext& program,
                                     bool filter_cross_activation = true);

}  // namespace ppd::cu
