// Computational Units and CU graphs.
//
// DiscoPoP's first analysis divides code into Computational Units following
// the read-compute-write pattern (§II, Fig. 1): program state is read, a new
// state is computed through local temporaries, and written back. CUs are the
// building blocks of patterns — tasks in a task pool, stages in a pipeline.
// Data dependences are mapped onto CU pairs, giving the *CU graph* with CUs
// as vertices and dependences as edges (§II).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "support/ids.hpp"

namespace ppd::trace {
class TraceContext;
}
namespace ppd::prof {
struct Profile;
}
namespace ppd::pet {
class Pet;
}

namespace ppd::cu {

/// One computational unit.
struct Cu {
  CuId id;
  std::string name;           ///< "CU_<state var>" or the explicit statement name
  RegionId region;            ///< region the CU lexically belongs to
  bool collapsed = false;     ///< true if this node stands for a whole child region
  RegionId collapsed_region;  ///< the child region, when collapsed
  std::set<SourceLine> lines;
  std::set<StatementId> stmts;  ///< explicit statements merged into this CU
  std::set<VarId> state_vars;   ///< global variables the CU writes
  Cost cost = 0;
  std::uint64_t serial_order = 0;  ///< first dynamic occurrence (program order)
};

/// CU graph of one region scope. Graph node index i corresponds to cus[i];
/// edges run in dependence-flow direction, writer -> dependent reader.
struct CuGraph {
  RegionId scope;
  std::vector<Cu> cus;
  graph::Digraph graph;
  /// True when the scope is a loop and dependences cross its own iterations
  /// (such a scope cannot simply be forked per iteration).
  bool has_cross_iteration_deps = false;

  [[nodiscard]] const Cu& cu(graph::NodeIndex index) const { return cus.at(index); }
  [[nodiscard]] std::size_t size() const { return cus.size(); }

  /// Renders nodes and dependence edges as text (Fig. 3-style inspection).
  [[nodiscard]] std::string render() const;
};

}  // namespace ppd::cu
