// CuFacts: per-site dynamic facts feeding CU formation.
//
// A *site* is the static unit an access is attributed to: the enclosing
// explicit statement scope if one is active, otherwise the (region, line)
// pair. CU formation (ppd::cu::form_cus) merges sites into CUs along the
// read-compute-write pattern.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "support/ids.hpp"
#include "trace/context.hpp"
#include "trace/events.hpp"

namespace ppd::cu {

/// Identity of a site. Exactly one of `stmt` (valid) or (region, line) keys
/// the site.
struct SiteKey {
  StatementId stmt;
  RegionId region;
  SourceLine line = 0;

  friend auto operator<=>(const SiteKey&, const SiteKey&) = default;
};

/// Facts accumulated for one site.
struct SiteFacts {
  SiteKey key;
  RegionId region;
  std::set<SourceLine> lines;
  std::set<VarId> reads;
  std::set<VarId> writes;
  /// Addresses of *local temporaries* read/written by this site. The Fig. 1
  /// glue rule is dataflow-based: reusing a local's *name* in another CU
  /// must not merge the CUs, so gluing matches on addresses, not names.
  std::set<Address> local_reads;
  std::set<Address> local_writes;
  Cost cost = 0;
  std::uint64_t first_seq = ~std::uint64_t{0};  ///< serial order of first occurrence
};

/// Event sink collecting site facts during a traced run. Needs the trace
/// context to resolve variable locality at event time.
class CuFacts final : public trace::EventSink {
 public:
  explicit CuFacts(const trace::TraceContext& program) : program_(program) {}

  void on_access(const trace::AccessEvent& access) override {
    SiteFacts& site = site_for(access.stmt, access.region, access.line);
    site.lines.insert(access.line);
    const bool local = program_.var_info(access.var).local;
    if (access.kind == trace::AccessKind::Read) {
      site.reads.insert(access.var);
      if (local) site.local_reads.insert(access.addr);
    } else {
      site.writes.insert(access.var);
      if (local) site.local_writes.insert(access.addr);
    }
    site.cost += access.cost;
    site.first_seq = std::min(site.first_seq, access.seq);
  }

  void on_compute(const trace::ComputeEvent& compute) override {
    SiteFacts& site = site_for(compute.stmt, compute.region, compute.line);
    site.lines.insert(compute.line);
    site.cost += compute.cost;
  }

  [[nodiscard]] const std::map<SiteKey, SiteFacts>& sites() const { return sites_; }

 private:
  SiteFacts& site_for(StatementId stmt, RegionId region, SourceLine line) {
    SiteKey key;
    if (stmt.valid()) {
      key.stmt = stmt;
    } else {
      key.region = region;
      key.line = line;
    }
    SiteFacts& site = sites_[key];
    site.key = key;
    site.region = region;
    return site;
  }

  const trace::TraceContext& program_;
  std::map<SiteKey, SiteFacts> sites_;
};

}  // namespace ppd::cu
