#include "cu/builder.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <unordered_map>

#include "obs/obs.hpp"
#include "support/assert.hpp"

namespace ppd::cu {
namespace {

/// Plain union-find over site indices.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void merge(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

std::vector<Cu> form_cus(const CuFacts& facts, const trace::TraceContext& program) {
  PPD_OBS_SPAN("cu.form");
  std::vector<const SiteFacts*> sites;
  sites.reserve(facts.sites().size());
  for (const auto& [key, site] : facts.sites()) sites.push_back(&site);

  auto is_local = [&](VarId v) { return program.var_info(v).local; };
  auto is_explicit = [](const SiteFacts& s) { return s.key.stmt.valid(); };

  UnionFind uf(sites.size());
  for (std::size_t a = 0; a < sites.size(); ++a) {
    for (std::size_t b = a + 1; b < sites.size(); ++b) {
      const SiteFacts& sa = *sites[a];
      const SiteFacts& sb = *sites[b];
      if (sa.region != sb.region) continue;
      if (is_explicit(sa) && is_explicit(sb)) continue;  // call-site CUs stay apart

      // Rule (a): two auto sites updating the same global state variable are
      // one read-compute-write unit (Fig. 1: lines 1 and 5 both write x).
      if (!is_explicit(sa) && !is_explicit(sb)) {
        bool shared_global_write = false;
        for (VarId v : sa.writes) {
          if (!is_local(v) && sb.writes.count(v) != 0) {
            shared_global_write = true;
            break;
          }
        }
        if (shared_global_write) {
          uf.merge(a, b);
          continue;
        }
      }

      // Rule (b): a local temporary written by one site and read by the
      // other glues them into one CU (Fig. 1: a and b glue lines 3-5).
      // Matching is by address: reusing a local's *name* elsewhere must not
      // merge unrelated CUs.
      auto glued = [](const SiteFacts& w, const SiteFacts& r) {
        for (Address addr : w.local_writes) {
          if (r.local_reads.count(addr) != 0) return true;
        }
        return false;
      };
      if (glued(sa, sb) || glued(sb, sa)) uf.merge(a, b);
    }
  }

  std::map<std::size_t, Cu> groups;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const SiteFacts& site = *sites[i];
    Cu& cu = groups[uf.find(i)];
    cu.region = site.region;
    cu.lines.insert(site.lines.begin(), site.lines.end());
    if (site.key.stmt.valid()) cu.stmts.insert(site.key.stmt);
    for (VarId v : site.writes) {
      if (!is_local(v)) cu.state_vars.insert(v);
    }
    cu.cost += site.cost;
    cu.serial_order = std::min(cu.serial_order == 0 ? ~std::uint64_t{0} : cu.serial_order,
                               site.first_seq);
  }

  std::vector<Cu> cus;
  cus.reserve(groups.size());
  for (auto& [root, cu] : groups) cus.push_back(std::move(cu));
  std::sort(cus.begin(), cus.end(),
            [](const Cu& a, const Cu& b) { return a.serial_order < b.serial_order; });

  for (std::size_t i = 0; i < cus.size(); ++i) {
    Cu& cu = cus[i];
    cu.id = CuId(static_cast<CuId::rep_type>(i));
    if (!cu.stmts.empty()) {
      cu.name = program.statement(*cu.stmts.begin()).name;
    } else if (!cu.state_vars.empty()) {
      cu.name = "CU_" + program.var_info(*cu.state_vars.begin()).name;
    } else {
      cu.name = "CU_line" + std::to_string(*cu.lines.begin());
    }
  }
  return cus;
}

namespace {

/// Endpoint-to-CU lookup tables.
struct CuLookup {
  std::unordered_map<StatementId, std::size_t> by_stmt;
  std::map<std::pair<RegionId, SourceLine>, std::size_t> by_line;

  explicit CuLookup(const std::vector<Cu>& cus) {
    for (std::size_t i = 0; i < cus.size(); ++i) {
      for (StatementId s : cus[i].stmts) by_stmt.emplace(s, i);
      for (SourceLine line : cus[i].lines) by_line.emplace(std::pair{cus[i].region, line}, i);
    }
  }

  [[nodiscard]] std::size_t find(const prof::DepSite& site) const {
    if (site.stmt.valid()) {
      auto it = by_stmt.find(site.stmt);
      if (it != by_stmt.end()) return it->second;
    }
    auto it = by_line.find(std::pair{site.region, site.line});
    return it == by_line.end() ? ~std::size_t{0} : it->second;
  }
};

}  // namespace

CuGraph build_cu_graph(const std::vector<Cu>& cus, const prof::Profile& profile,
                       const pet::Pet& pet, pet::NodeIndex scope_node,
                       const trace::TraceContext& program, bool filter_cross_activation) {
  PPD_OBS_SPAN("cu.graph");
  (void)program;  // reserved for name resolution in render paths
  const pet::PetNode& scope = pet.node(scope_node);

  CuGraph result;
  result.scope = scope.region;

  // Region -> graph node resolution: a CU directly in the scope gets its own
  // vertex; a CU inside a child subtree maps to that child's collapsed
  // vertex.
  std::unordered_map<RegionId, std::size_t> region_to_child;  // -> index into children
  for (std::size_t c = 0; c < scope.children.size(); ++c) {
    // Collect every region in the child's subtree.
    std::vector<pet::NodeIndex> stack{scope.children[c]};
    while (!stack.empty()) {
      const pet::PetNode& n = pet.node(stack.back());
      stack.pop_back();
      region_to_child.emplace(n.region, c);
      for (pet::NodeIndex grandchild : n.children) stack.push_back(grandchild);
    }
  }

  constexpr std::size_t kNone = ~std::size_t{0};
  std::vector<std::size_t> cu_to_graph_node(cus.size(), kNone);
  std::vector<std::size_t> child_to_graph_node(scope.children.size(), kNone);

  struct PendingNode {
    Cu cu;
    std::uint64_t serial;
  };
  std::vector<PendingNode> pending;

  // Direct CUs of the scope region.
  for (std::size_t i = 0; i < cus.size(); ++i) {
    if (cus[i].region != scope.region) continue;
    pending.push_back(PendingNode{cus[i], cus[i].serial_order});
  }

  // One collapsed vertex per child region subtree carrying cost.
  for (std::size_t c = 0; c < scope.children.size(); ++c) {
    const pet::PetNode& child = pet.node(scope.children[c]);
    if (child.inclusive_cost == 0) continue;
    Cu collapsed;
    collapsed.name = child.name;
    collapsed.region = scope.region;
    collapsed.collapsed = true;
    collapsed.collapsed_region = child.region;
    collapsed.cost = child.inclusive_cost;
    // Serial position: earliest CU inside the subtree, or after everything
    // observed if none (cost-only subtree).
    std::uint64_t serial = ~std::uint64_t{0};
    for (const Cu& cu : cus) {
      auto it = region_to_child.find(cu.region);
      if (it != region_to_child.end() && it->second == c) {
        serial = std::min(serial, cu.serial_order);
        collapsed.lines.insert(cu.lines.begin(), cu.lines.end());
      }
    }
    pending.push_back(PendingNode{std::move(collapsed), serial});
  }

  std::sort(pending.begin(), pending.end(),
            [](const PendingNode& a, const PendingNode& b) { return a.serial < b.serial; });

  for (PendingNode& p : pending) {
    const std::size_t node = result.cus.size();
    p.cu.id = CuId(static_cast<CuId::rep_type>(node));
    p.cu.serial_order = p.serial;
    result.graph.add_node(p.cu.cost);
    result.cus.push_back(std::move(p.cu));
  }

  for (std::size_t node = 0; node < result.cus.size(); ++node) {
    const Cu& cu = result.cus[node];
    if (cu.collapsed) {
      for (std::size_t c = 0; c < scope.children.size(); ++c) {
        if (pet.node(scope.children[c]).region == cu.collapsed_region) {
          child_to_graph_node[c] = node;
        }
      }
    }
  }

  const CuLookup lookup(cus);
  auto map_endpoint = [&](const prof::DepSite& site) -> std::size_t {
    const std::size_t cu_index = lookup.find(site);
    if (cu_index == kNone) return kNone;
    const Cu& cu = cus[cu_index];
    if (cu.region == scope.region) {
      // Find its direct vertex by matching serial order.
      for (std::size_t node = 0; node < result.cus.size(); ++node) {
        if (!result.cus[node].collapsed &&
            result.cus[node].serial_order == cu.serial_order) {
          return node;
        }
      }
      return kNone;
    }
    auto it = region_to_child.find(cu.region);
    if (it == region_to_child.end()) return kNone;
    return child_to_graph_node[it->second];
  };
  (void)cu_to_graph_node;

  for (const prof::Dependence& dep : profile.dependences) {
    // Value-return edges between different activations of a merged
    // recursive function are not part of this activation's structure.
    if (filter_cross_activation && dep.cross_activation) continue;
    if (dep.carrier_loop.valid()) {
      if (dep.carrier_loop == scope.region) {
        result.has_cross_iteration_deps = true;
        continue;
      }
      // Carried by a loop outside this scope's subtree: irrelevant here.
      const pet::NodeIndex carrier_node = pet.find(dep.carrier_loop);
      if (carrier_node == pet::kInvalidPetNode ||
          !pet.in_subtree(scope_node, carrier_node)) {
        continue;
      }
    }
    const std::size_t src = map_endpoint(dep.source);
    const std::size_t dst = map_endpoint(dep.sink);
    if (src == kNone || dst == kNone || src == dst) continue;
    result.graph.add_edge(static_cast<graph::NodeIndex>(src),
                          static_cast<graph::NodeIndex>(dst));
  }
  return result;
}

std::string CuGraph::render() const {
  std::string out;
  for (std::size_t i = 0; i < cus.size(); ++i) {
    out += "CU_" + std::to_string(i) + " (" + cus[i].name;
    out += ", cost=" + std::to_string(cus[i].cost) + ")";
    const auto& succ = graph.successors(static_cast<graph::NodeIndex>(i));
    if (!succ.empty()) {
      out += " -> ";
      for (std::size_t k = 0; k < succ.size(); ++k) {
        out += "CU_" + std::to_string(succ[k]);
        if (k + 1 < succ.size()) out += ", ";
      }
    }
    out += "\n";
  }
  if (has_cross_iteration_deps) out += "[scope has cross-iteration dependences]\n";
  return out;
}

}  // namespace ppd::cu
