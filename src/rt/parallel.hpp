// SPMD supporting-structure primitives: parallel_for (do-all), parallel
// reduction, and the pipelined loop-pair executor for multi-loop pipelines.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "rt/thread_pool.hpp"
#include "support/assert.hpp"

namespace ppd::rt {

/// Do-all: applies fn(i) for i in [begin, end), statically chunked over the
/// pool's workers. Blocks until every iteration finished.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::uint64_t begin, std::uint64_t end, Fn&& fn) {
  if (begin >= end) return;
  const std::uint64_t n = end - begin;
  const std::uint64_t chunks =
      std::min<std::uint64_t>(n, static_cast<std::uint64_t>(pool.thread_count()));
  TaskGroup group(pool);
  for (std::uint64_t c = 0; c < chunks; ++c) {
    const std::uint64_t lo = begin + n * c / chunks;
    const std::uint64_t hi = begin + n * (c + 1) / chunks;
    group.run([lo, hi, &fn] {
      for (std::uint64_t i = lo; i < hi; ++i) fn(i);
    });
  }
  group.wait();
}

/// Parallel reduction over [begin, end): each worker folds its chunk with
/// fold(acc, i) starting from `identity`; partial results are combined with
/// the associative combine(a, b).
template <typename T, typename Fold, typename Combine>
[[nodiscard]] T parallel_reduce(ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
                                T identity, Fold&& fold, Combine&& combine) {
  if (begin >= end) return identity;
  const std::uint64_t n = end - begin;
  const std::uint64_t chunks =
      std::min<std::uint64_t>(n, static_cast<std::uint64_t>(pool.thread_count()));
  std::vector<T> partial(chunks, identity);
  TaskGroup group(pool);
  for (std::uint64_t c = 0; c < chunks; ++c) {
    const std::uint64_t lo = begin + n * c / chunks;
    const std::uint64_t hi = begin + n * (c + 1) / chunks;
    group.run([lo, hi, c, &partial, &fold, identity] {
      T acc = identity;
      for (std::uint64_t i = lo; i < hi; ++i) acc = fold(acc, i);
      partial[c] = acc;
    });
  }
  group.wait();
  T acc = identity;
  for (const T& p : partial) acc = combine(acc, p);
  return acc;
}

/// Ordered map/reduce: computes map(i) for i in [0, n) on the pool, then
/// folds the results into `init` strictly in index order on the calling
/// thread. Unlike parallel_reduce, the fold sees every mapped value exactly
/// once and in a fixed order, so it is deterministic even when the fold
/// operation is only associative in spirit (e.g. floating-point sums or
/// order-sensitive merges). The maps must be independent; group.wait()
/// sequences every map before the first fold.
template <typename R, typename Map, typename Fold>
[[nodiscard]] R parallel_map_fold(ThreadPool& pool, std::uint64_t n, R init, Map&& map,
                                  Fold&& fold) {
  using T = decltype(map(std::uint64_t{0}));
  std::vector<T> mapped(n);
  TaskGroup group(pool);
  for (std::uint64_t i = 0; i < n; ++i) {
    group.run([i, &mapped, &map] { mapped[i] = map(i); });
  }
  group.wait();
  R acc = std::move(init);
  for (std::uint64_t i = 0; i < n; ++i) acc = fold(std::move(acc), std::move(mapped[i]));
  return acc;
}

/// Progress counter used to overlap dependent loops: producers publish how
/// many iterations completed; consumers block until a prefix is done.
class IterationBarrier {
 public:
  /// Marks iterations [0, count) of the producer loop as complete.
  void publish(std::uint64_t count) {
    {
      std::lock_guard lock(mutex_);
      if (count > completed_) completed_ = count;
    }
    cv_.notify_all();
  }

  /// Blocks until at least `count` producer iterations completed.
  void wait_for(std::uint64_t count) {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return completed_ >= count; });
  }

  [[nodiscard]] std::uint64_t completed() const {
    std::lock_guard lock(mutex_);
    return completed_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::uint64_t completed_ = 0;
};

/// Multi-loop pipeline executor (SPMD over two dependent loops).
///
/// Runs loop x (nx iterations) and loop y (ny iterations) overlapped:
/// y-iteration j may start once x-iterations [0, need(j)) completed —
/// `need` comes straight from the detected regression line,
/// need(j) = clamp(ceil((j - b) / a), 0, nx). When `x_doall` is set, loop x
/// itself runs as a do-all over pool workers, publishing progress in order.
void pipelined_loop_pair(ThreadPool& pool, std::uint64_t nx, std::uint64_t ny,
                         const std::function<std::uint64_t(std::uint64_t)>& need,
                         const std::function<void(std::uint64_t)>& run_x,
                         const std::function<void(std::uint64_t)>& run_y, bool x_doall);

/// One stage of an n-stage pipeline chain (§III-A: a chain of n dependent
/// loops is implemented by merging the pairwise relationships).
struct PipelineStage {
  std::uint64_t iterations = 0;
  /// Executes iteration i of this stage.
  std::function<void(std::uint64_t)> run;
  /// How many completed iterations of the *previous* stage iteration j of
  /// this stage requires (from the detected regression line). Null for the
  /// first stage.
  std::function<std::uint64_t(std::uint64_t)> need;
};

/// Runs the whole chain overlapped: each stage advances as soon as its
/// predecessor published enough iterations. Stages run sequentially within
/// themselves; the parallelism is the stage overlap.
void pipelined_loop_chain(ThreadPool& pool, std::vector<PipelineStage> stages);

}  // namespace ppd::rt
