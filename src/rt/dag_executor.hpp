// DAG executor: runs a dependency graph of closures on the thread pool.
//
// This is the executable counterpart of the CU graphs the detector
// classifies: each CU (or collapsed loop) becomes a node with its
// dependences as edges, and the executor releases a node the moment its
// last dependence finishes — the fork/worker/barrier schedule of §III-B
// without explicit barriers.
//
// The executor is hardened against bad graphs and failing tasks: the
// deps-point-backwards invariant is validated up front (out-of-range,
// self-, or forward dependencies — i.e. anything that could encode a
// cycle — are rejected as a Status, not undefined behavior), and after the
// first task failure every not-yet-released transitive dependent is
// cancelled rather than run on top of missing results. The report says
// exactly which tasks failed and which were skipped.
#pragma once

#include <exception>
#include <functional>
#include <vector>

#include "rt/thread_pool.hpp"
#include "support/status.hpp"

namespace ppd::rt {

/// One executable node. Dependencies must refer to earlier indices (the
/// same deps-point-backwards invariant as sim::TaskDag).
struct DagTask {
  std::function<void()> work;
  std::vector<std::size_t> deps;
};

/// Outcome of a DAG execution.
struct DagReport {
  /// Ok; invalid-dag (nothing ran); or task-failed (dependents skipped).
  support::Status status;
  /// Indices of tasks whose work threw, ascending.
  std::vector<std::size_t> failed;
  /// Indices of tasks skipped because a transitive dependency failed,
  /// ascending. Tasks independent of every failure still ran.
  std::vector<std::size_t> skipped;
  /// The first captured task exception, if any.
  std::exception_ptr first_error;

  [[nodiscard]] bool ok() const { return status.is_ok(); }
};

/// Executes all runnable tasks respecting the dependence edges; returns when
/// every task has either finished or been cancelled. Never throws: graph
/// defects and task failures are reported in the DagReport. Tasks whose
/// dependencies are all satisfied run concurrently, bounded by the pool.
[[nodiscard]] DagReport execute_dag_checked(ThreadPool& pool, std::vector<DagTask> tasks);

/// Throwing convenience wrapper: rethrows the first captured task exception
/// (dependents of the failed task were skipped), or throws
/// std::invalid_argument for a graph that violates the deps-point-backwards
/// invariant.
void execute_dag(ThreadPool& pool, std::vector<DagTask> tasks);

}  // namespace ppd::rt
