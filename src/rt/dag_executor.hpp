// DAG executor: runs a dependency graph of closures on the thread pool.
//
// This is the executable counterpart of the CU graphs the detector
// classifies: each CU (or collapsed loop) becomes a node with its
// dependences as edges, and the executor releases a node the moment its
// last dependence finishes — the fork/worker/barrier schedule of §III-B
// without explicit barriers.
#pragma once

#include <functional>
#include <vector>

#include "rt/thread_pool.hpp"

namespace ppd::rt {

/// One executable node. Dependencies must refer to earlier indices (the
/// same deps-point-backwards invariant as sim::TaskDag).
struct DagTask {
  std::function<void()> work;
  std::vector<std::size_t> deps;
};

/// Executes all tasks respecting the dependence edges; returns when every
/// task has finished. Throws the first captured task exception. Tasks whose
/// dependencies are all satisfied run concurrently, bounded by the pool.
void execute_dag(ThreadPool& pool, std::vector<DagTask> tasks);

}  // namespace ppd::rt
