#include "rt/thread_pool.hpp"

#include <stdexcept>
#include <string>

#include "support/assert.hpp"
#include "support/status.hpp"

namespace ppd::rt {
namespace {

/// Identity of the calling thread when it is a pool worker: its dense index
/// and the pool that owns it. Written once at worker start, read by the
/// work-stealing hooks below.
thread_local std::size_t t_worker_index = ThreadPool::kNotAWorker;
thread_local const ThreadPool* t_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads)
    : tasks_executed_(obs::Registry::instance().counter("rt.pool.tasks")),
      busy_ns_(obs::Registry::instance().counter("rt.pool.busy_ns")),
      idle_ns_(obs::Registry::instance().counter("rt.pool.idle_ns")),
      queue_depth_(obs::Registry::instance().gauge("rt.pool.queue_depth")) {
  PPD_ASSERT(threads > 0);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

std::size_t ThreadPool::current_worker_index() { return t_worker_index; }

bool ThreadPool::owns_current_thread() const { return t_worker_pool == this; }

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

bool ThreadPool::is_shut_down() const {
  std::lock_guard lock(mutex_);
  return stopping_;
}

void ThreadPool::submit(std::function<void()> task) {
  // Trace propagation happens here and only here: the submitter's context
  // is captured with the task and reinstalled around its execution, so a
  // request's spans stay on its trace across the thread hop. Everything
  // built on the pool (TaskGroup, svc::Scheduler, ppd::pat) inherits this.
  if (const obs::TraceContext trace = obs::current_trace(); trace.active()) {
    task = [trace, task = std::move(task)] {
      obs::WithTrace scope(trace);
      task();
    };
  }
  {
    std::lock_guard lock(mutex_);
    if (stopping_) {
      throw std::runtime_error(
          std::string(support::to_string(support::ErrorCode::PoolShutdown)) +
          ": submit on a shut-down thread pool");
    }
    queue_.push_back(std::move(task));
    queue_depth_.set(static_cast<std::int64_t>(queue_.size()));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop(std::size_t index) {
  t_worker_index = index;
  t_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    const std::uint64_t wait_begin = obs::now_ns();
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {  // stopping and drained
        idle_ns_.add(obs::now_ns() - wait_begin);
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_.set(static_cast<std::int64_t>(queue_.size()));
    }
    idle_ns_.add(obs::now_ns() - wait_begin);
    const std::uint64_t run_begin = obs::now_ns();
    task();
    busy_ns_.add(obs::now_ns() - run_begin);
    tasks_executed_.add(1);
  }
}

TaskGroup::~TaskGroup() {
  // A TaskGroup must not be destroyed with tasks in flight; wait() first.
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

void TaskGroup::run(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    ++pending_;
  }
  try {
    pool_.submit([this, task = std::move(task)] {
      try {
        task();
      } catch (...) {
        std::lock_guard lock(mutex_);
        ++error_count_;
        if (!first_error_) first_error_ = std::current_exception();
      }
      // Notify while holding the lock: the waiter owns this TaskGroup and may
      // destroy it the moment it observes pending_ == 0 — notifying after
      // unlocking would race with that destruction.
      std::lock_guard lock(mutex_);
      --pending_;
      if (pending_ == 0) cv_.notify_all();
    });
  } catch (...) {
    // The pool rejected the task (shut down): roll the fork back.
    std::lock_guard lock(mutex_);
    --pending_;
    if (pending_ == 0) cv_.notify_all();
    throw;
  }
}

void TaskGroup::wait() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [this] { return pending_ == 0; });
  if (!first_error_) return;
  std::exception_ptr err = first_error_;
  const std::size_t suppressed = error_count_ - 1;
  first_error_ = nullptr;
  error_count_ = 0;
  lock.unlock();
  if (suppressed == 0) std::rethrow_exception(err);
  std::string detail;
  try {
    std::rethrow_exception(err);
  } catch (const std::exception& e) {
    detail = e.what();
  } catch (...) {
    detail = "non-standard task exception";
  }
  throw std::runtime_error(detail + " (+" + std::to_string(suppressed) +
                           " more task error(s) suppressed)");
}

}  // namespace ppd::rt
