#include "rt/thread_pool.hpp"

#include "support/assert.hpp"

namespace ppd::rt {

ThreadPool::ThreadPool(std::size_t threads) {
  PPD_ASSERT(threads > 0);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    PPD_ASSERT_MSG(!stopping_, "submit on a stopping pool");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

TaskGroup::~TaskGroup() {
  // A TaskGroup must not be destroyed with tasks in flight; wait() first.
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

void TaskGroup::run(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    ++pending_;
  }
  pool_.submit([this, task = std::move(task)] {
    try {
      task();
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    // Notify while holding the lock: the waiter owns this TaskGroup and may
    // destroy it the moment it observes pending_ == 0 — notifying after
    // unlocking would race with that destruction.
    std::lock_guard lock(mutex_);
    --pending_;
    if (pending_ == 0) cv_.notify_all();
  });
}

void TaskGroup::wait() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [this] { return pending_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

}  // namespace ppd::rt
