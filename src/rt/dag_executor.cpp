#include "rt/dag_executor.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>

#include "support/assert.hpp"

namespace ppd::rt {

void execute_dag(ThreadPool& pool, std::vector<DagTask> tasks) {
  if (tasks.empty()) return;

  struct State {
    std::vector<DagTask> tasks;
    std::vector<std::atomic<std::size_t>> pending;
    std::vector<std::vector<std::size_t>> dependents;
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t remaining;
    std::exception_ptr first_error;

    explicit State(std::vector<DagTask> t)
        : tasks(std::move(t)), pending(tasks.size()), dependents(tasks.size()),
          remaining(tasks.size()) {}
  };
  State state(std::move(tasks));

  for (std::size_t i = 0; i < state.tasks.size(); ++i) {
    for (std::size_t dep : state.tasks[i].deps) {
      PPD_ASSERT_MSG(dep < i, "DAG dependencies must point at earlier tasks");
      state.dependents[dep].push_back(i);
    }
    state.pending[i].store(state.tasks[i].deps.size(), std::memory_order_relaxed);
  }

  // submit() is recursive through completions; define as a fixed function.
  struct Runner {
    State& state;
    ThreadPool& pool;

    void submit(std::size_t index) {
      pool.submit([this, index] {
        try {
          state.tasks[index].work();
        } catch (...) {
          std::lock_guard lock(state.mutex);
          if (!state.first_error) state.first_error = std::current_exception();
        }
        for (std::size_t dependent : state.dependents[index]) {
          if (state.pending[dependent].fetch_sub(1, std::memory_order_acq_rel) == 1) {
            submit(dependent);
          }
        }
        // Notify while holding the lock: the waiter owns `state`, and it may
        // destroy it the moment it observes remaining == 0 — notifying after
        // unlocking would race with that destruction.
        std::lock_guard lock(state.mutex);
        --state.remaining;
        if (state.remaining == 0) state.cv.notify_all();
      });
    }
  };
  Runner runner{state, pool};

  for (std::size_t i = 0; i < state.tasks.size(); ++i) {
    if (state.tasks[i].deps.empty()) runner.submit(i);
  }

  std::unique_lock lock(state.mutex);
  state.cv.wait(lock, [&] { return state.remaining == 0; });
  if (state.first_error) std::rethrow_exception(state.first_error);
}

}  // namespace ppd::rt
