#include "rt/dag_executor.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <string>

namespace ppd::rt {
namespace {

using support::ErrorCode;
using support::Status;

constexpr std::uint8_t kPending = 0;
constexpr std::uint8_t kOk = 1;
constexpr std::uint8_t kFailed = 2;
constexpr std::uint8_t kSkipped = 3;

struct State {
  std::vector<DagTask> tasks;
  std::vector<std::atomic<std::size_t>> pending;
  std::vector<std::atomic<std::uint8_t>> outcome;
  std::vector<std::vector<std::size_t>> dependents;
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t remaining;
  DagReport report;

  explicit State(std::vector<DagTask> t)
      : tasks(std::move(t)), pending(tasks.size()), outcome(tasks.size()),
        dependents(tasks.size()), remaining(tasks.size()) {}
};

struct Runner {
  State& state;
  ThreadPool& pool;

  /// True if any dependency of `index` did not complete successfully. Safe
  /// to read without the mutex: outcomes are written with release order
  /// before the dependent's pending counter is decremented.
  [[nodiscard]] bool has_bad_dependency(std::size_t index) const {
    const std::vector<std::size_t>& deps = state.tasks[index].deps;
    return std::any_of(deps.begin(), deps.end(), [this](std::size_t dep) {
      return state.outcome[dep].load(std::memory_order_acquire) != kOk;
    });
  }

  void run_task(std::size_t index) {
    std::uint8_t outcome = kOk;
    try {
      state.tasks[index].work();
    } catch (...) {
      outcome = kFailed;
      std::lock_guard lock(state.mutex);
      state.report.failed.push_back(index);
      if (!state.report.first_error) state.report.first_error = std::current_exception();
    }
    state.outcome[index].store(outcome, std::memory_order_release);
    settle(index);
  }

  /// Accounts `index` as done and releases its dependents: runnable ones go
  /// to the pool; ones poisoned by a failed/skipped dependency are cancelled
  /// here, iteratively, so arbitrarily long skip chains cannot overflow the
  /// stack.
  void settle(std::size_t index) {
    std::vector<std::size_t> done{index};
    while (!done.empty()) {
      const std::size_t current = done.back();
      done.pop_back();
      for (std::size_t dependent : state.dependents[current]) {
        if (state.pending[dependent].fetch_sub(1, std::memory_order_acq_rel) == 1) {
          if (has_bad_dependency(dependent)) {
            state.outcome[dependent].store(kSkipped, std::memory_order_release);
            std::lock_guard lock(state.mutex);
            state.report.skipped.push_back(dependent);
            done.push_back(dependent);
          } else {
            pool.submit([this, dependent] { run_task(dependent); });
          }
        }
      }
      // Notify while holding the lock: the waiter owns `state`, and it may
      // destroy it the moment it observes remaining == 0 — notifying after
      // unlocking would race with that destruction. `current`'s dependents
      // were handled above, so remaining can only reach zero on the last
      // settled task.
      std::lock_guard lock(state.mutex);
      --state.remaining;
      if (state.remaining == 0) state.cv.notify_all();
    }
  }
};

}  // namespace

DagReport execute_dag_checked(ThreadPool& pool, std::vector<DagTask> tasks) {
  // Validate the deps-point-backwards invariant before anything runs:
  // self- and forward edges are exactly the ones that could close a cycle,
  // and out-of-range edges would index out of bounds.
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    for (std::size_t dep : tasks[i].deps) {
      if (dep >= tasks.size()) {
        DagReport report;
        report.status = Status::error(
            ErrorCode::InvalidDag, "task " + std::to_string(i) + " depends on task " +
                                       std::to_string(dep) + ", which is out of range");
        return report;
      }
      if (dep >= i) {
        DagReport report;
        report.status = Status::error(
            ErrorCode::InvalidDag,
            "task " + std::to_string(i) + " depends on task " + std::to_string(dep) +
                "; dependencies must point at earlier tasks (a self or forward edge "
                "would admit a cycle)");
        return report;
      }
    }
  }
  if (tasks.empty()) return DagReport{};

  State state(std::move(tasks));
  for (std::size_t i = 0; i < state.tasks.size(); ++i) {
    for (std::size_t dep : state.tasks[i].deps) state.dependents[dep].push_back(i);
    state.pending[i].store(state.tasks[i].deps.size(), std::memory_order_relaxed);
  }

  Runner runner{state, pool};
  for (std::size_t i = 0; i < state.tasks.size(); ++i) {
    if (state.tasks[i].deps.empty()) {
      pool.submit([&runner, i] { runner.run_task(i); });
    }
  }

  {
    std::unique_lock lock(state.mutex);
    state.cv.wait(lock, [&] { return state.remaining == 0; });
  }

  DagReport report = std::move(state.report);
  std::sort(report.failed.begin(), report.failed.end());
  std::sort(report.skipped.begin(), report.skipped.end());
  if (!report.failed.empty()) {
    report.status = Status::error(
        ErrorCode::TaskFailed,
        std::to_string(report.failed.size()) + " task(s) failed (first: task " +
            std::to_string(report.failed.front()) + "); " +
            std::to_string(report.skipped.size()) + " dependent(s) skipped");
  }
  return report;
}

void execute_dag(ThreadPool& pool, std::vector<DagTask> tasks) {
  DagReport report = execute_dag_checked(pool, std::move(tasks));
  if (report.ok()) return;
  if (report.first_error) std::rethrow_exception(report.first_error);
  throw std::invalid_argument(report.status.to_string());
}

}  // namespace ppd::rt
