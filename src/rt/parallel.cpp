#include "rt/parallel.hpp"

#include <algorithm>
#include <atomic>

namespace ppd::rt {

void pipelined_loop_pair(ThreadPool& pool, std::uint64_t nx, std::uint64_t ny,
                         const std::function<std::uint64_t(std::uint64_t)>& need,
                         const std::function<void(std::uint64_t)>& run_x,
                         const std::function<void(std::uint64_t)>& run_y, bool x_doall) {
  IterationBarrier barrier;
  TaskGroup group(pool);

  // Shared do-all state for stage x (ordered block self-scheduling: workers
  // grab the next block; a completion bitmap advances the published prefix
  // in order so stage y sees monotone progress).
  const std::uint64_t block =
      std::max<std::uint64_t>(1, nx / (static_cast<std::uint64_t>(pool.thread_count()) * 4 + 1));
  const std::size_t block_count = nx == 0 ? 0 : static_cast<std::size_t>((nx + block - 1) / block);
  std::atomic<std::uint64_t> next{0};
  std::mutex done_mutex;
  std::vector<bool> block_done(block_count, false);
  std::uint64_t frontier = 0;

  if (x_doall && pool.thread_count() > 1 && nx > 0) {
    // One pool thread is reserved for stage y; the rest run stage-x blocks.
    // All tasks are siblings in one flat group — no task ever blocks on a
    // nested group, so the pool cannot deadlock.
    const std::size_t workers = pool.thread_count() - 1;
    for (std::size_t w = 0; w < workers; ++w) {
      group.run([&] {
        for (;;) {
          const std::uint64_t b = next.fetch_add(1);
          const std::uint64_t lo = b * block;
          if (lo >= nx) return;
          const std::uint64_t hi = std::min(nx, lo + block);
          for (std::uint64_t i = lo; i < hi; ++i) run_x(i);
          std::lock_guard lock(done_mutex);
          block_done[static_cast<std::size_t>(b)] = true;
          while (frontier < block_done.size() && block_done[static_cast<std::size_t>(frontier)]) {
            ++frontier;
          }
          barrier.publish(std::min(nx, frontier * block));
        }
      });
    }
  } else {
    group.run([&] {
      for (std::uint64_t i = 0; i < nx; ++i) {
        run_x(i);
        barrier.publish(i + 1);
      }
      barrier.publish(nx);  // covers nx == 0
    });
  }

  group.run([&] {
    for (std::uint64_t j = 0; j < ny; ++j) {
      barrier.wait_for(std::min(nx, need(j)));
      run_y(j);
    }
  });

  group.wait();
}

void pipelined_loop_chain(ThreadPool& pool, std::vector<PipelineStage> stages) {
  if (stages.empty()) return;
  // barriers[k] publishes stage k's completed-iteration prefix.
  std::vector<IterationBarrier> barriers(stages.size());
  TaskGroup group(pool);
  for (std::size_t k = 0; k < stages.size(); ++k) {
    group.run([&, k] {
      const PipelineStage& stage = stages[k];
      for (std::uint64_t j = 0; j < stage.iterations; ++j) {
        if (k > 0 && stage.need) {
          barriers[k - 1].wait_for(std::min(stages[k - 1].iterations, stage.need(j)));
        } else if (k > 0) {
          barriers[k - 1].wait_for(std::min(stages[k - 1].iterations, j + 1));
        }
        stage.run(j);
        barriers[k].publish(j + 1);
      }
      barriers[k].publish(stage.iterations);
    });
  }
  group.wait();
}

}  // namespace ppd::rt
