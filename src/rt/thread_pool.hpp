// Minimal work-queue thread pool.
//
// The paper implements its detected patterns by hand with threads; this
// runtime provides the supporting structures of Table I (master/worker via
// TaskGroup, SPMD via parallel_for / parallel_reduce, and the pipelined
// loop-pair executor) so the benchmark suite can run each detected pattern
// for real and verify that the parallel result equals the sequential one.
// Wall-clock speedup is *not* measured here (see ppd::sim): the build
// machine is single-core, so speedups come from the virtual-time simulator.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ppd::rt {

/// Fixed-size pool of worker threads consuming a shared FIFO work queue.
/// Exceptions thrown by tasks are captured; the first one is rethrown from
/// TaskGroup::wait() (tasks submitted raw via submit() must not throw).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void submit(std::function<void()> task);

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

/// Fork/join group: run() forks tasks onto the pool, wait() joins them all
/// and rethrows the first captured exception.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Forks `task` onto the pool.
  void run(std::function<void()> task);

  /// Blocks until every forked task finished; rethrows the first exception.
  void wait();

 private:
  ThreadPool& pool_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t pending_ = 0;
  std::exception_ptr first_error_;
};

}  // namespace ppd::rt
