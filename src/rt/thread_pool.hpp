// Minimal work-queue thread pool.
//
// The paper implements its detected patterns by hand with threads; this
// runtime provides the supporting structures of Table I (master/worker via
// TaskGroup, SPMD via parallel_for / parallel_reduce, and the pipelined
// loop-pair executor) so the benchmark suite can run each detected pattern
// for real and verify that the parallel result equals the sequential one.
// Wall-clock speedup is *not* measured here (see ppd::sim): the build
// machine is single-core, so speedups come from the virtual-time simulator.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

namespace ppd::rt {

/// Fixed-size pool of worker threads consuming a shared FIFO work queue.
/// Exceptions thrown by tasks are captured; the first one is rethrown from
/// TaskGroup::wait() (tasks submitted raw via submit() must not throw).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker. Submitting to a pool
  /// that was shut down is a defined, recoverable error: it throws
  /// std::runtime_error (code pool-shutdown) and the task is not enqueued.
  /// The submitter's obs trace context (when active) is captured with the
  /// task and reinstalled around its execution on the worker.
  void submit(std::function<void()> task);

  /// Drains the queue, stops the workers, and joins them. Idempotent; called
  /// by the destructor. After shutdown, submit() throws.
  void shutdown();

  /// True once shutdown() has begun; submissions are rejected from then on.
  [[nodiscard]] bool is_shut_down() const;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Sentinel for current_worker_index(): the calling thread is not a pool
  /// worker.
  static constexpr std::size_t kNotAWorker = ~std::size_t{0};

  /// Work-stealing hook: the dense index [0, thread_count()) of the calling
  /// thread within the pool that owns it, or kNotAWorker when the caller is
  /// not a pool worker at all. Pattern runtimes built on top of the pool
  /// (ppd::pat) use this to pick a per-worker deque without a hash lookup.
  /// The index is per-pool: with several pools alive, a worker reports its
  /// index within its own pool only.
  [[nodiscard]] static std::size_t current_worker_index();

  /// True when the calling thread is a worker of *this* pool specifically.
  [[nodiscard]] bool owns_current_thread() const;

 private:
  void worker_loop(std::size_t index);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;

  // Pool observability (process-wide aggregates across pools; references
  // resolved once here so the worker loop never touches the registry).
  obs::Counter& tasks_executed_;
  obs::Counter& busy_ns_;
  obs::Counter& idle_ns_;
  obs::Gauge& queue_depth_;
};

/// Fork/join group: run() forks tasks onto the pool, wait() joins them all
/// and rethrows the first captured exception. When several tasks failed,
/// the rethrown message carries the count of additionally suppressed
/// errors, so multi-failure runs are not silently under-reported.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Forks `task` onto the pool. If the pool rejects the submission (shut
  /// down), the pending count is rolled back and the error propagates.
  void run(std::function<void()> task);

  /// Blocks until every forked task finished. Rethrows the first captured
  /// exception as-is when it was the only one; with further suppressed
  /// errors, throws std::runtime_error citing the first message and the
  /// suppressed count.
  void wait();

 private:
  ThreadPool& pool_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t pending_ = 0;
  std::size_t error_count_ = 0;
  std::exception_ptr first_error_;
};

}  // namespace ppd::rt
